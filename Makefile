# Developer entry points. `make check` is the gate a change must pass, in
# order: `go vet`, the repo-native analyzers (`lint` runs the fast
# per-package checks — lock discipline, resource leaks, SQL literals,
# determinism, metric names, atomic access, cancellation polling;
# `lint-global` runs the whole-module interprocedural ones — lock
# ordering and span/goroutine lifecycle; see docs/STATIC_ANALYSIS.md),
# full build, the race-enabled test suite, a 10-second fuzz pass over the
# SQL parser, the reldb value codec and the columnar segment encoders
# (`fuzz-smoke`), and one-shot smoke runs of the observability
# benchmark, the serve binary, the persisted span-tree pipeline
# (`trace-smoke`), the introspection catalog (`catalog-smoke`), the
# group-committed telemetry pipeline (`telemetry-smoke`), the columnar
# executor's speedup/identity experiment (`columnar-smoke`), and the
# continuous-observability loop — alert lifecycle plus workload advisor
# over the real binary (`alerts-smoke`).
# Cheap syntactic
# gates run first so a violation fails in seconds, not after the race
# suite.

GO ?= go

.PHONY: check vet lint lint-global build test race fuzz-smoke bench-smoke serve-smoke trace-smoke catalog-smoke telemetry-smoke columnar-smoke alerts-smoke bench bench-parallel bench-columnar bench-trace experiments clean

check: vet lint lint-global build race fuzz-smoke bench-smoke serve-smoke trace-smoke catalog-smoke telemetry-smoke columnar-smoke alerts-smoke

vet:
	$(GO) vet ./...

# Repo-native static analysis: builds and runs cmd/perfdmf-vet over the
# whole module. Exits nonzero with file:line diagnostics on any finding;
# deliberate exceptions are annotated //lint:allow in source, never
# skipped here. `lint` runs the fast per-package analyzers; `lint-global`
# runs the interprocedural whole-module ones (lockorder, lifecycle),
# which walk call graphs and are the slowest gates before the race suite.
lint:
	$(GO) build -o bin/perfdmf-vet ./cmd/perfdmf-vet
	bin/perfdmf-vet -analyzers lockcheck,closecheck,sqlcheck,determinism,metricnames,atomiccheck,ctxpoll ./...

lint-global:
	$(GO) build -o bin/perfdmf-vet ./cmd/perfdmf-vet
	bin/perfdmf-vet -analyzers lockorder,lifecycle ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# 10 seconds of fuzzing per target (Go allows one -fuzz per invocation):
# FuzzParse runs the parser over the committed SQL seed corpus
# (internal/sqlparse/testdata/sql_seed.txt, regenerated with
# `bin/perfdmf-vet -dump-sql`) plus mutations; FuzzValueRoundTrip pounds
# the reldb snapshot/WAL value codec; FuzzSegmentRoundTrip drives the
# columnar segment encoders (raw/FOR/RLE ints, dict/raw strings) from
# the committed corpus in internal/reldb/testdata/fuzz.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 10s ./internal/sqlparse
	$(GO) test -run '^$$' -fuzz '^FuzzValueRoundTrip$$' -fuzztime 10s ./internal/reldb
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentRoundTrip$$' -fuzztime 10s ./internal/reldb

# One iteration per sub-benchmark: proves the guard still compiles and
# runs. Real numbers come from `make bench`.
bench-smoke:
	$(GO) test -run '^$$' -bench ObsOverhead -benchtime 1x .

# Boot `perfdmf serve` on an ephemeral port, scrape /healthz and /metrics,
# and assert both respond. Exercises the real binary end to end.
serve-smoke:
	$(GO) build -o bin/perfdmf ./cmd/perfdmf
	@rm -f bin/serve-smoke.log
	@bin/perfdmf serve -db mem:smoke -addr 127.0.0.1:0 > bin/serve-smoke.log 2>&1 & \
	pid=$$!; \
	addr=""; \
	for i in $$(seq 1 50); do \
		addr=$$(sed -n 's|^perfdmf: serving on http://\([^ ]*\).*|\1|p' bin/serve-smoke.log); \
		[ -n "$$addr" ] && break; \
		sleep 0.1; \
	done; \
	if [ -z "$$addr" ]; then echo "serve-smoke: server never came up"; cat bin/serve-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	ok=0; \
	curl -fsS "http://$$addr/healthz" > /dev/null && \
	curl -fsS "http://$$addr/metrics" > bin/serve-smoke.metrics && \
	grep -q '^go_goroutines ' bin/serve-smoke.metrics && \
	grep -q '^godbc_conns_opened_total ' bin/serve-smoke.metrics && ok=1; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ "$$ok" != 1 ]; then echo "serve-smoke: endpoint checks failed"; cat bin/serve-smoke.log; exit 1; fi; \
	echo "serve-smoke: ok (http://$$addr)"

# End-to-end span-tree smoke over the real binary: synthesize a TAU input,
# load it with -telemetry so the upload's span tree persists into
# PERFDMF_SPANS, and assert `perfdmf trace` reconstructs a causal tree at
# least three levels deep (workload root → framework phases → statements).
trace-smoke:
	$(GO) build -o bin/perfdmf ./cmd/perfdmf
	@rm -rf bin/trace-smoke && mkdir -p bin/trace-smoke/db
	bin/perfdmf synth -o bin/trace-smoke/fixtures > /dev/null
	bin/perfdmf load -db file:bin/trace-smoke/db -telemetry -app smoke -exp e1 bin/trace-smoke/fixtures/tau-run > /dev/null
	bin/perfdmf trace -db file:bin/trace-smoke/db > bin/trace-smoke/trace.out
	@grep -q '└─' bin/trace-smoke/trace.out || { echo "trace-smoke: no nested spans"; cat bin/trace-smoke/trace.out; exit 1; }
	@depth=$$(sed -n 's/.*max depth \([0-9][0-9]*\)$$/\1/p' bin/trace-smoke/trace.out); \
	if [ -z "$$depth" ] || [ "$$depth" -lt 3 ]; then \
		echo "trace-smoke: span tree too shallow (depth=$$depth)"; cat bin/trace-smoke/trace.out; exit 1; \
	fi; \
	echo "trace-smoke: ok (max depth $$depth)"

# Introspection-catalog smoke over the real binary: load a synthesized TAU
# trial into a file-backed archive, run a bare ANALYZE (all tables), and
# read the statistics back through the OBS_TABLE_STATS virtual table —
# fresh stats must exist for the trial table and must not be stale.
catalog-smoke:
	$(GO) build -o bin/perfdmf ./cmd/perfdmf
	@rm -rf bin/catalog-smoke && mkdir -p bin/catalog-smoke/db
	bin/perfdmf synth -o bin/catalog-smoke/fixtures > /dev/null
	bin/perfdmf load -db file:bin/catalog-smoke/db -app smoke -exp e1 bin/catalog-smoke/fixtures/tau-run > /dev/null
	bin/perfdmf sql -db file:bin/catalog-smoke/db "ANALYZE" > bin/catalog-smoke/analyze.out
	bin/perfdmf sql -db file:bin/catalog-smoke/db "SELECT table_name, column_name, row_count, ndv, stale FROM OBS_TABLE_STATS" > bin/catalog-smoke/stats.out
	@grep -q '^trial' bin/catalog-smoke/stats.out || { echo "catalog-smoke: no stats for trial"; cat bin/catalog-smoke/stats.out; exit 1; }
	@if grep -q 'true$$' bin/catalog-smoke/stats.out; then echo "catalog-smoke: stale stats right after ANALYZE"; cat bin/catalog-smoke/stats.out; exit 1; fi
	@rows=$$(grep -c '^' bin/catalog-smoke/stats.out); \
	echo "catalog-smoke: ok ($$rows stats rows)"

# Telemetry-pipeline smoke over the real binary: load a synthesized TAU
# run with span persistence, sampling forced off (-telemetry-budget=-1 so
# the span count is deterministic) and a tight row cap, then assert the
# load's drain summary shows spans stored AND pruned, the archive honours
# the cap, and the OBS_TELEMETRY catalog answers.
telemetry-smoke:
	$(GO) build -o bin/perfdmf ./cmd/perfdmf
	@rm -rf bin/telemetry-smoke && mkdir -p bin/telemetry-smoke/db
	bin/perfdmf synth -o bin/telemetry-smoke/fixtures > /dev/null
	bin/perfdmf load -db file:bin/telemetry-smoke/db -telemetry -telemetry-budget=-1 -telemetry-retain-rows=50 -app smoke -exp e1 bin/telemetry-smoke/fixtures/tau-run > bin/telemetry-smoke/load.out
	@stored=$$(sed -n 's/^telemetry: stored=\([0-9][0-9]*\).*/\1/p' bin/telemetry-smoke/load.out); \
	pruned=$$(sed -n 's/^telemetry: .* pruned_spans=\([0-9][0-9]*\).*/\1/p' bin/telemetry-smoke/load.out); \
	if [ -z "$$stored" ]; then echo "telemetry-smoke: load printed no pipeline summary"; cat bin/telemetry-smoke/load.out; exit 1; fi; \
	if [ "$$stored" -le 0 ]; then echo "telemetry-smoke: stored=$$stored, want > 0"; cat bin/telemetry-smoke/load.out; exit 1; fi; \
	if [ -z "$$pruned" ] || [ "$$pruned" -le 0 ]; then echo "telemetry-smoke: pruned_spans=$$pruned, want > 0 (cap 50)"; cat bin/telemetry-smoke/load.out; exit 1; fi; \
	echo "telemetry-smoke: stored=$$stored pruned_spans=$$pruned"
	bin/perfdmf sql -db file:bin/telemetry-smoke/db "SELECT COUNT(*) FROM PERFDMF_SPANS" > bin/telemetry-smoke/count.out
	@n=$$(sed -n '2p' bin/telemetry-smoke/count.out | tr -d '[:space:]'); \
	if [ -z "$$n" ] || [ "$$n" -lt 1 ] || [ "$$n" -gt 50 ]; then \
		echo "telemetry-smoke: PERFDMF_SPANS has $$n rows, want 1..50"; cat bin/telemetry-smoke/count.out; exit 1; \
	fi; \
	echo "telemetry-smoke: ok ($$n spans retained)"
	bin/perfdmf sql -db file:bin/telemetry-smoke/db "SELECT active, sample_rate, retain_rows FROM OBS_TELEMETRY" > bin/telemetry-smoke/catalog.out
	@grep -q '(1 rows)' bin/telemetry-smoke/catalog.out || { echo "telemetry-smoke: OBS_TELEMETRY did not answer one row"; cat bin/telemetry-smoke/catalog.out; exit 1; }

# Continuous-observability smoke over the real binary: define a threshold
# alert rule, run a telemetry-enabled load whose exec rate breaches it
# (the fixture is loaded 60 times in one process so the load outlives
# several 5ms history scrapes), then run the offline `alerts eval`
# pass in a fresh idle process so the episode the load left open resolves
# against the same row. Asserts the full pending→firing→resolved lifecycle
# landed in OBS_ALERTS (all timestamps set on one row), that metric history
# persisted, and that `perfdmf doctor` flags the load's per-row INSERT
# stream as an N+1 finding naming the statement shape and its root op.
alerts-smoke:
	$(GO) build -o bin/perfdmf ./cmd/perfdmf
	@rm -rf bin/alerts-smoke && mkdir -p bin/alerts-smoke/db
	bin/perfdmf synth -o bin/alerts-smoke/fixtures > /dev/null
	bin/perfdmf alerts add -db file:bin/alerts-smoke/db -name load-exec-rate -metric godbc_exec_total -threshold 1 -window 500ms -for 20ms -severity critical
	bin/perfdmf load -db file:bin/alerts-smoke/db -telemetry -telemetry-budget=-1 -history-every 5ms -app smoke -exp e1 $$(for i in $$(seq 1 60); do echo bin/alerts-smoke/fixtures/tau-run; done) > bin/alerts-smoke/load.out
	bin/perfdmf alerts eval -db file:bin/alerts-smoke/db -settle 1s -every 20ms > bin/alerts-smoke/eval.out
	bin/perfdmf sql -db file:bin/alerts-smoke/db "SELECT rule_name, state, pending_at, firing_at, resolved_at FROM OBS_ALERTS" > bin/alerts-smoke/alerts.out
	@grep 'load-exec-rate' bin/alerts-smoke/alerts.out | grep 'resolved' > bin/alerts-smoke/resolved.out || { \
		echo "alerts-smoke: no resolved episode in OBS_ALERTS"; cat bin/alerts-smoke/alerts.out bin/alerts-smoke/eval.out; exit 1; }
	@if grep -q '<nil>' bin/alerts-smoke/resolved.out; then \
		echo "alerts-smoke: resolved episode is missing a lifecycle timestamp"; cat bin/alerts-smoke/alerts.out; exit 1; fi
	bin/perfdmf sql -db file:bin/alerts-smoke/db "SELECT COUNT(*) FROM PERFDMF_METRICS_HISTORY" > bin/alerts-smoke/hist.out
	@n=$$(sed -n '2p' bin/alerts-smoke/hist.out | tr -d '[:space:]'); \
	if [ -z "$$n" ] || [ "$$n" -lt 1 ]; then \
		echo "alerts-smoke: no persisted metric history"; cat bin/alerts-smoke/hist.out; exit 1; fi; \
	echo "alerts-smoke: alert lifecycle ok ($$n history rows)"
	bin/perfdmf doctor -db file:bin/alerts-smoke/db -json > bin/alerts-smoke/doctor.json
	@grep -q '"rule": "n-plus-one"' bin/alerts-smoke/doctor.json || { \
		echo "alerts-smoke: doctor reported no n-plus-one finding"; cat bin/alerts-smoke/doctor.json; exit 1; }
	@grep -q '"root_op": ' bin/alerts-smoke/doctor.json || { \
		echo "alerts-smoke: n-plus-one finding names no root op"; cat bin/alerts-smoke/doctor.json; exit 1; }
	@grep -q '"statement": ' bin/alerts-smoke/doctor.json || { \
		echo "alerts-smoke: n-plus-one finding names no statement shape"; cat bin/alerts-smoke/doctor.json; exit 1; }
	@echo "alerts-smoke: ok"

# Columnar-execution smoke: the P2 experiment at -quick scale against a
# throwaway output file (the committed BENCH_parallel.json is only
# refreshed by bench-parallel / bench-columnar). The experiment itself
# enforces the ≥3× columnar-vs-row speedup and the row/columnar identity
# check, so a kernel regression fails here in seconds.
columnar-smoke:
	@rm -rf bin/columnar-smoke && mkdir -p bin/columnar-smoke
	$(GO) run ./cmd/experiments -quick -only P2 -obs "" -parallel bin/columnar-smoke/parallel.json
	@grep -q '"speedup_ok": true' bin/columnar-smoke/parallel.json || { \
		echo "columnar-smoke: speedup_ok missing from P2 record"; exit 1; }
	@grep -q '"identical_results": true' bin/columnar-smoke/parallel.json || { \
		echo "columnar-smoke: identical_results missing from P2 record"; exit 1; }
	@echo "columnar-smoke: ok"

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Parallel-executor sweep: BenchmarkParallelScan/GroupBy/PlanCache at
# workers 1/2/4/8, then the P1 experiment, which writes the machine-readable
# BENCH_parallel.json (speedups are only meaningful on a multi-core runner —
# check the recorded gomaxprocs).
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkParallelScan|BenchmarkParallelGroupBy|BenchmarkPlanCache' -benchmem .
	$(GO) run ./cmd/experiments -only P1 -obs "" -parallel BENCH_parallel.json

# Columnar-executor benchmark (P2): times the E3 GROUP BY on the row path
# vs the vectorized columnar path at worker budgets 1/4/8 and refreshes
# the "p2" section of BENCH_parallel.json (the "p1" section is preserved
# by the read-modify-write writer). The experiment fails unless columnar
# beats the row path ≥3× at one worker with bitwise-identical results;
# the greps re-assert both verdicts on the committed artifact so a stale
# JSON can't pass.
bench-columnar:
	$(GO) run ./cmd/experiments -only P2 -obs "" -parallel BENCH_parallel.json
	@grep -q '"speedup_ok": true' BENCH_parallel.json || { \
		echo "bench-columnar: BENCH_parallel.json lacks speedup_ok: true"; exit 1; }
	@grep -q '"identical_results": true' BENCH_parallel.json || { \
		echo "bench-columnar: BENCH_parallel.json lacks identical_results: true"; exit 1; }

# Tracing-overhead benchmark (T1): times the E1 upload with tracing off,
# on, and with governed span persistence, and writes BENCH_trace.json.
# The experiment itself fails if either the traced or the persisted
# overhead exceeds the 5% budget; the grep re-asserts the persisted
# verdict on the artifact so a stale JSON can't pass.
bench-trace:
	$(GO) run ./cmd/experiments -only T1 -obs "" -trace BENCH_trace.json
	@grep -q '"persisted_within_budget": true' BENCH_trace.json || { \
		echo "bench-trace: BENCH_trace.json lacks persisted_within_budget: true"; exit 1; }

experiments:
	$(GO) run ./cmd/experiments -quick

clean:
	rm -rf bin BENCH_obs.json
