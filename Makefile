# Developer entry points. `make check` is the gate a change must pass:
# vet, full build, the race-enabled test suite, and a one-shot run of the
# observability overhead guard benchmark.

GO ?= go

.PHONY: check vet build test race bench-smoke bench experiments clean

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per sub-benchmark: proves the guard still compiles and
# runs. Real numbers come from `make bench`.
bench-smoke:
	$(GO) test -run '^$$' -bench ObsOverhead -benchtime 1x .

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

experiments:
	$(GO) run ./cmd/experiments -quick

clean:
	rm -rf bin BENCH_obs.json
