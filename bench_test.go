package perfdmf

// One benchmark per evaluation experiment (E1–E8 in DESIGN.md §3) and per
// design-choice ablation (§4). The full-scale sweeps — including the
// paper's 16K-processor point — are run by cmd/experiments; the benchmarks
// here use sizes that keep `go test -bench=.` tractable while preserving
// each experiment's shape. Custom metrics report the quantity each
// experiment is about (data points/s, agreement, bytes).

import (
	"fmt"
	"os"
	"testing"
	"time"

	"perfdmf/internal/analysis"
	"perfdmf/internal/core"
	"perfdmf/internal/experiments"
	"perfdmf/internal/formats"
	"perfdmf/internal/mining"
	"perfdmf/internal/obs"
	"perfdmf/internal/synth"
)

func analysisSpeedup(s *core.DataSession, trials []*core.Trial) (*analysis.SpeedupStudy, error) {
	return analysis.Speedup(s, trials, "TIME")
}

var benchCounter int

func benchDSN(tag string) string {
	benchCounter++
	return fmt.Sprintf("mem:bench_%s_%d", tag, benchCounter)
}

// benchArchive opens a session with app+experiment selected.
func benchArchive(b *testing.B, tag string) *core.DataSession {
	b.Helper()
	s, err := core.Open(benchDSN(tag))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	app := &core.Application{Name: "bench"}
	if err := s.SaveApplication(app); err != nil {
		b.Fatal(err)
	}
	s.SetApplication(app)
	exp := &core.Experiment{Name: "bench"}
	if err := s.SaveExperiment(exp); err != nil {
		b.Fatal(err)
	}
	s.SetExperiment(exp)
	return s
}

// BenchmarkE1LargeTrialUpload measures the §3.1/§5.3 bulk-load path at two
// scales (events fixed at the paper's 101).
func BenchmarkE1LargeTrialUpload(b *testing.B) {
	for _, threads := range []int{512, 2048} {
		b.Run(fmt.Sprintf("threads-%d", threads), func(b *testing.B) {
			p := synth.LargeTrial(synth.LargeTrialConfig{Threads: threads, Events: 101, Metrics: 1, Seed: 1})
			points := float64(p.DataPoints())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := benchArchive(b, "e1up")
				if _, err := s.UploadTrial(p, core.UploadOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkE1LargeTrialLoad measures the full-trial download.
func BenchmarkE1LargeTrialLoad(b *testing.B) {
	for _, threads := range []int{512, 2048} {
		b.Run(fmt.Sprintf("threads-%d", threads), func(b *testing.B) {
			s := benchArchive(b, "e1load")
			p := synth.LargeTrial(synth.LargeTrialConfig{Threads: threads, Events: 101, Metrics: 1, Seed: 1})
			trial, err := s.UploadTrial(p, core.UploadOptions{})
			if err != nil {
				b.Fatal(err)
			}
			points := float64(p.DataPoints())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loaded, err := s.LoadTrial(trial.ID)
				if err != nil {
					b.Fatal(err)
				}
				if loaded.DataPoints() != p.DataPoints() {
					b.Fatal("lost data")
				}
			}
			b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkE1SummaryQuery measures the selective query the paper's API is
// designed for (no full-trial load).
func BenchmarkE1SummaryQuery(b *testing.B) {
	s := benchArchive(b, "e1query")
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: 2048, Events: 101, Metrics: 1, Seed: 1})
	trial, err := s.UploadTrial(p, core.UploadOptions{})
	if err != nil {
		b.Fatal(err)
	}
	s.SetTrial(trial)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.MeanSummary("TIME")
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 101 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkE2Import measures parse+upload for each of the paper's formats.
func BenchmarkE2Import(b *testing.B) {
	dir, err := os.MkdirTemp("", "perfdmf-bench-e2")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	paths, err := synth.WriteSampleFiles(dir, 2005)
	if err != nil {
		b.Fatal(err)
	}
	for _, format := range formats.All {
		b.Run(format, func(b *testing.B) {
			s := benchArchive(b, "e2")
			for i := 0; i < b.N; i++ {
				p, err := formats.Load(format, paths[format])
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.UploadTrial(p, core.UploadOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Speedup measures the §5.2 study (upload once, analyze per
// iteration).
func BenchmarkE3Speedup(b *testing.B) {
	s := benchArchive(b, "e3")
	for _, p := range synth.ScalingSeries(synth.ScalingConfig{
		Procs: []int{1, 2, 4, 8, 16, 32, 64}, Seed: 11,
	}) {
		if _, err := s.UploadTrial(p, core.UploadOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	trials, err := s.TrialList()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study, err := analysisSpeedup(s, trials)
		if err != nil {
			b.Fatal(err)
		}
		if len(study.Routines) == 0 {
			b.Fatal("empty study")
		}
	}
}

// BenchmarkE4Cluster measures feature extraction + k-means at the paper's
// thread counts, reporting agreement with the planted classes.
func BenchmarkE4Cluster(b *testing.B) {
	for _, threads := range []int{128, 512, 1024} {
		b.Run(fmt.Sprintf("threads-%d", threads), func(b *testing.B) {
			s := benchArchive(b, "e4")
			p, truth := synth.CounterTrial(synth.CounterConfig{Threads: threads, Seed: 7})
			trial, err := s.UploadTrial(p, core.UploadOptions{})
			if err != nil {
				b.Fatal(err)
			}
			agreement := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fm, err := mining.ExtractFeatures(s, trial.ID, nil)
				if err != nil {
					b.Fatal(err)
				}
				fm.Normalize(mining.NormZScore)
				cl, err := mining.KMeans(fm.Rows, mining.KMeansConfig{K: 3, Seed: 17})
				if err != nil {
					b.Fatal(err)
				}
				aligned := make([]int, len(fm.Threads))
				for j, th := range fm.Threads {
					aligned[j] = truth[th.Node]
				}
				agreement = clusterAgreement(cl.Assignments, aligned, cl.K)
			}
			b.ReportMetric(100*agreement, "agreement%")
		})
	}
}

// BenchmarkE5Query compares the object API and raw SQL on both back ends.
func BenchmarkE5Query(b *testing.B) {
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: 64, Events: 40, Metrics: 1, Seed: 3})
	backends := []struct{ name, dsn string }{
		{"mem", benchDSN("e5")},
	}
	fileDir, err := os.MkdirTemp("", "perfdmf-bench-e5")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(fileDir) })
	backends = append(backends, struct{ name, dsn string }{"file", "file:" + fileDir})

	for _, backend := range backends {
		s, err := core.Open(backend.dsn)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		app := &core.Application{Name: "bench"}
		if err := s.SaveApplication(app); err != nil {
			b.Fatal(err)
		}
		s.SetApplication(app)
		exp := &core.Experiment{Name: "bench"}
		if err := s.SaveExperiment(exp); err != nil {
			b.Fatal(err)
		}
		s.SetExperiment(exp)
		trial, err := s.UploadTrial(p, core.UploadOptions{})
		if err != nil {
			b.Fatal(err)
		}
		s.SetTrial(trial)

		b.Run(backend.name+"-api", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := s.MeanSummary("TIME")
				if err != nil || len(rows) == 0 {
					b.Fatal(err)
				}
			}
		})
		b.Run(backend.name+"-sql", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := s.Conn().Query(`
					SELECT e.name, t.exclusive FROM interval_event e
					JOIN interval_mean_summary t ON t.interval_event = e.id
					WHERE e.trial = ? ORDER BY t.exclusive DESC`, trial.ID)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for rs.Next() {
					n++
				}
				rs.Close()
				if n == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkE6SchemaFlex measures the ALTER TABLE + metadata-discovery flow.
func BenchmarkE6SchemaFlex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE6()
		if err != nil {
			b.Fatal(err)
		}
		if !res.FieldsOK || !res.DroppedClean {
			b.Fatal("E6 invariant failed")
		}
	}
}

// BenchmarkE7DerivedMetric measures deriving and persisting FLOPS into an
// existing trial.
func BenchmarkE7DerivedMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE7(64)
		if err != nil {
			b.Fatal(err)
		}
		if !res.ValueOK {
			b.Fatal("derived value wrong")
		}
	}
}

// BenchmarkE8XMLRoundTrip measures the common-XML export/import path.
func BenchmarkE8XMLRoundTrip(b *testing.B) {
	dir, err := os.MkdirTemp("", "perfdmf-bench-e8")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	var bytes int64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE8(dir, 32, 30)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Lossless {
			b.Fatal("lossy round trip")
		}
		bytes = res.Bytes
	}
	b.ReportMetric(float64(bytes), "bytes")
}

// BenchmarkObsOverhead is the observability overhead guard: the same
// Miranda-like bulk upload with instrumentation idle (counters only),
// with tracing + slow-query logging on, and with only the slow-query
// threshold armed. The idle case must stay within a few percent of the
// seed's upload rate — the acceptance bound is < 5% — because the bulk
// path then pays just atomic adds per statement.
func BenchmarkObsOverhead(b *testing.B) {
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: 512, Events: 101, Metrics: 1, Seed: 1})
	points := float64(p.DataPoints())
	variants := []struct {
		name string
		cfg  obs.Config
	}{
		{"off", obs.Config{}},
		{"slowlog", obs.Config{SlowQuery: 50 * time.Millisecond}},
		{"trace", obs.Config{Trace: true, SlowQuery: 50 * time.Millisecond}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			obs.Apply(v.cfg)
			defer obs.Apply(obs.Config{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := benchArchive(b, "obs-"+v.name)
				if _, err := s.UploadTrial(p, core.UploadOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// --- ablations (DESIGN.md §4) ---

// BenchmarkAblationBatchInsert compares bulk-insert batch sizes.
func BenchmarkAblationBatchInsert(b *testing.B) {
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: 128, Events: 40, Metrics: 1, Seed: 4})
	for _, batch := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := benchArchive(b, "ab-batch")
				if _, err := s.UploadTrial(p, core.UploadOptions{BatchSize: batch}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.DataPoints())*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkAblationIndex compares the indexed download with a full scan.
func BenchmarkAblationIndex(b *testing.B) {
	setup := func(b *testing.B) (*core.DataSession, int64) {
		s := benchArchive(b, "ab-index")
		var last int64
		for i := 0; i < 6; i++ {
			p := synth.LargeTrial(synth.LargeTrialConfig{Threads: 64, Events: 30, Metrics: 1, Seed: int64(i)})
			trial, err := s.UploadTrial(p, core.UploadOptions{})
			if err != nil {
				b.Fatal(err)
			}
			last = trial.ID
		}
		return s, last
	}
	b.Run("with-index", func(b *testing.B) {
		s, trialID := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.LoadTrial(trialID); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		s, trialID := setup(b)
		if _, err := s.Conn().Exec("DROP INDEX ix_ilp_event ON interval_location_profile"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.LoadTrial(trialID); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSummary compares precomputed summary tables with
// aggregate-on-demand queries.
func BenchmarkAblationSummary(b *testing.B) {
	s := benchArchive(b, "ab-summary")
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: 128, Events: 40, Metrics: 1, Seed: 6})
	trial, err := s.UploadTrial(p, core.UploadOptions{})
	if err != nil {
		b.Fatal(err)
	}
	s.SetTrial(trial)
	b.Run("precomputed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := s.MeanSummary("TIME")
			if err != nil || len(rows) != 40 {
				b.Fatalf("%v (%d rows)", err, len(rows))
			}
		}
	})
	b.Run("on-demand", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rs, err := s.Conn().Query(`
				SELECT e.name, AVG(p.exclusive)
				FROM interval_event e
				JOIN interval_location_profile p ON p.interval_event = e.id
				WHERE e.trial = ?
				GROUP BY e.name`, trial.ID)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for rs.Next() {
				n++
			}
			rs.Close()
			if n != 40 {
				b.Fatalf("%d rows", n)
			}
		}
	})
}

// BenchmarkAblationSeeding compares k-means++ with uniform seeding,
// reporting the quality (RSS) each achieves in single-restart runs.
func BenchmarkAblationSeeding(b *testing.B) {
	s := benchArchive(b, "ab-seed")
	p, _ := synth.CounterTrial(synth.CounterConfig{Threads: 256, Seed: 7})
	trial, err := s.UploadTrial(p, core.UploadOptions{})
	if err != nil {
		b.Fatal(err)
	}
	fm, err := mining.ExtractFeatures(s, trial.ID, nil)
	if err != nil {
		b.Fatal(err)
	}
	fm.Normalize(mining.NormZScore)
	for _, variant := range []struct {
		name  string
		plain bool
	}{{"kmeans++", false}, {"uniform", true}} {
		b.Run(variant.name, func(b *testing.B) {
			worst := 0.0
			for i := 0; i < b.N; i++ {
				cl, err := mining.KMeans(fm.Rows, mining.KMeansConfig{
					K: 3, Seed: int64(i), PlainRNG: variant.plain, Restarts: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if cl.RSS > worst {
					worst = cl.RSS
				}
			}
			b.ReportMetric(worst, "worst-rss")
		})
	}
}

func clusterAgreement(assign, truth []int, k int) float64 {
	match := 0
	for c := 0; c < k; c++ {
		counts := map[int]int{}
		for i, a := range assign {
			if a == c {
				counts[truth[i]]++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		match += best
	}
	return float64(match) / float64(len(assign))
}
