// Command perfdmf is the PerfDMF command-line tool: it loads profiles from
// any supported format into a performance archive, lists the archive tree,
// prints trial summaries, exports trials as XML, runs raw SQL, and deletes
// trials.
//
// Usage:
//
//	perfdmf load   -db DSN -app NAME -exp NAME [-format F] [-name N] PATH...
//	perfdmf list   -db DSN
//	perfdmf summary -db DSN -trial ID [-metric TIME] [-n 20]
//	perfdmf export -db DSN -trial ID -o FILE.xml
//	perfdmf sql    -db DSN "SELECT ..."
//	perfdmf delete -db DSN -trial ID
//	perfdmf compare -db DSN -a ID -b ID [-metric TIME]
//	perfdmf derive -db DSN -trial ID -name FLOPS -num PAPI_FP_OPS -den TIME
//	perfdmf regress -db DSN -trials 1,2,3 [-threshold 0.1]
//	perfdmf dump   -db DSN -o DIR            (portable archive export)
//	perfdmf restore -db DSN -from DIR
//	perfdmf serve  -db DSN [-addr HOST:PORT] [-trace] [-telemetry=false] [-history 1s]
//	perfdmf top    [-url http://127.0.0.1:7227] [-interval 2s] [-n 1] [-kill ID]
//	perfdmf alerts add -db DSN -name N -metric M -threshold X [-agg rate] [-for 30s]
//	perfdmf alerts list|log -db DSN
//	perfdmf doctor -db DSN [-json]
//	perfdmf formats
//
// DSN examples: file:/path/to/archive, mem:scratch. Connection options
// ride the DSN: file:dir?trace=1&slowms=50 for observability,
// ?workers=N to cap SELECT parallelism (0 forces serial execution; unset
// defaults to GOMAXPROCS) — e.g. perfdmf sql -db "file:archive?workers=4".
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"perfdmf/internal/core"
	"perfdmf/internal/formats"
	"perfdmf/internal/formats/xmlprof"
	"perfdmf/internal/godbc"
	"perfdmf/internal/model"
	"perfdmf/internal/obs"
	"perfdmf/internal/synth"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perfdmf:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (load, list, summary, export, sql, delete, compare, derive, regress, stats, dump, restore, serve, trace, top, alerts, doctor, synth, formats)")
	}
	switch args[0] {
	case "load":
		return cmdLoad(args[1:])
	case "list":
		return cmdList(args[1:])
	case "summary":
		return cmdSummary(args[1:])
	case "export":
		return cmdExport(args[1:])
	case "sql":
		return cmdSQL(args[1:])
	case "delete":
		return cmdDelete(args[1:])
	case "compare":
		return cmdCompare(args[1:])
	case "derive":
		return cmdDerive(args[1:])
	case "regress":
		return cmdRegress(args[1:])
	case "stats":
		return cmdStats(args[1:])
	case "dump":
		return cmdDump(args[1:])
	case "restore":
		return cmdRestore(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "trace":
		return cmdTrace(args[1:])
	case "top":
		return cmdTop(args[1:])
	case "alerts":
		return cmdAlerts(args[1:])
	case "doctor":
		return cmdDoctor(args[1:])
	case "synth":
		return cmdSynth(args[1:])
	case "formats":
		fmt.Println(strings.Join(formats.All, "\n"))
		return nil
	}
	return fmt.Errorf("unknown subcommand %q", args[0])
}

func openSession(dsn string) (*core.DataSession, error) {
	if dsn == "" {
		return nil, fmt.Errorf("-db is required (e.g. file:/tmp/archive)")
	}
	return core.Open(dsn)
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	appName := fs.String("app", "", "application name")
	expName := fs.String("exp", "", "experiment name")
	format := fs.String("format", "", "profile format (default: auto-detect)")
	trialName := fs.String("name", "", "trial name (default: derived from the input)")
	ranks := fs.Bool("ranks", false, "treat PATH as a directory of per-rank files (dynaprof/hpm/psrun)")
	prefix := fs.String("prefix", "", "with -ranks: only files starting with this prefix")
	suffix := fs.String("suffix", "", "with -ranks: only files ending with this suffix")
	telemetry := fs.Bool("telemetry", false, "persist the load's span tree into the archive's PERFDMF_SPANS table (inspect with `perfdmf trace`)")
	telBudget := fs.Float64("telemetry-budget", 0, "telemetry overhead budget in percent (0 defers to ?telemetrybudget then the default; negative disables sampling)")
	telRetainRows := fs.Int("telemetry-retain-rows", 0, "cap PERFDMF_SPANS/PERFDMF_SLOWLOG at this many rows (0 = default cap, negative = uncapped)")
	telRetainAge := fs.Duration("telemetry-retain-age", 0, "prune telemetry rows older than this (0 disables age pruning)")
	historyEvery := fs.Duration("history-every", 0, "with -telemetry: scrape metrics into PERFDMF_METRICS_HISTORY and evaluate alert rules on this cadence (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ranks && *format == "" {
		return fmt.Errorf("-ranks needs an explicit -format (dynaprof, hpm or psrun)")
	}
	if *appName == "" || *expName == "" {
		return fmt.Errorf("load needs -app and -exp")
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("load needs at least one profile path")
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()

	var stopTel func() error
	if *telemetry {
		stopTel, err = godbc.StartTelemetry(*dsn, godbc.TelemetryOptions{
			BudgetPct:    *telBudget,
			RetainRows:   *telRetainRows,
			RetainAge:    *telRetainAge,
			HistoryEvery: *historyEvery,
		})
		if err != nil {
			return err
		}
		// Runs before s.Close (LIFO), flushing the tail of the sink into
		// PERFDMF_SPANS while the engine is still open. The happy path
		// stops explicitly below (and prints a summary); this only covers
		// early error returns.
		defer func() {
			if stopTel != nil {
				stopTel() //nolint:errcheck // telemetry flush is best-effort
			}
		}()
	}

	app, err := s.FindApplication(*appName)
	if err != nil {
		return err
	}
	if app == nil {
		app = &core.Application{Name: *appName}
		if err := s.SaveApplication(app); err != nil {
			return err
		}
	}
	s.SetApplication(app)
	exps, err := s.ExperimentList()
	if err != nil {
		return err
	}
	var exp *core.Experiment
	for _, e := range exps {
		if e.Name == *expName {
			exp = e
		}
	}
	if exp == nil {
		exp = &core.Experiment{Name: *expName}
		if err := s.SaveExperiment(exp); err != nil {
			return err
		}
	}
	s.SetExperiment(exp)

	for _, path := range paths {
		// One root span per input: parse and upload (and every statement
		// they issue) hang off it, so each load renders as a single tree.
		label := *trialName
		if label == "" {
			label = filepath.Base(path)
		}
		ctx, sp := obs.StartSpan(context.Background(), "load", "load:"+label)
		trial, profile, err := loadOne(ctx, s, path, *format, *trialName, *ranks, *prefix, *suffix)
		sp.Finish(err)
		if err != nil {
			return err
		}
		fmt.Printf("loaded trial %d (%s) — %s\n", trial.ID, trial.Name, synth.Describe(profile))
	}
	if stopTel != nil {
		stop := stopTel
		stopTel = nil
		if err := stop(); err != nil {
			return err
		}
		// The pipeline has drained: report what it kept, shed, and pruned
		// so scripted callers (make telemetry-smoke) can assert on it.
		if st, ok := godbc.TelemetryState(); ok {
			fmt.Printf("telemetry: stored=%d sampled_out=%d dropped=%d pruned_spans=%d pruned_slowlog=%d sample_rate=%.3f\n",
				st.Stored, st.SampledOut, st.Dropped, st.PrunedSpans, st.PrunedSlowLog, st.SampleRate)
			if st.HistoryEnabled {
				fmt.Printf("history: samples=%d rules=%d pending=%d firing=%d\n",
					obs.DefaultHistory.TotalSamples(), st.AlertRules, st.AlertsPending, st.AlertsFiring)
			}
		}
	}
	return nil
}

func loadOne(ctx context.Context, s *core.DataSession, path, format, trialName string, ranks bool, prefix, suffix string) (*core.Trial, *model.Profile, error) {
	var profile *model.Profile
	var err error
	if ranks {
		files, scanErr := formats.ScanDir(path, prefix, suffix)
		if scanErr != nil {
			return nil, nil, scanErr
		}
		profile, err = formats.LoadMultiRankCtx(ctx, format, files)
	} else {
		profile, err = loadProfile(ctx, format, path)
	}
	if err != nil {
		return nil, nil, err
	}
	trial, err := s.UploadTrialCtx(ctx, profile, core.UploadOptions{TrialName: trialName})
	if err != nil {
		return nil, nil, err
	}
	return trial, profile, nil
}

func loadProfile(ctx context.Context, format, path string) (*model.Profile, error) {
	if format == "" {
		return formats.LoadAutoCtx(ctx, path)
	}
	return formats.LoadCtx(ctx, format, path)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	return printTree(s, os.Stdout)
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	trialID := fs.Int64("trial", 0, "trial id")
	metric := fs.String("metric", "TIME", "metric name")
	n := fs.Int("n", 20, "events to show")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	s.SetTrial(&core.Trial{ID: *trialID})
	rows, err := s.MeanSummary(*metric)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("trial %d has no %s summary", *trialID, *metric)
	}
	if *n < len(rows) {
		rows = rows[:*n]
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "EXCL%%\tEXCLUSIVE\tINCLUSIVE\tCALLS\tGROUP\tNAME\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%.1f\t%.4g\t%.4g\t%.0f\t%s\t%s\n",
			r.ExclPct, r.Exclusive, r.Inclusive, r.Calls, r.Group, r.EventName)
	}
	return w.Flush()
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	trialID := fs.Int64("trial", 0, "trial id")
	out := fs.String("o", "", "output XML file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("export needs -o")
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	p, err := s.LoadTrial(*trialID)
	if err != nil {
		return err
	}
	if err := xmlprof.Write(*out, p); err != nil {
		return err
	}
	fmt.Printf("exported trial %d to %s — %s\n", *trialID, *out, synth.Describe(p))
	return nil
}

// cmdSQL runs one statement given as an argument, or — with no argument —
// acts as a shell reading semicolon-terminated statements from stdin.
func cmdSQL(args []string) error {
	fs := flag.NewFlagSet("sql", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	switch fs.NArg() {
	case 1:
		return runStatement(s, fs.Arg(0))
	case 0:
		return sqlShell(s, os.Stdin)
	}
	return fmt.Errorf("sql takes at most one query argument")
}

// sqlShell reads semicolon-terminated statements from r, executing each;
// statement errors are printed and the shell continues.
func sqlShell(s *core.DataSession, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var buf strings.Builder
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.HasSuffix(strings.TrimSpace(line), ";") {
			continue
		}
		stmt := strings.TrimSpace(buf.String())
		buf.Reset()
		stmt = strings.TrimSuffix(stmt, ";")
		if strings.TrimSpace(stmt) == "" {
			continue
		}
		if err := runStatement(s, stmt); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	}
	if rest := strings.TrimSpace(buf.String()); rest != "" {
		if err := runStatement(s, rest); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	}
	return sc.Err()
}

func runStatement(s *core.DataSession, query string) error {
	if isQuery(query) {
		rows, err := s.Conn().Query(query)
		if err != nil {
			return err
		}
		defer rows.Close()
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, strings.Join(rows.Columns(), "\t"))
		count := 0
		for rows.Next() {
			vals := make([]string, len(rows.Columns()))
			for i := range vals {
				vals[i] = fmt.Sprint(rows.Value(i))
			}
			fmt.Fprintln(w, strings.Join(vals, "\t"))
			count++
		}
		w.Flush()
		fmt.Printf("(%d rows)\n", count)
		return rows.Err()
	}
	res, err := s.Conn().Exec(query)
	if err != nil {
		return err
	}
	fmt.Printf("ok (%d rows affected)\n", res.RowsAffected)
	return nil
}

func isQuery(q string) bool {
	upper := strings.ToUpper(strings.TrimSpace(q))
	return strings.HasPrefix(upper, "SELECT") || strings.HasPrefix(upper, "EXPLAIN")
}

func cmdDelete(args []string) error {
	fs := flag.NewFlagSet("delete", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	trialID := fs.Int64("trial", 0, "trial id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	if err := s.DeleteTrial(*trialID); err != nil {
		return err
	}
	fmt.Printf("deleted trial %d\n", *trialID)
	return nil
}

// printTree renders the application → experiment → trial hierarchy, the
// text equivalent of ParaProf's archive tree (paper Figure 2).
func printTree(s *core.DataSession, w *os.File) error {
	apps, err := s.ApplicationList()
	if err != nil {
		return err
	}
	if len(apps) == 0 {
		fmt.Fprintln(w, "(empty archive)")
		return nil
	}
	for _, app := range apps {
		fmt.Fprintf(w, "%s (application %d)\n", app.Name, app.ID)
		s.SetApplication(app)
		exps, err := s.ExperimentList()
		if err != nil {
			return err
		}
		for _, exp := range exps {
			fmt.Fprintf(w, "  %s (experiment %d)\n", exp.Name, exp.ID)
			s.SetExperiment(exp)
			trials, err := s.TrialList()
			if err != nil {
				return err
			}
			for _, trial := range trials {
				fmt.Fprintf(w, "    %s (trial %d, %d nodes)\n",
					trial.Name, trial.ID, trial.NodeCount())
			}
		}
	}
	return nil
}
