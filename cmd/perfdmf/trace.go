// The trace subcommand: reconstruct and pretty-print causal span trees
// from the PERFDMF_SPANS telemetry table (written by `load -telemetry` or
// `serve`). Companion of /traces?tree=1, but for archives on disk.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"perfdmf/internal/godbc"
	"perfdmf/internal/obs"
	"perfdmf/internal/synth"
)

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	limit := fs.Int("n", 20, "print at most this many trees (most recent last)")
	asJSON := fs.Bool("json", false, "emit the span forest as JSON instead of rendered trees")
	if err := fs.Parse(args); err != nil {
		return err
	}
	filter := strings.Join(fs.Args(), " ")
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	return printTrace(s.Conn(), os.Stdout, filter, *limit, *asJSON)
}

// printTrace loads every persisted span, assembles the forest, and writes
// the trees whose root matches filter (substring of the root label, or an
// exact root span id) — all of them when filter is empty. With asJSON the
// selected trees are emitted as a JSON array (the /traces?tree=1 shape)
// instead of rendered text, so scripts can consume archives on disk.
func printTrace(c godbc.Conn, w io.Writer, filter string, limit int, asJSON bool) error {
	tables, err := c.MetaData().Tables()
	if err != nil {
		return err
	}
	found := false
	for _, t := range tables {
		if strings.EqualFold(t, godbc.SpansTable) {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("no %s table in this archive — load with -telemetry or run serve first", godbc.SpansTable)
	}

	rows, err := c.Query(`SELECT span_id, parent_span_id, root_op, kind, op, statement,
		dur_us, rows_scanned, rows_returned, err FROM PERFDMF_SPANS`)
	if err != nil {
		return err
	}
	defer rows.Close()
	var spans []*obs.Span
	for rows.Next() {
		sp := &obs.Span{}
		sp.ID = asInt64(rows.Value(0))
		sp.ParentID = asInt64(rows.Value(1)) // NULL (pre-migration rows) → 0 → root
		sp.Root = asString(rows.Value(2))
		sp.Kind = asString(rows.Value(3))
		stmt := asString(rows.Value(5))
		switch sp.Kind {
		case "exec", "query", "prepare":
			sp.Statement = stmt
		default:
			sp.Name = stmt
		}
		sp.Total = time.Duration(asInt64(rows.Value(6))) * time.Microsecond
		sp.RowsScanned = asInt64(rows.Value(7))
		sp.RowsReturned = asInt64(rows.Value(8))
		sp.Err = asString(rows.Value(9))
		spans = append(spans, sp)
	}
	if err := rows.Err(); err != nil {
		return err
	}
	if len(spans) == 0 {
		if asJSON {
			fmt.Fprintln(w, "[]")
			return nil
		}
		fmt.Fprintln(w, "no spans recorded")
		return nil
	}

	trees := obs.BuildTrees(spans)
	if filter != "" {
		var kept []*obs.TreeNode
		for _, t := range trees {
			if strings.Contains(t.Label(200), filter) || fmt.Sprint(t.ID) == filter {
				kept = append(kept, t)
			}
		}
		trees = kept
		if len(trees) == 0 {
			return fmt.Errorf("no span tree matches %q", filter)
		}
	}
	if limit > 0 && len(trees) > limit {
		trees = trees[len(trees)-limit:]
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(trees)
	}
	shown, depth := 0, 0
	for _, t := range trees {
		obs.WriteTree(w, t)
		fmt.Fprintln(w)
		shown += countNodes(t)
		if d := t.Depth(); d > depth {
			depth = d
		}
	}
	fmt.Fprintf(w, "trace: %d spans in %d trees, max depth %d\n", shown, len(trees), depth)
	return nil
}

func countNodes(n *obs.TreeNode) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

func asInt64(v any) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int:
		return int64(x)
	case float64:
		return int64(x)
	}
	return 0
}

func asString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return ""
}

// cmdSynth writes one synthetic sample input per supported format —
// handy fixtures for smoke tests and demos (see `make trace-smoke`).
func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	dir := fs.String("o", "", "output directory")
	seed := fs.Int64("seed", 42, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("synth needs -o DIR")
	}
	files, err := synth.WriteSampleFiles(*dir, *seed)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(files))
	for f := range files {
		names = append(names, f)
	}
	sort.Strings(names)
	for _, f := range names {
		fmt.Printf("%s\t%s\n", f, files[f])
	}
	return nil
}
