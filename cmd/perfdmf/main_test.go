package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perfdmf/internal/core"
	"perfdmf/internal/formats/tau"
	"perfdmf/internal/synth"
)

// writeTauSample writes a small TAU profile directory and returns it.
func writeTauSample(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "tau-run")
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: 4, Events: 8, Metrics: 1, Seed: 1})
	if err := tau.Write(dir, p); err != nil {
		t.Fatal(err)
	}
	return dir
}

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		io.Copy(&b, r) //nolint:errcheck // pipe read ends at close
		done <- b.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestCLIEndToEnd(t *testing.T) {
	dbDir := t.TempDir()
	dsn := "file:" + dbDir
	tauDir := writeTauSample(t)

	// load (auto-detect).
	out, err := capture(t, func() error {
		return run([]string{"load", "-db", dsn, "-app", "demo", "-exp", "e1", tauDir})
	})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !strings.Contains(out, "loaded trial 1") {
		t.Fatalf("load output: %q", out)
	}

	// load with explicit format and trial name.
	if _, err := capture(t, func() error {
		return run([]string{"load", "-db", dsn, "-app", "demo", "-exp", "e1",
			"-format", "tau", "-name", "second", tauDir})
	}); err != nil {
		t.Fatalf("load 2: %v", err)
	}

	// list shows the tree.
	out, err = capture(t, func() error { return run([]string{"list", "-db", dsn}) })
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, want := range []string{"demo (application 1)", "e1 (experiment 1)", "second (trial 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}

	// summary prints events.
	out, err = capture(t, func() error {
		return run([]string{"summary", "-db", dsn, "-trial", "1", "-n", "3"})
	})
	if err != nil {
		t.Fatalf("summary: %v", err)
	}
	if !strings.Contains(out, "EXCL%") || len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Errorf("summary output:\n%s", out)
	}

	// export produces loadable XML.
	xmlPath := filepath.Join(t.TempDir(), "out.xml")
	if _, err := capture(t, func() error {
		return run([]string{"export", "-db", dsn, "-trial", "1", "-o", xmlPath})
	}); err != nil {
		t.Fatalf("export: %v", err)
	}
	if fi, err := os.Stat(xmlPath); err != nil || fi.Size() == 0 {
		t.Fatalf("export file: %v", err)
	}

	// sql: SELECT and DML.
	out, err = capture(t, func() error {
		return run([]string{"sql", "-db", dsn, "SELECT COUNT(*) FROM trial"})
	})
	if err != nil || !strings.Contains(out, "(1 rows)") {
		t.Fatalf("sql select: %v\n%s", err, out)
	}
	out, err = capture(t, func() error {
		return run([]string{"sql", "-db", dsn, "UPDATE trial SET name = 'renamed' WHERE id = 1"})
	})
	if err != nil || !strings.Contains(out, "ok (1 rows affected)") {
		t.Fatalf("sql update: %v\n%s", err, out)
	}

	// delete removes the trial.
	if _, err := capture(t, func() error {
		return run([]string{"delete", "-db", dsn, "-trial", "2"})
	}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	out, _ = capture(t, func() error { return run([]string{"list", "-db", dsn}) })
	if strings.Contains(out, "second") {
		t.Errorf("deleted trial still listed:\n%s", out)
	}

	// formats subcommand.
	out, err = capture(t, func() error { return run([]string{"formats"}) })
	if err != nil || !strings.Contains(out, "tau") || !strings.Contains(out, "psrun") {
		t.Fatalf("formats: %v\n%s", err, out)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"load", "-db", "mem:x"},
		{"load", "-db", "mem:x", "-app", "a", "-exp", "e"},
		{"list"},
		{"summary", "-db", "mem:clifresh", "-trial", "99"},
		{"export", "-db", "mem:clifresh2", "-trial", "1"},
		{"sql", "-db", "mem:clifresh3", "one", "two"},
		{"load", "-db", "nodriver:x", "-app", "a", "-exp", "e", "/nope"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestCLILoadRanks(t *testing.T) {
	dir := t.TempDir()
	doc := `<hwpcreport version="1.0" generator="psrun">
  <hwpcevents><hwpcevent name="PAPI_TOT_CYC" type="preset">100</hwpcevent></hwpcevents>
  <wallclock units="seconds">1.0</wallclock>
</hwpcreport>`
	for r := 0; r < 4; r++ {
		os.WriteFile(filepath.Join(dir, "run."+string(rune('0'+r))+".xml"), []byte(doc), 0o644)
	}
	dsn := "mem:cli_ranks"
	out, err := capture(t, func() error {
		return run([]string{"load", "-db", dsn, "-app", "a", "-exp", "e",
			"-format", "psrun", "-ranks", "-prefix", "run.", "-suffix", ".xml", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4 threads") {
		t.Fatalf("load -ranks output: %s", out)
	}
	// -ranks requires -format.
	if _, err := capture(t, func() error {
		return run([]string{"load", "-db", dsn, "-app", "a", "-exp", "e", "-ranks", dir})
	}); err == nil {
		t.Error("-ranks without -format accepted")
	}
}

func TestSQLShell(t *testing.T) {
	dsn := "file:" + t.TempDir()
	tauDir := writeTauSample(t)
	if _, err := capture(t, func() error {
		return run([]string{"load", "-db", dsn, "-app", "a", "-exp", "e", tauDir})
	}); err != nil {
		t.Fatal(err)
	}
	script := `SELECT COUNT(*) FROM trial;
SELECT name
  FROM application;
EXPLAIN SELECT * FROM trial WHERE id = 1;
UPDATE trial SET name = 'shellified' WHERE id = 1;
THIS IS NOT SQL;
SELECT name FROM trial`
	s, err := core.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := capture(t, func() error {
		return sqlShell(s, strings.NewReader(script))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"(1 rows)",             // count
		"a\n",                  // application name
		"index access",         // explain
		"ok (1 rows affected)", // update
		"error:",               // bad statement reported, shell continues
		"shellified",           // final un-terminated statement ran
	} {
		if !strings.Contains(out, want) {
			t.Errorf("shell output missing %q:\n%s", want, out)
		}
	}
}
