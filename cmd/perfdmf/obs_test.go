package main

import (
	"strings"
	"testing"
)

// TestStatsEngineMetrics is the observability acceptance check: after an
// upload + query session on a durable archive, `perfdmf stats` reports
// non-zero query, WAL and transaction metrics. Everything runs in-process
// (the obs registry is process-local).
func TestStatsEngineMetrics(t *testing.T) {
	dsn := "file:" + t.TempDir()
	tauDir := writeTauSample(t)
	if _, err := capture(t, func() error {
		return run([]string{"load", "-db", dsn, "-app", "obs", "-exp", "e1", tauDir})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"sql", "-db", dsn, "SELECT COUNT(*) FROM interval_event"})
	}); err != nil {
		t.Fatal(err)
	}

	out, err := capture(t, func() error { return run([]string{"stats", "-db", dsn}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ENGINE METRIC") {
		t.Fatalf("stats output missing metrics section:\n%s", out)
	}
	for _, name := range []string{
		"godbc_query_total", "godbc_exec_total",
		"reldb_wal_appends_total", "reldb_tx_commit_total",
		"sqlexec_rows_scanned_total",
	} {
		line := metricLine(out, name)
		if line == "" {
			t.Errorf("stats output missing metric %s:\n%s", name, out)
			continue
		}
		if strings.HasSuffix(strings.TrimSpace(line), " 0") {
			t.Errorf("metric %s is zero: %q", name, line)
		}
	}
	if !strings.Contains(out, "godbc_query_ns") {
		t.Errorf("stats output missing histogram table:\n%s", out)
	}

	// -prom renders the same registry in exposition format.
	out, err = capture(t, func() error { return run([]string{"stats", "-db", dsn, "-prom"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE godbc_query_total counter",
		"# TYPE godbc_query_ns histogram",
		`godbc_query_ns_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

// metricLine returns the output line containing name, "" when absent.
func metricLine(out, name string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, name) {
			return line
		}
	}
	return ""
}

// TestSQLExplainAnalyze drives EXPLAIN ANALYZE through the CLI sql command
// on an indexed SELECT, per the acceptance criterion.
func TestSQLExplainAnalyze(t *testing.T) {
	dsn := "file:" + t.TempDir()
	tauDir := writeTauSample(t)
	if _, err := capture(t, func() error {
		return run([]string{"load", "-db", dsn, "-app", "obs", "-exp", "e1", tauDir})
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"sql", "-db", dsn, "EXPLAIN ANALYZE SELECT name FROM trial WHERE id = 1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"index access",
		"actual: plan=", "execute=", "materialize=", "total=",
		"rows scanned=1, rows returned=1 (index access)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
}
