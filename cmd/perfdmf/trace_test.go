package main

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestTraceCLI drives the persisted-trace path end to end through run():
// load a trial with -telemetry so the upload's span tree lands in
// PERFDMF_SPANS, then assert `perfdmf trace` reconstructs a rooted,
// multi-level tree from the archive.
func TestTraceCLI(t *testing.T) {
	dsn := "file:" + t.TempDir()
	tauDir := writeTauSample(t)

	// Without telemetry there is nothing to trace — the error must point
	// at the fix.
	_, err := capture(t, func() error {
		return run([]string{"trace", "-db", dsn})
	})
	if err == nil || !strings.Contains(err.Error(), "-telemetry") {
		t.Fatalf("trace on empty archive: err = %v, want hint about -telemetry", err)
	}

	if _, err := capture(t, func() error {
		return run([]string{"load", "-db", dsn, "-telemetry", "-app", "demo", "-exp", "e1", tauDir})
	}); err != nil {
		t.Fatalf("load -telemetry: %v", err)
	}

	out, err := capture(t, func() error {
		return run([]string{"trace", "-db", dsn})
	})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if !strings.Contains(out, "└─") {
		t.Fatalf("trace output has no nested spans:\n%s", out)
	}
	m := regexp.MustCompile(`trace: (\d+) spans in (\d+) trees, max depth (\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("trace output missing summary line:\n%s", out)
	}
	spans, _ := strconv.Atoi(m[1])
	trees, _ := strconv.Atoi(m[2])
	depth, _ := strconv.Atoi(m[3])
	if spans < 3 || trees < 1 || depth < 3 {
		t.Fatalf("trace summary %v: want >=3 spans, >=1 tree, depth >=3", m[1:])
	}

	// Filtering by a root label substring keeps matching trees; an absent
	// label is an error rather than silent emptiness.
	if _, err := capture(t, func() error {
		return run([]string{"trace", "-db", dsn, "load:"})
	}); err != nil {
		t.Fatalf("trace with filter: %v", err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"trace", "-db", dsn, "no-such-root"})
	}); err == nil {
		t.Fatal("trace with bogus filter should fail")
	}
}

// TestSynthCLI: the fixture generator must emit one loadable input per
// format into the requested directory (trace-smoke builds on this).
func TestSynthCLI(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fixtures")
	out, err := capture(t, func() error {
		return run([]string{"synth", "-o", dir})
	})
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("synth listed %d fixtures, want several:\n%s", len(lines), out)
	}
	for _, ln := range lines {
		parts := strings.Split(ln, "\t")
		if len(parts) != 2 || !strings.HasPrefix(parts[1], dir) {
			t.Fatalf("bad synth listing line %q", ln)
		}
	}
}
