package main

import (
	"strings"
	"testing"

	"perfdmf/internal/core"
	"perfdmf/internal/synth"
)

// buildAnalysisArchive uploads two sPPM-like trials (the second with a
// planted slowdown in one routine) and returns the DSN.
func buildAnalysisArchive(t *testing.T) string {
	t.Helper()
	dsn := "file:" + t.TempDir()
	s, err := core.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	app := &core.Application{Name: "app"}
	s.SaveApplication(app)
	s.SetApplication(app)
	exp := &core.Experiment{Name: "versions"}
	s.SaveExperiment(exp)
	s.SetExperiment(exp)

	p1, _ := synth.CounterTrial(synth.CounterConfig{Threads: 8, Seed: 1})
	if _, err := s.UploadTrial(p1, core.UploadOptions{TrialName: "v1"}); err != nil {
		t.Fatal(err)
	}
	p2, _ := synth.CounterTrial(synth.CounterConfig{Threads: 8, Seed: 1})
	// Plant a 2x regression in "sweep" on every thread.
	ev := p2.FindIntervalEvent("sweep")
	tm := p2.MetricID("TIME")
	for _, th := range p2.Threads() {
		d := th.FindIntervalData(ev.ID)
		d.PerMetric[tm].Inclusive *= 2
		d.PerMetric[tm].Exclusive *= 2
	}
	if _, err := s.UploadTrial(p2, core.UploadOptions{TrialName: "v2"}); err != nil {
		t.Fatal(err)
	}
	return dsn
}

func TestCompareCommand(t *testing.T) {
	dsn := buildAnalysisArchive(t)
	out, err := capture(t, func() error {
		return run([]string{"compare", "-db", dsn, "-a", "1", "-b", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sweep") || !strings.Contains(out, "RATIO") {
		t.Errorf("compare output:\n%s", out)
	}
	// The planted regression tops the list (sorted by |delta|).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 || !strings.HasPrefix(strings.TrimSpace(lines[1]), "sweep") {
		t.Errorf("sweep not first:\n%s", out)
	}
	if _, err := capture(t, func() error {
		return run([]string{"compare", "-db", dsn, "-a", "1"})
	}); err == nil {
		t.Error("missing -b accepted")
	}
}

func TestDeriveCommand(t *testing.T) {
	dsn := buildAnalysisArchive(t)
	out, err := capture(t, func() error {
		return run([]string{"derive", "-db", dsn, "-trial", "1",
			"-name", "MFLOPS", "-num", "PAPI_FP_OPS", "-den", "TIME", "-scale", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "derived metric") {
		t.Errorf("derive output: %s", out)
	}
	// The metric is queryable afterwards.
	out, err = capture(t, func() error {
		return run([]string{"summary", "-db", dsn, "-trial", "1", "-metric", "MFLOPS", "-n", "2"})
	})
	if err != nil || !strings.Contains(out, "EXCL%") {
		t.Fatalf("summary on derived metric: %v\n%s", err, out)
	}
	// Unknown source metric fails.
	if _, err := capture(t, func() error {
		return run([]string{"derive", "-db", dsn, "-trial", "1",
			"-name", "X", "-num", "NOPE", "-den", "TIME"})
	}); err == nil {
		t.Error("unknown numerator accepted")
	}
}

func TestRegressCommand(t *testing.T) {
	dsn := buildAnalysisArchive(t)
	out, err := capture(t, func() error {
		return run([]string{"regress", "-db", dsn, "-trials", "1,2", "-threshold", "0.5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sweep") || !strings.Contains(out, "GROWTH") {
		t.Errorf("regress output:\n%s", out)
	}
	// Only the planted regression crosses a 50% threshold.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Errorf("expected exactly one regression:\n%s", out)
	}
	// High threshold → nothing.
	out, err = capture(t, func() error {
		return run([]string{"regress", "-db", dsn, "-trials", "1,2", "-threshold", "5"})
	})
	if err != nil || !strings.Contains(out, "no regressions") {
		t.Fatalf("high threshold: %v\n%s", err, out)
	}
	// Bad args.
	for _, args := range [][]string{
		{"regress", "-db", dsn},
		{"regress", "-db", dsn, "-trials", "1"},
		{"regress", "-db", dsn, "-trials", "1,abc"},
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestDumpRestoreCommands(t *testing.T) {
	dsn := buildAnalysisArchive(t)
	dumpDir := t.TempDir()
	out, err := capture(t, func() error {
		return run([]string{"dump", "-db", dsn, "-o", dumpDir})
	})
	if err != nil || !strings.Contains(out, "dumped 1 application(s), 2 trial(s)") {
		t.Fatalf("dump: %v\n%s", err, out)
	}
	dst := "file:" + t.TempDir()
	out, err = capture(t, func() error {
		return run([]string{"restore", "-db", dst, "-from", dumpDir})
	})
	if err != nil || !strings.Contains(out, "restored 2 trial(s)") {
		t.Fatalf("restore: %v\n%s", err, out)
	}
	out, _ = capture(t, func() error { return run([]string{"list", "-db", dst}) })
	if !strings.Contains(out, "v1") || !strings.Contains(out, "v2") {
		t.Fatalf("restored archive tree:\n%s", out)
	}
	// Missing flags.
	if _, err := capture(t, func() error { return run([]string{"dump", "-db", dsn}) }); err == nil {
		t.Error("dump without -o accepted")
	}
	if _, err := capture(t, func() error { return run([]string{"restore", "-db", dst}) }); err == nil {
		t.Error("restore without -from accepted")
	}
}

func TestStatsCommand(t *testing.T) {
	dsn := buildAnalysisArchive(t)
	out, err := capture(t, func() error { return run([]string{"stats", "-db", dsn}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"interval_location_profile", "TOTAL", "trial"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q:\n%s", want, out)
		}
	}
	// Two trials of 8 threads × 5 events × 8 metrics = 640 ILP rows.
	if !strings.Contains(out, "640") {
		t.Errorf("stats row count:\n%s", out)
	}
}
