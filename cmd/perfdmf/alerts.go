package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"perfdmf/internal/godbc"
	"perfdmf/internal/obs"
)

// cmdAlerts manages SQL-defined alert rules and their episode log:
//
//	alerts add  -db DSN -name N -metric M -threshold X   define a rule
//	alerts list -db DSN                                  show the rules
//	alerts log  -db DSN                                  show the episodes
//	alerts eval -db DSN [-settle 2s]                     evaluate once, offline
func cmdAlerts(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("alerts needs a subcommand (add, list, log, eval)")
	}
	switch args[0] {
	case "add":
		return cmdAlertsAdd(args[1:])
	case "list":
		return cmdAlertsList(args[1:])
	case "log":
		return cmdAlertsLog(args[1:])
	case "eval":
		return cmdAlertsEval(args[1:])
	}
	return fmt.Errorf("unknown alerts subcommand %q (want add, list, log or eval)", args[0])
}

func cmdAlertsAdd(args []string) error {
	fs := flag.NewFlagSet("alerts add", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	name := fs.String("name", "", "rule name")
	metric := fs.String("metric", "", "metric the rule watches (e.g. godbc_exec_total)")
	kind := fs.String("kind", obs.AlertKindThreshold, "predicate kind: threshold or anomaly")
	agg := fs.String("agg", "", "windowed aggregate to compare: rate, avg, ewma, p95, last (default: rate for counters, last for gauges)")
	op := fs.String("op", "gt", "comparison for threshold rules: gt or lt")
	threshold := fs.Float64("threshold", 0, "threshold value (threshold rules)")
	zscore := fs.Float64("zscore", 3, "standard deviations from the window mean (anomaly rules)")
	window := fs.Duration("window", obs.DefaultAlertWindow, "trailing aggregation window")
	forDur := fs.Duration("for", 0, "how long the predicate must hold before firing (0 fires immediately)")
	severity := fs.String("severity", "warn", "severity label: info, warn or critical")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	id, err := godbc.AddAlertRule(s.Conn(), obs.AlertRule{
		Name: *name, Metric: *metric, Kind: *kind, Agg: *agg, Op: *op,
		Threshold: *threshold, ZScore: *zscore, Window: *window, For: *forDur,
		Severity: *severity,
	})
	if err != nil {
		return err
	}
	fmt.Printf("alert rule %d (%s) created: %s %s on %s over %s\n",
		id, *name, *kind, *severity, *metric, *window)
	return nil
}

func cmdAlertsList(args []string) error {
	fs := flag.NewFlagSet("alerts list", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	rules, err := godbc.LoadAlertRules(s.Conn())
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tNAME\tMETRIC\tKIND\tAGG\tOP\tTHRESHOLD\tWINDOW\tFOR\tSEVERITY")
	for _, r := range rules {
		bound := fmt.Sprintf("%g", r.Threshold)
		if r.Kind == obs.AlertKindAnomaly {
			bound = fmt.Sprintf("z>%g", r.ZScore)
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.ID, r.Name, r.Metric, r.Kind, r.Agg, r.Op, bound, r.Window, r.For, r.Severity)
	}
	w.Flush()
	fmt.Printf("(%d rules)\n", len(rules))
	return nil
}

func cmdAlertsLog(args []string) error {
	fs := flag.NewFlagSet("alerts log", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	return runStatement(s, `SELECT alert_id, rule_name, metric, severity, state,
		value, pending_at, firing_at, resolved_at FROM OBS_ALERTS`)
}

// cmdAlertsEval runs one offline evaluation pass: it starts the telemetry
// pipeline with the history scrape enabled, lets it settle for a few
// scrapes, and reports every rule's state. A fresh (idle) process sees
// idle metrics, so episodes a crashed or finished workload left open in
// PERFDMF_ALERTS are resolved here — the offline half of the alert
// lifecycle.
func cmdAlertsEval(args []string) error {
	fs := flag.NewFlagSet("alerts eval", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	settle := fs.Duration("settle", 2*time.Second, "how long to scrape before reporting")
	every := fs.Duration("every", 100*time.Millisecond, "scrape cadence during the evaluation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dsn == "" {
		return fmt.Errorf("-db is required (e.g. file:/tmp/archive)")
	}
	stop, err := godbc.StartTelemetry(*dsn, godbc.TelemetryOptions{
		HistoryEvery: *every,
		BudgetPct:    -1, // keep the eval pass itself unsampled
	})
	if err != nil {
		return err
	}
	time.Sleep(*settle)
	alerts, _ := godbc.AlertsState()
	if err := stop(); err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "RULE\tMETRIC\tSEVERITY\tSTATE\tVALUE")
	firing := 0
	for _, a := range alerts {
		if a.State == obs.AlertStateFiring {
			firing++
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.4g\n", a.RuleName, a.Metric, a.Severity, a.State, a.Value)
	}
	w.Flush()
	fmt.Printf("(%d rules, %d firing)\n", len(alerts), firing)
	return nil
}
