package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"perfdmf/internal/godbc"
	"perfdmf/internal/obs"
	"perfdmf/internal/obs/httpserve"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeEndToEnd is the tentpole acceptance test: `perfdmf serve` with
// telemetry on, a trial loaded through the ordinary CLI path, the bulk-load
// spans queryable in PERFDMF_SPANS via plain SQL, the monitoring endpoints
// live over real HTTP — and the sink provably not re-tracing its own
// INSERTs.
func TestServeEndToEnd(t *testing.T) {
	dsn := "mem:serve_e2e"
	si, err := startServe(serveConfig{
		dsn:       dsn,
		addr:      "127.0.0.1:0",
		interval:  time.Hour, // collector samples once at start; no ticking in tests
		telemetry: true,
		flush:     time.Hour, // flush manually below
		trace:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer si.Close()

	// Load a trial through the normal CLI path; its statements run while the
	// sink is installed, so the bulk-load INSERTs become spans.
	tauDir := writeTauSample(t)
	if _, err := capture(t, func() error {
		return run([]string{"load", "-db", dsn, "-app", "serveapp", "-exp", "e1", tauDir})
	}); err != nil {
		t.Fatal(err)
	}

	if obs.ActiveSink() == nil {
		t.Fatal("serve did not install a telemetry sink")
	}
	// End-to-end barrier: sink buffer → writer queue → group commit. A bare
	// sink flush is no longer enough now that persistence is asynchronous.
	if err := godbc.FlushTelemetry(); err != nil {
		t.Fatal(err)
	}

	// The framework's own performance data via the framework's own SQL shell.
	out, err := capture(t, func() error {
		return run([]string{"sql", "-db", dsn,
			"SELECT op, COUNT(*) FROM PERFDMF_SPANS GROUP BY op"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "INSERT") || !strings.Contains(out, "SELECT") {
		t.Fatalf("PERFDMF_SPANS per-op summary missing load activity:\n%s", out)
	}

	// The sink's own INSERTs ran on a quiet connection: no stored span may be
	// an INSERT into the telemetry tables.
	out, err = capture(t, func() error {
		return run([]string{"sql", "-db", dsn, "SELECT statement FROM PERFDMF_SPANS"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		up := strings.ToUpper(line)
		if strings.HasPrefix(strings.TrimSpace(up), "INSERT") &&
			(strings.Contains(up, "PERFDMF_SPANS") || strings.Contains(up, "PERFDMF_SLOWLOG")) {
			t.Fatalf("sink traced its own INSERT: %q", line)
		}
	}

	// Live HTTP: /metrics serves engine counters and runtime gauges together.
	code, body := httpGet(t, fmt.Sprintf("http://%s/metrics", si.Addr))
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{"godbc_exec_total", "go_goroutines", "obs_telemetry_stored_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = httpGet(t, fmt.Sprintf("http://%s/healthz", si.Addr))
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d: %s", code, body)
	}
	var hr httpserve.HealthResponse
	if err := json.Unmarshal([]byte(body), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.DB == nil || !hr.DB.Open {
		t.Fatalf("healthz = %+v", hr)
	}

	// /traces serves the spans the load produced (tracing was on).
	code, body = httpGet(t, fmt.Sprintf("http://%s/traces?n=5", si.Addr))
	if code != http.StatusOK || !strings.Contains(body, `"kind"`) {
		t.Fatalf("GET /traces = %d: %s", code, body)
	}

	// Close restores the pre-serve obs configuration and uninstalls the sink.
	if err := si.Close(); err != nil {
		t.Fatal(err)
	}
	if obs.ActiveSink() != nil {
		t.Error("sink still installed after Close")
	}
	if obs.TracingEnabled() {
		t.Error("tracing still enabled after Close")
	}
}

// TestServeBadConfig: startServe must fail cleanly, leaving no global state
// behind.
func TestServeBadConfig(t *testing.T) {
	if _, err := startServe(serveConfig{}); err == nil {
		t.Fatal("startServe accepted an empty DSN")
	}
	if _, err := startServe(serveConfig{dsn: "bogus:x", addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("startServe accepted an unknown driver")
	}
	if _, err := startServe(serveConfig{dsn: "mem:badaddr", addr: "256.0.0.1:bogus", trace: true}); err == nil {
		t.Fatal("startServe accepted a malformed listen address")
	}
	if obs.TracingEnabled() {
		t.Error("failed startServe leaked tracing config")
	}
	if obs.ActiveSink() != nil {
		t.Error("failed startServe leaked an installed sink")
	}
}
