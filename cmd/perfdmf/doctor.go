package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"perfdmf/internal/advisor"
)

// cmdDoctor runs the workload advisor over an archive's accumulated
// telemetry (spans, slow log, metric history, table statistics) and prints
// ranked findings. -json emits the findings as a JSON array for scripted
// consumers. Doctor only reads; it never mutates the archive.
func cmdDoctor(args []string) error {
	fs := flag.NewFlagSet("doctor", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	nMin := fs.Int("nplus1-min", 0, "minimum repeated statements per root before N+1 is flagged (0 = default)")
	slowMin := fs.Int("slow-min", 0, "minimum slow-log occurrences before a hotspot is flagged (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	findings, err := advisor.Run(s.Conn(), advisor.Options{
		NPlusOneMin:    *nMin,
		SlowHotspotMin: *slowMin,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []advisor.Finding{}
		}
		return enc.Encode(findings)
	}
	if len(findings) == 0 {
		fmt.Println("doctor: no findings — the telemetry shows nothing to advise on")
		return nil
	}
	for i, f := range findings {
		fmt.Printf("%d. [%s] %s (score %.1f)\n", i+1, f.Severity, f.Title, f.Score)
		fmt.Printf("   rule: %s\n", f.Rule)
		fmt.Printf("   %s\n", f.Detail)
		if f.Statement != "" {
			fmt.Printf("   statement: %s\n", f.Statement)
		}
		if f.Suggestion != "" {
			fmt.Printf("   fix: %s\n", f.Suggestion)
		}
	}
	fmt.Printf("(%d findings)\n", len(findings))
	return nil
}
