package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perfdmf/internal/godbc"
	"perfdmf/internal/obs"
	"perfdmf/internal/obs/httpserve"
)

// serveConfig is cmdServe's parsed flag set, factored out so tests can start
// a real server on an ephemeral port without going through os.Args.
type serveConfig struct {
	dsn        string
	addr       string
	interval   time.Duration // runtime-collector sampling interval
	telemetry  bool          // persist spans into PERFDMF_SPANS / PERFDMF_SLOWLOG
	flush      time.Duration // telemetry sink flush interval
	telBudget  float64       // telemetry overhead budget pct (0 = DSN/default)
	retainAge  time.Duration // prune telemetry rows older than this (0 = off)
	retainRows int           // telemetry table row cap (0 = default, <0 = off)
	history    time.Duration // metric-history scrape + alert-eval cadence (0 = off)
	trace      bool          // enable global statement tracing
	slowMS     int           // slow-query threshold in milliseconds (0 = leave global)
	maxChkAge  time.Duration // /healthz degrades past this checkpoint age (0 = off)
	out        io.Writer     // status output; defaults to os.Stdout
}

// serveInstance is a running monitoring daemon. Close unwinds everything the
// start set up: HTTP listener, collector, telemetry sink, global obs config,
// and the archive connection.
type serveInstance struct {
	Addr string // actual listen address (host:port), after ephemeral resolution

	srv     *http.Server
	ln      net.Listener
	col     *httpserve.Collector
	stopTel func() error
	conn    godbc.Conn
	prev    obs.Config
}

// startServe opens the archive, applies the observability config, starts the
// telemetry sink and runtime collector, and begins serving the monitoring
// endpoints. It returns once the listener is bound.
func startServe(cfg serveConfig) (*serveInstance, error) {
	if cfg.dsn == "" {
		return nil, fmt.Errorf("-db is required (e.g. file:/tmp/archive)")
	}
	if cfg.out == nil {
		cfg.out = os.Stdout
	}

	si := &serveInstance{prev: obs.Config{Trace: obs.TracingEnabled(), SlowQuery: obs.SlowQueryThreshold()}}
	if cfg.trace {
		obs.SetTracing(true)
	}
	if cfg.slowMS > 0 {
		obs.SetSlowQueryThreshold(time.Duration(cfg.slowMS) * time.Millisecond)
	}

	// The daemon holds its own connection: it keeps a file: engine open for
	// the process lifetime and backs the /healthz probe.
	conn, err := godbc.Open(cfg.dsn)
	if err != nil {
		obs.Apply(si.prev)
		return nil, err
	}
	si.conn = conn

	if cfg.telemetry {
		stop, err := godbc.StartTelemetry(cfg.dsn, godbc.TelemetryOptions{
			Sink:         obs.SinkOptions{FlushEvery: cfg.flush},
			BudgetPct:    cfg.telBudget,
			RetainAge:    cfg.retainAge,
			RetainRows:   cfg.retainRows,
			HistoryEvery: cfg.history,
		})
		if err != nil {
			conn.Close()
			obs.Apply(si.prev)
			return nil, err
		}
		si.stopTel = stop
	}

	var health func() (godbc.Health, error)
	var backlog func() int
	if hr, ok := conn.(godbc.HealthReporter); ok {
		health = hr.Health
		backlog = func() int {
			h, err := hr.Health()
			if err != nil {
				return 0
			}
			return h.WALOpsPending
		}
	}

	si.col = httpserve.NewCollector(obs.Default, backlog)
	si.col.Start(cfg.interval)

	handler := httpserve.NewHandler(httpserve.Options{
		Health:           health,
		MaxCheckpointAge: cfg.maxChkAge,
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		si.teardown()
		return nil, err
	}
	si.ln = ln
	si.Addr = ln.Addr().String()
	si.srv = &http.Server{Handler: handler}
	//lint:allow lifecycle -- http.Server owns this goroutine: Serve returns when Stop calls srv.Close
	go si.srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on shutdown
	return si, nil
}

// teardown unwinds everything except the HTTP server (which may not exist
// yet when startServe fails mid-way).
func (si *serveInstance) teardown() error {
	var first error
	if si.col != nil {
		si.col.Stop()
	}
	if si.stopTel != nil {
		if err := si.stopTel(); err != nil && first == nil {
			first = err
		}
		si.stopTel = nil
	}
	if si.conn != nil {
		if err := si.conn.Close(); err != nil && first == nil {
			first = err
		}
		si.conn = nil
	}
	obs.Apply(si.prev)
	return first
}

// Close shuts the daemon down: stops accepting requests, flushes the
// telemetry tail, restores the prior global obs configuration, and closes
// the archive connection.
func (si *serveInstance) Close() error {
	var first error
	if si.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := si.srv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
		si.srv = nil
	}
	if err := si.teardown(); err != nil && first == nil {
		first = err
	}
	return first
}

// cmdServe runs the monitoring daemon until SIGINT/SIGTERM.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	addr := fs.String("addr", "127.0.0.1:7227", "listen address (host:port, port 0 for ephemeral)")
	interval := fs.Duration("interval", 5*time.Second, "runtime collector sampling interval")
	telemetry := fs.Bool("telemetry", true, "persist spans and slow queries into PERFDMF_SPANS/PERFDMF_SLOWLOG")
	flush := fs.Duration("flush", time.Second, "telemetry sink flush interval")
	telBudget := fs.Float64("telemetry-budget", 0, "telemetry overhead budget in percent (0 defers to ?telemetrybudget then the default; negative disables sampling)")
	retainAge := fs.Duration("telemetry-retain-age", 0, "prune telemetry rows older than this (0 disables age pruning)")
	retainRows := fs.Int("telemetry-retain-rows", 0, "cap telemetry tables at this many rows (0 = default cap, negative = uncapped)")
	history := fs.Duration("history", time.Second, "metric-history scrape and alert-evaluation cadence (0 disables; needs -telemetry)")
	trace := fs.Bool("trace", false, "enable statement tracing while serving")
	slowMS := fs.Int("slowms", 0, "slow-query threshold in milliseconds (0 keeps the global setting)")
	maxChkAge := fs.Duration("max-checkpoint-age", 0, "report degraded when the last checkpoint is older than this (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	si, err := startServe(serveConfig{
		dsn:        *dsn,
		addr:       *addr,
		interval:   *interval,
		telemetry:  *telemetry,
		flush:      *flush,
		telBudget:  *telBudget,
		retainAge:  *retainAge,
		retainRows: *retainRows,
		history:    *history,
		trace:      *trace,
		slowMS:     *slowMS,
		maxChkAge:  *maxChkAge,
	})
	if err != nil {
		return err
	}
	fmt.Printf("perfdmf: serving on http://%s (db %s)\n", si.Addr, *dsn)
	fmt.Printf("perfdmf: endpoints: /metrics /metrics.json /healthz /statements /traces /slowlog /history /alerts /debug/pprof/\n")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	<-sig
	fmt.Println("perfdmf: shutting down")
	return si.Close()
}
