package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"perfdmf/internal/analysis"
	"perfdmf/internal/core"
	"perfdmf/internal/model"
	"perfdmf/internal/obs"
)

// Analysis-toolkit subcommands:
//
//	perfdmf compare -db DSN -a ID -b ID [-metric TIME] [-n 15]
//	perfdmf derive  -db DSN -trial ID -name NAME -num METRIC -den METRIC [-scale F]
//	perfdmf regress -db DSN -trials 1,2,3 [-metric TIME] [-threshold 0.1] [-minshare 0.01]

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	a := fs.Int64("a", 0, "first trial id")
	bID := fs.Int64("b", 0, "second trial id")
	metric := fs.String("metric", "TIME", "metric")
	n := fs.Int("n", 15, "events to show")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *a == 0 || *bID == 0 {
		return fmt.Errorf("compare needs -a and -b trial ids")
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	cmp, err := analysis.CompareTrials(s, &core.Trial{ID: *a}, &core.Trial{ID: *bID}, *metric)
	if err != nil {
		return err
	}
	events := cmp.Events
	if *n < len(events) {
		events = events[:*n]
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "EVENT\tMEAN A\tMEAN B\tDELTA\tRATIO\tPCT CHANGE\n")
	for _, d := range events {
		ratio := "-"
		if d.Ratio != 0 {
			ratio = fmt.Sprintf("%.3f", d.Ratio)
		}
		fmt.Fprintf(w, "%s\t%.4g\t%.4g\t%+.4g\t%s\t%+.2f\n",
			d.Name, d.MeanA, d.MeanB, d.Delta, ratio, d.PctChange)
	}
	return w.Flush()
}

func cmdDerive(args []string) error {
	fs := flag.NewFlagSet("derive", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	trialID := fs.Int64("trial", 0, "trial id")
	name := fs.String("name", "", "new metric name")
	num := fs.String("num", "", "numerator metric")
	den := fs.String("den", "", "denominator metric")
	scale := fs.Float64("scale", 1, "scale factor applied to the ratio")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *num == "" || *den == "" {
		return fmt.Errorf("derive needs -name, -num and -den")
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	p, err := s.LoadTrial(*trialID)
	if err != nil {
		return err
	}
	if p.MetricID(*num) < 0 || p.MetricID(*den) < 0 {
		return fmt.Errorf("trial %d lacks metric %q or %q", *trialID, *num, *den)
	}
	mid, err := p.DeriveMetric(*name, model.Ratio(*num, *den, *scale))
	if err != nil {
		return err
	}
	metric, err := s.SaveDerivedMetric(*trialID, p, mid)
	if err != nil {
		return err
	}
	fmt.Printf("derived metric %d (%s = %g * %s / %s) saved to trial %d\n",
		metric.ID, metric.Name, *scale, *num, *den, *trialID)
	return nil
}

func cmdRegress(args []string) error {
	fs := flag.NewFlagSet("regress", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	trialList := fs.String("trials", "", "comma-separated trial ids in version order")
	metric := fs.String("metric", "TIME", "metric")
	threshold := fs.Float64("threshold", 0.1, "growth threshold (0.1 = 10%)")
	minShare := fs.Float64("minshare", 0.01, "ignore events below this share of total time")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trialList == "" {
		return fmt.Errorf("regress needs -trials (e.g. -trials 1,2,3)")
	}
	var trials []*core.Trial
	for _, part := range strings.Split(*trialList, ",") {
		id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return fmt.Errorf("bad trial id %q", part)
		}
		trials = append(trials, &core.Trial{ID: id})
	}
	if len(trials) < 2 {
		return fmt.Errorf("regress needs at least two trials")
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	regs, err := analysis.DetectRegressions(s, trials, *metric, *threshold, *minShare)
	if err != nil {
		return err
	}
	if len(regs) == 0 {
		fmt.Println("no regressions found")
		return nil
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "FROM\tTO\tEVENT\tBEFORE\tAFTER\tGROWTH\n")
	for _, r := range regs {
		fmt.Fprintf(w, "%d\t%d\t%s\t%.4g\t%.4g\t%+.1f%%\n",
			r.FromTrial, r.ToTrial, r.Event, r.Before, r.After, 100*r.Growth)
	}
	return w.Flush()
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	out := fs.String("o", "", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("dump needs -o DIR")
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	m, err := core.ExportArchive(s, *out)
	if err != nil {
		return err
	}
	trials := 0
	for _, a := range m.Applications {
		for _, e := range a.Experiments {
			trials += len(e.Trials)
		}
	}
	fmt.Printf("dumped %d application(s), %d trial(s) to %s\n",
		len(m.Applications), trials, *out)
	return nil
}

func cmdRestore(args []string) error {
	fs := flag.NewFlagSet("restore", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	from := fs.String("from", "", "archive directory (from perfdmf dump)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *from == "" {
		return fmt.Errorf("restore needs -from DIR")
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	n, err := core.ImportArchive(s, *from)
	if err != nil {
		return err
	}
	fmt.Printf("restored %d trial(s) from %s\n", n, *from)
	return nil
}

// cmdStats reports row counts per PerfDMF table — the quick health check
// an archive operator runs ("how big is this repository?") — followed by
// the framework's own engine metrics. -prom switches to the Prometheus
// text exposition format for scraping.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	dsn := fs.String("db", "", "database DSN")
	prom := fs.Bool("prom", false, "emit metrics in Prometheus text format")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openSession(*dsn)
	if err != nil {
		return err
	}
	defer s.Close()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "TABLE\tROWS\t\n")
	var total int64
	for _, table := range core.CoreTables() {
		rows, err := s.Conn().Query("SELECT COUNT(*) FROM " + table)
		if err != nil {
			return err
		}
		rows.Next()
		var n int64
		rows.Scan(&n) //nolint:errcheck
		rows.Close()
		fmt.Fprintf(w, "%s\t%d\t\n", table, n)
		total += n
	}
	fmt.Fprintf(w, "TOTAL\t%d\t\n", total)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println()
	if *prom {
		return obs.Default.WritePrometheus(os.Stdout)
	}
	return printEngineMetrics(os.Stdout)
}

// printEngineMetrics renders the obs registry for humans: non-zero counters
// and gauges as name/value pairs, histograms as count, mean and p99.
func printEngineMetrics(out io.Writer) error {
	snap := obs.Default.Snapshot()
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "ENGINE METRIC\tVALUE\t\n")
	names := make([]string, 0, len(snap.Counters)+len(snap.Gauges))
	for name, v := range snap.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	for name, v := range snap.Gauges {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		v, ok := snap.Counters[name]
		if !ok {
			v = snap.Gauges[name]
		}
		fmt.Fprintf(w, "%s\t%d\t\n", name, v)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	hnames := make([]string, 0, len(snap.Histograms))
	for name, h := range snap.Histograms {
		if h.Count > 0 {
			hnames = append(hnames, name)
		}
	}
	if len(hnames) == 0 {
		return nil
	}
	sort.Strings(hnames)
	fmt.Fprintln(out)
	hw := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(hw, "LATENCY/SIZE\tCOUNT\tMEAN\tP99\t\n")
	for _, name := range hnames {
		h := snap.Histograms[name]
		fmt.Fprintf(hw, "%s\t%d\t%.0f\t%d\t\n", name, h.Count, h.Mean(), h.Quantile(0.99))
	}
	return hw.Flush()
}
