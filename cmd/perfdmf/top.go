// The top subcommand: a `top`-style view of the statements currently
// executing inside a running `perfdmf serve` process. It polls the
// monitoring endpoint's GET /statements (the HTTP face of
// OBS_ACTIVE_STATEMENTS) and renders one line per live statement; with
// -kill it instead issues DELETE /statements/<id>, the admin spelling of
// SQL's `KILL <id>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"perfdmf/internal/sqlexec"
)

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:7227", "base URL of a running `perfdmf serve` monitoring endpoint")
	interval := fs.Duration("interval", 2*time.Second, "refresh period when polling (-n > 1)")
	n := fs.Int("n", 1, "number of refreshes to print (0 = forever)")
	kill := fs.Int64("kill", 0, "cancel this statement id instead of listing (DELETE /statements/<id>)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *kill != 0 {
		return killStatement(*url, *kill)
	}
	prev := &topState{}
	for i := 0; *n == 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		if err := printStatements(*url, os.Stdout, prev); err != nil {
			return err
		}
	}
	return nil
}

// topState carries one refresh's scan progress to the next, so successive
// snapshots of the same statement yield a per-interval scan rate.
type topState struct {
	rows map[int64]int64 // statement id -> RowsScanned at the previous poll
	at   time.Time       // when the previous poll completed
}

// printStatements fetches /statements and renders one tabwriter row per
// live statement, mirroring the OBS_ACTIVE_STATEMENTS columns plus a
// ROWS/S column: rows scanned since the previous refresh over the interval
// ("-" for statements first seen this refresh).
func printStatements(base string, w io.Writer, prev *topState) error {
	stmts, err := fetchStatements(base)
	if err != nil {
		return err
	}
	now := time.Now()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tKIND\tPHASE\tELAPSED\tSCANNED\tROWS/S\tRETURNED\tWORKERS\tKILLED\tSQL")
	cur := make(map[int64]int64, len(stmts))
	for _, s := range stmts {
		cur[s.ID] = s.RowsScanned
		rate := "-"
		if last, seen := prev.rows[s.ID]; seen {
			if dt := now.Sub(prev.at).Seconds(); dt > 0 {
				rate = fmt.Sprintf("%.0f", float64(s.RowsScanned-last)/dt)
			}
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%v\t%d\t%s\t%d\t%d\t%v\t%s\n",
			s.ID, s.Kind, s.Phase,
			time.Duration(s.ElapsedUS)*time.Microsecond,
			s.RowsScanned, rate, s.RowsReturned, s.Workers, s.Killed,
			oneLine(s.SQL, 80))
	}
	prev.rows, prev.at = cur, now
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "(%d active statements)\n", len(stmts))
	return nil
}

func fetchStatements(base string) ([]sqlexec.StmtInfo, error) {
	resp, err := http.Get(base + "/statements")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET /statements: %s: %s", resp.Status, string(body))
	}
	var stmts []sqlexec.StmtInfo
	if err := json.NewDecoder(resp.Body).Decode(&stmts); err != nil {
		return nil, fmt.Errorf("decoding /statements response: %w", err)
	}
	return stmts, nil
}

func killStatement(base string, id int64) error {
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/statements/%d", base, id), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("DELETE /statements/%d: %s: %s", id, resp.Status, string(body))
	}
	fmt.Printf("killed statement %d\n", id)
	return nil
}

// oneLine collapses whitespace runs so multi-line SQL fits a single
// tabwriter cell, truncating to at most max runes.
func oneLine(s string, max int) string {
	out := make([]rune, 0, len(s))
	space := false
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			space = true
			continue
		}
		if space && len(out) > 0 {
			out = append(out, ' ')
		}
		space = false
		out = append(out, r)
	}
	if len(out) > max {
		out = append(out[:max-1], '…')
	}
	return string(out)
}
