// Command experiments regenerates every evaluation experiment (E1–E8 in
// DESIGN.md §3) plus the design-choice ablations, printing the tables that
// EXPERIMENTS.md records.
//
// Usage:
//
//	experiments [-quick] [-only E1,E4]
//
// -quick caps the E1 sweep at 4096 threads and the E4 sweep at 256 so the
// whole run finishes in well under a minute.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strings"
	"text/tabwriter"
	"time"

	"perfdmf/internal/experiments"
	"perfdmf/internal/obs"
)

func main() {
	// Bulk archival workload: the paper's 1.6M-point trial keeps on the
	// order of a gigabyte live, so trade heap headroom for fewer GC cycles
	// (the same knob a production bulk loader would set).
	debug.SetGCPercent(300)
	quick := flag.Bool("quick", false, "smaller sweeps")
	only := flag.String("only", "", "comma-separated experiment subset (e.g. E1,E4,AB)")
	obsOut := flag.String("obs", "BENCH_obs.json", "write the engine-metrics snapshot to this file after the run (empty disables)")
	parallelOut := flag.String("parallel", "BENCH_parallel.json", "write the P1 parallel-execution benchmark to this file (empty disables)")
	traceOut := flag.String("trace", "BENCH_trace.json", "write the T1 tracing-overhead benchmark to this file (empty disables)")
	flag.Parse()
	if err := run(*quick, *only, *parallelOut, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *obsOut != "" {
		if err := writeObsSnapshot(*obsOut); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

// writeObsSnapshot dumps the obs registry as machine-readable JSON — the
// framework's view of its own engine activity across the whole run.
func writeObsSnapshot(path string) error {
	data, err := json.MarshalIndent(obs.Default.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nengine metrics written to %s\n", path)
	return nil
}

func run(quick bool, only, parallelOut, traceOut string) error {
	want := func(id string) bool {
		if only == "" {
			return true
		}
		for _, w := range strings.Split(only, ",") {
			if strings.EqualFold(strings.TrimSpace(w), id) {
				return true
			}
		}
		return false
	}

	if want("E1") {
		if err := runE1(quick); err != nil {
			return err
		}
	}
	if want("E2") {
		if err := runE2(); err != nil {
			return err
		}
	}
	if want("E3") {
		if err := runE3(); err != nil {
			return err
		}
	}
	if want("E4") {
		if err := runE4(quick); err != nil {
			return err
		}
	}
	if want("E5") {
		if err := runE5(); err != nil {
			return err
		}
	}
	if want("E6") {
		if err := runE6(); err != nil {
			return err
		}
	}
	if want("E7") {
		if err := runE7(); err != nil {
			return err
		}
	}
	if want("E8") {
		if err := runE8(); err != nil {
			return err
		}
	}
	if want("AB") {
		if err := runAblations(quick); err != nil {
			return err
		}
	}
	if want("P1") {
		if err := runP1(quick, parallelOut); err != nil {
			return err
		}
	}
	if want("P2") {
		if err := runP2(quick, parallelOut); err != nil {
			return err
		}
	}
	if want("T1") {
		if err := runT1(quick, traceOut); err != nil {
			return err
		}
	}
	return nil
}

// runT1 measures the hierarchical-tracing overhead on the E1 upload path
// (off vs traced vs persisted through the telemetry sink) and writes the
// record BENCH_trace.json holds. The traced overhead must stay under the
// 5% budget.
func runT1(quick bool, out string) error {
	header("T1", "tracing overhead on the E1 upload path (off / traced / persisted)")
	threads, reps := 4096, 12
	if quick {
		threads, reps = 1024, 3
	}
	res, err := experiments.RunT1(threads, 101, reps)
	if err != nil {
		return err
	}
	fmt.Printf("rows=%d (threads=%d events=%d)  GOMAXPROCS=%d  reps=%d (fastest kept)\n\n",
		res.Rows, res.Threads, res.Events, res.GOMAXPROCS, res.Reps)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "MODE\tUPLOAD\tOVERHEAD\t\n")
	fmt.Fprintf(w, "off\t%v\t—\t\n", time.Duration(res.OffNS).Round(1e6))
	fmt.Fprintf(w, "traced\t%v\t%+.2f%%\t\n", time.Duration(res.OnNS).Round(1e6), res.OnOverheadPct)
	fmt.Fprintf(w, "persisted\t%v\t%+.2f%%\t\n", time.Duration(res.PersistedNS).Round(1e6), res.PersistedOverheadPct)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\n%d spans persisted (effective sample rate %.3f, final governor rate %.3f)\n",
		res.SpansPersisted, res.EffectiveSampleRate, res.FinalSampleRate)
	if res.NoiseFloor {
		fmt.Printf("noise floor: raw overheads traced %+.2f%% / persisted %+.2f%% clamped at 0\n",
			res.OnOverheadRawPct, res.PersistedOverheadRawPct)
	}
	fmt.Printf("budget %.0f%%: traced within=%v  persisted within=%v\n",
		res.BudgetPct, res.TracedWithinBudget, res.PersistedWithinBudget)
	if !res.TracedWithinBudget {
		return fmt.Errorf("T1: traced overhead %.2f%% exceeds %.0f%% budget", res.OnOverheadPct, res.BudgetPct)
	}
	if !res.PersistedWithinBudget {
		return fmt.Errorf("T1: persisted overhead %.2f%% exceeds %.0f%% budget", res.PersistedOverheadPct, res.BudgetPct)
	}
	if out == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("tracing benchmark written to %s\n", out)
	return nil
}

// runP1 times the parallel query executor (partitioned scan + chunked
// GROUP BY) at increasing worker budgets over one Miranda-scale trial, and
// the statement/plan cache on a point-query hot loop. Speedup is measured
// against workers=1 in the same process; on a single-core runner the
// GOMAXPROCS field in the JSON tells consumers not to expect one.
func runP1(quick bool, out string) error {
	header("P1", "parallel query execution (workers sweep, Miranda-scale trial)")
	threads := 16384
	if quick {
		threads = 2048
	}
	res, err := experiments.RunP1(threads, 101, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	fmt.Printf("rows=%d (threads=%d events=%d)  GOMAXPROCS=%d  generate=%v upload=%v\n\n",
		res.Rows, res.Threads, res.Events, res.GOMAXPROCS,
		res.Generate.Round(1e6), res.Upload.Round(1e6))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "WORKERS\tSCAN\tSPEEDUP\tGROUP BY\tSPEEDUP\t\n")
	for _, r := range res.Timings {
		fmt.Fprintf(w, "%d\t%v\t%.2fx\t%v\t%.2fx\t\n",
			r.Workers,
			(time.Duration(r.ScanNS)).Round(1e5), r.ScanSpeedup,
			(time.Duration(r.GroupByNS)).Round(1e5), r.GroupBySpeedup)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nplan cache: %v/op cached text vs %v/op fresh text\n",
		time.Duration(res.PlanCacheHitNS), time.Duration(res.PlanCacheMissNS))
	if out == "" {
		return nil
	}
	if err := updateParallelBench(out, func(b *experiments.ParallelBench) { b.P1 = res }); err != nil {
		return err
	}
	fmt.Printf("parallel benchmark written to %s\n", out)
	return nil
}

// runP2 times the columnar execution path (sealed segments + vectorized
// GROUP BY) against the forced row path on the same trial, checks the two
// paths return identical results, and merges the record into the P2
// section of BENCH_parallel.json. The ≥3× single-thread speedup target is
// enforced on every runner; the parallel-scaling target only when
// GOMAXPROCS actually covers the widest worker budget.
func runP2(quick bool, out string) error {
	header("P2", "columnar GROUP BY vs row path (COMPACT + vectorized aggregation)")
	threads := 16384
	if quick {
		threads = 2048
	}
	res, err := experiments.RunP2(threads, 101, []int{1, 4, 8})
	if err != nil {
		return err
	}
	fmt.Printf("rows=%d (threads=%d events=%d)  GOMAXPROCS=%d  compact=%v\n\n",
		res.Rows, res.Threads, res.Events, res.GOMAXPROCS,
		time.Duration(res.CompactNS).Round(1e6))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "WORKERS\tROW PATH\tCOLUMNAR\tVS ROW\tSCALING\t\n")
	for _, r := range res.Timings {
		fmt.Fprintf(w, "%d\t%v\t%v\t%.2fx\t%.2fx\t\n",
			r.Workers,
			(time.Duration(r.RowNS)).Round(1e5),
			(time.Duration(r.ColumnarNS)).Round(1e5),
			r.SpeedupVsRow, r.Scaling)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nplan: %s\nidentical results across paths and budgets: %v\n",
		strings.TrimSpace(res.Plan), res.IdenticalResults)
	fmt.Printf("speedup %.2fx (target 3x): ok=%v   scaling %.2fx at %d workers (target 2.5x): ok=%v measured=%v\n",
		res.SpeedupVsRow1W, res.SpeedupOK,
		res.ScalingAtMax, res.Timings[len(res.Timings)-1].Workers,
		res.ScalingOK, res.ScalingMeasured)
	if !res.IdenticalResults {
		return fmt.Errorf("P2: columnar and row paths returned different results")
	}
	if !res.SpeedupOK {
		return fmt.Errorf("P2: columnar speedup %.2fx below the 3x target", res.SpeedupVsRow1W)
	}
	if res.ScalingMeasured && !res.ScalingOK {
		return fmt.Errorf("P2: columnar scaling %.2fx below the 2.5x target", res.ScalingAtMax)
	}
	if out == "" {
		return nil
	}
	if err := updateParallelBench(out, func(b *experiments.ParallelBench) { b.P2 = res }); err != nil {
		return err
	}
	fmt.Printf("parallel benchmark written to %s\n", out)
	return nil
}

// updateParallelBench read-modify-writes the BENCH_parallel.json document
// so the P1 and P2 runs can each refresh their own section without
// clobbering the other's.
func updateParallelBench(path string, mut func(*experiments.ParallelBench)) error {
	var doc experiments.ParallelBench
	if data, err := os.ReadFile(path); err == nil {
		// A legacy (pre-P2, top-level P1) or corrupt file simply gets
		// replaced by the new document shape.
		_ = json.Unmarshal(data, &doc)
	}
	mut(&doc)
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func header(id, title string) {
	fmt.Printf("\n=== %s: %s ===\n\n", id, title)
}

func runE1(quick bool) error {
	header("E1", "large-scale profile handling (101 events, paper §3.1/§5.3)")
	sizes := []int{1024, 2048, 4096, 8192, 16384}
	if quick {
		sizes = []int{256, 1024, 4096}
	}
	rows, err := experiments.RunE1(sizes, 101)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "THREADS\tDATA POINTS\tGENERATE\tUPLOAD\tQUERY\tRELOAD\tPOINTS/S\t\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%v\t%v\t%v\t%v\t%.0f\t\n",
			r.Threads, r.DataPoints,
			r.Generate.Round(1e6), r.Upload.Round(1e6),
			r.Query.Round(1e5), r.Load.Round(1e6), r.UploadRate)
	}
	w.Flush()
	last := rows[len(rows)-1]
	fmt.Printf("\npaper claim: \"101 events on 16K processors ... 1.6M data points ... handled without problems\"\n")
	fmt.Printf("measured: %d data points at %d threads uploaded in %v, reloaded in %v, intact.\n",
		last.DataPoints, last.Threads, last.Upload.Round(1e6), last.Load.Round(1e6))
	return nil
}

func runE2() error {
	header("E2", "six-format import into one archive (paper Fig. 2, §3.1)")
	dir, err := os.MkdirTemp("", "perfdmf-e2")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rows, err := experiments.RunE2(dir)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "FORMAT\tTHREADS\tDATA POINTS\tPARSE\tUPLOAD\tROUND TRIP\n")
	for _, r := range rows {
		ok := "ok"
		if !r.RoundTrip {
			ok = "FAILED"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%v\t%s\n",
			r.Format, r.Threads, r.DataPoints, r.Parse.Round(1e4), r.Upload.Round(1e4), ok)
	}
	return w.Flush()
}

func runE3() error {
	header("E3", "EVH1 speedup analyzer (paper §5.2)")
	res, err := experiments.RunE3([]int{1, 2, 4, 8, 16, 32, 64})
	if err != nil {
		return err
	}
	study := res.Study
	fmt.Printf("uploaded series in %v; analysis in %v\n\n",
		res.Upload.Round(1e6), res.Analysis.Round(1e6))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "PROCS\tSPEEDUP\tEFFICIENCY\t\n")
	for i, procs := range study.Procs {
		fmt.Fprintf(w, "%d\t%.2f\t%.1f%%\t\n", procs, study.AppSpeed[i], 100*study.AppEff[i])
	}
	w.Flush()
	fmt.Printf("\nper-routine min/mean/max speedup at %dp:\n", study.Procs[len(study.Procs)-1])
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, r := range study.Routines {
		last := r.Points[len(r.Points)-1]
		fmt.Fprintf(w, "%s\t%.2f / %.2f / %.2f\n", r.Name, last.Min, last.Mean, last.Max)
	}
	return w.Flush()
}

func runE4(quick bool) error {
	header("E4", "PerfExplorer clustering on sPPM-like counters (paper §5.3)")
	sizes := []int{128, 256, 512, 1024}
	if quick {
		sizes = []int{64, 256}
	}
	rows, err := experiments.RunE4(sizes)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "THREADS\tDIMS\tEXTRACT\tCLUSTER\tK\tAGREEMENT\t\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%v\t%v\t%d\t%.1f%%\t\n",
			r.Threads, r.Dimensions, r.Extract.Round(1e5), r.Cluster.Round(1e5),
			r.K, 100*r.Agreement)
	}
	w.Flush()
	fmt.Println("\npaper claim: cluster analysis on up to 1024 threads × 7 PAPI counters reproduces")
	fmt.Println("the sPPM floating-point behaviour classes (Ahn & Vetter).")
	return nil
}

func runE5() error {
	header("E5", "API vs raw SQL on both back ends (paper §3.1, §4)")
	dir, err := os.MkdirTemp("", "perfdmf-e5")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rows, err := experiments.RunE5(dir)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "BACKEND\tACCESS\tQUERIES\tTOTAL\tPER QUERY\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%v\n",
			r.Backend, r.Path, r.Queries, r.Elapsed.Round(1e5),
			(r.Elapsed / 20).Round(1e4))
	}
	return w.Flush()
}

func runE6() error {
	header("E6", "flexible schema via ALTER TABLE + metadata discovery (paper §3.2)")
	res, err := experiments.RunE6()
	if err != nil {
		return err
	}
	fmt.Printf("add columns: %v, save with new column: %v, reload: %v, drop: %v\n",
		res.AddColumn.Round(1e4), res.SaveWithCol.Round(1e4),
		res.Reload.Round(1e4), res.DropColumn.Round(1e4))
	fmt.Printf("flexible fields round trip: %v; clean after drop: %v\n", res.FieldsOK, res.DroppedClean)
	if !res.FieldsOK || !res.DroppedClean {
		return fmt.Errorf("E6 failed")
	}
	return nil
}

func runE7() error {
	header("E7", "derived metric saved into an existing trial (paper §4)")
	res, err := experiments.RunE7(128)
	if err != nil {
		return err
	}
	fmt.Printf("derive: %v, save: %v, reload: %v (%d data points)\n",
		res.Derive.Round(1e5), res.Save.Round(1e5), res.Reload.Round(1e5), res.DataPoints)
	fmt.Printf("FLOPS = PAPI_FP_OPS / TIME verified after reload: %v\n", res.ValueOK)
	if !res.ValueOK {
		return fmt.Errorf("E7 failed")
	}
	return nil
}

func runE8() error {
	header("E8", "common XML export/import round trip (paper §3.1)")
	dir, err := os.MkdirTemp("", "perfdmf-e8")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	res, err := experiments.RunE8(dir, 64, 40)
	if err != nil {
		return err
	}
	fmt.Printf("export: %v, import: %v, %d bytes for %d data points, lossless: %v\n",
		res.Export.Round(1e5), res.Import.Round(1e5), res.Bytes, res.DataPoints, res.Lossless)
	if !res.Lossless {
		return fmt.Errorf("E8 failed")
	}
	return nil
}

func runAblations(quick bool) error {
	header("AB", "design-choice ablations (DESIGN.md §4)")
	threads := 256
	if quick {
		threads = 64
	}
	var all []experiments.AblationRow
	batch, err := experiments.RunAblationBatchInsert(threads, 40)
	if err != nil {
		return err
	}
	all = append(all, batch...)
	index, err := experiments.RunAblationIndex(threads/2, 30, 6)
	if err != nil {
		return err
	}
	all = append(all, index...)
	summary, err := experiments.RunAblationSummary(threads, 40)
	if err != nil {
		return err
	}
	all = append(all, summary...)
	seeding, err := experiments.RunAblationSeeding(threads)
	if err != nil {
		return err
	}
	all = append(all, seeding...)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "ABLATION\tVARIANT\tELAPSED\tDETAIL\n")
	for _, r := range all {
		fmt.Fprintf(w, "%s\t%s\t%v\t%s\n", r.Name, r.Variant, r.Elapsed.Round(1e5), r.Detail)
	}
	return w.Flush()
}
