package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"perfdmf/internal/core"
	"perfdmf/internal/mining"
	"perfdmf/internal/synth"
)

// startServer builds an archive and runs a mining server over it.
func startServer(t *testing.T) string {
	t.Helper()
	s, err := core.Open("mem:perfexplorer_cli_" + t.Name())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	app := &core.Application{Name: "sPPM"}
	s.SaveApplication(app)
	s.SetApplication(app)
	exp := &core.Experiment{Name: "counters"}
	s.SaveExperiment(exp)
	s.SetExperiment(exp)
	p, _ := synth.CounterTrial(synth.CounterConfig{Threads: 16, Seed: 3})
	if _, err := s.UploadTrial(p, core.UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := mining.NewServer(s)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		io.Copy(&b, r) //nolint:errcheck
		done <- b.String()
	}()
	err := fn()
	w.Close()
	os.Stdout = old
	return <-done, err
}

func TestClientList(t *testing.T) {
	addr := startServer(t)
	out, err := captureStdout(t, func() error { return runClient(addr, []string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sPPM") || !strings.Contains(out, "TRIAL") {
		t.Errorf("list output:\n%s", out)
	}
}

func TestClientCluster(t *testing.T) {
	addr := startServer(t)
	out, err := captureStdout(t, func() error {
		return runClient(addr, []string{"cluster", "-trial", "1", "-k", "3", "-seed", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"k=3", "cluster 0:", "stored as analysis result"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster output missing %q:\n%s", want, out)
		}
	}
	// Results listing sees the stored artifact.
	out, err = captureStdout(t, func() error {
		return runClient(addr, []string{"results", "-trial", "1"})
	})
	if err != nil || !strings.Contains(out, "kmeans") {
		t.Fatalf("results: %v\n%s", err, out)
	}
}

func TestClientClusterWithMetricSubset(t *testing.T) {
	addr := startServer(t)
	out, err := captureStdout(t, func() error {
		return runClient(addr, []string{"cluster", "-trial", "1", "-k", "2",
			"-metrics", "PAPI_FP_OPS,TIME", "-normalize", "minmax"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// 5 events × 2 metrics = 10 dimensions.
	if !strings.Contains(out, "10 dimensions") {
		t.Errorf("subset output:\n%s", out)
	}
}

func TestClientErrors(t *testing.T) {
	addr := startServer(t)
	if err := runClient(addr, nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := runClient(addr, []string{"frob"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := runClient(addr, []string{"cluster", "-trial", "999"}); err == nil {
		t.Error("unknown trial accepted")
	}
	if err := runClient("127.0.0.1:1", []string{"list"}); err == nil {
		t.Error("dead server accepted")
	}
	if err := runServer("", "127.0.0.1:0"); err == nil {
		t.Error("serve without -db accepted")
	}
}

func TestClientCorrelate(t *testing.T) {
	addr := startServer(t)
	out, err := captureStdout(t, func() error {
		return runClient(addr, []string{"correlate", "-trial", "1", "-threshold", "0.5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "metric correlation for trial 1 (8 metrics)") {
		t.Errorf("correlate output:\n%s", out)
	}
	// Persisted as an analysis result.
	out, err = captureStdout(t, func() error {
		return runClient(addr, []string{"results", "-trial", "1"})
	})
	if err != nil || !strings.Contains(out, "pearson") {
		t.Fatalf("results after correlate: %v\n%s", err, out)
	}
	// Bad trial errors.
	if err := runClient(addr, []string{"correlate", "-trial", "999"}); err == nil {
		t.Error("missing trial accepted")
	}
}
