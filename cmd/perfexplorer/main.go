// Command perfexplorer is the data-mining application of paper §5.3 in its
// client/server shape (Figure 3): `-serve` runs the analysis server over a
// PerfDMF archive; without it the command acts as a client that lists
// trials, requests cluster analyses, and browses stored results.
//
// Usage:
//
//	perfexplorer -serve -db DSN [-addr HOST:PORT]
//	perfexplorer -addr HOST:PORT list
//	perfexplorer -addr HOST:PORT cluster -trial ID [-k K] [-metrics A,B] [-seed N]
//	perfexplorer -addr HOST:PORT correlate -trial ID [-threshold 0.8]
//	perfexplorer -addr HOST:PORT results -trial ID
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"

	"perfdmf/internal/core"
	"perfdmf/internal/mining"
)

func main() {
	serve := flag.Bool("serve", false, "run the analysis server")
	dsn := flag.String("db", "", "database DSN (server mode)")
	addr := flag.String("addr", "127.0.0.1:7777", "server address")
	flag.Parse()

	var err error
	if *serve {
		err = runServer(*dsn, *addr)
	} else {
		err = runClient(*addr, flag.Args())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfexplorer:", err)
		os.Exit(1)
	}
}

func runServer(dsn, addr string) error {
	if dsn == "" {
		return fmt.Errorf("-serve needs -db")
	}
	sess, err := core.Open(dsn)
	if err != nil {
		return err
	}
	defer sess.Close()
	srv := mining.NewServer(sess)
	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Printf("perfexplorer server on %s (db %s)\n", bound, dsn)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return srv.Close()
}

func runClient(addr string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing client subcommand (list, cluster, results)")
	}
	c, err := mining.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	switch args[0] {
	case "list":
		resp, err := c.Do(mining.Request{Op: "list"})
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(w, "TRIAL\tNAME\tEXPERIMENT\tAPPLICATION\tNODES\n")
		for _, t := range resp.Trials {
			fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%d\n",
				t.TrialID, t.Trial, t.Experiment, t.Application, t.NodeCount)
		}
		return w.Flush()

	case "cluster":
		fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
		trial := fs.Int64("trial", 0, "trial id")
		k := fs.Int("k", 0, "cluster count (0 = automatic)")
		maxK := fs.Int("maxk", 8, "max k for automatic selection")
		seed := fs.Int64("seed", 1, "RNG seed")
		metrics := fs.String("metrics", "", "comma-separated metric subset")
		normalize := fs.String("normalize", "zscore", "normalization: zscore, minmax, none")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		req := mining.Request{
			Op: "cluster", TrialID: *trial, K: *k, MaxK: *maxK,
			Seed: *seed, Normalize: *normalize,
		}
		if *metrics != "" {
			req.Metrics = strings.Split(*metrics, ",")
		}
		resp, err := c.Do(req)
		if err != nil {
			return err
		}
		printCluster(resp.Cluster)
		return nil

	case "correlate":
		fs := flag.NewFlagSet("correlate", flag.ContinueOnError)
		trial := fs.Int64("trial", 0, "trial id")
		threshold := fs.Float64("threshold", 0.8, "|r| threshold for the pair list")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		resp, err := c.Do(mining.Request{Op: "correlate", TrialID: *trial})
		if err != nil {
			return err
		}
		corr := resp.Correlation
		fmt.Printf("metric correlation for trial %d (%d metrics):\n\n", corr.TrialID, len(corr.Metrics))
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(w, "A\tB\tr\n")
		for _, pair := range corr.StrongPairs(*threshold) {
			fmt.Fprintf(w, "%s\t%s\t%+.3f\n", pair.A, pair.B, pair.R)
		}
		return w.Flush()

	case "results":
		fs := flag.NewFlagSet("results", flag.ContinueOnError)
		trial := fs.Int64("trial", 0, "trial id")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		resp, err := c.Do(mining.Request{Op: "results", TrialID: *trial})
		if err != nil {
			return err
		}
		for _, r := range resp.Results {
			fmt.Printf("result %d (%s, %s): %d bytes\n", r.ID, r.Name, r.Method, len(r.Result))
		}
		return nil
	}
	return fmt.Errorf("unknown client subcommand %q", args[0])
}

func printCluster(cr *mining.ClusterResult) {
	fmt.Printf("trial %d: k=%d over %d threads × %d dimensions (rss %.4g, %d iterations)\n",
		cr.TrialID, cr.K, cr.Threads, cr.Dimensions, cr.RSS, cr.Iterations)
	if len(cr.PCAExplained) > 0 {
		fmt.Printf("top principal components explain:")
		for _, e := range cr.PCAExplained {
			fmt.Printf(" %.1f%%", 100*e)
		}
		fmt.Println()
	}
	for _, s := range cr.Summaries {
		fmt.Printf("\ncluster %d: %d threads (nodes %s)\n", s.Cluster, s.Size, s.ThreadRange)
		for _, d := range s.TopDimensions {
			fmt.Printf("  %-50s %.5g\n", d.Label, d.Value)
		}
	}
	fmt.Printf("\nstored as analysis result %d\n", cr.ResultID)
}
