package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"perfdmf/internal/core"
	"perfdmf/internal/synth"
)

func buildArchive(t *testing.T) string {
	t.Helper()
	dsn := "file:" + t.TempDir()
	s, err := core.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	app := &core.Application{Name: "EVH1"}
	s.SaveApplication(app)
	s.SetApplication(app)
	exp := &core.Experiment{Name: "scaling"}
	s.SaveExperiment(exp)
	s.SetExperiment(exp)
	for _, p := range synth.ScalingSeries(synth.ScalingConfig{Procs: []int{1, 4, 16}, Seed: 2}) {
		if _, err := s.UploadTrial(p, core.UploadOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	return dsn
}

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		io.Copy(&b, r) //nolint:errcheck
		done <- b.String()
	}()
	err := fn()
	w.Close()
	os.Stdout = old
	return <-done, err
}

func TestSpeedupCLI(t *testing.T) {
	dsn := buildArchive(t)
	out, err := captureStdout(t, func() error {
		return run(dsn, "", "scaling", "TIME", 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"baseline 1 procs", "PROCS", "EFFICIENCY", "SWEEPX"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// App filter works.
	if _, err := captureStdout(t, func() error {
		return run(dsn, "EVH1", "scaling", "TIME", 5)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupCLIErrors(t *testing.T) {
	dsn := buildArchive(t)
	if err := run("", "", "scaling", "TIME", 5); err == nil {
		t.Error("missing -db accepted")
	}
	if err := run(dsn, "", "", "TIME", 5); err == nil {
		t.Error("missing -exp accepted")
	}
	if err := run(dsn, "", "nosuch", "TIME", 5); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(dsn, "WRONG", "scaling", "TIME", 5); err == nil {
		t.Error("wrong app filter accepted")
	}
	if err := run(dsn, "", "scaling", "NOPE", 5); err == nil {
		t.Error("unknown metric accepted")
	}
}
