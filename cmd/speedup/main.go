// Command speedup is the speedup analyzer of paper §5.2: given an
// experiment whose trials ran the same application at different processor
// counts, it prints per-routine minimum/mean/maximum speedup plus
// whole-application speedup and parallel efficiency.
//
// Usage:
//
//	speedup -db DSN -exp NAME [-app NAME] [-metric TIME] [-routines N]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"perfdmf/internal/analysis"
	"perfdmf/internal/core"
)

func main() {
	dsn := flag.String("db", "", "database DSN")
	appName := flag.String("app", "", "application name (default: search all)")
	expName := flag.String("exp", "", "experiment name")
	metric := flag.String("metric", "TIME", "metric")
	maxRoutines := flag.Int("routines", 12, "routines to print")
	flag.Parse()
	if err := run(*dsn, *appName, *expName, *metric, *maxRoutines); err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(1)
	}
}

func run(dsn, appName, expName, metric string, maxRoutines int) error {
	if dsn == "" || expName == "" {
		return fmt.Errorf("-db and -exp are required")
	}
	s, err := core.Open(dsn)
	if err != nil {
		return err
	}
	defer s.Close()

	exp, err := findExperiment(s, appName, expName)
	if err != nil {
		return err
	}
	s.SetExperiment(exp)
	trials, err := s.TrialList()
	if err != nil {
		return err
	}
	study, err := analysis.Speedup(s, trials, metric)
	if err != nil {
		return err
	}
	Print(os.Stdout, study, maxRoutines)
	return nil
}

func findExperiment(s *core.DataSession, appName, expName string) (*core.Experiment, error) {
	apps, err := s.ApplicationList()
	if err != nil {
		return nil, err
	}
	for _, app := range apps {
		if appName != "" && app.Name != appName {
			continue
		}
		s.SetApplication(app)
		exps, err := s.ExperimentList()
		if err != nil {
			return nil, err
		}
		for _, exp := range exps {
			if exp.Name == expName {
				return exp, nil
			}
		}
	}
	return nil, fmt.Errorf("no experiment %q", expName)
}

// Print renders a speedup study as text tables.
func Print(out *os.File, study *analysis.SpeedupStudy, maxRoutines int) {
	fmt.Fprintf(out, "speedup study over %d trials (%s), baseline %d procs\n\n",
		len(study.Procs), study.Metric, study.BaseProcs)

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "PROCS\tAPP TIME\tSPEEDUP\tEFFICIENCY\n")
	for i, procs := range study.Procs {
		fmt.Fprintf(w, "%d\t%.4g\t%.2f\t%.1f%%\n",
			procs, study.AppTime[i], study.AppSpeed[i], 100*study.AppEff[i])
	}
	w.Flush()

	routines := study.Routines
	if maxRoutines < len(routines) {
		routines = routines[:maxRoutines]
	}
	fmt.Fprintf(out, "\nper-routine speedup (min / mean / max across threads):\n\n")
	w = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "ROUTINE")
	for _, procs := range study.Procs {
		fmt.Fprintf(w, "\t%dp", procs)
	}
	fmt.Fprintln(w)
	for _, r := range routines {
		fmt.Fprintf(w, "%s", r.Name)
		for _, pt := range r.Points {
			fmt.Fprintf(w, "\t%.2f/%.2f/%.2f", pt.Min, pt.Mean, pt.Max)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}
