// Command perfdmf-vet runs PerfDMF's repo-native static analyzers over the
// module, in the spirit of go vet: it prints file:line:col diagnostics and
// exits nonzero when any invariant is violated. The analyzers (lockcheck,
// closecheck, sqlcheck, determinism, metricnames, lockorder, atomiccheck,
// ctxpoll, lifecycle) are documented in docs/STATIC_ANALYSIS.md; deliberate
// violations are suppressed in source with //lint:allow comments, never by
// skipping the gate.
//
// Usage:
//
//	perfdmf-vet [-analyzers a,b] [-list] [-json] [-fix-hints] [-dump-sql] [./...]
//
// -json emits the diagnostics as a JSON array (file/line/col/analyzer/
// message) for editor and CI integration. -fix-hints prints the declared
// concurrency contracts — the global lock order, the held-on-entry table,
// and the cancellation-poll stride — that a reported finding must be fixed
// against. The package pattern is accepted for familiarity but the tool
// always analyzes the whole module containing the working directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"perfdmf/internal/lint"
)

func main() {
	var (
		analyzers = flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
		list      = flag.Bool("list", false, "list available analyzers and exit")
		jsonOut   = flag.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
		fixHints  = flag.Bool("fix-hints", false, "print the declared concurrency contracts (lock order, held-on-entry, poll stride) and exit")
		dumpSQL   = flag.Bool("dump-sql", false, "print every constant SQL literal sqlcheck sees (fuzz seed corpus) and exit")
	)
	flag.Parse()

	all := lint.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *fixHints {
		printFixHints()
		return
	}

	selected := all
	if *analyzers != "" {
		byName := make(map[string]*lint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*analyzers, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "perfdmf-vet: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	moduleDir, err := findModuleDir()
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdmf-vet: %v\n", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdmf-vet: %v\n", err)
		os.Exit(2)
	}
	prog, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdmf-vet: %v\n", err)
		os.Exit(2)
	}

	// One Go-quoted literal per line: SQL literals span lines, and the
	// quoted form is what the fuzz seed corpus (testdata/sql_seed.txt)
	// stores and strconv.Unquote reads back.
	if *dumpSQL {
		for _, sql := range lint.ExtractSQL(prog) {
			fmt.Println(strconv.Quote(sql))
		}
		return
	}

	diags := lint.Run(prog, selected)
	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "perfdmf-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "perfdmf-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// printFixHints prints the declared concurrency contracts the analyzers
// enforce, so a lockorder or ctxpoll finding can be fixed against the
// authoritative tables without digging through internal/lint.
func printFixHints() {
	fmt.Println("Declared global lock order (lockorder), outermost first:")
	for i, class := range lint.LockOrder {
		fmt.Printf("  %2d. %s\n", i+1, class)
	}
	fmt.Println("\nHeld-on-entry contracts (methods analyzed as if already holding):")
	types := make([]string, 0, len(lint.LockOrderHeldOnEntry))
	for t := range lint.LockOrderHeldOnEntry {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Printf("  %-12s holds %s\n", t, strings.Join(lint.LockOrderHeldOnEntry[t], ", "))
	}
	fmt.Printf("\nCancellation polling (ctxpoll): scan loops must poll at most every %d iterations.\n", lint.CtxpollMaxStride)
	fmt.Println("Fix with a stride-guarded Err() check (iter % stride == 0) or justify with //lint:allow ctxpoll.")
}

// findModuleDir walks up from the working directory to the nearest go.mod.
func findModuleDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
