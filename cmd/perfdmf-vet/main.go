// Command perfdmf-vet runs PerfDMF's repo-native static analyzers over the
// module, in the spirit of go vet: it prints file:line:col diagnostics and
// exits nonzero when any invariant is violated. The analyzers (lockcheck,
// closecheck, sqlcheck, determinism, metricnames) are documented in
// docs/STATIC_ANALYSIS.md; deliberate violations are suppressed in source
// with //lint:allow comments, never by skipping the gate.
//
// Usage:
//
//	perfdmf-vet [-analyzers a,b] [-list] [-dump-sql] [./...]
//
// The package pattern is accepted for familiarity but the tool always
// analyzes the whole module containing the working directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"perfdmf/internal/lint"
)

func main() {
	var (
		analyzers = flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
		list      = flag.Bool("list", false, "list available analyzers and exit")
		dumpSQL   = flag.Bool("dump-sql", false, "print every constant SQL literal sqlcheck sees (fuzz seed corpus) and exit")
	)
	flag.Parse()

	all := lint.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if *analyzers != "" {
		byName := make(map[string]*lint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*analyzers, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "perfdmf-vet: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	moduleDir, err := findModuleDir()
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdmf-vet: %v\n", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdmf-vet: %v\n", err)
		os.Exit(2)
	}
	prog, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdmf-vet: %v\n", err)
		os.Exit(2)
	}

	// One Go-quoted literal per line: SQL literals span lines, and the
	// quoted form is what the fuzz seed corpus (testdata/sql_seed.txt)
	// stores and strconv.Unquote reads back.
	if *dumpSQL {
		for _, sql := range lint.ExtractSQL(prog) {
			fmt.Println(strconv.Quote(sql))
		}
		return
	}

	diags := lint.Run(prog, selected)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "perfdmf-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleDir walks up from the working directory to the nearest go.mod.
func findModuleDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
