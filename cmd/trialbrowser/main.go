// Command trialbrowser is the trial browser of paper §5.2: it walks a
// PerfDMF archive's application → experiment → trial tree and drills into
// a trial's metrics, events and per-thread data, exercising a broad subset
// of the DataSession API.
//
// Usage:
//
//	trialbrowser -db DSN                      # browse the whole tree
//	trialbrowser -db DSN -trial ID            # trial detail
//	trialbrowser -db DSN -trial ID -event N   # one event across all threads
//	trialbrowser -db DSN -trial ID -calltree [-node N]  # callpath tree
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"perfdmf/internal/core"
	"perfdmf/internal/model"
)

func main() {
	dsn := flag.String("db", "", "database DSN (file:DIR or mem:NAME)")
	trialID := flag.Int64("trial", 0, "show detail for one trial")
	eventID := flag.Int64("event", 0, "show one event across all threads")
	metric := flag.String("metric", "TIME", "metric for event views")
	calltree := flag.Bool("calltree", false, "reconstruct the callpath tree (TAU_CALLPATH events)")
	node := flag.Int("node", 0, "thread node for -calltree")
	flag.Parse()
	if err := run(*dsn, *trialID, *eventID, *metric, *calltree, *node); err != nil {
		fmt.Fprintln(os.Stderr, "trialbrowser:", err)
		os.Exit(1)
	}
}

func run(dsn string, trialID, eventID int64, metric string, calltree bool, node int) error {
	if dsn == "" {
		return fmt.Errorf("-db is required")
	}
	s, err := core.Open(dsn)
	if err != nil {
		return err
	}
	defer s.Close()

	switch {
	case trialID == 0:
		return browseTree(s)
	case calltree:
		return callTreeView(s, trialID, metric, node)
	case eventID == 0:
		return trialDetail(s, trialID, metric)
	default:
		return eventDetail(s, trialID, eventID, metric)
	}
}

// callTreeView reconstructs and prints the callpath tree of one thread.
func callTreeView(s *core.DataSession, trialID int64, metric string, node int) error {
	p, err := s.LoadTrial(trialID)
	if err != nil {
		return err
	}
	mid := p.MetricID(metric)
	if mid < 0 {
		return fmt.Errorf("trial %d has no metric %q", trialID, metric)
	}
	th := p.FindThread(node, 0, 0)
	if th == nil {
		return fmt.Errorf("trial %d has no thread %d,0,0", trialID, node)
	}
	root, ok := p.CallTree(th, mid)
	if !ok {
		return fmt.Errorf("trial %d has no callpath (TAU_CALLPATH) events", trialID)
	}
	fmt.Printf("call tree for trial %d, thread %d,0,0 (%s):\n\n", trialID, node, metric)
	model.WalkCalls(root, func(n *model.CallNode, depth int) {
		pct := 0.0
		if root.Inclusive > 0 {
			pct = 100 * n.Inclusive / root.Inclusive
		}
		fmt.Printf("%s%-*s %10.4g incl  %10.4g excl  %8.0f calls  %5.1f%%\n",
			strings.Repeat("  ", depth), 44-2*depth, n.Name,
			n.Inclusive, n.Exclusive, n.Calls, pct)
	})
	hot := model.HotPath(root)
	fmt.Printf("\nhot path:")
	for _, n := range hot {
		fmt.Printf(" → %s", n.Name)
	}
	fmt.Println()
	return nil
}

func browseTree(s *core.DataSession) error {
	apps, err := s.ApplicationList()
	if err != nil {
		return err
	}
	if len(apps) == 0 {
		fmt.Println("(empty archive)")
		return nil
	}
	for _, app := range apps {
		fmt.Printf("▸ %s", app.Name)
		if v, ok := app.Fields["version"]; ok {
			fmt.Printf(" %v", v)
		}
		fmt.Printf("  [application %d]\n", app.ID)
		s.SetApplication(app)
		exps, err := s.ExperimentList()
		if err != nil {
			return err
		}
		for _, exp := range exps {
			fmt.Printf("  ▸ %s  [experiment %d]\n", exp.Name, exp.ID)
			s.SetExperiment(exp)
			trials, err := s.TrialList()
			if err != nil {
				return err
			}
			for _, trial := range trials {
				fmt.Printf("    • trial %d: %s — %d nodes × %d ctx × %d threads\n",
					trial.ID, trial.Name, trial.NodeCount(),
					trial.ContextsPerNode(), trial.MaxThreadsPerContext())
			}
		}
	}
	return nil
}

func trialDetail(s *core.DataSession, trialID int64, metric string) error {
	s.SetTrial(&core.Trial{ID: trialID})
	metrics, err := s.MetricList()
	if err != nil {
		return err
	}
	fmt.Printf("trial %d metrics:\n", trialID)
	for _, m := range metrics {
		tag := ""
		if m.Derived {
			tag = " (derived)"
		}
		fmt.Printf("  %d: %s%s\n", m.ID, m.Name, tag)
	}
	events, err := s.IntervalEventList()
	if err != nil {
		return err
	}
	fmt.Printf("\n%d interval events; mean profile for %s:\n\n", len(events), metric)
	rows, err := s.MeanSummary(metric)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "EVENT\tEXCL%%\t\tEXCLUSIVE\tINCLUSIVE\tCALLS\tID\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%s\t%.4g\t%.4g\t%.0f\t%d\n",
			r.EventName, r.ExclPct, bar(r.ExclPct, 24), r.Exclusive, r.Inclusive, r.Calls, r.EventID)
	}
	w.Flush()

	atomics, err := s.AtomicEventList()
	if err != nil {
		return err
	}
	if len(atomics) > 0 {
		fmt.Printf("\n%d atomic events:\n", len(atomics))
		for _, a := range atomics {
			fmt.Printf("  %d: %s (%s)\n", a.ID, a.Name, a.Group)
		}
	}
	return nil
}

// bar renders pct (0..100) as a ParaProf-style horizontal bar.
func bar(pct float64, width int) string {
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	n := int(pct/100*float64(width) + 0.5)
	out := make([]rune, width)
	for i := range out {
		if i < n {
			out[i] = '█'
		} else {
			out[i] = '·'
		}
	}
	return string(out)
}

func eventDetail(s *core.DataSession, trialID, eventID int64, metric string) error {
	s.SetTrial(&core.Trial{ID: trialID})
	rows, err := s.EventProfile(eventID, metric)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("event %d has no %s data in trial %d", eventID, metric, trialID)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "N,C,T\tEXCLUSIVE\tINCLUSIVE\tCALLS\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%d,%d,%d\t%.6g\t%.6g\t%.0f\n",
			r.Node, r.Context, r.Thread, r.Exclusive, r.Inclusive, r.Calls)
	}
	return w.Flush()
}
