package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"perfdmf/internal/core"
	"perfdmf/internal/model"
	"perfdmf/internal/synth"
)

func buildArchive(t *testing.T) string {
	t.Helper()
	dsn := "file:" + t.TempDir()
	s, err := core.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	app := &core.Application{Name: "browseapp", Fields: map[string]any{"version": "3.1"}}
	s.SaveApplication(app)
	s.SetApplication(app)
	exp := &core.Experiment{Name: "browseexp"}
	s.SaveExperiment(exp)
	s.SetExperiment(exp)
	p, _ := synth.CounterTrial(synth.CounterConfig{Threads: 4, Seed: 1})
	if _, err := s.UploadTrial(p, core.UploadOptions{TrialName: "t1"}); err != nil {
		t.Fatal(err)
	}
	return dsn
}

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		io.Copy(&b, r) //nolint:errcheck
		done <- b.String()
	}()
	err := fn()
	w.Close()
	os.Stdout = old
	return <-done, err
}

func TestBrowseTree(t *testing.T) {
	dsn := buildArchive(t)
	out, err := captureStdout(t, func() error { return run(dsn, 0, 0, "TIME", false, 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"browseapp 3.1", "browseexp", "trial 1: t1", "4 nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
}

func TestTrialDetail(t *testing.T) {
	dsn := buildArchive(t)
	out, err := captureStdout(t, func() error { return run(dsn, 1, 0, "TIME", false, 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trial 1 metrics", "PAPI_FP_OPS", "interval events", "hydro"} {
		if !strings.Contains(out, want) {
			t.Errorf("detail missing %q:\n%s", want, out)
		}
	}
}

func TestEventDetail(t *testing.T) {
	dsn := buildArchive(t)
	// Find an event id first.
	s, err := core.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	s.SetTrial(&core.Trial{ID: 1})
	events, err := s.IntervalEventList()
	if err != nil || len(events) == 0 {
		t.Fatal(err)
	}
	eid := events[0].ID
	s.Close()

	out, err := captureStdout(t, func() error { return run(dsn, 1, eid, "TIME", false, 0) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "N,C,T") || len(strings.Split(strings.TrimSpace(out), "\n")) != 5 {
		t.Errorf("event view:\n%s", out)
	}
}

func TestBrowserErrors(t *testing.T) {
	dsn := buildArchive(t)
	if err := run("", 0, 0, "TIME", false, 0); err == nil {
		t.Error("missing -db accepted")
	}
	if err := run(dsn, 1, 9999, "TIME", false, 0); err == nil {
		t.Error("unknown event accepted")
	}
	if err := run(dsn, 1, 0, "NOPE", false, 0); err != nil {
		// Unknown metric yields an empty (not error) summary; the command
		// prints headers only — both behaviours acceptable, but it must
		// not panic.
		t.Logf("unknown metric: %v", err)
	}
}

func TestCallTreeView(t *testing.T) {
	dsn := "file:" + t.TempDir()
	s, err := core.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	app := &core.Application{Name: "cp"}
	s.SaveApplication(app)
	s.SetApplication(app)
	exp := &core.Experiment{Name: "cp"}
	s.SaveExperiment(exp)
	s.SetExperiment(exp)
	p := callpathProfile()
	if _, err := s.UploadTrial(p, core.UploadOptions{TrialName: "cp"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	out, err := captureStdout(t, func() error { return run(dsn, 1, 0, "TIME", true, 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"call tree for trial 1", "main()", "solve()", "hot path:", "MPI_Send()"} {
		if !strings.Contains(out, want) {
			t.Errorf("calltree missing %q:\n%s", want, out)
		}
	}
	// Errors: no callpath events, missing thread, missing metric.
	dsn2 := buildArchive(t)
	if err := run(dsn2, 1, 0, "TIME", true, 0); err == nil {
		t.Error("flat trial produced a call tree")
	}
	if err := run(dsn, 1, 0, "TIME", true, 99); err == nil {
		t.Error("missing thread accepted")
	}
	if err := run(dsn, 1, 0, "NOPE", true, 0); err == nil {
		t.Error("missing metric accepted")
	}
}

// callpathProfile builds a tiny TAU-style callpath profile.
func callpathProfile() *model.Profile {
	p := model.New("cp")
	m := p.AddMetric("TIME")
	th := p.Thread(0, 0, 0)
	set := func(name, group string, incl, excl, calls float64) {
		e := p.AddIntervalEvent(name, group)
		d := th.IntervalData(e.ID, 1)
		d.NumCalls = calls
		d.PerMetric[m] = model.MetricData{Inclusive: incl, Exclusive: excl}
	}
	set("main()", "TAU_DEFAULT", 100, 10, 1)
	set("solve()", "TAU_USER", 90, 40, 5)
	set("main() => solve()", "TAU_CALLPATH", 90, 40, 5)
	set("main() => solve() => MPI_Send()", "TAU_CALLPATH", 50, 50, 100)
	return p
}
