package perfdmf

// End-to-end integration test: the full pipeline a real deployment runs —
// generate tool output on disk, auto-detect and parse every format, store
// everything in one durable archive, reopen it, run the speedup analyzer
// and the PerfExplorer server over the same archive, derive a metric,
// apply the profile algebra, and export to XML. One test, every layer.

import (
	"os"
	"path/filepath"
	"testing"

	"perfdmf/internal/analysis"
	"perfdmf/internal/core"
	"perfdmf/internal/formats"
	"perfdmf/internal/formats/xmlprof"
	"perfdmf/internal/mining"
	"perfdmf/internal/model"
	"perfdmf/internal/synth"
)

func TestFullPipeline(t *testing.T) {
	workDir := t.TempDir()
	dbDir := filepath.Join(workDir, "archive")
	dsn := "file:" + dbDir

	// --- Phase 1: import every format into a durable archive. ---
	paths, err := synth.WriteSampleFiles(filepath.Join(workDir, "raw"), 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	app := &core.Application{Name: "integration"}
	if err := s.SaveApplication(app); err != nil {
		t.Fatal(err)
	}
	s.SetApplication(app)
	exp := &core.Experiment{Name: "imports"}
	if err := s.SaveExperiment(exp); err != nil {
		t.Fatal(err)
	}
	s.SetExperiment(exp)
	for _, format := range formats.All {
		p, err := formats.LoadAuto(paths[format])
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if _, err := s.UploadTrial(p, core.UploadOptions{TrialName: format}); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
	}

	// Scaling series for the analyzer, in its own experiment.
	exp2 := &core.Experiment{Name: "scaling"}
	if err := s.SaveExperiment(exp2); err != nil {
		t.Fatal(err)
	}
	s.SetExperiment(exp2)
	for _, p := range synth.ScalingSeries(synth.ScalingConfig{Procs: []int{1, 4, 16}, Seed: 5}) {
		if _, err := s.UploadTrial(p, core.UploadOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Counter trial for mining.
	exp3 := &core.Experiment{Name: "counters"}
	if err := s.SaveExperiment(exp3); err != nil {
		t.Fatal(err)
	}
	s.SetExperiment(exp3)
	counterProfile, truth := synth.CounterTrial(synth.CounterConfig{Threads: 32, Seed: 5})
	counterTrial, err := s.UploadTrial(counterProfile, core.UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// --- Phase 2: reopen the durable archive and analyze. ---
	s, err = core.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	apps, err := s.ApplicationList()
	if err != nil || len(apps) != 1 {
		t.Fatalf("apps after reopen: %v %v", apps, err)
	}
	s.SetApplication(apps[0])
	exps, err := s.ExperimentList()
	if err != nil || len(exps) != 3 {
		t.Fatalf("experiments after reopen: %v %v", exps, err)
	}

	// Speedup over the scaling experiment.
	s.SetExperiment(exps[1])
	trials, err := s.TrialList()
	if err != nil || len(trials) != 3 {
		t.Fatalf("scaling trials: %v %v", trials, err)
	}
	study, err := analysis.Speedup(s, trials, "TIME")
	if err != nil {
		t.Fatal(err)
	}
	if study.AppSpeed[2] <= 1 || study.AppEff[2] >= 1 {
		t.Fatalf("study shape: speed=%v eff=%v", study.AppSpeed, study.AppEff)
	}

	// PerfExplorer over the counter trial, via the wire protocol.
	srv := mining.NewServer(s)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := mining.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	resp, err := client.Do(mining.Request{
		Op: "cluster", TrialID: counterTrial.ID, K: 3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	aligned := make([]int, resp.Cluster.Threads)
	for i := range aligned {
		aligned[i] = truth[i]
	}
	if got := agreementScore(resp.Cluster.Assignments, aligned, 3); got < 0.9 {
		t.Fatalf("clustering agreement: %g", got)
	}

	// Derive and persist a metric on the counter trial.
	loaded, err := s.LoadTrial(counterTrial.ID)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := loaded.DeriveMetric("FLOPS", model.Ratio("PAPI_FP_OPS", "TIME", 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SaveDerivedMetric(counterTrial.ID, loaded, mid); err != nil {
		t.Fatal(err)
	}

	// Profile algebra: mean of the two smallest scaling trials.
	p1, err := s.LoadTrial(trials[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.LoadTrial(trials[1].ID)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := analysis.Mean(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if mean.FindIntervalEvent("SWEEPX") == nil {
		t.Fatal("algebra lost events")
	}

	// XML export of the derived-metric trial.
	xmlPath := filepath.Join(workDir, "out.xml")
	re, err := s.LoadTrial(counterTrial.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := xmlprof.Write(xmlPath, re); err != nil {
		t.Fatal(err)
	}
	back, err := xmlprof.Read(xmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if back.MetricID("FLOPS") < 0 {
		t.Fatal("derived metric lost in XML round trip")
	}
	if fi, err := os.Stat(xmlPath); err != nil || fi.Size() == 0 {
		t.Fatalf("xml file: %v", err)
	}
}

func agreementScore(assign, truth []int, k int) float64 {
	match := 0
	for c := 0; c < k; c++ {
		counts := map[int]int{}
		for i, a := range assign {
			if a == c {
				counts[truth[i]]++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		match += best
	}
	return float64(match) / float64(len(assign))
}
