// Speedup reproduces the paper's §5.2 scenario: an EVH1-like strong-
// scaling study is uploaded as one experiment with trials at 1..64
// processors, then the speedup analyzer computes per-routine min/mean/max
// speedup and whole-application efficiency from the database.
package main

import (
	"fmt"
	"log"

	"perfdmf/internal/analysis"
	"perfdmf/internal/core"
	"perfdmf/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s, err := core.Open("mem:speedup-example")
	if err != nil {
		return err
	}
	defer s.Close()

	app := &core.Application{Name: "EVH1", Fields: map[string]any{"version": "1.0"}}
	if err := s.SaveApplication(app); err != nil {
		return err
	}
	s.SetApplication(app)
	exp := &core.Experiment{Name: "strong-scaling", Fields: map[string]any{
		"system_info": "synthetic cluster",
	}}
	if err := s.SaveExperiment(exp); err != nil {
		return err
	}
	s.SetExperiment(exp)

	procs := []int{1, 2, 4, 8, 16, 32, 64}
	for _, p := range synth.ScalingSeries(synth.ScalingConfig{Procs: procs, Seed: 11}) {
		trial, err := s.UploadTrial(p, core.UploadOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("uploaded %s as trial %d\n", p.Name, trial.ID)
	}

	trials, err := s.TrialList()
	if err != nil {
		return err
	}
	study, err := analysis.Speedup(s, trials, "TIME")
	if err != nil {
		return err
	}

	fmt.Printf("\napplication scaling (%s):\n", study.Metric)
	fmt.Printf("%8s %14s %10s %12s\n", "PROCS", "APP TIME", "SPEEDUP", "EFFICIENCY")
	for i, procs := range study.Procs {
		fmt.Printf("%8d %14.4g %10.2f %11.1f%%\n",
			procs, study.AppTime[i], study.AppSpeed[i], 100*study.AppEff[i])
	}

	fmt.Printf("\nper-routine speedup at %dp (min / mean / max):\n", study.Procs[len(study.Procs)-1])
	for _, r := range study.Routines {
		last := r.Points[len(r.Points)-1]
		verdict := "scales"
		switch {
		case last.Mean < 1:
			verdict = "GROWS with procs (communication)"
		case last.Mean < float64(last.Procs)/4:
			verdict = "scales poorly"
		}
		fmt.Printf("  %-18s %6.2f / %6.2f / %6.2f   %s\n",
			r.Name, last.Min, last.Mean, last.Max, verdict)
	}
	return nil
}
