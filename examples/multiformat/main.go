// Multiformat reproduces the paper's Figure 2 scenario: profiles from many
// different tools (TAU, gprof, mpiP, dynaprof, HPMToolkit, PerfSuite, the
// sPPM custom format) are parsed into the common representation and stored
// in one database archive, then browsed as a single tree.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"perfdmf/internal/core"
	"perfdmf/internal/formats"
	"perfdmf/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	workDir, err := os.MkdirTemp("", "perfdmf-multiformat")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)

	// One dataset per tool, each in its own on-disk format.
	paths, err := synth.WriteSampleFiles(workDir, 2005)
	if err != nil {
		return err
	}

	s, err := core.Open("mem:multiformat")
	if err != nil {
		return err
	}
	defer s.Close()
	app := &core.Application{Name: "mixed-tools-app"}
	if err := s.SaveApplication(app); err != nil {
		return err
	}
	s.SetApplication(app)

	order := make([]string, 0, len(paths))
	for f := range paths {
		order = append(order, f)
	}
	sort.Strings(order)
	for _, format := range order {
		path := paths[format]
		detected, err := formats.Detect(path)
		if err != nil {
			return fmt.Errorf("%s: %w", format, err)
		}
		profile, err := formats.Load(detected, path)
		if err != nil {
			return fmt.Errorf("%s: %w", format, err)
		}
		exp := &core.Experiment{Name: format + "-data"}
		if err := s.SaveExperiment(exp); err != nil {
			return err
		}
		s.SetExperiment(exp)
		trial, err := s.UploadTrial(profile, core.UploadOptions{TrialName: format + "-trial"})
		if err != nil {
			return err
		}
		fmt.Printf("imported %-9s → trial %d (%s)\n", format, trial.ID, synth.Describe(profile))
	}

	// Browse the archive tree, Figure-2 style.
	fmt.Println("\narchive tree:")
	apps, err := s.ApplicationList()
	if err != nil {
		return err
	}
	for _, a := range apps {
		fmt.Printf("▸ %s\n", a.Name)
		s.SetApplication(a)
		exps, err := s.ExperimentList()
		if err != nil {
			return err
		}
		for _, e := range exps {
			fmt.Printf("  ▸ %s\n", e.Name)
			s.SetExperiment(e)
			trials, err := s.TrialList()
			if err != nil {
				return err
			}
			for _, t := range trials {
				s.SetTrial(t)
				metrics, err := s.MetricList()
				if err != nil {
					return err
				}
				names := make([]string, len(metrics))
				for i, m := range metrics {
					names[i] = m.Name
				}
				fmt.Printf("    • trial %d: %s — metrics %v\n", t.ID, t.Name, names)
			}
		}
	}
	return nil
}
