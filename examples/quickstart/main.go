// Quickstart: generate a TAU profile on disk, parse it, store it in a
// PerfDMF archive, and query it back — the minimal end-to-end tour of the
// framework (parse → store → query → analyze).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"perfdmf/internal/core"
	"perfdmf/internal/formats"
	"perfdmf/internal/formats/tau"
	"perfdmf/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A TAU profile directory, as a real run would leave behind.
	workDir, err := os.MkdirTemp("", "perfdmf-quickstart")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)
	profile := synth.LargeTrial(synth.LargeTrialConfig{Threads: 8, Events: 16, Metrics: 2, Seed: 1})
	tauDir := filepath.Join(workDir, "tau-run")
	if err := tau.Write(tauDir, profile); err != nil {
		return err
	}
	fmt.Println("wrote TAU profile:", tauDir)

	// 2. Parse it back through format auto-detection.
	parsed, err := formats.LoadAuto(tauDir)
	if err != nil {
		return err
	}
	fmt.Println("parsed:", synth.Describe(parsed))

	// 3. Store it in an archive (file:DIR would persist; mem: is enough here).
	s, err := core.Open("mem:quickstart")
	if err != nil {
		return err
	}
	defer s.Close()
	app := &core.Application{Name: "demo-app", Fields: map[string]any{"version": "1.0"}}
	if err := s.SaveApplication(app); err != nil {
		return err
	}
	s.SetApplication(app)
	exp := &core.Experiment{Name: "first-experiment"}
	if err := s.SaveExperiment(exp); err != nil {
		return err
	}
	s.SetExperiment(exp)
	trial, err := s.UploadTrial(parsed, core.UploadOptions{TrialName: "quickstart-trial"})
	if err != nil {
		return err
	}
	fmt.Printf("stored as trial %d (%d nodes)\n", trial.ID, trial.NodeCount())

	// 4a. Query through the object API: the trial's mean profile.
	s.SetTrial(trial)
	rows, err := s.MeanSummary("TIME")
	if err != nil {
		return err
	}
	fmt.Println("\ntop 5 events by mean exclusive TIME:")
	for i, r := range rows {
		if i == 5 {
			break
		}
		fmt.Printf("  %5.1f%%  %-44s %12.4g\n", r.ExclPct, r.EventName, r.Exclusive)
	}

	// 4b. Or through plain SQL on the same connection.
	rs, err := s.Conn().Query(`
		SELECT COUNT(*) FROM interval_location_profile`)
	if err != nil {
		return err
	}
	defer rs.Close()
	rs.Next()
	var n int64
	rs.Scan(&n)
	fmt.Printf("\nINTERVAL_LOCATION_PROFILE holds %d rows for this archive\n", n)

	// 5. Round-trip check: load the trial back and compare sizes.
	loaded, err := s.LoadTrial(trial.ID)
	if err != nil {
		return err
	}
	fmt.Printf("reloaded: %s\n", synth.Describe(loaded))
	if loaded.DataPoints() != parsed.DataPoints() {
		return fmt.Errorf("round trip lost data: %d vs %d", loaded.DataPoints(), parsed.DataPoints())
	}
	fmt.Println("round trip OK")
	return nil
}
