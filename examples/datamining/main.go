// Datamining reproduces the paper's §5.3 scenario: an sPPM-like trial with
// seven PAPI counters is stored in a PerfDMF archive; the PerfExplorer
// analysis server clusters its threads with k-means; the client browses
// the summaries; and the result is saved back through the PerfDMF API.
// The planted behaviour classes (distinct floating-point behaviour between
// rank groups, as Ahn & Vetter observed) are recovered and verified.
package main

import (
	"fmt"
	"log"

	"perfdmf/internal/core"
	"perfdmf/internal/mining"
	"perfdmf/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Archive with one sPPM-like trial (128 ranks, TIME + 7 PAPI metrics).
	s, err := core.Open("mem:datamining-example")
	if err != nil {
		return err
	}
	defer s.Close()
	app := &core.Application{Name: "sPPM"}
	if err := s.SaveApplication(app); err != nil {
		return err
	}
	s.SetApplication(app)
	exp := &core.Experiment{Name: "papi-counters"}
	if err := s.SaveExperiment(exp); err != nil {
		return err
	}
	s.SetExperiment(exp)
	profile, truth := synth.CounterTrial(synth.CounterConfig{Threads: 128, Seed: 7})
	trial, err := s.UploadTrial(profile, core.UploadOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("uploaded %s as trial %d\n", profile.Name, trial.ID)

	// PerfExplorer server over the archive (Figure 3's back end).
	srv := mining.NewServer(s)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Println("analysis server on", addr)

	// Client: request a cluster analysis.
	c, err := mining.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	resp, err := c.Do(mining.Request{
		Op: "cluster", TrialID: trial.ID, K: 3, Seed: 17, Normalize: "zscore",
	})
	if err != nil {
		return err
	}
	cr := resp.Cluster
	fmt.Printf("\nk-means: k=%d over %d threads × %d dimensions, rss %.4g\n",
		cr.K, cr.Threads, cr.Dimensions, cr.RSS)
	for _, sum := range cr.Summaries {
		fmt.Printf("cluster %d: %3d threads (nodes %s); dominant dimensions:\n",
			sum.Cluster, sum.Size, sum.ThreadRange)
		for _, d := range sum.TopDimensions[:3] {
			fmt.Printf("    %-40s %.4g\n", d.Label, d.Value)
		}
	}

	// Verify recovered clusters against the planted classes.
	agree := agreement(cr.Assignments, truth, cr.K)
	fmt.Printf("\nagreement with planted behaviour classes: %.1f%%\n", 100*agree)
	if agree < 0.9 {
		return fmt.Errorf("clustering failed to recover the planted structure")
	}

	// The result was persisted through the PerfDMF API; fetch it back.
	resp, err = c.Do(mining.Request{Op: "results", TrialID: trial.ID})
	if err != nil {
		return err
	}
	for _, r := range resp.Results {
		fmt.Printf("stored analysis result %d: %s via %s (%d bytes)\n",
			r.ID, r.Name, r.Method, len(r.Result))
	}
	return nil
}

// agreement scores cluster assignments against ground truth up to
// relabeling (best matching class per cluster).
func agreement(assign, truth []int, k int) float64 {
	match := 0
	for c := 0; c < k; c++ {
		counts := map[int]int{}
		for i, a := range assign {
			if a == c {
				counts[truth[i]]++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		match += best
	}
	return float64(match) / float64(len(assign))
}
