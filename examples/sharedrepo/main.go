// Sharedrepo demonstrates the paper's §5.1 shared-repository story: one
// group builds an archive and publishes it as a portable dump; another
// group restores it into their own database (a different back end) and
// analyzes it through a read-only connection — the access-authorization
// policy the paper sketches for "performance data security and sharing".
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"perfdmf/internal/core"
	"perfdmf/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	work, err := os.MkdirTemp("", "perfdmf-sharedrepo")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	// --- Group A: build and publish an archive. ---
	producer, err := core.Open("file:" + filepath.Join(work, "group-a"))
	if err != nil {
		return err
	}
	app := &core.Application{Name: "sweep3d", Fields: map[string]any{"version": "2.2b"}}
	if err := producer.SaveApplication(app); err != nil {
		return err
	}
	producer.SetApplication(app)
	exp := &core.Experiment{Name: "procurement-runs"}
	if err := producer.SaveExperiment(exp); err != nil {
		return err
	}
	producer.SetExperiment(exp)
	for _, p := range synth.ScalingSeries(synth.ScalingConfig{Procs: []int{4, 16}, Seed: 21}) {
		if _, err := producer.UploadTrial(p, core.UploadOptions{}); err != nil {
			return err
		}
	}
	dumpDir := filepath.Join(work, "published")
	manifest, err := core.ExportArchive(producer, dumpDir)
	if err != nil {
		return err
	}
	producer.Close()
	fmt.Printf("group A published %d application(s) to %s\n", len(manifest.Applications), dumpDir)

	// --- Group B: restore into their own (different) database. ---
	consumerDSN := "file:" + filepath.Join(work, "group-b")
	consumer, err := core.Open(consumerDSN)
	if err != nil {
		return err
	}
	n, err := core.ImportArchive(consumer, dumpDir)
	if err != nil {
		return err
	}
	consumer.Close()
	fmt.Printf("group B restored %d trial(s)\n", n)

	// --- An analyst at group B connects read-only. ---
	analyst, err := core.Open(consumerDSN + "?readonly=1")
	if err != nil {
		return err
	}
	defer analyst.Close()
	apps, err := analyst.ApplicationList()
	if err != nil {
		return err
	}
	analyst.SetApplication(apps[0])
	exps, err := analyst.ExperimentList()
	if err != nil {
		return err
	}
	analyst.SetExperiment(exps[0])
	trials, err := analyst.TrialList()
	if err != nil {
		return err
	}
	fmt.Printf("analyst sees %s / %s with %d trials\n", apps[0].Name, exps[0].Name, len(trials))
	analyst.SetTrial(trials[0])
	rows, err := analyst.MeanSummary("TIME")
	if err != nil {
		return err
	}
	fmt.Printf("top event in trial %d: %s (%.4g exclusive)\n",
		trials[0].ID, rows[0].EventName, rows[0].Exclusive)

	// Writes are rejected by policy.
	if _, err := analyst.Conn().Exec("DELETE FROM trial WHERE id = 1"); err != nil {
		fmt.Println("write correctly denied:", err)
	} else {
		return fmt.Errorf("read-only connection accepted a write")
	}
	return nil
}
