module perfdmf

go 1.22
