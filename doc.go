// Package perfdmf is a Go implementation of PerfDMF, the Parallel
// Performance Data Management Framework (Huck, Malony, Bell, Morris —
// ICPP 2005).
//
// PerfDMF provides a common foundation for parsing, storing, querying and
// analyzing parallel performance profiles from multiple experiments,
// application versions, profiling tools and platforms. This module contains:
//
//   - internal/reldb, internal/sqlparse, internal/sqlexec, internal/godbc:
//     an embedded relational database engine with a SQL subset and a
//     JDBC-like connectivity layer (the paper's DBMS substrate);
//   - internal/model: the common parallel profile representation
//     (node/context/thread, interval and atomic events, metrics);
//   - internal/formats/...: readers and writers for the six profile formats
//     the paper supports (TAU, gprof, mpiP, dynaprof, HPMToolkit, PerfSuite)
//     plus the sPPM custom format and the common XML representation;
//   - internal/core: the PerfDMF schema and DataSession query/management API;
//   - internal/analysis: the profile analysis toolkit (speedup, comparison,
//     derived metrics);
//   - internal/mining: the PerfExplorer data-mining engine and server;
//   - internal/synth: synthetic workload generators standing in for the
//     paper's LLNL datasets.
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// reproduction of every evaluation claim.
package perfdmf
