package perfdmf

// Benchmarks for the parallel query executor (ROADMAP: parallel execution
// layer). One Miranda-scale trial (≥1M data points) is uploaded once and
// shared; each benchmark then sweeps the ?workers=N budget so the scan and
// GROUP BY paths can be compared serial vs parallel with benchstat. On a
// single-core runner the parallel rows are correctness exercise only —
// check the reported gomaxprocs metric before reading them as speedups.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"perfdmf/internal/core"
	"perfdmf/internal/godbc"
	"perfdmf/internal/synth"
)

const parallelBenchDSN = "mem:bench_parallel_shared"

var parallelBenchOnce sync.Once

// parallelBenchSetup uploads the shared trial on first use (10240 threads ×
// 101 events ≈ 1.03M interval_location_profile rows).
func parallelBenchSetup(b *testing.B) {
	b.Helper()
	var err error
	parallelBenchOnce.Do(func() {
		var s *core.DataSession
		s, err = core.Open(parallelBenchDSN)
		if err != nil {
			return
		}
		defer s.Close()
		app := &core.Application{Name: "bench-parallel"}
		if err = s.SaveApplication(app); err != nil {
			return
		}
		s.SetApplication(app)
		exp := &core.Experiment{Name: "bench-parallel"}
		if err = s.SaveExperiment(exp); err != nil {
			return
		}
		s.SetExperiment(exp)
		p := synth.LargeTrial(synth.LargeTrialConfig{Threads: 10240, Events: 101, Metrics: 1, Seed: 1})
		_, err = s.UploadTrial(p, core.UploadOptions{})
	})
	if err != nil {
		b.Fatal(err)
	}
}

func benchWorkersConn(b *testing.B, workers int) godbc.Conn {
	b.Helper()
	c, err := godbc.Open(fmt.Sprintf("%s?workers=%d", parallelBenchDSN, workers))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

func drainQuery(b *testing.B, c godbc.Conn, q string, args ...any) {
	b.Helper()
	rows, err := c.Query(q, args...)
	if err != nil {
		b.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		b.Fatal(err)
	}
	rows.Close()
}

// BenchmarkParallelScan measures a filtered full scan (WHERE folded into
// the partition workers) over the shared 1M-row trial.
func BenchmarkParallelScan(b *testing.B) {
	parallelBenchSetup(b)
	const q = `SELECT COUNT(*) FROM interval_location_profile WHERE exclusive > ? AND call > 0`
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			c := benchWorkersConn(b, w)
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drainQuery(b, c, q, 100.0)
			}
		})
	}
}

// BenchmarkParallelGroupBy measures the chunked partial aggregation over
// all 101 event groups of the shared trial.
func BenchmarkParallelGroupBy(b *testing.B) {
	parallelBenchSetup(b)
	const q = `SELECT interval_event, COUNT(*), SUM(exclusive), AVG(inclusive),
			MIN(exclusive), MAX(exclusive)
		FROM interval_location_profile GROUP BY interval_event`
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			c := benchWorkersConn(b, w)
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drainQuery(b, c, q)
			}
		})
	}
}

// BenchmarkPlanCache pits the statement/plan cache's hit path (one text,
// repeated) against guaranteed misses (a distinct text every iteration).
func BenchmarkPlanCache(b *testing.B) {
	parallelBenchSetup(b)
	b.Run("hit", func(b *testing.B) {
		c := benchWorkersConn(b, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			drainQuery(b, c, "SELECT id, name FROM metric WHERE id = ?", 1)
		}
	})
	b.Run("miss", func(b *testing.B) {
		c := benchWorkersConn(b, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Unique LIMIT keeps every text distinct (guaranteed reparse)
			// while the result stays identical to the hit benchmark's.
			drainQuery(b, c, fmt.Sprintf("SELECT id, name FROM metric WHERE id = ? LIMIT %d", i+1), 1)
		}
	})
}
