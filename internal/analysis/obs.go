// Analysis-layer observability: every algebra and study operation is
// timed into a per-op histogram and, while tracing is active, recorded as
// an "analysis" span so it appears in span trees alongside the statements
// it issues. Pure in-memory operations (Add, Mean) produce leaf spans;
// DB-backed studies (Speedup, CompareTrials) bind the session connection
// so their queries hang off the analysis span.
package analysis

import (
	"context"
	"time"

	"perfdmf/internal/core"
	"perfdmf/internal/obs"
)

var (
	mOpsTotal     = obs.Default.Counter("analysis_ops_total")
	mOpErrors     = obs.Default.Counter("analysis_op_errors_total")
	mAddNS        = obs.Default.Histogram("analysis_add_ns")
	mSubtractNS   = obs.Default.Histogram("analysis_subtract_ns")
	mMeanNS       = obs.Default.Histogram("analysis_mean_ns")
	mSpeedupNS    = obs.Default.Histogram("analysis_speedup_ns")
	mCompareNS    = obs.Default.Histogram("analysis_compare_ns")
	mRegressionNS = obs.Default.Histogram("analysis_regressions_ns")
)

// op times one analysis operation and routes its span. A nil session
// means a pure in-memory op with no statements to re-parent.
func op(ctx context.Context, s *core.DataSession, name string, h *obs.Histogram, fn func(context.Context) error) error {
	octx, sp := obs.StartSpan(ctx, "analysis", name)
	if sp == nil {
		err := fn(ctx)
		countOp(err)
		return err
	}
	if s != nil {
		s.BindSpanContext(octx)
		defer s.BindSpanContext(ctx)
	}
	start := time.Now()
	err := fn(octx)
	h.Observe(int64(time.Since(start)))
	countOp(err)
	sp.Finish(err)
	return err
}

func countOp(err error) {
	if err != nil {
		mOpErrors.Inc()
	} else {
		mOpsTotal.Inc()
	}
}
