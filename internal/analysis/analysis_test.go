package analysis

import (
	"fmt"
	"testing"

	"perfdmf/internal/core"
	"perfdmf/internal/synth"
)

var sessCounter int

// scalingArchive uploads an EVH1-like scaling series and returns the
// session and its trials.
func scalingArchive(t *testing.T, procs []int) (*core.DataSession, []*core.Trial) {
	t.Helper()
	sessCounter++
	s, err := core.Open(fmt.Sprintf("mem:analysis_%s_%d", t.Name(), sessCounter))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	app := &core.Application{Name: "EVH1"}
	if err := s.SaveApplication(app); err != nil {
		t.Fatal(err)
	}
	s.SetApplication(app)
	exp := &core.Experiment{Name: "strong-scaling"}
	if err := s.SaveExperiment(exp); err != nil {
		t.Fatal(err)
	}
	s.SetExperiment(exp)
	var trials []*core.Trial
	for _, p := range synth.ScalingSeries(synth.ScalingConfig{Procs: procs, Seed: 7}) {
		trial, err := s.UploadTrial(p, core.UploadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		trials = append(trials, trial)
	}
	return s, trials
}

func TestTrialRoutineStats(t *testing.T) {
	s, trials := scalingArchive(t, []int{4})
	stats, err := TrialRoutineStats(s, trials[0].ID, "TIME")
	if err != nil {
		t.Fatal(err)
	}
	sw, ok := stats["SWEEPX"]
	if !ok {
		t.Fatalf("routines: %v", stats)
	}
	if !(sw.Min <= sw.Mean && sw.Mean <= sw.Max) {
		t.Fatalf("ordering violated: %+v", sw)
	}
	if sw.Mean <= 0 || sw.StdDev < 0 {
		t.Fatalf("stats: %+v", sw)
	}
	if _, err := TrialRoutineStats(s, trials[0].ID, "NOPE"); err != nil {
		t.Fatal(err) // unknown metric is empty, not an error
	}
}

func TestSpeedupStudy(t *testing.T) {
	s, trials := scalingArchive(t, []int{1, 2, 4, 8, 16, 32})
	study, err := Speedup(s, trials, "TIME")
	if err != nil {
		t.Fatal(err)
	}
	if study.BaseProcs != 1 || len(study.Procs) != 6 {
		t.Fatalf("procs: %+v", study.Procs)
	}
	// Application speedup must be monotonically increasing but sub-linear
	// at scale (the communication terms grow with log p).
	for i := 1; i < len(study.AppSpeed); i++ {
		if study.AppSpeed[i] <= study.AppSpeed[i-1]*0.9 {
			t.Errorf("app speedup collapsed at %d procs: %v", study.Procs[i], study.AppSpeed)
		}
	}
	last := len(study.AppSpeed) - 1
	if study.AppSpeed[last] >= float64(study.Procs[last]) {
		t.Errorf("superlinear overall speedup is implausible: %v", study.AppSpeed)
	}
	if study.AppEff[last] >= study.AppEff[0] {
		t.Errorf("efficiency should fall with scale: %v", study.AppEff)
	}

	// Per-routine: SWEEPX (parallel-heavy) speeds up well; the Alltoall
	// (comm-bound) must show speedup below 1 at scale.
	var sweep, alltoall *RoutineSpeedup
	for i := range study.Routines {
		switch study.Routines[i].Name {
		case "SWEEPX":
			sweep = &study.Routines[i]
		case "MPI_Alltoall()":
			alltoall = &study.Routines[i]
		}
	}
	if sweep == nil || alltoall == nil {
		t.Fatalf("routines missing: %v", len(study.Routines))
	}
	if sp := sweep.Points[len(sweep.Points)-1].Mean; sp < 16 {
		t.Errorf("SWEEPX speedup at 32p = %g, want near-linear", sp)
	}
	if sp := alltoall.Points[len(alltoall.Points)-1].Mean; sp >= 1 {
		t.Errorf("Alltoall speedup at 32p = %g, want < 1 (it grows)", sp)
	}
	// min ≤ mean ≤ max on every point.
	for _, r := range study.Routines {
		for _, pt := range r.Points {
			if !(pt.Min <= pt.Mean+1e-9 && pt.Mean <= pt.Max+1e-9) {
				t.Fatalf("%s: bounds out of order: %+v", r.Name, pt)
			}
		}
	}
	// Baseline point is exactly 1 for every routine mean.
	for _, r := range study.Routines {
		if p0 := r.Points[0]; p0.Mean < 0.999 || p0.Mean > 1.001 {
			t.Errorf("%s baseline speedup = %g", r.Name, p0.Mean)
		}
	}
}

func TestSpeedupErrors(t *testing.T) {
	s, trials := scalingArchive(t, []int{1, 2})
	if _, err := Speedup(s, trials[:1], "TIME"); err == nil {
		t.Error("single trial accepted")
	}
	if _, err := Speedup(s, trials, "NO_METRIC"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestCompareTrials(t *testing.T) {
	s, trials := scalingArchive(t, []int{1, 8})
	cmp, err := CompareTrials(s, trials[0], trials[1], "TIME")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TrialA != trials[0].ID || cmp.TrialB != trials[1].ID {
		t.Fatalf("ids: %+v", cmp)
	}
	if len(cmp.Events) == 0 {
		t.Fatal("no event deltas")
	}
	// Sorted by |delta| descending.
	for i := 1; i < len(cmp.Events); i++ {
		if abs(cmp.Events[i].Delta) > abs(cmp.Events[i-1].Delta)+1e-9 {
			t.Fatalf("not sorted: %v then %v", cmp.Events[i-1], cmp.Events[i])
		}
	}
	// The parallel routines must shrink (ratio < 1) from 1 to 8 procs.
	for _, d := range cmp.Events {
		if d.Name == "SWEEPX" {
			if d.Ratio >= 1 {
				t.Errorf("SWEEPX ratio = %g, want < 1", d.Ratio)
			}
			if d.Delta >= 0 {
				t.Errorf("SWEEPX delta = %g, want < 0", d.Delta)
			}
		}
	}
}

func TestTopEventsAndGroupBreakdown(t *testing.T) {
	s, trials := scalingArchive(t, []int{4})
	top, err := TopEvents(s, trials[0], "TIME", 3)
	if err != nil || len(top) != 3 {
		t.Fatalf("top: %v %v", top, err)
	}
	if top[0].Exclusive < top[1].Exclusive {
		t.Fatal("top events not sorted")
	}
	groups, err := GroupBreakdown(s, trials[0], "TIME")
	if err != nil {
		t.Fatal(err)
	}
	if groups["HYDRO"] <= 0 || groups["MPI"] <= 0 {
		t.Fatalf("groups: %v", groups)
	}
	// Selection restored after TopEvents.
	if s.Trial() != nil {
		t.Error("TopEvents leaked trial selection")
	}
}
