// Package analysis is PerfDMF's profile analysis toolkit (paper §4, §5.2):
// reusable multi-trial routines built on the DataSession API and on SQL
// aggregates — per-routine speedup with min/mean/max bounds, parallel
// efficiency, and trial comparison. The paper's trial browser & speedup
// analyzer (applied to the EVH1 benchmark) is cmd/speedup, a thin shell
// over this package.
package analysis

import (
	"context"
	"fmt"
	"sort"

	"perfdmf/internal/core"
)

// RoutineStats is one routine's per-thread exclusive-time statistics in a
// single trial, fetched with SQL MIN/AVG/MAX/STDDEV aggregates (paper §5.2:
// "requesting standard SQL aggregate operations such as minimum, maximum,
// mean, standard deviation").
type RoutineStats struct {
	Name   string
	Min    float64
	Mean   float64
	Max    float64
	StdDev float64
}

// TrialRoutineStats computes per-routine statistics for one trial and
// metric, entirely inside the database.
func TrialRoutineStats(s *core.DataSession, trialID int64, metric string) (map[string]RoutineStats, error) {
	rows, err := s.Conn().Query(`
		SELECT e.name, MIN(p.exclusive), AVG(p.exclusive), MAX(p.exclusive), STDDEV(p.exclusive)
		FROM interval_event e
		JOIN interval_location_profile p ON p.interval_event = e.id
		JOIN metric m ON p.metric = m.id
		WHERE e.trial = ? AND m.name = ?
		GROUP BY e.name`, trialID, metric)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	out := make(map[string]RoutineStats)
	for rows.Next() {
		var r RoutineStats
		if err := rows.Scan(&r.Name, &r.Min, &r.Mean, &r.Max, &r.StdDev); err != nil {
			return nil, err
		}
		out[r.Name] = r
	}
	return out, rows.Err()
}

// SpeedupPoint is one routine's speedup at one processor count. Mean is
// the speedup of the mean thread time; Min and Max bound it using the
// slowest and fastest thread respectively (Min = base mean / worst thread,
// Max = base mean / best thread).
type SpeedupPoint struct {
	Procs           int
	Min, Mean, Max  float64
	MeanTime        float64 // mean per-thread exclusive at this point
	PerfectEff      float64 // Mean / (Procs / baseProcs): parallel efficiency
	ThreadImbalance float64 // Max thread time / mean thread time
}

// RoutineSpeedup is one routine's speedup series across the study.
type RoutineSpeedup struct {
	Name   string
	Points []SpeedupPoint
}

// SpeedupStudy is the §5.2 analyzer's result: per-routine speedup series
// plus whole-application speedup/efficiency.
type SpeedupStudy struct {
	Metric    string
	Procs     []int // processor counts, ascending; [0] is the baseline
	TrialIDs  []int64
	Routines  []RoutineSpeedup
	AppTime   []float64 // application wall time per point (max inclusive)
	AppSpeed  []float64 // application speedup vs baseline
	AppEff    []float64 // application parallel efficiency
	BaseProcs int
}

// trialProcs determines a trial's processor count: node_count ×
// contexts_per_node × max_threads_per_context, falling back to node_count.
func trialProcs(t *core.Trial) int {
	n := int(t.NodeCount())
	if n == 0 {
		return 0
	}
	c := int(t.ContextsPerNode())
	if c == 0 {
		c = 1
	}
	th := int(t.MaxThreadsPerContext())
	if th == 0 {
		th = 1
	}
	return n * c * th
}

// appWallTime returns the trial's application wall time: the maximum
// inclusive value of any (event, thread) pair.
func appWallTime(s *core.DataSession, trialID int64, metric string) (float64, error) {
	rows, err := s.Conn().Query(`
		SELECT MAX(p.inclusive)
		FROM interval_event e
		JOIN interval_location_profile p ON p.interval_event = e.id
		JOIN metric m ON p.metric = m.id
		WHERE e.trial = ? AND m.name = ?`, trialID, metric)
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	if !rows.Next() {
		return 0, fmt.Errorf("analysis: trial %d has no %s data", trialID, metric)
	}
	var v any
	if err := rows.Scan(&v); err != nil {
		return 0, err
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("analysis: trial %d has no %s data", trialID, metric)
	}
	return f, nil
}

// Speedup runs the §5.2 study over a set of trials of the same application
// at different processor counts. Trials are ordered by processor count;
// the smallest is the baseline. Routines missing from any trial are
// dropped from the per-routine table (they still count toward app time).
func Speedup(s *core.DataSession, trials []*core.Trial, metric string) (study *SpeedupStudy, err error) {
	err = op(context.Background(), s, "analysis:speedup", mSpeedupNS, func(context.Context) error {
		study, err = speedup(s, trials, metric)
		return err
	})
	return study, err
}

func speedup(s *core.DataSession, trials []*core.Trial, metric string) (*SpeedupStudy, error) {
	if len(trials) < 2 {
		return nil, fmt.Errorf("analysis: a speedup study needs at least 2 trials, got %d", len(trials))
	}
	ordered := append([]*core.Trial(nil), trials...)
	sort.Slice(ordered, func(i, j int) bool { return trialProcs(ordered[i]) < trialProcs(ordered[j]) })
	if trialProcs(ordered[0]) == 0 {
		return nil, fmt.Errorf("analysis: trial %q has no processor count", ordered[0].Name)
	}

	study := &SpeedupStudy{Metric: metric, BaseProcs: trialProcs(ordered[0])}
	perTrial := make([]map[string]RoutineStats, len(ordered))
	for i, t := range ordered {
		stats, err := TrialRoutineStats(s, t.ID, metric)
		if err != nil {
			return nil, err
		}
		if len(stats) == 0 {
			return nil, fmt.Errorf("analysis: trial %q has no %s profile data", t.Name, metric)
		}
		perTrial[i] = stats
		study.Procs = append(study.Procs, trialProcs(t))
		study.TrialIDs = append(study.TrialIDs, t.ID)
		wall, err := appWallTime(s, t.ID, metric)
		if err != nil {
			return nil, err
		}
		study.AppTime = append(study.AppTime, wall)
	}

	// Application speedup and efficiency.
	base := study.AppTime[0]
	for i := range ordered {
		sp := 0.0
		if study.AppTime[i] > 0 {
			sp = base / study.AppTime[i]
		}
		study.AppSpeed = append(study.AppSpeed, sp)
		scale := float64(study.Procs[i]) / float64(study.BaseProcs)
		study.AppEff = append(study.AppEff, sp/scale)
	}

	// Routines present in every trial, in baseline mean-time order.
	var names []string
	for name := range perTrial[0] {
		inAll := true
		for _, stats := range perTrial[1:] {
			if _, ok := stats[name]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := perTrial[0][names[i]], perTrial[0][names[j]]
		if a.Mean != b.Mean {
			return a.Mean > b.Mean
		}
		return names[i] < names[j]
	})

	for _, name := range names {
		baseStats := perTrial[0][name]
		if baseStats.Mean == 0 {
			continue
		}
		rs := RoutineSpeedup{Name: name}
		for i := range ordered {
			st := perTrial[i][name]
			pt := SpeedupPoint{Procs: study.Procs[i], MeanTime: st.Mean}
			if st.Mean > 0 {
				pt.Mean = baseStats.Mean / st.Mean
				pt.ThreadImbalance = st.Max / st.Mean
			}
			if st.Max > 0 {
				pt.Min = baseStats.Mean / st.Max
			}
			if st.Min > 0 {
				pt.Max = baseStats.Mean / st.Min
			}
			scale := float64(study.Procs[i]) / float64(study.BaseProcs)
			pt.PerfectEff = pt.Mean / scale
			rs.Points = append(rs.Points, pt)
		}
		study.Routines = append(study.Routines, rs)
	}
	return study, nil
}
