package analysis

import (
	"context"
	"fmt"

	"perfdmf/internal/core"
	"perfdmf/internal/model"
)

// This file implements the profile algebra the paper names as planned
// CUBE integration (§7: "integrate the CUBE algebra with PerfDMF to
// implement high-level comparative queries and analysis operations",
// after Song et al., ICPP'04). The algebra operates on whole parallel
// profiles: add, subtract and mean over congruent experiments, producing
// a new profile that can itself be stored, exported or analyzed.

// binaryOp combines two measurements.
type binaryOp func(a, b float64) float64

// combine applies op cell-wise over two profiles. Events, metrics and
// threads are matched by name/ID; a cell missing on either side
// contributes zero (CUBE's semantics for structurally merged
// experiments). Call and subroutine counts combine with op as well, so
// Add sums them and Subtract yields the count difference.
func combine(name string, a, b *model.Profile, op binaryOp) (*model.Profile, error) {
	out := model.New(name)
	for _, m := range a.Metrics() {
		out.AddMetric(m.Name)
	}
	for _, m := range b.Metrics() {
		out.AddMetric(m.Name)
	}
	for _, e := range a.IntervalEvents() {
		out.AddIntervalEvent(e.Name, e.Group)
	}
	for _, e := range b.IntervalEvents() {
		out.AddIntervalEvent(e.Name, e.Group)
	}
	nm := len(out.Metrics())

	// Seed with a's raw values (op not yet applied).
	aEvents := a.IntervalEvents()
	for _, th := range a.Threads() {
		oth := out.Thread(th.ID.Node, th.ID.Context, th.ID.Thread)
		th.EachInterval(func(eid int, d *model.IntervalData) {
			oe := out.FindIntervalEvent(aEvents[eid].Name)
			od := oth.IntervalData(oe.ID, nm)
			od.NumCalls = d.NumCalls
			od.NumSubrs = d.NumSubrs
			for _, m := range a.Metrics() {
				od.PerMetric[out.MetricID(m.Name)] = d.PerMetric[m.ID]
			}
		})
	}

	// Fold b in with op. Cells b touches are finalized here; a-only cells
	// are finalized with op(x, 0) afterwards.
	finalized := make(map[*model.IntervalData]bool)
	bEvents := b.IntervalEvents()
	for _, th := range b.Threads() {
		oth := out.Thread(th.ID.Node, th.ID.Context, th.ID.Thread)
		th.EachInterval(func(eid int, d *model.IntervalData) {
			oe := out.FindIntervalEvent(bEvents[eid].Name)
			od := oth.IntervalData(oe.ID, nm)
			finalized[od] = true
			od.NumCalls = op(od.NumCalls, d.NumCalls)
			od.NumSubrs = op(od.NumSubrs, d.NumSubrs)
			for _, m := range b.Metrics() {
				om := out.MetricID(m.Name)
				cur := od.PerMetric[om]
				od.PerMetric[om] = model.MetricData{
					Inclusive: op(cur.Inclusive, d.PerMetric[m.ID].Inclusive),
					Exclusive: op(cur.Exclusive, d.PerMetric[m.ID].Exclusive),
				}
			}
		})
	}
	for _, th := range out.Threads() {
		th.EachInterval(func(_ int, od *model.IntervalData) {
			if finalized[od] {
				return
			}
			od.NumCalls = op(od.NumCalls, 0)
			od.NumSubrs = op(od.NumSubrs, 0)
			for m := range od.PerMetric {
				od.PerMetric[m] = model.MetricData{
					Inclusive: op(od.PerMetric[m].Inclusive, 0),
					Exclusive: op(od.PerMetric[m].Exclusive, 0),
				}
			}
		})
	}
	return out, nil
}

// Add merges two profiles cell-wise (CUBE's "merge"): the union of
// events, metrics and threads, with overlapping measurements summed.
func Add(a, b *model.Profile) (out *model.Profile, err error) {
	err = op(context.Background(), nil, "analysis:add", mAddNS, func(context.Context) error {
		out, err = combine(a.Name+"+"+b.Name, a, b, func(x, y float64) float64 { return x + y })
		return err
	})
	return out, err
}

// Subtract computes a - b cell-wise (CUBE's "diff"): positive values mean
// a was slower. Negative results are legitimate and preserved.
func Subtract(a, b *model.Profile) (out *model.Profile, err error) {
	err = op(context.Background(), nil, "analysis:subtract", mSubtractNS, func(context.Context) error {
		out, err = combine(a.Name+"-"+b.Name, a, b, func(x, y float64) float64 { return x - y })
		return err
	})
	return out, err
}

// Mean averages any number of congruent profiles cell-wise (CUBE's
// "mean"), e.g. over repeated trials of the same configuration.
func Mean(profiles ...*model.Profile) (out *model.Profile, err error) {
	err = op(context.Background(), nil, "analysis:mean", mMeanNS, func(context.Context) error {
		out, err = mean(profiles...)
		return err
	})
	return out, err
}

func mean(profiles ...*model.Profile) (*model.Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("analysis: Mean needs at least one profile")
	}
	acc := profiles[0]
	var err error
	for _, p := range profiles[1:] {
		acc, err = combine(acc.Name+"+"+p.Name, acc, p, func(x, y float64) float64 { return x + y })
		if err != nil {
			return nil, err
		}
	}
	n := float64(len(profiles))
	out := model.New(fmt.Sprintf("mean(%d trials)", len(profiles)))
	for _, m := range acc.Metrics() {
		out.AddMetric(m.Name)
	}
	for _, e := range acc.IntervalEvents() {
		out.AddIntervalEvent(e.Name, e.Group)
	}
	nm := len(out.Metrics())
	events := acc.IntervalEvents()
	for _, th := range acc.Threads() {
		oth := out.Thread(th.ID.Node, th.ID.Context, th.ID.Thread)
		th.EachInterval(func(eid int, d *model.IntervalData) {
			oe := out.FindIntervalEvent(events[eid].Name)
			od := oth.IntervalData(oe.ID, nm)
			od.NumCalls = d.NumCalls / n
			od.NumSubrs = d.NumSubrs / n
			for m := range d.PerMetric {
				od.PerMetric[m] = model.MetricData{
					Inclusive: d.PerMetric[m].Inclusive / n,
					Exclusive: d.PerMetric[m].Exclusive / n,
				}
			}
		})
	}
	return out, nil
}

// Regression is one event whose cost grew from one trial to the next —
// the automated performance regression analysis the paper's §6 motivates
// (Karavanic & Miller's multi-execution comparison).
type Regression struct {
	FromTrial int64
	ToTrial   int64
	Event     string
	Before    float64 // mean exclusive in the earlier trial
	After     float64 // mean exclusive in the later trial
	Growth    float64 // After/Before - 1
}

// DetectRegressions walks trials in the given order (e.g. by date or
// version) and reports events whose mean exclusive value grew by more
// than threshold (0.1 = 10%) between consecutive trials, ignoring events
// below minShare of the earlier trial's total (noise floor).
func DetectRegressions(s *core.DataSession, trials []*core.Trial, metric string, threshold, minShare float64) (out []Regression, err error) {
	err = op(context.Background(), s, "analysis:regressions", mRegressionNS, func(context.Context) error {
		out, err = detectRegressions(s, trials, metric, threshold, minShare)
		return err
	})
	return out, err
}

func detectRegressions(s *core.DataSession, trials []*core.Trial, metric string, threshold, minShare float64) ([]Regression, error) {
	if threshold <= 0 {
		threshold = 0.1
	}
	var out []Regression
	for i := 1; i < len(trials); i++ {
		prev, cur := trials[i-1], trials[i]
		cmp, err := CompareTrials(s, prev, cur, metric)
		if err != nil {
			return nil, err
		}
		total := 0.0
		for _, d := range cmp.Events {
			total += d.MeanA
		}
		for _, d := range cmp.Events {
			if d.MeanA <= 0 || (minShare > 0 && d.MeanA < minShare*total) {
				continue
			}
			growth := d.MeanB/d.MeanA - 1
			if growth > threshold {
				out = append(out, Regression{
					FromTrial: cmp.TrialA, ToTrial: cmp.TrialB,
					Event: d.Name, Before: d.MeanA, After: d.MeanB, Growth: growth,
				})
			}
		}
	}
	return out, nil
}
