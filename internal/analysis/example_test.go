package analysis_test

import (
	"fmt"
	"log"

	"perfdmf/internal/analysis"
	"perfdmf/internal/model"
)

// ExampleSubtract shows the CUBE-style profile algebra: the difference of
// two congruent profiles isolates what changed between runs.
func ExampleSubtract() {
	mk := func(name string, value float64) *model.Profile {
		p := model.New(name)
		m := p.AddMetric("TIME")
		e := p.AddIntervalEvent("solver()", "APP")
		d := p.Thread(0, 0, 0).IntervalData(e.ID, 1)
		d.NumCalls = 10
		d.PerMetric[m] = model.MetricData{Inclusive: value, Exclusive: value}
		return p
	}
	before := mk("v1", 120)
	after := mk("v2", 150)

	diff, err := analysis.Subtract(after, before)
	if err != nil {
		log.Fatal(err)
	}
	e := diff.FindIntervalEvent("solver()")
	d := diff.FindThread(0, 0, 0).FindIntervalData(e.ID)
	fmt.Printf("%s: solver() grew by %.0f\n", diff.Name, d.PerMetric[0].Exclusive)
	// Output:
	// v2-v1: solver() grew by 30
}
