package analysis

import (
	"math"
	"testing"

	"perfdmf/internal/core"
	"perfdmf/internal/model"
	"perfdmf/internal/synth"
)

// smallProfile builds a 2-thread, 1-metric profile with the given values
// for events "f" and "g".
func smallProfile(name string, f, g float64) *model.Profile {
	p := model.New(name)
	m := p.AddMetric("TIME")
	ef := p.AddIntervalEvent("f", "APP")
	eg := p.AddIntervalEvent("g", "APP")
	for n := 0; n < 2; n++ {
		th := p.Thread(n, 0, 0)
		d := th.IntervalData(ef.ID, 1)
		d.NumCalls = 10
		d.PerMetric[m] = model.MetricData{Inclusive: f, Exclusive: f}
		d2 := th.IntervalData(eg.ID, 1)
		d2.NumCalls = 5
		d2.PerMetric[m] = model.MetricData{Inclusive: g, Exclusive: g}
	}
	return p
}

func cell(t *testing.T, p *model.Profile, node int, event string) model.MetricData {
	t.Helper()
	e := p.FindIntervalEvent(event)
	if e == nil {
		t.Fatalf("no event %q", event)
	}
	d := p.FindThread(node, 0, 0).FindIntervalData(e.ID)
	if d == nil {
		t.Fatalf("no data for %q on node %d", event, node)
	}
	return d.PerMetric[p.MetricID("TIME")]
}

func TestAlgebraAdd(t *testing.T) {
	a := smallProfile("a", 10, 20)
	b := smallProfile("b", 1, 2)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, sum, 0, "f").Exclusive; got != 11 {
		t.Fatalf("f sum = %g", got)
	}
	if got := cell(t, sum, 1, "g").Exclusive; got != 22 {
		t.Fatalf("g sum = %g", got)
	}
	if sum.Name != "a+b" {
		t.Fatalf("name: %q", sum.Name)
	}
}

func TestAlgebraSubtract(t *testing.T) {
	a := smallProfile("a", 10, 20)
	b := smallProfile("b", 4, 25)
	diff, err := Subtract(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, diff, 0, "f").Exclusive; got != 6 {
		t.Fatalf("f diff = %g", got)
	}
	// Negative result preserved (b slower).
	if got := cell(t, diff, 0, "g").Exclusive; got != -5 {
		t.Fatalf("g diff = %g", got)
	}
}

func TestAlgebraUnionSemantics(t *testing.T) {
	a := smallProfile("a", 10, 20)
	// b has an extra event and an extra thread.
	b := smallProfile("b", 1, 2)
	extra := b.AddIntervalEvent("h", "APP")
	d := b.Thread(2, 0, 0).IntervalData(extra.ID, 1)
	d.NumCalls = 1
	d.PerMetric[0] = model.MetricData{Inclusive: 7, Exclusive: 7}

	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// a-only cell on thread 2? thread 2 only exists in b: h = 7 + nothing.
	if got := cell(t, sum, 2, "h").Exclusive; got != 7 {
		t.Fatalf("h on extra thread = %g", got)
	}
	// Subtract: a - b where the cell exists only in b → 0 - 7.
	diff, err := Subtract(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, diff, 2, "h").Exclusive; got != -7 {
		t.Fatalf("h in diff = %g", got)
	}
	// a-only cells get op(x, 0): unchanged under subtract.
	if got := cell(t, diff, 0, "f").Exclusive; got != 9 {
		t.Fatalf("f in diff = %g", got)
	}
}

func TestAlgebraMean(t *testing.T) {
	a := smallProfile("a", 10, 20)
	b := smallProfile("b", 20, 40)
	c := smallProfile("c", 30, 60)
	mean, err := Mean(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, mean, 0, "f").Exclusive; math.Abs(got-20) > 1e-9 {
		t.Fatalf("f mean = %g", got)
	}
	if got := cell(t, mean, 1, "g").Exclusive; math.Abs(got-40) > 1e-9 {
		t.Fatalf("g mean = %g", got)
	}
	// Calls averaged too.
	e := mean.FindIntervalEvent("f")
	if calls := mean.FindThread(0, 0, 0).FindIntervalData(e.ID).NumCalls; math.Abs(calls-10) > 1e-9 {
		t.Fatalf("calls mean = %g", calls)
	}
	if _, err := Mean(); err == nil {
		t.Fatal("Mean() with no profiles accepted")
	}
	single, err := Mean(a)
	if err != nil || cell(t, single, 0, "f").Exclusive != 10 {
		t.Fatalf("Mean(a): %v", err)
	}
}

// Property-style check: Subtract(Add(a,b), b) == a on congruent profiles.
func TestAlgebraAddSubtractInverse(t *testing.T) {
	a := smallProfile("a", 12.5, 7.25)
	b := smallProfile("b", 3.25, 1.5)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Subtract(sum, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []int{0, 1} {
		for _, ev := range []string{"f", "g"} {
			w := cell(t, a, node, ev)
			g := cell(t, back, node, ev)
			if math.Abs(w.Exclusive-g.Exclusive) > 1e-9 {
				t.Fatalf("%s node %d: %g vs %g", ev, node, g.Exclusive, w.Exclusive)
			}
		}
	}
}

func TestDetectRegressions(t *testing.T) {
	sessCounter++
	s, err := core.Open("mem:regress_test")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	app := &core.Application{Name: "app"}
	s.SaveApplication(app)
	s.SetApplication(app)
	exp := &core.Experiment{Name: "versions"}
	s.SaveExperiment(exp)
	s.SetExperiment(exp)

	// Three "versions": v2 regresses SWEEPX by 50%; v3 is flat.
	routines := synth.DefaultEVH1Routines()
	upload := func(name string, scale map[string]float64) *core.Trial {
		rs := make([]synth.ScalingRoutine, len(routines))
		copy(rs, routines)
		for i := range rs {
			if f, ok := scale[rs[i].Name]; ok {
				rs[i].Parallel *= f
				rs[i].Serial *= f
			}
		}
		p := synth.ScalingSeries(synth.ScalingConfig{Procs: []int{8}, Seed: 3, Routines: rs})[0]
		p.Name = name
		trial, err := s.UploadTrial(p, core.UploadOptions{TrialName: name})
		if err != nil {
			t.Fatal(err)
		}
		return trial
	}
	t1 := upload("v1", nil)
	t2 := upload("v2", map[string]float64{"SWEEPX": 1.5})
	t3 := upload("v3", map[string]float64{"SWEEPX": 1.5})

	regs, err := DetectRegressions(s, []*core.Trial{t1, t2, t3}, "TIME", 0.2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions: %+v", regs)
	}
	r := regs[0]
	if r.Event != "SWEEPX" || r.FromTrial != t1.ID || r.ToTrial != t2.ID {
		t.Fatalf("regression: %+v", r)
	}
	if r.Growth < 0.4 || r.Growth > 0.6 {
		t.Fatalf("growth = %g, want ≈ 0.5", r.Growth)
	}
}
