package analysis

import (
	"context"
	"fmt"
	"sort"

	"perfdmf/internal/core"
)

// EventDelta is one event's change between two trials, computed from the
// mean summary tables.
type EventDelta struct {
	Name      string
	Group     string
	MeanA     float64 // mean exclusive in trial A
	MeanB     float64 // mean exclusive in trial B
	Delta     float64 // MeanB - MeanA
	Ratio     float64 // MeanB / MeanA (0 when MeanA is 0)
	OnlyInA   bool
	OnlyInB   bool
	PctOfA    float64 // exclusive percentage in A
	PctOfB    float64 // exclusive percentage in B
	PctChange float64 // PctOfB - PctOfA
}

// Comparison is the result of CompareTrials.
type Comparison struct {
	Metric string
	TrialA int64
	TrialB int64
	Events []EventDelta // sorted by |Delta| descending
}

// CompareTrials diffs two trials' mean profiles for one metric — the basic
// cross-trial operation the paper's toolkit provides ("rudimentary
// multi-trial analysis, including performance comparisons").
func CompareTrials(s *core.DataSession, trialA, trialB *core.Trial, metric string) (cmp *Comparison, err error) {
	err = op(context.Background(), s, "analysis:compare", mCompareNS, func(context.Context) error {
		cmp, err = compareTrials(s, trialA, trialB, metric)
		return err
	})
	return cmp, err
}

func compareTrials(s *core.DataSession, trialA, trialB *core.Trial, metric string) (*Comparison, error) {
	prev := s.Trial()
	defer s.SetTrial(prev)

	s.SetTrial(trialA)
	rowsA, err := s.MeanSummary(metric)
	if err != nil {
		return nil, err
	}
	s.SetTrial(trialB)
	rowsB, err := s.MeanSummary(metric)
	if err != nil {
		return nil, err
	}
	if len(rowsA) == 0 || len(rowsB) == 0 {
		return nil, fmt.Errorf("analysis: one of the trials has no %s summary", metric)
	}

	byName := make(map[string]*EventDelta)
	for _, r := range rowsA {
		byName[r.EventName] = &EventDelta{
			Name: r.EventName, Group: r.Group,
			MeanA: r.Exclusive, PctOfA: r.ExclPct, OnlyInA: true,
		}
	}
	for _, r := range rowsB {
		d := byName[r.EventName]
		if d == nil {
			d = &EventDelta{Name: r.EventName, Group: r.Group, OnlyInB: true}
			byName[r.EventName] = d
		} else {
			d.OnlyInA = false
		}
		d.MeanB = r.Exclusive
		d.PctOfB = r.ExclPct
	}
	cmp := &Comparison{Metric: metric, TrialA: trialA.ID, TrialB: trialB.ID}
	for _, d := range byName {
		d.Delta = d.MeanB - d.MeanA
		if d.MeanA != 0 {
			d.Ratio = d.MeanB / d.MeanA
		}
		d.PctChange = d.PctOfB - d.PctOfA
		cmp.Events = append(cmp.Events, *d)
	}
	sort.Slice(cmp.Events, func(i, j int) bool {
		ai, aj := abs(cmp.Events[i].Delta), abs(cmp.Events[j].Delta)
		if ai != aj {
			return ai > aj
		}
		return cmp.Events[i].Name < cmp.Events[j].Name
	})
	return cmp, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TopEvents returns a trial's n most expensive events by mean exclusive
// value (the ParaProf-style "hot spots" list), straight from the summary
// table.
func TopEvents(s *core.DataSession, trial *core.Trial, metric string, n int) ([]core.SummaryRow, error) {
	prev := s.Trial()
	defer s.SetTrial(prev)
	s.SetTrial(trial)
	rows, err := s.MeanSummary(metric)
	if err != nil {
		return nil, err
	}
	if n < len(rows) {
		rows = rows[:n]
	}
	return rows, nil
}

// GroupBreakdown aggregates a trial's mean exclusive time by event group
// (computation vs MPI etc.), using SQL grouping.
func GroupBreakdown(s *core.DataSession, trial *core.Trial, metric string) (map[string]float64, error) {
	rows, err := s.Conn().Query(`
		SELECT e.group_name, SUM(t.exclusive)
		FROM interval_event e
		JOIN interval_mean_summary t ON t.interval_event = e.id
		JOIN metric m ON t.metric = m.id
		WHERE e.trial = ? AND m.name = ?
		GROUP BY e.group_name`, trial.ID, metric)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	out := make(map[string]float64)
	for rows.Next() {
		var group any
		var sum float64
		if err := rows.Scan(&group, &sum); err != nil {
			return nil, err
		}
		g, _ := group.(string)
		out[g] = sum
	}
	return out, rows.Err()
}
