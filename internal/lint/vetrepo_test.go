package lint

import "testing"

// TestRepoVetClean is the regression net over every real finding this
// suite surfaced and fixed (unclosed Rows/Stmt paths in mining, core,
// godbc, and the quickstart example; the WAL fsync under reldb's mutex in
// Close; direct time.Now in sqlexec; the sqlexec_scan_partitions metric
// name): reintroducing any of them fails this test with the file:line
// diagnostic. It is the same pass `make lint` runs in the check gate.
func TestRepoVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l := testLoader(t)
	prog, err := l.LoadModule()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(prog.Packages) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(prog.Packages))
	}
	for _, d := range Run(prog, All()) {
		t.Errorf("%s", d)
	}
}
