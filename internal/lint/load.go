package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis. Test files are parsed but not type-checked: analyzers that
// need go/types (lockcheck, determinism, metricnames, closecheck) inspect
// Files only; purely syntactic analyzers (sqlcheck) also cover TestFiles.
type Package struct {
	PkgPath   string
	Dir       string
	Files     []*ast.File // non-test files, type-checked
	TestFiles []*ast.File // *_test.go files, AST only
	Types     *types.Package
	Info      *types.Info
}

// Program is everything the analyzers see: the module's packages sharing
// one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// Loader parses and type-checks packages of one module. Module-internal
// imports are resolved recursively through the loader's own cache; stdlib
// imports are type-checked from GOROOT source via go/importer's "source"
// compiler, so no compiled export data is needed.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	std      types.ImporterFrom
	cache    map[string]*Package
	loading  map[string]bool // import-cycle guard
	typeErrs []error
}

// NewLoader returns a loader rooted at the module directory (the
// directory containing go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:      make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// through the cache, everything else (stdlib) through the source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, fmt.Errorf("lint: import %s: package failed to type-check", path)
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(pkgPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, l.ModulePath), "/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// pathFor maps a directory inside the module to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// Load parses and type-checks one module package by import path.
func (l *Loader) Load(pkgPath string) (*Package, error) {
	if p, ok := l.cache[pkgPath]; ok {
		return p, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	dir := l.dirFor(pkgPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: load %s: %w", pkgPath, err)
	}
	p := &Package{PkgPath: pkgPath, Dir: dir}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		file, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		if strings.HasSuffix(name, "_test.go") {
			p.TestFiles = append(p.TestFiles, file)
		} else {
			p.Files = append(p.Files, file)
		}
	}
	if len(p.Files) > 0 {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: l,
			Error:    func(err error) { l.typeErrs = append(l.typeErrs, err) },
		}
		tp, err := conf.Check(pkgPath, l.Fset, p.Files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", pkgPath, err)
		}
		p.Types = tp
		p.Info = info
	}
	l.cache[pkgPath] = p
	return p, nil
}

// LoadModule loads every package of the module, skipping testdata, bin,
// hidden and underscore-prefixed directories (mirroring the go tool).
func (l *Loader) LoadModule() (*Program, error) {
	seen := make(map[string]bool)
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.ModuleDir && (name == "testdata" || name == "bin" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: l.Fset}
	for _, dir := range dirs {
		pkgPath, err := l.pathFor(dir)
		if err != nil {
			return nil, err
		}
		p, err := l.Load(pkgPath)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, p)
	}
	sort.Slice(prog.Packages, func(i, j int) bool {
		return prog.Packages[i].PkgPath < prog.Packages[j].PkgPath
	})
	return prog, nil
}

// LoadDirs loads the named directories (absolute or module-relative) as a
// Program — the entry point analyzer golden tests use for testdata trees.
func (l *Loader) LoadDirs(dirs ...string) (*Program, error) {
	prog := &Program{Fset: l.Fset}
	for _, dir := range dirs {
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.ModuleDir, dir)
		}
		pkgPath, err := l.pathFor(dir)
		if err != nil {
			return nil, err
		}
		p, err := l.Load(pkgPath)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, p)
	}
	return prog, nil
}
