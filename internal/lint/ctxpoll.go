package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ctxpoll generalizes the PR 6 kill-statement convention: any loop in the
// executor or the storage engine's row paths that walks rows or slots
// must poll cancellation — directly (stmt.Err() / ctx.Err()), through a
// helper that polls, or behind a bounded stride guard
// (n%cancelCheckRows == 0 with the stride ≤ MaxStride) — so a KILL or a
// context cancellation unwinds within a bounded number of rows on every
// scan path, including ones added after the convention was established.
//
// What counts as a scan loop:
//   - a range over a slice of the configured row type ([]reldb.Row),
//   - a for loop whose condition compares against len(rows-typed slice),
//   - a range over an integer slice named like a slot list ("slots", ...,
//     per SlotNames),
//   - the body of a function literal passed to a per-row callback method
//     named in ScanFuncs (tx.Scan(table, func(slot, row) bool {...})).
//
// What counts as polling inside the body (nested function literals and
// nested loops do not count for the outer loop — they may run zero
// times):
//   - a call to (*sqlexec.StmtEntry).Err or context.Context.Err, either
//     unguarded or guarded only by stride-ifs (expr%K == c, K ≤
//     MaxStride) — polls inside an if's own Init/Cond count through that
//     if,
//   - a call to a module function that itself polls unconditionally-ish
//     (same rule, computed as a fixed point over the call graph),
//   - the callback-stop shape: the loop's per-row work is delegated to a
//     function-typed value whose boolean result breaks/returns out of the
//     loop — the callback owns cancellation (reldb's Table.scan).
type CtxpollConfig struct {
	// Scopes limits where loops are inspected; entries are import paths,
	// optionally with a file basename prefix: "pkg" or "pkg:filePrefix".
	Scopes []string
	// RowTypes are the fully-qualified element types whose slices count
	// as row collections.
	RowTypes []string
	// SlotNames are identifier names (of integer slices) treated as slot
	// collections.
	SlotNames []string
	// ScanFuncs are method names whose function-literal argument is a
	// per-row callback.
	ScanFuncs []string
	// MaxStride is the largest accepted stride-guard constant.
	MaxStride int64
}

// CtxpollMaxStride is the declared repo-wide bound on how many rows a
// scan may process between cancellation checks. sqlexec's
// cancelCheckRows (1024) is well inside it.
const CtxpollMaxStride = 4096

// Ctxpoll returns the analyzer with the production configuration: the
// whole executor plus reldb's row-scan file. Segment building
// (segment.go) is deliberately out of scope: a build populates a shared
// cache under segMu, and aborting it halfway would poison the snapshot
// for every other reader, so it runs to completion (it is bounded by
// table size).
func Ctxpoll() *Analyzer {
	return CtxpollFor(CtxpollConfig{
		Scopes:    []string{"perfdmf/internal/sqlexec", "perfdmf/internal/reldb:table"},
		RowTypes:  []string{"perfdmf/internal/reldb.Row"},
		SlotNames: []string{"slots"},
		ScanFuncs: []string{"Scan"},
		MaxStride: CtxpollMaxStride,
	})
}

// CtxpollFor returns the analyzer for an explicit configuration.
func CtxpollFor(cfg CtxpollConfig) *Analyzer {
	return &Analyzer{
		Name: "ctxpoll",
		Doc:  "row/slot scan loops must poll cancellation at least every MaxStride iterations",
		Run: func(prog *Program) []Diagnostic {
			c := &ctxpollWalk{prog: prog, cfg: cfg}
			c.buildPollers()
			return c.run()
		},
	}
}

type ctxpollWalk struct {
	prog    *Program
	cfg     CtxpollConfig
	pollers map[*types.Func]bool
	diags   []Diagnostic
}

// scopeMatch implements the "pkg" / "pkg:filePrefix" scope form shared
// with the determinism analyzer.
func (c *ctxpollWalk) scopeMatch(pkgPath, filename string) bool {
	base := filename
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	for _, s := range c.cfg.Scopes {
		pkg, prefix, hasPrefix := strings.Cut(s, ":")
		if pkg != pkgPath {
			continue
		}
		if !hasPrefix || strings.HasPrefix(base, prefix) {
			return true
		}
	}
	return false
}

// buildPollers computes the module functions that poll cancellation on
// every call, as a fixed point: directly via stmt.Err()/ctx.Err(), or by
// calling another poller, in either case outside loops and function
// literals and under stride guards only.
func (c *ctxpollWalk) buildPollers() {
	c.pollers = make(map[*types.Func]bool)
	type fnDecl struct {
		fn   *types.Func
		decl *ast.FuncDecl
		pkg  *Package
	}
	var fns []fnDecl
	for _, pkg := range c.prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					fns = append(fns, fnDecl{obj, fd, pkg})
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if c.pollers[f.fn] {
				continue
			}
			if c.bodyPolls(f.pkg, f.decl.Body) {
				c.pollers[f.fn] = true
				changed = true
			}
		}
	}
}

func (c *ctxpollWalk) run() []Diagnostic {
	for _, pkg := range c.prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			pos := c.prog.Fset.Position(f.Pos())
			if !c.scopeMatch(pkg.PkgPath, pos.Filename) {
				continue
			}
			c.checkFile(pkg, f)
		}
	}
	return c.diags
}

func (c *ctxpollWalk) checkFile(pkg *Package, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if c.isRowRange(pkg, n) {
				c.checkLoop(pkg, n.Pos(), n.Body, "row scan loop")
			} else if c.isSlotRange(pkg, n) {
				c.checkLoop(pkg, n.Pos(), n.Body, "slot scan loop")
			}
		case *ast.ForStmt:
			if c.isLenCondOverRows(pkg, n) {
				c.checkLoop(pkg, n.Pos(), n.Body, "row scan loop")
			}
		case *ast.CallExpr:
			if _, m, ok := methodCall(n); ok && c.isScanFunc(m) {
				for _, arg := range n.Args {
					if fl, isLit := arg.(*ast.FuncLit); isLit {
						c.checkCallback(pkg, n.Pos(), fl)
					}
				}
			}
		}
		return true
	})
}

// isRowRange reports whether the range iterates a slice of a configured
// row type.
func (c *ctxpollWalk) isRowRange(pkg *Package, n *ast.RangeStmt) bool {
	return c.isRowSlice(typeString(pkg.Info, n.X))
}

func (c *ctxpollWalk) isRowSlice(ts string) bool {
	for _, rt := range c.cfg.RowTypes {
		if ts == "[]"+rt {
			return true
		}
	}
	return false
}

// isSlotRange reports whether the range iterates an integer slice whose
// expression is named like a slot list.
func (c *ctxpollWalk) isSlotRange(pkg *Package, n *ast.RangeStmt) bool {
	name := ""
	switch x := n.X.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	match := false
	lower := strings.ToLower(name)
	for _, sn := range c.cfg.SlotNames {
		if strings.HasSuffix(lower, strings.ToLower(sn)) {
			match = true
		}
	}
	if !match {
		return false
	}
	ts := typeString(pkg.Info, n.X)
	return ts == "[]int" || ts == "[]int32" || ts == "[]int64"
}

// isLenCondOverRows matches `for i := 0; i < len(rows); i++` over a
// row-typed slice.
func (c *ctxpollWalk) isLenCondOverRows(pkg *Package, n *ast.ForStmt) bool {
	found := false
	if n.Cond == nil {
		return false
	}
	ast.Inspect(n.Cond, func(nn ast.Node) bool {
		call, ok := nn.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, isID := call.Fun.(*ast.Ident); isID && id.Name == "len" && len(call.Args) == 1 {
			if c.isRowSlice(typeString(pkg.Info, call.Args[0])) {
				found = true
			}
		}
		return true
	})
	return found
}

func (c *ctxpollWalk) isScanFunc(m string) bool {
	for _, s := range c.cfg.ScanFuncs {
		if m == s {
			return true
		}
	}
	return false
}

// checkLoop reports the loop when its body neither polls nor delegates
// stop control to a callback.
func (c *ctxpollWalk) checkLoop(pkg *Package, pos token.Pos, body *ast.BlockStmt, kind string) {
	if c.bodyPolls(pkg, body) || c.callbackStops(pkg, body) {
		return
	}
	c.diags = append(c.diags, diag(c.prog, "ctxpoll", pos,
		"%s without a cancellation poll: call stmt.Err()/ctx.Err() at least every %d rows (see docs/STATIC_ANALYSIS.md)",
		kind, c.cfg.MaxStride))
}

// checkCallback reports a per-row callback literal that neither polls nor
// stops via a nested callback.
func (c *ctxpollWalk) checkCallback(pkg *Package, pos token.Pos, fl *ast.FuncLit) {
	if c.bodyPolls(pkg, fl.Body) || c.callbackStops(pkg, fl.Body) {
		return
	}
	c.diags = append(c.diags, diag(c.prog, "ctxpoll", pos,
		"per-row scan callback without a cancellation poll: call stmt.Err()/ctx.Err() at least every %d rows (see docs/STATIC_ANALYSIS.md)",
		c.cfg.MaxStride))
}

// bodyPolls reports whether the body contains an effective poll: a direct
// stmt.Err()/ctx.Err() call or a call to a poller function, reachable on
// every pass (i.e. not inside nested loops or function literals, and
// enclosed only by stride-guard ifs — except that a poll in an if's own
// Init/Cond counts through that if).
func (c *ctxpollWalk) bodyPolls(pkg *Package, body *ast.BlockStmt) bool {
	return c.stmtsPoll(pkg, body.List)
}

func (c *ctxpollWalk) stmtsPoll(pkg *Package, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if c.stmtPolls(pkg, s) {
			return true
		}
	}
	return false
}

func (c *ctxpollWalk) stmtPolls(pkg *Package, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IfStmt:
		// Polls in the if's own Init/Cond execute on every pass.
		if s.Init != nil && c.exprStmtPolls(pkg, s.Init) {
			return true
		}
		if s.Cond != nil && c.exprPolls(pkg, s.Cond) {
			return true
		}
		// Polls in the branches only count under a stride guard.
		if c.isStrideGuard(pkg, s.Cond) {
			if c.stmtsPoll(pkg, s.Body.List) {
				return true
			}
		}
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				// An else branch is the guard's complement; polls there
				// are still bounded by the stride.
				if c.isStrideGuard(pkg, s.Cond) && c.stmtsPoll(pkg, blk.List) {
					return true
				}
			} else if c.stmtPolls(pkg, s.Else) {
				return true
			}
		}
		return false
	case *ast.BlockStmt:
		return c.stmtsPoll(pkg, s.List)
	case *ast.LabeledStmt:
		return c.stmtPolls(pkg, s.Stmt)
	case *ast.ForStmt, *ast.RangeStmt:
		return false // nested loops may run zero iterations
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return false // conditional: not guaranteed every pass
	case *ast.DeferStmt, *ast.GoStmt:
		return false
	default:
		return c.exprStmtPolls(pkg, s)
	}
}

// exprStmtPolls scans a leaf statement's expressions (outside FuncLits)
// for poll calls.
func (c *ctxpollWalk) exprStmtPolls(pkg *Package, s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && c.isPollCall(pkg, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (c *ctxpollWalk) exprPolls(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && c.isPollCall(pkg, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isPollCall recognizes stmt.Err() / ctx.Err() (by receiver type) and
// calls to module poller functions.
func (c *ctxpollWalk) isPollCall(pkg *Package, call *ast.CallExpr) bool {
	if recv, m, ok := methodCall(call); ok && m == "Err" {
		ts := typeString(pkg.Info, recv)
		if strings.HasSuffix(ts, "StmtEntry") || ts == "context.Context" {
			return true
		}
	}
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
		return c.pollers[fn]
	}
	return false
}

// isStrideGuard matches `expr % K == c` (either operand order, any
// comparison of a %K value) with constant K ≤ MaxStride.
func (c *ctxpollWalk) isStrideGuard(pkg *Package, cond ast.Expr) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		mod, isMod := stripParens(side).(*ast.BinaryExpr)
		if !isMod || mod.Op.String() != "%" {
			continue
		}
		if k, okK := constInt(pkg.Info, mod.Y); okK && k > 0 && k <= c.cfg.MaxStride {
			return true
		}
	}
	return false
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// constInt evaluates an expression to a constant integer via go/types.
func constInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return v, true
}

// callbackStops recognizes the callback-stop shape: an if whose condition
// calls a function-typed value and whose body breaks or returns — the
// callback decides when the scan stops, so cancellation is its job
// (reldb's Table.scan: `if !fn(slot, row) { return }`).
func (c *ctxpollWalk) callbackStops(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if !c.callsFuncValue(pkg, ifs.Cond) && !(ifs.Init != nil && c.initCallsFuncValue(pkg, ifs.Init)) {
			return true
		}
		for _, bs := range ifs.Body.List {
			switch bs := bs.(type) {
			case *ast.ReturnStmt:
				found = true
			case *ast.BranchStmt:
				if bs.Tok.String() == "break" {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func (c *ctxpollWalk) initCallsFuncValue(pkg *Package, s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && c.isFuncValueCall(pkg, call) {
			found = true
		}
		return !found
	})
	return found
}

func (c *ctxpollWalk) callsFuncValue(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && c.isFuncValueCall(pkg, call) {
			found = true
		}
		return !found
	})
	return found
}

// isFuncValueCall reports whether the call invokes a function-typed
// *value* (parameter, field, local) rather than a declared function.
func (c *ctxpollWalk) isFuncValueCall(pkg *Package, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	_, isVar := pkg.Info.Uses[id].(*types.Var)
	return isVar
}
