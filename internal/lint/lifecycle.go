package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// lifecycle extends closecheck's escape analysis to the two resources a
// leak detector cannot see at runtime: spans and goroutines.
//
// Span rule: every span obtained from obs.StartSpan (`ctx, sp :=
// obs.StartSpan(...)`) must reach sp.Finish(err) on all paths before the
// function returns, or be deferred (directly or inside a deferred
// closure), or escape (returned, stored, or passed to another function —
// ownership transfers). A leaked span never routes to the tracer, the
// slow-query log, or the telemetry sink, so the whole observability
// pipeline silently under-counts. An `if sp == nil`/`if sp != nil` guard
// immediately after the acquisition is exempt, mirroring closecheck's err
// guard: StartSpan returns nil when observability is off and Finish is
// nil-safe.
//
// Goroutine rule: every `go` statement must show join evidence — the
// spawned body (a function literal, or a module function/method the
// analyzer can resolve) must signal completion via `wg.Done()` or by
// closing/sending on a channel, so an owner can wait for it. A goroutine
// with neither is detached: nothing can know when (or whether) it
// finished, which is how shutdown races and test flakes start.
// Intentionally detached goroutines are annotated
// `//lint:allow lifecycle -- <why>` at the go statement.
type LifecycleConfig struct {
	// StartSpanFuncs are the fully-qualified functions whose second
	// result is a span requiring Finish.
	StartSpanFuncs []string
	// FinishMethods are the method names that resolve a span.
	FinishMethods []string
}

// Lifecycle returns the analyzer with the production configuration.
func Lifecycle() *Analyzer {
	return LifecycleFor(LifecycleConfig{
		StartSpanFuncs: []string{"perfdmf/internal/obs.StartSpan"},
		FinishMethods:  []string{"Finish"},
	})
}

// LifecycleFor returns the analyzer for an explicit configuration (golden
// tests point StartSpanFuncs at a testdata-local function).
func LifecycleFor(cfg LifecycleConfig) *Analyzer {
	return &Analyzer{
		Name: "lifecycle",
		Doc:  "obs.StartSpan spans must Finish on all paths; spawned goroutines must be joinable",
		Run: func(prog *Program) []Diagnostic {
			var out []Diagnostic
			lw := &lifecycleWalk{prog: prog, cfg: cfg, diags: &out}
			lw.indexFuncs()
			for _, pkg := range prog.Packages {
				if pkg.Info == nil {
					continue
				}
				for _, f := range pkg.Files {
					lw.checkSpans(pkg, f)
					lw.checkGoroutines(pkg, f)
				}
			}
			return out
		},
	}
}

type lifecycleWalk struct {
	prog  *Program
	cfg   LifecycleConfig
	diags *[]Diagnostic
	funcs map[*types.Func]*ast.FuncDecl
}

func (lw *lifecycleWalk) indexFuncs() {
	lw.funcs = make(map[*types.Func]*ast.FuncDecl)
	for _, pkg := range lw.prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					lw.funcs[obj] = fd
				}
			}
		}
	}
}

// ---- span check -------------------------------------------------------

// checkSpans finds StartSpan acquisitions and path-checks the remainder
// of each enclosing statement list, reusing closecheck's path machinery
// (a span behaves exactly like a Rows handle whose release method is
// Finish, plus the nil-guard exemption).
func (lw *lifecycleWalk) checkSpans(pkg *Package, f *ast.File) {
	funcBodies(f, func(fname string, _ *ast.FuncDecl, body *ast.BlockStmt) {
		lw.scanSpanList(pkg, fname, body.List)
	})
}

func (lw *lifecycleWalk) scanSpanList(pkg *Package, fname string, stmts []ast.Stmt) {
	for i, s := range stmts {
		if as, ok := s.(*ast.AssignStmt); ok {
			if sp, okA := lw.spanAcquisition(pkg, as); okA {
				lw.checkSpanAcquisition(pkg, fname, as, sp, stmts[i+1:])
			}
		}
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				lw.scanSpanList(pkg, fname, n.List)
				return false
			case *ast.FuncLit:
				lw.scanSpanList(pkg, fname, n.Body.List)
				return false
			case *ast.CaseClause:
				lw.scanSpanList(pkg, fname, n.Body)
				return false
			case *ast.CommClause:
				lw.scanSpanList(pkg, fname, n.Body)
				return false
			}
			return true
		})
	}
}

// spanAcquisition recognizes `ctx, sp := obs.StartSpan(...)` (and `_, sp
// :=`), returning the span identifier.
func (lw *lifecycleWalk) spanAcquisition(pkg *Package, as *ast.AssignStmt) (*ast.Ident, bool) {
	if as.Tok.String() != ":=" || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return nil, false
	}
	call, isCall := as.Rhs[0].(*ast.CallExpr)
	if !isCall {
		return nil, false
	}
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return nil, false
	}
	full := fn.FullName()
	matched := false
	for _, want := range lw.cfg.StartSpanFuncs {
		if full == want {
			matched = true
		}
	}
	if !matched {
		return nil, false
	}
	sp, isIdent := as.Lhs[1].(*ast.Ident)
	if !isIdent || sp.Name == "_" {
		return nil, false
	}
	return sp, true
}

func (lw *lifecycleWalk) checkSpanAcquisition(pkg *Package, fname string, at *ast.AssignStmt, sp *ast.Ident, rest []ast.Stmt) {
	// The nil-guard immediately after acquisition (`if sp == nil { return
	// fn(ctx) }` / `if sp != nil { bind }`) is exempt: StartSpan returns
	// nil with observability off.
	if len(rest) > 0 {
		if ifs, ok := rest[0].(*ast.IfStmt); ok && ifs.Init == nil && mentionsIdent(ifs.Cond, sp.Name) {
			rest = rest[1:]
		}
	}
	c := &closeWalk{prog: lw.prog, pkg: pkg, fname: fname, diags: lw.diags, analyzer: "lifecycle"}
	st := c.path(rest, sp.Name, lw.cfg.FinishMethods, closeState{})
	if !st.done() {
		*lw.diags = append(*lw.diags, diag(lw.prog, "lifecycle", at.Pos(),
			"span %s from StartSpan in %s does not reach Finish before the end of its scope", sp.Name, fname))
	}
}

// ---- goroutine check --------------------------------------------------

func (lw *lifecycleWalk) checkGoroutines(pkg *Package, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lw.goroutineJoinable(pkg, gs) {
			return true
		}
		*lw.diags = append(*lw.diags, diag(lw.prog, "lifecycle", gs.Pos(),
			"goroutine is detached: its body signals completion via neither WaitGroup.Done nor a channel close/send (annotate //lint:allow lifecycle if intentional)"))
		return true
	})
}

// goroutineJoinable reports whether the spawned body shows join evidence:
// a wg.Done() call (typed sync.WaitGroup) or a channel close/send, in the
// function literal itself or in the resolved module callee's body.
func (lw *lifecycleWalk) goroutineJoinable(pkg *Package, gs *ast.GoStmt) bool {
	if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return lw.bodySignals(pkg, fl.Body)
	}
	var id *ast.Ident
	switch fun := gs.Call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	fd := lw.funcs[fn]
	if fd == nil {
		return false // stdlib or unresolvable: no join evidence
	}
	// The callee may live in another package; find its Package for type
	// info on the signal expressions.
	calleePkg := lw.packageOf(fd)
	if calleePkg == nil {
		return false
	}
	return lw.bodySignals(calleePkg, fd.Body)
}

func (lw *lifecycleWalk) packageOf(fd *ast.FuncDecl) *Package {
	pos := fd.Pos()
	for _, pkg := range lw.prog.Packages {
		for _, f := range pkg.Files {
			if f.Pos() <= pos && pos <= f.End() {
				return pkg
			}
		}
	}
	return nil
}

// bodySignals looks for completion signals anywhere in the body
// (including deferred): wg.Done() on a sync.WaitGroup, close(ch), or a
// channel send.
func (lw *lifecycleWalk) bodySignals(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
			return false
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				found = true
				return false
			}
			if recv, m, ok := methodCall(n); ok && m == "Done" {
				ts := typeString(pkg.Info, recv)
				if strings.HasSuffix(strings.TrimPrefix(ts, "*"), "sync.WaitGroup") {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
