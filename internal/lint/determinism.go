package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism returns the determinism analyzer with repo defaults: the
// parallel-executor and partial-aggregation hot paths in internal/sqlexec
// must be bitwise reproducible, so direct time.Now calls (use the injected
// clock), anything from math/rand, and map-order iteration that feeds an
// ordered result (append/channel send in the loop body) are forbidden.
func Determinism() *Analyzer {
	return DeterminismFor([]string{"perfdmf/internal/sqlexec"})
}

// DeterminismFor returns the determinism analyzer scoped to the given
// package-path prefixes.
func DeterminismFor(packages []string) *Analyzer {
	const name = "determinism"
	return &Analyzer{
		Name: name,
		Doc:  "no time.Now, math/rand, or result-feeding map iteration in sqlexec hot paths",
		Run: func(prog *Program) []Diagnostic {
			var out []Diagnostic
			for _, pkg := range prog.Packages {
				if !pathInScope(pkg.PkgPath, packages) {
					continue
				}
				for _, f := range pkg.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.SelectorExpr:
							if pkgName := importedPackage(pkg.Info, n); pkgName != "" {
								if pkgName == "time" && n.Sel.Name == "Now" {
									out = append(out, diag(prog, name, n.Pos(),
										"direct time.Now in %s: route timing through the injected clock so results stay reproducible", pkg.PkgPath))
								}
								if pkgName == "math/rand" || pkgName == "math/rand/v2" {
									out = append(out, diag(prog, name, n.Pos(),
										"math/rand use in %s: randomness breaks the bitwise-identical-results guarantee", pkg.PkgPath))
								}
							}
						case *ast.RangeStmt:
							if isMapRange(pkg.Info, n) && bindsValue(n) && feedsOrderedResult(n.Body) {
								out = append(out, diag(prog, name, n.Pos(),
									"map iteration feeding an ordered result in %s: iterate a sorted key slice instead", pkg.PkgPath))
							}
						}
						return true
					})
				}
			}
			return out
		},
	}
}

// importedPackage resolves a selector's qualifier to the import path of
// the package it names, or "" if the selector is not package-qualified.
func importedPackage(info *types.Info, sel *ast.SelectorExpr) string {
	if info == nil {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// bindsValue reports whether the range binds the map's value. Key-only
// iteration (`for k := range m`) is exempt: collecting keys into a slice
// to sort them IS the deterministic idiom this analyzer pushes toward.
func bindsValue(r *ast.RangeStmt) bool {
	if r.Value == nil {
		return false
	}
	if id, ok := r.Value.(*ast.Ident); ok && id.Name == "_" {
		return false
	}
	return true
}

// isMapRange reports whether a range statement iterates a map.
func isMapRange(info *types.Info, r *ast.RangeStmt) bool {
	ts := typeString(info, r.X)
	return strings.HasPrefix(ts, "map[")
}

// feedsOrderedResult reports whether a loop body builds ordered output —
// appends to a slice or sends on a channel — which would make the output
// order depend on Go's randomized map iteration.
func feedsOrderedResult(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				found = true
			}
		case *ast.SendStmt:
			found = true
		}
		return !found
	})
	return found
}
