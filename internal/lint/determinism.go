package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// Determinism returns the determinism analyzer with repo defaults: the
// parallel-executor, partial-aggregation and vectorized-kernel hot paths
// must be bitwise reproducible, so direct time.Now calls (use the injected
// clock), anything from math/rand, and map-order iteration that feeds an
// ordered result (append/channel send in the loop body) are forbidden. The
// reldb package is covered only for its sealed-segment files ("pkg:prefix"
// scope) — the storage engine legitimately reads the wall clock elsewhere.
func Determinism() *Analyzer {
	return DeterminismFor([]string{
		"perfdmf/internal/sqlexec",
		"perfdmf/internal/reldb:segment",
	})
}

// DeterminismFor returns the determinism analyzer scoped to the given
// package-path prefixes. A scope may carry a file restriction after a
// colon — "perfdmf/internal/reldb:segment" covers only files of that
// package whose base name starts with "segment".
func DeterminismFor(packages []string) *Analyzer {
	const name = "determinism"
	return &Analyzer{
		Name: name,
		Doc:  "no time.Now, math/rand, or result-feeding map iteration in sqlexec hot paths",
		Run: func(prog *Program) []Diagnostic {
			var out []Diagnostic
			for _, pkg := range prog.Packages {
				filePrefixes, pkgInScope := fileScopes(pkg.PkgPath, packages)
				if !pkgInScope {
					continue
				}
				for _, f := range pkg.Files {
					if !fileInScope(prog, f, filePrefixes) {
						continue
					}
					ast.Inspect(f, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.SelectorExpr:
							if pkgName := importedPackage(pkg.Info, n); pkgName != "" {
								if pkgName == "time" && n.Sel.Name == "Now" {
									out = append(out, diag(prog, name, n.Pos(),
										"direct time.Now in %s: route timing through the injected clock so results stay reproducible", pkg.PkgPath))
								}
								if pkgName == "math/rand" || pkgName == "math/rand/v2" {
									out = append(out, diag(prog, name, n.Pos(),
										"math/rand use in %s: randomness breaks the bitwise-identical-results guarantee", pkg.PkgPath))
								}
							}
						case *ast.RangeStmt:
							if isMapRange(pkg.Info, n) && bindsValue(n) && feedsOrderedResult(n.Body) {
								out = append(out, diag(prog, name, n.Pos(),
									"map iteration feeding an ordered result in %s: iterate a sorted key slice instead", pkg.PkgPath))
							}
						}
						return true
					})
				}
			}
			return out
		},
	}
}

// fileScopes matches a package path against scope entries that may carry a
// ":filePrefix" restriction. It returns the file-name prefixes that apply
// (nil means every file) and whether the package is in scope at all. A
// plain entry covering the package wins over any prefixed one: the whole
// package is already in scope, so per-file restrictions are moot.
func fileScopes(pkgPath string, scopes []string) (prefixes []string, ok bool) {
	for _, s := range scopes {
		pkg, prefix := s, ""
		if i := strings.IndexByte(s, ':'); i >= 0 {
			pkg, prefix = s[:i], s[i+1:]
		}
		if pkgPath != pkg && !strings.HasPrefix(pkgPath, pkg+"/") {
			continue
		}
		if prefix == "" {
			return nil, true
		}
		prefixes = append(prefixes, prefix)
		ok = true
	}
	return prefixes, ok
}

// fileInScope reports whether a file passes the prefix restriction from
// fileScopes. Test files are exempt: the reproducibility contract binds
// production kernels, not their harnesses.
func fileInScope(prog *Program, f *ast.File, prefixes []string) bool {
	if prefixes == nil {
		return true
	}
	base := filepath.Base(prog.Fset.Position(f.Pos()).Filename)
	for _, p := range prefixes {
		if strings.HasPrefix(base, p) && !strings.HasSuffix(base, "_test.go") {
			return true
		}
	}
	return false
}

// importedPackage resolves a selector's qualifier to the import path of
// the package it names, or "" if the selector is not package-qualified.
func importedPackage(info *types.Info, sel *ast.SelectorExpr) string {
	if info == nil {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// bindsValue reports whether the range binds the map's value. Key-only
// iteration (`for k := range m`) is exempt: collecting keys into a slice
// to sort them IS the deterministic idiom this analyzer pushes toward.
func bindsValue(r *ast.RangeStmt) bool {
	if r.Value == nil {
		return false
	}
	if id, ok := r.Value.(*ast.Ident); ok && id.Name == "_" {
		return false
	}
	return true
}

// isMapRange reports whether a range statement iterates a map.
func isMapRange(info *types.Info, r *ast.RangeStmt) bool {
	ts := typeString(info, r.X)
	return strings.HasPrefix(ts, "map[")
}

// feedsOrderedResult reports whether a loop body builds ordered output —
// appends to a slice or sends on a channel — which would make the output
// order depend on Go's randomized map iteration.
func feedsOrderedResult(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				found = true
			}
		case *ast.SendStmt:
			found = true
		}
		return !found
	})
	return found
}
