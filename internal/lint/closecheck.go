package lint

import (
	"go/ast"
	"go/types"
)

// acquireMethods maps the godbc acquisition methods to the method names
// that resolve the resulting resource.
var acquireMethods = map[string][]string{
	"Query":   {"Close"},
	"Prepare": {"Close"},
	"Begin":   {"Commit", "Rollback"},
}

// Closecheck returns the resource-lifecycle analyzer: every Rows/Stmt
// obtained from Query/Prepare and every Tx from Begin must reach
// Close/Commit/Rollback on all paths within the function, or escape via
// return / handoff to another function.
//
// The check is type-gated: an acquisition is only tracked when the call's
// first result type actually has a Close (or Commit/Rollback) method, so
// e.g. url.Values from r.URL.Query() is never flagged. Only short
// variable declarations (:=) are tracked — the variable's scope ends with
// its block, so the resource must be resolved by then.
func Closecheck() *Analyzer {
	const name = "closecheck"
	return &Analyzer{
		Name: name,
		Doc:  "Query/Prepare/Begin results must reach Close/Commit/Rollback on all paths or escape",
		Run: func(prog *Program) []Diagnostic {
			var out []Diagnostic
			for _, pkg := range prog.Packages {
				for _, f := range pkg.Files {
					funcBodies(f, func(fname string, _ *ast.FuncDecl, body *ast.BlockStmt) {
						c := &closeWalk{prog: prog, pkg: pkg, fname: fname, diags: &out}
						c.scanList(body.List)
					})
				}
			}
			return out
		},
	}
}

type closeWalk struct {
	prog     *Program
	pkg      *Package
	fname    string
	diags    *[]Diagnostic
	analyzer string // "closecheck", or "lifecycle" when reused for spans
}

func (c *closeWalk) name() string {
	if c.analyzer != "" {
		return c.analyzer
	}
	return "closecheck"
}

type closeState struct {
	resolved   bool // closed, committed, rolled back, or escaped
	deferred   bool // resolution scheduled via defer
	terminated bool // path returned or panicked
}

func (s closeState) done() bool { return s.resolved || s.deferred || s.terminated }

// scanList finds tracked acquisitions in one statement list and
// path-checks the remainder of the list after each. It then recurses into
// nested blocks (loop/if/switch bodies and closures), each of which is its
// own scope with the same end-of-block obligation.
func (c *closeWalk) scanList(stmts []ast.Stmt) {
	for i, s := range stmts {
		if as, ok := s.(*ast.AssignStmt); ok {
			if res, errName, method, okA := c.acquisition(as); okA {
				c.checkAcquisition(as, res, errName, method, stmts[i+1:])
			}
		}
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				c.scanList(n.List)
				return false
			case *ast.FuncLit:
				c.scanList(n.Body.List)
				return false
			case *ast.CaseClause:
				c.scanList(n.Body)
				return false
			case *ast.CommClause:
				c.scanList(n.Body)
				return false
			}
			return true
		})
	}
}

// acquisition recognizes `res, err := x.Query(...)` / `stmt, err :=
// x.Prepare(...)` / `tx, err := x.Begin(...)` style short declarations
// whose first result type carries the matching release method.
func (c *closeWalk) acquisition(as *ast.AssignStmt) (res *ast.Ident, errName string, method string, ok bool) {
	if as.Tok.String() != ":=" || len(as.Rhs) != 1 {
		return nil, "", "", false
	}
	call, isCall := as.Rhs[0].(*ast.CallExpr)
	if !isCall {
		return nil, "", "", false
	}
	_, m, isMethod := methodCall(call)
	if !isMethod {
		return nil, "", "", false
	}
	if _, tracked := acquireMethods[m]; !tracked {
		return nil, "", "", false
	}
	id, isIdent := as.Lhs[0].(*ast.Ident)
	if !isIdent || id.Name == "_" {
		return nil, "", "", false
	}
	// Type gate: the first result must have one of the release methods.
	if c.pkg.Info != nil {
		t := firstResultType(c.pkg.Info, call)
		if t == nil {
			return nil, "", "", false
		}
		found := false
		for _, rel := range acquireMethods[m] {
			if hasMethod(t, rel) {
				found = true
				break
			}
		}
		if !found {
			return nil, "", "", false
		}
	}
	if len(as.Lhs) > 1 {
		if eid, isE := as.Lhs[1].(*ast.Ident); isE {
			errName = eid.Name
		}
	}
	return id, errName, m, true
}

// firstResultType returns the type of a call's first result, unwrapping
// multi-value tuples.
func firstResultType(info *types.Info, call *ast.CallExpr) types.Type {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tup, isTup := tv.Type.(*types.Tuple); isTup {
		if tup.Len() == 0 {
			return nil
		}
		return tup.At(0).Type()
	}
	return tv.Type
}

func (c *closeWalk) checkAcquisition(at *ast.AssignStmt, res *ast.Ident, errName, method string, rest []ast.Stmt) {
	release := acquireMethods[method]
	// The immediately following `if err != nil { return ... }` guards the
	// nil-resource case; returns inside it are exempt.
	if len(rest) > 0 && errName != "" {
		if ifs, ok := rest[0].(*ast.IfStmt); ok && ifs.Init == nil && mentionsIdent(ifs.Cond, errName) {
			rest = rest[1:]
		}
	}
	st := c.path(rest, res.Name, release, closeState{})
	if !st.done() {
		*c.diags = append(*c.diags, diag(c.prog, c.name(), at.Pos(),
			"%s from %s() in %s is not closed before the end of its scope", res.Name, method, c.fname))
	}
}

// path walks a statement list tracking whether the resource has been
// resolved, flagging returns that leak it.
func (c *closeWalk) path(stmts []ast.Stmt, res string, release []string, st closeState) closeState {
	for _, s := range stmts {
		if st.resolved || st.terminated {
			return st
		}
		switch s := s.(type) {
		case *ast.ExprStmt:
			if c.isRelease(s.X, res, release) {
				st.resolved = true
				continue
			}
			if isPanicCall(s.X) {
				st.terminated = true
				continue
			}
			if c.escapes(s, res) {
				st.resolved = true
			}
		case *ast.DeferStmt:
			if c.isRelease(s.Call, res, release) || c.deferredViaClosure(s.Call, res, release) {
				st.deferred = true
				continue
			}
			// A deferred call that receives the resource (as an argument,
			// or captured by a deferred closure) owns its resolution:
			// `defer func() { finish(sp, ...) }()`.
			for _, a := range s.Call.Args {
				if usesOutsideReceiver(a, res) {
					st.deferred = true
				}
			}
			if fl, isLit := s.Call.Fun.(*ast.FuncLit); isLit && mentionsIdent(fl.Body, res) {
				st.deferred = true
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if c.isRelease(r, res, release) {
					st.resolved = true // return rs.Close() / return tx.Commit()
				} else if usesOutsideReceiver(r, res) {
					st.resolved = true // ownership transfers to the caller
				}
			}
			if !st.resolved && !st.deferred {
				*c.diags = append(*c.diags, diag(c.prog, c.name(), s.Pos(),
					"return in %s leaks %s: no %s on this path", c.fname, res, releaseNames(release)))
			}
			st.terminated = true
			return st
		case *ast.IfStmt:
			b := c.path(s.Body.List, res, release, st)
			e := st
			hasElse := s.Else != nil
			if hasElse {
				switch el := s.Else.(type) {
				case *ast.BlockStmt:
					e = c.path(el.List, res, release, st)
				case *ast.IfStmt:
					e = c.path([]ast.Stmt{el}, res, release, st)
				}
			}
			if hasElse && b.done() && e.done() {
				switch {
				case b.terminated && !e.terminated:
					st = e
				case e.terminated && !b.terminated:
					st = b
				case b.resolved && e.resolved:
					st.resolved = true
				case b.deferred && e.deferred:
					st.deferred = true
				case b.terminated && e.terminated:
					st.terminated = true
				}
			}
		case *ast.BlockStmt:
			st = c.path(s.List, res, release, st)
		case *ast.LabeledStmt:
			st = c.path([]ast.Stmt{s.Stmt}, res, release, st)
		case *ast.ForStmt:
			c.path(s.Body.List, res, release, st)
		case *ast.RangeStmt:
			c.path(s.Body.List, res, release, st)
		case *ast.SwitchStmt:
			c.pathClauses(s.Body, res, release, st)
		case *ast.TypeSwitchStmt:
			c.pathClauses(s.Body, res, release, st)
		case *ast.SelectStmt:
			c.pathClauses(s.Body, res, release, st)
		default:
			if c.escapes(s, res) {
				st.resolved = true
			}
		}
	}
	return st
}

func (c *closeWalk) pathClauses(body *ast.BlockStmt, res string, release []string, st closeState) {
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			c.path(cl.Body, res, release, st)
		case *ast.CommClause:
			c.path(cl.Body, res, release, st)
		}
	}
}

// isRelease recognizes res.Close() / res.Commit() / res.Rollback().
func (c *closeWalk) isRelease(e ast.Expr, res string, release []string) bool {
	recv, m, ok := methodCall(e)
	if !ok {
		return false
	}
	id, isIdent := recv.(*ast.Ident)
	if !isIdent || id.Name != res {
		return false
	}
	for _, rel := range release {
		if m == rel {
			return true
		}
	}
	return false
}

// deferredViaClosure recognizes `defer func() { ... res.Close() ... }()`.
func (c *closeWalk) deferredViaClosure(call *ast.CallExpr, res string, release []string) bool {
	fl, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if e, isExpr := n.(ast.Expr); isExpr && c.isRelease(e, res, release) {
			found = true
			return false
		}
		return true
	})
	return found
}

// escapes reports whether the statement hands the resource to something
// that outlives the scope: a call argument, an assignment target other
// than the resource itself, a composite literal, a channel send, a
// goroutine, or taking its address. Method calls ON the resource
// (res.Next(), res.Err()) are not escapes.
func (c *closeWalk) escapes(s ast.Stmt, res string) bool {
	escaped := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if usesOutsideReceiver(arg, res) {
					escaped = true
				}
			}
			return true
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if usesOutsideReceiver(r, res) {
					escaped = true
				}
			}
			return true
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if usesOutsideReceiver(el, res) {
					escaped = true
				}
			}
			return true
		case *ast.UnaryExpr:
			if n.Op.String() == "&" && usesOutsideReceiver(n.X, res) {
				escaped = true
			}
			return true
		case *ast.SendStmt:
			if usesOutsideReceiver(n.Value, res) {
				escaped = true
			}
			return true
		case *ast.GoStmt:
			if mentionsIdent(n.Call, res) {
				escaped = true
			}
			return false
		case *ast.FuncLit:
			if mentionsIdent(n.Body, res) {
				escaped = true
			}
			return false
		}
		return true
	})
	return escaped
}

// usesOutsideReceiver reports whether the expression uses the named ident
// anywhere other than as the receiver of a method call: `rows` or
// `f(rows)` count, `rows.Err()` does not.
func usesOutsideReceiver(n ast.Node, name string) bool {
	if n == nil {
		return false
	}
	found := false
	var walk func(ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(nn ast.Node) bool {
			if found {
				return false
			}
			if call, ok := nn.(*ast.CallExpr); ok {
				if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
					if id, isID := sel.X.(*ast.Ident); isID && id.Name == name {
						for _, a := range call.Args {
							walk(a)
						}
						return false
					}
				}
			}
			if id, ok := nn.(*ast.Ident); ok && id.Name == name {
				found = true
			}
			return !found
		})
	}
	walk(n)
	return found
}

func mentionsIdent(n ast.Node, name string) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(nn ast.Node) bool {
		if id, ok := nn.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func releaseNames(release []string) string {
	out := ""
	for i, r := range release {
		if i > 0 {
			out += "/"
		}
		out += r
	}
	return out
}
