package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// snakeRe is the metric-name shape /metrics scraping and the dashboards
// documented in docs/OBSERVABILITY.md rely on.
var snakeRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// histUnitSuffixes are the unit suffixes a histogram name must carry so
// readers know what the observed values measure.
var histUnitSuffixes = []string{"_ns", "_us", "_ms", "_seconds", "_bytes"}

// Metricnames returns the metric-naming analyzer: every registration on an
// obs.Registry (Counter/Gauge/Histogram with a constant name) must be
// snake_case; counters must end _total; histograms must end in a unit
// suffix and must not end _total/_count/_sum (WritePrometheus emits
// <name>_count and <name>_sum series, so those suffixes would collide);
// gauges must not pretend to be monotonic with a _total suffix.
//
// Only non-test files are checked — tests register throwaway names on
// private registries that never reach /metrics.
func Metricnames() *Analyzer {
	const name = "metricnames"
	return &Analyzer{
		Name: name,
		Doc:  "obs metric names must be snake_case with _total (counters) / unit suffixes (histograms)",
		Run: func(prog *Program) []Diagnostic {
			var out []Diagnostic
			for _, pkg := range prog.Packages {
				for _, f := range pkg.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok || len(call.Args) == 0 {
							return true
						}
						recv, m, isMethod := methodCall(call)
						if !isMethod || (m != "Counter" && m != "Gauge" && m != "Histogram") {
							return true
						}
						if !isObsRegistry(pkg, recv) {
							return true
						}
						metric, found := constString(pkg, call.Args[0])
						if !found {
							metric, found = literalString(call.Args[0])
						}
						if !found {
							return true
						}
						if msg := checkMetricName(m, metric); msg != "" {
							out = append(out, diag(prog, name, call.Args[0].Pos(), "%s", msg))
						}
						return true
					})
				}
			}
			return out
		},
	}
}

// isObsRegistry reports whether the receiver expression is an
// obs.Registry (by type when available, by the obs.Default idiom as a
// syntactic fallback).
func isObsRegistry(pkg *Package, recv ast.Expr) bool {
	ts := typeString(pkg.Info, recv)
	if ts != "" {
		ts = strings.TrimPrefix(ts, "*")
		return ts == "perfdmf/internal/obs.Registry"
	}
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		if id, isID := sel.X.(*ast.Ident); isID && id.Name == "obs" && sel.Sel.Name == "Default" {
			return true
		}
	}
	if id, ok := recv.(*ast.Ident); ok && id.Name == "Default" {
		return true
	}
	return false
}

func checkMetricName(kind, metric string) string {
	if !snakeRe.MatchString(metric) {
		return "metric name " + quoteName(metric) + " is not snake_case ([a-z0-9_], starting with a letter)"
	}
	switch kind {
	case "Counter":
		if !strings.HasSuffix(metric, "_total") {
			return "counter " + quoteName(metric) + " must end in _total (monotonic counters carry the _total suffix)"
		}
	case "Gauge":
		if strings.HasSuffix(metric, "_total") {
			return "gauge " + quoteName(metric) + " must not end in _total (that suffix marks monotonic counters)"
		}
		if strings.HasSuffix(metric, "_count") || strings.HasSuffix(metric, "_sum") {
			return "gauge " + quoteName(metric) + " collides with histogram exposition suffixes _count/_sum"
		}
	case "Histogram":
		if strings.HasSuffix(metric, "_total") || strings.HasSuffix(metric, "_count") || strings.HasSuffix(metric, "_sum") {
			return "histogram " + quoteName(metric) + " must not end in _total/_count/_sum (WritePrometheus appends _count and _sum series)"
		}
		ok := false
		for _, s := range histUnitSuffixes {
			if strings.HasSuffix(metric, s) {
				ok = true
				break
			}
		}
		if !ok {
			return "histogram " + quoteName(metric) + " needs a unit suffix (" + strings.Join(histUnitSuffixes, ", ") + ") so readers know what is observed"
		}
	}
	return ""
}

// quoteName quotes a metric name for a diagnostic message.
func quoteName(s string) string { return "\"" + s + "\"" }
