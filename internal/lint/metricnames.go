package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// snakeRe is the metric-name shape /metrics scraping and the dashboards
// documented in docs/OBSERVABILITY.md rely on.
var snakeRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// partRe is the relaxed shape for a constant fragment of a concatenated
// name ("formats_parse_" + f + "_ns"): underscores may sit at fragment
// boundaries, so only the character set is checked per fragment.
var partRe = regexp.MustCompile(`^[a-z0-9_]*$`)

// histUnitSuffixes are the unit suffixes a histogram name must carry so
// readers know what the observed values measure. _rows marks count-valued
// histograms (batch sizes, parsed data points).
var histUnitSuffixes = []string{"_ns", "_us", "_ms", "_seconds", "_bytes", "_rows"}

// metricFamilies are the reserved instrumentation namespaces the dashboards
// group by. A name inside one must name a concrete member — the family
// prefix plus only kind/unit suffixes ("obs_catalog_total") says nothing
// about what is being measured.
// Order matters: checkFamilyMember takes the first matching family, so a
// family that extends another ("obs_telemetry_governor" inside
// "obs_telemetry") must come first — otherwise its names would be judged
// against the shorter prefix and "obs_telemetry_governor_total" would pass
// with "governor" as the member.
var metricFamilies = []string{
	"obs_alerts",
	"obs_catalog",
	"obs_history",
	"obs_telemetry_governor",
	"obs_telemetry",
	"sqlexec_stmt",
	"sqlexec_plan_cache",
	"sqlexec_columnar",
	"reldb_segment",
}

// suffixTokens are the trailing name components reserved for kind and unit
// markers; they never count as the member part of a family name.
var suffixTokens = map[string]bool{
	"total": true, "count": true, "sum": true,
	"ns": true, "us": true, "ms": true, "seconds": true,
	"bytes": true, "rows": true,
}

// Metricnames returns the metric-naming analyzer: every registration on an
// obs.Registry (Counter/Gauge/Histogram with a constant name) must be
// snake_case; counters must end _total; histograms must end in a unit
// suffix and must not end _total/_count/_sum (WritePrometheus emits
// <name>_count and <name>_sum series, so those suffixes would collide);
// gauges must not pretend to be monotonic with a _total suffix. Names in a
// reserved family namespace (obs_alerts_*, obs_catalog_*, obs_history_*,
// obs_telemetry_*, obs_telemetry_governor_*, sqlexec_stmt_*,
// sqlexec_plan_cache_*) must name a concrete member beyond the family prefix
// and suffix tokens.
//
// Names built by concatenation around dynamic parts — the per-format
// family idiom, "formats_parse_" + f + "_ns" — are checked by fragment:
// every constant fragment must stay in the snake_case character set, the
// name must start with a letter when its head is constant, and the suffix
// rules apply whenever the tail fragment is constant. Dynamic fragments
// themselves are trusted.
//
// Only non-test files are checked — tests register throwaway names on
// private registries that never reach /metrics.
func Metricnames() *Analyzer {
	const name = "metricnames"
	return &Analyzer{
		Name: name,
		Doc:  "obs metric names must be snake_case with _total (counters) / unit suffixes (histograms)",
		Run: func(prog *Program) []Diagnostic {
			var out []Diagnostic
			for _, pkg := range prog.Packages {
				for _, f := range pkg.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok || len(call.Args) == 0 {
							return true
						}
						recv, m, isMethod := methodCall(call)
						if !isMethod || (m != "Counter" && m != "Gauge" && m != "Histogram") {
							return true
						}
						if !isObsRegistry(pkg, recv) {
							return true
						}
						if metric, found := constString(pkg, call.Args[0]); found {
							if msg := checkMetricName(m, metric); msg != "" {
								out = append(out, diag(prog, name, call.Args[0].Pos(), "%s", msg))
							}
							return true
						}
						parts := nameParts(pkg, call.Args[0])
						if msg := checkPartialName(m, parts); msg != "" {
							out = append(out, diag(prog, name, call.Args[0].Pos(), "%s", msg))
						}
						return true
					})
				}
			}
			return out
		},
	}
}

// isObsRegistry reports whether the receiver expression is an
// obs.Registry (by type when available, by the obs.Default idiom as a
// syntactic fallback).
func isObsRegistry(pkg *Package, recv ast.Expr) bool {
	ts := typeString(pkg.Info, recv)
	if ts != "" {
		ts = strings.TrimPrefix(ts, "*")
		return ts == "perfdmf/internal/obs.Registry"
	}
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		if id, isID := sel.X.(*ast.Ident); isID && id.Name == "obs" && sel.Sel.Name == "Default" {
			return true
		}
	}
	if id, ok := recv.(*ast.Ident); ok && id.Name == "Default" {
		return true
	}
	return false
}

func checkMetricName(kind, metric string) string {
	if !snakeRe.MatchString(metric) {
		return "metric name " + quoteName(metric) + " is not snake_case ([a-z0-9_], starting with a letter)"
	}
	if msg := checkFamilyMember(metric); msg != "" {
		return msg
	}
	switch kind {
	case "Counter":
		if !strings.HasSuffix(metric, "_total") {
			return "counter " + quoteName(metric) + " must end in _total (monotonic counters carry the _total suffix)"
		}
	case "Gauge":
		if strings.HasSuffix(metric, "_total") {
			return "gauge " + quoteName(metric) + " must not end in _total (that suffix marks monotonic counters)"
		}
		if strings.HasSuffix(metric, "_count") || strings.HasSuffix(metric, "_sum") {
			return "gauge " + quoteName(metric) + " collides with histogram exposition suffixes _count/_sum"
		}
	case "Histogram":
		if strings.HasSuffix(metric, "_total") || strings.HasSuffix(metric, "_count") || strings.HasSuffix(metric, "_sum") {
			return "histogram " + quoteName(metric) + " must not end in _total/_count/_sum (WritePrometheus appends _count and _sum series)"
		}
		ok := false
		for _, s := range histUnitSuffixes {
			if strings.HasSuffix(metric, s) {
				ok = true
				break
			}
		}
		if !ok {
			return "histogram " + quoteName(metric) + " needs a unit suffix (" + strings.Join(histUnitSuffixes, ", ") + ") so readers know what is observed"
		}
	}
	return ""
}

// checkFamilyMember rejects names that sit inside a reserved family but
// consist only of the family prefix and kind/unit suffix tokens: such a
// name groups on the dashboard without saying what it measures.
func checkFamilyMember(metric string) string {
	for _, fam := range metricFamilies {
		var member string
		switch {
		case metric == fam:
			member = ""
		case strings.HasPrefix(metric, fam+"_"):
			member = metric[len(fam)+1:]
		default:
			continue
		}
		toks := strings.Split(member, "_")
		for len(toks) > 0 && (toks[len(toks)-1] == "" || suffixTokens[toks[len(toks)-1]]) {
			toks = toks[:len(toks)-1]
		}
		if len(toks) == 0 {
			return "metric " + quoteName(metric) + " names the " + fam + " family but no member (say what is measured before the suffix)"
		}
		return ""
	}
	return ""
}

// quoteName quotes a metric name for a diagnostic message.
func quoteName(s string) string { return "\"" + s + "\"" }

// namePart is one fragment of a concatenated metric-name expression:
// resolved constant text, or a dynamic placeholder (known=false).
type namePart struct {
	text  string
	known bool
}

// nameParts flattens a string-concatenation expression into fragments,
// resolving each operand through the type checker (or syntactically when
// type info is absent). Anything unresolvable becomes a dynamic fragment.
func nameParts(pkg *Package, e ast.Expr) []namePart {
	if s, ok := constString(pkg, e); ok {
		return []namePart{{text: s, known: true}}
	}
	if s, ok := literalString(e); ok {
		return []namePart{{text: s, known: true}}
	}
	if bin, ok := e.(*ast.BinaryExpr); ok && bin.Op == token.ADD {
		return append(nameParts(pkg, bin.X), nameParts(pkg, bin.Y)...)
	}
	return []namePart{{known: false}}
}

// checkPartialName applies the naming rules to a fragmented name. With
// every fragment known it degenerates to checkMetricName; otherwise the
// character-set rule covers each constant fragment and the prefix/suffix
// rules fire only when the respective end of the name is constant.
func checkPartialName(kind string, parts []namePart) string {
	parts = mergeKnown(parts)
	if len(parts) == 0 {
		return ""
	}
	if len(parts) == 1 && parts[0].known {
		return checkMetricName(kind, parts[0].text)
	}
	display := displayName(parts)
	for _, p := range parts {
		if !p.known {
			continue
		}
		if !partRe.MatchString(p.text) {
			return "metric name " + quoteName(display) + " is not snake_case ([a-z0-9_], starting with a letter)"
		}
		if strings.Contains(p.text, "__") {
			return "metric name " + quoteName(display) + " contains a doubled underscore"
		}
	}
	if head := parts[0]; head.known && head.text != "" && (head.text[0] < 'a' || head.text[0] > 'z') {
		return "metric name " + quoteName(display) + " is not snake_case ([a-z0-9_], starting with a letter)"
	}
	if tail := parts[len(parts)-1]; tail.known && tail.text != "" {
		return checkNameSuffix(kind, display, tail.text)
	}
	return ""
}

// checkNameSuffix enforces the per-kind suffix rules on a name whose tail
// is the constant string suffix (used when only the tail is resolvable).
func checkNameSuffix(kind, display, suffix string) string {
	switch kind {
	case "Counter":
		if !strings.HasSuffix(suffix, "_total") {
			return "counter " + quoteName(display) + " must end in _total (monotonic counters carry the _total suffix)"
		}
	case "Gauge":
		if strings.HasSuffix(suffix, "_total") {
			return "gauge " + quoteName(display) + " must not end in _total (that suffix marks monotonic counters)"
		}
		if strings.HasSuffix(suffix, "_count") || strings.HasSuffix(suffix, "_sum") {
			return "gauge " + quoteName(display) + " collides with histogram exposition suffixes _count/_sum"
		}
	case "Histogram":
		if strings.HasSuffix(suffix, "_total") || strings.HasSuffix(suffix, "_count") || strings.HasSuffix(suffix, "_sum") {
			return "histogram " + quoteName(display) + " must not end in _total/_count/_sum (WritePrometheus appends _count and _sum series)"
		}
		ok := false
		for _, s := range histUnitSuffixes {
			if strings.HasSuffix(suffix, s) {
				ok = true
				break
			}
		}
		if !ok {
			return "histogram " + quoteName(display) + " needs a unit suffix (" + strings.Join(histUnitSuffixes, ", ") + ") so readers know what is observed"
		}
	}
	return ""
}

// mergeKnown collapses runs of adjacent constant fragments so boundary
// artifacts ("parse_" + "_ns" joining into "parse__ns") are visible to the
// per-fragment checks.
func mergeKnown(parts []namePart) []namePart {
	var out []namePart
	for _, p := range parts {
		if p.known && len(out) > 0 && out[len(out)-1].known {
			out[len(out)-1].text += p.text
			continue
		}
		out = append(out, p)
	}
	return out
}

// displayName renders a fragmented name for diagnostics, with "*" standing
// in for each dynamic fragment: formats_parse_*_ns.
func displayName(parts []namePart) string {
	var b strings.Builder
	for _, p := range parts {
		if p.known {
			b.WriteString(p.text)
		} else {
			b.WriteByte('*')
		}
	}
	return b.String()
}
