package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// atomiccheck enforces that a memory location is either always accessed
// atomically or never: mixing the two races even when each side looks
// locally correct (the plain access tears or reorders against the atomic
// one). Two rules, both module-wide:
//
//  1. A struct field or package-level variable whose address is passed to
//     a raw sync/atomic function (atomic.AddInt64(&x.n, 1), ...) anywhere
//     must never be read or written plainly elsewhere.
//  2. A field or variable of a typed atomic (atomic.Int64, atomic.Bool,
//     atomic.Pointer[T], atomic.Value, ...) may only be used as a method
//     receiver or have its address taken — copying or comparing the
//     struct by value smuggles out a non-atomic snapshot (and go vet's
//     copylocks only catches some spellings).
//
// This is what guards the columnar segment publication pointer
// (reldb.Table.colSeg), the StmtEntry phase/row counters, and the
// telemetry governor gauges. Deliberately *plain* fields protected by a
// mutex (reldb.Table.version, dataVersion) are fine: they are never
// touched through sync/atomic, so rule 1 never claims them.
func Atomiccheck() *Analyzer {
	return &Analyzer{
		Name: "atomiccheck",
		Doc:  "a location accessed via sync/atomic must never be accessed plainly elsewhere",
		Run:  runAtomiccheck,
	}
}

// atomicTypeNames are the typed atomics of package sync/atomic.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// isAtomicType reports whether t is (a pointer to) a sync/atomic typed
// atomic.
func isAtomicType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	return atomicTypeNames[obj.Name()]
}

// isRawAtomicFunc reports whether a call is to a raw sync/atomic function
// (AddInt64, LoadPointer, CompareAndSwapUint32, ...).
func isRawAtomicFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// trackableVar resolves an expression to the struct field or
// package-level variable it denotes, or nil (locals, temporaries).
func trackableVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.ParenExpr:
		return trackableVar(info, e.X)
	}
	return nil
}

func runAtomiccheck(prog *Program) []Diagnostic {
	// Pass 1: collect every field/package var whose address reaches a raw
	// sync/atomic call, module-wide.
	rawAtomic := make(map[*types.Var]string) // var → atomic function name seen
	for _, pkg := range prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isRawAtomicFunc(pkg.Info, call) {
					return true
				}
				fname := call.Fun.(*ast.SelectorExpr).Sel.Name
				for _, arg := range call.Args {
					ue, isAddr := arg.(*ast.UnaryExpr)
					if !isAddr || ue.Op.String() != "&" {
						continue
					}
					if v := trackableVar(pkg.Info, ue.X); v != nil {
						if _, seen := rawAtomic[v]; !seen {
							rawAtomic[v] = "atomic." + fname
						}
					}
				}
				return true
			})
		}
	}

	// Pass 2: flag plain accesses of raw-atomic locations and non-receiver
	// uses of typed atomics.
	var out []Diagnostic
	for _, pkg := range prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			sanctioned := sanctionedAtomicUses(pkg.Info, f)
			ast.Inspect(f, func(n ast.Node) bool {
				e, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				switch e.(type) {
				case *ast.SelectorExpr, *ast.Ident:
				default:
					return true
				}
				v := trackableVar(pkg.Info, e)
				if v == nil {
					return true
				}
				if fn, isRaw := rawAtomic[v]; isRaw && !sanctioned[e] {
					out = append(out, diag(prog, "atomiccheck", e.Pos(),
						"plain access of %s, which is accessed via %s elsewhere: every access must be atomic", v.Name(), fn))
					return false
				}
				if isAtomicType(v.Type()) && !sanctioned[e] {
					out = append(out, diag(prog, "atomiccheck", e.Pos(),
						"%s copies/compares the typed atomic %s by value: use its methods or take its address", v.Name(), v.Type().String()))
					return false
				}
				return true
			})
		}
	}
	sortDiags(out)
	return out
}

// sanctionedAtomicUses marks the expression positions where touching an
// atomic location is legitimate: as a method-call receiver (x.n.Load()),
// under an address-of (&x.n — this is how raw atomics and helper passing
// work; the pointee is then governed at the pointer's use sites), as a
// composite-literal field key (S{n: ...} zero-value initialization before
// publication), or as the operand of a selector that itself resolves
// deeper (x.stats.n: the outer selector is just a path step).
func sanctionedAtomicUses(info *types.Info, f *ast.File) map[ast.Expr]bool {
	ok := make(map[ast.Expr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, isSel := n.Fun.(*ast.SelectorExpr); isSel {
				if info.Selections[sel] != nil {
					ok[sel.X] = true // method receiver
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				ok[n.X] = true
			}
		case *ast.SelectorExpr:
			ok[n.X] = true // path step: x in x.field
		case *ast.KeyValueExpr:
			ok[n.Key] = true // composite-literal field name
		}
		return true
	})
	return ok
}

// sortDiags orders diagnostics by position for deterministic output.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
}
