// Package lint is perfdmf-vet's analysis engine: a small, stdlib-only
// (go/parser + go/ast + go/types) static-analysis framework plus the five
// repo-native analyzers that machine-check the invariants PerfDMF's
// correctness rests on — lock discipline in reldb, Rows/Stmt/Tx lifecycle
// in godbc callers, SQL-literal well-formedness, bitwise-deterministic
// parallel execution, and the metric naming convention /metrics scraping
// relies on. See docs/STATIC_ANALYSIS.md for what each analyzer enforces
// and how to extend the suite.
//
// A diagnostic can be suppressed where a violation is deliberate by
// putting a justification comment on the flagged line or the line above:
//
//	db.mu.Lock() //lint:allow lockcheck -- Begin returns holding the lock
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check run over a loaded program.
type Analyzer struct {
	// Name is the analyzer's identifier, used by -analyzers selection and
	// by //lint:allow comments.
	Name string
	// Doc is a one-line description shown by perfdmf-vet -list.
	Doc string
	// Run inspects the program and returns raw findings; the driver
	// applies //lint:allow suppression afterwards.
	Run func(prog *Program) []Diagnostic
}

// Diagnostic is one finding, positioned so editors can jump to it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// diag builds a Diagnostic from a node position.
func diag(prog *Program, name string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      prog.Fset.Position(pos),
		Analyzer: name,
		Message:  fmt.Sprintf(format, args...),
	}
}

// allowRe matches suppression comments: //lint:allow <name>[,<name>...] [-- reason]
var allowRe = regexp.MustCompile(`//\s*lint:allow\s+([a-z0-9_,]+)`)

// allowedLines collects, per file, the set of (line, analyzer) pairs that
// //lint:allow comments suppress. A comment suppresses its own line and,
// when it is the only thing on its line, the line below it.
func allowedLines(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	mark := func(file string, line int, names []string) {
		byLine := out[file]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			out[file] = byLine
		}
		set := byLine[line]
		if set == nil {
			set = make(map[string]bool)
			byLine[line] = set
		}
		for _, n := range names {
			set[strings.TrimSpace(n)] = true
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := strings.Split(m[1], ",")
				pos := fset.Position(c.Pos())
				mark(pos.Filename, pos.Line, names)
				mark(pos.Filename, pos.Line+1, names)
			}
		}
	}
	return out
}

// Run executes the analyzers over the program and returns the surviving
// diagnostics sorted by position.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var files []*ast.File
	for _, p := range prog.Packages {
		files = append(files, p.Files...)
		files = append(files, p.TestFiles...)
	}
	allowed := allowedLines(prog.Fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(prog) {
			if set := allowed[d.Pos.Filename][d.Pos.Line]; set != nil && (set[a.Name] || set["all"]) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Lockcheck(),
		Closecheck(),
		Sqlcheck(),
		Determinism(),
		Metricnames(),
	}
}
