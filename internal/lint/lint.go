// Package lint is perfdmf-vet's analysis engine: a small, stdlib-only
// (go/parser + go/ast + go/types) static-analysis framework plus the nine
// repo-native analyzers that machine-check the invariants PerfDMF's
// correctness rests on — lock discipline in reldb, Rows/Stmt/Tx lifecycle
// in godbc callers, SQL-literal well-formedness, bitwise-deterministic
// parallel execution, the metric naming convention /metrics scraping
// relies on, and the concurrency suite (global lock ordering,
// atomic/plain access mixing, scan-loop cancellation polling, span and
// goroutine lifecycle). See docs/STATIC_ANALYSIS.md for what each
// analyzer enforces and how to extend the suite.
//
// A diagnostic can be suppressed where a violation is deliberate by
// putting a justification comment on the flagged line or the line above:
//
//	db.mu.Lock() //lint:allow lockcheck -- Begin returns holding the lock
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check run over a loaded program.
type Analyzer struct {
	// Name is the analyzer's identifier, used by -analyzers selection and
	// by //lint:allow comments.
	Name string
	// Doc is a one-line description shown by perfdmf-vet -list.
	Doc string
	// Run inspects the program and returns raw findings; the driver
	// applies //lint:allow suppression afterwards.
	Run func(prog *Program) []Diagnostic
}

// Diagnostic is one finding, positioned so editors can jump to it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// diag builds a Diagnostic from a node position.
func diag(prog *Program, name string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      prog.Fset.Position(pos),
		Analyzer: name,
		Message:  fmt.Sprintf(format, args...),
	}
}

// allowRe matches suppression comments: //lint:allow <name>[,<name>...]
// [-- reason]. Anchored to the start of the comment token so prose that
// merely *mentions* the syntax (doc comments, examples) is not an allow.
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([a-z0-9_,]+)`)

// allowComment is one //lint:allow comment instance. It suppresses
// findings on its own line and the line below; the used flag feeds the
// dead-suppression check.
type allowComment struct {
	pos   token.Position
	names []string
	used  bool
}

// covers reports whether the comment suppresses the named analyzer.
func (ac *allowComment) covers(name string) bool {
	for _, n := range ac.names {
		if n == name || n == "all" {
			return true
		}
	}
	return false
}

// allowIndex maps file → line → the allow comments covering that line.
type allowIndex struct {
	byLine map[string]map[int][]*allowComment
	all    []*allowComment
}

// collectAllows finds every //lint:allow comment in the files.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{byLine: make(map[string]map[int][]*allowComment)}
	mark := func(ac *allowComment, file string, line int) {
		byLine := idx.byLine[file]
		if byLine == nil {
			byLine = make(map[int][]*allowComment)
			idx.byLine[file] = byLine
		}
		byLine[line] = append(byLine[line], ac)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				var names []string
				for _, n := range strings.Split(m[1], ",") {
					names = append(names, strings.TrimSpace(n))
				}
				ac := &allowComment{pos: fset.Position(c.Pos()), names: names}
				idx.all = append(idx.all, ac)
				mark(ac, ac.pos.Filename, ac.pos.Line)
				mark(ac, ac.pos.Filename, ac.pos.Line+1)
			}
		}
	}
	return idx
}

// suppress reports whether an allow comment covers the diagnostic, marking
// the matching comment as used.
func (idx *allowIndex) suppress(d Diagnostic, analyzer string) bool {
	hit := false
	for _, ac := range idx.byLine[d.Pos.Filename][d.Pos.Line] {
		if ac.covers(analyzer) {
			ac.used = true
			hit = true
		}
	}
	return hit
}

// deadAllows reports every allow comment that suppressed nothing even
// though every analyzer it names was part of this run — a stale
// suppression that would silently mask a future regression. Comments
// naming analyzers outside the run set are skipped: a partial -analyzers
// run cannot prove them dead.
func (idx *allowIndex) deadAllows(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, ac := range idx.all {
		if ac.used {
			continue
		}
		covered := true
		for _, n := range ac.names {
			if n != "all" && !ran[n] {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      ac.pos,
			Analyzer: "deadallow",
			Message: fmt.Sprintf("//lint:allow %s suppresses nothing; remove the stale comment",
				strings.Join(ac.names, ",")),
		})
	}
	return out
}

// Run executes the analyzers over the program and returns the surviving
// diagnostics sorted by position. It also enforces the dead-suppression
// rule: a //lint:allow comment whose analyzers all ran but that
// suppressed no finding is itself reported (as analyzer "deadallow").
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var files []*ast.File
	for _, p := range prog.Packages {
		files = append(files, p.Files...)
		files = append(files, p.TestFiles...)
	}
	allows := collectAllows(prog.Fset, files)
	ran := make(map[string]bool, len(analyzers))
	var out []Diagnostic
	for _, a := range analyzers {
		ran[a.Name] = true
		for _, d := range a.Run(prog) {
			if allows.suppress(d, a.Name) {
				continue
			}
			out = append(out, d)
		}
	}
	for _, d := range allows.deadAllows(ran) {
		if allows.suppress(d, "deadallow") {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Lockcheck(),
		Closecheck(),
		Sqlcheck(),
		Determinism(),
		Metricnames(),
		Lockorder(),
		Atomiccheck(),
		Ctxpoll(),
		Lifecycle(),
	}
}

// Global names the whole-program analyzers (interprocedural graphs over
// the full module); the rest are per-package checks. `make lint` runs the
// fast set, `make lint-global` this set.
var Global = map[string]bool{
	"lockorder": true,
	"lifecycle": true,
}
