package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strconv"
	"strings"

	"perfdmf/internal/sqlparse"
)

// sqlMethods are the godbc entry points that take SQL text as their first
// argument. For Query and Exec the remaining arguments must match the
// statement's placeholder count; Prepare binds its arguments later, so
// only the syntax is checked there.
var sqlMethods = map[string]bool{"Query": true, "Exec": true, "Prepare": true}

// Sqlcheck returns the SQL-literal analyzer: every string constant passed
// to Query/Exec/Prepare — across cmd/, internal/, examples/, and tests —
// must parse with internal/sqlparse, and for Query/Exec the number of `?`
// placeholders must equal the number of bind arguments at the call.
//
// Only constant SQL is checked; calls whose SQL is built at run time
// (fmt.Sprintf, string vars, concatenation with non-constant parts) are
// skipped — the analyzer cannot know the final text.
func Sqlcheck() *Analyzer {
	const name = "sqlcheck"
	return &Analyzer{
		Name: name,
		Doc:  "SQL literals passed to Query/Exec/Prepare must parse and match their placeholder count",
		Run: func(prog *Program) []Diagnostic {
			var out []Diagnostic
			forEachSQLLiteral(prog, func(pkg *Package, call *ast.CallExpr, method, sql string) {
				pos := call.Args[0].Pos()
				if _, err := sqlparse.ParseScript(sql); err != nil {
					out = append(out, diag(prog, name, pos, "SQL does not parse: %v", err))
					return
				}
				if method == "Prepare" {
					return
				}
				// Variadic forwarding (Query(sql, args...)) hides the count.
				if call.Ellipsis != token.NoPos {
					return
				}
				want := countPlaceholders(sql)
				got := len(call.Args) - 1
				if want != got {
					out = append(out, diag(prog, name, pos,
						"%s has %d placeholder(s) but the call passes %d argument(s)", method, want, got))
				}
			})
			return out
		},
	}
}

// ExtractSQL returns every constant SQL literal the analyzer would check,
// deduplicated and sorted by first appearance — the seed corpus for the
// sqlparse fuzz target (perfdmf-vet -dump-sql).
func ExtractSQL(prog *Program) []string {
	seen := make(map[string]bool)
	var out []string
	forEachSQLLiteral(prog, func(_ *Package, _ *ast.CallExpr, _, sql string) {
		if !seen[sql] {
			seen[sql] = true
			out = append(out, sql)
		}
	})
	return out
}

// forEachSQLLiteral visits every Query/Exec/Prepare call whose first
// argument folds to a string constant. Type-checked files use go/types
// constant folding (covers named consts and const concatenation); test
// files, which are parsed AST-only, fall back to syntactic literal
// folding.
func forEachSQLLiteral(prog *Program, visit func(pkg *Package, call *ast.CallExpr, method, sql string)) {
	for _, pkg := range prog.Packages {
		inspect := func(f *ast.File, typed bool) {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				_, m, isMethod := methodCall(call)
				if !isMethod || !sqlMethods[m] {
					return true
				}
				var sql string
				var found bool
				if typed && pkg.Info != nil {
					sql, found = constString(pkg, call.Args[0])
				}
				if !found {
					sql, found = literalString(call.Args[0])
				}
				if found {
					visit(pkg, call, m, sql)
				}
				return true
			})
		}
		for _, f := range pkg.Files {
			inspect(f, true)
		}
		for _, f := range pkg.TestFiles {
			inspect(f, false)
		}
	}
}

// constString resolves an expression to a string constant via the type
// checker, so `const q = "SELECT..."` and `q1 + q2` fold too.
func constString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// literalString folds syntactic string literals and their concatenations
// without type information.
func literalString(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(e.Value)
		if err != nil {
			return "", false
		}
		return s, true
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return "", false
		}
		l, okL := literalString(e.X)
		r, okR := literalString(e.Y)
		if !okL || !okR {
			return "", false
		}
		return l + r, true
	case *ast.ParenExpr:
		return literalString(e.X)
	}
	return "", false
}

// countPlaceholders counts `?` bind markers outside single-quoted strings
// and `--` line comments, mirroring how the sqlparse lexer sees them.
func countPlaceholders(sql string) int {
	n := 0
	for i := 0; i < len(sql); i++ {
		switch sql[i] {
		case '?':
			n++
		case '\'':
			for i++; i < len(sql) && sql[i] != '\''; i++ {
			}
		case '-':
			if i+1 < len(sql) && sql[i+1] == '-' {
				if nl := strings.IndexByte(sql[i:], '\n'); nl >= 0 {
					i += nl
				} else {
					i = len(sql)
				}
			}
		}
	}
	return n
}
