package lint

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// sharedLoader type-checks stdlib sources once for the whole test binary;
// golden packages share its cache.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		moduleDir, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(moduleDir)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

// wantRe matches // want "regex" expectation comments in golden files.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runGolden loads a testdata package, runs one analyzer through the full
// Run pipeline (so //lint:allow suppression is exercised too), and checks
// the diagnostics against the // want comments: every want must be hit,
// and every diagnostic must be wanted.
func runGolden(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	l := testLoader(t)
	prog, err := l.LoadDirs(filepath.Join("internal", "lint", "testdata", dir))
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}

	var wants []*expectation
	for _, pkg := range prog.Packages {
		files := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := prog.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("testdata/%s has no // want comments", dir)
	}

	diags := Run(prog, []*Analyzer{a})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic (false positive): %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestLockcheckGolden(t *testing.T) {
	a := LockcheckFor(LockcheckConfig{
		Packages:        []string{"perfdmf/internal/lint/testdata/lockcheck"},
		CommitAllowlist: []string{"Commit", "Checkpoint", "checkpointLocked"},
		WALTypes:        []string{"walWriter", "os.File"},
	})
	runGolden(t, a, "lockcheck")
}

func TestClosecheckGolden(t *testing.T) {
	runGolden(t, Closecheck(), "closecheck")
}

func TestSqlcheckGolden(t *testing.T) {
	runGolden(t, Sqlcheck(), "sqlcheck")
}

func TestDeterminismGolden(t *testing.T) {
	a := DeterminismFor([]string{"perfdmf/internal/lint/testdata/determinism"})
	runGolden(t, a, "determinism")
}

// TestDeterminismFileScopeGolden exercises the "pkg:filePrefix" scope form
// used for reldb's sealed-segment files: violations in segment* files are
// reported, the identical shapes in a sibling file are not.
func TestDeterminismFileScopeGolden(t *testing.T) {
	a := DeterminismFor([]string{"perfdmf/internal/lint/testdata/determinismscope:segment"})
	runGolden(t, a, "determinismscope")
}

func TestMetricnamesGolden(t *testing.T) {
	runGolden(t, Metricnames(), "metricnames")
}

func TestLockorderGolden(t *testing.T) {
	a := LockorderFor(LockorderConfig{
		Packages: []string{"perfdmf/internal/lint/testdata/lockorder"},
		Order: []string{
			"lockorder.regMu",
			"lockorder.DB.mu",
			"lockorder.Table.segMu",
		},
		HeldOnEntry: map[string][]string{
			"lockorder.Tx": {"lockorder.DB.mu"},
		},
	})
	runGolden(t, a, "lockorder")
}

func TestAtomiccheckGolden(t *testing.T) {
	runGolden(t, Atomiccheck(), "atomiccheck")
}

func TestCtxpollGolden(t *testing.T) {
	a := CtxpollFor(CtxpollConfig{
		Scopes:    []string{"perfdmf/internal/lint/testdata/ctxpoll"},
		RowTypes:  []string{"perfdmf/internal/lint/testdata/ctxpoll.Row"},
		SlotNames: []string{"slots"},
		ScanFuncs: []string{"Scan"},
		MaxStride: CtxpollMaxStride,
	})
	runGolden(t, a, "ctxpoll")
}

func TestLifecycleGolden(t *testing.T) {
	a := LifecycleFor(LifecycleConfig{
		StartSpanFuncs: []string{"perfdmf/internal/lint/testdata/lifecycle.StartSpan"},
		FinishMethods:  []string{"Finish"},
	})
	runGolden(t, a, "lifecycle")
}

// TestDeadallowGolden exercises the engine's dead-suppression rule: the
// fixture's stale //lint:allow closecheck comment must itself be
// reported, the used one must not, and an allow naming an analyzer
// outside the run set must be left alone.
func TestDeadallowGolden(t *testing.T) {
	runGolden(t, Closecheck(), "deadallow")
}

// TestAnalyzersHaveDocs keeps -list output usable.
func TestAnalyzersHaveDocs(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{
		"lockcheck", "closecheck", "sqlcheck", "determinism", "metricnames",
		"lockorder", "atomiccheck", "ctxpoll", "lifecycle",
	} {
		if !names[want] {
			t.Errorf("analyzer %q missing from All()", want)
		}
	}
}

// TestExtractSQL pins the -dump-sql seed path: literals from the golden
// package must round-trip out of the extractor.
func TestExtractSQL(t *testing.T) {
	l := testLoader(t)
	prog, err := l.LoadDirs(filepath.Join("internal", "lint", "testdata", "sqlcheck"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	sqls := ExtractSQL(prog)
	if len(sqls) == 0 {
		t.Fatal("no SQL extracted from testdata/sqlcheck")
	}
	found := false
	for _, s := range sqls {
		if s == "SELECT value FROM metrics WHERE trial = ?" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected literal missing from extraction; got %d literals", len(sqls))
	}
	seen := map[string]int{}
	for _, s := range sqls {
		seen[s]++
		if seen[s] > 1 {
			t.Errorf("duplicate literal in extraction: %q", s)
		}
	}
}
