package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorder builds a global mutex-acquisition graph: which lock classes
// are acquired while which others are held, across every function of the
// configured packages and, interprocedurally, everything they call inside
// the module. A lock class is a struct field or package-level variable of
// type sync.Mutex/sync.RWMutex, named like "reldb.DB.mu" or
// "godbc.driversMu"; local mutex variables are out of scope (they cannot
// participate in cross-function deadlocks).
//
// Three rules:
//
//  1. Every lock class discovered in the scoped packages must appear in
//     the declared ordering table (LockOrder) — adding a mutex to reldb,
//     godbc, obs or sqlexec forces the author to place it in the global
//     order.
//  2. An edge held→acquired must go outward→inward in the declared order:
//     acquiring a lock that is declared *outer* (or the same lock again)
//     while holding an inner one is reported.
//  3. Any cycle in the acquisition graph is reported, whether or not the
//     classes involved are ranked.
//
// Locks that escape their acquiring function by contract (reldb's
// Begin/Commit protocol) are invisible to the per-function walk; the
// HeldOnEntry table declares them instead: every method of the named
// receiver type is analyzed as if the listed locks were already held.

// LockorderConfig scopes the analyzer and declares the global order.
type LockorderConfig struct {
	// Packages whose function bodies seed the walk ("pkg" import paths).
	// The call graph still crosses into any module package.
	Packages []string
	// Order lists every known lock class, outermost (acquired first)
	// to innermost (acquired last, leaf locks).
	Order []string
	// HeldOnEntry maps a receiver type class (e.g. "reldb.Tx") to the
	// lock classes its methods hold by contract on entry.
	HeldOnEntry map[string][]string
}

// LockOrder is the declared production ordering, outermost first. It is
// what `perfdmf-vet -fix-hints` prints and docs/STATIC_ANALYSIS.md
// documents; extend it when adding a mutex to a scoped package.
var LockOrder = []string{
	"godbc.driversMu",         // driver registration table
	"godbc.memDriver.mu",      // per-driver open serialization
	"godbc.fileDriver.mu",     // per-driver open serialization
	"godbc.connRegMu",         // live-connection registry
	"godbc.stmtCache.mu",      // per-connection statement cache
	"sqlexec.StmtRegistry.mu", // live-statement registry
	"reldb.DB.mu",             // database reader/writer lock
	"reldb.Table.segMu",       // columnar segment build serialization
	"httpserve.Collector.mu",  // metrics collector state
	"obs.TelemetrySink.mu",    // telemetry buffer
	"obs.Governor.mu",         // overhead governor window
	"obs.Tracer.mu",           // trace ring buffer
	"obs.SlowLog.mu",          // slow-query ring buffer
	"obs.AlertSet.mu",         // alert rule/state table (Eval reads the history under it)
	"obs.History.mu",          // metric-history ring
	"obs.Registry.mu",         // metric registration (leaf: metric resolution can happen anywhere)
}

// LockOrderHeldOnEntry declares the Begin/Commit contract: every reldb.Tx
// method runs holding the database lock (DB.Begin returns holding it,
// Commit/Rollback release it).
var LockOrderHeldOnEntry = map[string][]string{
	"reldb.Tx": {"reldb.DB.mu"},
}

// Lockorder returns the analyzer with the production configuration.
func Lockorder() *Analyzer {
	return LockorderFor(LockorderConfig{
		Packages: []string{
			"perfdmf/internal/reldb",
			"perfdmf/internal/godbc",
			"perfdmf/internal/obs",
			"perfdmf/internal/obs/httpserve",
			"perfdmf/internal/sqlexec",
		},
		Order:       LockOrder,
		HeldOnEntry: LockOrderHeldOnEntry,
	})
}

// LockorderFor returns the analyzer for an explicit configuration (golden
// tests use a testdata-scoped one).
func LockorderFor(cfg LockorderConfig) *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "mutex acquisition must follow the declared global lock order, acyclically",
		Run: func(prog *Program) []Diagnostic {
			lo := newLockorderWalk(prog, cfg)
			return lo.run()
		},
	}
}

// lockEdge is one held→acquired observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
	via      string // call chain hint for the message ("" for direct)
}

type lockorderWalk struct {
	prog *Program
	cfg  LockorderConfig
	rank map[string]int

	funcs   map[*types.Func]*lockFunc // module function index
	acqMemo map[*types.Func]map[string]token.Pos

	edges     []lockEdge
	firstSeen map[string]token.Pos // class → first acquisition position
}

type lockFunc struct {
	decl *ast.FuncDecl
	pkg  *Package
}

func newLockorderWalk(prog *Program, cfg LockorderConfig) *lockorderWalk {
	lo := &lockorderWalk{
		prog:      prog,
		cfg:       cfg,
		rank:      make(map[string]int, len(cfg.Order)),
		funcs:     make(map[*types.Func]*lockFunc),
		acqMemo:   make(map[*types.Func]map[string]token.Pos),
		firstSeen: make(map[string]token.Pos),
	}
	for i, c := range cfg.Order {
		lo.rank[c] = i
	}
	for _, pkg := range prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					lo.funcs[obj] = &lockFunc{decl: fd, pkg: pkg}
				}
			}
		}
	}
	return lo
}

func (lo *lockorderWalk) run() []Diagnostic {
	for _, pkg := range lo.prog.Packages {
		if pkg.Info == nil || !pathInScope(pkg.PkgPath, lo.cfg.Packages) {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				lo.walkFunc(pkg, fd)
			}
		}
	}
	return lo.report()
}

// heldOnEntry resolves the contract-held locks for a method's receiver.
func (lo *lockorderWalk) heldOnEntry(pkg *Package, fd *ast.FuncDecl) []string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	ts := typeString(pkg.Info, fd.Recv.List[0].Type)
	return lo.cfg.HeldOnEntry[shortClass(ts)]
}

// walkFunc runs the held-set walk over one function body (and, with fresh
// empty held sets, over every function literal inside it).
func (lo *lockorderWalk) walkFunc(pkg *Package, fd *ast.FuncDecl) {
	held := append([]string(nil), lo.heldOnEntry(pkg, fd)...)
	lo.walkStmts(pkg, fd.Body.List, &held)
}

// walkStmts is a source-order walk of a statement list, maintaining the
// held set. It is deliberately linear — Lock/Unlock pairs in this repo
// are textually scoped — which errs toward under-reporting on exotic
// branch structure, never toward false positives.
func (lo *lockorderWalk) walkStmts(pkg *Package, stmts []ast.Stmt, held *[]string) {
	for _, s := range stmts {
		lo.walkStmt(pkg, s, held)
	}
}

func (lo *lockorderWalk) walkStmt(pkg *Package, s ast.Stmt, held *[]string) {
	switch s := s.(type) {
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end: leave
		// the held set alone. Other deferred calls run at an unknowable
		// point; skip them (under-report).
		return
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the spawner's held set.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			fresh := []string{}
			lo.walkStmts(pkg, fl.Body.List, &fresh)
		}
		return
	case *ast.BlockStmt:
		lo.walkStmts(pkg, s.List, held)
		return
	case *ast.LabeledStmt:
		lo.walkStmt(pkg, s.Stmt, held)
		return
	case *ast.IfStmt:
		if s.Init != nil {
			lo.walkStmt(pkg, s.Init, held)
		}
		lo.walkExpr(pkg, s.Cond, held)
		lo.walkStmts(pkg, s.Body.List, held)
		if s.Else != nil {
			lo.walkStmt(pkg, s.Else, held)
		}
		return
	case *ast.ForStmt:
		if s.Init != nil {
			lo.walkStmt(pkg, s.Init, held)
		}
		lo.walkExpr(pkg, s.Cond, held)
		lo.walkStmts(pkg, s.Body.List, held)
		if s.Post != nil {
			lo.walkStmt(pkg, s.Post, held)
		}
		return
	case *ast.RangeStmt:
		lo.walkExpr(pkg, s.X, held)
		lo.walkStmts(pkg, s.Body.List, held)
		return
	case *ast.SwitchStmt:
		if s.Init != nil {
			lo.walkStmt(pkg, s.Init, held)
		}
		lo.walkExpr(pkg, s.Tag, held)
		lo.walkClauses(pkg, s.Body, held)
		return
	case *ast.TypeSwitchStmt:
		lo.walkClauses(pkg, s.Body, held)
		return
	case *ast.SelectStmt:
		lo.walkClauses(pkg, s.Body, held)
		return
	}
	// Leaf statements: scan expressions for lock operations and calls.
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			fresh := []string{}
			lo.walkStmts(pkg, n.Body.List, &fresh)
			return false
		case *ast.CallExpr:
			lo.handleCall(pkg, n, held)
			// Arguments may contain nested calls; keep descending, but
			// handleCall has already processed this node's own shape.
			return true
		}
		return true
	})
}

func (lo *lockorderWalk) walkClauses(pkg *Package, body *ast.BlockStmt, held *[]string) {
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			lo.walkStmts(pkg, cl.Body, held)
		case *ast.CommClause:
			lo.walkStmts(pkg, cl.Body, held)
		}
	}
}

func (lo *lockorderWalk) walkExpr(pkg *Package, e ast.Expr, held *[]string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			fresh := []string{}
			lo.walkStmts(pkg, n.Body.List, &fresh)
			return false
		case *ast.CallExpr:
			lo.handleCall(pkg, n, held)
			return true
		}
		return true
	})
}

// handleCall classifies one call: a lock acquisition, a lock release, or
// an ordinary call whose transitive acquisitions become edges when locks
// are held here.
func (lo *lockorderWalk) handleCall(pkg *Package, call *ast.CallExpr, held *[]string) {
	if recv, m, ok := methodCall(call); ok && isMutexOp(m) && isMutexType(typeString(pkg.Info, recv)) {
		class := lo.lockClass(pkg, recv)
		if class == "" {
			return // local mutex variable: out of scope
		}
		switch m {
		case "Lock", "RLock", "TryLock", "TryRLock":
			if _, seen := lo.firstSeen[class]; !seen {
				lo.firstSeen[class] = call.Pos()
			}
			for _, h := range *held {
				lo.edges = append(lo.edges, lockEdge{from: h, to: class, pos: call.Pos()})
			}
			*held = append(*held, class)
		case "Unlock", "RUnlock":
			lo.release(held, class)
		}
		return
	}
	// Ordinary call: edges to everything the callee transitively acquires.
	if len(*held) == 0 {
		return
	}
	callee := lo.resolveCallee(pkg, call)
	if callee == nil {
		return
	}
	acq := lo.acquires(callee)
	if len(acq) == 0 {
		return
	}
	classes := make([]string, 0, len(acq))
	for c := range acq {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, h := range *held {
		for _, c := range classes {
			lo.edges = append(lo.edges, lockEdge{from: h, to: c, pos: call.Pos(), via: callee.Name()})
		}
	}
}

func (lo *lockorderWalk) release(held *[]string, class string) {
	for i := len(*held) - 1; i >= 0; i-- {
		if (*held)[i] == class {
			*held = append((*held)[:i], (*held)[i+1:]...)
			return
		}
	}
}

// resolveCallee maps a call to the module function it invokes, or nil for
// stdlib calls, function values, interface methods and conversions.
func (lo *lockorderWalk) resolveCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
		if _, inModule := lo.funcs[fn]; inModule {
			return fn
		}
	}
	return nil
}

// acquires computes, with memoization over the module call graph, the set
// of lock classes a function acquires directly or through its callees.
// Cycles in the call graph resolve to the fixed point reached so far.
func (lo *lockorderWalk) acquires(fn *types.Func) map[string]token.Pos {
	if memo, ok := lo.acqMemo[fn]; ok {
		return memo
	}
	out := make(map[string]token.Pos)
	lo.acqMemo[fn] = out // pre-publish: call-graph cycle guard
	lf := lo.funcs[fn]
	if lf == nil {
		return out
	}
	ast.Inspect(lf.decl.Body, func(n ast.Node) bool {
		if _, isGo := n.(*ast.GoStmt); isGo {
			return false // goroutine acquisitions are not the caller's
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, m, okM := methodCall(call); okM && isMutexOp(m) && isMutexType(typeString(lf.pkg.Info, recv)) {
			if m == "Lock" || m == "RLock" || m == "TryLock" || m == "TryRLock" {
				if class := lo.lockClass(lf.pkg, recv); class != "" {
					if _, seen := out[class]; !seen {
						out[class] = call.Pos()
					}
				}
			}
			return true
		}
		if callee := lo.resolveCallee(lf.pkg, call); callee != nil && callee != fn {
			for c, p := range lo.acquires(callee) {
				if _, seen := out[c]; !seen {
					out[c] = p
				}
			}
		}
		return true
	})
	return out
}

// lockClass names the lock a receiver expression denotes: a struct field
// ("pkg.Type.field") or a package-level variable ("pkg.var"). Local
// variables return "".
func (lo *lockorderWalk) lockClass(pkg *Package, recv ast.Expr) string {
	switch recv := recv.(type) {
	case *ast.SelectorExpr:
		// x.mu — field of x's type.
		ts := typeString(pkg.Info, recv.X)
		if ts == "" {
			return ""
		}
		return shortClass(ts) + "." + recv.Sel.Name
	case *ast.Ident:
		obj, ok := pkg.Info.Uses[recv].(*types.Var)
		if !ok || obj.Parent() == nil {
			return ""
		}
		// Package-level variable: its parent scope is the package scope.
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return ""
	}
	return ""
}

// shortClass shortens "*perfdmf/internal/reldb.DB" to "reldb.DB".
func shortClass(ts string) string {
	ts = strings.TrimPrefix(ts, "*")
	if i := strings.LastIndex(ts, "/"); i >= 0 {
		ts = ts[i+1:]
	}
	return ts
}

func isMutexOp(m string) bool {
	switch m {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
		return true
	}
	return false
}

// report turns the collected graph into diagnostics: undeclared classes,
// order violations, and cycles.
func (lo *lockorderWalk) report() []Diagnostic {
	var out []Diagnostic

	// Rule 1: every discovered class must be in the declared table.
	classes := make([]string, 0, len(lo.firstSeen))
	for c := range lo.firstSeen {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		if _, ok := lo.rank[c]; !ok {
			out = append(out, diag(lo.prog, "lockorder", lo.firstSeen[c],
				"lock class %s is not in the declared lock order table (see lint.LockOrder)", c))
		}
	}

	// Rule 2: edges must go outer→inner in the declared order.
	reported := make(map[string]bool)
	for _, e := range lo.edges {
		ri, iOK := lo.rank[e.from]
		rj, jOK := lo.rank[e.to]
		if !iOK || !jOK {
			continue // rule 1 already covers undeclared classes
		}
		if rj > ri {
			continue
		}
		key := fmt.Sprintf("%s→%s@%d", e.from, e.to, e.pos)
		if reported[key] {
			continue
		}
		reported[key] = true
		via := ""
		if e.via != "" {
			via = " (via " + e.via + ")"
		}
		if e.from == e.to {
			out = append(out, diag(lo.prog, "lockorder", e.pos,
				"lock %s acquired while already held%s: self-deadlock", e.from, via))
		} else {
			out = append(out, diag(lo.prog, "lockorder", e.pos,
				"acquires %s while holding %s%s: violates the declared lock order (outer→inner)", e.to, e.from, via))
		}
	}

	// Rule 3: cycles, including through unranked classes.
	out = append(out, lo.cycles()...)
	return out
}

// cycles finds one representative diagnostic per acquisition-graph cycle.
func (lo *lockorderWalk) cycles() []Diagnostic {
	adj := make(map[string]map[string]token.Pos)
	for _, e := range lo.edges {
		if e.from == e.to {
			continue // self-edges are reported by rule 2
		}
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]token.Pos)
		}
		if _, ok := adj[e.from][e.to]; !ok {
			adj[e.from][e.to] = e.pos
		}
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var out []Diagnostic
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	var visit func(n string)
	visit = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		succs := make([]string, 0, len(adj[n]))
		for s := range adj[n] {
			succs = append(succs, s)
		}
		sort.Strings(succs)
		for _, s := range succs {
			switch color[s] {
			case white:
				visit(s)
			case gray:
				// Back edge: the cycle is stack[idx(s):] + s.
				i := len(stack) - 1
				for i >= 0 && stack[i] != s {
					i--
				}
				cyc := append(append([]string{}, stack[i:]...), s)
				out = append(out, diag(lo.prog, "lockorder", adj[n][s],
					"lock-order cycle: %s", strings.Join(cyc, " → ")))
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			visit(n)
		}
	}
	return out
}
