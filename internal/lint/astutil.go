package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// exprString renders an expression back to source, used to compare lock
// receivers textually (db.mu and tx.db.mu are different locks to us, which
// is the conservative direction).
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// methodCall destructures a call of the form recv.Name(...), returning the
// receiver expression and method name. ok is false for plain function
// calls and conversions.
func methodCall(e ast.Expr) (recv ast.Expr, name string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return nil, "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// typeString returns the fully-qualified string of an expression's type,
// or "" when no type information is available.
func typeString(info *types.Info, e ast.Expr) string {
	if info == nil {
		return ""
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	return tv.Type.String()
}

// isMutexType reports whether a type string names a sync mutex (or a
// pointer to one).
func isMutexType(ts string) bool {
	ts = strings.TrimPrefix(ts, "*")
	return ts == "sync.Mutex" || ts == "sync.RWMutex"
}

// funcBodies yields every function body in a file along with a display
// name: declared functions as Name or (recv).Name, and each function
// literal as parent.func. Bodies of function literals are also visited as
// part of their enclosing function, so analyzers that walk statements
// should handle *ast.FuncLit explicitly when that matters.
func funcBodies(f *ast.File, visit func(name string, decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd, fd.Body)
	}
}

// hasMethod reports whether a type (or its pointer) has a method with the
// given name. Interface types carry their own method set; for concrete
// types the pointer method set is the superset worth checking.
func hasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	t = derefType(t)
	var ms *types.MethodSet
	if types.IsInterface(t) {
		ms = types.NewMethodSet(t)
	} else {
		ms = types.NewMethodSet(types.NewPointer(t))
	}
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
