// Package metricnames is golden-test input for the metricnames analyzer:
// registrations violating the naming convention, plus lookalike methods
// on non-obs types that must NOT be reported.
package metricnames

import "perfdmf/internal/obs"

var reg = obs.NewRegistry()

// --- violations ---

var (
	mBadCounter = reg.Counter("requests")           // want "counter \"requests\" must end in _total"
	mBadCase    = reg.Counter("Requests_total")     // want "not snake_case"
	mBadGauge   = reg.Gauge("queue_depth_total")    // want "gauge \"queue_depth_total\" must not end in _total"
	mBadHist    = reg.Histogram("op_latency")       // want "needs a unit suffix"
	mClashHist  = reg.Histogram("op_latency_count") // want "must not end in _total/_count/_sum"
	mDefaultBad = obs.Default.Counter("loose-name") // want "not snake_case"
)

// --- cases that must stay silent ---

var (
	mGoodCounter = reg.Counter("requests_total")
	mGoodGauge   = reg.Gauge("queue_depth")
	mGoodBytes   = reg.Gauge("heap_alloc_bytes")
	mGoodHist    = reg.Histogram("op_latency_ns")
	mGoodSecs    = reg.Histogram("op_latency_seconds")
	mGoodRows    = reg.Histogram("upload_batch_rows")
)

// tally is a lookalike: Counter on a non-obs type is out of scope.
type tally struct{}

func (tally) Counter(name string) int { return 0 }

var notAMetric = tally{}.Counter("Whatever You Like")

// Concatenated names with dynamic fragments are checked by their constant
// fragments: the per-format family idiom stays silent, but a bad constant
// prefix or a rule-breaking constant suffix is still caught. A dynamic
// tail disables the suffix rules (nothing to check).
func dynamicName(suffix string) {
	reg.Counter("requests_" + suffix)             // silent: dynamic tail
	reg.Histogram("parse_" + suffix + "_ns")      // silent: family with unit suffix
	reg.Histogram("parse_" + suffix + "_rows")    // silent: count-valued family
	reg.Histogram("parse_" + suffix)              // silent: dynamic tail
	reg.Counter("Parse_" + suffix + "_total")     // want "not snake_case"
	reg.Counter("parse_" + suffix + "_errors")    // want "must end in _total"
	reg.Histogram("parse_" + suffix + "_elapsed") // want "needs a unit suffix"
	reg.Histogram("parse_" + suffix + "_count")   // want "must not end in _total/_count/_sum"
	reg.Gauge("depth_" + suffix + "_total")       // want "must not end in _total"
}

// allowLegacy keeps a grandfathered wire name; the suppression must
// silence the analyzer.
var mLegacy = reg.Counter("legacyRequests") //lint:allow metricnames -- grandfathered wire-format name
