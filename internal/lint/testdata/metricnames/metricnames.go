// Package metricnames is golden-test input for the metricnames analyzer:
// registrations violating the naming convention, plus lookalike methods
// on non-obs types that must NOT be reported.
package metricnames

import "perfdmf/internal/obs"

var reg = obs.NewRegistry()

// --- violations ---

var (
	mBadCounter = reg.Counter("requests")               // want "counter \"requests\" must end in _total"
	mBadCase    = reg.Counter("Requests_total")         // want "not snake_case"
	mBadGauge   = reg.Gauge("queue_depth_total")        // want "gauge \"queue_depth_total\" must not end in _total"
	mBadHist    = reg.Histogram("op_latency")           // want "needs a unit suffix"
	mClashHist  = reg.Histogram("op_latency_count")     // want "must not end in _total/_count/_sum"
	mDefaultBad = obs.Default.Counter("loose-name")     // want "not snake_case"
)

// --- cases that must stay silent ---

var (
	mGoodCounter = reg.Counter("requests_total")
	mGoodGauge   = reg.Gauge("queue_depth")
	mGoodBytes   = reg.Gauge("heap_alloc_bytes")
	mGoodHist    = reg.Histogram("op_latency_ns")
	mGoodSecs    = reg.Histogram("op_latency_seconds")
)

// tally is a lookalike: Counter on a non-obs type is out of scope.
type tally struct{}

func (tally) Counter(name string) int { return 0 }

var notAMetric = tally{}.Counter("Whatever You Like")

// dynamicName is skipped: the name is not a constant.
func dynamicName(suffix string) {
	reg.Counter("requests_" + suffix)
}

// allowLegacy keeps a grandfathered wire name; the suppression must
// silence the analyzer.
var mLegacy = reg.Counter("legacyRequests") //lint:allow metricnames -- grandfathered wire-format name
