// Package metricnames is golden-test input for the metricnames analyzer:
// registrations violating the naming convention, plus lookalike methods
// on non-obs types that must NOT be reported.
package metricnames

import "perfdmf/internal/obs"

var reg = obs.NewRegistry()

// --- violations ---

var (
	mBadCounter = reg.Counter("requests")           // want "counter \"requests\" must end in _total"
	mBadCase    = reg.Counter("Requests_total")     // want "not snake_case"
	mBadGauge   = reg.Gauge("queue_depth_total")    // want "gauge \"queue_depth_total\" must not end in _total"
	mBadHist    = reg.Histogram("op_latency")       // want "needs a unit suffix"
	mClashHist  = reg.Histogram("op_latency_count") // want "must not end in _total/_count/_sum"
	mDefaultBad = obs.Default.Counter("loose-name") // want "not snake_case"
)

// --- cases that must stay silent ---

var (
	mGoodCounter = reg.Counter("requests_total")
	mGoodGauge   = reg.Gauge("queue_depth")
	mGoodBytes   = reg.Gauge("heap_alloc_bytes")
	mGoodHist    = reg.Histogram("op_latency_ns")
	mGoodSecs    = reg.Histogram("op_latency_seconds")
	mGoodRows    = reg.Histogram("upload_batch_rows")
)

// tally is a lookalike: Counter on a non-obs type is out of scope.
type tally struct{}

func (tally) Counter(name string) int { return 0 }

var notAMetric = tally{}.Counter("Whatever You Like")

// Concatenated names with dynamic fragments are checked by their constant
// fragments: the per-format family idiom stays silent, but a bad constant
// prefix or a rule-breaking constant suffix is still caught. A dynamic
// tail disables the suffix rules (nothing to check).
func dynamicName(suffix string) {
	reg.Counter("requests_" + suffix)             // silent: dynamic tail
	reg.Histogram("parse_" + suffix + "_ns")      // silent: family with unit suffix
	reg.Histogram("parse_" + suffix + "_rows")    // silent: count-valued family
	reg.Histogram("parse_" + suffix)              // silent: dynamic tail
	reg.Counter("Parse_" + suffix + "_total")     // want "not snake_case"
	reg.Counter("parse_" + suffix + "_errors")    // want "must end in _total"
	reg.Histogram("parse_" + suffix + "_elapsed") // want "needs a unit suffix"
	reg.Histogram("parse_" + suffix + "_count")   // want "must not end in _total/_count/_sum"
	reg.Gauge("depth_" + suffix + "_total")       // want "must not end in _total"
}

// allowLegacy keeps a grandfathered wire name; the suppression must
// silence the analyzer.
var mLegacy = reg.Counter("legacyRequests") //lint:allow metricnames -- grandfathered wire-format name

// --- reserved instrumentation families ---
//
// Family namespaces group related series on the dashboards; a name that is
// only the family prefix plus kind/unit suffixes says nothing about what
// is measured and is rejected.

var (
	mCatQueries  = reg.Counter("obs_catalog_queries_total")
	mCatAnalyze  = reg.Counter("obs_catalog_analyze_total")
	mStmtStarted = reg.Counter("sqlexec_stmt_started_total")
	mStmtKilled  = reg.Counter("sqlexec_stmt_killed_total")
	mStmtActive  = reg.Gauge("sqlexec_stmt_active")
	mPlanHits    = reg.Counter("sqlexec_plan_cache_hits_total")
	mTelDropped  = reg.Counter("obs_telemetry_dropped_total")
	mGovAdjust   = reg.Counter("obs_telemetry_governor_adjustments_total")
	mGovOverhead = reg.Gauge("obs_telemetry_governor_overhead_permille")
	mColScans    = reg.Counter("sqlexec_columnar_scans_total")
	mColRows     = reg.Counter("sqlexec_columnar_rows_scanned_total")
	mSegBuilds   = reg.Counter("reldb_segment_builds_total")
	mHistSamples = reg.Counter("obs_history_samples_total")
	mHistStalls  = reg.Counter("obs_history_persist_stalls_total")
	mAlertEvals  = reg.Counter("obs_alerts_evals_total")
	mAlertFiring = reg.Gauge("obs_alerts_firing")

	mCatBare   = reg.Counter("obs_catalog_total")          // want "names the obs_catalog family but no member"
	mStmtBare  = reg.Gauge("sqlexec_stmt")                 // want "names the sqlexec_stmt family but no member"
	mTelBare   = reg.Histogram("obs_telemetry_ms")         // want "names the obs_telemetry family but no member"
	mPlanBare  = reg.Counter("sqlexec_plan_cache_total")   // want "names the sqlexec_plan_cache family but no member"
	mCatDouble = reg.Counter("obs_catalog__queries_total") // want "not snake_case"
	// The governor family nests inside obs_telemetry; the longer prefix
	// must win, so a bare governor name blames its own family, not a
	// "governor"-membered obs_telemetry name that would slip through.
	mGovBare  = reg.Counter("obs_telemetry_governor_total") // want "names the obs_telemetry_governor family but no member"
	mGovBare2 = reg.Gauge("obs_telemetry_governor")         // want "names the obs_telemetry_governor family but no member"
	// The columnar-executor and segment-store families: a bare name, or one
	// whose member part is all kind/unit tokens, is rejected.
	mColBare = reg.Counter("sqlexec_columnar_total")   // want "names the sqlexec_columnar family but no member"
	mSegBare = reg.Counter("reldb_segment_rows_total") // want "names the reldb_segment family but no member"
	mSegHist = reg.Histogram("reldb_segment_bytes")    // want "names the reldb_segment family but no member"
	// The continuous-observability families introduced with the metric
	// history and alerting layer are reserved like the rest.
	mHistBare  = reg.Counter("obs_history_total")  // want "names the obs_history family but no member"
	mAlertBare = reg.Gauge("obs_alerts")           // want "names the obs_alerts family but no member"
	mHistBare2 = reg.Histogram("obs_history_rows") // want "names the obs_history family but no member"
)

// familyDynamic: a dynamic member satisfies the family rule (nothing to
// check), but doubled underscores in or across constant fragments are
// still caught.
func familyDynamic(part string) {
	reg.Counter("obs_catalog_" + part + "_total")   // silent: dynamic member
	reg.Counter("sqlexec_stmt__" + part + "_total") // want "doubled underscore"
	reg.Histogram("obs_" + "catalog" + "_scan_ns")  // silent: folds to a constant member name
	reg.Counter("parse_" + "_" + part + "_total")   // want "doubled underscore"
}
