// Package determinism is golden-test input for the determinism analyzer:
// wall-clock reads, randomness, and map-order iteration feeding results,
// plus the deterministic idioms that must NOT be reported.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// clock is the injected-clock idiom: call sites use the variable, and the
// single wall-clock binding carries a suppression.
var clock = time.Now //lint:allow determinism -- the one sanctioned wall-clock binding

// --- violations ---

func stampRows(rows [][]any) {
	t := time.Now() // want "direct time.Now"
	for i := range rows {
		rows[i] = append(rows[i], t)
	}
}

func sampleRows(rows [][]any) [][]any {
	i := rand.Intn(len(rows)) // want "math/rand use"
	return rows[i : i+1]
}

func flattenGroups(groups map[string][]any) []any {
	var out []any
	for _, vs := range groups { // want "map iteration feeding an ordered result"
		out = append(out, vs...)
	}
	return out
}

// --- deterministic idioms that must stay silent ---

func flattenSorted(groups map[string][]any) []any {
	keys := make([]string, 0, len(groups))
	for k := range groups { // key-only: collecting keys to sort IS the fix
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []any
	for _, k := range keys {
		out = append(out, groups[k]...)
	}
	return out
}

func countGroups(groups map[string][]any) int {
	n := 0
	for _, vs := range groups { // commutative fold: order cannot show
		n += len(vs)
	}
	return n
}

func viaInjectedClock() time.Time {
	return clock()
}
