// Test files are parsed AST-only (no type info); sqlcheck still folds
// syntactic literals here — bad SQL in tests fails the gate too.
package sqlcheck

import "testing"

func TestQueries(t *testing.T) {
	d := &db{}
	d.Query("SELECT value FROM metrics WHERE trial = ?", 1)
	d.Query("SELEC * FROM metrics")                    // want "SQL does not parse"
	d.Exec("DELETE FROM" + " metrics WHERE trial = ?") // want "has 1 placeholder\(s\) but the call passes 0 argument\(s\)"
}
