// Package sqlcheck is golden-test input for the sqlcheck analyzer: SQL
// literals with syntax errors and placeholder-count mismatches marked
// with // want comments, plus run-time-built SQL and quoted question
// marks that must NOT be reported.
package sqlcheck

import "fmt"

type db struct{}

func (d *db) Query(q string, args ...any) (int, error)   { return 0, nil }
func (d *db) Exec(q string, args ...any) (int, error)    { return 0, nil }
func (d *db) Prepare(q string) (int, error)              { return 0, nil }
func (d *db) Explain(q string, args ...any) (int, error) { return 0, nil }

const selByID = "SELECT value FROM metrics WHERE trial = ?"

// --- violations ---

func badSyntax(d *db) {
	d.Query("SELEC value FROM metrics") // want "SQL does not parse"
}

func badScript(d *db) {
	d.Exec("DELETE FROM metrics WHERE; trial = 1") // want "SQL does not parse"
}

func tooFewArgs(d *db) {
	d.Query("SELECT value FROM metrics WHERE trial = ? AND node = ?", 1) // want "has 2 placeholder\(s\) but the call passes 1 argument\(s\)"
}

func tooManyArgs(d *db) {
	d.Exec("INSERT INTO metrics (trial, value) VALUES (?, ?)", 1, 2.5, "extra") // want "has 2 placeholder\(s\) but the call passes 3 argument\(s\)"
}

func badConst(d *db) {
	d.Query(selByID, 1, 2) // want "has 1 placeholder\(s\) but the call passes 2 argument\(s\)"
}

// --- cases that must stay silent ---

func correct(d *db) {
	d.Query("SELECT value FROM metrics WHERE trial = ?", 7)
	d.Exec("UPDATE metrics SET value = ? WHERE trial = ?", 1.5, 7)
	d.Prepare("INSERT INTO metrics (trial, value) VALUES (?, ?)") // Prepare binds later
}

func quotedQuestionMark(d *db) {
	// The ? inside the string literal and the one in the comment are not
	// placeholders; only the trailing one is.
	d.Query("SELECT value FROM metrics WHERE name = 'why?' AND trial = ? -- real?", 7)
}

func constConcat(d *db) {
	d.Query(selByID+" AND node = ?", 1, 2)
}

func runtimeSQL(d *db, table string) {
	// Built at run time: the analyzer cannot know the final text.
	d.Query("SELECT COUNT(*) FROM " + table)
	d.Query(fmt.Sprintf("SELECT value FROM %s", table))
}

func forwardedArgs(d *db, q string, args []any) {
	// Variadic forwarding hides the argument count.
	d.Query("SELECT value FROM metrics WHERE trial = ?", args...)
}

func notSQLMethod(d *db) {
	// Explain is not one of the SQL entry points.
	d.Explain("this is not sql at all")
}

func allowDialect(d *db) {
	// Suppressed: a vendor-specific statement the embedded parser rejects.
	d.Exec("VACUUM metrics") //lint:allow sqlcheck -- vendor statement outside the embedded dialect
}
