// Package atomiccheck is the golden fixture for the atomiccheck
// analyzer: locations touched through sync/atomic anywhere must be
// touched that way everywhere.
package atomiccheck

import "sync/atomic"

type stats struct {
	// n is accessed via raw atomic.AddInt64 in inc(): every other access
	// must be atomic too.
	n int64
	// flag is a typed atomic: method calls only, never value copies.
	flag atomic.Bool
	// plain is mutex-protected by its owner and never touched through
	// sync/atomic — plain access is fine (reldb.Table.version pattern).
	plain int64
}

// counter is a package-level raw atomic.
var counter int64

func inc(s *stats) {
	atomic.AddInt64(&s.n, 1)
	atomic.AddInt64(&counter, 1)
}

// okAtomicRead loads through sync/atomic: silent.
func okAtomicRead(s *stats) int64 {
	return atomic.LoadInt64(&s.n)
}

// badPlainRead reads a raw-atomic field plainly: reported.
func badPlainRead(s *stats) int64 {
	return s.n // want "plain access of n, which is accessed via atomic.AddInt64 elsewhere"
}

// badPlainWrite writes it plainly: reported.
func badPlainWrite(s *stats) {
	s.n = 0 // want "plain access of n"
}

// badPlainGlobal reads the package-level raw atomic plainly: reported.
func badPlainGlobal() int64 {
	return counter // want "plain access of counter"
}

// okTypedMethods uses the typed atomic through its methods: silent.
func okTypedMethods(s *stats) bool {
	s.flag.Store(true)
	return s.flag.Load()
}

// okTypedAddr takes the typed atomic's address (helper passing): silent.
func okTypedAddr(s *stats) *atomic.Bool {
	return &s.flag
}

// badTypedCopy copies the typed atomic by value: reported.
func badTypedCopy(s *stats) atomic.Bool {
	return s.flag // want "copies/compares the typed atomic"
}

// okPlainField: never atomic anywhere, so plain access is fine — the
// false-positive case guarding reldb's mutex-protected version counters.
func okPlainField(s *stats) int64 {
	s.plain++
	return s.plain
}

// okZeroInit: composite-literal initialization before publication is not
// a racy access.
func okZeroInit() *stats {
	return &stats{n: 0, plain: 0}
}

// allowedSnapshot is a deliberate plain read under the owner's write
// lock: suppressed.
func allowedSnapshot(s *stats) int64 {
	return s.n //lint:allow atomiccheck -- fixture: snapshot taken under the owner's exclusive lock
}
