// Package lockorder is the golden fixture for the lockorder analyzer.
// The test's declared order (outermost first) is:
//
//	lockorder.regMu, lockorder.DB.mu, lockorder.Table.segMu
//
// and lockorder.Tx methods are declared to hold lockorder.DB.mu on entry.
package lockorder

import "sync"

type DB struct {
	mu sync.RWMutex
	t  Table
}

type Table struct {
	segMu sync.Mutex
	built bool
}

type Tx struct{ db *DB }

var regMu sync.Mutex

// okOrdered acquires outer→inner: silent.
func okOrdered(db *DB) {
	db.mu.RLock()
	db.t.segMu.Lock()
	db.t.built = true
	db.t.segMu.Unlock()
	db.mu.RUnlock()
}

// okSequential holds the locks one at a time: no edge, silent.
func okSequential(db *DB) {
	regMu.Lock()
	regMu.Unlock()
	db.mu.Lock()
	db.mu.Unlock()
}

// badInverted acquires the registry lock (outermost) while holding the
// database lock (inner): reported.
func badInverted(db *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
	regMu.Lock() // want "acquires lockorder.regMu while holding lockorder.DB.mu"
	regMu.Unlock()
}

// badSelf re-enters the same lock class: reported.
func badSelf(db *DB) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.mu.RLock() // want "lock lockorder.DB.mu acquired while already held"
	db.mu.RUnlock()
}

// lockReg is the helper badViaHelper reaches the registry lock through.
func lockReg() {
	regMu.Lock()
	regMu.Unlock()
}

// badViaHelper inverts the order interprocedurally: the edge is found
// through the call graph, not the local body.
func badViaHelper(db *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
	lockReg() // want "acquires lockorder.regMu while holding lockorder.DB.mu \(via lockReg\)"
}

// Commit runs with DB.mu held by contract (HeldOnEntry): acquiring segMu
// is inner and silent, acquiring regMu is reported without any visible
// Lock in this body.
func (tx *Tx) Commit() {
	tx.db.t.segMu.Lock()
	tx.db.t.segMu.Unlock()
	regMu.Lock() // want "acquires lockorder.regMu while holding lockorder.DB.mu"
	regMu.Unlock()
}

// allowedInversion is a deliberate, documented violation: suppressed.
func allowedInversion(db *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
	regMu.Lock() //lint:allow lockorder -- fixture: deliberate inversion kept for the suppression test
	regMu.Unlock()
}

// undeclared is a mutex class missing from the declared table: reported
// at its first acquisition.
type undeclared struct{ mu sync.Mutex }

func touchUndeclared(u *undeclared) {
	u.mu.Lock() // want "lock class lockorder.undeclared.mu is not in the declared lock order table"
	u.mu.Unlock()
}

// cycA/cycB deadlock against each other; both classes are also missing
// from the declared table.
type cycA struct{ mu sync.Mutex }
type cycB struct{ mu sync.Mutex }

func cycOne(a *cycA, b *cycB) {
	a.mu.Lock() // want "lock class lockorder.cycA.mu is not in the declared lock order table"
	b.mu.Lock() // want "lock class lockorder.cycB.mu is not in the declared lock order table"
	b.mu.Unlock()
	a.mu.Unlock()
}

func cycTwo(a *cycA, b *cycB) {
	b.mu.Lock()
	a.mu.Lock() // want "lock-order cycle: lockorder.cycA.mu → lockorder.cycB.mu → lockorder.cycA.mu"
	a.mu.Unlock()
	b.mu.Unlock()
}

// localMutexOK: function-local mutexes are not lock classes; silent.
func localMutexOK() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}

// goroutineResetOK: the spawned goroutine does not inherit the spawner's
// held set, so its registry acquisition is not an edge; silent.
func goroutineResetOK(db *DB, wg *sync.WaitGroup) {
	db.mu.Lock()
	defer db.mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		regMu.Lock()
		regMu.Unlock()
	}()
}
