// Package deadallow is the golden fixture for the engine's
// dead-suppression rule: a //lint:allow comment whose analyzers all ran
// but that suppressed nothing is itself reported. The test runs only the
// closecheck analyzer over this package.
package deadallow

type Rows struct{}

func (r *Rows) Close() error { return nil }
func (r *Rows) Next() bool   { return false }

type DB struct{}

func (d *DB) Query(q string) (*Rows, error) { return nil, nil }

// okClosedStale closes its rows properly, so the allow riding on the
// acquisition suppresses nothing — the comment itself is reported.
func okClosedStale(db *DB) {
	rows, err := db.Query("select 1") //lint:allow closecheck -- stale: rows are closed below // want "lint:allow closecheck suppresses nothing; remove the stale comment"
	if err != nil {
		return
	}
	rows.Close()
}

// leakedButAllowed genuinely leaks, so its allow is used: silent.
func leakedButAllowed(db *DB) {
	rows, _ := db.Query("select 2") //lint:allow closecheck -- fixture: deliberately leaked for the suppression test
	for rows.Next() {
	}
}

// otherAnalyzer closes properly and carries an allow naming an analyzer
// that is NOT part of this run: a partial run cannot prove it dead, so
// it is silent.
func otherAnalyzer(db *DB) {
	rows, err := db.Query("select 3")
	if err != nil {
		return
	}
	//lint:allow lockorder -- fixture: analyzer outside this run set
	rows.Close()
}
