// Package ctxpoll is the golden fixture for the ctxpoll analyzer: scan
// loops over rows/slots must poll cancellation at a bounded stride. The
// test configures RowTypes to this package's Row and MaxStride 4096.
package ctxpoll

type Row []any

type StmtEntry struct{ killed bool }

// Err is the fixture's cancellation poll (matched by receiver type name,
// like sqlexec.StmtEntry).
func (s *StmtEntry) Err() error { return nil }

const checkRows = 1024
const hugeStride = 1 << 20

func sink(Row) {}

// okDirect polls unguarded every iteration: silent.
func okDirect(rows []Row, stmt *StmtEntry) error {
	for _, r := range rows {
		if err := stmt.Err(); err != nil {
			return err
		}
		sink(r)
	}
	return nil
}

// okStride polls behind the canonical stride guard: silent.
func okStride(rows []Row, stmt *StmtEntry) error {
	n := 0
	for _, r := range rows {
		n++
		if n%checkRows == 0 {
			if err := stmt.Err(); err != nil {
				return err
			}
		}
		sink(r)
	}
	return nil
}

// pollHelper is a poller: calling it counts as polling.
func pollHelper(stmt *StmtEntry) error { return stmt.Err() }

// okViaHelper polls through a helper function: silent.
func okViaHelper(rows []Row, stmt *StmtEntry) error {
	for _, r := range rows {
		if err := pollHelper(stmt); err != nil {
			return err
		}
		sink(r)
	}
	return nil
}

// badNoPoll never polls: reported.
func badNoPoll(rows []Row) int {
	n := 0
	for _, r := range rows { // want "row scan loop without a cancellation poll"
		n += len(r)
	}
	return n
}

// badHugeStride polls, but less than once every MaxStride rows: reported.
func badHugeStride(rows []Row, stmt *StmtEntry) error {
	n := 0
	for _, r := range rows { // want "row scan loop without a cancellation poll"
		n++
		if n%hugeStride == 0 {
			if err := stmt.Err(); err != nil {
				return err
			}
		}
		sink(r)
	}
	return nil
}

// badNestedPoll polls only inside a nested loop, which may run zero
// iterations per row: reported.
func badNestedPoll(rows []Row, stmt *StmtEntry) error {
	for _, r := range rows { // want "row scan loop without a cancellation poll"
		for range r {
			if err := stmt.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// badSlots walks a slot list without polling: reported.
func badSlots(slots []int) int {
	n := 0
	for _, s := range slots { // want "slot scan loop without a cancellation poll"
		n += s
	}
	return n
}

type Table struct{ rows []Row }

// scan is the callback-stop shape: the per-row callback's boolean return
// breaks the loop, so cancellation is the callback's job — silent.
func (t *Table) scan(fn func(int, Row) bool) {
	for slot, row := range t.rows {
		if row == nil {
			continue
		}
		if !fn(slot, row) {
			return
		}
	}
}

// Scan is the public per-row visitor; literals passed to it are per-row
// bodies and must poll.
func (t *Table) Scan(fn func(int, Row) bool) { t.scan(fn) }

// okCallback polls inside the per-row callback: silent.
func okCallback(t *Table, stmt *StmtEntry) error {
	var err error
	t.Scan(func(slot int, r Row) bool {
		if e := stmt.Err(); e != nil {
			err = e
			return false
		}
		sink(r)
		return true
	})
	return err
}

// badCallback never polls inside the per-row callback: reported.
func badCallback(t *Table) int {
	n := 0
	t.Scan(func(slot int, r Row) bool { // want "per-row scan callback without a cancellation poll"
		n++
		return true
	})
	return n
}

// allowedScan is a deliberate uncancellable walk (DDL-style): suppressed.
func allowedScan(rows []Row) int {
	n := 0
	//lint:allow ctxpoll -- fixture: DDL path, uncancellable by design
	for _, r := range rows {
		n += len(r)
	}
	return n
}
