// Package closecheck is golden-test input for the closecheck analyzer:
// seeded Rows/Stmt/Tx lifecycle leaks marked with // want comments, plus
// correct idioms and lookalikes that must NOT be reported.
package closecheck

import "errors"

var errFail = errors.New("fail")

// Local stand-ins for the godbc shapes; the analyzer matches by result
// method set, not by package.

type rows struct{}

func (r *rows) Next() bool   { return false }
func (r *rows) Scan() error  { return nil }
func (r *rows) Err() error   { return nil }
func (r *rows) Close() error { return nil }

type stmt struct{}

func (s *stmt) Query(args ...any) (*rows, error) { return nil, nil }
func (s *stmt) Close() error                     { return nil }

type tx struct{}

func (t *tx) Exec(q string) error { return nil }
func (t *tx) Commit() error       { return nil }
func (t *tx) Rollback() error     { return nil }

type db struct{}

func (d *db) Query(q string, args ...any) (*rows, error) { return nil, nil }
func (d *db) Prepare(q string) (*stmt, error)            { return nil, nil }
func (d *db) Begin() (*tx, error)                        { return nil, nil }

// values mimics url.Values: a Query method whose result has no Close.
type values map[string][]string

type request struct{}

func (r *request) Query() values { return nil }

// --- violations ---

func leakOnErrPath(d *db) error {
	rs, err := d.Query("SELECT a FROM t")
	if err != nil {
		return err
	}
	for rs.Next() {
		if err := rs.Scan(); err != nil {
			return err // want "return in leakOnErrPath leaks rs"
		}
	}
	if err := rs.Err(); err != nil {
		return err // want "return in leakOnErrPath leaks rs"
	}
	return rs.Close()
}

func txNoRollback(d *db) error {
	t, err := d.Begin()
	if err != nil {
		return err
	}
	if err := t.Exec("UPDATE x"); err != nil {
		return err // want "return in txNoRollback leaks t"
	}
	return t.Commit()
}

func stmtNeverClosed(d *db) { // acquisition reported at the := line
	st, _ := d.Prepare("SELECT a FROM t") // want "st from Prepare\(\) in stmtNeverClosed is not closed"
	st.Query(1)
}

// --- correct idioms and lookalikes that must stay silent ---

func deferClose(d *db) error {
	rs, err := d.Query("SELECT a FROM t")
	if err != nil {
		return err
	}
	defer rs.Close()
	for rs.Next() {
	}
	return rs.Err()
}

func deferViaClosure(d *db) error {
	rs, err := d.Query("SELECT a FROM t")
	if err != nil {
		return err
	}
	defer func() {
		rs.Close()
	}()
	return rs.Err()
}

func commitOrRollback(d *db) error {
	t, err := d.Begin()
	if err != nil {
		return err
	}
	if err := t.Exec("UPDATE x"); err != nil {
		t.Rollback()
		return err
	}
	return t.Commit()
}

// escapeViaReturn transfers ownership to the caller.
func escapeViaReturn(d *db) (*rows, error) {
	rs, err := d.Query("SELECT a FROM t")
	if err != nil {
		return nil, err
	}
	return rs, nil
}

// escapeViaHandoff transfers ownership to another function.
func escapeViaHandoff(d *db, consume func(*rows) error) error {
	rs, err := d.Query("SELECT a FROM t")
	if err != nil {
		return err
	}
	return consume(rs)
}

// notAResource: the result type has no Close method, so the Query name
// alone must not trigger the analyzer.
func notAResource(r *request) int {
	vals := r.Query()
	return len(vals)
}

// closeInLoop closes per iteration inside the loop-body scope.
func closeInLoop(d *db, n int) error {
	for i := 0; i < n; i++ {
		rs, err := d.Query("SELECT a FROM t")
		if err != nil {
			return err
		}
		for rs.Next() {
		}
		rs.Close()
	}
	return nil
}

// allowLeak documents a deliberate leak: the handle is parked for the
// process lifetime and the suppression must silence the analyzer.
func allowLeak(d *db) {
	rs, _ := d.Query("SELECT a FROM t") //lint:allow closecheck -- held for the process lifetime
	for rs.Next() {
	}
}
