// Package lockcheck is golden-test input for the lockcheck analyzer:
// seeded lock-discipline violations marked with // want comments, plus
// correct idioms that must NOT be reported.
package lockcheck

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

// walWriter mirrors reldb's WAL writer shape; the analyzer matches it by
// type-name substring.
type walWriter struct{}

func (w *walWriter) append(n int) error { return nil }
func (w *walWriter) truncate() error    { return nil }
func (w *walWriter) close() error       { return nil }

type store struct {
	mu  sync.RWMutex
	wal *walWriter
	n   int
}

// --- violations ---

func leakOnReturn(s *store) int {
	s.mu.Lock()
	v := s.n
	return v // want "return in leakOnReturn while s.mu is held"
}

func leakOnErrorPath(s *store, fail bool) error {
	s.mu.Lock()
	if fail {
		return errFail // want "return in leakOnErrorPath while s.mu is held"
	}
	s.mu.Unlock()
	return nil
}

func neverReleased(s *store) {
	s.mu.Lock() // want "s.mu.Lock\(\) in neverReleased is not released on all paths"
	s.n++
}

func rlockWrongUnlock(s *store) int {
	s.mu.RLock()
	v := s.n
	s.mu.Unlock() // mismatched: RLock must pair with RUnlock
	return v      // want "return in rlockWrongUnlock while s.mu is held"
}

func walUnderLock(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal.append(s.n) // want "WAL I/O s.wal.append\(\) in walUnderLock while a mutex is held"
}

// --- correct idioms that must stay silent ---

func deferRelease(s *store) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

func explicitBothBranches(s *store, fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return errFail
	}
	s.n++
	s.mu.Unlock()
	return nil
}

// Commit is on the commit allowlist: holding the lock across the WAL
// append is the invariant, not a violation.
func Commit(s *store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.append(s.n)
}

// walAfterRelease fsyncs only once the lock is gone.
func walAfterRelease(s *store) error {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	return s.wal.append(n)
}

// lockInLoopBody releases inside each iteration; the acquisition's block
// is the loop body and the release dominates its end.
func lockInLoopBody(s *store, k int) {
	for i := 0; i < k; i++ {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// deliberateHold mirrors reldb's Begin, which returns holding the lock by
// contract; the suppression comment keeps it out of the report.
func deliberateHold(s *store) *store {
	s.mu.Lock() //lint:allow lockcheck -- returns holding the lock by contract
	return s
}
