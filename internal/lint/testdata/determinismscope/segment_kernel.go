// Package determinismscope is golden-test input for the determinism
// analyzer's file-prefix scoping ("pkg:segment"): segment* files carry the
// reproducibility contract, sibling files in the same package do not.
package determinismscope

import (
	"math/rand"
	"time"
)

func sealSegment(rows [][]any) time.Time {
	return time.Now() // want "direct time.Now"
}

func sampleSegment(rows [][]any) [][]any {
	i := rand.Intn(len(rows)) // want "math/rand use"
	return rows[i : i+1]
}

func mergeSegments(groups map[string][]any) []any {
	var out []any
	for _, vs := range groups { // want "map iteration feeding an ordered result"
		out = append(out, vs...)
	}
	return out
}
