package determinismscope

import "time"

// stampCheckpoint reads the wall clock in a file OUTSIDE the "segment"
// prefix scope: the analyzer must stay silent here even though the same
// call in segment_kernel.go is a violation.
func stampCheckpoint() time.Time {
	return time.Now()
}

// flattenCheckpoint is the same map-order violation shape as
// mergeSegments, also exempt by file scope.
func flattenCheckpoint(groups map[string][]any) []any {
	var out []any
	for _, vs := range groups {
		out = append(out, vs...)
	}
	return out
}
