// Package lifecycle is the golden fixture for the lifecycle analyzer:
// spans from StartSpan must Finish on all paths, and spawned goroutines
// must be joinable. The test configures StartSpanFuncs to this package's
// StartSpan.
package lifecycle

import (
	"context"
	"sync"
)

// Span mirrors obs.Span: Finish routes the span into the pipeline.
type Span struct{ name string }

func (s *Span) Finish(err error) {}
func (s *Span) Note(msg string)  {}

// StartSpan mirrors obs.StartSpan; returns nil when observability is off.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{name: name}
}

func work() error       { return nil }
func register(sp *Span) {}
func finishWith(sp *Span, err error) {
	if sp != nil {
		sp.Finish(err)
	}
}

// okFinish resolves the span on the straight path: silent.
func okFinish(ctx context.Context) error {
	_, sp := StartSpan(ctx, "op")
	sp.Note("working")
	sp.Finish(nil)
	return nil
}

// okDeferClosure finishes via a deferred closure that captures the span
// (the formats.go pattern): silent.
func okDeferClosure(ctx context.Context) error {
	_, sp := StartSpan(ctx, "op")
	var err error
	defer func() { finishWith(sp, err) }()
	err = work()
	return err
}

// okNilGuard: the `if sp == nil` return immediately after acquisition is
// exempt (StartSpan returns nil with observability off); the live path
// still finishes. Silent.
func okNilGuard(ctx context.Context) error {
	ctx2, sp := StartSpan(ctx, "op")
	if sp == nil {
		return workCtx(ctx2)
	}
	defer sp.Finish(nil)
	return workCtx(ctx2)
}

func workCtx(ctx context.Context) error { return nil }

// okEscape returns the span: ownership transfers to the caller. Silent.
func okEscape(ctx context.Context) *Span {
	_, sp := StartSpan(ctx, "op")
	return sp
}

// okHandoff passes the span to another function that now owns it. Silent.
func okHandoff(ctx context.Context) {
	_, sp := StartSpan(ctx, "op")
	register(sp)
}

// badLeak returns early without finishing: reported at the return.
func badLeak(ctx context.Context, fail bool) error {
	_, sp := StartSpan(ctx, "op")
	sp.Note("started")
	if fail {
		return nil // want "return in badLeak leaks sp: no Finish on this path"
	}
	sp.Finish(nil)
	return nil
}

// badNoFinish falls off the end of the function with the span live:
// reported at the acquisition.
func badNoFinish(ctx context.Context) { // nothing below finishes sp
	_, sp := StartSpan(ctx, "op") // want "span sp from StartSpan in badNoFinish does not reach Finish"
	sp.Note("hello")
}

// badOneBranch finishes only when ok is true: the other path leaks.
func badOneBranch(ctx context.Context, ok bool) {
	_, sp := StartSpan(ctx, "op")
	if ok {
		sp.Finish(nil)
	}
	return // want "return in badOneBranch leaks sp: no Finish on this path"
}

// allowedLeak is a deliberate leak kept for the suppression test.
func allowedLeak(ctx context.Context) {
	_, sp := StartSpan(ctx, "op") //lint:allow lifecycle -- fixture: ownership tracked out of band
	sp.Note("leak")
}

// ---- goroutines -------------------------------------------------------

// okWG joins via WaitGroup.Done: silent.
func okWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// okChan joins via channel close: silent.
func okChan() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// okSend joins via channel send: silent.
func okSend() chan error {
	errc := make(chan error, 1)
	go func() {
		errc <- work()
	}()
	return errc
}

// badDetached spawns a literal with no completion signal: reported.
func badDetached() {
	go func() { // want "goroutine is detached"
		work()
	}()
}

type Server struct {
	done chan struct{}
}

// loop signals completion by closing done, so spawning it is joinable.
func (s *Server) loop() {
	defer close(s.done)
	work()
}

// leak has no completion signal.
func (s *Server) leak() { work() }

// okMethod spawns a method whose resolved body closes a channel: silent.
func okMethod(s *Server) {
	go s.loop()
}

// badMethodDetached spawns a method with no join evidence: reported.
func badMethodDetached(s *Server) {
	go s.leak() // want "goroutine is detached"
}

// allowedDetached is fire-and-forget by design: suppressed.
func allowedDetached() {
	go work() //lint:allow lifecycle -- fixture: fire-and-forget by design
}
