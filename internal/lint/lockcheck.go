package lint

import (
	"go/ast"
	"strings"
)

// LockcheckConfig scopes the lock-discipline analyzer. The zero value is
// filled with the repo defaults by Lockcheck; tests point Packages at
// golden testdata trees instead.
type LockcheckConfig struct {
	// Packages is the list of package-path prefixes to analyze.
	Packages []string
	// CommitAllowlist names the functions that may perform WAL I/O while
	// holding a mutex — the commit/checkpoint path, where holding the lock
	// across the append IS the correctness argument.
	CommitAllowlist []string
	// WALTypes are type-string substrings identifying WAL writer receivers
	// (the file handle included: an fsync is WAL I/O wherever it lives).
	WALTypes []string
}

// Lockcheck returns the lock-discipline analyzer with repo defaults: in
// internal/reldb every mu.Lock/RLock must reach a matching Unlock (defer
// or explicit) on all return paths, and WAL append/fsync/encode calls may
// not run under a held mutex outside the commit/checkpoint path.
func Lockcheck() *Analyzer {
	return LockcheckFor(LockcheckConfig{
		Packages:        []string{"perfdmf/internal/reldb"},
		CommitAllowlist: []string{"Commit", "Checkpoint", "checkpointLocked"},
		WALTypes:        []string{"walWriter", "os.File"},
	})
}

// walMethodNames are the WAL I/O entry points: batch encode+write, the
// truncate after checkpoint, final close, and the raw fsync.
var walMethodNames = map[string]bool{"append": true, "truncate": true, "close": true, "Sync": true}

// LockcheckFor returns a lock-discipline analyzer with explicit scope.
func LockcheckFor(cfg LockcheckConfig) *Analyzer {
	const name = "lockcheck"
	return &Analyzer{
		Name: name,
		Doc:  "mutexes must be released on all paths; no WAL I/O under a held mutex outside the commit path",
		Run: func(prog *Program) []Diagnostic {
			var out []Diagnostic
			for _, pkg := range prog.Packages {
				if !pathInScope(pkg.PkgPath, cfg.Packages) {
					continue
				}
				for _, f := range pkg.Files {
					funcBodies(f, func(fname string, _ *ast.FuncDecl, body *ast.BlockStmt) {
						w := &lockWalk{
							prog: prog, pkg: pkg, cfg: cfg, fname: fname, diags: &out,
						}
						w.findAcquisitions(body.List, true)
					})
				}
			}
			return out
		},
	}
}

func pathInScope(pkgPath string, scopes []string) bool {
	for _, s := range scopes {
		if pkgPath == s || strings.HasPrefix(pkgPath, s+"/") {
			return true
		}
	}
	return false
}

type lockWalk struct {
	prog  *Program
	pkg   *Package
	cfg   LockcheckConfig
	fname string
	diags *[]Diagnostic
}

// lockState is the path state after an acquisition: released (explicit
// unlock executed), deferred (unlock scheduled for function exit), or
// terminated (the path returned/panicked).
type lockState struct {
	released   bool
	deferred   bool
	terminated bool
}

func (s lockState) done() bool { return s.released || s.deferred || s.terminated }

// findAcquisitions scans a statement list for Lock/RLock calls on mutex
// receivers and path-checks the remainder of the list after each; it also
// descends into nested blocks and function literals.
func (w *lockWalk) findAcquisitions(stmts []ast.Stmt, topLevel bool) {
	for i, s := range stmts {
		if es, ok := s.(*ast.ExprStmt); ok {
			if recv, m, ok := methodCall(es.X); ok && (m == "Lock" || m == "RLock") {
				if w.isMutex(recv) {
					w.checkAcquisition(es, recv, m, stmts[i+1:], topLevel)
				}
			}
		}
		// Nested blocks and closures can acquire too.
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				// Only descend through block-bearing statements here; the
				// top-level list was handled above.
				w.findNested(n.List)
				return false
			case *ast.FuncLit:
				w2 := &lockWalk{prog: w.prog, pkg: w.pkg, cfg: w.cfg, fname: w.fname + ".func", diags: w.diags}
				w2.findAcquisitions(n.Body.List, true)
				return false
			}
			return true
		})
	}
}

// findNested re-runs acquisition discovery on an inner block (if/for/
// switch bodies), where falling off the end of the block is not a
// violation by itself — the release may live in the enclosing scope.
func (w *lockWalk) findNested(stmts []ast.Stmt) {
	w.findAcquisitions(stmts, false)
}

func (w *lockWalk) isMutex(recv ast.Expr) bool {
	ts := typeString(w.pkg.Info, recv)
	if ts != "" {
		return isMutexType(ts)
	}
	// No type info (shouldn't happen for non-test files): fall back to the
	// naming convention.
	txt := exprString(w.prog.Fset, recv)
	return strings.HasSuffix(strings.ToLower(txt), "mu")
}

func (w *lockWalk) checkAcquisition(at *ast.ExprStmt, recv ast.Expr, method string, rest []ast.Stmt, topLevel bool) {
	lock := exprString(w.prog.Fset, recv)
	unlock := "Unlock"
	if method == "RLock" {
		unlock = "RUnlock"
	}
	st := w.path(rest, lock, unlock, lockState{})
	if topLevel && !st.done() {
		*w.diags = append(*w.diags, diag(w.prog, "lockcheck", at.Pos(),
			"%s.%s() in %s is not released on all paths (no %s or defer before function end)",
			lock, method, w.fname, unlock))
	}
}

// path walks a statement list tracking the lock state, reporting returns
// that leave the lock held and WAL I/O performed while it is held.
func (w *lockWalk) path(stmts []ast.Stmt, lock, unlock string, st lockState) lockState {
	for _, s := range stmts {
		if st.released || st.terminated {
			return st
		}
		switch s := s.(type) {
		case *ast.ExprStmt:
			if recv, m, ok := methodCall(s.X); ok && m == unlock &&
				exprString(w.prog.Fset, recv) == lock {
				st.released = true
				continue
			}
			if isPanicCall(s.X) {
				st.terminated = true
				continue
			}
			w.checkWALUse(s.X, st)
		case *ast.DeferStmt:
			if recv, m, ok := methodCall(s.Call); ok && m == unlock &&
				exprString(w.prog.Fset, recv) == lock {
				st.deferred = true
				continue
			}
			w.checkWALUse(s.Call, st)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				w.checkWALUse(r, st)
			}
			if !st.released && !st.deferred {
				*w.diags = append(*w.diags, diag(w.prog, "lockcheck", s.Pos(),
					"return in %s while %s is held (no %s on this path)", w.fname, lock, unlock))
			}
			st.terminated = true
			return st
		case *ast.IfStmt:
			if s.Init != nil {
				w.checkWALUse(s.Init, st)
			}
			w.checkWALUse(s.Cond, st)
			b := w.path(s.Body.List, lock, unlock, st)
			e := st
			hasElse := s.Else != nil
			if hasElse {
				switch el := s.Else.(type) {
				case *ast.BlockStmt:
					e = w.path(el.List, lock, unlock, st)
				case *ast.IfStmt:
					e = w.path([]ast.Stmt{el}, lock, unlock, st)
				}
			}
			// The fall-through path is released only when every branch that
			// can fall through released, and the no-else path cannot have.
			if hasElse && b.done() && e.done() {
				if b.terminated && !e.terminated {
					st = e
				} else if e.terminated && !b.terminated {
					st = b
				} else if b.released && e.released {
					st.released = true
				} else if b.deferred && e.deferred {
					st.deferred = true
				} else if b.terminated && e.terminated {
					st.terminated = true
				}
			}
		case *ast.BlockStmt:
			st = w.path(s.List, lock, unlock, st)
		case *ast.LabeledStmt:
			st = w.path([]ast.Stmt{s.Stmt}, lock, unlock, st)
		case *ast.ForStmt:
			w.path(s.Body.List, lock, unlock, st) // body may run zero times
		case *ast.RangeStmt:
			w.path(s.Body.List, lock, unlock, st)
		case *ast.SwitchStmt:
			w.pathClauses(s.Body, lock, unlock, st)
		case *ast.TypeSwitchStmt:
			w.pathClauses(s.Body, lock, unlock, st)
		case *ast.SelectStmt:
			w.pathClauses(s.Body, lock, unlock, st)
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				w.checkWALUse(r, st)
			}
		case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt, *ast.BranchStmt, *ast.EmptyStmt:
			w.checkWALUse(s, st)
		}
	}
	return st
}

// pathClauses walks each case/comm clause independently; a release inside
// one clause does not release the fall-through path (another clause may
// not have run it).
func (w *lockWalk) pathClauses(body *ast.BlockStmt, lock, unlock string, st lockState) {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			w.path(c.Body, lock, unlock, st)
		case *ast.CommClause:
			w.path(c.Body, lock, unlock, st)
		}
	}
}

// checkWALUse flags WAL I/O calls reached while the lock is held, unless
// the enclosing function is on the commit allowlist.
func (w *lockWalk) checkWALUse(n ast.Node, st lockState) {
	if st.released || st.terminated {
		return
	}
	for _, allowed := range w.cfg.CommitAllowlist {
		if w.fname == allowed {
			return
		}
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		if _, ok := nn.(*ast.FuncLit); ok {
			return false // closures run later, possibly after release
		}
		call, ok := nn.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, m, ok := methodCall(call)
		if !ok || !walMethodNames[m] {
			return true
		}
		ts := typeString(w.pkg.Info, recv)
		for _, want := range w.cfg.WALTypes {
			if strings.Contains(ts, want) {
				*w.diags = append(*w.diags, diag(w.prog, "lockcheck", call.Pos(),
					"WAL I/O %s.%s() in %s while a mutex is held (only the commit/checkpoint path may fsync or encode under the lock)",
					exprString(w.prog.Fset, recv), m, w.fname))
				return true
			}
		}
		return true
	})
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
