package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Governor is the feedback controller behind budget-governed telemetry
// sampling. PerfDMF traces itself, so the telemetry pipeline's SQL writes
// compete for CPU with the very workloads the spans describe; the governor
// keeps that self-inflicted cost inside an operator-set overhead budget by
// adjusting the head-sampling rate instead of letting the sink write every
// span it sees.
//
// The control loop is driven by the storage side: the telemetry writer
// reports the wall time of every group commit (ReportWrite). Once enough
// wall clock has passed since the last adjustment, the governor computes
// the write fraction — accumulated write time over elapsed time — and
// rescales the sample rate multiplicatively toward the write-time target.
// The target is half the configured budget: tracing itself (span creation,
// buffering, ring routing) consumes real headroom before a single row is
// written, so aiming the writes at the full budget would overshoot the
// end-to-end number the budget promises.
//
// Increases are damped (at most ×1.5 per window) so a quiet interval does
// not slingshot the rate back to 1.0 right before the next burst; decreases
// are taken at face value, because over-budget means the workload is being
// distorted right now.
//
// The writer also reports the attempts it had to give up (ReportStall):
// when the workload holds the engine's write lock in a long transaction,
// no telemetry write can land at all, so a stalled window skips the
// rescale and cuts the rate multiplicatively instead.
type Governor struct {
	budgetPct float64 // end-to-end overhead budget, percent
	targetPct float64 // write-time target: budgetPct * governorHeadroom
	disabled  bool    // budget <= 0: rate pinned at 0, persistence off

	rateMilli   atomic.Int64 // current sample rate in per-mille [minRateMilli, 1000]
	lastMilli   atomic.Int64 // last measured write overhead, per-mille of wall time
	adjustments atomic.Int64

	mu       sync.Mutex
	winStart time.Time
	writeNS  int64
	stalled  bool
}

const (
	// governorHeadroom is the fraction of the budget allotted to the write
	// path; the rest covers span creation and sink buffering.
	governorHeadroom = 0.5
	// governorWindow is the minimum wall time between rate adjustments.
	// Short enough that a one-second workload converges within its first
	// few flushes; long enough that back-to-back group commits are judged
	// against real elapsed time, not the microseconds between them.
	governorWindow = 25 * time.Millisecond
	// governorMaxRaise damps rate increases per adjustment window.
	governorMaxRaise = 1.5
	// minRateMilli floors the sample rate at 1%: the governor sheds load,
	// it never goes fully blind.
	minRateMilli = 10
	// governorStallDecay is the multiplicative rate cut per stalled window.
	// A stall means the writer could not take the engine's write lock at
	// all — the workload is in a long write transaction — so the governor
	// backs off much harder than a merely over-budget measurement would.
	governorStallDecay = 0.25
)

// Governor metrics, resolved once. The sample rate and measured overhead
// are integer gauges, so both are exported in per-mille.
var (
	govSampleRate      = Default.Gauge("obs_telemetry_sample_rate_permille")
	govAdjustments     = Default.Counter("obs_telemetry_governor_adjustments_total")
	govOverheadPermill = Default.Gauge("obs_telemetry_governor_overhead_permille")
	govBudgetPermill   = Default.Gauge("obs_telemetry_governor_budget_permille")
	govStalledWindows  = Default.Counter("obs_telemetry_governor_stalled_windows_total")
)

// NewGovernor returns a governor targeting budgetPct percent of end-to-end
// overhead. The initial sample rate is 1.0: capture everything until the
// measured write cost proves that too expensive. A budget of 0 (or less)
// is the degenerate "no overhead allowed" case: the rate is pinned at 0,
// every sampled span is shed, and feedback reports are ignored — distinct
// from a nil governor, which means "no budget, keep everything".
func NewGovernor(budgetPct float64) *Governor {
	g := &Governor{
		budgetPct: budgetPct,
		targetPct: budgetPct * governorHeadroom,
		disabled:  budgetPct <= 0,
		winStart:  time.Now(),
	}
	rate := int64(1000)
	if g.disabled {
		rate = 0
	}
	g.rateMilli.Store(rate)
	govSampleRate.Set(rate)
	govBudgetPermill.Set(int64(budgetPct * 10))
	return g
}

// Rate returns the current sample rate in [0.01, 1.0] — or exactly 0 for
// a disabled (budget <= 0) governor.
func (g *Governor) Rate() float64 {
	if g == nil {
		return 1
	}
	return float64(g.rateMilli.Load()) / 1000
}

// Disabled reports whether the governor was built with a zero (or
// negative) budget: the rate is pinned at 0 and the sink sheds every span,
// slow and error spans included.
func (g *Governor) Disabled() bool { return g != nil && g.disabled }

// BudgetPct returns the configured end-to-end overhead budget.
func (g *Governor) BudgetPct() float64 {
	if g == nil {
		return 0
	}
	return g.budgetPct
}

// OverheadPct returns the last measured write overhead (percent of wall
// time), 0 before the first adjustment.
func (g *Governor) OverheadPct() float64 {
	if g == nil {
		return 0
	}
	return float64(g.lastMilli.Load()) / 10
}

// Adjustments returns how many times the rate has been re-computed.
func (g *Governor) Adjustments() int64 {
	if g == nil {
		return 0
	}
	return g.adjustments.Load()
}

// ReportWrite feeds one storage write's duration into the control loop.
// Safe to call from any goroutine; nil governors ignore it.
func (g *Governor) ReportWrite(d time.Duration) {
	if g == nil {
		return
	}
	g.report(int64(d), false)
}

// ReportStall feeds one refused write attempt into the control loop: the
// writer found the engine's write lock held and deferred the group. A
// window containing a stall cuts the rate by governorStallDecay instead of
// rescaling against a measurement — during a long workload transaction no
// telemetry can be written at any price, and the backlog the sink keeps
// offering would only be shed later. Safe from any goroutine; nil
// governors ignore it.
func (g *Governor) ReportStall() {
	if g == nil {
		return
	}
	g.report(0, true)
}

func (g *Governor) report(writeNS int64, stalled bool) {
	if g.disabled {
		return // the rate is pinned at 0; there is nothing to govern
	}
	g.mu.Lock()
	g.writeNS += writeNS
	g.stalled = g.stalled || stalled
	wall := time.Since(g.winStart)
	if wall < governorWindow {
		g.mu.Unlock()
		return
	}
	winNS, winStalled := g.writeNS, g.stalled
	g.writeNS, g.stalled = 0, false
	g.winStart = time.Now()
	g.mu.Unlock()
	if winStalled {
		g.adjustStalled()
		return
	}
	g.adjust(100 * float64(winNS) / float64(wall))
}

// adjustStalled applies the stalled-window rate cut. The last measured
// overhead gauge is left untouched: a stall is the absence of a
// measurement, not a zero.
func (g *Governor) adjustStalled() {
	milli := int64(float64(g.rateMilli.Load()) * governorStallDecay)
	if milli < minRateMilli {
		milli = minRateMilli
	}
	g.rateMilli.Store(milli)
	g.adjustments.Add(1)
	govSampleRate.Set(milli)
	govAdjustments.Inc()
	govStalledWindows.Inc()
}

// adjust rescales the sample rate toward the write-time target given the
// measured write overhead (percent of wall time) of the closed window.
func (g *Governor) adjust(overheadPct float64) {
	cur := g.Rate()
	next := cur * governorMaxRaise
	if overheadPct > 0 {
		next = cur * g.targetPct / overheadPct
		if next > cur*governorMaxRaise {
			next = cur * governorMaxRaise
		}
	}
	milli := int64(next * 1000)
	if milli < minRateMilli {
		milli = minRateMilli
	}
	if milli > 1000 {
		milli = 1000
	}
	g.rateMilli.Store(milli)
	g.lastMilli.Store(int64(overheadPct * 10))
	g.adjustments.Add(1)
	govSampleRate.Set(milli)
	govOverheadPermill.Set(int64(overheadPct * 10))
	govAdjustments.Inc()
}
