package obs

import (
	"testing"
	"time"
)

// histAt feeds one synthetic registry snapshot into the ring at a fixed
// clock, bypassing the wall clock via absorb.
func histAt(h *History, at time.Time, counters map[string]int64, gauges map[string]int64, hists map[string]HistSnapshot) HistorySample {
	return h.absorb(Snapshot{Counters: counters, Gauges: gauges, Histograms: hists}, at)
}

// TestHistoryDeltaEncoding: a sample records only what moved — counter and
// histogram deltas, gauge level changes — so an idle interval is an empty
// sample, not a restatement of every metric.
func TestHistoryDeltaEncoding(t *testing.T) {
	h := NewHistory(8)
	t0 := time.Unix(1000, 0)

	s1 := histAt(h, t0,
		map[string]int64{"c_total": 5},
		map[string]int64{"depth": 2},
		map[string]HistSnapshot{"lat_ns": {Count: 3, Sum: 30, P50: 8, P95: 9, P99: 10}})
	if s1.Elapsed != 0 {
		t.Fatalf("first sample elapsed = %v, want 0", s1.Elapsed)
	}
	if len(s1.Points) != 3 {
		t.Fatalf("first sample has %d points, want 3: %+v", len(s1.Points), s1.Points)
	}

	// Nothing moved: the sample must be empty.
	s2 := histAt(h, t0.Add(time.Second),
		map[string]int64{"c_total": 5},
		map[string]int64{"depth": 2},
		map[string]HistSnapshot{"lat_ns": {Count: 3, Sum: 30, P95: 9}})
	if len(s2.Points) != 0 {
		t.Fatalf("idle sample has %d points, want 0: %+v", len(s2.Points), s2.Points)
	}
	if s2.Elapsed != time.Second {
		t.Fatalf("elapsed = %v, want 1s", s2.Elapsed)
	}

	s3 := histAt(h, t0.Add(2*time.Second),
		map[string]int64{"c_total": 9},
		map[string]int64{"depth": 7},
		map[string]HistSnapshot{"lat_ns": {Count: 5, Sum: 80, P95: 40}})
	if len(s3.Points) != 3 {
		t.Fatalf("active sample has %d points, want 3: %+v", len(s3.Points), s3.Points)
	}
	for _, p := range s3.Points {
		switch p.Name {
		case "c_total":
			if p.Kind != "counter" || p.Value != 4 {
				t.Fatalf("counter point = %+v, want delta 4", p)
			}
		case "depth":
			if p.Kind != "gauge" || p.Value != 7 {
				t.Fatalf("gauge point = %+v, want level 7", p)
			}
		case "lat_ns":
			if p.Kind != "histogram" || p.DeltaCount != 2 || p.DeltaSum != 50 || p.P95 != 40 {
				t.Fatalf("histogram point = %+v, want delta 2/50 p95 40", p)
			}
		}
	}
	if got := h.TotalSamples(); got != 3 {
		t.Fatalf("TotalSamples = %d, want 3", got)
	}
	if got := h.Metrics(); len(got) != 3 {
		t.Fatalf("Metrics = %v, want all three names remembered", got)
	}
}

// TestHistorySeriesAndWindow: counters reconstruct as per-second rates with
// absent points counting as rate 0; gauges carry their level forward; the
// window aggregates (avg, weighted rate, last) come out of the same series.
func TestHistorySeriesAndWindow(t *testing.T) {
	h := NewHistory(16)
	t0 := time.Unix(2000, 0)
	totals := []int64{0, 10, 10, 18}  // deltas: -, 10, 0, 8
	gauges := []int64{3, 3, 5, 5}     // points only at t0 and t2
	for i := range totals {
		histAt(h, t0.Add(time.Duration(i)*time.Second),
			map[string]int64{"c_total": totals[i]},
			map[string]int64{"depth": gauges[i]}, nil)
	}

	kind, pts, ok := h.Series("c_total", time.Minute)
	if !ok || kind != "counter" {
		t.Fatalf("Series(c_total) kind=%q ok=%v", kind, ok)
	}
	// The first-ever sample has no interval, so three rate points remain.
	want := []float64{10, 0, 8}
	if len(pts) != len(want) {
		t.Fatalf("series has %d points, want %d: %+v", len(pts), len(want), pts)
	}
	for i, w := range want {
		if pts[i].Value != w {
			t.Fatalf("rate[%d] = %v, want %v", i, pts[i].Value, w)
		}
	}

	_, gpts, ok := h.Series("depth", time.Minute)
	if !ok || len(gpts) != 4 {
		t.Fatalf("gauge series = %+v ok=%v, want 4 carried-forward points", gpts, ok)
	}
	if gpts[1].Value != 3 || gpts[3].Value != 5 {
		t.Fatalf("gauge carry-forward broken: %+v", gpts)
	}

	st, ok := h.Window("c_total", time.Minute)
	if !ok {
		t.Fatal("Window(c_total) not ok")
	}
	if st.RatePerSec != 6 { // 18 total delta over 3 covered seconds
		t.Fatalf("weighted rate = %v, want 6", st.RatePerSec)
	}
	if st.Avg != 6 || st.Last != 8 || st.Min != 0 || st.Max != 10 {
		t.Fatalf("window stats = %+v", st)
	}

	// The window anchors at the newest sample, boundary inclusive: a 1s
	// window covers the final interval plus the sample sitting exactly on
	// the cutoff, so 8 delta over 2 covered seconds.
	st, ok = h.Window("c_total", time.Second)
	if !ok || st.RatePerSec != 4 {
		t.Fatalf("1s window rate = %v ok=%v, want 4", st.RatePerSec, ok)
	}

	if _, _, ok := h.Series("never_seen_total", time.Minute); ok {
		t.Fatal("unknown metric must report ok=false")
	}
	if _, ok := h.Window("never_seen_total", time.Minute); ok {
		t.Fatal("unknown metric window must report ok=false")
	}
}

// TestHistoryRingWrap: the ring keeps the newest cap samples oldest-first
// while the lifetime counter keeps counting.
func TestHistoryRingWrap(t *testing.T) {
	h := NewHistory(4)
	t0 := time.Unix(3000, 0)
	for i := 0; i < 7; i++ {
		histAt(h, t0.Add(time.Duration(i)*time.Second),
			map[string]int64{"c_total": int64(i * 10)}, nil, nil)
	}
	got := h.Samples()
	if len(got) != 4 {
		t.Fatalf("ring holds %d samples, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i].At.After(got[i-1].At) {
			t.Fatalf("samples not oldest-first: %v then %v", got[i-1].At, got[i].At)
		}
	}
	if want := t0.Add(6 * time.Second); !got[3].At.Equal(want) {
		t.Fatalf("newest sample at %v, want %v", got[3].At, want)
	}
	if h.TotalSamples() != 7 {
		t.Fatalf("TotalSamples = %d, want 7", h.TotalSamples())
	}
	if !h.LastAt().Equal(t0.Add(6 * time.Second)) {
		t.Fatalf("LastAt = %v", h.LastAt())
	}
}
