package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGovernorDegenerateBudgets: a zero or negative budget is the "no
// overhead allowed" configuration — the rate pins at 0, feedback is
// ignored (no divide-by-zero on the 0% target), and the sink sheds every
// span including slow and error ones. Distinct from a nil governor, which
// keeps everything.
func TestGovernorDegenerateBudgets(t *testing.T) {
	for _, budget := range []float64{0, -1, -100} {
		g := NewGovernor(budget)
		if !g.Disabled() {
			t.Fatalf("NewGovernor(%v).Disabled() = false, want true", budget)
		}
		if r := g.Rate(); r != 0 {
			t.Fatalf("NewGovernor(%v).Rate() = %v, want 0", budget, r)
		}
		// Feedback against a 0% target must not panic or divide by zero,
		// and must not wake the rate back up.
		g.ReportWrite(time.Second)
		g.ReportStall()
		g.ReportWrite(0)
		if r := g.Rate(); r != 0 {
			t.Fatalf("rate after feedback on disabled governor = %v, want 0", r)
		}
		if n := g.Adjustments(); n != 0 {
			t.Fatalf("disabled governor adjusted %d times, want 0", n)
		}
	}

	stored := 0
	s := NewTelemetrySink(func(batch []SinkEntry) error {
		stored += len(batch)
		return nil
	}, SinkOptions{Capacity: 8, Governor: NewGovernor(0)})
	before := sinkSampledOut.Value()
	s.Offer(&Span{ID: 1, Kind: "exec"}, false)
	s.Offer(&Span{ID: 2, Kind: "query"}, true)          // slow: still shed
	s.Offer(&Span{ID: 3, Kind: "exec", Err: "x"}, false) // error: still shed
	if got := s.Buffered(); got != 0 {
		t.Fatalf("disabled-governor sink buffered %d spans, want 0", got)
	}
	if got := sinkSampledOut.Value() - before; got != 3 {
		t.Fatalf("sampled-out delta = %d, want 3", got)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if stored != 0 {
		t.Fatalf("stored %d spans through a disabled governor, want 0", stored)
	}
}

// TestSinkDropMonotonicUnderConcurrentOffer: with a wedged store and a tiny
// buffer, concurrent producers must observe the drop counter only ever
// increasing, and the final count must balance the offers against the
// buffer capacity exactly — no drop is lost or double-counted under
// contention.
func TestSinkDropMonotonicUnderConcurrentOffer(t *testing.T) {
	const (
		producers = 8
		perProd   = 200
		capacity  = 4
	)
	s := NewTelemetrySink(func([]SinkEntry) error { return nil }, SinkOptions{Capacity: capacity})
	before := s.Dropped()

	var stop atomic.Bool
	monotone := make(chan error, 1)
	go func() {
		last := s.Dropped()
		for !stop.Load() {
			now := s.Dropped()
			if now < last {
				monotone <- fmt.Errorf("drop counter went backwards: %d after %d", now, last)
				return
			}
			last = now
		}
		monotone <- nil
	}()

	var wg sync.WaitGroup
	var id atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				s.Offer(&Span{ID: id.Add(1), Kind: "exec"}, false)
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	if err := <-monotone; err != nil {
		t.Fatal(err)
	}

	dropped := s.Dropped() - before
	buffered := int64(s.Buffered())
	if dropped+buffered != producers*perProd {
		t.Fatalf("dropped %d + buffered %d != offered %d", dropped, buffered, producers*perProd)
	}
	if buffered != capacity {
		t.Fatalf("buffered = %d, want full capacity %d", buffered, capacity)
	}
}
