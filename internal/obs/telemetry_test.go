package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSinkBackpressure proves the sink drops (and counts) entries rather
// than blocking the producer: the store callback is blocked for the whole
// test, the buffer holds Capacity entries, and every extra Offer returns
// immediately as a counted drop.
func TestSinkBackpressure(t *testing.T) {
	block := make(chan struct{})
	storeEntered := make(chan struct{})
	s := NewTelemetrySink(func(batch []SinkEntry) error {
		close(storeEntered)
		<-block // simulate a wedged database
		return nil
	}, SinkOptions{Capacity: 4})

	droppedBefore := sinkDropped.Value()
	for i := 0; i < 4; i++ {
		s.Offer(&Span{ID: int64(i + 1), Kind: "exec"}, false)
	}
	if got := s.Buffered(); got != 4 {
		t.Fatalf("buffered = %d, want 4", got)
	}

	// Flush hands the batch to the (blocked) store on this goroutine's
	// stack — run it in the background and keep producing meanwhile.
	flushDone := make(chan error, 1)
	go func() { flushDone <- s.Flush() }()
	<-storeEntered

	// The store is wedged; Offer must still complete instantly and the
	// buffer must refill up to capacity, then drop.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			s.Offer(&Span{ID: int64(100 + i), Kind: "query"}, false)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Offer blocked behind a wedged store")
	}
	if got := s.Buffered(); got != 4 {
		t.Fatalf("buffered after refill = %d, want 4 (capacity)", got)
	}
	if got := sinkDropped.Value() - droppedBefore; got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}

	close(block)
	if err := <-flushDone; err != nil {
		t.Fatalf("flush: %v", err)
	}
}

// TestSinkFlushAndClose checks batching, the stored counter, error counting,
// and that Close performs a final flush after stopping the loop.
func TestSinkFlushAndClose(t *testing.T) {
	var mu sync.Mutex
	var got []int64
	fail := false
	s := NewTelemetrySink(func(batch []SinkEntry) error {
		if fail {
			return fmt.Errorf("store down")
		}
		mu.Lock()
		for _, e := range batch {
			got = append(got, e.Span.ID)
		}
		mu.Unlock()
		return nil
	}, SinkOptions{Capacity: 100, FlushEvery: time.Hour})
	s.Start()

	storedBefore, errsBefore := sinkStored.Value(), sinkStoreErrs.Value()
	s.Offer(&Span{ID: 1}, false)
	s.Offer(&Span{ID: 2}, true)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("stored ids = %v", got)
	}
	if d := sinkStored.Value() - storedBefore; d != 2 {
		t.Fatalf("stored counter moved by %d, want 2", d)
	}

	fail = true
	s.Offer(&Span{ID: 3}, false)
	if err := s.Flush(); err == nil {
		t.Fatal("flush swallowed a store error")
	}
	if d := sinkStoreErrs.Value() - errsBefore; d != 1 {
		t.Fatalf("store error counter moved by %d, want 1", d)
	}
	fail = false

	s.Offer(&Span{ID: 4}, false)
	if err := s.Close(); err != nil { // final flush
		t.Fatal(err)
	}
	mu.Lock()
	last := got[len(got)-1]
	mu.Unlock()
	if last != 4 {
		t.Fatalf("Close did not flush the tail: %v", got)
	}
	// Close on a never-started sink still flushes.
	s2 := NewTelemetrySink(func(batch []SinkEntry) error { return nil }, SinkOptions{})
	s2.Offer(&Span{ID: 9}, false)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSinkInstall(t *testing.T) {
	if SinkActive() {
		t.Fatal("sink active before install")
	}
	s := NewTelemetrySink(func([]SinkEntry) error { return nil }, SinkOptions{})
	InstallSink(s)
	if !SinkActive() || ActiveSink() != s {
		t.Fatal("install did not take")
	}
	UninstallSink()
	if SinkActive() {
		t.Fatal("uninstall did not take")
	}
}

func TestSpanIDAndOp(t *testing.T) {
	a, b := NextSpanID(), NextSpanID()
	if b != a+1 {
		t.Fatalf("ids not monotonic: %d then %d", a, b)
	}
	sp := &Span{ID: 42, Kind: "query", Statement: "select *\n from t", Start: time.Unix(0, 0).UTC()}
	if op := sp.Op(); op != "SELECT" {
		t.Fatalf("op = %q", op)
	}
	if op := (&Span{}).Op(); op != "" {
		t.Fatalf("empty-statement op = %q", op)
	}
	line := sp.String()
	if !strings.Contains(line, "id=42") {
		t.Fatalf("log line missing span id: %s", line)
	}
	if !strings.HasPrefix(line, "1970-01-01T00:00:00Z") {
		t.Fatalf("log line missing wall-clock start: %s", line)
	}
}

// TestSnapshotQuantiles checks p50/p95/p99 surface in both exposition
// formats: precomputed fields in the JSON snapshot shape, and
// quantile-labelled series in the Prometheus text output.
func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	for i := 0; i < 99; i++ {
		h.Observe(3) // bucket [2,4)
	}
	h.Observe(1000) // bucket [512,1024)
	s := r.Snapshot().Histograms["lat_ns"]
	if s.P50 != 4 || s.P95 != 4 {
		t.Fatalf("p50=%d p95=%d, want 4", s.P50, s.P95)
	}
	if s.P99 != 4 || s.Quantile(1.0) != 1024 {
		t.Fatalf("p99=%d q100=%d", s.P99, s.Quantile(1.0))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_ns{quantile="0.5"} 4`,
		`lat_ns{quantile="0.95"} 4`,
		`lat_ns{quantile="0.99"} 4`,
		`lat_ns_bucket{le="4"} 99`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrentRegistration hammers first-use registration of many
// distinct metric names from many goroutines while snapshots are taken —
// the lock-upgrade path in Counter/Gauge/Histogram under -race.
func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				name := fmt.Sprintf("m_%d", j%50)
				r.Counter(name).Inc()
				r.Gauge(name + "_g").Set(int64(j))
				r.Histogram(name + "_ns").Observe(int64(j))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	if got := r.Counter("m_0").Value(); got != 8*4 {
		t.Fatalf("m_0 = %d, want 32", got)
	}
	if got := len(r.Snapshot().Counters); got != 50 {
		t.Fatalf("registered %d counters, want 50", got)
	}
}

// TestSinkDropCounterExported: drop accounting is a first-class metric —
// obs_telemetry_dropped_total lives on the default registry, so every drop
// shows up in the Prometheus exposition /metrics serves.
func TestSinkDropCounterExported(t *testing.T) {
	s := NewTelemetrySink(func([]SinkEntry) error { return nil }, SinkOptions{Capacity: 2})
	before := sinkDropped.Value()
	for i := 0; i < 5; i++ {
		s.Offer(&Span{ID: int64(i + 1), Kind: "exec"}, false)
	}
	if got := s.Dropped() - before; got != 3 {
		t.Fatalf("dropped = %d, want 3 (capacity 2, 5 offers)", got)
	}
	var buf strings.Builder
	if err := Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var total int64 = -1
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "obs_telemetry_dropped_total ") {
			fmt.Sscan(strings.TrimPrefix(line, "obs_telemetry_dropped_total "), &total) //nolint:errcheck // asserted below
		}
	}
	if total < before+3 {
		t.Fatalf("exposition reports obs_telemetry_dropped_total %d, want >= %d:\n%s", total, before+3, buf.String())
	}
}
