// Span trees: causal, context-propagated traces across the framework
// layers. A workload root (an upload, a load, an analysis op) starts a
// span with StartSpan, which parks it in the returned context; nested
// framework phases started from that context become children, and the
// godbc statement spans issued under a bound connection become leaves.
// The result is one tree per workload — parse → upload phases →
// individual statements — instead of a flat statement stream.
package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"
)

// spanCtxKey keys the active span inside a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sp as the active span. Spans
// started from the returned context (StartSpan, or statements on a bound
// connection) become children of sp.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the active span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpan begins a framework span of the given kind ("parse", "upload",
// "analysis", ...) named like "upload:trialX". When no consumer is active
// (tracing off, no slow-query threshold, no sink) and ctx carries no
// parent, it returns (ctx, nil) — and a nil *Span is safe to Finish — so
// instrumented code pays nothing while observability is off. When ctx
// carries a parent span, the child inherits the parent's Root and records
// its ParentID; otherwise the new span is a root and Root is its own name.
func StartSpan(ctx context.Context, kind, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil && !TracingEnabled() && SlowQueryThreshold() <= 0 && !SinkActive() {
		return ctx, nil
	}
	sp := &Span{ID: NextSpanID(), Kind: kind, Name: name, Start: time.Now()}
	if parent != nil {
		sp.ParentID = parent.ID
		sp.Root = parent.Root
	} else {
		sp.Root = name
	}
	return ContextWithSpan(ctx, sp), sp
}

// Finish stamps the span's total duration and error and routes it to the
// global tracer, slow-query log, and telemetry sink. Safe on a nil span.
func (sp *Span) Finish(err error) {
	if sp == nil {
		return
	}
	sp.Total = time.Since(sp.Start)
	if err != nil {
		sp.Err = err.Error()
	}
	RouteSpan(sp, TracingEnabled(), SlowQueryThreshold())
}

// RouteSpan delivers a completed span to the consumers selected by the
// caller-resolved switches: the tracer ring when trace is set, the
// slow-query log when the span's total crosses slow, and the installed
// telemetry sink always. godbc resolves trace/slow per connection;
// framework spans pass the globals.
func RouteSpan(sp *Span, trace bool, slow time.Duration) {
	if trace {
		DefaultTracer.Record(sp)
	}
	isSlow := slow > 0 && sp.Total >= slow
	if isSlow {
		DefaultSlowLog.Record(sp)
	}
	if s := ActiveSink(); s != nil {
		s.Offer(sp, isSlow)
	}
}

// --- tree assembly and rendering ---

// TreeNode is one span plus its children, assembled by BuildTrees. SelfNS
// is the span's own time: total minus the sum of the children's totals,
// clamped at zero (children may overlap when recorded concurrently).
type TreeNode struct {
	*Span
	SelfNS   int64       `json:"self_ns"`
	Children []*TreeNode `json:"children,omitempty"`
}

// BuildTrees assembles a forest from a flat span list. Spans whose
// ParentID is zero — or names a span absent from the list (e.g. evicted
// from a bounded ring, or a pre-migration row) — become roots. Roots and
// children are ordered by span ID, which is monotonic in start order.
func BuildTrees(spans []*Span) []*TreeNode {
	nodes := make(map[int64]*TreeNode, len(spans))
	for _, sp := range spans {
		if sp == nil {
			continue
		}
		nodes[sp.ID] = &TreeNode{Span: sp}
	}
	var roots []*TreeNode
	for _, sp := range spans {
		if sp == nil {
			continue
		}
		n := nodes[sp.ID]
		if p, ok := nodes[sp.ParentID]; ok && sp.ParentID != sp.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var finish func(n *TreeNode)
	finish = func(n *TreeNode) {
		sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].ID < n.Children[j].ID })
		self := n.Total
		for _, c := range n.Children {
			finish(c)
			self -= c.Total
		}
		if self < 0 {
			self = 0
		}
		n.SelfNS = int64(self)
	}
	for _, r := range roots {
		finish(r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })
	return roots
}

// Depth returns the number of levels in the subtree rooted at n (1 for a
// leaf).
func (n *TreeNode) Depth() int {
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// WriteTree pretty-prints the subtree rooted at n: one line per span with
// its label, kind, total and self time, and row counts when present.
func WriteTree(w io.Writer, n *TreeNode) {
	writeTreeNode(w, n, "", true, true)
}

func writeTreeNode(w io.Writer, n *TreeNode, prefix string, first, last bool) {
	connector := ""
	if !first {
		connector = "├─ "
		if last {
			connector = "└─ "
		}
	}
	fmt.Fprintf(w, "%s%s%s [%s] total=%v self=%v", //nolint:errcheck
		prefix, connector, n.Label(120), n.Kind,
		n.Total.Round(time.Microsecond), time.Duration(n.SelfNS).Round(time.Microsecond))
	if n.RowsScanned != 0 || n.RowsReturned != 0 {
		fmt.Fprintf(w, " rows=%d/%d", n.RowsScanned, n.RowsReturned) //nolint:errcheck
	}
	if n.Err != "" {
		fmt.Fprintf(w, " err=%q", n.Err) //nolint:errcheck
	}
	fmt.Fprintln(w) //nolint:errcheck
	childPrefix := prefix
	if !first {
		if last {
			childPrefix += "   "
		} else {
			childPrefix += "│  "
		}
	}
	for i, c := range n.Children {
		writeTreeNode(w, c, childPrefix, false, i == len(n.Children)-1)
	}
}
