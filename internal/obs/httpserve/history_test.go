package httpserve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"perfdmf/internal/godbc"
	"perfdmf/internal/obs"
)

// TestHistoryEndpoint: /history lists the known metrics, serves windowed
// aggregates plus the per-sample series for one, 404s on never-seen
// metrics, and 400s on an unparseable window.
func TestHistoryEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{}))
	defer srv.Close()

	if code, _ := get(t, srv, "/history?metric=never_scraped_total"); code != http.StatusNotFound {
		t.Fatalf("unknown metric = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/history?metric=x&window=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad window = %d, want 400", code)
	}

	probe := obs.Default.Counter("httpserve_hist_probe_total")
	probe.Inc()
	obs.DefaultHistory.Sample(obs.Default)
	probe.Add(3)
	obs.DefaultHistory.Sample(obs.Default)

	code, body := get(t, srv, "/history")
	if code != http.StatusOK {
		t.Fatalf("GET /history = %d: %s", code, body)
	}
	var list struct {
		Metrics []string  `json:"metrics"`
		Samples int64     `json:"samples"`
		LastAt  time.Time `json:"last_at"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range list.Metrics {
		if m == "httpserve_hist_probe_total" {
			found = true
		}
	}
	if !found || list.Samples < 2 || list.LastAt.IsZero() {
		t.Fatalf("history listing = %+v, want the probe metric and >=2 samples", list)
	}

	code, body = get(t, srv, "/history?metric=httpserve_hist_probe_total&window=1h")
	if code != http.StatusOK {
		t.Fatalf("GET /history?metric = %d: %s", code, body)
	}
	var detail struct {
		Stats  obs.WindowStats   `json:"stats"`
		Points []obs.SeriesPoint `json:"points"`
	}
	if err := json.Unmarshal([]byte(body), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Stats.Metric != "httpserve_hist_probe_total" || detail.Stats.Kind != "counter" {
		t.Fatalf("stats identity = %+v", detail.Stats)
	}
	if len(detail.Points) == 0 {
		t.Fatalf("no series points: %s", body)
	}
}

// TestAlertsEndpointAndScrapeAge: with a history-enabled pipeline running,
// /alerts reports the loaded rules and /healthz's telemetry block carries a
// real last_scrape_age_ms instead of the -1 sentinel.
func TestAlertsEndpointAndScrapeAge(t *testing.T) {
	dsn := "mem:httpserve_alerts"
	c, err := godbc.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := godbc.AddAlertRule(c, obs.AlertRule{
		Name: "never-fires", Metric: "godbc_exec_total", Op: "gt", Threshold: 1e15,
	}); err != nil {
		t.Fatal(err)
	}

	stop, err := godbc.StartTelemetry(dsn, godbc.TelemetryOptions{HistoryEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer stop() //nolint:errcheck // best-effort cleanup

	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, ok := godbc.TelemetryState(); ok && !st.LastScrape.IsZero() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scrape loop never ran")
		}
		time.Sleep(time.Millisecond)
	}

	srv := httptest.NewServer(NewHandler(Options{}))
	defer srv.Close()

	code, body := get(t, srv, "/alerts")
	if code != http.StatusOK {
		t.Fatalf("GET /alerts = %d: %s", code, body)
	}
	var alerts struct {
		Active bool              `json:"active"`
		Alerts []obs.AlertStatus `json:"alerts"`
	}
	if err := json.Unmarshal([]byte(body), &alerts); err != nil {
		t.Fatal(err)
	}
	if !alerts.Active {
		t.Fatalf("alerts.active = false while the pipeline runs: %s", body)
	}
	var rule *obs.AlertStatus
	for i := range alerts.Alerts {
		if alerts.Alerts[i].RuleName == "never-fires" {
			rule = &alerts.Alerts[i]
		}
	}
	if rule == nil || rule.State != obs.AlertStateOK {
		t.Fatalf("/alerts = %s, want never-fires in state ok", body)
	}

	code, body = get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d: %s", code, body)
	}
	var resp HealthResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Telemetry == nil {
		t.Fatalf("healthz has no telemetry block: %s", body)
	}
	if resp.Telemetry.LastScrapeAgeMS < 0 {
		t.Fatalf("last_scrape_age_ms = %d, want a real age", resp.Telemetry.LastScrapeAgeMS)
	}
	if resp.Telemetry.AlertsFiring != 0 {
		t.Fatalf("alerts_firing = %d, want 0", resp.Telemetry.AlertsFiring)
	}
}
