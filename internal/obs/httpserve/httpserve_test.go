package httpserve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"perfdmf/internal/godbc"
	"perfdmf/internal/obs"
	"perfdmf/internal/sqlexec"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint is the acceptance scrape: /metrics must expose both
// engine counters (fed by real godbc statements) and runtime-collector
// gauges from one registry.
func TestMetricsEndpoint(t *testing.T) {
	c, err := godbc.Open("mem:httpserve_metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE m (id BIGINT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO m (id) VALUES (?)", 1); err != nil {
		t.Fatal(err)
	}

	col := NewCollector(nil, func() int { return 7 })
	col.CollectNow()

	srv := httptest.NewServer(NewHandler(Options{}))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{
		"godbc_exec_total",    // engine counter
		"go_goroutines",       // runtime gauge
		"go_heap_alloc_bytes", // runtime gauge
		"reldb_wal_ops_pending 7",
		"# TYPE godbc_exec_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, srv, "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics.json = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics.json does not parse as a snapshot: %v", err)
	}
	if snap.Counters["godbc_exec_total"] < 2 {
		t.Errorf("snapshot godbc_exec_total = %d", snap.Counters["godbc_exec_total"])
	}
	if _, ok := snap.Gauges["go_goroutines"]; !ok {
		t.Error("snapshot missing go_goroutines gauge")
	}
}

// TestMetricsJSONQuantiles: histogram snapshots in /metrics.json carry the
// p50/p95/p99 fields, and /metrics carries quantile series.
func TestMetricsJSONQuantiles(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("test_lat_ns")
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	srv := httptest.NewServer(NewHandler(Options{Registry: reg}))
	defer srv.Close()

	_, body := get(t, srv, "/metrics.json")
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	hs := snap.Histograms["test_lat_ns"]
	if hs.P50 != 4 || hs.P95 != 4 || hs.P99 != 4 {
		t.Errorf("quantiles = %d/%d/%d, want 4/4/4", hs.P50, hs.P95, hs.P99)
	}
	_, prom := get(t, srv, "/metrics")
	if !strings.Contains(prom, `test_lat_ns{quantile="0.99"} 4`) {
		t.Errorf("/metrics missing quantile series:\n%s", prom)
	}
}

func TestHealthz(t *testing.T) {
	dir := t.TempDir()
	c, err := godbc.Open("file:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hr := c.(godbc.HealthReporter)

	srv := httptest.NewServer(NewHandler(Options{Health: hr.Health}))
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d: %s", code, body)
	}
	var resp HealthResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.DB == nil || !resp.DB.Open || !resp.DB.Durable || !resp.DB.WALWritable {
		t.Fatalf("healthz = %+v", resp)
	}

	// A stale checkpoint flips the probe to degraded/503.
	stale := httptest.NewServer(NewHandler(Options{
		Health: func() (godbc.Health, error) {
			h, err := hr.Health()
			h.LastCheckpoint = time.Now().Add(-time.Hour)
			return h, err
		},
		MaxCheckpointAge: time.Minute,
	}))
	defer stale.Close()
	code, body = get(t, stale, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("stale-checkpoint healthz = %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "degraded" || resp.CheckpointAgeSeconds < 3000 {
		t.Fatalf("stale healthz = %+v", resp)
	}
}

func TestHealthzNoDB(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{}))
	defer srv.Close()
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("no-DB healthz = %d: %s", code, body)
	}
}

func TestTracesAndSlowlog(t *testing.T) {
	tr := obs.NewTracer(8)
	sl := obs.NewSlowLog(8)
	for i := 1; i <= 5; i++ {
		sp := &obs.Span{ID: int64(i), Kind: "query", Statement: "SELECT 1", Total: time.Duration(i) * time.Millisecond}
		tr.Record(sp)
		if i%2 == 1 {
			sl.Record(sp)
		}
	}
	srv := httptest.NewServer(NewHandler(Options{Tracer: tr, SlowLog: sl}))
	defer srv.Close()

	code, body := get(t, srv, "/traces?n=2")
	if code != http.StatusOK {
		t.Fatalf("GET /traces = %d", code)
	}
	var spans []*obs.Span
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].ID != 4 || spans[1].ID != 5 {
		t.Fatalf("traces?n=2 = %s", body)
	}

	code, body = get(t, srv, "/slowlog")
	if code != http.StatusOK {
		t.Fatalf("GET /slowlog = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("slowlog = %s", body)
	}

	if code, _ := get(t, srv, "/traces?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("traces?n=bogus = %d", code)
	}
}

func TestPprofMounted(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{}))
	defer srv.Close()
	code, body := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("GET /debug/pprof/ = %d", code)
	}
}

func TestGetOnly(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{}))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d", resp.StatusCode)
	}
}

func TestCollectorStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	col := NewCollector(reg, nil)
	col.Start(time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	col.Stop()
	col.Stop() // idempotent
	if reg.Snapshot().Gauges["go_goroutines"] == 0 {
		t.Fatal("collector never sampled go_goroutines")
	}

	// Never-started collectors stop cleanly too.
	NewCollector(reg, nil).Stop()
}

// TestMetricsTelemetryDropCounter: sink backpressure drops surface on the
// /metrics scrape via obs_telemetry_dropped_total.
func TestMetricsTelemetryDropCounter(t *testing.T) {
	sink := obs.NewTelemetrySink(func([]obs.SinkEntry) error { return nil }, obs.SinkOptions{Capacity: 1})
	before := sink.Dropped()
	for i := 0; i < 3; i++ {
		sink.Offer(&obs.Span{ID: int64(i + 1), Kind: "exec"}, false)
	}
	if got := sink.Dropped() - before; got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	srv := httptest.NewServer(NewHandler(Options{}))
	defer srv.Close()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "obs_telemetry_dropped_total") {
		t.Fatalf("/metrics (%d) missing obs_telemetry_dropped_total", code)
	}
}

// TestHealthzPlanCacheAndCheckpoint covers the two derived health fields:
// the plan-cache hit ratio computed from the registry counters, and the
// checkpoint age computed from the probe's LastCheckpoint.
func TestHealthzPlanCacheAndCheckpoint(t *testing.T) {
	reg := obs.NewRegistry()
	hits := reg.Counter("sqlexec_plan_cache_hits_total")
	misses := reg.Counter("sqlexec_plan_cache_misses_total")
	for i := 0; i < 3; i++ {
		hits.Inc()
	}
	misses.Inc()
	srv := httptest.NewServer(NewHandler(Options{
		Registry: reg,
		Health: func() (godbc.Health, error) {
			return godbc.Health{
				Open: true, Durable: true, WALWritable: true,
				LastCheckpoint: time.Now().Add(-30 * time.Second),
			}, nil
		},
	}))
	defer srv.Close()
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d: %s", code, body)
	}
	var resp HealthResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PlanCacheHitRatio != 0.75 {
		t.Errorf("plan_cache_hit_ratio = %v, want 0.75", resp.PlanCacheHitRatio)
	}
	if resp.CheckpointAgeSeconds < 29 || resp.CheckpointAgeSeconds > 120 {
		t.Errorf("checkpoint_age_seconds = %v, want ~30", resp.CheckpointAgeSeconds)
	}

	// Before any statements have run the ratio reports 0, not NaN.
	empty := httptest.NewServer(NewHandler(Options{Registry: obs.NewRegistry()}))
	defer empty.Close()
	_, body = get(t, empty, "/healthz")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PlanCacheHitRatio != 0 {
		t.Errorf("cold plan_cache_hit_ratio = %v, want 0", resp.PlanCacheHitRatio)
	}
}

// TestStatementsEndpoint: GET /statements lists the live registry; DELETE
// /statements/<id> kills (404 for unknown ids, 405 for other methods).
func TestStatementsEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{}))
	defer srv.Close()

	code, body := get(t, srv, "/statements")
	if code != http.StatusOK {
		t.Fatalf("GET /statements = %d", code)
	}
	var stmts []sqlexec.StmtInfo
	if err := json.Unmarshal([]byte(body), &stmts); err != nil {
		t.Fatalf("/statements does not parse: %v\n%s", err, body)
	}

	// A registered statement appears, and DELETE kills it.
	entry := sqlexec.Statements.Begin("SELECT 1", "query")
	defer entry.Finish()
	_, body = get(t, srv, "/statements")
	if !strings.Contains(body, `"SELECT 1"`) {
		t.Fatalf("/statements missing live statement:\n%s", body)
	}

	del := func(path string) (int, string) {
		req, err := http.NewRequest(http.MethodDelete, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, _ := del("/statements/999999999"); code != http.StatusNotFound {
		t.Errorf("DELETE unknown id = %d, want 404", code)
	}
	if code, _ := del("/statements/bogus"); code != http.StatusBadRequest {
		t.Errorf("DELETE bogus id = %d, want 400", code)
	}
	code, body = del(fmt.Sprintf("/statements/%d", entry.ID()))
	if code != http.StatusOK || !strings.Contains(body, `"killed"`) {
		t.Errorf("DELETE live id = %d: %s", code, body)
	}
	if entry.Err() == nil {
		t.Error("entry not cancelled after DELETE")
	}

	// Non-DELETE methods on /statements/<id> are rejected.
	resp, err := srv.Client().Post(srv.URL+"/statements/1", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /statements/1 = %d, want 405", resp.StatusCode)
	}
}

// TestHealthzTelemetryBlock: once StartTelemetry has run, /healthz carries
// the pipeline block — queue depth and capacity, drop and prune counters,
// the sample rate, and the age of the last flush — and keeps reporting it
// (active=false) after the pipeline stops.
func TestHealthzTelemetryBlock(t *testing.T) {
	stop, err := godbc.StartTelemetry("mem:healthz_telemetry",
		godbc.TelemetryOptions{Sink: obs.SinkOptions{FlushEvery: 5 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	stopped := false
	defer func() {
		if !stopped {
			stop() //nolint:errcheck // best-effort cleanup on failure paths
		}
	}()

	// Produce some telemetry and let at least one flush complete so
	// last_flush_age_seconds is a real age, not the -1 sentinel.
	c, err := godbc.Open("mem:healthz_telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE hz (n BIGINT)"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, ok := godbc.TelemetryState(); ok && !st.LastFlush.IsZero() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sink never flushed")
		}
		time.Sleep(time.Millisecond)
	}

	srv := httptest.NewServer(NewHandler(Options{}))
	defer srv.Close()
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d: %s", code, body)
	}
	var resp HealthResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	tel := resp.Telemetry
	if tel == nil {
		t.Fatalf("healthz has no telemetry block: %s", body)
	}
	if !tel.Active {
		t.Fatalf("telemetry.active = false while the pipeline runs: %+v", tel)
	}
	if tel.QueueCapacity <= 0 || tel.QueueDepth < 0 || tel.QueueDepth > tel.QueueCapacity {
		t.Fatalf("queue depth/capacity = %d/%d", tel.QueueDepth, tel.QueueCapacity)
	}
	if tel.SampleRate <= 0 || tel.SampleRate > 1 {
		t.Fatalf("sample_rate = %v, want (0, 1]", tel.SampleRate)
	}
	if tel.LastFlushAgeSeconds < 0 {
		t.Fatalf("last_flush_age_seconds = %v after a flush", tel.LastFlushAgeSeconds)
	}
	for _, want := range []string{
		"telemetry_queue_depth", "telemetry_dropped_total", "last_flush_age_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("healthz body missing %q: %s", want, body)
		}
	}

	stopped = true
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz after stop = %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Telemetry == nil || resp.Telemetry.Active {
		t.Fatalf("telemetry block after stop = %+v, want present with active=false", resp.Telemetry)
	}
}
