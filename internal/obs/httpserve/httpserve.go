// Package httpserve is the HTTP face of PerfDMF's observability layer — the
// engine behind `perfdmf serve`. It exposes the obs registry in Prometheus
// text and JSON form, a liveness/durability health probe, the recent trace
// and slow-query rings, and net/http/pprof, all over plain net/http.
//
// The package sits above godbc (for the health probe) and obs; nothing in
// the engine stack imports it.
package httpserve

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"perfdmf/internal/godbc"
	"perfdmf/internal/obs"
)

// Options configures a monitoring handler. Zero values fall back to the
// process-wide obs globals, so Options{} serves the default registry.
type Options struct {
	// Registry backs /metrics and /metrics.json. Default: obs.Default.
	Registry *obs.Registry
	// Tracer backs /traces. Default: obs.DefaultTracer.
	Tracer *obs.Tracer
	// SlowLog backs /slowlog. Default: obs.DefaultSlowLog.
	SlowLog *obs.SlowLog
	// Health probes the served database for /healthz. When nil, /healthz
	// only reports process liveness.
	Health func() (godbc.Health, error)
	// MaxCheckpointAge marks a durable database degraded when its last
	// checkpoint is older than this. Zero disables the age check.
	MaxCheckpointAge time.Duration
}

func (o *Options) fill() {
	if o.Registry == nil {
		o.Registry = obs.Default
	}
	if o.Tracer == nil {
		o.Tracer = obs.DefaultTracer
	}
	if o.SlowLog == nil {
		o.SlowLog = obs.DefaultSlowLog
	}
}

// HealthResponse is the /healthz body. Status is "ok" (HTTP 200) or
// "degraded" (HTTP 503). PlanCacheHitRatio is hits/(hits+misses) over the
// registry's plan-cache counters, 0 before any statement has run.
type HealthResponse struct {
	Status               string           `json:"status"`
	Error                string           `json:"error,omitempty"`
	DB                   *godbc.Health    `json:"db,omitempty"`
	CheckpointAgeSeconds float64          `json:"checkpoint_age_seconds,omitempty"`
	PlanCacheHitRatio    float64          `json:"plan_cache_hit_ratio"`
	Telemetry            *TelemetryHealth `json:"telemetry,omitempty"`
}

// TelemetryHealth is the /healthz view of the self-hosted telemetry
// pipeline — present whenever StartTelemetry has run in this process. The
// fields answer the operational questions: is it keeping up (queue depth
// vs capacity, drops), is it shedding load (sample rate), and is data
// still flowing (age of the last flush; -1 before the first).
type TelemetryHealth struct {
	Active              bool    `json:"active"`
	SampleRate          float64 `json:"sample_rate"`
	BudgetPct           float64 `json:"budget_pct"`
	WriteOverheadPct    float64 `json:"write_overhead_pct"`
	QueueDepth          int     `json:"telemetry_queue_depth"`
	QueueCapacity       int     `json:"telemetry_queue_capacity"`
	DroppedTotal        int64   `json:"telemetry_dropped_total"`
	SampledOutTotal     int64   `json:"telemetry_sampled_out_total"`
	StoredTotal         int64   `json:"telemetry_stored_total"`
	StoreErrorsTotal    int64   `json:"telemetry_store_errors_total"`
	PrunedSpansTotal    int64   `json:"telemetry_pruned_spans_total"`
	PrunedSlowLogTotal  int64   `json:"telemetry_pruned_slowlog_total"`
	LastFlushAgeSeconds float64 `json:"last_flush_age_seconds"`
	// Continuous-observability summary: how fresh the metric history is
	// (-1 with history off or before the first scrape) and how many alert
	// rules are currently firing.
	LastScrapeAgeMS int64 `json:"last_scrape_age_ms"`
	AlertsFiring    int   `json:"alerts_firing"`
}

// telemetryHealth snapshots the pipeline, nil when it has never run.
func telemetryHealth() *TelemetryHealth {
	st, ok := godbc.TelemetryState()
	if !ok {
		return nil
	}
	age := -1.0
	if !st.LastFlush.IsZero() {
		age = time.Since(st.LastFlush).Seconds()
	}
	scrapeAge := int64(-1)
	if !st.LastScrape.IsZero() {
		scrapeAge = time.Since(st.LastScrape).Milliseconds()
	}
	return &TelemetryHealth{
		Active:              st.Active,
		SampleRate:          st.SampleRate,
		BudgetPct:           st.BudgetPct,
		WriteOverheadPct:    st.WriteOverheadPct,
		QueueDepth:          st.QueueDepth,
		QueueCapacity:       st.QueueCapacity,
		DroppedTotal:        st.Dropped,
		SampledOutTotal:     st.SampledOut,
		StoredTotal:         st.Stored,
		StoreErrorsTotal:    st.StoreErrors,
		PrunedSpansTotal:    st.PrunedSpans,
		PrunedSlowLogTotal:  st.PrunedSlowLog,
		LastFlushAgeSeconds: age,
		LastScrapeAgeMS:     scrapeAge,
		AlertsFiring:        st.AlertsFiring,
	}
}

// NewHandler builds the monitoring mux:
//
//	GET /metrics        Prometheus text exposition of the registry
//	GET /metrics.json   registry snapshot as JSON (BENCH_obs.json shape)
//	GET /healthz        process + database health, 200/503
//	GET /traces?n=50    most recent traced spans, oldest first
//	GET /traces?tree=1  the same spans assembled into causal span trees
//	GET /slowlog?n=50   most recent slow queries, oldest first
//	GET /history        metric names the history ring has seen
//	GET /history?metric=m&window=30s  windowed aggregates + series
//	GET /alerts         live alert rule states
//	    /debug/pprof/   net/http/pprof profiles
func NewHandler(o Options) http.Handler {
	o.fill()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry.WritePrometheus(w) //nolint:errcheck // client went away
	}))
	mux.HandleFunc("/metrics.json", getOnly(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, o.Registry.Snapshot())
	}))
	mux.HandleFunc("/healthz", getOnly(func(w http.ResponseWriter, r *http.Request) {
		resp, code := o.health()
		writeJSON(w, code, resp)
	}))
	mux.HandleFunc("/traces", getOnly(func(w http.ResponseWriter, r *http.Request) {
		writeSpans(w, r, o.Tracer.Recent())
	}))
	mux.HandleFunc("/slowlog", getOnly(func(w http.ResponseWriter, r *http.Request) {
		writeSpans(w, r, o.SlowLog.Recent())
	}))
	mux.HandleFunc("/statements", getOnly(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, godbc.ActiveStatements())
	}))
	mux.HandleFunc("/history", getOnly(metricHistory))
	mux.HandleFunc("/alerts", getOnly(func(w http.ResponseWriter, r *http.Request) {
		alerts, active := godbc.AlertsState()
		if alerts == nil {
			alerts = []obs.AlertStatus{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"active": active, "alerts": alerts})
	}))
	mux.HandleFunc("/statements/", statementByID)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (o *Options) health() (HealthResponse, int) {
	reg := o.Registry
	if reg == nil {
		reg = obs.Default
	}
	resp := HealthResponse{
		Status:            "ok",
		PlanCacheHitRatio: planCacheHitRatio(reg),
		Telemetry:         telemetryHealth(),
	}
	if o.Health == nil {
		return resp, http.StatusOK
	}
	h, err := o.Health()
	if err != nil {
		resp.Status = "degraded"
		resp.Error = err.Error()
		return resp, http.StatusServiceUnavailable
	}
	resp.DB = &h
	code := http.StatusOK
	if !h.OK() {
		resp.Status = "degraded"
		if h.WALError != "" {
			resp.Error = h.WALError
		}
		code = http.StatusServiceUnavailable
	}
	if !h.LastCheckpoint.IsZero() {
		age := time.Since(h.LastCheckpoint)
		resp.CheckpointAgeSeconds = age.Seconds()
		if o.MaxCheckpointAge > 0 && h.Durable && age > o.MaxCheckpointAge {
			resp.Status = "degraded"
			resp.Error = "last checkpoint older than " + o.MaxCheckpointAge.String()
			code = http.StatusServiceUnavailable
		}
	}
	return resp, code
}

// planCacheHitRatio computes hits/(hits+misses) from the registry's
// sqlexec plan-cache counters; 0 when no statements have run yet.
func planCacheHitRatio(reg *obs.Registry) float64 {
	hits := reg.Counter("sqlexec_plan_cache_hits_total").Value()
	misses := reg.Counter("sqlexec_plan_cache_misses_total").Value()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// metricHistory serves the metric history ring. Without ?metric it lists
// the known metric names; with one it returns the windowed aggregates and
// the per-sample series (?window=30s, default one minute).
func metricHistory(w http.ResponseWriter, r *http.Request) {
	h := obs.DefaultHistory
	metric := r.URL.Query().Get("metric")
	if metric == "" {
		writeJSON(w, http.StatusOK, map[string]any{
			"metrics": h.Metrics(),
			"samples": h.TotalSamples(),
			"last_at": h.LastAt(),
		})
		return
	}
	window := obs.DefaultAlertWindow
	if v := r.URL.Query().Get("window"); v != "" {
		parsed, err := time.ParseDuration(v)
		if err != nil || parsed <= 0 {
			http.Error(w, "window must be a positive duration (e.g. 30s)", http.StatusBadRequest)
			return
		}
		window = parsed
	}
	kind, pts, known := h.Series(metric, window)
	if !known {
		http.Error(w, "no history for metric "+metric, http.StatusNotFound)
		return
	}
	if pts == nil {
		pts = []obs.SeriesPoint{}
	}
	stats, _ := h.Window(metric, window)
	stats.Metric, stats.Kind = metric, kind
	writeJSON(w, http.StatusOK, map[string]any{"stats": stats, "points": pts})
}

// statementByID handles DELETE /statements/<id>: the admin kill switch,
// equivalent to `KILL <id>` in SQL.
func statementByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		w.Header().Set("Allow", "DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	idText := strings.TrimPrefix(r.URL.Path, "/statements/")
	id, err := strconv.ParseInt(idText, 10, 64)
	if err != nil {
		http.Error(w, "statement id must be an integer", http.StatusBadRequest)
		return
	}
	if !godbc.KillStatement(id) {
		http.Error(w, "no active statement "+idText, http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"killed": id})
}

// writeSpans renders the last n spans of ring (oldest first). n defaults
// to 50 and is capped by the ring size. With ?tree=1 the selected spans
// are assembled into causal trees (obs.BuildTrees): roots ordered by span
// ID, each node carrying its children and self time. Spans whose parent
// has already been evicted from the ring render as roots.
func writeSpans(w http.ResponseWriter, r *http.Request, ring []*obs.Span) {
	n := 50
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
			return
		}
		n = parsed
	}
	if n > len(ring) {
		n = len(ring)
	}
	spans := ring[len(ring)-n:]
	if v := r.URL.Query().Get("tree"); v == "1" || v == "true" {
		trees := obs.BuildTrees(spans)
		if trees == nil {
			trees = []*obs.TreeNode{}
		}
		writeJSON(w, http.StatusOK, trees)
		return
	}
	if spans == nil {
		spans = []*obs.Span{}
	}
	writeJSON(w, http.StatusOK, spans)
}

func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}
