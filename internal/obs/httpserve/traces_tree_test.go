package httpserve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"perfdmf/internal/obs"
)

// TestTracesTreeEndpoint: /traces?tree=1 must assemble the ring's flat
// spans into causal trees — roots with nested children and self time —
// while plain /traces keeps returning the flat list.
func TestTracesTreeEndpoint(t *testing.T) {
	ring := obs.NewTracer(16)
	mk := func(id, parent int64, name string, total time.Duration) {
		ring.Record(&obs.Span{ID: id, ParentID: parent, Kind: "test", Name: name,
			Root: "upload:t", Total: total})
	}
	mk(1, 0, "upload:t", 50*time.Millisecond)
	mk(2, 1, "parse:tau", 20*time.Millisecond)
	mk(3, 2, "parse:file", 5*time.Millisecond)
	mk(4, 1, "batch:insert", 10*time.Millisecond)

	srv := httptest.NewServer(NewHandler(Options{Tracer: ring}))
	defer srv.Close()

	code, body := get(t, srv, "/traces?tree=1")
	if code != http.StatusOK {
		t.Fatalf("GET /traces?tree=1 = %d", code)
	}
	var trees []*obs.TreeNode
	if err := json.Unmarshal([]byte(body), &trees); err != nil {
		t.Fatalf("tree body does not parse: %v\n%s", err, body)
	}
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1: %s", len(trees), body)
	}
	root := trees[0]
	if root.ID != 1 || len(root.Children) != 2 {
		t.Fatalf("root: %+v", root)
	}
	if root.Children[0].ID != 2 || len(root.Children[0].Children) != 1 {
		t.Fatalf("parse subtree missing: %+v", root.Children[0])
	}
	if root.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", root.Depth())
	}
	// 50ms total minus the direct children's 20+10ms.
	if root.SelfNS != int64(20*time.Millisecond) {
		t.Fatalf("root self_ns = %d", root.SelfNS)
	}

	// The flat view is unchanged by the tree feature.
	code, body = get(t, srv, "/traces")
	if code != http.StatusOK {
		t.Fatalf("GET /traces = %d", code)
	}
	var flat []*obs.Span
	if err := json.Unmarshal([]byte(body), &flat); err != nil {
		t.Fatalf("flat body does not parse: %v", err)
	}
	if len(flat) != 4 {
		t.Fatalf("flat view has %d spans, want 4", len(flat))
	}

	// Bad n still rejected on the tree path.
	code, _ = get(t, srv, "/traces?tree=1&n=-1")
	if code != http.StatusBadRequest {
		t.Fatalf("GET /traces?tree=1&n=-1 = %d, want 400", code)
	}
}
