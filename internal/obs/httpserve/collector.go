package httpserve

import (
	"runtime"
	"sync"
	"time"

	"perfdmf/internal/obs"
)

// Collector samples Go runtime statistics into an obs registry on a fixed
// interval, so /metrics serves process health (heap, GC, goroutines) next to
// the engine's own counters. Metric names:
//
//	go_goroutines            gauge     live goroutine count
//	go_heap_alloc_bytes      gauge     bytes of live heap objects
//	go_heap_sys_bytes        gauge     heap bytes obtained from the OS
//	go_heap_objects          gauge     live heap object count
//	go_gc_cycles_total       counter   completed GC cycles
//	go_gc_pause_ns           histogram stop-the-world pause durations
//	reldb_wal_ops_pending    gauge     fsync backlog (only with a Backlog func)
type Collector struct {
	mu        sync.Mutex
	lastNumGC uint32
	backlog   func() int

	goroutines  *obs.Gauge
	heapAlloc   *obs.Gauge
	heapSys     *obs.Gauge
	heapObjects *obs.Gauge
	gcCycles    *obs.Counter
	gcPause     *obs.Histogram
	walPending  *obs.Gauge

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewCollector builds a collector reporting into reg (obs.Default when nil).
// backlog, when non-nil, is sampled into reldb_wal_ops_pending — wire it to
// the served database's WAL so the fsync backlog is scrapeable.
func NewCollector(reg *obs.Registry, backlog func() int) *Collector {
	if reg == nil {
		reg = obs.Default
	}
	c := &Collector{
		backlog:     backlog,
		goroutines:  reg.Gauge("go_goroutines"),
		heapAlloc:   reg.Gauge("go_heap_alloc_bytes"),
		heapSys:     reg.Gauge("go_heap_sys_bytes"),
		heapObjects: reg.Gauge("go_heap_objects"),
		gcCycles:    reg.Counter("go_gc_cycles_total"),
		gcPause:     reg.Histogram("go_gc_pause_ns"),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	if backlog != nil {
		c.walPending = reg.Gauge("reldb_wal_ops_pending")
	}
	return c
}

// CollectNow takes one sample immediately. Safe for concurrent use with the
// background loop.
func (c *Collector) CollectNow() {
	c.mu.Lock()
	defer c.mu.Unlock()

	c.goroutines.Set(int64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.heapAlloc.Set(int64(ms.HeapAlloc))
	c.heapSys.Set(int64(ms.HeapSys))
	c.heapObjects.Set(int64(ms.HeapObjects))

	// Drain pauses of GC cycles completed since the last sample from the
	// runtime's 256-entry ring; cycle i's pause sits at PauseNs[(i+255)%256].
	// If more than 256 cycles elapsed between samples the overwritten ones
	// are skipped rather than double-counted.
	n := ms.NumGC
	if n > c.lastNumGC {
		c.gcCycles.Add(int64(n - c.lastNumGC))
		first := c.lastNumGC + 1
		if n-first >= 256 {
			first = n - 255
		}
		for i := first; i <= n; i++ {
			c.gcPause.Observe(int64(ms.PauseNs[(i+255)%256]))
		}
		c.lastNumGC = n
	}

	if c.walPending != nil {
		c.walPending.Set(int64(c.backlog()))
	}
}

// Start launches the background sampling loop. interval defaults to 5s when
// non-positive. One initial sample is taken synchronously so metrics are
// populated before the first tick.
func (c *Collector) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	c.started = true
	c.CollectNow()
	go func() {
		defer close(c.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.CollectNow()
			case <-c.stop:
				return
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Stopping a
// collector that was never started is safe; stopping twice is safe.
func (c *Collector) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	if c.started {
		<-c.done
	}
}
