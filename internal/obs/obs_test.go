package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter did not return the existing handle")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {1<<63 - 1, HistBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.v); got != tc.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.bucket)
		}
	}
	h := (&Registry{histograms: map[string]*Histogram{}}).Histogram("h")
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1106 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	s := h.snapshot()
	if s.Mean() != 1106.0/5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// p100 lands in the bucket holding 1000: upper bound 1024.
	if q := s.Quantile(1.0); q != 1024 {
		t.Fatalf("q100 = %d, want 1024", q)
	}
	if q := s.Quantile(0.2); q != 2 {
		t.Fatalf("q20 = %d, want 2 (value 1 lives in [1,2))", q)
	}
}

func TestSnapshotAndPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b_bytes").Set(42)
	r.Histogram("c_ns").Observe(100)
	s := r.Snapshot()
	if s.Counters["a_total"] != 3 || s.Gauges["b_bytes"] != 42 || s.Histograms["c_ns"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total 3",
		"# TYPE b_bytes gauge\nb_bytes 42",
		"# TYPE c_ns histogram",
		`c_ns_bucket{le="128"} 1`,
		`c_ns_bucket{le="+Inf"} 1`,
		"c_ns_sum 100",
		"c_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	r.Reset()
	if s := r.Snapshot(); s.Counters["a_total"] != 0 || s.Histograms["c_ns"].Count != 0 {
		t.Fatalf("Reset left values: %+v", s)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(int64(j))
				r.Gauge("g").Set(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestConfigSwitches(t *testing.T) {
	defer Apply(Config{})
	Apply(Config{})
	if TimingEnabled() {
		t.Fatal("timing enabled with empty config")
	}
	Apply(Config{Trace: true})
	if !TracingEnabled() || !TimingEnabled() {
		t.Fatal("trace did not enable timing")
	}
	Apply(Config{SlowQuery: 5 * time.Millisecond})
	if TracingEnabled() {
		t.Fatal("trace still on")
	}
	if !TimingEnabled() || SlowQueryThreshold() != 5*time.Millisecond {
		t.Fatal("slow threshold did not enable timing")
	}
	SetSlowQueryThreshold(-1)
	if SlowQueryThreshold() != 0 {
		t.Fatal("negative threshold not clamped")
	}
}

func TestApplyEnv(t *testing.T) {
	defer Apply(Config{})
	t.Setenv(EnvTrace, "1")
	t.Setenv(EnvSlowMS, "25")
	ApplyEnv()
	if !TracingEnabled() || SlowQueryThreshold() != 25*time.Millisecond {
		t.Fatalf("env not applied: trace=%v slow=%v", TracingEnabled(), SlowQueryThreshold())
	}
	t.Setenv(EnvSlowMS, "bogus") // malformed values are ignored, not fatal
	ApplyEnv()
	if SlowQueryThreshold() != 25*time.Millisecond {
		t.Fatal("malformed env var changed the threshold")
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record(&Span{Params: i})
	}
	got := tr.Recent()
	if len(got) != 3 || got[0].Params != 2 || got[2].Params != 4 {
		t.Fatalf("recent = %+v", got)
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d", tr.Total())
	}
	tr.Reset()
	if len(tr.Recent()) != 0 || tr.Total() != 0 {
		t.Fatal("reset left spans")
	}
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(2)
	var b strings.Builder
	l.SetOutput(&b)
	sp := &Span{
		Kind: "query", Statement: "SELECT *\n  FROM t WHERE a = ?", Params: 1,
		Start: time.Unix(0, 0).UTC(), Total: 80 * time.Millisecond,
		Plan: time.Millisecond, Execute: 70 * time.Millisecond,
		RowsScanned: 1000, RowsReturned: 3, PlanSummary: "full scan",
	}
	l.Record(sp)
	out := b.String()
	for _, want := range []string{
		"slow-query", "kind=query", "total=80ms", "rows=1000/3",
		`plan="full scan"`, `stmt="SELECT * FROM t WHERE a = ?"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("slow log line missing %q: %s", want, out)
		}
	}
	l.Record(&Span{Kind: "exec"})
	l.Record(&Span{Kind: "exec"})
	if got := l.Recent(); len(got) != 2 || got[0].Kind != "exec" {
		t.Fatalf("ring = %+v", got)
	}
	if l.Total() != 3 {
		t.Fatalf("total = %d", l.Total())
	}
}

func TestSpanStringTruncation(t *testing.T) {
	sp := &Span{Kind: "query", Statement: strings.Repeat("x", 500)}
	s := sp.String()
	if !strings.Contains(s, strings.Repeat("x", 197)+"...") {
		t.Fatal("statement not truncated to 197 chars + ellipsis")
	}
	if strings.Contains(s, strings.Repeat("x", 198)) {
		t.Fatal("statement longer than the 200-char cap")
	}
}
