// SQL-defined alerting, evaluation side. Rules live in the
// PERFDMF_ALERT_RULES table (godbc loads them); AlertSet is the pure state
// machine the telemetry scrape loop drives each sample: a rule whose
// predicate holds moves inactive → pending, holds for its for-duration →
// firing, and stops holding → resolved. Every transition is returned to
// the caller, which persists it into PERFDMF_ALERTS — the state machine
// itself never touches storage, so it is testable with synthetic history.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Alert rule predicate kinds and episode states, as stored in SQL.
const (
	AlertKindThreshold = "threshold"
	AlertKindAnomaly   = "anomaly"

	AlertStatePending  = "pending"
	AlertStateFiring   = "firing"
	AlertStateResolved = "resolved"
	AlertStateOK       = "ok" // snapshot-only: rule evaluated, not breached
)

// DefaultAlertWindow is the evaluation window when a rule does not pick one.
const DefaultAlertWindow = time.Minute

// AlertRule is one row of PERFDMF_ALERT_RULES, decoded.
type AlertRule struct {
	ID     int64  `json:"rule_id"`
	Name   string `json:"name"`
	Metric string `json:"metric"`
	// Kind is the predicate: "threshold" compares the selected aggregate
	// against Threshold with Op; "anomaly" flags the newest observation
	// when it sits more than ZScore standard deviations from the mean of
	// the window's earlier observations.
	Kind string `json:"kind"`
	// Agg selects which windowed aggregate a threshold rule compares:
	// "rate" (default for counters/histograms), "avg", "ewma", "p95",
	// "last" (default for gauges).
	Agg       string  `json:"agg"`
	Op        string  `json:"op"` // "gt" (default) | "lt"
	Threshold float64 `json:"threshold"`
	ZScore    float64 `json:"zscore"`
	// Window is the trailing aggregation window (default DefaultAlertWindow).
	Window time.Duration `json:"window"`
	// For is how long the predicate must hold before pending becomes
	// firing. 0 fires on the first breaching evaluation.
	For      time.Duration `json:"for"`
	Severity string        `json:"severity"` // "info" | "warn" | "critical"
}

// AlertStatus is one rule's live evaluation state, for /alerts and
// /healthz.
type AlertStatus struct {
	RuleID    int64     `json:"rule_id"`
	RuleName  string    `json:"rule_name"`
	Metric    string    `json:"metric"`
	Severity  string    `json:"severity"`
	State     string    `json:"state"` // "ok" | "pending" | "firing"
	Since     time.Time `json:"since,omitempty"`
	Value     float64   `json:"value"`
	EpisodeID int64     `json:"episode_id,omitempty"`
}

// AlertTransition is one state change, to be persisted as (or applied to)
// a PERFDMF_ALERTS episode row. EpisodeID is 0 for a transition opening a
// new episode; the persister records the inserted row's id back via
// SetEpisodeID so the episode's later transitions update it in place.
type AlertTransition struct {
	RuleID    int64
	RuleName  string
	Metric    string
	Severity  string
	From, To  string
	At        time.Time
	Value     float64
	Threshold float64 // threshold rules: the bound; anomaly rules: ZScore
	Detail    string
	EpisodeID int64
}

var (
	mAlertEvals       = Default.Counter("obs_alerts_evals_total")
	mAlertTransitions = Default.Counter("obs_alerts_transitions_total")
	gAlertRules       = Default.Gauge("obs_alerts_rules")
	gAlertPending     = Default.Gauge("obs_alerts_pending")
	gAlertFiring      = Default.Gauge("obs_alerts_firing")
)

// ruleState is one rule's position in the pending→firing lifecycle.
// state is "" (inactive), AlertStatePending or AlertStateFiring.
type ruleState struct {
	state     string
	since     time.Time // when the current state was entered
	value     float64   // last evaluated value
	episodeID int64     // persisted PERFDMF_ALERTS row, 0 before insert
}

// AlertSet evaluates a rule list against a History. All methods are safe
// for concurrent use; Eval is expected to run on a single scrape loop.
type AlertSet struct {
	mu     sync.Mutex
	rules  []AlertRule
	states map[int64]*ruleState
}

// NewAlertSet returns an empty set; SetRules installs the rules.
func NewAlertSet() *AlertSet {
	return &AlertSet{states: make(map[int64]*ruleState)}
}

// SetRules replaces the rule list (the scrape loop reloads it from SQL).
// Open episodes of rules that disappeared are closed: their resolved
// transitions are returned for persistence.
func (as *AlertSet) SetRules(rules []AlertRule, now time.Time) []AlertTransition {
	as.mu.Lock()
	defer as.mu.Unlock()
	keep := make(map[int64]bool, len(rules))
	for _, r := range rules {
		keep[r.ID] = true
	}
	var out []AlertTransition
	for id, st := range as.states {
		if keep[id] || st.state == "" {
			if !keep[id] {
				delete(as.states, id)
			}
			continue
		}
		out = append(out, AlertTransition{
			RuleID: id, From: st.state, To: AlertStateResolved, At: now,
			Value: st.value, Detail: "rule removed", EpisodeID: st.episodeID,
		})
		delete(as.states, id)
	}
	as.rules = rules
	gAlertRules.Set(int64(len(rules)))
	mAlertTransitions.Add(int64(len(out)))
	return out
}

// Restore seeds one rule's state from a persisted open episode, so a new
// process resumes (and can resolve) episodes an earlier process opened.
func (as *AlertSet) Restore(ruleID int64, state string, since time.Time, value float64, episodeID int64) {
	if state != AlertStatePending && state != AlertStateFiring {
		return
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	as.states[ruleID] = &ruleState{state: state, since: since, value: value, episodeID: episodeID}
}

// SetEpisodeID records the persisted episode row for a rule's open
// episode, after the persister inserted it.
func (as *AlertSet) SetEpisodeID(ruleID, episodeID int64) {
	as.mu.Lock()
	defer as.mu.Unlock()
	if st := as.states[ruleID]; st != nil {
		st.episodeID = episodeID
	}
}

// Eval runs every rule against h once. Returned transitions are ordered
// rule by rule (a rule can emit pending and firing in the same evaluation
// when its for-duration is zero).
func (as *AlertSet) Eval(h *History, now time.Time) []AlertTransition {
	as.mu.Lock()
	defer as.mu.Unlock()
	mAlertEvals.Inc()
	var out []AlertTransition
	for _, r := range as.rules {
		breached, value, detail := evalRule(h, r)
		st := as.states[r.ID]
		if st == nil {
			st = &ruleState{}
			as.states[r.ID] = st
		}
		st.value = value
		bound := r.Threshold
		if r.Kind == AlertKindAnomaly {
			bound = r.ZScore
		}
		trans := func(from, to string) {
			out = append(out, AlertTransition{
				RuleID: r.ID, RuleName: r.Name, Metric: r.Metric, Severity: r.Severity,
				From: from, To: to, At: now, Value: value, Threshold: bound,
				Detail: detail, EpisodeID: st.episodeID,
			})
		}
		switch {
		case breached && st.state == "":
			st.state, st.since = AlertStatePending, now
			trans("", AlertStatePending)
			if r.For <= 0 {
				st.state, st.since = AlertStateFiring, now
				trans(AlertStatePending, AlertStateFiring)
			}
		case breached && st.state == AlertStatePending:
			if now.Sub(st.since) >= r.For {
				st.state, st.since = AlertStateFiring, now
				trans(AlertStatePending, AlertStateFiring)
			}
		case !breached && (st.state == AlertStatePending || st.state == AlertStateFiring):
			trans(st.state, AlertStateResolved)
			*st = ruleState{value: value}
		}
	}
	as.updateGauges()
	mAlertTransitions.Add(int64(len(out)))
	return out
}

// updateGauges publishes the pending/firing counts; callers hold as.mu.
func (as *AlertSet) updateGauges() {
	var pending, firing int64
	for _, st := range as.states {
		switch st.state {
		case AlertStatePending:
			pending++
		case AlertStateFiring:
			firing++
		}
	}
	gAlertPending.Set(pending)
	gAlertFiring.Set(firing)
}

// Snapshot reports every rule's live state, sorted by rule id.
func (as *AlertSet) Snapshot() []AlertStatus {
	as.mu.Lock()
	defer as.mu.Unlock()
	out := make([]AlertStatus, 0, len(as.rules))
	for _, r := range as.rules {
		s := AlertStatus{RuleID: r.ID, RuleName: r.Name, Metric: r.Metric,
			Severity: r.Severity, State: AlertStateOK}
		if st := as.states[r.ID]; st != nil {
			s.Value = st.value
			s.EpisodeID = st.episodeID
			if st.state != "" {
				s.State = st.state
				s.Since = st.since
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RuleID < out[j].RuleID })
	return out
}

// FiringCount returns how many rules are currently firing.
func (as *AlertSet) FiringCount() int {
	as.mu.Lock()
	defer as.mu.Unlock()
	n := 0
	for _, st := range as.states {
		if st.state == AlertStateFiring {
			n++
		}
	}
	return n
}

// evalRule applies one rule's predicate to the history. A metric the ring
// has never seen (or an empty window) evaluates as not breached: absence
// of evidence resolves, it does not fire.
func evalRule(h *History, r AlertRule) (breached bool, value float64, detail string) {
	window := r.Window
	if window <= 0 {
		window = DefaultAlertWindow
	}
	if r.Kind == AlertKindAnomaly {
		return evalAnomaly(h, r, window)
	}
	st, ok := h.Window(r.Metric, window)
	if !ok {
		return false, 0, "no data"
	}
	agg := r.Agg
	if agg == "" {
		if st.Kind == "gauge" {
			agg = "last"
		} else {
			agg = "rate"
		}
	}
	switch agg {
	case "rate":
		value = st.RatePerSec
	case "avg":
		value = st.Avg
	case "ewma":
		value = st.EWMA
	case "p95":
		value = float64(st.P95)
	default: // "last"
		value = st.Last
	}
	if r.Op == "lt" {
		breached = value < r.Threshold
	} else {
		breached = value > r.Threshold
	}
	return breached, value, fmt.Sprintf("%s(%s)=%.4g over %s", agg, r.Metric, value, window)
}

// evalAnomaly flags the newest observation when it deviates from the mean
// of the window's earlier observations by more than ZScore standard
// deviations. Fewer than 4 observations, or a flat series, never breach.
func evalAnomaly(h *History, r AlertRule, window time.Duration) (bool, float64, string) {
	_, pts, ok := h.Series(r.Metric, window)
	if !ok || len(pts) < 4 {
		return false, 0, "insufficient data"
	}
	last := pts[len(pts)-1].Value
	base := pts[:len(pts)-1]
	var sum float64
	for _, p := range base {
		sum += p.Value
	}
	mean := sum / float64(len(base))
	var varSum float64
	for _, p := range base {
		d := p.Value - mean
		varSum += d * d
	}
	std := math.Sqrt(varSum / float64(len(base)))
	if std == 0 {
		return false, last, "flat series"
	}
	z := math.Abs(last-mean) / std
	return z > r.ZScore, last,
		fmt.Sprintf("z=%.2f (last=%.4g mean=%.4g std=%.4g over %s)", z, last, mean, std, window)
}
