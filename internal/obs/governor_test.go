package obs

import (
	"testing"
	"time"
)

// TestGovernorAdjust drives the controller directly with measured overhead
// figures and checks the multiplicative response: proportional shedding
// when over target, damped recovery when under, clamps at both ends.
func TestGovernorAdjust(t *testing.T) {
	g := NewGovernor(5) // target = 2.5% write time
	if r := g.Rate(); r != 1.0 {
		t.Fatalf("initial rate = %v, want 1.0", r)
	}

	// 10% measured against a 2.5% target: rate drops to a quarter, in one
	// step — over-budget is acted on at face value.
	g.adjust(10)
	if r := g.Rate(); r != 0.25 {
		t.Fatalf("rate after 10%% overhead = %v, want 0.25", r)
	}
	if got := g.OverheadPct(); got != 10 {
		t.Fatalf("OverheadPct = %v, want 10", got)
	}

	// Way under target: recovery is damped to ×1.5 per window, not an
	// instant slingshot back to 1.0.
	g.adjust(0.1)
	if r := g.Rate(); r != 0.375 {
		t.Fatalf("rate after quiet window = %v, want 0.375 (0.25 × 1.5)", r)
	}

	// A zero-overhead window (no writes at all) also raises by the cap.
	g.adjust(0)
	if r := g.Rate(); r > 0.563 || r < 0.562 {
		t.Fatalf("rate after zero window = %v, want ~0.5625", r)
	}

	// Massive overload clamps at the floor: the governor never goes blind.
	g.adjust(1000)
	if r := g.Rate(); r != float64(minRateMilli)/1000 {
		t.Fatalf("rate under overload = %v, want floor %v", r, float64(minRateMilli)/1000)
	}

	// Repeated quiet windows climb back and cap at 1.0.
	for i := 0; i < 20; i++ {
		g.adjust(0.01)
	}
	if r := g.Rate(); r != 1.0 {
		t.Fatalf("rate after sustained quiet = %v, want 1.0", r)
	}
	if n := g.Adjustments(); n != 24 {
		t.Fatalf("adjustments = %d, want 24", n)
	}
}

// TestGovernorNil: a nil governor is the sampling-off configuration — every
// accessor degrades to "keep everything, report nothing".
func TestGovernorNil(t *testing.T) {
	var g *Governor
	if g.Rate() != 1 || g.BudgetPct() != 0 || g.OverheadPct() != 0 || g.Adjustments() != 0 {
		t.Fatal("nil governor does not read as sampling-off")
	}
	g.ReportWrite(time.Second) // must not panic
}

// TestGovernorReportWrite exercises the windowing: reports inside the
// window accumulate silently; once the window's wall time has elapsed the
// accumulated write time is judged against it. The window start is
// back-dated instead of sleeping.
func TestGovernorReportWrite(t *testing.T) {
	g := NewGovernor(5)
	g.ReportWrite(time.Millisecond)
	if n := g.Adjustments(); n != 0 {
		t.Fatalf("adjusted %d times inside the window, want 0", n)
	}

	// Close the window: ~100ms of wall, 1ms already banked + 9ms now =
	// ~10% overhead against a 2.5% target → rate ~0.25.
	g.mu.Lock()
	g.winStart = time.Now().Add(-100 * time.Millisecond)
	g.mu.Unlock()
	g.ReportWrite(9 * time.Millisecond)
	if n := g.Adjustments(); n != 1 {
		t.Fatalf("adjustments = %d, want 1", n)
	}
	if r := g.Rate(); r < 0.2 || r > 0.3 {
		t.Fatalf("rate = %v, want ~0.25 (10%% measured, 2.5%% target)", r)
	}
}

// TestGovernorReportStall: a window containing a refused write attempt
// skips the rescale and cuts the rate by governorStallDecay — the writer
// could not take the engine's write lock, so there is no measurement to
// rescale against. The last-overhead gauge must stay untouched (a stall
// is the absence of a measurement, not a zero), and the floor still
// holds.
func TestGovernorReportStall(t *testing.T) {
	g := NewGovernor(5)
	g.lastMilli.Store(42) // sentinel: stalls must not overwrite it

	g.ReportStall()
	if n := g.Adjustments(); n != 0 {
		t.Fatalf("adjusted %d times inside the window, want 0", n)
	}

	stalledBefore := govStalledWindows.Value()
	g.mu.Lock()
	g.winStart = time.Now().Add(-100 * time.Millisecond)
	g.mu.Unlock()
	g.ReportStall()
	if n := g.Adjustments(); n != 1 {
		t.Fatalf("adjustments = %d, want 1", n)
	}
	if r := g.Rate(); r != governorStallDecay {
		t.Fatalf("rate after stalled window = %v, want %v", r, governorStallDecay)
	}
	if got := govStalledWindows.Value() - stalledBefore; got != 1 {
		t.Fatalf("stalled-windows counter moved by %d, want 1", got)
	}
	if got := g.lastMilli.Load(); got != 42 {
		t.Fatalf("stall overwrote last-overhead gauge: %d, want sentinel 42", got)
	}

	// A stall anywhere in the window taints it even when writes also
	// landed: the backlog those writes drained was built during the stall.
	g.ReportWrite(time.Millisecond)
	g.ReportStall()
	g.mu.Lock()
	g.winStart = time.Now().Add(-100 * time.Millisecond)
	g.mu.Unlock()
	g.ReportWrite(time.Millisecond)
	if m := g.rateMilli.Load(); m != 62 { // 250‰ × 0.25, truncated to per-mille
		t.Fatalf("rate after mixed stalled window = %d‰, want 62‰", m)
	}

	// Repeated stalls clamp at the floor: shedding, never blind.
	for i := 0; i < 10; i++ {
		g.mu.Lock()
		g.winStart = time.Now().Add(-100 * time.Millisecond)
		g.mu.Unlock()
		g.ReportStall()
	}
	if r := g.Rate(); r != float64(minRateMilli)/1000 {
		t.Fatalf("rate under sustained stall = %v, want floor %v", r, float64(minRateMilli)/1000)
	}

	// Nil-safety, like every other report path.
	var nilG *Governor
	nilG.ReportStall()
}

// TestStrideCounterExact: the stride counter's contract — after n offers
// at steady rate r, exactly ceil(n·r) were admitted — holds across rates,
// so the admitted stream is a faithful, deterministic thinning.
func TestStrideCounterExact(t *testing.T) {
	for _, rate := range []float64{0.01, 0.1, 0.25, 0.5, 0.9, 1.0} {
		sc := &strideCounter{}
		kept := 0
		const n = 1000
		for i := 0; i < n; i++ {
			if sc.admit(rate) {
				kept++
			}
		}
		want := int(n * rate)
		if kept < want || kept > want+1 {
			t.Errorf("rate %v: kept %d of %d, want %d..%d", rate, kept, n, want, want+1)
		}
	}
}

// TestSinkSampling: with a governor attached and the rate forced down, the
// sink thins ordinary spans per root op, counts what it sheds, and still
// keeps every slow span, every error span, and a floor share of each root
// op — rare operations stay visible while a hot loop is shed.
func TestSinkSampling(t *testing.T) {
	g := NewGovernor(5)
	g.rateMilli.Store(100) // force 10% without driving the control loop
	s := NewTelemetrySink(func([]SinkEntry) error { return nil },
		SinkOptions{Capacity: 10000, Governor: g})

	sampledBefore := sinkSampledOut.Value()
	for i := 0; i < 1000; i++ {
		s.Offer(&Span{ID: int64(i + 1), Root: "upload:hot", Kind: "exec"}, false)
	}
	if got := s.Buffered(); got != 100 {
		t.Fatalf("hot root op buffered %d of 1000 at 10%%, want 100", got)
	}
	if got := sinkSampledOut.Value() - sampledBefore; got != 900 {
		t.Fatalf("sampled_out = %d, want 900", got)
	}

	// A rare root op gets its own stride: its first span is admitted even
	// though the hot op is deep into shedding.
	s.Offer(&Span{ID: 5001, Root: "analyze:rare", Kind: "query"}, false)
	if got := s.Buffered(); got != 101 {
		t.Fatalf("rare root op's first span not admitted: buffered %d, want 101", got)
	}

	// Slow and error spans bypass sampling entirely.
	base := s.Buffered()
	for i := 0; i < 50; i++ {
		s.Offer(&Span{ID: int64(6000 + i), Root: "upload:hot", Kind: "exec"}, true)
		s.Offer(&Span{ID: int64(7000 + i), Root: "upload:hot", Kind: "exec", Err: "boom"}, false)
	}
	if got := s.Buffered() - base; got != 100 {
		t.Fatalf("slow+error spans admitted %d of 100, want all 100", got)
	}

	// Without a governor nothing is sampled.
	s2 := NewTelemetrySink(func([]SinkEntry) error { return nil }, SinkOptions{Capacity: 2000})
	for i := 0; i < 500; i++ {
		s2.Offer(&Span{ID: int64(i + 1), Root: "upload:hot", Kind: "exec"}, false)
	}
	if got := s2.Buffered(); got != 500 {
		t.Fatalf("governor-less sink buffered %d of 500, want all", got)
	}
}

// TestRootOpKey pins the grouping rule sampling fairness rests on.
func TestRootOpKey(t *testing.T) {
	cases := []struct {
		sp   *Span
		want string
	}{
		{&Span{Root: "t1:e1-upload"}, "t1"},
		{&Span{Root: "upload"}, "upload"},
		{&Span{Root: ":odd"}, ":odd"}, // no prefix before ':' — keep as-is
		{&Span{Statement: "SELECT 1"}, "SELECT"},
		{&Span{}, ""},
	}
	for _, c := range cases {
		if got := rootOpKey(c.sp); got != c.want {
			t.Errorf("rootOpKey(%+v) = %q, want %q", c.sp, got, c.want)
		}
	}
}

// TestSinkLastFlush: the flush timestamp the health surfaces age against
// advances on every flush, including empty ones (an idle pipeline is not a
// stuck pipeline).
func TestSinkLastFlush(t *testing.T) {
	s := NewTelemetrySink(func([]SinkEntry) error { return nil }, SinkOptions{})
	if !s.LastFlush().IsZero() {
		t.Fatal("LastFlush set before any flush")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	first := s.LastFlush()
	if first.IsZero() {
		t.Fatal("empty flush did not stamp LastFlush")
	}
	s.Offer(&Span{ID: 1}, false)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !s.LastFlush().After(first.Add(-time.Millisecond)) {
		t.Fatalf("LastFlush did not advance: %v then %v", first, s.LastFlush())
	}
}
