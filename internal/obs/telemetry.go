package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TelemetrySink batches completed spans (and slow-query entries) and hands
// them to a storage callback on a background goroutine. The storage side
// lives elsewhere (godbc persists batches into the PERFDMF_SPANS and
// PERFDMF_SLOWLOG tables); this type owns the buffering policy and the
// head-sampling decision:
//
//   - Offer never blocks the query path. The buffer is bounded; when it is
//     full the entry is dropped and counted in obs_telemetry_dropped_total.
//   - With a Governor attached, Offer samples: spans are admitted at the
//     governor's current rate, decided per root operation with a stride
//     counter so every root op stays represented at any rate. Slow spans
//     and spans that carry an error are always kept — they are the rows a
//     telemetry table exists for. Sampled-out spans are counted in
//     obs_telemetry_sampled_out_total.
//   - The store callback runs outside the buffer lock, so a slow (or
//     blocked) store cannot stall producers — new entries keep accumulating
//     up to Capacity and then fall on the floor, counted.
//   - Re-entrancy safety is the producer's job: the godbc connection the
//     store writes through is marked quiet, so the sink's own INSERTs never
//     produce spans that would be offered back to the sink.
type TelemetrySink struct {
	store func([]SinkEntry) error
	cap   int
	every time.Duration
	gov   *Governor

	mu      sync.Mutex
	buf     []SinkEntry
	strides map[string]*strideCounter // per-root-op sampling state

	lastFlush atomic.Int64 // unix nanos of the last completed Flush

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// SinkEntry is one completed span; Slow marks entries that also crossed the
// slow-query threshold (they are mirrored into the slow-log table).
type SinkEntry struct {
	Span *Span
	Slow bool
}

// SinkOptions tunes a TelemetrySink. Zero values pick the defaults.
type SinkOptions struct {
	// Capacity bounds the number of buffered entries (default 4096).
	Capacity int
	// FlushEvery is the background flush period (default 25ms). Flushing
	// is a cheap buffer swap — the storage side coalesces batches into
	// group commits on its own cadence — so a short period buys sampling
	// feedback latency, not write amplification.
	FlushEvery time.Duration
	// Governor drives head sampling. Nil keeps every span.
	Governor *Governor
}

// Sink throughput metrics, resolved once.
var (
	sinkOffered    = Default.Counter("obs_telemetry_offered_total")
	sinkDropped    = Default.Counter("obs_telemetry_dropped_total")
	sinkSampledOut = Default.Counter("obs_telemetry_sampled_out_total")
	sinkStored     = Default.Counter("obs_telemetry_stored_total")
	sinkStoreErrs  = Default.Counter("obs_telemetry_store_errors_total")
)

// NewTelemetrySink returns a sink feeding store. Call Start to launch the
// background flusher; Flush works without it (tests, one-shot tools).
func NewTelemetrySink(store func([]SinkEntry) error, o SinkOptions) *TelemetrySink {
	if o.Capacity <= 0 {
		o.Capacity = 4096
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 25 * time.Millisecond
	}
	return &TelemetrySink{
		store:   store,
		cap:     o.Capacity,
		every:   o.FlushEvery,
		gov:     o.Governor,
		strides: make(map[string]*strideCounter),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the background flush goroutine. Starting twice is a no-op.
func (s *TelemetrySink) Start() {
	s.startOnce.Do(func() { go s.loop() })
}

func (s *TelemetrySink) loop() {
	defer close(s.done)
	t := time.NewTicker(s.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Flush() //nolint:errcheck // counted in obs_telemetry_store_errors_total
		case <-s.stop:
			return
		}
	}
}

// strideCounter admits every n-th span of one root operation so that the
// admitted fraction tracks the sample rate exactly, whatever the rate.
type strideCounter struct {
	seen int64
	kept int64
}

// admit decides one span at the given rate: keep while the kept fraction
// trails seen*rate. Deterministic (no RNG) and exact: after n offers at a
// steady rate r, kept == ceil(n*r).
func (sc *strideCounter) admit(rate float64) bool {
	sc.seen++
	if float64(sc.kept) < float64(sc.seen)*rate {
		sc.kept++
		return true
	}
	return false
}

// rootOpKey groups spans by the operation of the tree they belong to: the
// root name's prefix before ':' ("upload" from "t1:e1-upload" roots comes
// out as "t1"), or the span's own op for parentless spans. Sampling per
// root op keeps rare operations visible while a hot loop is being shed.
func rootOpKey(sp *Span) string {
	if sp.Root != "" {
		if i := strings.IndexByte(sp.Root, ':'); i > 0 {
			return sp.Root[:i]
		}
		return sp.Root
	}
	return sp.Op()
}

// Offer enqueues a completed span without blocking. When a governor is
// attached the span is first sampled (slow and error spans always pass);
// when the buffer is at capacity the entry is dropped and counted —
// backpressure must never stall the statement that produced the span.
func (s *TelemetrySink) Offer(sp *Span, slow bool) {
	if sp == nil {
		return
	}
	if s.gov.Disabled() {
		// A zero budget means no persistence overhead at all — even the
		// slow/error bypass is shed (counted, so the shedding is visible).
		sinkSampledOut.Inc()
		return
	}
	s.mu.Lock()
	if s.gov != nil && !slow && sp.Err == "" {
		rate := s.gov.Rate()
		if rate < 1 {
			key := rootOpKey(sp)
			sc := s.strides[key]
			if sc == nil {
				sc = &strideCounter{}
				s.strides[key] = sc
			}
			if !sc.admit(rate) {
				s.mu.Unlock()
				sinkSampledOut.Inc()
				return
			}
		}
	}
	if len(s.buf) >= s.cap {
		s.mu.Unlock()
		sinkDropped.Inc()
		return
	}
	s.buf = append(s.buf, SinkEntry{Span: sp, Slow: slow})
	s.mu.Unlock()
	sinkOffered.Inc()
}

// Buffered returns the number of entries waiting for the next flush.
func (s *TelemetrySink) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Dropped returns the total entries dropped under backpressure.
func (s *TelemetrySink) Dropped() int64 { return sinkDropped.Value() }

// Capacity returns the buffer's entry capacity.
func (s *TelemetrySink) Capacity() int { return s.cap }

// Governor returns the attached governor, nil when sampling is off.
func (s *TelemetrySink) Governor() *Governor { return s.gov }

// LastFlush returns when the last Flush completed (zero before the first).
func (s *TelemetrySink) LastFlush() time.Time {
	ns := s.lastFlush.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Flush synchronously stores everything buffered so far. Entries are handed
// to the store callback outside the buffer lock.
func (s *TelemetrySink) Flush() error {
	s.mu.Lock()
	batch := s.buf
	s.buf = nil
	s.mu.Unlock()
	if len(batch) == 0 {
		s.lastFlush.Store(time.Now().UnixNano())
		return nil
	}
	if err := s.store(batch); err != nil {
		sinkStoreErrs.Inc()
		return err
	}
	sinkStored.Add(int64(len(batch)))
	s.lastFlush.Store(time.Now().UnixNano())
	return nil
}

// Close stops the background flusher (if started) and runs a final Flush.
func (s *TelemetrySink) Close() error {
	s.startOnce.Do(func() { close(s.done) }) // never started: mark loop done
	select {
	case <-s.done:
	default:
		close(s.stop)
		<-s.done
	}
	return s.Flush()
}

// --- global sink installation ---

var activeSink atomic.Pointer[TelemetrySink]

// InstallSink routes every completed span to s until UninstallSink. While a
// sink is installed, godbc starts spans even with tracing and the slow-query
// log off, so the telemetry tables see all statements.
func InstallSink(s *TelemetrySink) { activeSink.Store(s) }

// UninstallSink detaches the installed sink (it is not closed).
func UninstallSink() { activeSink.Store(nil) }

// ActiveSink returns the installed sink, nil when none.
func ActiveSink() *TelemetrySink { return activeSink.Load() }

// SinkActive reports whether a sink is installed — a single atomic load,
// cheap enough for statement hot paths.
func SinkActive() bool { return activeSink.Load() != nil }
