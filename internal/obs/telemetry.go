package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// TelemetrySink batches completed spans (and slow-query entries) and hands
// them to a storage callback on a background goroutine. The storage side
// lives elsewhere (godbc persists batches into the PERFDMF_SPANS and
// PERFDMF_SLOWLOG tables); this type only owns the buffering policy:
//
//   - Offer never blocks the query path. The buffer is bounded; when it is
//     full the entry is dropped and counted in obs_telemetry_dropped_total.
//   - The store callback runs outside the buffer lock, so a slow (or
//     blocked) store cannot stall producers — new entries keep accumulating
//     up to Capacity and then fall on the floor, counted.
//   - Re-entrancy safety is the producer's job: the godbc connection the
//     store writes through is marked quiet, so the sink's own INSERTs never
//     produce spans that would be offered back to the sink.
type TelemetrySink struct {
	store func([]SinkEntry) error
	cap   int
	every time.Duration

	mu  sync.Mutex
	buf []SinkEntry

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// SinkEntry is one completed span; Slow marks entries that also crossed the
// slow-query threshold (they are mirrored into the slow-log table).
type SinkEntry struct {
	Span *Span
	Slow bool
}

// SinkOptions tunes a TelemetrySink. Zero values pick the defaults.
type SinkOptions struct {
	// Capacity bounds the number of buffered entries (default 4096).
	Capacity int
	// FlushEvery is the background flush period (default 1s).
	FlushEvery time.Duration
}

// Sink throughput metrics, resolved once.
var (
	sinkOffered   = Default.Counter("obs_telemetry_offered_total")
	sinkDropped   = Default.Counter("obs_telemetry_dropped_total")
	sinkStored    = Default.Counter("obs_telemetry_stored_total")
	sinkStoreErrs = Default.Counter("obs_telemetry_store_errors_total")
)

// NewTelemetrySink returns a sink feeding store. Call Start to launch the
// background flusher; Flush works without it (tests, one-shot tools).
func NewTelemetrySink(store func([]SinkEntry) error, o SinkOptions) *TelemetrySink {
	if o.Capacity <= 0 {
		o.Capacity = 4096
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = time.Second
	}
	return &TelemetrySink{
		store: store,
		cap:   o.Capacity,
		every: o.FlushEvery,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the background flush goroutine. Starting twice is a no-op.
func (s *TelemetrySink) Start() {
	s.startOnce.Do(func() { go s.loop() })
}

func (s *TelemetrySink) loop() {
	defer close(s.done)
	t := time.NewTicker(s.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Flush() //nolint:errcheck // counted in obs_telemetry_store_errors_total
		case <-s.stop:
			return
		}
	}
}

// Offer enqueues a completed span without blocking. When the buffer is at
// capacity the entry is dropped and counted — backpressure must never stall
// the statement that produced the span.
func (s *TelemetrySink) Offer(sp *Span, slow bool) {
	if sp == nil {
		return
	}
	s.mu.Lock()
	if len(s.buf) >= s.cap {
		s.mu.Unlock()
		sinkDropped.Inc()
		return
	}
	s.buf = append(s.buf, SinkEntry{Span: sp, Slow: slow})
	s.mu.Unlock()
	sinkOffered.Inc()
}

// Buffered returns the number of entries waiting for the next flush.
func (s *TelemetrySink) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Dropped returns the total entries dropped under backpressure.
func (s *TelemetrySink) Dropped() int64 { return sinkDropped.Value() }

// Flush synchronously stores everything buffered so far. Entries are handed
// to the store callback outside the buffer lock.
func (s *TelemetrySink) Flush() error {
	s.mu.Lock()
	batch := s.buf
	s.buf = nil
	s.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	if err := s.store(batch); err != nil {
		sinkStoreErrs.Inc()
		return err
	}
	sinkStored.Add(int64(len(batch)))
	return nil
}

// Close stops the background flusher (if started) and runs a final Flush.
func (s *TelemetrySink) Close() error {
	s.startOnce.Do(func() { close(s.done) }) // never started: mark loop done
	select {
	case <-s.done:
	default:
		close(s.stop)
		<-s.done
	}
	return s.Flush()
}

// --- global sink installation ---

var activeSink atomic.Pointer[TelemetrySink]

// InstallSink routes every completed span to s until UninstallSink. While a
// sink is installed, godbc starts spans even with tracing and the slow-query
// log off, so the telemetry tables see all statements.
func InstallSink(s *TelemetrySink) { activeSink.Store(s) }

// UninstallSink detaches the installed sink (it is not closed).
func UninstallSink() { activeSink.Store(nil) }

// ActiveSink returns the installed sink, nil when none.
func ActiveSink() *TelemetrySink { return activeSink.Load() }

// SinkActive reports whether a sink is installed — a single atomic load,
// cheap enough for statement hot paths.
func SinkActive() bool { return activeSink.Load() != nil }
