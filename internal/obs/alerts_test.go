package obs

import (
	"testing"
	"time"
)

// feedRate appends one counter sample so the trailing interval's rate is
// ratePerSec, advancing the synthetic clock by a second.
func feedRate(h *History, total *int64, at time.Time, ratePerSec int64) {
	*total += ratePerSec
	histAt(h, at, map[string]int64{"c_total": *total}, nil, nil)
}

// TestAlertThresholdLifecycle walks one rule through the whole episode:
// breach → pending, held past the for-duration → firing, breach clears →
// resolved, with the persisted episode id riding the resolved transition.
func TestAlertThresholdLifecycle(t *testing.T) {
	h := NewHistory(32)
	as := NewAlertSet()
	t0 := time.Unix(5000, 0)
	rule := AlertRule{
		ID: 1, Name: "exec-rate", Metric: "c_total",
		Kind: AlertKindThreshold, Op: "gt", Threshold: 1,
		Window: 2 * time.Second, For: 2 * time.Second, Severity: "warn",
	}
	if tr := as.SetRules([]AlertRule{rule}, t0); len(tr) != 0 {
		t.Fatalf("SetRules emitted %v on install", tr)
	}

	var total int64
	at := func(i int) time.Time { return t0.Add(time.Duration(i) * time.Second) }
	histAt(h, at(0), map[string]int64{"c_total": 0}, nil, nil)
	feedRate(h, &total, at(1), 10)
	feedRate(h, &total, at(2), 10)

	tr := as.Eval(h, at(2))
	if len(tr) != 1 || tr[0].To != AlertStatePending || tr[0].From != "" {
		t.Fatalf("first breach transitions = %+v, want inactive→pending", tr)
	}
	if tr[0].RuleName != "exec-rate" || tr[0].Severity != "warn" {
		t.Fatalf("transition carries %+v, want rule identity", tr[0])
	}

	// Still breached but inside the for-duration: no transition.
	feedRate(h, &total, at(3), 10)
	if tr := as.Eval(h, at(3)); len(tr) != 0 {
		t.Fatalf("mid-for eval transitions = %+v, want none", tr)
	}

	// Held for the full for-duration: fires.
	feedRate(h, &total, at(4), 10)
	tr = as.Eval(h, at(4))
	if len(tr) != 1 || tr[0].From != AlertStatePending || tr[0].To != AlertStateFiring {
		t.Fatalf("for-elapsed transitions = %+v, want pending→firing", tr)
	}
	if as.FiringCount() != 1 {
		t.Fatalf("FiringCount = %d, want 1", as.FiringCount())
	}
	snap := as.Snapshot()
	if len(snap) != 1 || snap[0].State != AlertStateFiring {
		t.Fatalf("snapshot = %+v, want firing", snap)
	}

	// The persister inserted episode row 42; the resolve must carry it.
	as.SetEpisodeID(1, 42)

	// Traffic stops: the 2s window drains to rate 0 and the episode
	// resolves.
	feedRate(h, &total, at(5), 0)
	feedRate(h, &total, at(6), 0)
	feedRate(h, &total, at(7), 0)
	tr = as.Eval(h, at(7))
	if len(tr) != 1 || tr[0].From != AlertStateFiring || tr[0].To != AlertStateResolved {
		t.Fatalf("quiet eval transitions = %+v, want firing→resolved", tr)
	}
	if tr[0].EpisodeID != 42 {
		t.Fatalf("resolved transition episode = %d, want 42", tr[0].EpisodeID)
	}
	if got := as.Snapshot(); got[0].State != AlertStateOK {
		t.Fatalf("post-resolve snapshot state = %q, want ok", got[0].State)
	}
}

// TestAlertForZeroFiresImmediately: with no for-duration, one evaluation
// emits the pending and firing transitions back to back.
func TestAlertForZeroFiresImmediately(t *testing.T) {
	h := NewHistory(8)
	as := NewAlertSet()
	t0 := time.Unix(6000, 0)
	as.SetRules([]AlertRule{{
		ID: 7, Name: "spike", Metric: "c_total",
		Op: "gt", Threshold: 1, Window: 5 * time.Second,
	}}, t0)

	var total int64
	histAt(h, t0, map[string]int64{"c_total": 0}, nil, nil)
	feedRate(h, &total, t0.Add(time.Second), 50)

	tr := as.Eval(h, t0.Add(time.Second))
	if len(tr) != 2 || tr[0].To != AlertStatePending || tr[1].To != AlertStateFiring {
		t.Fatalf("transitions = %+v, want pending then firing in one eval", tr)
	}
}

// TestAlertNoDataResolves: a metric the ring has never seen is not a
// breach — absence of evidence resolves rather than fires.
func TestAlertNoDataResolves(t *testing.T) {
	h := NewHistory(8)
	as := NewAlertSet()
	t0 := time.Unix(6500, 0)
	as.SetRules([]AlertRule{{ID: 2, Name: "ghost", Metric: "missing_total", Op: "gt", Threshold: 0}}, t0)
	if tr := as.Eval(h, t0); len(tr) != 0 {
		t.Fatalf("no-data eval transitions = %+v, want none", tr)
	}
	if snap := as.Snapshot(); snap[0].State != AlertStateOK {
		t.Fatalf("no-data state = %q, want ok", snap[0].State)
	}
}

// TestAlertAnomaly: a z-score rule stays quiet through steady (noisy)
// traffic and flags the sample that jumps far outside the window's base,
// while a perfectly flat series never breaches (std = 0 guard).
func TestAlertAnomaly(t *testing.T) {
	h := NewHistory(32)
	as := NewAlertSet()
	t0 := time.Unix(7000, 0)
	as.SetRules([]AlertRule{{
		ID: 3, Name: "jump", Metric: "c_total",
		Kind: AlertKindAnomaly, ZScore: 3, Window: time.Minute,
	}}, t0)

	var total int64
	at := func(i int) time.Time { return t0.Add(time.Duration(i) * time.Second) }
	histAt(h, at(0), map[string]int64{"c_total": 0}, nil, nil)
	rates := []int64{10, 11, 10, 11, 10}
	for i, r := range rates {
		feedRate(h, &total, at(i+1), r)
	}
	if tr := as.Eval(h, at(len(rates))); len(tr) != 0 {
		t.Fatalf("steady traffic transitions = %+v, want none", tr)
	}

	feedRate(h, &total, at(len(rates)+1), 500)
	tr := as.Eval(h, at(len(rates)+1))
	if len(tr) != 2 || tr[1].To != AlertStateFiring {
		t.Fatalf("spike transitions = %+v, want pending+firing", tr)
	}

	// Flat series: std 0, never a breach even though last == mean exactly.
	h2 := NewHistory(16)
	as2 := NewAlertSet()
	as2.SetRules([]AlertRule{{ID: 4, Name: "flat", Metric: "c_total",
		Kind: AlertKindAnomaly, ZScore: 0.1, Window: time.Minute}}, t0)
	var tot2 int64
	histAt(h2, at(0), map[string]int64{"c_total": 0}, nil, nil)
	for i := 0; i < 6; i++ {
		feedRate(h2, &tot2, at(i+1), 10)
	}
	if tr := as2.Eval(h2, at(6)); len(tr) != 0 {
		t.Fatalf("flat series transitions = %+v, want none", tr)
	}
}

// TestAlertSetRulesRemovalResolves: deleting a rule with an open episode
// closes the episode — the resolved transition is returned for persistence
// with the episode id intact.
func TestAlertSetRulesRemovalResolves(t *testing.T) {
	h := NewHistory(16)
	as := NewAlertSet()
	t0 := time.Unix(8000, 0)
	as.SetRules([]AlertRule{{ID: 9, Name: "doomed", Metric: "c_total",
		Op: "gt", Threshold: 1, Window: 5 * time.Second}}, t0)

	var total int64
	histAt(h, t0, map[string]int64{"c_total": 0}, nil, nil)
	feedRate(h, &total, t0.Add(time.Second), 50)
	as.Eval(h, t0.Add(time.Second))
	as.SetEpisodeID(9, 17)

	tr := as.SetRules(nil, t0.Add(2*time.Second))
	if len(tr) != 1 || tr[0].To != AlertStateResolved || tr[0].EpisodeID != 17 {
		t.Fatalf("removal transitions = %+v, want resolved with episode 17", tr)
	}
	if len(as.Snapshot()) != 0 {
		t.Fatalf("snapshot after removal = %+v, want empty", as.Snapshot())
	}
}

// TestAlertRestore: an episode a previous process persisted resumes in this
// set and resolves through the normal path, reusing the persisted row id.
func TestAlertRestore(t *testing.T) {
	h := NewHistory(16)
	as := NewAlertSet()
	t0 := time.Unix(9000, 0)
	as.SetRules([]AlertRule{{ID: 5, Name: "inherited", Metric: "c_total",
		Op: "gt", Threshold: 1, Window: 2 * time.Second}}, t0)
	as.Restore(5, AlertStateFiring, t0.Add(-time.Minute), 12, 99)

	if snap := as.Snapshot(); snap[0].State != AlertStateFiring || snap[0].EpisodeID != 99 {
		t.Fatalf("restored snapshot = %+v, want firing with episode 99", snap)
	}

	// An idle ring means the predicate no longer holds: the inherited
	// episode resolves against row 99.
	histAt(h, t0, map[string]int64{"c_total": 0}, nil, nil)
	histAt(h, t0.Add(time.Second), map[string]int64{"c_total": 0}, nil, nil)
	tr := as.Eval(h, t0.Add(time.Second))
	if len(tr) != 1 || tr[0].To != AlertStateResolved || tr[0].EpisodeID != 99 {
		t.Fatalf("restored-resolve transitions = %+v, want resolved episode 99", tr)
	}

	// Restoring a resolved (or garbage) state is a no-op.
	as.Restore(5, AlertStateResolved, t0, 0, 100)
	if snap := as.Snapshot(); snap[0].State != AlertStateOK {
		t.Fatalf("state after bogus restore = %q, want ok", snap[0].State)
	}
}
