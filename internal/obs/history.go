// Metric history: the registry is a point-in-time surface, so rates,
// regressions and anomaly detection all need the dimension it lacks —
// time. History samples a Registry on a fixed cadence into a bounded ring
// of delta-encoded points: counters and histograms record what changed
// since the previous sample (so a row is information, not a restatement),
// gauges record their level when it moves. The ring answers windowed
// queries (rate, avg, min/max, p95, EWMA) for the /history endpoint, the
// OBS_METRICS_HISTORY catalog table, and alert evaluation; the telemetry
// writer mirrors each sample into PERFDMF_METRICS_HISTORY so history
// survives the process.
package obs

import (
	"sort"
	"sync"
	"time"
)

// HistoryPoint is one metric's activity in one scrape interval.
type HistoryPoint struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter" | "gauge" | "histogram"
	// Value is the counter's delta since the previous sample, or the
	// gauge's level. Histograms leave it 0 and use DeltaCount/DeltaSum.
	Value float64 `json:"value"`
	// DeltaCount/DeltaSum are the histogram's new observations and their
	// sum since the previous sample.
	DeltaCount int64 `json:"delta_count,omitempty"`
	DeltaSum   int64 `json:"delta_sum,omitempty"`
	// P50/P95/P99 are the histogram's cumulative quantiles at scrape time
	// (quantiles do not delta-decompose).
	P50 int64 `json:"p50,omitempty"`
	P95 int64 `json:"p95,omitempty"`
	P99 int64 `json:"p99,omitempty"`
}

// HistorySample is one scrape: every metric that moved, plus the wall
// clock it covers.
type HistorySample struct {
	At      time.Time     `json:"at"`
	Elapsed time.Duration `json:"elapsed"` // since the previous sample; 0 on the first
	Points  []HistoryPoint
}

// DefaultHistoryRing is the in-memory ring capacity in samples: at the
// serve daemon's 1s default cadence, 12 minutes of history.
const DefaultHistoryRing = 720

// ewmaAlpha weights the newest sample in the exponentially weighted moving
// average the /history endpoint and anomaly rules read.
const ewmaAlpha = 0.3

var (
	mHistSamples = Default.Counter("obs_history_samples_total")
	mHistPoints  = Default.Counter("obs_history_points_total")
)

// History is the bounded sample ring plus the previous-snapshot state
// delta encoding needs. Sample is called from one scrape loop; readers
// (endpoint, catalog, alert evaluation) may run concurrently.
type History struct {
	mu    sync.Mutex
	cap   int
	ring  []HistorySample // ring[0:n], oldest first once wrapped via start
	start int             // index of the oldest sample
	total int64           // lifetime sample count

	prevCounters map[string]int64
	prevGauges   map[string]int64
	prevHist     map[string]histPrev
	kinds        map[string]string // every metric ever seen -> kind
	lastAt       time.Time
}

type histPrev struct{ count, sum int64 }

// NewHistory returns an empty ring holding at most capSamples scrapes.
func NewHistory(capSamples int) *History {
	if capSamples <= 0 {
		capSamples = DefaultHistoryRing
	}
	return &History{
		cap:          capSamples,
		prevCounters: make(map[string]int64),
		prevGauges:   make(map[string]int64),
		prevHist:     make(map[string]histPrev),
		kinds:        make(map[string]string),
	}
}

// DefaultHistory is the process-wide ring the telemetry scrape loop fills
// and the /history endpoint and OBS_METRICS_HISTORY catalog read.
var DefaultHistory = NewHistory(DefaultHistoryRing)

// Sample scrapes reg once: it computes every metric's delta against the
// previous scrape, appends the sample to the ring, and returns it (the
// telemetry writer persists the returned points). The registry snapshot is
// taken before the history lock so Sample never holds two locks.
func (h *History) Sample(reg *Registry) HistorySample {
	snap := reg.Snapshot()
	return h.absorb(snap, time.Now())
}

// absorb is Sample minus the clock and registry, for tests.
func (h *History) absorb(snap Snapshot, now time.Time) HistorySample {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistorySample{At: now}
	if !h.lastAt.IsZero() {
		s.Elapsed = now.Sub(h.lastAt)
	}
	h.lastAt = now

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := snap.Counters[name]
		h.kinds[name] = "counter"
		if d := v - h.prevCounters[name]; d != 0 {
			s.Points = append(s.Points, HistoryPoint{Name: name, Kind: "counter", Value: float64(d)})
		}
		h.prevCounters[name] = v
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := snap.Gauges[name]
		prev, seen := h.prevGauges[name]
		h.kinds[name] = "gauge"
		if !seen || prev != v {
			s.Points = append(s.Points, HistoryPoint{Name: name, Kind: "gauge", Value: float64(v)})
		}
		h.prevGauges[name] = v
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		hs := snap.Histograms[name]
		prev := h.prevHist[name]
		h.kinds[name] = "histogram"
		if d := hs.Count - prev.count; d != 0 {
			s.Points = append(s.Points, HistoryPoint{
				Name: name, Kind: "histogram",
				DeltaCount: d, DeltaSum: hs.Sum - prev.sum,
				P50: hs.P50, P95: hs.P95, P99: hs.P99,
			})
		}
		h.prevHist[name] = histPrev{count: hs.Count, sum: hs.Sum}
	}

	if len(h.ring) < h.cap {
		h.ring = append(h.ring, s)
	} else {
		h.ring[h.start] = s
		h.start = (h.start + 1) % h.cap
	}
	h.total++
	mHistSamples.Inc()
	mHistPoints.Add(int64(len(s.Points)))
	return s
}

// Samples copies the ring, oldest first.
func (h *History) Samples() []HistorySample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistorySample, 0, len(h.ring))
	for i := 0; i < len(h.ring); i++ {
		out = append(out, h.ring[(h.start+i)%len(h.ring)])
	}
	return out
}

// LastAt returns the newest sample's time, zero before the first scrape.
func (h *History) LastAt() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastAt
}

// TotalSamples returns the lifetime scrape count (the ring holds the tail).
func (h *History) TotalSamples() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Metrics lists every metric name the ring has ever seen, sorted.
func (h *History) Metrics() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.kinds))
	for name := range h.kinds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SeriesPoint is one windowed observation of a metric: a per-second rate
// for counters and histograms, the recorded level for gauges. P95 carries
// the histogram quantile alongside.
type SeriesPoint struct {
	At    time.Time `json:"at"`
	Value float64   `json:"value"`
	P95   int64     `json:"p95,omitempty"`
}

// WindowStats are the aggregates of one metric over a trailing window —
// the /history response body and the values alert predicates compare.
type WindowStats struct {
	Metric        string  `json:"metric"`
	Kind          string  `json:"kind"`
	Samples       int     `json:"samples"`
	WindowSeconds float64 `json:"window_seconds"` // wall clock actually covered
	// RatePerSec is total delta over total elapsed (counters, histogram
	// observation counts); 0 for gauges.
	RatePerSec float64 `json:"rate_per_sec"`
	Avg        float64 `json:"avg"`
	Min        float64 `json:"min"`
	Max        float64 `json:"max"`
	// P95 is the largest histogram p95 seen in the window.
	P95  int64   `json:"p95"`
	EWMA float64 `json:"ewma"`
	Last float64 `json:"last"`
}

// Series returns the metric's windowed observations, oldest first. The
// window is anchored at the newest sample (not the wall clock), so readers
// see the same series the scrape loop recorded even if scraping stalled.
// Samples where a counter or histogram recorded no point count as rate 0;
// gauges carry their last recorded level forward. ok is false for metrics
// the ring has never seen.
func (h *History) Series(metric string, window time.Duration) (kind string, pts []SeriesPoint, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	kind, known := h.kinds[metric]
	if !known || len(h.ring) == 0 {
		return "", nil, false
	}
	cutoff := h.lastAt.Add(-window)
	var gaugeLevel float64
	var gaugeSeen bool
	for i := 0; i < len(h.ring); i++ {
		s := h.ring[(h.start+i)%len(h.ring)]
		var p *HistoryPoint
		for j := range s.Points {
			if s.Points[j].Name == metric {
				p = &s.Points[j]
				break
			}
		}
		if kind == "gauge" && p != nil {
			gaugeLevel, gaugeSeen = p.Value, true
		}
		if s.At.Before(cutoff) {
			continue
		}
		switch kind {
		case "gauge":
			if gaugeSeen {
				pts = append(pts, SeriesPoint{At: s.At, Value: gaugeLevel})
			}
		case "counter", "histogram":
			// Rates need an interval; the ring's first-ever sample has none.
			if s.Elapsed <= 0 {
				continue
			}
			var delta float64
			var p95 int64
			if p != nil {
				if kind == "counter" {
					delta = p.Value
				} else {
					delta = float64(p.DeltaCount)
					p95 = p.P95
				}
			}
			pts = append(pts, SeriesPoint{At: s.At, Value: delta / s.Elapsed.Seconds(), P95: p95})
		}
	}
	return kind, pts, true
}

// Window aggregates the metric over the trailing window. ok is false when
// the metric is unknown or the window holds no observations.
func (h *History) Window(metric string, window time.Duration) (WindowStats, bool) {
	kind, pts, known := h.Series(metric, window)
	if !known || len(pts) == 0 {
		return WindowStats{}, false
	}
	st := WindowStats{Metric: metric, Kind: kind, Samples: len(pts)}
	st.WindowSeconds = pts[len(pts)-1].At.Sub(pts[0].At).Seconds()
	st.Min = pts[0].Value
	var sum float64
	for i, p := range pts {
		if p.Value < st.Min {
			st.Min = p.Value
		}
		if p.Value > st.Max {
			st.Max = p.Value
		}
		if p.P95 > st.P95 {
			st.P95 = p.P95
		}
		sum += p.Value
		if i == 0 {
			st.EWMA = p.Value
		} else {
			st.EWMA = ewmaAlpha*p.Value + (1-ewmaAlpha)*st.EWMA
		}
	}
	st.Avg = sum / float64(len(pts))
	st.Last = pts[len(pts)-1].Value
	if kind != "gauge" {
		// Total delta over total elapsed: each point is delta_i/elapsed_i,
		// so re-weight by the interval each point covers.
		st.RatePerSec = h.weightedRate(metric, window)
	}
	return st, true
}

// weightedRate recomputes total delta / total elapsed over the window.
func (h *History) weightedRate(metric string, window time.Duration) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.ring) == 0 {
		return 0
	}
	cutoff := h.lastAt.Add(-window)
	var delta, elapsed float64
	for i := 0; i < len(h.ring); i++ {
		s := h.ring[(h.start+i)%len(h.ring)]
		if s.At.Before(cutoff) || s.Elapsed <= 0 {
			continue
		}
		elapsed += s.Elapsed.Seconds()
		for j := range s.Points {
			if s.Points[j].Name != metric {
				continue
			}
			if s.Points[j].Kind == "histogram" {
				delta += float64(s.Points[j].DeltaCount)
			} else {
				delta += s.Points[j].Value
			}
			break
		}
	}
	if elapsed <= 0 {
		return 0
	}
	return delta / elapsed
}
