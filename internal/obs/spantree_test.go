package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestStartSpanPropagation covers the context-propagation contract: a root
// span names itself Root, descendants inherit that Root and record their
// parent's ID, and with every consumer off StartSpan is free (nil span).
func TestStartSpanPropagation(t *testing.T) {
	prev := TracingEnabled()
	defer SetTracing(prev)
	SetTracing(true)

	ctx, root := StartSpan(context.Background(), "upload", "upload:trialX")
	if root == nil {
		t.Fatal("root span nil with tracing on")
	}
	if root.ParentID != 0 || root.Root != "upload:trialX" {
		t.Fatalf("root: ParentID=%d Root=%q", root.ParentID, root.Root)
	}
	cctx, child := StartSpan(ctx, "parse", "parse:tau")
	if child.ParentID != root.ID {
		t.Fatalf("child.ParentID = %d, want %d", child.ParentID, root.ID)
	}
	if child.Root != "upload:trialX" {
		t.Fatalf("child.Root = %q, want root's name", child.Root)
	}
	_, grand := StartSpan(cctx, "exec", "batch:insert")
	if grand.ParentID != child.ID || grand.Root != "upload:trialX" {
		t.Fatalf("grandchild: ParentID=%d Root=%q", grand.ParentID, grand.Root)
	}
	grand.Finish(nil)
	child.Finish(nil)
	root.Finish(nil)

	// Even with tracing switched off mid-tree, a context that carries a
	// parent keeps producing children — the tree stays whole.
	SetTracing(false)
	_, late := StartSpan(cctx, "exec", "batch:late")
	if late == nil || late.ParentID != child.ID {
		t.Fatal("child under a live parent must be created even with tracing off")
	}
	late.Finish(nil)
}

// TestStartSpanOffIsFree asserts the fast path: no consumer, no parent —
// no span, and a nil span is safe to Finish.
func TestStartSpanOffIsFree(t *testing.T) {
	prevT := TracingEnabled()
	prevS := SlowQueryThreshold()
	defer func() { SetTracing(prevT); SetSlowQueryThreshold(prevS) }()
	SetTracing(false)
	SetSlowQueryThreshold(0)
	if SinkActive() {
		t.Skip("a telemetry sink is installed; fast path not reachable")
	}
	ctx, sp := StartSpan(context.Background(), "upload", "upload:none")
	if sp != nil {
		t.Fatalf("expected nil span with observability off, got %+v", sp)
	}
	sp.Finish(nil) // must not panic
	if got := SpanFromContext(ctx); got != nil {
		t.Fatalf("context should carry no span, got %+v", got)
	}
}

func TestEnsureSpanIDsAbove(t *testing.T) {
	base := NextSpanID()
	EnsureSpanIDsAbove(base + 1000)
	if id := NextSpanID(); id <= base+1000 {
		t.Fatalf("NextSpanID = %d, want > %d", id, base+1000)
	}
	high := NextSpanID()
	EnsureSpanIDsAbove(1) // must never move the counter backwards
	if id := NextSpanID(); id <= high {
		t.Fatalf("NextSpanID = %d regressed below %d", id, high)
	}
}

// span is a shorthand constructor for assembly tests.
func mkSpan(id, parent int64, name string, total time.Duration) *Span {
	return &Span{ID: id, ParentID: parent, Kind: "test", Name: name, Root: "r", Total: total}
}

func TestBuildTrees(t *testing.T) {
	spans := []*Span{
		mkSpan(3, 1, "child-b", 10*time.Millisecond),
		mkSpan(1, 0, "root", 100*time.Millisecond),
		mkSpan(2, 1, "child-a", 30*time.Millisecond),
		mkSpan(4, 2, "leaf", 5*time.Millisecond),
		mkSpan(9, 7, "orphan", 2*time.Millisecond), // parent 7 evicted → root
		nil, // tolerated
	}
	trees := BuildTrees(spans)
	if len(trees) != 2 {
		t.Fatalf("got %d roots, want 2", len(trees))
	}
	root, orphan := trees[0], trees[1]
	if root.ID != 1 || orphan.ID != 9 {
		t.Fatalf("roots ordered %d,%d; want 1,9", root.ID, orphan.ID)
	}
	if len(root.Children) != 2 || root.Children[0].ID != 2 || root.Children[1].ID != 3 {
		t.Fatalf("children of root misordered: %+v", root.Children)
	}
	if d := root.Depth(); d != 3 {
		t.Fatalf("root depth = %d, want 3", d)
	}
	if d := orphan.Depth(); d != 1 {
		t.Fatalf("orphan depth = %d, want 1", d)
	}
	// Self time: root 100ms minus 30+10ms of direct children.
	if root.SelfNS != int64(60*time.Millisecond) {
		t.Fatalf("root self = %v", time.Duration(root.SelfNS))
	}
	// child-a 30ms minus 5ms leaf.
	if root.Children[0].SelfNS != int64(25*time.Millisecond) {
		t.Fatalf("child-a self = %v", time.Duration(root.Children[0].SelfNS))
	}
}

// TestBuildTreesSelfClamped: concurrent children can sum past the parent's
// wall time; self time must clamp at zero, not go negative.
func TestBuildTreesSelfClamped(t *testing.T) {
	trees := BuildTrees([]*Span{
		mkSpan(1, 0, "root", 10*time.Millisecond),
		mkSpan(2, 1, "a", 8*time.Millisecond),
		mkSpan(3, 1, "b", 8*time.Millisecond),
	})
	if len(trees) != 1 || trees[0].SelfNS != 0 {
		t.Fatalf("self not clamped: %+v", trees[0])
	}
}

func TestWriteTree(t *testing.T) {
	trees := BuildTrees([]*Span{
		mkSpan(1, 0, "upload:trial", 100*time.Millisecond),
		mkSpan(2, 1, "parse:tau", 40*time.Millisecond),
		{ID: 3, ParentID: 1, Kind: "exec", Statement: "INSERT INTO T VALUES (?)", Root: "r",
			Total: 20 * time.Millisecond, RowsScanned: 0, RowsReturned: 7},
	})
	var b strings.Builder
	WriteTree(&b, trees[0])
	out := b.String()
	for _, want := range []string{"upload:trial", "├─ parse:tau", "└─ INSERT INTO T", "rows=0/7", "self="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, out)
		}
	}
}
