// Package obs is PerfDMF's self-instrumentation layer: a zero-dependency
// metrics registry (atomic counters, gauges and power-of-two latency
// histograms), per-statement tracing spans, and a slow-query log.
//
// PerfDMF manages other programs' performance data; obs makes the framework
// measurable by the same standards it applies to its subjects. The layer is
// threaded through the whole stack — godbc counts and times statements,
// sqlexec records plan choice and rows scanned vs. returned, reldb reports
// WAL, snapshot, B-tree and transaction activity — and is surfaced by
// `perfdmf stats`, `EXPLAIN ANALYZE` and cmd/experiments' BENCH_obs.json.
//
// Design constraints:
//
//   - Zero dependencies: stdlib only, and no imports from other perfdmf
//     packages (everything else imports obs).
//   - Negligible cost when idle: with tracing off and no slow-query
//     threshold, the hot paths pay only a few atomic adds. Callers should
//     gate time.Now pairs on TimingEnabled().
//   - Race-free by construction: metric updates are single atomic
//     operations; registries and logs use short critical sections.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (or be set outright).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the number of histogram buckets. Bucket i counts
// observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v <= 0 and v < 1,
// i.e. everything below 1). 64 buckets cover the full int64 range, so a
// nanosecond-valued histogram spans sub-nanosecond to ~292 years.
const HistBuckets = 64

// Histogram is a lock-free histogram with power-of-two bucket boundaries,
// intended for latencies in nanoseconds and sizes in bytes. The scheme
// trades resolution (each bucket is a factor of two wide) for a fixed
// footprint and single-atomic-add observation cost.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// bucketOf returns the bucket index for v: 0 for v < 1, else 1+floor(log2 v).
func bucketOf(v int64) int {
	if v < 1 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistSnapshot is a point-in-time copy of a histogram. P50/P95/P99 are
// precomputed upper-bound quantile estimates (see Quantile), so JSON
// consumers get latency percentiles without reconstructing the buckets.
type HistSnapshot struct {
	Count   int64              `json:"count"`
	Sum     int64              `json:"sum"`
	P50     int64              `json:"p50"`
	P95     int64              `json:"p95"`
	P99     int64              `json:"p99"`
	Buckets map[string]int64   `json:"buckets,omitempty"` // upper bound -> count, non-empty buckets only
	bounds  []histBucketSample // parallel data kept for quantiles
}

type histBucketSample struct {
	upper int64 // exclusive upper bound (2^i)
	count int64
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		upper := int64(1) << i // bucket i holds v < 2^i
		if i == HistBuckets-1 {
			upper = int64(1)<<62 + (int64(1)<<62 - 1) // effectively +Inf
		}
		if s.Buckets == nil {
			s.Buckets = make(map[string]int64)
		}
		s.Buckets[fmt.Sprint(upper)] = n
		s.bounds = append(s.bounds, histBucketSample{upper: upper, count: n})
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Mean returns the average observed value, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the exclusive upper bound of the bucket containing that rank. The
// power-of-two scheme makes this accurate to within a factor of two.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.bounds {
		seen += b.count
		if seen >= rank {
			return b.upper
		}
	}
	return s.bounds[len(s.bounds)-1].upper
}

// Snapshot is a point-in-time copy of a registry, safe to marshal as JSON
// (the shape of cmd/experiments' BENCH_obs.json).
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Registry holds named metrics. Metric lookup takes a read lock; the
// returned metric handles are updated with plain atomics, so instrumented
// packages resolve their metrics once into package variables.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry every perfdmf package reports into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Reset zeroes every registered metric (for tests and benchmarks; metric
// handles held by instrumented packages stay valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		h.count.Store(0)
		h.sum.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, metrics sorted by name. Histograms emit cumulative le-labelled
// buckets plus _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var names []string
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.bounds {
			cum += b.count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.upper, cum); err != nil {
				return err
			}
		}
		// Summary-style quantile series alongside the buckets, so scrapers
		// get p50/p95/p99 without a histogram_quantile() round trip.
		for _, q := range [...]struct {
			label string
			v     int64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=\"%s\"} %d\n", name, q.label, q.v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, h.Count, name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
