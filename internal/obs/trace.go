package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span records one statement's journey through the stack: the godbc layer
// stamps parse time and totals, sqlexec fills in the plan/execute/
// materialize phases, the access-path decision, and rows scanned vs.
// returned. A span costs nothing unless tracing or the slow-query log is
// active — callers pass nil otherwise.
type Span struct {
	// ID is a process-wide monotonically increasing span id (see NextSpanID).
	// It appears in the slow-query log line, the /traces endpoint and the
	// PERFDMF_SPANS / PERFDMF_SLOWLOG telemetry tables, so an entry in any
	// one of them can be joined against the others.
	ID int64 `json:"id"`
	// ParentID links this span into a causal tree: 0 marks a root, any
	// other value is the ID of the span that was active (via
	// ContextWithSpan / a bound connection) when this one started.
	ParentID int64 `json:"parent_id,omitempty"`
	// Kind is "exec", "query" or "prepare" for statement spans, or a
	// framework layer ("parse", "upload", "download", "analysis",
	// "mining", "load", "phase") for spans started with StartSpan.
	Kind string `json:"kind"`
	// Name labels framework spans ("upload:trialX", "parse:tau:file");
	// statement spans leave it empty and are labeled by Statement.
	Name string `json:"name,omitempty"`
	// Root is the Name of the tree's root span, copied onto every
	// descendant so any span — including a slow-query log line — is
	// attributable to the workload that caused it without a join.
	Root      string    `json:"root,omitempty"`
	Statement string    `json:"statement,omitempty"`
	Params    int       `json:"params"` // bound-parameter count
	Start     time.Time `json:"start"`

	// Phase timings. For Exec statements the engine work is folded into
	// Execute; Prepare spans only have Parse.
	Parse       time.Duration `json:"parse_ns"`
	Plan        time.Duration `json:"plan_ns"`
	Execute     time.Duration `json:"execute_ns"`
	Materialize time.Duration `json:"materialize_ns"`
	Total       time.Duration `json:"total_ns"`

	RowsScanned  int64  `json:"rows_scanned"`
	RowsReturned int64  `json:"rows_returned"`
	IndexUsed    bool   `json:"index_used"`
	PlanSummary  string `json:"plan_summary,omitempty"`
	Err          string `json:"err,omitempty"`
}

// spanIDs backs NextSpanID.
var spanIDs atomic.Int64

// NextSpanID returns the next process-wide span id (1, 2, ...). The godbc
// layer stamps every span it starts.
func NextSpanID() int64 { return spanIDs.Add(1) }

// EnsureSpanIDsAbove raises the span-id counter so the next id is > n.
// The telemetry store calls it with MAX(span_id) from PERFDMF_SPANS at
// open: ids are only monotonic within a process, and a second process
// writing into the same archive must not collide with persisted rows.
func EnsureSpanIDsAbove(n int64) {
	for {
		cur := spanIDs.Load()
		if cur >= n || spanIDs.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Op returns the grouping key for per-operation telemetry queries: for
// named framework spans the part of Name before the first ':' ("upload",
// "parse"), otherwise the statement's leading SQL keyword, upper-cased
// ("SELECT", "INSERT", ...), or "" for an empty statement.
func (sp *Span) Op() string {
	if sp.Name != "" {
		if i := strings.IndexByte(sp.Name, ':'); i > 0 {
			return sp.Name[:i]
		}
		return sp.Name
	}
	f := strings.Fields(sp.Statement)
	if len(f) == 0 {
		return ""
	}
	return strings.ToUpper(f[0])
}

// Label returns the human-facing identity of the span: Name for framework
// spans, the compacted statement (capped at max bytes) for statement spans.
func (sp *Span) Label(max int) string {
	if sp.Name != "" {
		return sp.Name
	}
	return sp.CompactStatement(max)
}

// CompactStatement returns the statement text with whitespace collapsed and
// truncated to max bytes (a trailing "..." marks truncation).
func (sp *Span) CompactStatement(max int) string {
	stmt := strings.Join(strings.Fields(sp.Statement), " ")
	if max > 3 && len(stmt) > max {
		stmt = stmt[:max-3] + "..."
	}
	return stmt
}

// String renders the span as the one-line slow-query log format documented
// in docs/OBSERVABILITY.md. The id and RFC3339 start time let a log line be
// joined against /traces and the PERFDMF_SPANS table.
func (sp *Span) String() string {
	stmt := sp.Label(200)
	var b strings.Builder
	fmt.Fprintf(&b, "%s id=%d kind=%s total=%v parse=%v plan=%v execute=%v materialize=%v rows=%d/%d params=%d",
		sp.Start.Format(time.RFC3339), sp.ID, sp.Kind, sp.Total, sp.Parse, sp.Plan,
		sp.Execute, sp.Materialize, sp.RowsScanned, sp.RowsReturned, sp.Params)
	if sp.ParentID != 0 {
		fmt.Fprintf(&b, " parent=%d", sp.ParentID)
	}
	if sp.Root != "" {
		fmt.Fprintf(&b, " root=%q", sp.Root)
	}
	if sp.PlanSummary != "" {
		fmt.Fprintf(&b, " plan=%q", sp.PlanSummary)
	}
	if sp.Err != "" {
		fmt.Fprintf(&b, " err=%q", sp.Err)
	}
	fmt.Fprintf(&b, " stmt=%q", stmt)
	return b.String()
}

// --- global tracing / slow-query configuration ---

var (
	traceEnabled  atomic.Bool
	slowThreshold atomic.Int64 // nanoseconds; 0 disables the slow-query log
	timingEnabled atomic.Bool  // traceEnabled || slowThreshold > 0
)

func refreshTiming() {
	timingEnabled.Store(traceEnabled.Load() || slowThreshold.Load() > 0)
}

// SetTracing turns statement tracing on or off globally. Connections can
// override this per DSN (godbc's ?trace=1).
func SetTracing(on bool) {
	traceEnabled.Store(on)
	refreshTiming()
}

// TracingEnabled reports the global tracing switch.
func TracingEnabled() bool { return traceEnabled.Load() }

// SetSlowQueryThreshold sets the global slow-query threshold; statements
// that take at least d are recorded in DefaultSlowLog. Zero disables.
func SetSlowQueryThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	slowThreshold.Store(int64(d))
	refreshTiming()
}

// SlowQueryThreshold returns the global threshold (0 = disabled).
func SlowQueryThreshold() time.Duration {
	return time.Duration(slowThreshold.Load())
}

// TimingEnabled reports whether any consumer (tracing or the slow-query
// log) needs per-statement wall-clock timing. Hot paths gate their
// time.Now calls on this so the idle cost stays at a few atomic adds.
func TimingEnabled() bool { return timingEnabled.Load() }

// Config bundles the runtime-tunable observability settings.
type Config struct {
	// Trace enables per-statement span recording into DefaultTracer.
	Trace bool
	// SlowQuery is the slow-query log threshold; zero disables the log.
	SlowQuery time.Duration
}

// Apply installs cfg globally.
func Apply(cfg Config) {
	SetTracing(cfg.Trace)
	SetSlowQueryThreshold(cfg.SlowQuery)
}

// Env var names honoured at startup (and re-readable via ApplyEnv):
// PERFDMF_TRACE=1 enables tracing, PERFDMF_SLOW_MS=50 sets the slow-query
// threshold in milliseconds.
const (
	EnvTrace  = "PERFDMF_TRACE"
	EnvSlowMS = "PERFDMF_SLOW_MS"
)

// ApplyEnv reads EnvTrace and EnvSlowMS and applies whatever is set,
// leaving unset knobs untouched. Malformed values are ignored — an
// observability layer must never stop the program it observes.
func ApplyEnv() {
	if v, ok := os.LookupEnv(EnvTrace); ok {
		SetTracing(v == "1" || strings.EqualFold(v, "true") || strings.EqualFold(v, "yes"))
	}
	if v, ok := os.LookupEnv(EnvSlowMS); ok {
		if ms, err := strconv.Atoi(v); err == nil && ms >= 0 {
			SetSlowQueryThreshold(time.Duration(ms) * time.Millisecond)
		}
	}
}

func init() { ApplyEnv() }

// --- tracer ---

// Tracer keeps a bounded ring of the most recent spans.
type Tracer struct {
	mu    sync.Mutex
	buf   []*Span
	next  int
	total int64
}

// NewTracer returns a tracer retaining the last n spans.
func NewTracer(n int) *Tracer {
	if n < 1 {
		n = 1
	}
	return &Tracer{buf: make([]*Span, n)}
}

// DefaultTracer receives every span when tracing is enabled.
var DefaultTracer = NewTracer(256)

// Record stores a completed span.
func (t *Tracer) Record(sp *Span) {
	t.mu.Lock()
	t.buf[t.next] = sp
	t.next = (t.next + 1) % len(t.buf)
	t.total++
	t.mu.Unlock()
}

// Total returns how many spans have been recorded since process start.
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Recent returns the retained spans, oldest first.
func (t *Tracer) Recent() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.buf))
	for i := 0; i < len(t.buf); i++ {
		if sp := t.buf[(t.next+i)%len(t.buf)]; sp != nil {
			out = append(out, sp)
		}
	}
	return out
}

// Reset discards retained spans (for tests).
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.buf {
		t.buf[i] = nil
	}
	t.next = 0
	t.total = 0
}

// --- slow-query log ---

// SlowLog retains statements that exceeded the slow-query threshold and
// optionally streams each entry as a formatted line to an io.Writer.
type SlowLog struct {
	mu   sync.Mutex
	buf  []*Span
	next int
	n    int64
	out  io.Writer
}

// NewSlowLog returns a log retaining the last n slow statements.
func NewSlowLog(n int) *SlowLog {
	if n < 1 {
		n = 1
	}
	return &SlowLog{buf: make([]*Span, n)}
}

// DefaultSlowLog receives every statement that crosses the threshold.
var DefaultSlowLog = NewSlowLog(128)

var slowQueriesTotal = Default.Counter("obs_slow_queries_total")

// SetOutput streams future entries to w as one-line records (nil disables
// streaming; entries are always retained in the ring).
func (l *SlowLog) SetOutput(w io.Writer) {
	l.mu.Lock()
	l.out = w
	l.mu.Unlock()
}

// Record stores one slow statement.
func (l *SlowLog) Record(sp *Span) {
	slowQueriesTotal.Inc()
	l.mu.Lock()
	l.buf[l.next] = sp
	l.next = (l.next + 1) % len(l.buf)
	l.n++
	out := l.out
	l.mu.Unlock()
	if out != nil {
		fmt.Fprintf(out, "slow-query %s\n", sp) //nolint:errcheck // best-effort log stream
	}
}

// Total returns how many slow statements have been recorded.
func (l *SlowLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Recent returns the retained entries, oldest first.
func (l *SlowLog) Recent() []*Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Span, 0, len(l.buf))
	for i := 0; i < len(l.buf); i++ {
		if sp := l.buf[(l.next+i)%len(l.buf)]; sp != nil {
			out = append(out, sp)
		}
	}
	return out
}

// Reset discards retained entries (for tests).
func (l *SlowLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.buf {
		l.buf[i] = nil
	}
	l.next = 0
	l.n = 0
}
