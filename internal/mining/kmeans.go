// Package mining implements the PerfExplorer data-mining engine of paper
// §5.3: feature extraction from stored trials through the PerfDMF API,
// normalization, k-means cluster analysis with k-means++ seeding, principal
// component analysis, and cluster summarization. The paper delegated the
// statistics to R; this package implements them directly, and
// cmd/perfexplorer wraps it in the paper's client/server architecture
// (Figure 3).
package mining

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

// Clustering is the result of KMeans.
type Clustering struct {
	K           int
	Assignments []int       // row -> cluster index
	Centroids   [][]float64 // k × dims
	Sizes       []int
	RSS         float64 // total within-cluster sum of squared distances
	Iterations  int
}

// KMeansConfig tunes the clustering run.
type KMeansConfig struct {
	K        int
	Seed     int64
	MaxIter  int  // default 100
	PlainRNG bool // use uniform random seeding instead of k-means++ (ablation)
	// Restarts runs the whole algorithm this many times with different
	// seeds and keeps the lowest-RSS result (R's kmeans nstart). Default 4.
	Restarts int
}

// KMeans clusters rows (each a point in len(row)-dimensional space) into
// cfg.K clusters using Lloyd's algorithm with k-means++ seeding, keeping
// the best of cfg.Restarts independent runs.
func KMeans(rows [][]float64, cfg KMeansConfig) (best *Clustering, err error) {
	err = miningOp(context.Background(), fmt.Sprintf("mining:kmeans:k%d", cfg.K), mKMeansNS, nil,
		func(context.Context) error {
			restarts := cfg.Restarts
			if restarts <= 0 {
				restarts = 4
			}
			for r := 0; r < restarts; r++ {
				run := cfg
				run.Seed = cfg.Seed + int64(r)*7919
				cl, err := kmeansOnce(rows, run)
				if err != nil {
					return err
				}
				if best == nil || cl.RSS < best.RSS {
					best = cl
				}
			}
			mKMeansRuns.Inc()
			mKMeansRSSMilli.Set(int64(best.RSS * 1000))
			return nil
		})
	if err != nil {
		return nil, err
	}
	return best, nil
}

func kmeansOnce(rows [][]float64, cfg KMeansConfig) (*Clustering, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("mining: no data to cluster")
	}
	dims := len(rows[0])
	for i, r := range rows {
		if len(r) != dims {
			return nil, fmt.Errorf("mining: row %d has %d dims, want %d", i, len(r), dims)
		}
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("mining: k=%d is out of range for %d rows", cfg.K, n)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	centroids := make([][]float64, cfg.K)
	if cfg.PlainRNG {
		perm := rng.Perm(n)
		for i := 0; i < cfg.K; i++ {
			centroids[i] = append([]float64(nil), rows[perm[i]]...)
		}
	} else {
		seedPlusPlus(rows, centroids, rng)
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	cl := &Clustering{K: cfg.K, Assignments: assign, Centroids: centroids}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		cl.Iterations = iter + 1
		changed := false
		moved := 0
		for i, row := range rows {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(row, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
				moved++
			}
		}
		// Convergence gauges: a watcher on /metrics sees the iteration
		// count climb and the moved-point count fall toward zero.
		mKMeansIter.Set(int64(iter + 1))
		mKMeansMoved.Set(int64(moved))
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids; re-seed any empty cluster at the farthest
		// point to keep k clusters alive.
		counts := make([]int, cfg.K)
		next := make([][]float64, cfg.K)
		for c := range next {
			next[c] = make([]float64, dims)
		}
		for i, row := range rows {
			c := assign[i]
			counts[c]++
			for d, v := range row {
				next[c][d] += v
			}
		}
		for c := range next {
			if counts[c] == 0 {
				far := farthestRow(rows, centroids, assign)
				copy(next[c], rows[far])
				counts[c] = 1
				assign[far] = c
				continue
			}
			for d := range next[c] {
				next[c][d] /= float64(counts[c])
			}
		}
		centroids = next
		cl.Centroids = centroids
	}

	cl.Sizes = make([]int, cfg.K)
	cl.RSS = 0
	for i, row := range rows {
		cl.Sizes[assign[i]]++
		cl.RSS += sqDist(row, centroids[assign[i]])
	}
	return cl, nil
}

// seedPlusPlus implements k-means++ initialization: the first centroid is
// uniform, each next is drawn with probability proportional to squared
// distance from the nearest chosen centroid.
func seedPlusPlus(rows [][]float64, centroids [][]float64, rng *rand.Rand) {
	n := len(rows)
	centroids[0] = append([]float64(nil), rows[rng.Intn(n)]...)
	dist := make([]float64, n)
	for i, row := range rows {
		dist[i] = sqDist(row, centroids[0])
	}
	for c := 1; c < len(centroids); c++ {
		total := 0.0
		for _, d := range dist {
			total += d
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range dist {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		centroids[c] = append([]float64(nil), rows[pick]...)
		for i, row := range rows {
			if d := sqDist(row, centroids[c]); d < dist[i] {
				dist[i] = d
			}
		}
	}
}

// farthestRow returns the index of the row farthest from its assigned
// centroid.
func farthestRow(rows, centroids [][]float64, assign []int) int {
	best, bestD := 0, -1.0
	for i, row := range rows {
		if d := sqDist(row, centroids[assign[i]]); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ChooseK runs KMeans for k = 1..maxK and picks the k at the "elbow": the
// largest k whose RSS improvement over k-1 still exceeds threshold (a
// fraction of the k=1 RSS, default 0.15). PerfExplorer's analyst chooses k
// interactively; this is the automated stand-in used by the benchmarks.
func ChooseK(rows [][]float64, maxK int, seed int64, threshold float64) (int, []*Clustering, error) {
	if threshold <= 0 {
		threshold = 0.15
	}
	var all []*Clustering
	prevRSS := 0.0
	baseRSS := 0.0
	bestK := 1
	for k := 1; k <= maxK && k <= len(rows); k++ {
		cl, err := KMeans(rows, KMeansConfig{K: k, Seed: seed})
		if err != nil {
			return 0, nil, err
		}
		all = append(all, cl)
		if k == 1 {
			baseRSS = cl.RSS
			prevRSS = cl.RSS
			continue
		}
		if baseRSS == 0 {
			break // degenerate: all points identical
		}
		if (prevRSS-cl.RSS)/baseRSS > threshold {
			bestK = k
		}
		prevRSS = cl.RSS
	}
	return bestK, all, nil
}
