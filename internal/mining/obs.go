// Mining-layer observability. The clustering and PCA loops publish
// per-iteration convergence gauges — current iteration, points that
// switched cluster, last RSS, Jacobi sweeps and off-diagonal mass — so a
// long PerfExplorer run can be watched converging from /metrics while it
// runs. Whole runs are also timed and, under tracing, recorded as
// "mining" spans.
package mining

import (
	"context"
	"time"

	"perfdmf/internal/obs"
)

var (
	mKMeansRuns = obs.Default.Counter("mining_kmeans_runs_total")
	mKMeansNS   = obs.Default.Histogram("mining_kmeans_ns")
	// Convergence gauges, updated every Lloyd iteration. RSS is scaled by
	// 1000 (gauges are integers) — the trend, not the magnitude, is the
	// signal being watched.
	mKMeansIter     = obs.Default.Gauge("mining_kmeans_iterations")
	mKMeansMoved    = obs.Default.Gauge("mining_kmeans_moved_points")
	mKMeansRSSMilli = obs.Default.Gauge("mining_kmeans_rss_milli")

	mPCARuns = obs.Default.Counter("mining_pca_runs_total")
	mPCANS   = obs.Default.Histogram("mining_pca_ns")
	// Jacobi convergence gauges: sweep count and remaining off-diagonal
	// mass (scaled by 1e6; it decays toward zero as rotation converges).
	mPCASweeps   = obs.Default.Gauge("mining_pca_sweeps")
	mPCAOffMicro = obs.Default.Gauge("mining_pca_offdiag_micro")

	mExtractNS = obs.Default.Histogram("mining_extract_ns")
)

// miningOp times one mining operation and routes its span, mirroring the
// analysis layer's helper.
func miningOp(ctx context.Context, name string, h *obs.Histogram, bind func(context.Context), fn func(context.Context) error) error {
	octx, sp := obs.StartSpan(ctx, "mining", name)
	if sp == nil {
		return fn(ctx)
	}
	if bind != nil {
		bind(octx)
		defer bind(ctx)
	}
	start := time.Now()
	err := fn(octx)
	h.Observe(int64(time.Since(start)))
	sp.Finish(err)
	return err
}
