package mining

import (
	"net"
	"runtime"
	"testing"
	"time"
)

// Regression test for the server shutdown race: Close used to return while
// the accept loop and connection handlers were still running, so the caller
// could tear down the shared DataSession under a live handler. Close now
// joins the accept loop, closes every live connection, and waits for the
// handlers to drain.
func TestServerCloseJoins(t *testing.T) {
	s, trialID, _ := miningArchive(t, 8)
	baseline := runtime.NumGoroutine()

	srv := NewServer(s)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Keep a handler genuinely busy against the session while Close runs.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do(Request{Op: "list"}); err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		for {
			if _, err := c.Do(Request{Op: "results", TrialID: trialID}); err != nil {
				return
			}
		}
	}()

	// A second connection sits idle in the handler's read loop; only the
	// conn-close in Close can unblock it.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return within 5s (handlers not joined)")
	}

	// After Close the session is exclusively ours again; the busy client's
	// loop must already have ended. Any handler still running here would
	// race this AnalysisResults call and trip -race.
	select {
	case <-clientDone:
	case <-time.After(5 * time.Second):
		t.Fatal("client loop still running after Close returned")
	}
	if _, err := s.AnalysisResults(trialID); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr); err == nil {
		t.Fatal("listener still accepting after Close")
	}

	// Everything the server spawned must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("server goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
