package mining_test

import (
	"fmt"
	"log"

	"perfdmf/internal/mining"
)

// ExampleKMeans clusters three obvious groups of points, the operation
// PerfExplorer applies to per-thread performance vectors.
func ExampleKMeans() {
	rows := [][]float64{
		{0, 0}, {0.1, 0.2}, {0.2, 0.1}, // near the origin
		{10, 10}, {10.1, 9.9}, // near (10,10)
		{-10, 10}, {-9.9, 10.2}, // near (-10,10)
	}
	cl, err := mining.KMeans(rows, mining.KMeansConfig{K: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sizes := append([]int(nil), cl.Sizes...)
	// Sort for stable output (cluster numbering is arbitrary).
	for i := 0; i < len(sizes); i++ {
		for j := i + 1; j < len(sizes); j++ {
			if sizes[j] < sizes[i] {
				sizes[i], sizes[j] = sizes[j], sizes[i]
			}
		}
	}
	fmt.Printf("k=%d sizes=%v\n", cl.K, sizes)
	// Output:
	// k=3 sizes=[2 2 3]
}
