package mining

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"perfdmf/internal/core"
)

// The PerfExplorer client/server protocol (paper Figure 3): the client
// sends one JSON request per line over TCP; the server answers with one
// JSON response per line. The analysis server owns the PerfDMF session,
// runs the mining operation, stores the result back through the PerfDMF
// API, and returns it.

// Request is one client request.
type Request struct {
	// Op is "list" (applications/experiments/trials), "cluster" (run
	// k-means on a trial), "correlate" (metric correlation matrix) or
	// "results" (fetch stored analysis results).
	Op      string   `json:"op"`
	TrialID int64    `json:"trial_id,omitempty"`
	Metrics []string `json:"metrics,omitempty"`
	// K forces the cluster count; 0 means choose automatically up to MaxK.
	K         int    `json:"k,omitempty"`
	MaxK      int    `json:"max_k,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Normalize string `json:"normalize,omitempty"` // "", "zscore", "minmax"
}

// TrialInfo is one row of the "list" response.
type TrialInfo struct {
	TrialID     int64  `json:"trial_id"`
	Trial       string `json:"trial"`
	Experiment  string `json:"experiment"`
	Application string `json:"application"`
	NodeCount   int64  `json:"node_count"`
}

// ClusterResult is the payload of a "cluster" response.
type ClusterResult struct {
	TrialID    int64            `json:"trial_id"`
	K          int              `json:"k"`
	Sizes      []int            `json:"sizes"`
	RSS        float64          `json:"rss"`
	Iterations int              `json:"iterations"`
	Threads    int              `json:"threads"`
	Dimensions int              `json:"dimensions"`
	Summaries  []ClusterSummary `json:"summaries"`
	// Assignments maps row order (node-sorted threads) to cluster index.
	Assignments []int `json:"assignments"`
	// PCAExplained is the variance explained by the top components.
	PCAExplained []float64 `json:"pca_explained,omitempty"`
	ResultID     int64     `json:"result_id"` // analysis_result row
}

// Response is one server reply.
type Response struct {
	OK          bool                  `json:"ok"`
	Error       string                `json:"error,omitempty"`
	Trials      []TrialInfo           `json:"trials,omitempty"`
	Cluster     *ClusterResult        `json:"cluster,omitempty"`
	Correlation *Correlation          `json:"correlation,omitempty"`
	Results     []core.AnalysisResult `json:"results,omitempty"`
}

// Server is the PerfExplorer analysis server.
type Server struct {
	mu   sync.Mutex // serializes access to the session
	sess *core.DataSession
	ln   net.Listener
	done chan struct{}

	loopDone chan struct{}  // closed when acceptLoop exits
	conns    sync.WaitGroup // live serveConn handlers
	connMu   sync.Mutex     // guards live
	live     map[net.Conn]struct{}
}

// NewServer wraps an open PerfDMF session. The caller keeps ownership of
// the session and must not use it concurrently with the server.
func NewServer(sess *core.DataSession) *Server {
	return &Server{sess: sess, done: make(chan struct{}), live: make(map[net.Conn]struct{})}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (srv *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv.ln = ln
	srv.loopDone = make(chan struct{})
	go srv.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener and joins every goroutine the server spawned:
// it waits for the accept loop to exit, closes the live connections to
// unblock their handlers, and waits for those handlers to finish. After
// Close returns, nothing touches the session anymore — the caller can
// safely tear it down.
func (srv *Server) Close() error {
	close(srv.done)
	var err error
	if srv.ln != nil {
		err = srv.ln.Close()
		<-srv.loopDone
	}
	srv.connMu.Lock()
	for c := range srv.live {
		c.Close()
	}
	srv.connMu.Unlock()
	srv.conns.Wait()
	return err
}

func (srv *Server) acceptLoop() {
	defer close(srv.loopDone)
	for {
		conn, err := srv.ln.Accept()
		if err != nil {
			return
		}
		// Register before spawning so a concurrent Close — which runs
		// after this loop exits — always sees the connection.
		srv.connMu.Lock()
		srv.live[conn] = struct{}{}
		srv.connMu.Unlock()
		srv.conns.Add(1)
		go srv.serveConn(conn)
	}
}

func (srv *Server) serveConn(conn net.Conn) {
	defer srv.conns.Done()
	defer func() {
		conn.Close()
		srv.connMu.Lock()
		delete(srv.live, conn)
		srv.connMu.Unlock()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req Request
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			resp = Response{Error: "bad request: " + err.Error()}
		} else {
			resp = srv.handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (srv *Server) handle(req Request) Response {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	switch req.Op {
	case "list":
		trials, err := srv.listTrials()
		if err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, Trials: trials}
	case "cluster":
		result, err := srv.cluster(req)
		if err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, Cluster: result}
	case "correlate":
		corr, err := Correlate(srv.sess, req.TrialID, req.Metrics)
		if err != nil {
			return Response{Error: err.Error()}
		}
		payload, err := json.Marshal(corr)
		if err != nil {
			return Response{Error: err.Error()}
		}
		if _, err := srv.sess.SaveAnalysisResult(req.TrialID,
			"correlation", "pearson", string(payload)); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, Correlation: corr}
	case "results":
		results, err := srv.sess.AnalysisResults(req.TrialID)
		if err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, Results: results}
	}
	return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
}

func (srv *Server) listTrials() ([]TrialInfo, error) {
	rows, err := srv.sess.Conn().Query(`
		SELECT t.id, t.name, e.name, a.name, t.node_count
		FROM trial t
		JOIN experiment e ON t.experiment = e.id
		JOIN application a ON e.application = a.id
		ORDER BY t.id`)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []TrialInfo
	for rows.Next() {
		var ti TrialInfo
		var nodes any
		if err := rows.Scan(&ti.TrialID, &ti.Trial, &ti.Experiment, &ti.Application, &nodes); err != nil {
			return nil, err
		}
		if n, ok := nodes.(int64); ok {
			ti.NodeCount = n
		}
		out = append(out, ti)
	}
	return out, rows.Err()
}

// cluster runs the full PerfExplorer pipeline: extract → normalize →
// k-means (fixed k or automatic) → summarize → PCA → persist.
func (srv *Server) cluster(req Request) (*ClusterResult, error) {
	fm, err := ExtractFeatures(srv.sess, req.TrialID, req.Metrics)
	if err != nil {
		return nil, err
	}
	// Keep the raw matrix for summaries before normalizing a copy.
	raw := &FeatureMatrix{TrialID: fm.TrialID, Threads: fm.Threads, Columns: fm.Columns}
	raw.Rows = make([][]float64, len(fm.Rows))
	for i, r := range fm.Rows {
		raw.Rows[i] = append([]float64(nil), r...)
	}
	switch req.Normalize {
	case "", "zscore":
		fm.Normalize(NormZScore)
	case "minmax":
		fm.Normalize(NormMinMax)
	case "none":
	default:
		return nil, fmt.Errorf("mining: unknown normalization %q", req.Normalize)
	}

	var cl *Clustering
	if req.K > 0 {
		cl, err = KMeans(fm.Rows, KMeansConfig{K: req.K, Seed: req.Seed})
	} else {
		maxK := req.MaxK
		if maxK <= 0 {
			maxK = 8
		}
		var k int
		var all []*Clustering
		k, all, err = ChooseK(fm.Rows, maxK, req.Seed, 0)
		if err == nil {
			cl = all[k-1]
		}
	}
	if err != nil {
		return nil, err
	}

	result := &ClusterResult{
		TrialID:     req.TrialID,
		K:           cl.K,
		Sizes:       cl.Sizes,
		RSS:         cl.RSS,
		Iterations:  cl.Iterations,
		Threads:     len(fm.Rows),
		Dimensions:  len(fm.Columns),
		Summaries:   Summarize(raw, cl, 5),
		Assignments: cl.Assignments,
	}
	if pca, err := PrincipalComponents(fm.Rows); err == nil {
		n := 3
		if n > len(pca.Explained) {
			n = len(pca.Explained)
		}
		result.PCAExplained = pca.Explained[:n]
	}

	// Persist through the PerfDMF API, as PerfExplorer does.
	payload, err := json.Marshal(result)
	if err != nil {
		return nil, err
	}
	id, err := srv.sess.SaveAnalysisResult(req.TrialID,
		fmt.Sprintf("kmeans-k%d", cl.K), "kmeans", string(payload))
	if err != nil {
		return nil, err
	}
	result.ResultID = id
	return result, nil
}

// Client is a PerfExplorer protocol client.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
}

// Dial connects to a PerfExplorer server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	return &Client{conn: conn, sc: sc, enc: json.NewEncoder(conn)}, nil
}

// Do sends one request and reads the response.
func (c *Client) Do(req Request) (*Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("mining: server closed the connection")
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return &resp, fmt.Errorf("mining: server error: %s", resp.Error)
	}
	return &resp, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
