package mining

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"perfdmf/internal/core"
	"perfdmf/internal/synth"
)

// blobs builds n points around k well-separated centers.
func blobs(n, k, dims int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	truth := make([]int, n)
	for i := range rows {
		c := i % k
		truth[i] = c
		row := make([]float64, dims)
		for d := range row {
			center := 0.0
			if d%k == c {
				center = 10
			}
			row[d] = center + rng.NormFloat64()*0.3
		}
		rows[i] = row
	}
	return rows, truth
}

// agreement measures how well assignments match truth up to relabeling,
// via best-match per cluster.
func agreement(assign, truth []int, k int) float64 {
	match := 0
	for c := 0; c < k; c++ {
		counts := map[int]int{}
		for i, a := range assign {
			if a == c {
				counts[truth[i]]++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		match += best
	}
	return float64(match) / float64(len(assign))
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rows, truth := blobs(300, 3, 6, 1)
	cl, err := KMeans(rows, KMeansConfig{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if got := agreement(cl.Assignments, truth, 3); got < 0.98 {
		t.Fatalf("agreement = %g", got)
	}
	if cl.Sizes[0]+cl.Sizes[1]+cl.Sizes[2] != 300 {
		t.Fatalf("sizes: %v", cl.Sizes)
	}
	if cl.RSS <= 0 {
		t.Fatalf("rss: %g", cl.RSS)
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if _, err := KMeans(nil, KMeansConfig{K: 1}); err == nil {
		t.Error("empty data accepted")
	}
	rows := [][]float64{{1, 2}, {3, 4}}
	if _, err := KMeans(rows, KMeansConfig{K: 3}); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := KMeans(rows, KMeansConfig{K: 0}); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2, 3}}, KMeansConfig{K: 1}); err == nil {
		t.Error("ragged matrix accepted")
	}
	// k = n: every point its own cluster, RSS = 0.
	cl, err := KMeans(rows, KMeansConfig{K: 2, Seed: 1})
	if err != nil || cl.RSS != 0 {
		t.Fatalf("k=n: %+v %v", cl, err)
	}
	// Identical points.
	same := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	cl, err = KMeans(same, KMeansConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.RSS != 0 {
		t.Fatalf("identical points rss: %g", cl.RSS)
	}
}

// Property: RSS never increases when k grows (with shared seeding the
// optimum can only improve or stay equal within tolerance).
func TestRSSMonotoneInK(t *testing.T) {
	rows, _ := blobs(120, 4, 5, 7)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		cl, err := KMeans(rows, KMeansConfig{K: k, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if cl.RSS > prev*1.05 {
			t.Fatalf("k=%d rss %g > k-1 rss %g", k, cl.RSS, prev)
		}
		if cl.RSS < prev {
			prev = cl.RSS
		}
	}
}

func TestChooseK(t *testing.T) {
	rows, _ := blobs(200, 3, 6, 5)
	k, all, err := ChooseK(rows, 6, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Fatalf("chose k=%d, want 3 (rss: %v)", k, rssOf(all))
	}
}

func rssOf(all []*Clustering) []float64 {
	out := make([]float64, len(all))
	for i, c := range all {
		out[i] = c.RSS
	}
	return out
}

func TestPCA(t *testing.T) {
	// Points on a noisy line y = 2x: first component must dominate and
	// align with (1,2)/√5.
	rng := rand.New(rand.NewSource(2))
	rows := make([][]float64, 200)
	for i := range rows {
		x := rng.NormFloat64()
		rows[i] = []float64{x, 2*x + 0.01*rng.NormFloat64()}
	}
	pca, err := PrincipalComponents(rows)
	if err != nil {
		t.Fatal(err)
	}
	if pca.Explained[0] < 0.99 {
		t.Fatalf("explained: %v", pca.Explained)
	}
	c := pca.Components[0]
	ratio := c[1] / c[0]
	if math.Abs(math.Abs(ratio)-2) > 0.05 {
		t.Fatalf("component direction: %v", c)
	}
	// Projection has the right shape and centers the data.
	proj := pca.Project(rows, 1)
	if len(proj) != 200 || len(proj[0]) != 1 {
		t.Fatalf("projection shape")
	}
	mean := 0.0
	for _, p := range proj {
		mean += p[0]
	}
	if math.Abs(mean/200) > 1e-6 {
		t.Fatalf("projection not centered: %g", mean/200)
	}
	if _, err := PrincipalComponents(rows[:1]); err == nil {
		t.Error("single row accepted")
	}
}

// Property: eigen-decomposition reconstructs the covariance action:
// total variance equals the trace within tolerance.
func TestPCAVarianceConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]float64, 30)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64() * 3, rng.NormFloat64() * 0.5}
		}
		pca, err := PrincipalComponents(rows)
		if err != nil {
			return false
		}
		// Trace of covariance = sum of per-dimension variances.
		trace := 0.0
		for d := 0; d < 3; d++ {
			mean, sq := 0.0, 0.0
			for _, r := range rows {
				mean += r[d]
				sq += r[d] * r[d]
			}
			mean /= 30
			trace += (sq - 30*mean*mean) / 29
		}
		sum := 0.0
		for _, v := range pca.Variance {
			sum += v
		}
		return math.Abs(sum-trace) < 1e-9*math.Max(1, trace)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	fm := &FeatureMatrix{
		Columns: []string{"a", "b", "c"},
		Rows:    [][]float64{{1, 10, 5}, {2, 20, 5}, {3, 30, 5}},
	}
	fm.Normalize(NormZScore)
	for d := 0; d < 2; d++ {
		mean := (fm.Rows[0][d] + fm.Rows[1][d] + fm.Rows[2][d]) / 3
		if math.Abs(mean) > 1e-12 {
			t.Fatalf("zscore col %d mean %g", d, mean)
		}
	}
	if fm.Rows[0][2] != 0 {
		t.Fatal("constant column should become 0")
	}
	fm2 := &FeatureMatrix{
		Columns: []string{"a"},
		Rows:    [][]float64{{5}, {15}, {10}},
	}
	fm2.Normalize(NormMinMax)
	if fm2.Rows[0][0] != 0 || fm2.Rows[1][0] != 1 || fm2.Rows[2][0] != 0.5 {
		t.Fatalf("minmax: %v", fm2.Rows)
	}
}

func TestRangeString(t *testing.T) {
	cases := []struct {
		in   []int64
		want string
	}{
		{nil, ""},
		{[]int64{3}, "3"},
		{[]int64{0, 1, 2, 3}, "0-3"},
		{[]int64{0, 2, 3, 7}, "0,2-3,7"},
		{[]int64{5, 5, 6}, "5-6"},
	}
	for _, c := range cases {
		if got := rangeString(c.in); got != c.want {
			t.Errorf("rangeString(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// miningArchive uploads an sPPM-like trial and returns session, trial id
// and the planted class assignment.
func miningArchive(t *testing.T, threads int) (*core.DataSession, int64, []int) {
	t.Helper()
	s, err := core.Open(fmt.Sprintf("mem:mining_%s_%d", t.Name(), threads))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	app := &core.Application{Name: "sPPM"}
	s.SaveApplication(app)
	s.SetApplication(app)
	exp := &core.Experiment{Name: "counters"}
	s.SaveExperiment(exp)
	s.SetExperiment(exp)
	p, truth := synth.CounterTrial(synth.CounterConfig{Threads: threads, Seed: 99})
	trial, err := s.UploadTrial(p, core.UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return s, trial.ID, truth
}

func TestExtractFeatures(t *testing.T) {
	s, trialID, _ := miningArchive(t, 16)
	fm, err := ExtractFeatures(s, trialID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fm.Rows) != 16 {
		t.Fatalf("rows: %d", len(fm.Rows))
	}
	// 5 routines × 8 metrics.
	if len(fm.Columns) != 40 {
		t.Fatalf("columns: %d", len(fm.Columns))
	}
	// Rows sorted by node.
	for i := 1; i < len(fm.Threads); i++ {
		if fm.Threads[i].Node < fm.Threads[i-1].Node {
			t.Fatal("rows not sorted")
		}
	}
	// Metric subset restricts columns.
	fm2, err := ExtractFeatures(s, trialID, []string{"PAPI_FP_OPS"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fm2.Columns) != 5 {
		t.Fatalf("subset columns: %d", len(fm2.Columns))
	}
	if _, err := ExtractFeatures(s, trialID, []string{"NOPE"}); err == nil {
		t.Error("unknown metric accepted")
	}
	if _, err := ExtractFeatures(s, 9999, nil); err == nil {
		t.Error("missing trial accepted")
	}
}

func TestClusteringRecoversPlantedClasses(t *testing.T) {
	s, trialID, truth := miningArchive(t, 64)
	fm, err := ExtractFeatures(s, trialID, nil)
	if err != nil {
		t.Fatal(err)
	}
	fm.Normalize(NormZScore)
	cl, err := KMeans(fm.Rows, KMeansConfig{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Feature rows are node-ordered; truth is rank-indexed — align them.
	aligned := make([]int, len(fm.Threads))
	for i, th := range fm.Threads {
		aligned[i] = truth[th.Node]
	}
	if got := agreement(cl.Assignments, aligned, 3); got < 0.95 {
		t.Fatalf("cluster agreement with planted classes = %g", got)
	}
}

func TestSummarize(t *testing.T) {
	s, trialID, _ := miningArchive(t, 16)
	fm, _ := ExtractFeatures(s, trialID, nil)
	cl, err := KMeans(fm.Rows, KMeansConfig{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(fm, cl, 3)
	if len(sums) != 3 {
		t.Fatalf("summaries: %d", len(sums))
	}
	total := 0
	for _, s := range sums {
		total += s.Size
		if s.Size > 0 {
			if len(s.TopDimensions) != 3 {
				t.Fatalf("top dims: %d", len(s.TopDimensions))
			}
			if s.ThreadRange == "" {
				t.Fatal("empty thread range")
			}
		}
	}
	if total != 16 {
		t.Fatalf("sizes sum to %d", total)
	}
}

func TestServerClient(t *testing.T) {
	s, trialID, truth := miningArchive(t, 32)
	srv := NewServer(s)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// List.
	resp, err := c.Do(Request{Op: "list"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Trials) != 1 || resp.Trials[0].Application != "sPPM" {
		t.Fatalf("list: %+v", resp.Trials)
	}

	// Cluster with fixed k.
	resp, err = c.Do(Request{Op: "cluster", TrialID: trialID, K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cr := resp.Cluster
	if cr == nil || cr.K != 3 || cr.Threads != 32 {
		t.Fatalf("cluster: %+v", cr)
	}
	aligned := make([]int, cr.Threads)
	for i := 0; i < cr.Threads; i++ {
		aligned[i] = truth[i] // node-ordered rows == rank order here
	}
	if got := agreement(cr.Assignments, aligned, 3); got < 0.9 {
		t.Fatalf("served clustering agreement = %g", got)
	}
	if cr.ResultID == 0 {
		t.Fatal("result not persisted")
	}

	// Results are retrievable.
	resp, err = c.Do(Request{Op: "results", TrialID: trialID})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Method != "kmeans" {
		t.Fatalf("results: %+v", resp.Results)
	}

	// Automatic k selection.
	resp, err = c.Do(Request{Op: "cluster", TrialID: trialID, Seed: 7, MaxK: 6})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cluster.K < 2 || resp.Cluster.K > 6 {
		t.Fatalf("auto k: %d", resp.Cluster.K)
	}

	// Errors propagate.
	if _, err := c.Do(Request{Op: "cluster", TrialID: 424242}); err == nil {
		t.Error("missing trial accepted")
	}
	if _, err := c.Do(Request{Op: "frobnicate"}); err == nil {
		t.Error("unknown op accepted")
	}

	// A second concurrent client works.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Do(Request{Op: "list"}); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation: %g", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation: %g", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if r := Pearson(x, flat); r != 0 {
		t.Fatalf("constant vector: %g", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Fatalf("empty: %g", r)
	}
	if r := Pearson(x, []float64{1}); r != 0 {
		t.Fatalf("length mismatch: %g", r)
	}
}

func TestCorrelate(t *testing.T) {
	s, trialID, _ := miningArchive(t, 64)
	corr, err := Correlate(s, trialID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(corr.Metrics) != 8 || len(corr.Matrix) != 8 {
		t.Fatalf("shape: %v", corr.Metrics)
	}
	for i := range corr.Matrix {
		if corr.Matrix[i][i] != 1 {
			t.Fatalf("diagonal: %v", corr.Matrix[i][i])
		}
		for j := range corr.Matrix {
			if math.Abs(corr.Matrix[i][j]-corr.Matrix[j][i]) > 1e-12 {
				t.Fatal("asymmetric matrix")
			}
			if math.IsNaN(corr.Matrix[i][j]) {
				t.Fatal("NaN in matrix")
			}
		}
	}
	// The synthetic classes vary counters per second together within a
	// class: PAPI counters that share the signature structure correlate
	// strongly. At minimum, strong pairs exist at |r| >= 0.8.
	pairs := corr.StrongPairs(0.8)
	if len(pairs) == 0 {
		t.Fatal("no strongly correlated metric pairs found")
	}
	for i := 1; i < len(pairs); i++ {
		if math.Abs(pairs[i].R) > math.Abs(pairs[i-1].R)+1e-12 {
			t.Fatal("pairs not sorted by |r|")
		}
	}
	// Metric subset restricts the matrix.
	sub, err := Correlate(s, trialID, []string{"TIME", "PAPI_FP_OPS"})
	if err != nil || len(sub.Metrics) != 2 {
		t.Fatalf("subset: %v %v", sub, err)
	}
}
