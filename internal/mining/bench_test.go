package mining

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchRows(n, dims int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, dims)
		c := i % 3
		for d := range row {
			center := 0.0
			if d%3 == c {
				center = 10
			}
			row[d] = center + rng.NormFloat64()
		}
		rows[i] = row
	}
	return rows
}

func BenchmarkKMeans(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("rows-%d", n), func(b *testing.B) {
			rows := benchRows(n, 40)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := KMeans(rows, KMeansConfig{K: 3, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPCA(b *testing.B) {
	rows := benchRows(512, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PrincipalComponents(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalizeZScore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fm := &FeatureMatrix{Columns: make([]string, 40), Rows: benchRows(1024, 40)}
		b.StartTimer()
		fm.Normalize(NormZScore)
	}
}
