package mining

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"perfdmf/internal/core"
)

// FeatureMatrix is the per-thread feature representation PerfExplorer
// clusters: one row per thread of execution, one column per
// (event, metric) pair, holding the exclusive value.
type FeatureMatrix struct {
	TrialID int64
	Threads []ThreadKey
	Columns []string // "event|metric" labels
	Rows    [][]float64
}

// ThreadKey locates a row's thread.
type ThreadKey struct {
	Node, Context, Thread int64
}

// ExtractFeatures builds the feature matrix for a trial from the database,
// restricted to the named metrics (nil means all of the trial's metrics).
// Rows are ordered by (node, context, thread); columns by event name then
// metric name, so the matrix is deterministic.
func ExtractFeatures(s *core.DataSession, trialID int64, metrics []string) (fm *FeatureMatrix, err error) {
	err = miningOp(context.Background(), fmt.Sprintf("mining:extract:trial%d", trialID),
		mExtractNS, s.BindSpanContext, func(context.Context) error {
			fm, err = extractFeatures(s, trialID, metrics)
			return err
		})
	return fm, err
}

func extractFeatures(s *core.DataSession, trialID int64, metrics []string) (*FeatureMatrix, error) {
	prev := s.Trial()
	defer s.SetTrial(prev)
	s.SetTrial(&core.Trial{ID: trialID})

	allMetrics, err := s.MetricList()
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool)
	if metrics == nil {
		for _, m := range allMetrics {
			want[m.Name] = true
		}
	} else {
		for _, m := range metrics {
			want[m] = true
		}
	}
	var selected []*core.Metric
	metricCol := make(map[int64]int) // metric db id -> metric order
	for _, m := range allMetrics {
		if want[m.Name] {
			metricCol[m.ID] = len(selected)
			selected = append(selected, m)
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("mining: trial %d has none of the requested metrics", trialID)
	}

	events, err := s.IntervalEventList()
	if err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("mining: trial %d has no events", trialID)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Name < events[j].Name })
	eventCol := make(map[int64]int)
	for i, e := range events {
		eventCol[e.ID] = i
	}

	fm := &FeatureMatrix{TrialID: trialID}
	for _, e := range events {
		for _, m := range selected {
			fm.Columns = append(fm.Columns, e.Name+"|"+m.Name)
		}
	}
	nmSel := len(selected)
	rowOf := make(map[ThreadKey]int)

	stmt, err := s.Conn().Prepare(`SELECT node, context, thread, metric, exclusive
		FROM interval_location_profile WHERE interval_event = ?`)
	if err != nil {
		return nil, err
	}
	defer stmt.Close()
	for _, e := range events {
		rows, err := stmt.Query(e.ID)
		if err != nil {
			return nil, err
		}
		ec := eventCol[e.ID]
		for rows.Next() {
			var node, context, thread, metric int64
			var excl float64
			if err := rows.Scan(&node, &context, &thread, &metric, &excl); err != nil {
				rows.Close()
				return nil, err
			}
			mc, ok := metricCol[metric]
			if !ok {
				continue
			}
			key := ThreadKey{node, context, thread}
			ri, ok := rowOf[key]
			if !ok {
				ri = len(fm.Rows)
				rowOf[key] = ri
				fm.Threads = append(fm.Threads, key)
				fm.Rows = append(fm.Rows, make([]float64, len(fm.Columns)))
			}
			fm.Rows[ri][ec*nmSel+mc] = excl
		}
		if err := rows.Err(); err != nil {
			rows.Close()
			return nil, err
		}
		rows.Close()
	}
	if len(fm.Rows) == 0 {
		return nil, fmt.Errorf("mining: trial %d has no location profiles", trialID)
	}
	// Deterministic row order.
	order := make([]int, len(fm.Rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := fm.Threads[order[a]], fm.Threads[order[b]]
		if ta.Node != tb.Node {
			return ta.Node < tb.Node
		}
		if ta.Context != tb.Context {
			return ta.Context < tb.Context
		}
		return ta.Thread < tb.Thread
	})
	threads := make([]ThreadKey, len(order))
	rows := make([][]float64, len(order))
	for i, j := range order {
		threads[i] = fm.Threads[j]
		rows[i] = fm.Rows[j]
	}
	fm.Threads = threads
	fm.Rows = rows
	return fm, nil
}

// Normalization selects how features are scaled before clustering.
type Normalization int

const (
	// NormNone leaves raw values.
	NormNone Normalization = iota
	// NormZScore centers each column and divides by its standard
	// deviation (columns with zero variance become zero).
	NormZScore
	// NormMinMax rescales each column to [0, 1].
	NormMinMax
)

// Normalize rescales the matrix columns in place according to the mode and
// returns the matrix for chaining.
func (fm *FeatureMatrix) Normalize(mode Normalization) *FeatureMatrix {
	if mode == NormNone || len(fm.Rows) == 0 {
		return fm
	}
	dims := len(fm.Columns)
	n := float64(len(fm.Rows))
	switch mode {
	case NormZScore:
		for d := 0; d < dims; d++ {
			mean, sq := 0.0, 0.0
			for _, r := range fm.Rows {
				mean += r[d]
				sq += r[d] * r[d]
			}
			mean /= n
			variance := sq/n - mean*mean
			if variance <= 0 {
				for _, r := range fm.Rows {
					r[d] = 0
				}
				continue
			}
			sd := math.Sqrt(variance)
			for _, r := range fm.Rows {
				r[d] = (r[d] - mean) / sd
			}
		}
	case NormMinMax:
		for d := 0; d < dims; d++ {
			lo, hi := fm.Rows[0][d], fm.Rows[0][d]
			for _, r := range fm.Rows {
				if r[d] < lo {
					lo = r[d]
				}
				if r[d] > hi {
					hi = r[d]
				}
			}
			span := hi - lo
			for _, r := range fm.Rows {
				if span == 0 {
					r[d] = 0
				} else {
					r[d] = (r[d] - lo) / span
				}
			}
		}
	}
	return fm
}

// ClusterSummary describes one cluster in event/metric terms — the
// "summarization of the clusters" the paper describes.
type ClusterSummary struct {
	Cluster int
	Size    int
	// TopDimensions lists the dimensions with the largest centroid values,
	// as "event|metric" labels with their centroid value.
	TopDimensions []DimValue
	ThreadRange   string // compact description of member threads
}

// DimValue pairs a dimension label with a value.
type DimValue struct {
	Label string
	Value float64
}

// Summarize produces per-cluster summaries over the original (pre-
// normalization) matrix values.
func Summarize(fm *FeatureMatrix, cl *Clustering, topN int) []ClusterSummary {
	if topN <= 0 {
		topN = 5
	}
	out := make([]ClusterSummary, cl.K)
	for c := 0; c < cl.K; c++ {
		out[c].Cluster = c
		out[c].Size = cl.Sizes[c]
	}
	// Mean per dimension per cluster from the matrix itself.
	dims := len(fm.Columns)
	sums := make([][]float64, cl.K)
	for c := range sums {
		sums[c] = make([]float64, dims)
	}
	members := make([][]int64, cl.K)
	for i, r := range fm.Rows {
		c := cl.Assignments[i]
		for d, v := range r {
			sums[c][d] += v
		}
		members[c] = append(members[c], fm.Threads[i].Node)
	}
	for c := 0; c < cl.K; c++ {
		if cl.Sizes[c] == 0 {
			continue
		}
		vals := make([]DimValue, dims)
		for d := 0; d < dims; d++ {
			vals[d] = DimValue{Label: fm.Columns[d], Value: sums[c][d] / float64(cl.Sizes[c])}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].Value > vals[b].Value })
		if topN < len(vals) {
			vals = vals[:topN]
		}
		out[c].TopDimensions = vals
		out[c].ThreadRange = rangeString(members[c])
	}
	return out
}

// rangeString compresses a sorted list of node ids to "0-3,7,9-12" form.
func rangeString(nodes []int64) string {
	if len(nodes) == 0 {
		return ""
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var b strings.Builder
	start, prev := nodes[0], nodes[0]
	flush := func() {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if start == prev {
			fmt.Fprintf(&b, "%d", start)
		} else {
			fmt.Fprintf(&b, "%d-%d", start, prev)
		}
	}
	for _, n := range nodes[1:] {
		if n == prev || n == prev+1 {
			prev = n
			continue
		}
		flush()
		start, prev = n, n
	}
	flush()
	return b.String()
}
