package mining

import (
	"fmt"
	"math"

	"perfdmf/internal/core"
)

// Metric correlation is the other analysis PerfExplorer runs besides
// clustering: which hardware counters move together across threads (e.g.
// FLOP counts tracking cycle counts identifies compute-bound regions; L2
// misses tracking wall time identifies memory-bound ones).

// Correlation holds a symmetric Pearson correlation matrix over metrics.
type Correlation struct {
	TrialID int64
	Metrics []string
	// Matrix[i][j] is the correlation of Metrics[i] with Metrics[j] over
	// per-thread totals; NaN-free (constant metrics correlate as 0).
	Matrix [][]float64
}

// Pearson computes the correlation coefficient of two equal-length
// vectors; vectors with zero variance yield 0.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Correlate computes the metric-by-metric Pearson correlation over a
// trial's per-thread totals (exclusive values summed across events). nil
// metrics means all of the trial's metrics.
func Correlate(s *core.DataSession, trialID int64, metrics []string) (*Correlation, error) {
	fm, err := ExtractFeatures(s, trialID, metrics)
	if err != nil {
		return nil, err
	}
	// Column labels are "event|metric"; aggregate per metric across events.
	metricNames := []string{}
	colMetric := make([]int, len(fm.Columns))
	indexOf := map[string]int{}
	for c, label := range fm.Columns {
		_, metric, ok := cutLast(label, '|')
		if !ok {
			return nil, fmt.Errorf("mining: malformed feature label %q", label)
		}
		mi, seen := indexOf[metric]
		if !seen {
			mi = len(metricNames)
			indexOf[metric] = mi
			metricNames = append(metricNames, metric)
		}
		colMetric[c] = mi
	}
	nm := len(metricNames)
	totals := make([][]float64, nm) // per metric: vector over threads
	for m := range totals {
		totals[m] = make([]float64, len(fm.Rows))
	}
	for r, row := range fm.Rows {
		for c, v := range row {
			totals[colMetric[c]][r] += v
		}
	}
	corr := &Correlation{TrialID: trialID, Metrics: metricNames}
	corr.Matrix = make([][]float64, nm)
	for i := range corr.Matrix {
		corr.Matrix[i] = make([]float64, nm)
		corr.Matrix[i][i] = 1
	}
	for i := 0; i < nm; i++ {
		for j := i + 1; j < nm; j++ {
			r := Pearson(totals[i], totals[j])
			corr.Matrix[i][j] = r
			corr.Matrix[j][i] = r
		}
	}
	return corr, nil
}

// StrongPairs returns the metric pairs whose |correlation| meets the
// threshold, strongest first.
func (c *Correlation) StrongPairs(threshold float64) []CorrelatedPair {
	var out []CorrelatedPair
	for i := 0; i < len(c.Metrics); i++ {
		for j := i + 1; j < len(c.Metrics); j++ {
			if r := c.Matrix[i][j]; math.Abs(r) >= threshold {
				out = append(out, CorrelatedPair{A: c.Metrics[i], B: c.Metrics[j], R: r})
			}
		}
	}
	// Insertion sort by |R| descending; the list is tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && math.Abs(out[j].R) > math.Abs(out[j-1].R); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// CorrelatedPair is one (metric, metric, r) entry.
type CorrelatedPair struct {
	A, B string
	R    float64
}

// cutLast splits s at the last occurrence of sep.
func cutLast(s string, sep byte) (before, after string, ok bool) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}
