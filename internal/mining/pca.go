package mining

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// PCA is the result of PrincipalComponents: eigenvectors of the covariance
// matrix sorted by descending eigenvalue, with explained-variance ratios.
type PCA struct {
	Components [][]float64 // each of length dims
	Variance   []float64   // eigenvalues
	Explained  []float64   // Variance[i] / sum(Variance)
	Mean       []float64
}

// PrincipalComponents computes a full PCA of the rows via Jacobi
// eigendecomposition of the covariance matrix. PerfExplorer uses PCA to
// project hundreds of dimensions down for display; dims beyond a few
// hundred would want a different algorithm, which matches the paper's data
// shapes (events × metrics).
func PrincipalComponents(rows [][]float64) (p *PCA, err error) {
	err = miningOp(context.Background(), "mining:pca", mPCANS, nil, func(context.Context) error {
		p, err = principalComponents(rows)
		if err == nil {
			mPCARuns.Inc()
		}
		return err
	})
	return p, err
}

func principalComponents(rows [][]float64) (*PCA, error) {
	n := len(rows)
	if n < 2 {
		return nil, fmt.Errorf("mining: PCA needs at least 2 rows")
	}
	dims := len(rows[0])
	mean := make([]float64, dims)
	for _, r := range rows {
		if len(r) != dims {
			return nil, fmt.Errorf("mining: ragged matrix")
		}
		for d, v := range r {
			mean[d] += v
		}
	}
	for d := range mean {
		mean[d] /= float64(n)
	}
	// Covariance matrix.
	cov := make([][]float64, dims)
	for i := range cov {
		cov[i] = make([]float64, dims)
	}
	for _, r := range rows {
		for i := 0; i < dims; i++ {
			di := r[i] - mean[i]
			for j := i; j < dims; j++ {
				cov[i][j] += di * (r[j] - mean[j])
			}
		}
	}
	for i := 0; i < dims; i++ {
		for j := i; j < dims; j++ {
			cov[i][j] /= float64(n - 1)
			cov[j][i] = cov[i][j]
		}
	}
	vals, vecs := jacobiEigen(cov)

	order := make([]int, dims)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })

	p := &PCA{Mean: mean}
	total := 0.0
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	for _, idx := range order {
		comp := make([]float64, dims)
		for d := 0; d < dims; d++ {
			comp[d] = vecs[d][idx]
		}
		p.Components = append(p.Components, comp)
		v := vals[idx]
		if v < 0 {
			v = 0
		}
		p.Variance = append(p.Variance, v)
		if total > 0 {
			p.Explained = append(p.Explained, v/total)
		} else {
			p.Explained = append(p.Explained, 0)
		}
	}
	return p, nil
}

// Project maps rows onto the first k principal components.
func (p *PCA) Project(rows [][]float64, k int) [][]float64 {
	if k > len(p.Components) {
		k = len(p.Components)
	}
	out := make([][]float64, len(rows))
	for i, r := range rows {
		proj := make([]float64, k)
		for c := 0; c < k; c++ {
			s := 0.0
			for d := range r {
				s += (r[d] - p.Mean[d]) * p.Components[c][d]
			}
			proj[c] = s
		}
		out[i] = proj
	}
	return out
}

// jacobiEigen computes eigenvalues and eigenvectors of a symmetric matrix
// using cyclic Jacobi rotations. vecs[i][j] is component i of eigenvector j.
func jacobiEigen(a [][]float64) (vals []float64, vecs [][]float64) {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	vecs = make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, n)
		vecs[i][i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		// Convergence gauges: off decays toward zero as rotations converge.
		mPCASweeps.Set(int64(sweep + 1))
		mPCAOffMicro.Set(int64(off * 1e6))
		if off < 1e-20 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-300 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := vecs[k][p], vecs[k][q]
					vecs[k][p] = c*vkp - s*vkq
					vecs[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i][i]
	}
	return vals, vecs
}
