// Upload/download-layer observability. The upload path is the hottest
// code in PerfDMF, so everything here follows the obs ground rules: plain
// atomic counters always run; spans and gauges that need wall-clock reads
// only exist while a consumer (tracer, slow-query log, telemetry sink, or
// a parent span in the context) is active.
package core

import (
	"context"

	"perfdmf/internal/godbc"
	"perfdmf/internal/obs"
)

var (
	mUploadTrials  = obs.Default.Counter("core_upload_trials_total")
	mUploadErrors  = obs.Default.Counter("core_upload_errors_total")
	mUploadRows    = obs.Default.Counter("core_upload_rows_total")
	mUploadNS      = obs.Default.Histogram("core_upload_ns")
	mUploadBatch   = obs.Default.Histogram("core_upload_batch_rows")
	mUploadRowRate = obs.Default.Gauge("core_upload_rows_per_sec")

	mDownloadTrials = obs.Default.Counter("core_download_trials_total")
	mDownloadErrors = obs.Default.Counter("core_download_errors_total")
	mDownloadRows   = obs.Default.Counter("core_download_rows_total")
	mDownloadNS     = obs.Default.Histogram("core_download_ns")
)

// BindSpanContext parents the session connection's statement spans under
// the span carried by ctx (nil-safe, see godbc.SpanBinder). Sessions are
// single-goroutine like their connection, so the binding follows whatever
// operation the session is currently running.
func (s *DataSession) BindSpanContext(ctx context.Context) {
	if b, ok := s.conn.(godbc.SpanBinder); ok {
		b.BindSpanContext(ctx)
	}
}

// phase runs fn under a child span of ctx's span, rebinding the session
// connection so statements issued inside fn become grandchildren. With
// observability off it is a plain function call.
func (s *DataSession) phase(ctx context.Context, name string, fn func() error) error {
	pctx, sp := obs.StartSpan(ctx, "phase", name)
	if sp == nil {
		return fn()
	}
	s.BindSpanContext(pctx)
	err := fn()
	sp.Finish(err)
	s.BindSpanContext(ctx)
	return err
}
