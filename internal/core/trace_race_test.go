package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"perfdmf/internal/obs"
)

// TestParallelUploadTreesIsolated runs concurrent uploads, each with its
// own session and root span, and asserts the captured spans form disjoint
// trees: every span's Root names its own goroutine's root, every parent
// edge stays inside one tree, and no span id repeats. Run under -race
// (make race) this also exercises the span-propagation paths for data
// races — context propagation must never leak a parent across goroutines.
func TestParallelUploadTreesIsolated(t *testing.T) {
	prev := obs.TracingEnabled()
	defer obs.SetTracing(prev)
	obs.SetTracing(true)

	// Sessions are prepared up front so only the uploads themselves run
	// while the capture sink is live — every captured span must then sit
	// under one of the workers' root spans.
	const workers = 4
	sessions := make([]*DataSession, workers)
	for w := 0; w < workers; w++ {
		s, err := Open(fmt.Sprintf("mem:race_upload_%d", w))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		app := &Application{Name: fmt.Sprintf("app-%d", w)}
		if err := s.SaveApplication(app); err != nil {
			t.Fatal(err)
		}
		s.SetApplication(app)
		exp := &Experiment{Name: "race"}
		if err := s.SaveExperiment(exp); err != nil {
			t.Fatal(err)
		}
		s.SetExperiment(exp)
		sessions[w] = s
	}

	var mu sync.Mutex
	var captured []*obs.Span
	sink := obs.NewTelemetrySink(func(batch []obs.SinkEntry) error {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range batch {
			captured = append(captured, e.Span)
		}
		return nil
	}, obs.SinkOptions{FlushEvery: time.Hour})
	sink.Start()
	obs.InstallSink(sink)
	defer obs.UninstallSink()

	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, sp := obs.StartSpan(context.Background(), "upload", fmt.Sprintf("upload:worker-%d", w))
			_, err := sessions[w].UploadTrialCtx(ctx, sampleProfile(fmt.Sprintf("app-%d", w)), UploadOptions{})
			sp.Finish(err)
			errs <- err
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	obs.UninstallSink()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	byID := make(map[int64]*obs.Span, len(captured))
	roots := map[string]bool{}
	for _, sp := range captured {
		if byID[sp.ID] != nil {
			t.Fatalf("span id %d assigned twice", sp.ID)
		}
		byID[sp.ID] = sp
		if sp.ParentID == 0 {
			roots[sp.Root] = true
		}
	}
	if len(roots) != workers {
		t.Fatalf("got %d distinct root trees, want %d: %v", len(roots), workers, roots)
	}
	for _, sp := range captured {
		if !strings.HasPrefix(sp.Root, "upload:worker-") {
			t.Fatalf("span %d carries foreign root %q", sp.ID, sp.Root)
		}
		if sp.ParentID == 0 {
			continue
		}
		parent := byID[sp.ParentID]
		if parent == nil {
			t.Fatalf("span %d (%s) parent %d never captured", sp.ID, sp.Root, sp.ParentID)
		}
		if parent.Root != sp.Root {
			t.Fatalf("cross-tree leak: span %d root %q has parent %d root %q",
				sp.ID, sp.Root, parent.ID, parent.Root)
		}
	}
	// Every tree must be a real hierarchy, not a root plus a flat fringe:
	// the upload path nests batches under phases under the root.
	for root := range roots {
		var spans []*obs.Span
		for _, sp := range captured {
			if sp.Root == root {
				spans = append(spans, sp)
			}
		}
		trees := obs.BuildTrees(spans)
		if len(trees) != 1 {
			t.Fatalf("root %q split into %d trees", root, len(trees))
		}
		if d := trees[0].Depth(); d < 3 {
			t.Errorf("root %q tree depth %d, want >= 3", root, d)
		}
	}
}
