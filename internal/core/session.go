package core

import (
	"fmt"
	"strings"

	"perfdmf/internal/godbc"
)

// DataSession is the PerfDMF programming interface (paper §4): it wraps a
// database connection, exposes application/experiment/trial lists as
// objects, and scopes subsequent queries to the selected object — "once an
// object is selected, all further query operations are filtered based on
// that particular context".
//
// A DataSession is not safe for concurrent use; open one per goroutine
// (they share the underlying engine).
type DataSession struct {
	conn  godbc.Conn
	app   *Application
	exp   *Experiment
	trial *Trial
}

// Open connects to dsn (e.g. "mem:archive" or "file:/path/to/dir") and
// ensures the PerfDMF schema exists.
func Open(dsn string) (*DataSession, error) {
	conn, err := godbc.Open(dsn)
	if err != nil {
		return nil, err
	}
	if err := CreateSchema(conn); err != nil {
		conn.Close()
		return nil, err
	}
	return &DataSession{conn: conn}, nil
}

// NewSession wraps an existing connection (schema must exist or be
// creatable).
func NewSession(conn godbc.Conn) (*DataSession, error) {
	if err := CreateSchema(conn); err != nil {
		return nil, err
	}
	return &DataSession{conn: conn}, nil
}

// Conn exposes the underlying connection for direct SQL, which the paper
// explicitly supports alongside the object API.
func (s *DataSession) Conn() godbc.Conn { return s.conn }

// Close releases the session's connection.
func (s *DataSession) Close() error { return s.conn.Close() }

var (
	appFixed   = map[string]bool{"id": true, "name": true}
	expFixed   = map[string]bool{"id": true, "name": true, "application": true}
	trialFixed = map[string]bool{"id": true, "name": true, "experiment": true, "metadata": true}
)

func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// --- applications ---

// ApplicationList returns every application, in id order.
func (s *DataSession) ApplicationList() ([]*Application, error) {
	rows, err := s.conn.Query("SELECT * FROM application ORDER BY id")
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	idPos := colIndex(rows.Columns(), "id")
	namePos := colIndex(rows.Columns(), "name")
	var out []*Application
	for rows.Next() {
		a := &Application{Fields: loadFields(rows, appFixed)}
		a.ID, _ = rows.Value(idPos).(int64)
		a.Name, _ = rows.Value(namePos).(string)
		out = append(out, a)
	}
	return out, rows.Err()
}

// FindApplication returns the application with the given name, or nil.
func (s *DataSession) FindApplication(name string) (*Application, error) {
	apps, err := s.ApplicationList()
	if err != nil {
		return nil, err
	}
	for _, a := range apps {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, nil
}

// SaveApplication inserts the application when its ID is zero, otherwise
// updates the existing row. Flexible fields are written to their columns.
func (s *DataSession) SaveApplication(a *Application) error {
	if a.Name == "" {
		return fmt.Errorf("core: application needs a name")
	}
	cols, vals, err := flexColumns(s.conn, "application", appFixed, a.Fields)
	if err != nil {
		return err
	}
	if a.ID == 0 {
		names := append([]string{"name"}, cols...)
		args := append([]any{a.Name}, vals...)
		res, err := s.conn.Exec(insertSQL("application", names), args...)
		if err != nil {
			return err
		}
		a.ID = res.LastInsertID
		return nil
	}
	names := append([]string{"name"}, cols...)
	args := append([]any{a.Name}, vals...)
	args = append(args, a.ID)
	_, err = s.conn.Exec(updateSQL("application", names), args...)
	return err
}

// SetApplication scopes subsequent experiment queries to app (nil clears
// the filter and everything below it).
func (s *DataSession) SetApplication(app *Application) {
	s.app = app
	s.exp = nil
	s.trial = nil
}

// Application returns the current application filter.
func (s *DataSession) Application() *Application { return s.app }

// --- experiments ---

// ExperimentList returns experiments, restricted to the selected
// application when one is set.
func (s *DataSession) ExperimentList() ([]*Experiment, error) {
	var (
		rows godbc.Rows
		err  error
	)
	if s.app != nil {
		rows, err = s.conn.Query("SELECT * FROM experiment WHERE application = ? ORDER BY id", s.app.ID)
	} else {
		rows, err = s.conn.Query("SELECT * FROM experiment ORDER BY id")
	}
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	idPos := colIndex(rows.Columns(), "id")
	namePos := colIndex(rows.Columns(), "name")
	appPos := colIndex(rows.Columns(), "application")
	var out []*Experiment
	for rows.Next() {
		e := &Experiment{Fields: loadFields(rows, expFixed)}
		e.ID, _ = rows.Value(idPos).(int64)
		e.Name, _ = rows.Value(namePos).(string)
		e.ApplicationID, _ = rows.Value(appPos).(int64)
		out = append(out, e)
	}
	return out, rows.Err()
}

// SaveExperiment inserts or updates an experiment row.
func (s *DataSession) SaveExperiment(e *Experiment) error {
	if e.Name == "" {
		return fmt.Errorf("core: experiment needs a name")
	}
	if e.ApplicationID == 0 {
		if s.app == nil {
			return fmt.Errorf("core: experiment needs an application (set one or select one)")
		}
		e.ApplicationID = s.app.ID
	}
	cols, vals, err := flexColumns(s.conn, "experiment", expFixed, e.Fields)
	if err != nil {
		return err
	}
	if e.ID == 0 {
		names := append([]string{"name", "application"}, cols...)
		args := append([]any{e.Name, e.ApplicationID}, vals...)
		res, err := s.conn.Exec(insertSQL("experiment", names), args...)
		if err != nil {
			return err
		}
		e.ID = res.LastInsertID
		return nil
	}
	names := append([]string{"name", "application"}, cols...)
	args := append([]any{e.Name, e.ApplicationID}, vals...)
	args = append(args, e.ID)
	_, err = s.conn.Exec(updateSQL("experiment", names), args...)
	return err
}

// SetExperiment scopes subsequent trial queries to exp.
func (s *DataSession) SetExperiment(exp *Experiment) {
	s.exp = exp
	s.trial = nil
}

// Experiment returns the current experiment filter.
func (s *DataSession) Experiment() *Experiment { return s.exp }

// --- trials ---

// TrialList returns trials, restricted to the selected experiment when one
// is set.
func (s *DataSession) TrialList() ([]*Trial, error) {
	var (
		rows godbc.Rows
		err  error
	)
	if s.exp != nil {
		rows, err = s.conn.Query("SELECT * FROM trial WHERE experiment = ? ORDER BY id", s.exp.ID)
	} else {
		rows, err = s.conn.Query("SELECT * FROM trial ORDER BY id")
	}
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	idPos := colIndex(rows.Columns(), "id")
	namePos := colIndex(rows.Columns(), "name")
	expPos := colIndex(rows.Columns(), "experiment")
	var out []*Trial
	for rows.Next() {
		t := &Trial{Fields: loadFields(rows, trialFixed)}
		t.ID, _ = rows.Value(idPos).(int64)
		t.Name, _ = rows.Value(namePos).(string)
		t.ExperimentID, _ = rows.Value(expPos).(int64)
		out = append(out, t)
	}
	return out, rows.Err()
}

// SaveTrial inserts or updates a trial row (metadata column excluded; it is
// managed by UploadTrial).
func (s *DataSession) SaveTrial(t *Trial) error {
	if t.Name == "" {
		return fmt.Errorf("core: trial needs a name")
	}
	if t.ExperimentID == 0 {
		if s.exp == nil {
			return fmt.Errorf("core: trial needs an experiment (set one or select one)")
		}
		t.ExperimentID = s.exp.ID
	}
	cols, vals, err := flexColumns(s.conn, "trial", trialFixed, t.Fields)
	if err != nil {
		return err
	}
	if t.ID == 0 {
		names := append([]string{"name", "experiment"}, cols...)
		args := append([]any{t.Name, t.ExperimentID}, vals...)
		res, err := s.conn.Exec(insertSQL("trial", names), args...)
		if err != nil {
			return err
		}
		t.ID = res.LastInsertID
		return nil
	}
	names := append([]string{"name", "experiment"}, cols...)
	args := append([]any{t.Name, t.ExperimentID}, vals...)
	args = append(args, t.ID)
	_, err = s.conn.Exec(updateSQL("trial", names), args...)
	return err
}

// SetTrial scopes subsequent event and metric queries to t.
func (s *DataSession) SetTrial(t *Trial) { s.trial = t }

// Trial returns the current trial filter.
func (s *DataSession) Trial() *Trial { return s.trial }

// currentTrialID returns the selected trial's id, or an error.
func (s *DataSession) currentTrialID() (int64, error) {
	if s.trial == nil {
		return 0, fmt.Errorf("core: no trial selected")
	}
	return s.trial.ID, nil
}

// --- per-trial catalogs ---

// MetricList returns the selected trial's metrics in id order.
func (s *DataSession) MetricList() ([]*Metric, error) {
	trialID, err := s.currentTrialID()
	if err != nil {
		return nil, err
	}
	rows, err := s.conn.Query(
		"SELECT id, name, derived FROM metric WHERE trial = ? ORDER BY id", trialID)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []*Metric
	for rows.Next() {
		m := &Metric{TrialID: trialID}
		if err := rows.Scan(&m.ID, &m.Name, &m.Derived); err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, rows.Err()
}

// IntervalEventList returns the selected trial's interval events in id
// order.
func (s *DataSession) IntervalEventList() ([]*IntervalEvent, error) {
	trialID, err := s.currentTrialID()
	if err != nil {
		return nil, err
	}
	rows, err := s.conn.Query(
		"SELECT id, name, group_name FROM interval_event WHERE trial = ? ORDER BY id", trialID)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []*IntervalEvent
	for rows.Next() {
		e := &IntervalEvent{TrialID: trialID}
		var group any
		if err := rows.Scan(&e.ID, &e.Name, &group); err != nil {
			return nil, err
		}
		if g, ok := group.(string); ok {
			e.Group = g
		}
		out = append(out, e)
	}
	return out, rows.Err()
}

// AtomicEventList returns the selected trial's atomic events in id order.
func (s *DataSession) AtomicEventList() ([]*AtomicEvent, error) {
	trialID, err := s.currentTrialID()
	if err != nil {
		return nil, err
	}
	rows, err := s.conn.Query(
		"SELECT id, name, group_name FROM atomic_event WHERE trial = ? ORDER BY id", trialID)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []*AtomicEvent
	for rows.Next() {
		e := &AtomicEvent{TrialID: trialID}
		var group any
		if err := rows.Scan(&e.ID, &e.Name, &group); err != nil {
			return nil, err
		}
		if g, ok := group.(string); ok {
			e.Group = g
		}
		out = append(out, e)
	}
	return out, rows.Err()
}

// DeleteTrial removes a trial and all of its dependent rows, children
// first so the archive is consistent at every step.
func (s *DataSession) DeleteTrial(trialID int64) error {
	for _, sql := range []string{
		`DELETE FROM interval_location_profile WHERE interval_event IN
			(SELECT id FROM interval_event WHERE trial = ?)`,
		`DELETE FROM interval_total_summary WHERE interval_event IN
			(SELECT id FROM interval_event WHERE trial = ?)`,
		`DELETE FROM interval_mean_summary WHERE interval_event IN
			(SELECT id FROM interval_event WHERE trial = ?)`,
		`DELETE FROM atomic_location_profile WHERE atomic_event IN
			(SELECT id FROM atomic_event WHERE trial = ?)`,
		`DELETE FROM interval_event WHERE trial = ?`,
		`DELETE FROM atomic_event WHERE trial = ?`,
		`DELETE FROM metric WHERE trial = ?`,
		`DELETE FROM analysis_result WHERE trial = ?`,
		`DELETE FROM trial WHERE id = ?`,
	} {
		if _, err := s.conn.Exec(sql, trialID); err != nil {
			return err
		}
	}
	if s.trial != nil && s.trial.ID == trialID {
		s.trial = nil
	}
	return nil
}

// insertSQL builds "INSERT INTO table (c1, c2) VALUES (?, ?)".
func insertSQL(table string, cols []string) string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(table)
	b.WriteString(" (")
	for i, c := range cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c)
	}
	b.WriteString(") VALUES (")
	for i := range cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('?')
	}
	b.WriteString(")")
	return b.String()
}

// updateSQL builds "UPDATE table SET c1 = ?, c2 = ? WHERE id = ?".
func updateSQL(table string, cols []string) string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(table)
	b.WriteString(" SET ")
	for i, c := range cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c)
		b.WriteString(" = ?")
	}
	b.WriteString(" WHERE id = ?")
	return b.String()
}
