package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"perfdmf/internal/godbc"
	"perfdmf/internal/model"
	"perfdmf/internal/obs"
)

// UploadOptions tunes the trial upload path.
type UploadOptions struct {
	// TrialName overrides the profile's own name.
	TrialName string
	// BatchSize is the number of rows per bulk INSERT statement (default
	// 64). 1 disables batching — the ablation in DESIGN.md measures the
	// difference.
	BatchSize int
	// SkipSummaries leaves the total/mean summary tables empty; analysis
	// must then aggregate on demand (the second ablation).
	SkipSummaries bool
	// Date stamps the trial row; zero means time.Now().
	Date time.Time
}

// ilpColumns is the column list of INTERVAL_LOCATION_PROFILE in insert
// order.
var ilpColumns = []string{
	"interval_event", "node", "context", "thread", "metric",
	"inclusive_percentage", "inclusive", "exclusive_percentage", "exclusive",
	"inclusive_per_call", "call", "subroutines",
}

// summaryColumns is the column list of the two summary tables.
var summaryColumns = []string{
	"interval_event", "metric",
	"inclusive_percentage", "inclusive", "exclusive_percentage", "exclusive",
	"inclusive_per_call", "call", "subroutines",
}

var alpColumns = []string{
	"atomic_event", "node", "context", "thread",
	"sample_count", "maximum_value", "minimum_value", "mean_value", "standard_deviation",
}

// batchInserter issues multi-row INSERTs of a fixed batch size, falling
// back to single-row statements for the remainder. Statements are prepared
// once — the upload path is the hottest code in PerfDMF.
type batchInserter struct {
	batch    godbc.Stmt // nil when batching is disabled
	single   godbc.Stmt
	size     int
	width    int
	buffered []any
}

func newBatchInserter(conn godbc.Conn, table string, cols []string, batchSize int) (*batchInserter, error) {
	bi := &batchInserter{size: batchSize, width: len(cols)}
	single, err := conn.Prepare(insertSQL(table, cols))
	if err != nil {
		return nil, err
	}
	bi.single = single
	if batchSize > 1 {
		var b strings.Builder
		b.WriteString("INSERT INTO ")
		b.WriteString(table)
		b.WriteString(" (")
		b.WriteString(strings.Join(cols, ", "))
		b.WriteString(") VALUES ")
		row := "(" + strings.TrimSuffix(strings.Repeat("?, ", len(cols)), ", ") + ")"
		for i := 0; i < batchSize; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(row)
		}
		batch, err := conn.Prepare(b.String())
		if err != nil {
			return nil, err
		}
		bi.batch = batch
		bi.buffered = make([]any, 0, batchSize*len(cols))
	}
	return bi, nil
}

// add buffers one row, flushing a full batch.
func (bi *batchInserter) add(vals ...any) error {
	if len(vals) != bi.width {
		return fmt.Errorf("core: batch inserter got %d values, want %d", len(vals), bi.width)
	}
	if bi.batch == nil {
		_, err := bi.single.Exec(vals...)
		return err
	}
	bi.buffered = append(bi.buffered, vals...)
	if len(bi.buffered) == bi.size*bi.width {
		if _, err := bi.batch.Exec(bi.buffered...); err != nil {
			return err
		}
		mUploadBatch.Observe(int64(bi.size))
		bi.buffered = bi.buffered[:0]
	}
	return nil
}

// flush writes any buffered remainder with single-row statements.
func (bi *batchInserter) flush() error {
	for i := 0; i < len(bi.buffered); i += bi.width {
		if _, err := bi.single.Exec(bi.buffered[i : i+bi.width]...); err != nil {
			return err
		}
		mUploadBatch.Observe(1)
	}
	bi.buffered = bi.buffered[:0]
	return nil
}

func (bi *batchInserter) close() {
	bi.single.Close()
	if bi.batch != nil {
		bi.batch.Close()
	}
}

// UploadTrial stores a parsed profile as a new trial under the selected
// experiment: the trial row, metric and event catalogs, every
// INTERVAL_LOCATION_PROFILE and ATOMIC_LOCATION_PROFILE row, and (unless
// disabled) the total and mean summary tables. The whole upload is one
// transaction.
func (s *DataSession) UploadTrial(p *model.Profile, opts UploadOptions) (*Trial, error) {
	return s.UploadTrialCtx(context.Background(), p, opts)
}

// UploadTrialCtx is UploadTrial with span-tree propagation: the upload
// becomes one "upload" span (a child of whatever span ctx carries), its
// phases — catalogs, interval rows, summaries, atomic events — become
// children, and every statement the session connection issues inside them
// becomes a leaf. Per-trial throughput lands in core_upload_rows_per_sec.
func (s *DataSession) UploadTrialCtx(ctx context.Context, p *model.Profile, opts UploadOptions) (*Trial, error) {
	if s.exp == nil {
		return nil, fmt.Errorf("core: select an experiment before uploading a trial")
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	name := opts.TrialName
	if name == "" {
		name = p.Name
	}
	date := opts.Date
	if date.IsZero() {
		date = time.Now().UTC()
	}

	uctx, sp := obs.StartSpan(ctx, "upload", "upload:"+name)
	if sp != nil {
		s.BindSpanContext(uctx)
		defer s.BindSpanContext(ctx)
	}
	start := time.Now()

	trial, err := func() (*Trial, error) {
		if err := s.conn.Begin(); err != nil {
			return nil, err
		}
		trial, err := s.uploadTrialTx(uctx, p, opts, name, date)
		if err != nil {
			s.conn.Rollback() //nolint:errcheck // surfacing the original error
			return nil, err
		}
		if err := s.conn.Commit(); err != nil {
			return nil, err
		}
		return trial, nil
	}()

	if err != nil {
		mUploadErrors.Inc()
		sp.Finish(err)
		return nil, err
	}
	rows := int64(p.DataPoints())
	mUploadTrials.Inc()
	mUploadRows.Add(rows)
	if sp != nil {
		sp.RowsReturned = rows
		elapsed := time.Since(start)
		mUploadNS.Observe(int64(elapsed))
		if secs := elapsed.Seconds(); secs > 0 {
			mUploadRowRate.Set(int64(float64(rows) / secs))
		}
	}
	sp.Finish(nil)
	return trial, nil
}

func (s *DataSession) uploadTrialTx(ctx context.Context, p *model.Profile, opts UploadOptions, name string, date time.Time) (*Trial, error) {
	res, err := s.conn.Exec(`INSERT INTO trial
		(experiment, name, date, node_count, contexts_per_node, max_threads_per_context, metadata)
		VALUES (?, ?, ?, ?, ?, ?, ?)`,
		s.exp.ID, name, date,
		p.NodeCount(), p.ContextsPerNode(), p.MaxThreadsPerContext(), encodeMeta(p.Meta))
	if err != nil {
		return nil, err
	}
	trialID := res.LastInsertID

	// Metric and event catalogs, keeping model-ID → database-ID maps.
	metricIDs := make([]int64, len(p.Metrics()))
	eventIDs := make([]int64, len(p.IntervalEvents()))
	err = s.phase(ctx, "upload:catalogs", func() error {
		insMetric, err := s.conn.Prepare("INSERT INTO metric (trial, name, derived) VALUES (?, ?, ?)")
		if err != nil {
			return err
		}
		defer insMetric.Close()
		for _, m := range p.Metrics() {
			r, err := insMetric.Exec(trialID, m.Name, m.Derived)
			if err != nil {
				return err
			}
			metricIDs[m.ID] = r.LastInsertID
		}

		insEvent, err := s.conn.Prepare("INSERT INTO interval_event (trial, name, group_name) VALUES (?, ?, ?)")
		if err != nil {
			return err
		}
		defer insEvent.Close()
		for _, e := range p.IntervalEvents() {
			r, err := insEvent.Exec(trialID, e.Name, e.Group)
			if err != nil {
				return err
			}
			eventIDs[e.ID] = r.LastInsertID
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Location profiles.
	if err := s.phase(ctx, "upload:rows", func() error {
		return s.uploadIntervalRows(p, opts, metricIDs, eventIDs)
	}); err != nil {
		return nil, err
	}

	if !opts.SkipSummaries {
		if err := s.phase(ctx, "upload:summaries", func() error {
			return s.uploadSummaries(p, eventIDs, metricIDs)
		}); err != nil {
			return nil, err
		}
	}

	// Atomic events.
	if len(p.AtomicEvents()) > 0 {
		if err := s.phase(ctx, "upload:atomic", func() error {
			return s.uploadAtomicEvents(p, opts, trialID)
		}); err != nil {
			return nil, err
		}
	}

	trial := &Trial{
		ID:           trialID,
		ExperimentID: s.exp.ID,
		Name:         name,
		Fields: map[string]any{
			"date":                    date,
			"node_count":              int64(p.NodeCount()),
			"contexts_per_node":       int64(p.ContextsPerNode()),
			"max_threads_per_context": int64(p.MaxThreadsPerContext()),
		},
	}
	return trial, nil
}

// uploadIntervalRows writes every INTERVAL_LOCATION_PROFILE row — the bulk
// of any upload.
func (s *DataSession) uploadIntervalRows(p *model.Profile, opts UploadOptions, metricIDs, eventIDs []int64) error {
	ilp, err := newBatchInserter(s.conn, "interval_location_profile", ilpColumns, opts.BatchSize)
	if err != nil {
		return err
	}
	defer ilp.close()
	nm := len(p.Metrics())
	for _, th := range p.Threads() {
		// Per-thread denominators for the percentage columns.
		totalExcl := make([]float64, nm)
		maxIncl := make([]float64, nm)
		th.EachInterval(func(_ int, d *model.IntervalData) {
			for m := 0; m < nm; m++ {
				totalExcl[m] += d.PerMetric[m].Exclusive
				if d.PerMetric[m].Inclusive > maxIncl[m] {
					maxIncl[m] = d.PerMetric[m].Inclusive
				}
			}
		})
		var addErr error
		th.EachInterval(func(eid int, d *model.IntervalData) {
			if addErr != nil {
				return
			}
			for m := 0; m < nm; m++ {
				md := d.PerMetric[m]
				inclPct, exclPct := 0.0, 0.0
				if maxIncl[m] > 0 {
					inclPct = 100 * md.Inclusive / maxIncl[m]
				}
				if totalExcl[m] > 0 {
					exclPct = 100 * md.Exclusive / totalExcl[m]
				}
				if err := ilp.add(
					eventIDs[eid], th.ID.Node, th.ID.Context, th.ID.Thread, metricIDs[m],
					inclPct, md.Inclusive, exclPct, md.Exclusive,
					d.InclusivePerCall(m), d.NumCalls, d.NumSubrs,
				); err != nil {
					addErr = err
				}
			}
		})
		if addErr != nil {
			return addErr
		}
	}
	return ilp.flush()
}

// uploadAtomicEvents writes the atomic-event catalog and every
// ATOMIC_LOCATION_PROFILE row.
func (s *DataSession) uploadAtomicEvents(p *model.Profile, opts UploadOptions, trialID int64) error {
	atomicIDs := make([]int64, len(p.AtomicEvents()))
	insAtomic, err := s.conn.Prepare("INSERT INTO atomic_event (trial, name, group_name) VALUES (?, ?, ?)")
	if err != nil {
		return err
	}
	defer insAtomic.Close()
	for _, e := range p.AtomicEvents() {
		r, err := insAtomic.Exec(trialID, e.Name, e.Group)
		if err != nil {
			return err
		}
		atomicIDs[e.ID] = r.LastInsertID
	}
	alp, err := newBatchInserter(s.conn, "atomic_location_profile", alpColumns, opts.BatchSize)
	if err != nil {
		return err
	}
	defer alp.close()
	for _, th := range p.Threads() {
		var addErr error
		th.EachAtomic(func(eid int, d *model.AtomicData) {
			if addErr != nil {
				return
			}
			if err := alp.add(
				atomicIDs[eid], th.ID.Node, th.ID.Context, th.ID.Thread,
				d.SampleCount, d.Maximum, d.Minimum, d.Mean, d.StdDev(),
			); err != nil {
				addErr = err
			}
		})
		if addErr != nil {
			return addErr
		}
	}
	return alp.flush()
}

// uploadSummaries writes the INTERVAL_TOTAL_SUMMARY and
// INTERVAL_MEAN_SUMMARY rows from the in-memory aggregates.
func (s *DataSession) uploadSummaries(p *model.Profile, eventIDs, metricIDs []int64) error {
	nm := len(p.Metrics())
	for _, kind := range []struct {
		table   string
		summary *model.Summary
	}{
		{"interval_total_summary", p.TotalSummary()},
		{"interval_mean_summary", p.MeanSummary()},
	} {
		ins, err := newBatchInserter(s.conn, kind.table, summaryColumns, 16)
		if err != nil {
			return err
		}
		// Denominators across the summary itself.
		totalExcl := make([]float64, nm)
		maxIncl := make([]float64, nm)
		for _, agg := range kind.summary.Events {
			for m := 0; m < nm; m++ {
				totalExcl[m] += agg.PerMetric[m].Exclusive
				if agg.PerMetric[m].Inclusive > maxIncl[m] {
					maxIncl[m] = agg.PerMetric[m].Inclusive
				}
			}
		}
		eids := make([]int, 0, len(kind.summary.Events))
		for eid := range kind.summary.Events {
			eids = append(eids, eid)
		}
		sort.Ints(eids)
		for _, eid := range eids {
			agg := kind.summary.Events[eid]
			for m := 0; m < nm; m++ {
				md := agg.PerMetric[m]
				inclPct, exclPct := 0.0, 0.0
				if maxIncl[m] > 0 {
					inclPct = 100 * md.Inclusive / maxIncl[m]
				}
				if totalExcl[m] > 0 {
					exclPct = 100 * md.Exclusive / totalExcl[m]
				}
				if err := ins.add(
					eventIDs[eid], metricIDs[m],
					inclPct, md.Inclusive, exclPct, md.Exclusive,
					agg.InclusivePerCall(m), agg.NumCalls, agg.NumSubrs,
				); err != nil {
					return err
				}
			}
		}
		if err := ins.flush(); err != nil {
			return err
		}
		ins.close()
	}
	return nil
}

// SaveDerivedMetric stores one additional metric of a profile into an
// existing trial: the metric row, its INTERVAL_LOCATION_PROFILE rows and
// its summary rows (paper §4: "The Trial object also has support for
// adding new, possibly derived, metrics to an existing trial"). The
// profile must be the trial's own data (e.g. from LoadTrial) with the
// derived metric already computed via model.DeriveMetric.
func (s *DataSession) SaveDerivedMetric(trialID int64, p *model.Profile, metricID int) (*Metric, error) {
	if metricID < 0 || metricID >= len(p.Metrics()) {
		return nil, fmt.Errorf("core: profile has no metric %d", metricID)
	}
	// Map profile event IDs to database event IDs by name.
	rows, err := s.conn.Query("SELECT id, name FROM interval_event WHERE trial = ?", trialID)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]int64)
	for rows.Next() {
		var id int64
		var name string
		if err := rows.Scan(&id, &name); err != nil {
			rows.Close()
			return nil, err
		}
		byName[name] = id
	}
	rows.Close()
	eventIDs := make([]int64, len(p.IntervalEvents()))
	for _, e := range p.IntervalEvents() {
		id, ok := byName[e.Name]
		if !ok {
			return nil, fmt.Errorf("core: trial %d has no event %q; is this the trial's own profile?", trialID, e.Name)
		}
		eventIDs[e.ID] = id
	}

	if err := s.conn.Begin(); err != nil {
		return nil, err
	}
	metric, err := s.saveDerivedTx(trialID, p, metricID, eventIDs)
	if err != nil {
		s.conn.Rollback() //nolint:errcheck
		return nil, err
	}
	if err := s.conn.Commit(); err != nil {
		return nil, err
	}
	return metric, nil
}

func (s *DataSession) saveDerivedTx(trialID int64, p *model.Profile, metricID int, eventIDs []int64) (*Metric, error) {
	m := p.Metrics()[metricID]
	res, err := s.conn.Exec("INSERT INTO metric (trial, name, derived) VALUES (?, ?, TRUE)",
		trialID, m.Name)
	if err != nil {
		return nil, err
	}
	dbMetric := res.LastInsertID

	ilp, err := newBatchInserter(s.conn, "interval_location_profile", ilpColumns, 64)
	if err != nil {
		return nil, err
	}
	defer ilp.close()
	for _, th := range p.Threads() {
		totalExcl, maxIncl := 0.0, 0.0
		th.EachInterval(func(_ int, d *model.IntervalData) {
			totalExcl += d.PerMetric[metricID].Exclusive
			if d.PerMetric[metricID].Inclusive > maxIncl {
				maxIncl = d.PerMetric[metricID].Inclusive
			}
		})
		var addErr error
		th.EachInterval(func(eid int, d *model.IntervalData) {
			if addErr != nil {
				return
			}
			md := d.PerMetric[metricID]
			inclPct, exclPct := 0.0, 0.0
			if maxIncl > 0 {
				inclPct = 100 * md.Inclusive / maxIncl
			}
			if totalExcl > 0 {
				exclPct = 100 * md.Exclusive / totalExcl
			}
			if err := ilp.add(
				eventIDs[eid], th.ID.Node, th.ID.Context, th.ID.Thread, dbMetric,
				inclPct, md.Inclusive, exclPct, md.Exclusive,
				d.InclusivePerCall(metricID), d.NumCalls, d.NumSubrs,
			); err != nil {
				addErr = err
			}
		})
		if addErr != nil {
			return nil, addErr
		}
	}
	if err := ilp.flush(); err != nil {
		return nil, err
	}

	// Summary rows for the new metric.
	for _, kind := range []struct {
		table   string
		summary *model.Summary
	}{
		{"interval_total_summary", p.TotalSummary()},
		{"interval_mean_summary", p.MeanSummary()},
	} {
		ins, err := newBatchInserter(s.conn, kind.table, summaryColumns, 16)
		if err != nil {
			return nil, err
		}
		totalExcl, maxIncl := 0.0, 0.0
		for _, agg := range kind.summary.Events {
			totalExcl += agg.PerMetric[metricID].Exclusive
			if agg.PerMetric[metricID].Inclusive > maxIncl {
				maxIncl = agg.PerMetric[metricID].Inclusive
			}
		}
		for eid, agg := range kind.summary.Events {
			md := agg.PerMetric[metricID]
			inclPct, exclPct := 0.0, 0.0
			if maxIncl > 0 {
				inclPct = 100 * md.Inclusive / maxIncl
			}
			if totalExcl > 0 {
				exclPct = 100 * md.Exclusive / totalExcl
			}
			if err := ins.add(
				eventIDs[eid], dbMetric,
				inclPct, md.Inclusive, exclPct, md.Exclusive,
				agg.InclusivePerCall(metricID), agg.NumCalls, agg.NumSubrs,
			); err != nil {
				return nil, err
			}
		}
		if err := ins.flush(); err != nil {
			return nil, err
		}
		ins.close()
	}
	return &Metric{ID: dbMetric, TrialID: trialID, Name: m.Name, Derived: true}, nil
}

// encodeMeta serializes trial metadata as "key=quoted-value" lines.
func encodeMeta(meta map[string]string) string {
	if len(meta) == 0 {
		return ""
	}
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(meta[k]))
		b.WriteByte('\n')
	}
	return b.String()
}

// decodeMeta reverses encodeMeta; malformed lines are skipped.
func decodeMeta(s string) map[string]string {
	meta := make(map[string]string)
	for _, line := range strings.Split(s, "\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			continue
		}
		uq, err := strconv.Unquote(v)
		if err != nil {
			continue
		}
		meta[k] = uq
	}
	return meta
}
