package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"perfdmf/internal/model"
)

// randomProfile builds a randomized but valid profile: random thread
// topology, sparse event coverage, random metrics and atomic events.
func randomProfile(rng *rand.Rand, id int) *model.Profile {
	p := model.New(fmt.Sprintf("fuzz-%d", id))
	nMetrics := 1 + rng.Intn(3)
	for m := 0; m < nMetrics; m++ {
		p.AddMetric(fmt.Sprintf("M%d", m))
	}
	nEvents := 1 + rng.Intn(6)
	events := make([]*model.IntervalEvent, nEvents)
	for e := 0; e < nEvents; e++ {
		events[e] = p.AddIntervalEvent(fmt.Sprintf("event %d [{f.c} {%d}]", e, e*7), "G")
	}
	var atomics []*model.AtomicEvent
	for a := 0; a < rng.Intn(3); a++ {
		atomics = append(atomics, p.AddAtomicEvent(fmt.Sprintf("counter %d", a), "UE"))
	}
	nodes := 1 + rng.Intn(4)
	for n := 0; n < nodes; n++ {
		contexts := 1 + rng.Intn(2)
		for c := 0; c < contexts; c++ {
			threads := 1 + rng.Intn(2)
			for t := 0; t < threads; t++ {
				th := p.Thread(n, c, t)
				for _, e := range events {
					if rng.Float64() < 0.3 {
						continue // sparse coverage
					}
					d := th.IntervalData(e.ID, nMetrics)
					d.NumCalls = float64(rng.Intn(1000))
					d.NumSubrs = float64(rng.Intn(100))
					for m := 0; m < nMetrics; m++ {
						incl := rng.Float64() * 1e6
						d.PerMetric[m] = model.MetricData{
							Inclusive: incl,
							Exclusive: incl * rng.Float64(),
						}
					}
				}
				for _, a := range atomics {
					if rng.Float64() < 0.5 {
						continue
					}
					ad := th.AtomicData(a.ID)
					ad.SampleCount = int64(1 + rng.Intn(1000))
					ad.Minimum = rng.Float64() * 10
					ad.Maximum = ad.Minimum + rng.Float64()*1000
					ad.Mean = (ad.Minimum + ad.Maximum) / 2
					ad.SumSqr = ad.Mean * ad.Mean * float64(ad.SampleCount) * (1 + rng.Float64())
				}
			}
		}
	}
	return p
}

// TestUploadDownloadFuzz round-trips randomized profiles through the
// database and verifies every measurement survives exactly (atomic sumsqr
// is reconstructed from the stored stddev, so it gets a tolerance).
func TestUploadDownloadFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2005))
	s := openSession(t)
	app := &Application{Name: "fuzz"}
	if err := s.SaveApplication(app); err != nil {
		t.Fatal(err)
	}
	s.SetApplication(app)
	exp := &Experiment{Name: "fuzz"}
	if err := s.SaveExperiment(exp); err != nil {
		t.Fatal(err)
	}
	s.SetExperiment(exp)

	for i := 0; i < 25; i++ {
		p := randomProfile(rng, i)
		if err := p.Validate(); err != nil {
			t.Fatalf("case %d: generator produced invalid profile: %v", i, err)
		}
		trial, err := s.UploadTrial(p, UploadOptions{BatchSize: 1 + rng.Intn(100)})
		if err != nil {
			t.Fatalf("case %d: upload: %v", i, err)
		}
		got, err := s.LoadTrial(trial.ID)
		if err != nil {
			t.Fatalf("case %d: load: %v", i, err)
		}
		compareFuzz(t, i, p, got)
	}
}

func compareFuzz(t *testing.T, caseID int, want, got *model.Profile) {
	t.Helper()
	// Threads are materialized by their profile rows, so threads with no
	// data at all do not survive a round trip (there is no THREAD table in
	// the schema — faithful to PerfDMF). Compare against the non-empty
	// thread count.
	nonEmpty := 0
	for _, th := range want.Threads() {
		empty := true
		th.EachInterval(func(int, *model.IntervalData) { empty = false })
		th.EachAtomic(func(int, *model.AtomicData) { empty = false })
		if !empty {
			nonEmpty++
		}
	}
	if got.NumThreads() != nonEmpty {
		t.Fatalf("case %d: threads %d vs %d non-empty", caseID, got.NumThreads(), nonEmpty)
	}
	if len(got.Metrics()) != len(want.Metrics()) {
		t.Fatalf("case %d: metrics %d vs %d", caseID, len(got.Metrics()), len(want.Metrics()))
	}
	for _, wth := range want.Threads() {
		gth := got.FindThread(wth.ID.Node, wth.ID.Context, wth.ID.Thread)
		// Threads with no data at all are not materialized on reload; that
		// is acceptable only if the source thread was empty.
		if gth == nil {
			empty := true
			wth.EachInterval(func(int, *model.IntervalData) { empty = false })
			wth.EachAtomic(func(int, *model.AtomicData) { empty = false })
			if !empty {
				t.Fatalf("case %d: lost non-empty thread %v", caseID, wth.ID)
			}
			continue
		}
		wEvents := want.IntervalEvents()
		wth.EachInterval(func(eid int, wd *model.IntervalData) {
			ge := got.FindIntervalEvent(wEvents[eid].Name)
			if ge == nil {
				t.Fatalf("case %d: lost event %q", caseID, wEvents[eid].Name)
			}
			gd := gth.FindIntervalData(ge.ID)
			if gd == nil {
				t.Fatalf("case %d: lost data for %q on %v", caseID, wEvents[eid].Name, wth.ID)
			}
			if gd.NumCalls != wd.NumCalls || gd.NumSubrs != wd.NumSubrs {
				t.Fatalf("case %d: calls/subrs differ for %q", caseID, wEvents[eid].Name)
			}
			for _, wm := range want.Metrics() {
				gm := got.MetricID(wm.Name)
				if gd.PerMetric[gm] != wd.PerMetric[wm.ID] {
					t.Fatalf("case %d: %q/%s: %+v vs %+v", caseID, wEvents[eid].Name,
						wm.Name, gd.PerMetric[gm], wd.PerMetric[wm.ID])
				}
			}
		})
		wAtomics := want.AtomicEvents()
		wth.EachAtomic(func(eid int, wd *model.AtomicData) {
			ge := got.FindAtomicEvent(wAtomics[eid].Name)
			if ge == nil {
				t.Fatalf("case %d: lost atomic %q", caseID, wAtomics[eid].Name)
			}
			gd := gth.FindAtomicData(ge.ID)
			if gd.SampleCount != wd.SampleCount || gd.Maximum != wd.Maximum ||
				gd.Minimum != wd.Minimum || gd.Mean != wd.Mean {
				t.Fatalf("case %d: atomic %q stats differ", caseID, wAtomics[eid].Name)
			}
			if w, g := wd.StdDev(), gd.StdDev(); math.Abs(w-g) > 1e-6*(w+1) {
				t.Fatalf("case %d: atomic %q stddev %g vs %g", caseID, wAtomics[eid].Name, g, w)
			}
		})
	}
}
