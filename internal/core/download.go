package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"perfdmf/internal/model"
	"perfdmf/internal/obs"
)

// LoadTrial reconstructs a trial's full parallel profile from the
// database. Event and metric IDs in the returned profile are the model's
// own; names match the stored catalogs exactly.
func (s *DataSession) LoadTrial(trialID int64) (*model.Profile, error) {
	return s.LoadTrialCtx(context.Background(), trialID)
}

// LoadTrialCtx is LoadTrial with span-tree propagation: the reconstruction
// becomes one "download" span under ctx's span, with the session
// connection bound so every catalog and profile query is a child.
func (s *DataSession) LoadTrialCtx(ctx context.Context, trialID int64) (*model.Profile, error) {
	dctx, sp := obs.StartSpan(ctx, "download", "download:trial"+strconv.FormatInt(trialID, 10))
	if sp != nil {
		s.BindSpanContext(dctx)
		defer s.BindSpanContext(ctx)
	}
	start := time.Now()
	p, err := s.loadTrial(trialID)
	if err != nil {
		mDownloadErrors.Inc()
		sp.Finish(err)
		return nil, err
	}
	rows := int64(p.DataPoints())
	mDownloadTrials.Inc()
	mDownloadRows.Add(rows)
	if sp != nil {
		mDownloadNS.Observe(int64(time.Since(start)))
		sp.RowsReturned = rows
	}
	sp.Finish(nil)
	return p, nil
}

func (s *DataSession) loadTrial(trialID int64) (*model.Profile, error) {
	rows, err := s.conn.Query("SELECT name, metadata FROM trial WHERE id = ?", trialID)
	if err != nil {
		return nil, err
	}
	if !rows.Next() {
		rows.Close()
		return nil, fmt.Errorf("core: no trial %d", trialID)
	}
	var name string
	var meta any
	if err := rows.Scan(&name, &meta); err != nil {
		rows.Close()
		return nil, err
	}
	rows.Close()
	p := model.New(name)
	if ms, ok := meta.(string); ok && ms != "" {
		for k, v := range decodeMeta(ms) {
			p.Meta[k] = v
		}
	}

	// Catalogs, with database-ID → model-ID maps.
	metricOf := make(map[int64]int)
	rows, err = s.conn.Query("SELECT id, name, derived FROM metric WHERE trial = ? ORDER BY id", trialID)
	if err != nil {
		return nil, err
	}
	for rows.Next() {
		var id int64
		var mname string
		var derived bool
		if err := rows.Scan(&id, &mname, &derived); err != nil {
			rows.Close()
			return nil, err
		}
		mid := p.AddMetric(mname)
		if derived {
			p.SetDerived(mid)
		}
		metricOf[id] = mid
	}
	rows.Close()

	eventOf := make(map[int64]int)
	rows, err = s.conn.Query("SELECT id, name, group_name FROM interval_event WHERE trial = ? ORDER BY id", trialID)
	if err != nil {
		return nil, err
	}
	var eventDBIDs []int64
	for rows.Next() {
		var id int64
		var ename string
		var group any
		if err := rows.Scan(&id, &ename, &group); err != nil {
			rows.Close()
			return nil, err
		}
		g, _ := group.(string)
		eventOf[id] = p.AddIntervalEvent(ename, g).ID
		eventDBIDs = append(eventDBIDs, id)
	}
	rows.Close()

	// Location profiles, one indexed query per event (the ix_ilp_event
	// index makes each a point lookup).
	nm := len(p.Metrics())
	stmt, err := s.conn.Prepare(`SELECT node, context, thread, metric,
		inclusive, exclusive, call, subroutines
		FROM interval_location_profile WHERE interval_event = ?`)
	if err != nil {
		return nil, err
	}
	defer stmt.Close()
	for _, dbEvent := range eventDBIDs {
		rs, err := stmt.Query(dbEvent)
		if err != nil {
			return nil, err
		}
		mid := eventOf[dbEvent]
		for rs.Next() {
			var node, context, thread, metric int64
			var incl, excl, calls, subrs float64
			if err := rs.Scan(&node, &context, &thread, &metric, &incl, &excl, &calls, &subrs); err != nil {
				rs.Close()
				return nil, err
			}
			mm, ok := metricOf[metric]
			if !ok {
				rs.Close()
				return nil, fmt.Errorf("core: profile row references unknown metric %d", metric)
			}
			th := p.Thread(int(node), int(context), int(thread))
			d := th.IntervalData(mid, nm)
			d.NumCalls = calls
			d.NumSubrs = subrs
			d.PerMetric[mm] = model.MetricData{Inclusive: incl, Exclusive: excl}
		}
		if err := rs.Err(); err != nil {
			rs.Close()
			return nil, err
		}
		rs.Close()
	}

	// Atomic events.
	rows, err = s.conn.Query("SELECT id, name, group_name FROM atomic_event WHERE trial = ? ORDER BY id", trialID)
	if err != nil {
		return nil, err
	}
	atomicOf := make(map[int64]int)
	var atomicDBIDs []int64
	for rows.Next() {
		var id int64
		var ename string
		var group any
		if err := rows.Scan(&id, &ename, &group); err != nil {
			rows.Close()
			return nil, err
		}
		g, _ := group.(string)
		atomicOf[id] = p.AddAtomicEvent(ename, g).ID
		atomicDBIDs = append(atomicDBIDs, id)
	}
	rows.Close()
	if len(atomicDBIDs) > 0 {
		astmt, err := s.conn.Prepare(`SELECT node, context, thread,
			sample_count, maximum_value, minimum_value, mean_value, standard_deviation
			FROM atomic_location_profile WHERE atomic_event = ?`)
		if err != nil {
			return nil, err
		}
		defer astmt.Close()
		for _, dbEvent := range atomicDBIDs {
			rs, err := astmt.Query(dbEvent)
			if err != nil {
				return nil, err
			}
			aid := atomicOf[dbEvent]
			for rs.Next() {
				var node, context, thread, count int64
				var max, min, mean, stddev float64
				if err := rs.Scan(&node, &context, &thread, &count, &max, &min, &mean, &stddev); err != nil {
					rs.Close()
					return nil, err
				}
				d := p.Thread(int(node), int(context), int(thread)).AtomicData(aid)
				d.SampleCount = count
				d.Maximum = max
				d.Minimum = min
				d.Mean = mean
				// Reconstruct the sum of squares from the stored deviation.
				n := float64(count)
				d.SumSqr = (stddev*stddev + mean*mean) * n
			}
			if err := rs.Err(); err != nil {
				rs.Close()
				return nil, err
			}
			rs.Close()
		}
	}
	return p, nil
}

// SummaryRow is one event's aggregate data from a summary table.
type SummaryRow struct {
	EventID   int64
	EventName string
	Group     string
	Inclusive float64
	Exclusive float64
	Calls     float64
	Subrs     float64
	ExclPct   float64
	InclPct   float64
}

// MeanSummary returns the selected trial's INTERVAL_MEAN_SUMMARY rows for
// one metric (by name), sorted by descending exclusive value — the data
// behind a ParaProf-style mean profile view, fetched without loading the
// full trial (paper §4: "selectively query the data without having to load
// entire (possibly large) trials").
func (s *DataSession) MeanSummary(metricName string) ([]SummaryRow, error) {
	return s.summary("interval_mean_summary", metricName)
}

// TotalSummary returns the selected trial's INTERVAL_TOTAL_SUMMARY rows
// for one metric.
func (s *DataSession) TotalSummary(metricName string) ([]SummaryRow, error) {
	return s.summary("interval_total_summary", metricName)
}

func (s *DataSession) summary(table, metricName string) ([]SummaryRow, error) {
	trialID, err := s.currentTrialID()
	if err != nil {
		return nil, err
	}
	// interval_event is the base table so its trial index drives the plan;
	// the summary and metric tables hash-join onto it.
	rows, err := s.conn.Query(`
		SELECT e.id, e.name, e.group_name, t.inclusive, t.exclusive,
		       t.call, t.subroutines, t.exclusive_percentage, t.inclusive_percentage
		FROM interval_event e
		JOIN `+table+` t ON t.interval_event = e.id
		JOIN metric m ON t.metric = m.id
		WHERE e.trial = ? AND m.name = ?
		ORDER BY t.exclusive DESC`, trialID, metricName)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []SummaryRow
	for rows.Next() {
		var r SummaryRow
		var group any
		if err := rows.Scan(&r.EventID, &r.EventName, &group, &r.Inclusive,
			&r.Exclusive, &r.Calls, &r.Subrs, &r.ExclPct, &r.InclPct); err != nil {
			return nil, err
		}
		if g, ok := group.(string); ok {
			r.Group = g
		}
		out = append(out, r)
	}
	return out, rows.Err()
}

// EventProfile returns the per-thread rows of one event and metric from
// INTERVAL_LOCATION_PROFILE — ParaProf's "compare one instrumented event
// across all threads of execution" view.
type EventProfileRow struct {
	Node, Context, Thread int64
	Inclusive, Exclusive  float64
	Calls                 float64
}

// EventProfile fetches the per-thread data of one event (by database id)
// and metric name for the selected trial.
func (s *DataSession) EventProfile(eventID int64, metricName string) ([]EventProfileRow, error) {
	trialID, err := s.currentTrialID()
	if err != nil {
		return nil, err
	}
	rows, err := s.conn.Query(`
		SELECT p.node, p.context, p.thread, p.inclusive, p.exclusive, p.call
		FROM interval_location_profile p
		JOIN metric m ON p.metric = m.id
		WHERE p.interval_event = ? AND m.name = ? AND m.trial = ?
		ORDER BY p.node, p.context, p.thread`, eventID, metricName, trialID)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []EventProfileRow
	for rows.Next() {
		var r EventProfileRow
		if err := rows.Scan(&r.Node, &r.Context, &r.Thread, &r.Inclusive, &r.Exclusive, &r.Calls); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, rows.Err()
}

// SaveAnalysisResult stores an analysis artifact (e.g. PerfExplorer
// cluster output) attached to a trial; the paper's PerfExplorer extends
// PerfDMF exactly this way.
func (s *DataSession) SaveAnalysisResult(trialID int64, name, method, result string) (int64, error) {
	res, err := s.conn.Exec(
		"INSERT INTO analysis_result (trial, name, method, result) VALUES (?, ?, ?, ?)",
		trialID, name, method, result)
	if err != nil {
		return 0, err
	}
	return res.LastInsertID, nil
}

// AnalysisResult is one stored analysis artifact.
type AnalysisResult struct {
	ID      int64
	TrialID int64
	Name    string
	Method  string
	Result  string
}

// AnalysisResults lists the artifacts stored for a trial.
func (s *DataSession) AnalysisResults(trialID int64) ([]AnalysisResult, error) {
	rows, err := s.conn.Query(
		"SELECT id, name, method, result FROM analysis_result WHERE trial = ? ORDER BY id", trialID)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []AnalysisResult
	for rows.Next() {
		r := AnalysisResult{TrialID: trialID}
		var method, result any
		if err := rows.Scan(&r.ID, &r.Name, &method, &result); err != nil {
			return nil, err
		}
		if m, ok := method.(string); ok {
			r.Method = m
		}
		if v, ok := result.(string); ok {
			r.Result = v
		}
		out = append(out, r)
	}
	return out, rows.Err()
}

// AtomicProfileRow is one (atomic event, thread) record from
// ATOMIC_LOCATION_PROFILE.
type AtomicProfileRow struct {
	Node, Context, Thread int64
	SampleCount           int64
	Maximum, Minimum      float64
	Mean, StdDev          float64
}

// AtomicProfile fetches the per-thread statistics of one atomic event (by
// database id) for the selected trial.
func (s *DataSession) AtomicProfile(eventID int64) ([]AtomicProfileRow, error) {
	if _, err := s.currentTrialID(); err != nil {
		return nil, err
	}
	rows, err := s.conn.Query(`
		SELECT node, context, thread, sample_count,
		       maximum_value, minimum_value, mean_value, standard_deviation
		FROM atomic_location_profile
		WHERE atomic_event = ?
		ORDER BY node, context, thread`, eventID)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []AtomicProfileRow
	for rows.Next() {
		var r AtomicProfileRow
		if err := rows.Scan(&r.Node, &r.Context, &r.Thread, &r.SampleCount,
			&r.Maximum, &r.Minimum, &r.Mean, &r.StdDev); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, rows.Err()
}
