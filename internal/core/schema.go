// Package core implements PerfDMF itself: the relational profile schema of
// paper §3.2 and the DataSession query/management API of §4, layered on the
// godbc connectivity layer. It uploads parsed profiles (internal/model)
// into the database, downloads them back, maintains the total/mean summary
// tables, and supports the flexible APPLICATION/EXPERIMENT/TRIAL schema:
// extra columns added with ALTER TABLE are discovered at runtime through
// connection metadata and round-trip through the object API without any
// code changes.
package core

import (
	"fmt"
	"strings"

	"perfdmf/internal/godbc"
)

// The PerfDMF relational schema (paper §3.2). Each statement is executed
// by CreateSchema if the table does not already exist.
var schemaDDL = []string{
	`CREATE TABLE IF NOT EXISTS application (
		id BIGINT PRIMARY KEY AUTO_INCREMENT,
		name VARCHAR NOT NULL,
		version VARCHAR,
		description VARCHAR)`,

	`CREATE TABLE IF NOT EXISTS experiment (
		id BIGINT PRIMARY KEY AUTO_INCREMENT,
		application BIGINT NOT NULL REFERENCES application(id),
		name VARCHAR NOT NULL,
		system_info VARCHAR,
		compiler_info VARCHAR,
		configuration_info VARCHAR)`,

	`CREATE TABLE IF NOT EXISTS trial (
		id BIGINT PRIMARY KEY AUTO_INCREMENT,
		experiment BIGINT NOT NULL REFERENCES experiment(id),
		name VARCHAR NOT NULL,
		date TIMESTAMP,
		problem_definition VARCHAR,
		node_count BIGINT,
		contexts_per_node BIGINT,
		max_threads_per_context BIGINT,
		metadata VARCHAR)`,

	`CREATE TABLE IF NOT EXISTS metric (
		id BIGINT PRIMARY KEY AUTO_INCREMENT,
		trial BIGINT NOT NULL REFERENCES trial(id),
		name VARCHAR NOT NULL,
		derived BOOLEAN DEFAULT FALSE)`,

	`CREATE TABLE IF NOT EXISTS interval_event (
		id BIGINT PRIMARY KEY AUTO_INCREMENT,
		trial BIGINT NOT NULL REFERENCES trial(id),
		name VARCHAR NOT NULL,
		group_name VARCHAR)`,

	`CREATE TABLE IF NOT EXISTS interval_location_profile (
		interval_event BIGINT NOT NULL REFERENCES interval_event(id),
		node BIGINT NOT NULL,
		context BIGINT NOT NULL,
		thread BIGINT NOT NULL,
		metric BIGINT NOT NULL REFERENCES metric(id),
		inclusive_percentage DOUBLE,
		inclusive DOUBLE,
		exclusive_percentage DOUBLE,
		exclusive DOUBLE,
		inclusive_per_call DOUBLE,
		call DOUBLE,
		subroutines DOUBLE)`,

	`CREATE TABLE IF NOT EXISTS interval_total_summary (
		interval_event BIGINT NOT NULL REFERENCES interval_event(id),
		metric BIGINT NOT NULL REFERENCES metric(id),
		inclusive_percentage DOUBLE,
		inclusive DOUBLE,
		exclusive_percentage DOUBLE,
		exclusive DOUBLE,
		inclusive_per_call DOUBLE,
		call DOUBLE,
		subroutines DOUBLE)`,

	`CREATE TABLE IF NOT EXISTS interval_mean_summary (
		interval_event BIGINT NOT NULL REFERENCES interval_event(id),
		metric BIGINT NOT NULL REFERENCES metric(id),
		inclusive_percentage DOUBLE,
		inclusive DOUBLE,
		exclusive_percentage DOUBLE,
		exclusive DOUBLE,
		inclusive_per_call DOUBLE,
		call DOUBLE,
		subroutines DOUBLE)`,

	`CREATE TABLE IF NOT EXISTS atomic_event (
		id BIGINT PRIMARY KEY AUTO_INCREMENT,
		trial BIGINT NOT NULL REFERENCES trial(id),
		name VARCHAR NOT NULL,
		group_name VARCHAR)`,

	`CREATE TABLE IF NOT EXISTS atomic_location_profile (
		atomic_event BIGINT NOT NULL REFERENCES atomic_event(id),
		node BIGINT NOT NULL,
		context BIGINT NOT NULL,
		thread BIGINT NOT NULL,
		sample_count BIGINT,
		maximum_value DOUBLE,
		minimum_value DOUBLE,
		mean_value DOUBLE,
		standard_deviation DOUBLE)`,

	`CREATE TABLE IF NOT EXISTS analysis_result (
		id BIGINT PRIMARY KEY AUTO_INCREMENT,
		trial BIGINT NOT NULL REFERENCES trial(id),
		name VARCHAR NOT NULL,
		method VARCHAR,
		result VARCHAR)`,
}

// Indexes that make the download and analysis paths fast: lookups by owner
// (trial, event, metric) dominate.
var schemaIndexes = []struct{ name, table, column string }{
	{"ix_experiment_app", "experiment", "application"},
	{"ix_trial_experiment", "trial", "experiment"},
	{"ix_metric_trial", "metric", "trial"},
	{"ix_interval_event_trial", "interval_event", "trial"},
	{"ix_ilp_event", "interval_location_profile", "interval_event"},
	{"ix_total_event", "interval_total_summary", "interval_event"},
	{"ix_mean_event", "interval_mean_summary", "interval_event"},
	{"ix_atomic_event_trial", "atomic_event", "trial"},
	{"ix_alp_event", "atomic_location_profile", "atomic_event"},
	{"ix_result_trial", "analysis_result", "trial"},
}

// CoreTables lists the schema's table names.
func CoreTables() []string {
	return []string{
		"application", "experiment", "trial", "metric", "interval_event",
		"interval_location_profile", "interval_total_summary",
		"interval_mean_summary", "atomic_event", "atomic_location_profile",
		"analysis_result",
	}
}

// CreateSchema creates any missing PerfDMF tables and indexes. It is
// idempotent, so every DataSession runs it at open. When every core table
// already exists the DDL is skipped entirely, which lets read-only
// connections (DSN option readonly=1) open existing archives.
func CreateSchema(conn godbc.Conn) error {
	existing, err := conn.MetaData().Tables()
	if err != nil {
		return fmt.Errorf("core: inspect schema: %w", err)
	}
	have := make(map[string]bool, len(existing))
	for _, name := range existing {
		have[strings.ToLower(name)] = true
	}
	complete := true
	for _, name := range CoreTables() {
		if !have[name] {
			complete = false
			break
		}
	}
	if complete {
		return nil
	}
	for _, ddl := range schemaDDL {
		if _, err := conn.Exec(ddl); err != nil {
			return fmt.Errorf("core: create schema: %w", err)
		}
	}
	for _, ix := range schemaIndexes {
		existing, err := conn.MetaData().Indexes(ix.table)
		if err != nil {
			return fmt.Errorf("core: inspect indexes: %w", err)
		}
		present := false
		for _, have := range existing {
			if strings.EqualFold(have.Name, ix.name) {
				present = true
				break
			}
		}
		if present {
			continue
		}
		stmt := fmt.Sprintf("CREATE INDEX %s ON %s (%s)", ix.name, ix.table, ix.column)
		if _, err := conn.Exec(stmt); err != nil {
			return fmt.Errorf("core: create index %s: %w", ix.name, err)
		}
	}
	return nil
}
