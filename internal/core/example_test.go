package core_test

import (
	"fmt"
	"log"

	"perfdmf/internal/core"
	"perfdmf/internal/model"
)

// Example walks the canonical PerfDMF flow: open an archive, create the
// application/experiment context, upload a parsed profile, and query the
// mean summary back without reloading the whole trial.
func Example() {
	s, err := core.Open("mem:example_basic")
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	app := &core.Application{Name: "sweep3d"}
	if err := s.SaveApplication(app); err != nil {
		log.Fatal(err)
	}
	s.SetApplication(app)
	exp := &core.Experiment{Name: "tuning"}
	if err := s.SaveExperiment(exp); err != nil {
		log.Fatal(err)
	}
	s.SetExperiment(exp)

	// A profile as a format parser would produce it.
	p := model.New("run-1")
	tm := p.AddMetric("TIME")
	ev := p.AddIntervalEvent("sweep()", "TAU_USER")
	for rank := 0; rank < 4; rank++ {
		d := p.Thread(rank, 0, 0).IntervalData(ev.ID, 1)
		d.NumCalls = 100
		d.PerMetric[tm] = model.MetricData{Inclusive: 1e6, Exclusive: 1e6}
	}

	trial, err := s.UploadTrial(p, core.UploadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	s.SetTrial(trial)
	rows, err := s.MeanSummary("TIME")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trial %d: %s mean exclusive %.0f over %d nodes\n",
		trial.ID, rows[0].EventName, rows[0].Exclusive, trial.NodeCount())
	// Output:
	// trial 1: sweep() mean exclusive 1000000 over 4 nodes
}
