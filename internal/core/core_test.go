package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"perfdmf/internal/godbc"
	"perfdmf/internal/model"
)

var sessCounter int

func openSession(t *testing.T) *DataSession {
	t.Helper()
	sessCounter++
	s, err := Open(fmt.Sprintf("mem:core_test_%s_%d", t.Name(), sessCounter))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// sampleProfile builds a 4-thread, 2-metric profile with atomic events.
func sampleProfile(name string) *model.Profile {
	p := model.New(name)
	p.Meta["problem_size"] = "64^3"
	p.Meta["notes"] = `quoted "stuff" here`
	tID := p.AddMetric("TIME")
	fID := p.AddMetric("PAPI_FP_OPS")
	main := p.AddIntervalEvent("main()", "TAU_DEFAULT")
	send := p.AddIntervalEvent("MPI_Send()", "MPI")
	msg := p.AddAtomicEvent("Message size", "MPI")
	for n := 0; n < 2; n++ {
		for th := 0; th < 2; th++ {
			thread := p.Thread(n, 0, th)
			r := float64(n*2 + th)
			d := thread.IntervalData(main.ID, 2)
			d.NumCalls = 1
			d.NumSubrs = 300
			d.PerMetric[tID] = model.MetricData{Inclusive: 1e6 + r*1000, Exclusive: 2e5 + r}
			d.PerMetric[fID] = model.MetricData{Inclusive: 7e8, Exclusive: 6e8}
			d2 := thread.IntervalData(send.ID, 2)
			d2.NumCalls = 320
			d2.PerMetric[tID] = model.MetricData{Inclusive: 3e5 - r, Exclusive: 3e5 - r}
			d2.PerMetric[fID] = model.MetricData{Inclusive: 100, Exclusive: 100}
			a := thread.AtomicData(msg.ID)
			a.SampleCount = 320
			a.Minimum = 8
			a.Maximum = 65536
			a.Mean = 2048
			a.SumSqr = 320 * (2048*2048 + 500*500) // stddev 500
		}
	}
	return p
}

// setupTrial saves app + experiment and uploads the profile.
func setupTrial(t *testing.T, s *DataSession, p *model.Profile) *Trial {
	t.Helper()
	app := &Application{Name: "testapp", Fields: map[string]any{"version": "1.0"}}
	if err := s.SaveApplication(app); err != nil {
		t.Fatal(err)
	}
	s.SetApplication(app)
	exp := &Experiment{Name: "testexp"}
	if err := s.SaveExperiment(exp); err != nil {
		t.Fatal(err)
	}
	s.SetExperiment(exp)
	trial, err := s.UploadTrial(p, UploadOptions{Date: time.Date(2005, 6, 15, 0, 0, 0, 0, time.UTC)})
	if err != nil {
		t.Fatal(err)
	}
	return trial
}

func TestSchemaCreation(t *testing.T) {
	s := openSession(t)
	tables, err := s.Conn().MetaData().Tables()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, name := range CoreTables() {
		want[name] = true
	}
	for _, name := range tables {
		delete(want, name)
	}
	if len(want) != 0 {
		t.Fatalf("missing tables: %v", want)
	}
	// Idempotent.
	if err := CreateSchema(s.Conn()); err != nil {
		t.Fatal(err)
	}
	ixs, err := s.Conn().MetaData().Indexes("interval_location_profile")
	if err != nil || len(ixs) == 0 {
		t.Fatalf("indexes: %v %v", ixs, err)
	}
}

func TestApplicationExperimentTrialObjects(t *testing.T) {
	s := openSession(t)
	app := &Application{Name: "sppm", Fields: map[string]any{
		"version": "2.0", "description": "ASCI benchmark",
	}}
	if err := s.SaveApplication(app); err != nil {
		t.Fatal(err)
	}
	if app.ID == 0 {
		t.Fatal("no id assigned")
	}
	apps, err := s.ApplicationList()
	if err != nil || len(apps) != 1 {
		t.Fatalf("list: %v %v", apps, err)
	}
	if apps[0].Fields["version"] != "2.0" || apps[0].Fields["description"] != "ASCI benchmark" {
		t.Fatalf("fields: %v", apps[0].Fields)
	}
	// Update path.
	app.Fields["version"] = "2.1"
	if err := s.SaveApplication(app); err != nil {
		t.Fatal(err)
	}
	found, err := s.FindApplication("sppm")
	if err != nil || found == nil || found.Fields["version"] != "2.1" {
		t.Fatalf("after update: %v %v", found, err)
	}
	if missing, _ := s.FindApplication("nosuch"); missing != nil {
		t.Fatal("phantom application")
	}

	s.SetApplication(app)
	exp := &Experiment{Name: "scaling", Fields: map[string]any{"system_info": "BG/L"}}
	if err := s.SaveExperiment(exp); err != nil {
		t.Fatal(err)
	}
	exps, err := s.ExperimentList()
	if err != nil || len(exps) != 1 || exps[0].ApplicationID != app.ID {
		t.Fatalf("experiments: %v %v", exps, err)
	}
	if exps[0].Fields["system_info"] != "BG/L" {
		t.Fatalf("exp fields: %v", exps[0].Fields)
	}

	// Filtering: another application's experiments must not show.
	app2 := &Application{Name: "other"}
	if err := s.SaveApplication(app2); err != nil {
		t.Fatal(err)
	}
	s.SetApplication(app2)
	exps, _ = s.ExperimentList()
	if len(exps) != 0 {
		t.Fatalf("filter leak: %v", exps)
	}

	// Unknown flexible column is rejected with a helpful error.
	bad := &Application{Name: "x", Fields: map[string]any{"no_such_col": 1}}
	if err := s.SaveApplication(bad); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestUploadAndLoadTrialRoundTrip(t *testing.T) {
	s := openSession(t)
	p := sampleProfile("trial-1")
	trial := setupTrial(t, s, p)
	if trial.ID == 0 {
		t.Fatal("no trial id")
	}
	if trial.NodeCount() != 2 || trial.MaxThreadsPerContext() != 2 {
		t.Fatalf("trial stats: %+v", trial.Fields)
	}

	got, err := s.LoadTrial(trial.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "trial-1" {
		t.Errorf("name: %q", got.Name)
	}
	if got.Meta["problem_size"] != "64^3" || got.Meta["notes"] != `quoted "stuff" here` {
		t.Errorf("meta: %v", got.Meta)
	}
	if got.NumThreads() != 4 || len(got.Metrics()) != 2 {
		t.Fatalf("shape: threads=%d metrics=%d", got.NumThreads(), len(got.Metrics()))
	}
	// Every measurement must round-trip exactly.
	for _, wth := range p.Threads() {
		gth := got.FindThread(wth.ID.Node, wth.ID.Context, wth.ID.Thread)
		if gth == nil {
			t.Fatalf("lost thread %v", wth.ID)
		}
		for _, we := range p.IntervalEvents() {
			ge := got.FindIntervalEvent(we.Name)
			if ge == nil || ge.Group != we.Group {
				t.Fatalf("event %q: %+v", we.Name, ge)
			}
			wd := wth.FindIntervalData(we.ID)
			gd := gth.FindIntervalData(ge.ID)
			if gd == nil || gd.NumCalls != wd.NumCalls || gd.NumSubrs != wd.NumSubrs {
				t.Fatalf("event %q data: %+v vs %+v", we.Name, gd, wd)
			}
			for _, wm := range p.Metrics() {
				gm := got.MetricID(wm.Name)
				if gd.PerMetric[gm] != wd.PerMetric[wm.ID] {
					t.Errorf("%q %s: %+v vs %+v", we.Name, wm.Name,
						gd.PerMetric[gm], wd.PerMetric[wm.ID])
				}
			}
		}
		for _, we := range p.AtomicEvents() {
			ge := got.FindAtomicEvent(we.Name)
			if ge == nil {
				t.Fatalf("lost atomic %q", we.Name)
			}
			wd := wth.FindAtomicData(we.ID)
			gd := gth.FindAtomicData(ge.ID)
			if gd.SampleCount != wd.SampleCount || gd.Maximum != wd.Maximum ||
				gd.Minimum != wd.Minimum || gd.Mean != wd.Mean {
				t.Errorf("atomic %q: %+v vs %+v", we.Name, gd, wd)
			}
			if math.Abs(gd.StdDev()-wd.StdDev()) > 1e-6*wd.StdDev() {
				t.Errorf("atomic stddev: %g vs %g", gd.StdDev(), wd.StdDev())
			}
		}
	}
}

func TestTrialListAndFiltering(t *testing.T) {
	s := openSession(t)
	p := sampleProfile("t1")
	setupTrial(t, s, p)
	trial2, err := s.UploadTrial(sampleProfile("t2"), UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trials, err := s.TrialList()
	if err != nil || len(trials) != 2 {
		t.Fatalf("trials: %v %v", trials, err)
	}
	if trials[1].Name != "t2" || trials[1].ID != trial2.ID {
		t.Fatalf("trial2: %+v", trials[1])
	}
	if trials[0].NodeCount() != 2 {
		t.Fatalf("node_count through Fields: %+v", trials[0].Fields)
	}
	// Other experiment sees nothing.
	exp2 := &Experiment{Name: "empty", ApplicationID: s.Application().ID}
	if err := s.SaveExperiment(exp2); err != nil {
		t.Fatal(err)
	}
	s.SetExperiment(exp2)
	trials, _ = s.TrialList()
	if len(trials) != 0 {
		t.Fatalf("filter leak: %v", trials)
	}
}

func TestMetricAndEventLists(t *testing.T) {
	s := openSession(t)
	trial := setupTrial(t, s, sampleProfile("t"))
	s.SetTrial(trial)
	metrics, err := s.MetricList()
	if err != nil || len(metrics) != 2 || metrics[0].Name != "TIME" {
		t.Fatalf("metrics: %v %v", metrics, err)
	}
	events, err := s.IntervalEventList()
	if err != nil || len(events) != 2 {
		t.Fatalf("events: %v %v", events, err)
	}
	if events[1].Name != "MPI_Send()" || events[1].Group != "MPI" {
		t.Fatalf("event: %+v", events[1])
	}
	atomics, err := s.AtomicEventList()
	if err != nil || len(atomics) != 1 || atomics[0].Name != "Message size" {
		t.Fatalf("atomics: %v %v", atomics, err)
	}
	// No trial selected.
	s.SetTrial(nil)
	if _, err := s.MetricList(); err == nil {
		t.Fatal("MetricList without trial")
	}
}

func TestSummaries(t *testing.T) {
	s := openSession(t)
	p := sampleProfile("t")
	trial := setupTrial(t, s, p)
	s.SetTrial(trial)

	mean, err := s.MeanSummary("TIME")
	if err != nil || len(mean) != 2 {
		t.Fatalf("mean summary: %v %v", mean, err)
	}
	// Sorted by exclusive desc: MPI_Send (3e5-ish) over main (2e5-ish).
	if mean[0].EventName != "MPI_Send()" {
		t.Fatalf("order: %v", mean)
	}
	wantMean := (3e5 + (3e5 - 1) + (3e5 - 2) + (3e5 - 3)) / 4
	if math.Abs(mean[0].Exclusive-wantMean) > 1e-6 {
		t.Errorf("mean exclusive: %g want %g", mean[0].Exclusive, wantMean)
	}
	total, err := s.TotalSummary("TIME")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total[0].Exclusive-wantMean*4) > 1e-6 {
		t.Errorf("total exclusive: %g want %g", total[0].Exclusive, wantMean*4)
	}
	// Unknown metric yields empty, not error.
	none, err := s.MeanSummary("NOPE")
	if err != nil || len(none) != 0 {
		t.Fatalf("unknown metric: %v %v", none, err)
	}
}

func TestEventProfile(t *testing.T) {
	s := openSession(t)
	p := sampleProfile("t")
	trial := setupTrial(t, s, p)
	s.SetTrial(trial)
	events, _ := s.IntervalEventList()
	var send *IntervalEvent
	for _, e := range events {
		if e.Name == "MPI_Send()" {
			send = e
		}
	}
	rows, err := s.EventProfile(send.ID, "TIME")
	if err != nil || len(rows) != 4 {
		t.Fatalf("event profile: %v %v", rows, err)
	}
	// Ordered by node, context, thread.
	if rows[0].Node != 0 || rows[3].Node != 1 || rows[3].Thread != 1 {
		t.Fatalf("ordering: %+v", rows)
	}
	if rows[0].Calls != 320 {
		t.Fatalf("calls: %+v", rows[0])
	}
}

func TestSaveDerivedMetric(t *testing.T) {
	s := openSession(t)
	p := sampleProfile("t")
	trial := setupTrial(t, s, p)

	loaded, err := s.LoadTrial(trial.ID)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := loaded.DeriveMetric("MFLOPS", model.Ratio("PAPI_FP_OPS", "TIME", 1))
	if err != nil {
		t.Fatal(err)
	}
	metric, err := s.SaveDerivedMetric(trial.ID, loaded, mid)
	if err != nil {
		t.Fatal(err)
	}
	if !metric.Derived || metric.Name != "MFLOPS" {
		t.Fatalf("metric: %+v", metric)
	}
	// Reload and verify the derived values persisted.
	re, err := s.LoadTrial(trial.ID)
	if err != nil {
		t.Fatal(err)
	}
	gm := re.MetricID("MFLOPS")
	if gm < 0 || !re.Metrics()[gm].Derived {
		t.Fatalf("derived metric lost: %v", re.Metrics())
	}
	th := re.FindThread(0, 0, 0)
	e := re.FindIntervalEvent("main()")
	got := th.FindIntervalData(e.ID).PerMetric[gm].Exclusive
	want := 6e8 / 2e5
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("derived value: %g want %g", got, want)
	}
	// Mismatched profile rejected.
	other := sampleProfile("other")
	other.AddIntervalEvent("extra()", "")
	other.Thread(0, 0, 0).IntervalData(other.FindIntervalEvent("extra()").ID, 2)
	omid, _ := other.DeriveMetric("X", model.Ratio("PAPI_FP_OPS", "TIME", 1))
	if _, err := s.SaveDerivedMetric(trial.ID, other, omid); err == nil {
		t.Fatal("foreign profile accepted")
	}
}

func TestDeleteTrial(t *testing.T) {
	s := openSession(t)
	trial := setupTrial(t, s, sampleProfile("doomed"))
	s.SetTrial(trial)
	if err := s.DeleteTrial(trial.ID); err != nil {
		t.Fatal(err)
	}
	if s.Trial() != nil {
		t.Error("selection not cleared")
	}
	trials, _ := s.TrialList()
	if len(trials) != 0 {
		t.Fatalf("trial still listed: %v", trials)
	}
	for _, table := range []string{
		"metric", "interval_event", "interval_location_profile",
		"interval_total_summary", "interval_mean_summary",
		"atomic_event", "atomic_location_profile",
	} {
		rows, err := s.Conn().Query("SELECT COUNT(*) FROM " + table)
		if err != nil {
			t.Fatal(err)
		}
		rows.Next()
		var n int64
		rows.Scan(&n)
		if n != 0 {
			t.Errorf("%s has %d leftover rows", table, n)
		}
	}
	if _, err := s.LoadTrial(trial.ID); err == nil {
		t.Error("loading deleted trial succeeded")
	}
}

func TestFlexibleSchemaEndToEnd(t *testing.T) {
	s := openSession(t)
	// E6 scenario: the analysis team adds a compiler column at runtime.
	if _, err := s.Conn().Exec(
		"ALTER TABLE application ADD COLUMN compiler VARCHAR"); err != nil {
		t.Fatal(err)
	}
	app := &Application{Name: "withcc", Fields: map[string]any{"compiler": "xlf 8.1"}}
	if err := s.SaveApplication(app); err != nil {
		t.Fatal(err)
	}
	apps, _ := s.ApplicationList()
	if apps[0].Fields["compiler"] != "xlf 8.1" {
		t.Fatalf("flexible column lost: %v", apps[0].Fields)
	}
	// Dropping it removes the field from subsequent loads.
	if _, err := s.Conn().Exec("ALTER TABLE application DROP COLUMN compiler"); err != nil {
		t.Fatal(err)
	}
	apps, _ = s.ApplicationList()
	if _, ok := apps[0].Fields["compiler"]; ok {
		t.Fatalf("dropped column still present: %v", apps[0].Fields)
	}
}

func TestUploadRequiresExperiment(t *testing.T) {
	s := openSession(t)
	if _, err := s.UploadTrial(sampleProfile("x"), UploadOptions{}); err == nil {
		t.Fatal("upload without experiment accepted")
	}
}

func TestUploadBatchSizesEquivalent(t *testing.T) {
	for _, batch := range []int{1, 7, 64, 1000} {
		s := openSession(t)
		p := sampleProfile("b")
		app := &Application{Name: "a"}
		s.SaveApplication(app)
		s.SetApplication(app)
		exp := &Experiment{Name: "e"}
		s.SaveExperiment(exp)
		s.SetExperiment(exp)
		trial, err := s.UploadTrial(p, UploadOptions{BatchSize: batch})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		got, err := s.LoadTrial(trial.ID)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if got.DataPoints() != p.DataPoints() {
			t.Fatalf("batch %d: datapoints %d want %d", batch, got.DataPoints(), p.DataPoints())
		}
	}
}

func TestSkipSummariesOption(t *testing.T) {
	s := openSession(t)
	p := sampleProfile("nosum")
	app := &Application{Name: "a"}
	s.SaveApplication(app)
	s.SetApplication(app)
	exp := &Experiment{Name: "e"}
	s.SaveExperiment(exp)
	s.SetExperiment(exp)
	trial, err := s.UploadTrial(p, UploadOptions{SkipSummaries: true})
	if err != nil {
		t.Fatal(err)
	}
	s.SetTrial(trial)
	mean, err := s.MeanSummary("TIME")
	if err != nil || len(mean) != 0 {
		t.Fatalf("summaries present despite skip: %v %v", mean, err)
	}
}

func TestAnalysisResults(t *testing.T) {
	s := openSession(t)
	trial := setupTrial(t, s, sampleProfile("t"))
	id, err := s.SaveAnalysisResult(trial.ID, "clusters", "kmeans", "k=4 rss=1.25")
	if err != nil || id == 0 {
		t.Fatal(err)
	}
	results, err := s.AnalysisResults(trial.ID)
	if err != nil || len(results) != 1 {
		t.Fatalf("results: %v %v", results, err)
	}
	if results[0].Method != "kmeans" || results[0].Result != "k=4 rss=1.25" {
		t.Fatalf("result: %+v", results[0])
	}
}

func TestMetaEncoding(t *testing.T) {
	meta := map[string]string{
		"simple":  "value",
		"spaces":  "has spaces",
		"quotes":  `it "quotes" and \ slashes`,
		"newline": "line1\nline2",
		"empty":   "",
	}
	got := decodeMeta(encodeMeta(meta))
	if len(got) != len(meta) {
		t.Fatalf("got %v", got)
	}
	for k, v := range meta {
		if got[k] != v {
			t.Errorf("%s: %q vs %q", k, got[k], v)
		}
	}
	if len(decodeMeta("")) != 0 {
		t.Error("empty decode")
	}
	if len(decodeMeta("garbage line\nk=unquoted")) != 0 {
		t.Error("malformed lines should be skipped")
	}
}

func TestAtomicProfile(t *testing.T) {
	s := openSession(t)
	trial := setupTrial(t, s, sampleProfile("t"))
	s.SetTrial(trial)
	atomics, err := s.AtomicEventList()
	if err != nil || len(atomics) != 1 {
		t.Fatalf("atomics: %v %v", atomics, err)
	}
	rows, err := s.AtomicProfile(atomics[0].ID)
	if err != nil || len(rows) != 4 {
		t.Fatalf("atomic profile: %v %v", rows, err)
	}
	r := rows[0]
	if r.SampleCount != 320 || r.Maximum != 65536 || r.Minimum != 8 || r.Mean != 2048 {
		t.Fatalf("row: %+v", r)
	}
	if math.Abs(r.StdDev-500) > 1 {
		t.Fatalf("stddev: %g", r.StdDev)
	}
	// No trial selected.
	s.SetTrial(nil)
	if _, err := s.AtomicProfile(atomics[0].ID); err == nil {
		t.Fatal("AtomicProfile without trial")
	}
}

func TestReadOnlySessionOpensExistingArchive(t *testing.T) {
	dir := t.TempDir()
	dsn := "file:" + dir
	s, err := Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	setupTrial(t, s, sampleProfile("ro"))
	s.Close()

	ro, err := Open(dsn + "?readonly=1")
	if err != nil {
		t.Fatalf("read-only open: %v", err)
	}
	defer ro.Close()
	apps, err := ro.ApplicationList()
	if err != nil || len(apps) != 1 {
		t.Fatalf("apps: %v %v", apps, err)
	}
	ro.SetApplication(apps[0])
	exps, _ := ro.ExperimentList()
	ro.SetExperiment(exps[0])
	trials, _ := ro.TrialList()
	if len(trials) != 1 {
		t.Fatalf("trials: %v", trials)
	}
	p, err := ro.LoadTrial(trials[0].ID)
	if err != nil || p.NumThreads() != 4 {
		t.Fatalf("load: %v %v", p, err)
	}
	// Mutations rejected.
	if _, err := ro.UploadTrial(sampleProfile("x"), UploadOptions{}); err == nil {
		t.Fatal("upload on read-only session accepted")
	}
	if err := ro.DeleteTrial(trials[0].ID); err == nil {
		t.Fatal("delete on read-only session accepted")
	}
	// A read-only session against a fresh (schema-less) database fails
	// cleanly rather than half-creating tables.
	if _, err := Open("mem:ro_fresh_archive?readonly=1"); err == nil {
		t.Fatal("read-only open of empty database should fail")
	}
}

func TestSaveTrialAndAccessors(t *testing.T) {
	s := openSession(t)
	app := &Application{Name: "a"}
	s.SaveApplication(app)
	s.SetApplication(app)
	exp := &Experiment{Name: "e"}
	s.SaveExperiment(exp)
	s.SetExperiment(exp)
	if s.Experiment() != exp {
		t.Fatal("Experiment accessor")
	}

	// Insert path with explicit fields.
	trial := &Trial{Name: "manual", Fields: map[string]any{
		"node_count":              int64(8),
		"contexts_per_node":       int64(2),
		"max_threads_per_context": int64(4),
		"problem_definition":      "256^3",
	}}
	if err := s.SaveTrial(trial); err != nil {
		t.Fatal(err)
	}
	if trial.ID == 0 {
		t.Fatal("no id")
	}
	if trial.ContextsPerNode() != 2 || trial.MaxThreadsPerContext() != 4 {
		t.Fatalf("accessors: %+v", trial.Fields)
	}
	// Update path.
	trial.Name = "renamed"
	trial.Fields["node_count"] = int64(16)
	if err := s.SaveTrial(trial); err != nil {
		t.Fatal(err)
	}
	trials, _ := s.TrialList()
	if len(trials) != 1 || trials[0].Name != "renamed" || trials[0].NodeCount() != 16 {
		t.Fatalf("after update: %+v", trials)
	}
	if trials[0].Fields["problem_definition"] != "256^3" {
		t.Fatalf("flexible field: %+v", trials[0].Fields)
	}
	// Missing name / experiment.
	if err := s.SaveTrial(&Trial{}); err == nil {
		t.Error("nameless trial accepted")
	}
	s.SetExperiment(nil)
	if err := s.SaveTrial(&Trial{Name: "orphan"}); err == nil {
		t.Error("trial without experiment accepted")
	}
	// Experiment save also needs an application context.
	s.SetApplication(nil)
	if err := s.SaveExperiment(&Experiment{Name: "orphan"}); err == nil {
		t.Error("experiment without application accepted")
	}
	if err := s.SaveExperiment(&Experiment{}); err == nil {
		t.Error("nameless experiment accepted")
	}
	// Experiment update path.
	s.SetApplication(app)
	exp.Fields = map[string]any{"system_info": "updated"}
	if err := s.SaveExperiment(exp); err != nil {
		t.Fatal(err)
	}
	exps, _ := s.ExperimentList()
	if exps[0].Fields["system_info"] != "updated" {
		t.Fatalf("experiment update: %+v", exps[0].Fields)
	}
}

func TestNewSessionWrapsConnection(t *testing.T) {
	conn, err := godbc.Open("mem:core_newsession")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Conn() != conn {
		t.Fatal("Conn passthrough")
	}
	apps, err := s.ApplicationList()
	if err != nil || len(apps) != 0 {
		t.Fatalf("apps: %v %v", apps, err)
	}
}
