package core

import (
	"fmt"
	"sort"
	"strings"

	"perfdmf/internal/godbc"
)

// Application, Experiment and Trial mirror the top three schema tables.
// Beyond the fixed columns (ID, Name, and the foreign key), every other
// column — including ones added later with ALTER TABLE — lives in Fields,
// keyed by lower-cased column name. This is the paper's flexible-schema
// mechanism: the column set is discovered from connection metadata at save
// and load time, so "the analysis team is free to organize the performance
// attribute data in any way they like" without code changes.

// Application is one row of the APPLICATION table.
type Application struct {
	ID     int64
	Name   string
	Fields map[string]any
}

// Experiment is one row of the EXPERIMENT table.
type Experiment struct {
	ID            int64
	ApplicationID int64
	Name          string
	Fields        map[string]any
}

// Trial is one row of the TRIAL table. The profile statistics columns
// (node_count etc.) are stored in Fields like any other flexible column;
// convenience accessors cover the common ones.
type Trial struct {
	ID           int64
	ExperimentID int64
	Name         string
	Fields       map[string]any
}

// NodeCount returns the trial's node_count column (0 when absent).
func (t *Trial) NodeCount() int64 { return fieldInt(t.Fields, "node_count") }

// ContextsPerNode returns the trial's contexts_per_node column.
func (t *Trial) ContextsPerNode() int64 { return fieldInt(t.Fields, "contexts_per_node") }

// MaxThreadsPerContext returns the trial's max_threads_per_context column.
func (t *Trial) MaxThreadsPerContext() int64 { return fieldInt(t.Fields, "max_threads_per_context") }

func fieldInt(fields map[string]any, key string) int64 {
	switch v := fields[key].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	case float64:
		return int64(v)
	}
	return 0
}

// Metric is one row of the METRIC table.
type Metric struct {
	ID      int64
	TrialID int64
	Name    string
	Derived bool
}

// IntervalEvent is one row of the INTERVAL_EVENT table.
type IntervalEvent struct {
	ID      int64
	TrialID int64
	Name    string
	Group   string
}

// AtomicEvent is one row of the ATOMIC_EVENT table.
type AtomicEvent struct {
	ID      int64
	TrialID int64
	Name    string
	Group   string
}

// flexColumns returns the table's column names (lower-cased) other than
// the fixed id column, split into those the caller provided values for.
func flexColumns(conn godbc.Conn, table string, fixed map[string]bool, fields map[string]any) (cols []string, vals []any, err error) {
	infos, err := conn.MetaData().Columns(table)
	if err != nil {
		return nil, nil, err
	}
	known := make(map[string]bool, len(infos))
	for _, ci := range infos {
		known[strings.ToLower(ci.Name)] = true
	}
	for key := range fields {
		if !known[strings.ToLower(key)] {
			return nil, nil, fmt.Errorf("core: table %s has no column %q (add it with ALTER TABLE first)", table, key)
		}
	}
	keys := make([]string, 0, len(fields))
	for key := range fields {
		lower := strings.ToLower(key)
		if fixed[lower] {
			continue
		}
		keys = append(keys, lower)
	}
	sort.Strings(keys)
	for _, key := range keys {
		cols = append(cols, key)
		vals = append(vals, fields[key])
	}
	return cols, vals, nil
}

// loadFields populates a Fields map from a result row, skipping the fixed
// columns.
func loadFields(rows godbc.Rows, fixed map[string]bool) map[string]any {
	fields := make(map[string]any)
	for i, col := range rows.Columns() {
		lower := strings.ToLower(col)
		if fixed[lower] {
			continue
		}
		if v := rows.Value(i); v != nil {
			fields[lower] = v
		}
	}
	return fields
}
