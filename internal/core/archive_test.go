package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestArchiveExportImport(t *testing.T) {
	src := openSession(t)
	// Two applications, one with two experiments.
	app1 := &Application{Name: "alpha", Fields: map[string]any{"version": "1.0"}}
	if err := src.SaveApplication(app1); err != nil {
		t.Fatal(err)
	}
	src.SetApplication(app1)
	expA := &Experiment{Name: "expA"}
	src.SaveExperiment(expA)
	src.SetExperiment(expA)
	src.UploadTrial(sampleProfile("t1"), UploadOptions{})
	src.UploadTrial(sampleProfile("t2"), UploadOptions{})
	expB := &Experiment{Name: "expB", ApplicationID: app1.ID}
	src.SaveExperiment(expB)
	src.SetExperiment(expB)
	src.UploadTrial(sampleProfile("t3"), UploadOptions{})

	app2 := &Application{Name: "beta"}
	src.SaveApplication(app2)
	src.SetApplication(app2)
	expC := &Experiment{Name: "expC"}
	src.SaveExperiment(expC)
	src.SetExperiment(expC)
	src.UploadTrial(sampleProfile("t4"), UploadOptions{})

	// Export everything (clear the selection first).
	src.SetApplication(nil)
	dir := t.TempDir()
	m, err := ExportArchive(src, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Applications) != 2 {
		t.Fatalf("manifest apps: %+v", m)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "trial-*.xml"))
	if len(files) != 4 {
		t.Fatalf("trial files: %v", files)
	}

	// Import into a fresh database.
	dst := openSession(t)
	n, err := ImportArchive(dst, dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("imported %d trials", n)
	}
	apps, err := dst.ApplicationList()
	if err != nil || len(apps) != 2 {
		t.Fatalf("apps: %v %v", apps, err)
	}
	if apps[0].Fields["version"] != "1.0" {
		t.Fatalf("app fields lost: %v", apps[0].Fields)
	}
	dst.SetApplication(apps[0])
	exps, _ := dst.ExperimentList()
	if len(exps) != 2 {
		t.Fatalf("experiments: %v", exps)
	}
	dst.SetExperiment(exps[0])
	trials, _ := dst.TrialList()
	if len(trials) != 2 || trials[0].Name != "t1" {
		t.Fatalf("trials: %v", trials)
	}
	// Data intact: reload one trial and compare to the original.
	orig := sampleProfile("t1")
	got, err := dst.LoadTrial(trials[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.DataPoints() != orig.DataPoints() || got.NumThreads() != orig.NumThreads() {
		t.Fatalf("trial data: %d/%d points, %d/%d threads",
			got.DataPoints(), orig.DataPoints(), got.NumThreads(), orig.NumThreads())
	}

	// Idempotent-ish re-import: same apps/experiments reused, trials added.
	n, err = ImportArchive(dst, dir)
	if err != nil || n != 4 {
		t.Fatalf("second import: %d %v", n, err)
	}
	apps, _ = dst.ApplicationList()
	if len(apps) != 2 {
		t.Fatalf("apps duplicated: %v", apps)
	}
	dst.SetApplication(apps[0])
	dst.SetExperiment(nil)
	exps, _ = dst.ExperimentList()
	if len(exps) != 2 {
		t.Fatalf("experiments duplicated: %v", exps)
	}
}

func TestArchiveScopedExport(t *testing.T) {
	s := openSession(t)
	setupTrial(t, s, sampleProfile("scoped"))
	other := &Application{Name: "other"}
	s.SaveApplication(other)
	s.SetApplication(other)
	oexp := &Experiment{Name: "oe"}
	s.SaveExperiment(oexp)
	s.SetExperiment(oexp)
	s.UploadTrial(sampleProfile("unwanted"), UploadOptions{})

	// Select only the first application and export.
	app, _ := s.FindApplication("testapp")
	s.SetApplication(app)
	dir := t.TempDir()
	m, err := ExportArchive(s, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Applications) != 1 || m.Applications[0].Name != "testapp" {
		t.Fatalf("scoped manifest: %+v", m)
	}
}

func TestImportArchiveErrors(t *testing.T) {
	s := openSession(t)
	if _, err := ImportArchive(s, t.TempDir()); err == nil {
		t.Error("missing manifest accepted")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644)
	if _, err := ImportArchive(s, dir); err == nil {
		t.Error("bad manifest accepted")
	}
	os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"version": 9}`), 0o644)
	if _, err := ImportArchive(s, dir); err == nil {
		t.Error("future version accepted")
	}
	// Manifest referencing a missing trial file.
	os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{
		"version": 1,
		"applications": [{"name": "a", "experiments": [
			{"name": "e", "trials": [{"name": "t", "file": "nope.xml"}]}
		]}]
	}`), 0o644)
	if _, err := ImportArchive(s, dir); err == nil {
		t.Error("missing trial file accepted")
	}
}
