package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"perfdmf/internal/formats/xmlprof"
)

// Archive export/import: the paper's shared-repository story (§5.1: an
// archive "could be made available in one physical location for all
// analysts within an organization"). ExportArchive writes a portable
// directory — a JSON manifest of the application/experiment/trial tree
// plus one common-XML file per trial — and ImportArchive loads such a
// directory into any other PerfDMF database, regardless of back end.

// manifestFile is the archive's index file name.
const manifestFile = "manifest.json"

// Manifest is the portable archive index.
type Manifest struct {
	Version      int           `json:"version"`
	Applications []ManifestApp `json:"applications"`
}

// ManifestApp is one application with its experiments.
type ManifestApp struct {
	Name        string         `json:"name"`
	Fields      map[string]any `json:"fields,omitempty"`
	Experiments []ManifestExp  `json:"experiments"`
}

// ManifestExp is one experiment with its trials.
type ManifestExp struct {
	Name   string          `json:"name"`
	Fields map[string]any  `json:"fields,omitempty"`
	Trials []ManifestTrial `json:"trials"`
}

// ManifestTrial points at one trial's XML file.
type ManifestTrial struct {
	Name string `json:"name"`
	File string `json:"file"` // relative path of the XML export
}

// ExportArchive writes the whole database (or, when the session has an
// application/experiment selected, that subtree) to dir.
func ExportArchive(s *DataSession, dir string) (*Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	prevApp, prevExp, prevTrial := s.app, s.exp, s.trial
	defer func() {
		s.app, s.exp, s.trial = prevApp, prevExp, prevTrial
	}()

	var apps []*Application
	if prevApp != nil {
		apps = []*Application{prevApp}
	} else {
		var err error
		s.SetApplication(nil)
		apps, err = s.ApplicationList()
		if err != nil {
			return nil, err
		}
	}
	m := &Manifest{Version: 1}
	seq := 0
	for _, app := range apps {
		ma := ManifestApp{Name: app.Name, Fields: app.Fields}
		s.SetApplication(app)
		var exps []*Experiment
		if prevExp != nil && prevExp.ApplicationID == app.ID {
			exps = []*Experiment{prevExp}
		} else if prevExp != nil {
			continue
		} else {
			var err error
			exps, err = s.ExperimentList()
			if err != nil {
				return nil, err
			}
		}
		for _, exp := range exps {
			me := ManifestExp{Name: exp.Name, Fields: exp.Fields}
			s.SetExperiment(exp)
			trials, err := s.TrialList()
			if err != nil {
				return nil, err
			}
			for _, trial := range trials {
				p, err := s.LoadTrial(trial.ID)
				if err != nil {
					return nil, err
				}
				seq++
				file := fmt.Sprintf("trial-%04d.xml", seq)
				if err := xmlprof.Write(filepath.Join(dir, file), p); err != nil {
					return nil, err
				}
				me.Trials = append(me.Trials, ManifestTrial{Name: trial.Name, File: file})
			}
			ma.Experiments = append(ma.Experiments, me)
		}
		m.Applications = append(m.Applications, ma)
	}

	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), data, 0o644); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return m, nil
}

// ImportArchive loads an exported archive directory into the session's
// database. Applications and experiments are matched by name (created if
// absent); trials are always created anew. It returns the number of
// trials imported.
func ImportArchive(s *DataSession, dir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, fmt.Errorf("core: bad manifest: %w", err)
	}
	if m.Version != 1 {
		return 0, fmt.Errorf("core: unsupported archive version %d", m.Version)
	}
	prevApp, prevExp, prevTrial := s.app, s.exp, s.trial
	defer func() {
		s.app, s.exp, s.trial = prevApp, prevExp, prevTrial
	}()

	imported := 0
	for _, ma := range m.Applications {
		app, err := s.FindApplication(ma.Name)
		if err != nil {
			return imported, err
		}
		if app == nil {
			app = &Application{Name: ma.Name, Fields: ma.Fields}
			if app.Fields == nil {
				app.Fields = map[string]any{}
			}
			if err := s.SaveApplication(app); err != nil {
				return imported, err
			}
		}
		s.SetApplication(app)
		exps, err := s.ExperimentList()
		if err != nil {
			return imported, err
		}
		for _, me := range ma.Experiments {
			var exp *Experiment
			for _, e := range exps {
				if e.Name == me.Name {
					exp = e
					break
				}
			}
			if exp == nil {
				exp = &Experiment{Name: me.Name, Fields: me.Fields}
				if exp.Fields == nil {
					exp.Fields = map[string]any{}
				}
				if err := s.SaveExperiment(exp); err != nil {
					return imported, err
				}
			}
			s.SetExperiment(exp)
			for _, mt := range me.Trials {
				p, err := xmlprof.Read(filepath.Join(dir, mt.File))
				if err != nil {
					return imported, fmt.Errorf("core: trial %q: %w", mt.Name, err)
				}
				if _, err := s.UploadTrial(p, UploadOptions{TrialName: mt.Name}); err != nil {
					return imported, fmt.Errorf("core: trial %q: %w", mt.Name, err)
				}
				imported++
			}
		}
	}
	return imported, nil
}
