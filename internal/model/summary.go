package model

// Summary holds per-event aggregate data across a set of threads — the
// in-memory counterpart of the INTERVAL_TOTAL_SUMMARY and
// INTERVAL_MEAN_SUMMARY tables.
type Summary struct {
	// Events maps event ID to its aggregated data.
	Events map[int]*IntervalData
	// NumThreads is the thread count the mean was taken over.
	NumThreads int
}

// TotalSummary aggregates every interval event across all threads: sums of
// inclusive, exclusive, calls and subroutine counts per metric.
func (p *Profile) TotalSummary() *Summary {
	return p.summarize(p.Threads(), false)
}

// MeanSummary is TotalSummary divided by the number of threads. Matching
// PerfDMF, the divisor is the total thread count in the trial, including
// threads that never executed the event.
func (p *Profile) MeanSummary() *Summary {
	return p.summarize(p.Threads(), true)
}

// SummaryOf aggregates over an explicit thread subset (used by the
// node/context/thread selection filters).
func (p *Profile) SummaryOf(threads []*Thread, mean bool) *Summary {
	return p.summarize(threads, mean)
}

func (p *Profile) summarize(threads []*Thread, mean bool) *Summary {
	nm := len(p.metrics)
	s := &Summary{Events: make(map[int]*IntervalData), NumThreads: len(threads)}
	for _, th := range threads {
		for eid, d := range th.interval {
			agg := s.Events[eid]
			if agg == nil {
				agg = &IntervalData{PerMetric: make([]MetricData, nm)}
				s.Events[eid] = agg
			}
			agg.NumCalls += d.NumCalls
			agg.NumSubrs += d.NumSubrs
			for m := 0; m < nm && m < len(d.PerMetric); m++ {
				agg.PerMetric[m].Inclusive += d.PerMetric[m].Inclusive
				agg.PerMetric[m].Exclusive += d.PerMetric[m].Exclusive
			}
		}
	}
	if mean && len(threads) > 0 {
		n := float64(len(threads))
		for _, agg := range s.Events {
			agg.NumCalls /= n
			agg.NumSubrs /= n
			for m := range agg.PerMetric {
				agg.PerMetric[m].Inclusive /= n
				agg.PerMetric[m].Exclusive /= n
			}
		}
	}
	return s
}

// ExclusivePercent returns, for one thread and metric, each event's
// exclusive value as a percentage of the thread's total exclusive — the
// "exclusive percentage" column of INTERVAL_LOCATION_PROFILE.
func (p *Profile) ExclusivePercent(th *Thread, metric int) map[int]float64 {
	total := 0.0
	for _, d := range th.interval {
		if metric < len(d.PerMetric) {
			total += d.PerMetric[metric].Exclusive
		}
	}
	out := make(map[int]float64, len(th.interval))
	for eid, d := range th.interval {
		if total == 0 || metric >= len(d.PerMetric) {
			out[eid] = 0
			continue
		}
		out[eid] = 100 * d.PerMetric[metric].Exclusive / total
	}
	return out
}

// InclusivePercent returns each event's inclusive value as a percentage of
// the thread's maximum inclusive (conventionally the top-level timer).
func (p *Profile) InclusivePercent(th *Thread, metric int) map[int]float64 {
	max := 0.0
	for _, d := range th.interval {
		if metric < len(d.PerMetric) && d.PerMetric[metric].Inclusive > max {
			max = d.PerMetric[metric].Inclusive
		}
	}
	out := make(map[int]float64, len(th.interval))
	for eid, d := range th.interval {
		if max == 0 || metric >= len(d.PerMetric) {
			out[eid] = 0
			continue
		}
		out[eid] = 100 * d.PerMetric[metric].Inclusive / max
	}
	return out
}

// MinMeanMax returns, for one event and metric, the minimum, mean and
// maximum exclusive value across all threads that executed the event.
// It reports ok=false when no thread has data for the event.
func (p *Profile) MinMeanMax(eventID, metric int, inclusive bool) (min, mean, max float64, ok bool) {
	n := 0
	for _, th := range p.threads {
		d := th.interval[eventID]
		if d == nil || metric >= len(d.PerMetric) {
			continue
		}
		v := d.PerMetric[metric].Exclusive
		if inclusive {
			v = d.PerMetric[metric].Inclusive
		}
		if n == 0 || v < min {
			min = v
		}
		if n == 0 || v > max {
			max = v
		}
		mean += v
		n++
	}
	if n == 0 {
		return 0, 0, 0, false
	}
	return min, mean / float64(n), max, true
}
