package model

import "fmt"

// MetricValues gives a derivation function access to one event's
// measurements on one thread, keyed by metric name.
type MetricValues struct {
	p  *Profile
	d  *IntervalData
	th *Thread
}

// Inclusive returns the inclusive value of the named metric (0 if absent).
func (mv MetricValues) Inclusive(metric string) float64 {
	id := mv.p.MetricID(metric)
	if id < 0 || id >= len(mv.d.PerMetric) {
		return 0
	}
	return mv.d.PerMetric[id].Inclusive
}

// Exclusive returns the exclusive value of the named metric (0 if absent).
func (mv MetricValues) Exclusive(metric string) float64 {
	id := mv.p.MetricID(metric)
	if id < 0 || id >= len(mv.d.PerMetric) {
		return 0
	}
	return mv.d.PerMetric[id].Exclusive
}

// Calls returns the event's call count on this thread.
func (mv MetricValues) Calls() float64 { return mv.d.NumCalls }

// DeriveMetric adds a new metric computed per (thread, event) from existing
// metrics — the mechanism behind derived data such as FLOP/s =
// PAPI_FP_OPS / TIME (paper §3.2, §4). The function returns the new
// inclusive and exclusive values. The new metric is flagged Derived so the
// database layer can record its provenance.
func (p *Profile) DeriveMetric(name string, f func(mv MetricValues) (incl, excl float64)) (int, error) {
	if p.MetricID(name) >= 0 {
		return 0, fmt.Errorf("model: metric %q already exists", name)
	}
	id := p.addDerivedMetric(name)
	for _, th := range p.threads {
		for _, d := range th.interval {
			incl, excl := f(MetricValues{p: p, d: d, th: th})
			d.PerMetric[id] = MetricData{Inclusive: incl, Exclusive: excl}
		}
	}
	return id, nil
}

// Ratio is a convenience derivation: numerator/denominator of exclusive
// and inclusive values, with zero denominators yielding zero. scale is
// applied to both results (e.g. 1e6 to convert per-microsecond to per-
// second rates).
func Ratio(numerator, denominator string, scale float64) func(MetricValues) (float64, float64) {
	return func(mv MetricValues) (float64, float64) {
		var incl, excl float64
		if d := mv.Inclusive(denominator); d != 0 {
			incl = scale * mv.Inclusive(numerator) / d
		}
		if d := mv.Exclusive(denominator); d != 0 {
			excl = scale * mv.Exclusive(numerator) / d
		}
		return incl, excl
	}
}
