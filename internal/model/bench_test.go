package model

import (
	"fmt"
	"testing"
)

func benchProfile(threads, events, metrics int) *Profile {
	p := New("bench")
	for m := 0; m < metrics; m++ {
		p.AddMetric(fmt.Sprintf("M%d", m))
	}
	evs := make([]*IntervalEvent, events)
	for e := range evs {
		evs[e] = p.AddIntervalEvent(fmt.Sprintf("event-%d", e), "G")
	}
	for t := 0; t < threads; t++ {
		th := p.Thread(t, 0, 0)
		for _, e := range evs {
			d := th.IntervalData(e.ID, metrics)
			d.NumCalls = 10
			for m := 0; m < metrics; m++ {
				d.PerMetric[m] = MetricData{Inclusive: float64(t + m), Exclusive: float64(t)}
			}
		}
	}
	return p
}

func BenchmarkTotalSummary(b *testing.B) {
	p := benchProfile(512, 101, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := p.TotalSummary()
		if len(s.Events) != 101 {
			b.Fatal("wrong summary")
		}
	}
}

func BenchmarkMinMeanMax(b *testing.B) {
	p := benchProfile(1024, 20, 1)
	e := p.IntervalEvents()[5]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := p.MinMeanMax(e.ID, 0, false); !ok {
			b.Fatal("no data")
		}
	}
}

func BenchmarkDeriveMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := benchProfile(128, 50, 2)
		b.StartTimer()
		if _, err := p.DeriveMetric("R", Ratio("M1", "M0", 1)); err != nil {
			b.Fatal(err)
		}
	}
}
