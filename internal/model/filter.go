package model

// Selection is the node/context/thread filter from the paper's DataSession
// API ("setting node, context, and thread parameters"). A value of All (-1)
// on any axis leaves that axis unconstrained.
type Selection struct {
	Node    int
	Context int
	Thread  int
}

// All leaves a selection axis unconstrained.
const All = -1

// SelectAll matches every thread.
var SelectAll = Selection{Node: All, Context: All, Thread: All}

// Matches reports whether a thread ID satisfies the selection.
func (s Selection) Matches(id ThreadID) bool {
	if s.Node != All && id.Node != s.Node {
		return false
	}
	if s.Context != All && id.Context != s.Context {
		return false
	}
	if s.Thread != All && id.Thread != s.Thread {
		return false
	}
	return true
}

// Select returns the threads matching the selection, in sorted order.
func (p *Profile) Select(s Selection) []*Thread {
	var out []*Thread
	for _, th := range p.Threads() {
		if s.Matches(th.ID) {
			out = append(out, th)
		}
	}
	return out
}
