package model

import "strings"

// TAU callpath profiles record events whose names are full call paths,
// "main() => solve() => MPI_Send()", conventionally in the TAU_CALLPATH
// group alongside the flat events. ParaProf reconstructs call trees from
// them; this file is that reconstruction for the common model.

// CallpathSep separates frames in a TAU callpath event name.
const CallpathSep = " => "

// IsCallpath reports whether an event name is a callpath (contains at
// least two frames).
func IsCallpath(name string) bool {
	return strings.Contains(name, CallpathSep)
}

// CallpathFrames splits a callpath event name into its frames, trimming
// surrounding whitespace from each.
func CallpathFrames(name string) []string {
	parts := strings.Split(name, CallpathSep)
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// CallpathLeaf returns the last frame of a callpath name (the name itself
// when it is flat).
func CallpathLeaf(name string) string {
	frames := CallpathFrames(name)
	return frames[len(frames)-1]
}

// CallpathParent returns the path with the last frame removed, or "" for
// a flat name.
func CallpathParent(name string) string {
	i := strings.LastIndex(name, CallpathSep)
	if i < 0 {
		return ""
	}
	return name[:i]
}

// CallNode is one node of a reconstructed call tree.
type CallNode struct {
	Name      string // this frame's name
	Path      string // full path from the root
	EventID   int    // the callpath event supplying this node's data, or -1
	Inclusive float64
	Exclusive float64
	Calls     float64
	Children  []*CallNode
}

// CallTree reconstructs a thread's call tree for one metric from its
// callpath events. Flat events (no separator) become roots; deeper paths
// attach under their parents, with missing interior nodes synthesized
// (EventID -1). The returned virtual root has Name "" and aggregates every
// top-level frame; ok is false when the thread has no callpath events at
// all.
func (p *Profile) CallTree(th *Thread, metric int) (root *CallNode, ok bool) {
	root = &CallNode{Name: "", EventID: -1}
	nodes := map[string]*CallNode{"": root}
	saw := false

	// ensure returns the node for a path, creating interior nodes.
	var ensure func(path string) *CallNode
	ensure = func(path string) *CallNode {
		if n, exists := nodes[path]; exists {
			return n
		}
		parent := ensure(CallpathParent(path))
		n := &CallNode{Name: CallpathLeaf(path), Path: path, EventID: -1}
		parent.Children = append(parent.Children, n)
		nodes[path] = n
		return n
	}

	events := p.IntervalEvents()
	th.EachInterval(func(eid int, d *IntervalData) {
		name := events[eid].Name
		if !IsCallpath(name) {
			// Flat events participate only if a callpath version exists
			// below them; they are added lazily by ensure. But a flat event
			// that is itself a callpath root should carry its own data.
			return
		}
		saw = true
		// Normalize the path so frame spacing does not split nodes.
		frames := CallpathFrames(name)
		path := strings.Join(frames, CallpathSep)
		n := ensure(path)
		n.EventID = eid
		if metric < len(d.PerMetric) {
			n.Inclusive = d.PerMetric[metric].Inclusive
			n.Exclusive = d.PerMetric[metric].Exclusive
		}
		n.Calls = d.NumCalls
	})
	if !saw {
		return nil, false
	}

	// Attach data from flat events to the root-level frames that lack it.
	th.EachInterval(func(eid int, d *IntervalData) {
		name := events[eid].Name
		if IsCallpath(name) {
			return
		}
		if n, exists := nodes[strings.TrimSpace(name)]; exists && n.EventID == -1 {
			n.EventID = eid
			if metric < len(d.PerMetric) {
				n.Inclusive = d.PerMetric[metric].Inclusive
				n.Exclusive = d.PerMetric[metric].Exclusive
			}
			n.Calls = d.NumCalls
		}
	})

	// Fill interior nodes without their own event: inclusive is the sum of
	// children (an underestimate TAU itself makes when paths are truncated).
	var fill func(n *CallNode) float64
	fill = func(n *CallNode) float64 {
		sum := 0.0
		for _, c := range n.Children {
			sum += fill(c)
		}
		if n.EventID == -1 && n.Path != "" {
			n.Inclusive = sum
		}
		return n.Inclusive
	}
	total := 0.0
	for _, c := range root.Children {
		total += fill(c)
	}
	root.Inclusive = total
	return root, true
}

// HotPath follows the heaviest-inclusive child from the root down to a
// leaf — the first thing an analyst asks of a call tree.
func HotPath(root *CallNode) []*CallNode {
	var out []*CallNode
	n := root
	for len(n.Children) > 0 {
		best := n.Children[0]
		for _, c := range n.Children[1:] {
			if c.Inclusive > best.Inclusive {
				best = c
			}
		}
		out = append(out, best)
		n = best
	}
	return out
}

// WalkCalls visits the tree depth-first in child order.
func WalkCalls(root *CallNode, fn func(n *CallNode, depth int)) {
	var walk func(n *CallNode, depth int)
	walk = func(n *CallNode, depth int) {
		fn(n, depth)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, c := range root.Children {
		walk(c, 0)
	}
}
