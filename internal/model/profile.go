// Package model defines PerfDMF's common parallel profile representation
// (paper §3.1, §4): performance data organized by node, context, thread,
// metric and event. Every profile format parser targets this model, the
// database layer stores and loads it, and the analysis toolkit consumes it.
//
// Interval events carry cumulative timer/counter data (inclusive,
// exclusive, calls, subroutines) per metric; atomic events carry
// sample statistics (count, min, max, mean, sum of squares). Total and
// mean summaries across all threads correspond to the paper's
// INTERVAL_TOTAL_SUMMARY and INTERVAL_MEAN_SUMMARY tables.
package model

import (
	"fmt"
	"math"
	"sort"
)

// Metric identifies one measured quantity (wall-clock time, PAPI counter,
// or a derived metric).
type Metric struct {
	ID      int
	Name    string
	Derived bool
}

// IntervalEvent is a named code region (function, loop, basic block) with
// an event group (e.g. "MPI", "computation").
type IntervalEvent struct {
	ID    int
	Name  string
	Group string
}

// AtomicEvent is a user-defined counter sampled at instrumentation points.
type AtomicEvent struct {
	ID    int
	Name  string
	Group string
}

// IntervalData is the cumulative profile of one interval event on one
// thread: call counts plus one PerMetric entry per trial metric.
type IntervalData struct {
	NumCalls  float64
	NumSubrs  float64
	PerMetric []MetricData // indexed by Metric.ID
}

// MetricData is the (inclusive, exclusive) pair for one metric.
type MetricData struct {
	Inclusive float64
	Exclusive float64
}

// InclusivePerCall returns inclusive/calls for metric m, or 0 when the
// event was never called.
func (d *IntervalData) InclusivePerCall(m int) float64 {
	if d.NumCalls == 0 {
		return 0
	}
	return d.PerMetric[m].Inclusive / d.NumCalls
}

// AtomicData is the sample statistics of one atomic event on one thread.
type AtomicData struct {
	SampleCount int64
	Maximum     float64
	Minimum     float64
	Mean        float64
	SumSqr      float64 // sum of squared samples, for standard deviation
}

// StdDev returns the population standard deviation of the samples.
func (a *AtomicData) StdDev() float64 {
	if a.SampleCount == 0 {
		return 0
	}
	n := float64(a.SampleCount)
	v := a.SumSqr/n - a.Mean*a.Mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// ThreadID locates one thread of execution.
type ThreadID struct {
	Node    int
	Context int
	Thread  int
}

// Less orders thread IDs by node, then context, then thread.
func (t ThreadID) Less(o ThreadID) bool {
	if t.Node != o.Node {
		return t.Node < o.Node
	}
	if t.Context != o.Context {
		return t.Context < o.Context
	}
	return t.Thread < o.Thread
}

func (t ThreadID) String() string {
	return fmt.Sprintf("%d,%d,%d", t.Node, t.Context, t.Thread)
}

// Thread holds one thread's interval and atomic profiles, keyed by event ID.
type Thread struct {
	ID       ThreadID
	interval map[int]*IntervalData
	atomic   map[int]*AtomicData
}

// Profile is the common in-memory representation of one trial's parallel
// profile. The zero value is not usable; call New.
type Profile struct {
	Name    string
	Meta    map[string]string // trial-level metadata (problem size, date, ...)
	metrics []Metric
	events  []*IntervalEvent
	atomics []*AtomicEvent

	eventByName  map[string]*IntervalEvent
	atomicByName map[string]*AtomicEvent
	metricByName map[string]int

	threads map[ThreadID]*Thread
	order   []ThreadID // insertion-ordered; sorted lazily
	sorted  bool
}

// New returns an empty profile.
func New(name string) *Profile {
	return &Profile{
		Name:         name,
		Meta:         make(map[string]string),
		eventByName:  make(map[string]*IntervalEvent),
		atomicByName: make(map[string]*AtomicEvent),
		metricByName: make(map[string]int),
		threads:      make(map[ThreadID]*Thread),
	}
}

// AddMetric registers a metric name, returning its ID. Adding an existing
// name returns the existing ID.
func (p *Profile) AddMetric(name string) int {
	if id, ok := p.metricByName[name]; ok {
		return id
	}
	id := len(p.metrics)
	p.metrics = append(p.metrics, Metric{ID: id, Name: name})
	p.metricByName[name] = id
	p.growMetricData()
	return id
}

// addDerivedMetric registers a metric flagged as derived.
func (p *Profile) addDerivedMetric(name string) int {
	id := p.AddMetric(name)
	p.metrics[id].Derived = true
	return id
}

// SetDerived flags an existing metric as derived (used when re-importing
// profiles whose serialized form records provenance).
func (p *Profile) SetDerived(id int) {
	if id >= 0 && id < len(p.metrics) {
		p.metrics[id].Derived = true
	}
}

// growMetricData widens every thread's interval data to the current metric
// count.
func (p *Profile) growMetricData() {
	n := len(p.metrics)
	for _, th := range p.threads {
		for _, d := range th.interval {
			for len(d.PerMetric) < n {
				d.PerMetric = append(d.PerMetric, MetricData{})
			}
		}
	}
}

// Metrics returns the trial's metrics in ID order.
func (p *Profile) Metrics() []Metric { return p.metrics }

// MetricID returns the ID of a metric by name, or -1.
func (p *Profile) MetricID(name string) int {
	if id, ok := p.metricByName[name]; ok {
		return id
	}
	return -1
}

// AddIntervalEvent registers an interval event, returning the existing one
// when the name is already present (the group is kept from first sight).
func (p *Profile) AddIntervalEvent(name, group string) *IntervalEvent {
	if e, ok := p.eventByName[name]; ok {
		return e
	}
	e := &IntervalEvent{ID: len(p.events), Name: name, Group: group}
	p.events = append(p.events, e)
	p.eventByName[name] = e
	return e
}

// IntervalEvents returns the interval events in ID order.
func (p *Profile) IntervalEvents() []*IntervalEvent { return p.events }

// FindIntervalEvent returns the named event, or nil.
func (p *Profile) FindIntervalEvent(name string) *IntervalEvent {
	return p.eventByName[name]
}

// AddAtomicEvent registers an atomic (user-defined) event.
func (p *Profile) AddAtomicEvent(name, group string) *AtomicEvent {
	if e, ok := p.atomicByName[name]; ok {
		return e
	}
	e := &AtomicEvent{ID: len(p.atomics), Name: name, Group: group}
	p.atomics = append(p.atomics, e)
	p.atomicByName[name] = e
	return e
}

// AtomicEvents returns the atomic events in ID order.
func (p *Profile) AtomicEvents() []*AtomicEvent { return p.atomics }

// FindAtomicEvent returns the named atomic event, or nil.
func (p *Profile) FindAtomicEvent(name string) *AtomicEvent {
	return p.atomicByName[name]
}

// Thread returns the thread with the given ID, creating it if needed.
func (p *Profile) Thread(node, context, thread int) *Thread {
	id := ThreadID{Node: node, Context: context, Thread: thread}
	th := p.threads[id]
	if th == nil {
		th = &Thread{
			ID:       id,
			interval: make(map[int]*IntervalData),
			atomic:   make(map[int]*AtomicData),
		}
		p.threads[id] = th
		p.order = append(p.order, id)
		p.sorted = false
	}
	return th
}

// FindThread returns an existing thread, or nil.
func (p *Profile) FindThread(node, context, thread int) *Thread {
	return p.threads[ThreadID{Node: node, Context: context, Thread: thread}]
}

// Threads returns all threads sorted by (node, context, thread).
func (p *Profile) Threads() []*Thread {
	if !p.sorted {
		sort.Slice(p.order, func(i, j int) bool { return p.order[i].Less(p.order[j]) })
		p.sorted = true
	}
	out := make([]*Thread, len(p.order))
	for i, id := range p.order {
		out[i] = p.threads[id]
	}
	return out
}

// NumThreads returns the total number of threads.
func (p *Profile) NumThreads() int { return len(p.threads) }

// NodeCount returns the number of distinct nodes.
func (p *Profile) NodeCount() int {
	seen := make(map[int]bool)
	for id := range p.threads {
		seen[id.Node] = true
	}
	return len(seen)
}

// ContextsPerNode returns the maximum number of contexts on any node.
func (p *Profile) ContextsPerNode() int {
	per := make(map[int]map[int]bool)
	for id := range p.threads {
		if per[id.Node] == nil {
			per[id.Node] = make(map[int]bool)
		}
		per[id.Node][id.Context] = true
	}
	max := 0
	for _, ctxs := range per {
		if len(ctxs) > max {
			max = len(ctxs)
		}
	}
	return max
}

// MaxThreadsPerContext returns the maximum thread count in any context.
func (p *Profile) MaxThreadsPerContext() int {
	per := make(map[[2]int]int)
	for id := range p.threads {
		per[[2]int{id.Node, id.Context}]++
	}
	max := 0
	for _, n := range per {
		if n > max {
			max = n
		}
	}
	return max
}

// DataPoints returns the number of (thread, event, metric) interval
// measurements in the profile — the unit the paper counts when it reports
// the 16K-processor Miranda trial as 1.6 million data points.
func (p *Profile) DataPoints() int {
	n := 0
	for _, th := range p.threads {
		n += len(th.interval)
	}
	return n * len(p.metrics)
}

// IntervalData returns the thread's profile for event (by ID), creating a
// zero entry if needed.
func (t *Thread) IntervalData(eventID, numMetrics int) *IntervalData {
	d := t.interval[eventID]
	if d == nil {
		d = &IntervalData{PerMetric: make([]MetricData, numMetrics)}
		t.interval[eventID] = d
	}
	for len(d.PerMetric) < numMetrics {
		d.PerMetric = append(d.PerMetric, MetricData{})
	}
	return d
}

// FindIntervalData returns the thread's profile for event, or nil.
func (t *Thread) FindIntervalData(eventID int) *IntervalData {
	return t.interval[eventID]
}

// EachInterval visits the thread's interval data in event-ID order.
func (t *Thread) EachInterval(fn func(eventID int, d *IntervalData)) {
	ids := make([]int, 0, len(t.interval))
	for id := range t.interval {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fn(id, t.interval[id])
	}
}

// AtomicData returns the thread's statistics for an atomic event, creating
// a zero entry if needed.
func (t *Thread) AtomicData(eventID int) *AtomicData {
	d := t.atomic[eventID]
	if d == nil {
		d = &AtomicData{}
		t.atomic[eventID] = d
	}
	return d
}

// FindAtomicData returns the thread's statistics for an atomic event, or nil.
func (t *Thread) FindAtomicData(eventID int) *AtomicData {
	return t.atomic[eventID]
}

// EachAtomic visits the thread's atomic data in event-ID order.
func (t *Thread) EachAtomic(fn func(eventID int, d *AtomicData)) {
	ids := make([]int, 0, len(t.atomic))
	for id := range t.atomic {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fn(id, t.atomic[id])
	}
}

// SetIntervalData is a convenience for parsers: it registers the event and
// metric and records the measurement in one call.
func (p *Profile) SetIntervalData(th *Thread, eventName, group, metricName string,
	inclusive, exclusive, calls, subrs float64) {
	e := p.AddIntervalEvent(eventName, group)
	m := p.AddMetric(metricName)
	d := th.IntervalData(e.ID, len(p.metrics))
	d.PerMetric[m] = MetricData{Inclusive: inclusive, Exclusive: exclusive}
	if calls != 0 {
		d.NumCalls = calls
	}
	if subrs != 0 {
		d.NumSubrs = subrs
	}
}

// Validate checks internal consistency: every thread's interval data must
// be as wide as the metric list, exclusive must not exceed inclusive
// (within rounding), and event IDs must be in range.
func (p *Profile) Validate() error {
	nm := len(p.metrics)
	for _, th := range p.threads {
		for eid, d := range th.interval {
			if eid < 0 || eid >= len(p.events) {
				return fmt.Errorf("model: thread %s references unknown event %d", th.ID, eid)
			}
			if len(d.PerMetric) != nm {
				return fmt.Errorf("model: thread %s event %q has %d metric slots, want %d",
					th.ID, p.events[eid].Name, len(d.PerMetric), nm)
			}
			for m, md := range d.PerMetric {
				if md.Exclusive > md.Inclusive*(1+1e-9)+1e-9 {
					return fmt.Errorf("model: thread %s event %q metric %q: exclusive %g > inclusive %g",
						th.ID, p.events[eid].Name, p.metrics[m].Name, md.Exclusive, md.Inclusive)
				}
			}
		}
		for eid := range th.atomic {
			if eid < 0 || eid >= len(p.atomics) {
				return fmt.Errorf("model: thread %s references unknown atomic event %d", th.ID, eid)
			}
		}
	}
	return nil
}
