package model

import (
	"math"
	"testing"
	"testing/quick"
)

// buildSample creates a 2-node × 2-thread profile with two events and two
// metrics, with deterministic values.
func buildSample() *Profile {
	p := New("sample")
	timeID := p.AddMetric("TIME")
	fpID := p.AddMetric("PAPI_FP_OPS")
	main := p.AddIntervalEvent("main", "TAU_DEFAULT")
	comp := p.AddIntervalEvent("compute", "computation")
	for n := 0; n < 2; n++ {
		for t := 0; t < 2; t++ {
			th := p.Thread(n, 0, t)
			rank := float64(n*2 + t)
			d := th.IntervalData(main.ID, 2)
			d.NumCalls = 1
			d.NumSubrs = 10
			d.PerMetric[timeID] = MetricData{Inclusive: 100 + rank, Exclusive: 10}
			d.PerMetric[fpID] = MetricData{Inclusive: 1000, Exclusive: 100}
			d2 := th.IntervalData(comp.ID, 2)
			d2.NumCalls = 5
			d2.PerMetric[timeID] = MetricData{Inclusive: 90 + rank, Exclusive: 90 + rank}
			d2.PerMetric[fpID] = MetricData{Inclusive: 900, Exclusive: 900}
		}
	}
	return p
}

func TestProfileBasics(t *testing.T) {
	p := buildSample()
	if p.NumThreads() != 4 || p.NodeCount() != 2 {
		t.Fatalf("threads=%d nodes=%d", p.NumThreads(), p.NodeCount())
	}
	if p.ContextsPerNode() != 1 || p.MaxThreadsPerContext() != 2 {
		t.Fatalf("ctx=%d thr=%d", p.ContextsPerNode(), p.MaxThreadsPerContext())
	}
	if got := p.DataPoints(); got != 4*2*2 {
		t.Fatalf("datapoints=%d", got)
	}
	if p.MetricID("TIME") != 0 || p.MetricID("nosuch") != -1 {
		t.Fatal("MetricID lookup")
	}
	if p.AddMetric("TIME") != 0 {
		t.Fatal("AddMetric not idempotent")
	}
	if p.FindIntervalEvent("compute") == nil || p.FindIntervalEvent("nope") != nil {
		t.Fatal("FindIntervalEvent")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestThreadsSorted(t *testing.T) {
	p := New("t")
	p.Thread(1, 0, 1)
	p.Thread(0, 1, 0)
	p.Thread(0, 0, 5)
	p.Thread(1, 0, 0)
	ths := p.Threads()
	prev := ThreadID{Node: -1}
	for _, th := range ths {
		if th.ID.Less(prev) {
			t.Fatalf("threads out of order: %v", ths)
		}
		prev = th.ID
	}
}

func TestLateMetricWidensData(t *testing.T) {
	p := New("t")
	p.AddMetric("TIME")
	e := p.AddIntervalEvent("f", "")
	th := p.Thread(0, 0, 0)
	d := th.IntervalData(e.ID, 1)
	d.PerMetric[0] = MetricData{Inclusive: 5, Exclusive: 5}
	p.AddMetric("CYCLES")
	if len(d.PerMetric) != 2 {
		t.Fatalf("PerMetric width = %d after late AddMetric", len(d.PerMetric))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSummaries(t *testing.T) {
	p := buildSample()
	comp := p.FindIntervalEvent("compute")
	total := p.TotalSummary()
	agg := total.Events[comp.ID]
	// Exclusive TIME: (90+0)+(90+1)+(90+2)+(90+3) = 366.
	if agg.PerMetric[0].Exclusive != 366 {
		t.Fatalf("total exclusive = %g", agg.PerMetric[0].Exclusive)
	}
	if agg.NumCalls != 20 {
		t.Fatalf("total calls = %g", agg.NumCalls)
	}
	mean := p.MeanSummary()
	magg := mean.Events[comp.ID]
	if magg.PerMetric[0].Exclusive != 366.0/4 {
		t.Fatalf("mean exclusive = %g", magg.PerMetric[0].Exclusive)
	}
	if mean.NumThreads != 4 {
		t.Fatalf("mean threads = %d", mean.NumThreads)
	}
}

func TestMinMeanMax(t *testing.T) {
	p := buildSample()
	comp := p.FindIntervalEvent("compute")
	min, mean, max, ok := p.MinMeanMax(comp.ID, 0, false)
	if !ok || min != 90 || max != 93 || mean != 91.5 {
		t.Fatalf("min/mean/max = %g/%g/%g ok=%v", min, mean, max, ok)
	}
	_, _, _, ok = p.MinMeanMax(999, 0, false)
	if ok {
		t.Fatal("MinMeanMax on missing event")
	}
	// Inclusive variant.
	min, _, max, ok = p.MinMeanMax(comp.ID, 0, true)
	if !ok || min != 90 || max != 93 {
		t.Fatalf("inclusive: %g %g", min, max)
	}
}

func TestPercentages(t *testing.T) {
	p := buildSample()
	th := p.FindThread(0, 0, 0)
	main := p.FindIntervalEvent("main")
	comp := p.FindIntervalEvent("compute")
	ex := p.ExclusivePercent(th, 0)
	// exclusive: main=10, compute=90 → 10% and 90%.
	if math.Abs(ex[main.ID]-10) > 1e-9 || math.Abs(ex[comp.ID]-90) > 1e-9 {
		t.Fatalf("exclusive%%: %v", ex)
	}
	in := p.InclusivePercent(th, 0)
	if math.Abs(in[main.ID]-100) > 1e-9 {
		t.Fatalf("inclusive%% of top: %v", in[main.ID])
	}
	if in[comp.ID] >= 100 || in[comp.ID] <= 0 {
		t.Fatalf("inclusive%% of inner: %v", in[comp.ID])
	}
}

func TestSelection(t *testing.T) {
	p := buildSample()
	if got := len(p.Select(SelectAll)); got != 4 {
		t.Fatalf("SelectAll: %d", got)
	}
	if got := len(p.Select(Selection{Node: 1, Context: All, Thread: All})); got != 2 {
		t.Fatalf("node filter: %d", got)
	}
	if got := len(p.Select(Selection{Node: 1, Context: 0, Thread: 1})); got != 1 {
		t.Fatalf("exact filter: %d", got)
	}
	if got := len(p.Select(Selection{Node: 9, Context: All, Thread: All})); got != 0 {
		t.Fatalf("empty filter: %d", got)
	}
	// Summary over a selection.
	sub := p.Select(Selection{Node: 0, Context: All, Thread: All})
	s := p.SummaryOf(sub, false)
	comp := p.FindIntervalEvent("compute")
	if s.Events[comp.ID].PerMetric[0].Exclusive != 90+91 {
		t.Fatalf("selection summary: %g", s.Events[comp.ID].PerMetric[0].Exclusive)
	}
}

func TestDeriveMetric(t *testing.T) {
	p := buildSample()
	id, err := p.DeriveMetric("FLOPS", Ratio("PAPI_FP_OPS", "TIME", 1))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Metrics()[id].Derived {
		t.Fatal("derived flag not set")
	}
	th := p.FindThread(0, 0, 0)
	comp := p.FindIntervalEvent("compute")
	d := th.FindIntervalData(comp.ID)
	want := 900.0 / 90.0
	if d.PerMetric[id].Exclusive != want {
		t.Fatalf("derived exclusive = %g want %g", d.PerMetric[id].Exclusive, want)
	}
	// Duplicate name rejected.
	if _, err := p.DeriveMetric("FLOPS", Ratio("PAPI_FP_OPS", "TIME", 1)); err == nil {
		t.Fatal("duplicate derived metric accepted")
	}
	if err := p.Validate(); err == nil {
		// FLOPS excl can exceed incl (rates are not cumulative); Validate
		// intentionally checks only raw cumulative shape, so derived
		// metrics may trip it. Accept either outcome but exercise the path.
		_ = err
	}
}

func TestAtomicEvents(t *testing.T) {
	p := New("t")
	ae := p.AddAtomicEvent("Message size", "MPI")
	th := p.Thread(0, 0, 0)
	d := th.AtomicData(ae.ID)
	d.SampleCount = 4
	d.Minimum = 1
	d.Maximum = 7
	d.Mean = 4
	d.SumSqr = 1 + 9 + 25 + 49 // samples 1,3,5,7
	want := math.Sqrt(84.0/4 - 16)
	if got := d.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stddev = %g want %g", got, want)
	}
	if p.FindAtomicEvent("Message size") != ae {
		t.Fatal("FindAtomicEvent")
	}
	if (&AtomicData{}).StdDev() != 0 {
		t.Fatal("stddev of empty")
	}
	var count int
	th.EachAtomic(func(eventID int, _ *AtomicData) { count++ })
	if count != 1 {
		t.Fatal("EachAtomic")
	}
}

func TestValidateFailures(t *testing.T) {
	p := New("t")
	p.AddMetric("TIME")
	e := p.AddIntervalEvent("f", "")
	th := p.Thread(0, 0, 0)
	d := th.IntervalData(e.ID, 1)
	d.PerMetric[0] = MetricData{Inclusive: 1, Exclusive: 2}
	if err := p.Validate(); err == nil {
		t.Fatal("exclusive > inclusive accepted")
	}
}

func TestSetIntervalDataConvenience(t *testing.T) {
	p := New("t")
	th := p.Thread(0, 0, 0)
	p.SetIntervalData(th, "MPI_Send()", "MPI", "TIME", 10, 10, 100, 0)
	p.SetIntervalData(th, "MPI_Send()", "MPI", "PAPI_L1_DCM", 55, 55, 100, 0)
	e := p.FindIntervalEvent("MPI_Send()")
	d := th.FindIntervalData(e.ID)
	if d.NumCalls != 100 || len(d.PerMetric) != 2 || d.PerMetric[1].Inclusive != 55 {
		t.Fatalf("convenience set: %+v", d)
	}
	if d.InclusivePerCall(0) != 0.1 {
		t.Fatalf("per call: %g", d.InclusivePerCall(0))
	}
}

// Property: total summary equals the sum of per-thread values for any
// random assignment of measurements.
func TestSummaryAdditive(t *testing.T) {
	f := func(vals []float64) bool {
		p := New("q")
		m := p.AddMetric("TIME")
		e := p.AddIntervalEvent("f", "")
		var want float64
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes bounded so the expected sum cannot overflow.
			v = math.Mod(math.Abs(v), 1e9)
			th := p.Thread(i, 0, 0)
			d := th.IntervalData(e.ID, 1)
			d.PerMetric[m] = MetricData{Inclusive: v, Exclusive: v}
			want += v
		}
		s := p.TotalSummary()
		if len(vals) == 0 {
			return len(s.Events) == 0
		}
		agg := s.Events[e.ID]
		if agg == nil {
			return want == 0
		}
		got := agg.PerMetric[m].Inclusive
		return math.Abs(got-want) <= 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
