package model

import (
	"strings"
	"testing"
)

func TestCallpathHelpers(t *testing.T) {
	if !IsCallpath("main() => foo()") || IsCallpath("main()") {
		t.Fatal("IsCallpath")
	}
	frames := CallpathFrames("main() =>  foo() => bar()")
	if len(frames) != 3 || frames[1] != "foo()" {
		t.Fatalf("frames: %v", frames)
	}
	if CallpathLeaf("a => b => c") != "c" || CallpathLeaf("solo") != "solo" {
		t.Fatal("leaf")
	}
	if CallpathParent("a => b => c") != "a => b" || CallpathParent("solo") != "" {
		t.Fatal("parent")
	}
}

// callpathProfile builds the canonical TAU shape: flat events plus
// TAU_CALLPATH events.
func callpathProfile() *Profile {
	p := New("cp")
	m := p.AddMetric("TIME")
	th := p.Thread(0, 0, 0)
	set := func(name, group string, incl, excl, calls float64) {
		e := p.AddIntervalEvent(name, group)
		d := th.IntervalData(e.ID, 1)
		d.NumCalls = calls
		d.PerMetric[m] = MetricData{Inclusive: incl, Exclusive: excl}
	}
	// Flat profile.
	set("main()", "TAU_DEFAULT", 100, 5, 1)
	set("solve()", "TAU_USER", 80, 20, 10)
	set("MPI_Send()", "MPI", 30, 30, 200)
	set("io()", "TAU_USER", 15, 15, 3)
	// Callpath events.
	set("main() => solve()", "TAU_CALLPATH", 80, 20, 10)
	set("main() => solve() => MPI_Send()", "TAU_CALLPATH", 28, 28, 180)
	set("main() => io()", "TAU_CALLPATH", 15, 15, 3)
	set("main() => MPI_Send()", "TAU_CALLPATH", 2, 2, 20)
	return p
}

func TestCallTree(t *testing.T) {
	p := callpathProfile()
	th := p.FindThread(0, 0, 0)
	root, ok := p.CallTree(th, 0)
	if !ok {
		t.Fatal("no tree")
	}
	if len(root.Children) != 1 || root.Children[0].Name != "main()" {
		t.Fatalf("roots: %+v", root.Children)
	}
	main := root.Children[0]
	// main() is an interior node backed by the flat event.
	if main.EventID == -1 || main.Inclusive != 100 {
		t.Fatalf("main: %+v", main)
	}
	if len(main.Children) != 3 {
		t.Fatalf("main children: %d", len(main.Children))
	}
	var solve *CallNode
	for _, c := range main.Children {
		if c.Name == "solve()" {
			solve = c
		}
	}
	if solve == nil || solve.Inclusive != 80 || solve.Exclusive != 20 || solve.Calls != 10 {
		t.Fatalf("solve: %+v", solve)
	}
	if len(solve.Children) != 1 || solve.Children[0].Name != "MPI_Send()" {
		t.Fatalf("solve children: %+v", solve.Children)
	}
	if solve.Children[0].Inclusive != 28 {
		t.Fatalf("nested send: %+v", solve.Children[0])
	}
	// Paths recorded.
	if solve.Children[0].Path != "main() => solve() => MPI_Send()" {
		t.Fatalf("path: %q", solve.Children[0].Path)
	}
}

func TestHotPath(t *testing.T) {
	p := callpathProfile()
	th := p.FindThread(0, 0, 0)
	root, _ := p.CallTree(th, 0)
	hot := HotPath(root)
	var names []string
	for _, n := range hot {
		names = append(names, n.Name)
	}
	if strings.Join(names, " > ") != "main() > solve() > MPI_Send()" {
		t.Fatalf("hot path: %v", names)
	}
}

func TestCallTreeNoCallpaths(t *testing.T) {
	p := New("flat")
	p.AddMetric("TIME")
	e := p.AddIntervalEvent("f", "")
	th := p.Thread(0, 0, 0)
	th.IntervalData(e.ID, 1)
	if _, ok := p.CallTree(th, 0); ok {
		t.Fatal("flat profile produced a tree")
	}
}

func TestCallTreeSynthesizedInterior(t *testing.T) {
	// A deep path with no intermediate events: interior nodes synthesized,
	// inclusive filled from children.
	p := New("deep")
	m := p.AddMetric("TIME")
	th := p.Thread(0, 0, 0)
	e := p.AddIntervalEvent("a => b => c", "TAU_CALLPATH")
	d := th.IntervalData(e.ID, 1)
	d.NumCalls = 4
	d.PerMetric[m] = MetricData{Inclusive: 42, Exclusive: 42}
	root, ok := p.CallTree(th, 0)
	if !ok {
		t.Fatal("no tree")
	}
	a := root.Children[0]
	if a.Name != "a" || a.EventID != -1 || a.Inclusive != 42 {
		t.Fatalf("synthesized a: %+v", a)
	}
	b := a.Children[0]
	if b.Name != "b" || b.Inclusive != 42 {
		t.Fatalf("synthesized b: %+v", b)
	}
	if b.Children[0].Name != "c" || b.Children[0].Calls != 4 {
		t.Fatalf("leaf: %+v", b.Children[0])
	}
	// WalkCalls covers all 3 nodes with correct depths.
	depths := map[string]int{}
	WalkCalls(root, func(n *CallNode, depth int) { depths[n.Name] = depth })
	if depths["a"] != 0 || depths["b"] != 1 || depths["c"] != 2 {
		t.Fatalf("depths: %v", depths)
	}
}
