// Package sqlexec plans and executes parsed SQL statements against the
// reldb storage engine. It implements the query side of the PerfDMF
// database substrate: expression evaluation with SQL three-valued logic,
// index selection for equality and range predicates, hash joins, grouping
// with the aggregate set PerfDMF's analysis layer relies on
// (COUNT/SUM/AVG/MIN/MAX/STDDEV), ORDER BY, DISTINCT and LIMIT/OFFSET.
package sqlexec

import (
	"fmt"
	"math"
	"strings"

	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// env supplies column values and parameters to the expression evaluator.
type env struct {
	cols   *colmap
	row    reldb.Row // concatenated row covering all bindings
	params []reldb.Value
	// agg, when non-nil, resolves aggregate FuncCall nodes to precomputed
	// per-group values (keyed by AST node identity).
	agg map[*sqlparse.FuncCall]reldb.Value
	// tx enables uncorrelated subquery evaluation; sub caches each
	// subquery's result for the duration of the statement.
	tx  *reldb.Tx
	sub map[*sqlparse.Subquery]*ResultSet
	// serial marks an env owned by a parallel worker: subqueries it spawns
	// must not fan out again, or worker counts would multiply.
	serial bool
}

// subResult runs (or returns the cached result of) an uncorrelated
// subquery.
func (ev *env) subResult(sq *sqlparse.Subquery) (*ResultSet, error) {
	if ev.tx == nil {
		return nil, fmt.Errorf("sqlexec: subquery not allowed in this context")
	}
	if rs, ok := ev.sub[sq]; ok {
		return rs, nil
	}
	var opts Options
	if ev.serial {
		opts.Workers = 1
	}
	rs, err := QueryOpts(ev.tx, sq.Select, ev.params, nil, opts)
	if err != nil {
		return nil, err
	}
	if ev.sub == nil {
		ev.sub = make(map[*sqlparse.Subquery]*ResultSet)
	}
	ev.sub[sq] = rs
	return rs, nil
}

// colmap resolves column references against one or more table bindings.
type colmap struct {
	// qualified maps "alias.column" (lower-cased) to a position.
	qualified map[string]int
	// unqualified maps "column" to a position, or -2 when ambiguous.
	unqualified map[string]int
	width       int
}

func newColmap() *colmap {
	return &colmap{qualified: make(map[string]int), unqualified: make(map[string]int)}
}

// bind adds a table's columns at the current offset under the given alias
// (and the table name itself).
func (m *colmap) bind(alias, table string, schema *reldb.Schema) {
	for i, c := range schema.Columns {
		pos := m.width + i
		lower := strings.ToLower(c.Name)
		m.qualified[strings.ToLower(alias)+"."+lower] = pos
		if !strings.EqualFold(alias, table) {
			m.qualified[strings.ToLower(table)+"."+lower] = pos
		}
		if old, ok := m.unqualified[lower]; ok && old != pos {
			m.unqualified[lower] = -2
		} else {
			m.unqualified[lower] = pos
		}
	}
	m.width += len(schema.Columns)
}

// bindNames binds a derived table's result columns under alias.
func (m *colmap) bindNames(alias string, names []string) {
	for i, name := range names {
		pos := m.width + i
		lower := strings.ToLower(name)
		m.qualified[strings.ToLower(alias)+"."+lower] = pos
		if old, ok := m.unqualified[lower]; ok && old != pos {
			m.unqualified[lower] = -2
		} else {
			m.unqualified[lower] = pos
		}
	}
	m.width += len(names)
}

// resolve returns the position of a column reference.
func (m *colmap) resolve(c *sqlparse.ColRef) (int, error) {
	if c.Table != "" {
		pos, ok := m.qualified[strings.ToLower(c.Table)+"."+strings.ToLower(c.Name)]
		if !ok {
			return 0, fmt.Errorf("sqlexec: unknown column %s.%s", c.Table, c.Name)
		}
		return pos, nil
	}
	pos, ok := m.unqualified[strings.ToLower(c.Name)]
	if !ok {
		return 0, fmt.Errorf("sqlexec: unknown column %s", c.Name)
	}
	if pos == -2 {
		return 0, fmt.Errorf("sqlexec: ambiguous column %s", c.Name)
	}
	return pos, nil
}

// eval evaluates an expression. SQL NULL propagates through operators
// (three-valued logic); WHERE/HAVING treat a NULL result as false.
func eval(e sqlparse.Expr, ev *env) (reldb.Value, error) {
	switch e := e.(type) {
	case *sqlparse.Literal:
		return e.Value, nil
	case *sqlparse.Param:
		if ev.params == nil || e.Index >= len(ev.params) {
			return reldb.Null, fmt.Errorf("sqlexec: missing parameter %d", e.Index+1)
		}
		return ev.params[e.Index], nil
	case *sqlparse.ColRef:
		pos, err := ev.cols.resolve(e)
		if err != nil {
			return reldb.Null, err
		}
		if pos >= len(ev.row) {
			return reldb.Null, nil // null-extended left-join row
		}
		return ev.row[pos], nil
	case *sqlparse.Unary:
		x, err := eval(e.X, ev)
		if err != nil {
			return reldb.Null, err
		}
		if x.IsNull() {
			return reldb.Null, nil
		}
		if e.Neg {
			if x.T == reldb.TFloat {
				return reldb.Float(-x.F), nil
			}
			return reldb.Int(-x.AsInt()), nil
		}
		return reldb.Bool(!x.AsBool()), nil
	case *sqlparse.Binary:
		return evalBinary(e, ev)
	case *sqlparse.IsNull:
		x, err := eval(e.X, ev)
		if err != nil {
			return reldb.Null, err
		}
		return reldb.Bool(x.IsNull() != e.Neg), nil
	case *sqlparse.InList:
		return evalIn(e, ev)
	case *sqlparse.Between:
		x, err := eval(e.X, ev)
		if err != nil {
			return reldb.Null, err
		}
		lo, err := eval(e.Lo, ev)
		if err != nil {
			return reldb.Null, err
		}
		hi, err := eval(e.Hi, ev)
		if err != nil {
			return reldb.Null, err
		}
		if x.IsNull() || lo.IsNull() || hi.IsNull() {
			return reldb.Null, nil
		}
		in := reldb.Compare(x, lo) >= 0 && reldb.Compare(x, hi) <= 0
		return reldb.Bool(in != e.Neg), nil
	case *sqlparse.FuncCall:
		if ev.agg != nil {
			if v, ok := ev.agg[e]; ok {
				return v, nil
			}
		}
		return evalScalarFunc(e, ev)
	case *sqlparse.Subquery:
		rs, err := ev.subResult(e)
		if err != nil {
			return reldb.Null, err
		}
		if len(rs.Cols) != 1 {
			return reldb.Null, fmt.Errorf("sqlexec: scalar subquery must return one column, got %d", len(rs.Cols))
		}
		switch len(rs.Rows) {
		case 0:
			return reldb.Null, nil
		case 1:
			return rs.Rows[0][0], nil
		}
		return reldb.Null, fmt.Errorf("sqlexec: scalar subquery returned %d rows", len(rs.Rows))
	}
	return reldb.Null, fmt.Errorf("sqlexec: cannot evaluate %T", e)
}

func evalBinary(e *sqlparse.Binary, ev *env) (reldb.Value, error) {
	// AND/OR implement three-valued logic with short circuit.
	if e.Op == sqlparse.OpAnd || e.Op == sqlparse.OpOr {
		l, err := eval(e.L, ev)
		if err != nil {
			return reldb.Null, err
		}
		if e.Op == sqlparse.OpAnd && !l.IsNull() && !l.AsBool() {
			return reldb.Bool(false), nil
		}
		if e.Op == sqlparse.OpOr && !l.IsNull() && l.AsBool() {
			return reldb.Bool(true), nil
		}
		r, err := eval(e.R, ev)
		if err != nil {
			return reldb.Null, err
		}
		switch {
		case e.Op == sqlparse.OpAnd:
			if !r.IsNull() && !r.AsBool() {
				return reldb.Bool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return reldb.Null, nil
			}
			return reldb.Bool(true), nil
		default: // OR
			if !r.IsNull() && r.AsBool() {
				return reldb.Bool(true), nil
			}
			if l.IsNull() || r.IsNull() {
				return reldb.Null, nil
			}
			return reldb.Bool(false), nil
		}
	}

	l, err := eval(e.L, ev)
	if err != nil {
		return reldb.Null, err
	}
	r, err := eval(e.R, ev)
	if err != nil {
		return reldb.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return reldb.Null, nil
	}
	switch e.Op {
	case sqlparse.OpEq:
		return reldb.Bool(reldb.Compare(l, r) == 0), nil
	case sqlparse.OpNe:
		return reldb.Bool(reldb.Compare(l, r) != 0), nil
	case sqlparse.OpLt:
		return reldb.Bool(reldb.Compare(l, r) < 0), nil
	case sqlparse.OpLe:
		return reldb.Bool(reldb.Compare(l, r) <= 0), nil
	case sqlparse.OpGt:
		return reldb.Bool(reldb.Compare(l, r) > 0), nil
	case sqlparse.OpGe:
		return reldb.Bool(reldb.Compare(l, r) >= 0), nil
	case sqlparse.OpLike:
		return reldb.Bool(likeMatch(r.AsString(), l.AsString())), nil
	case sqlparse.OpConcat:
		return reldb.Str(l.AsString() + r.AsString()), nil
	case sqlparse.OpAdd, sqlparse.OpSub, sqlparse.OpMul:
		if l.T == reldb.TFloat || r.T == reldb.TFloat {
			a, b := l.AsFloat(), r.AsFloat()
			switch e.Op {
			case sqlparse.OpAdd:
				return reldb.Float(a + b), nil
			case sqlparse.OpSub:
				return reldb.Float(a - b), nil
			default:
				return reldb.Float(a * b), nil
			}
		}
		a, b := l.AsInt(), r.AsInt()
		switch e.Op {
		case sqlparse.OpAdd:
			return reldb.Int(a + b), nil
		case sqlparse.OpSub:
			return reldb.Int(a - b), nil
		default:
			return reldb.Int(a * b), nil
		}
	case sqlparse.OpDiv:
		// Division is always floating point: PerfDMF's derived metrics
		// (ratios, speedups, FLOP rates) must not truncate.
		b := r.AsFloat()
		if b == 0 {
			return reldb.Null, nil
		}
		return reldb.Float(l.AsFloat() / b), nil
	case sqlparse.OpMod:
		b := r.AsInt()
		if b == 0 {
			return reldb.Null, nil
		}
		return reldb.Int(l.AsInt() % b), nil
	}
	return reldb.Null, fmt.Errorf("sqlexec: bad binary op %d", e.Op)
}

func evalIn(e *sqlparse.InList, ev *env) (reldb.Value, error) {
	x, err := eval(e.X, ev)
	if err != nil {
		return reldb.Null, err
	}
	if x.IsNull() {
		return reldb.Null, nil
	}
	if e.Sub != nil {
		rs, err := ev.subResult(e.Sub)
		if err != nil {
			return reldb.Null, err
		}
		if len(rs.Cols) != 1 {
			return reldb.Null, fmt.Errorf("sqlexec: IN subquery must return one column, got %d", len(rs.Cols))
		}
		sawNull := false
		for _, row := range rs.Rows {
			if row[0].IsNull() {
				sawNull = true
				continue
			}
			if reldb.Compare(x, row[0]) == 0 {
				return reldb.Bool(!e.Neg), nil
			}
		}
		if sawNull {
			return reldb.Null, nil
		}
		return reldb.Bool(e.Neg), nil
	}
	sawNull := false
	for _, item := range e.List {
		v, err := eval(item, ev)
		if err != nil {
			return reldb.Null, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if reldb.Compare(x, v) == 0 {
			return reldb.Bool(!e.Neg), nil
		}
	}
	if sawNull {
		return reldb.Null, nil
	}
	return reldb.Bool(e.Neg), nil
}

// evalScalarFunc evaluates the supported scalar functions.
func evalScalarFunc(e *sqlparse.FuncCall, ev *env) (reldb.Value, error) {
	args := make([]reldb.Value, len(e.Args))
	for i, a := range e.Args {
		v, err := eval(a, ev)
		if err != nil {
			return reldb.Null, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sqlexec: %s expects %d argument(s), got %d", e.Name, n, len(args))
		}
		return nil
	}
	switch e.Name {
	case "ABS":
		if err := need(1); err != nil {
			return reldb.Null, err
		}
		if args[0].IsNull() {
			return reldb.Null, nil
		}
		if args[0].T == reldb.TFloat {
			return reldb.Float(math.Abs(args[0].F)), nil
		}
		i := args[0].AsInt()
		if i < 0 {
			i = -i
		}
		return reldb.Int(i), nil
	case "SQRT":
		if err := need(1); err != nil {
			return reldb.Null, err
		}
		if args[0].IsNull() {
			return reldb.Null, nil
		}
		return reldb.Float(math.Sqrt(args[0].AsFloat())), nil
	case "ROUND":
		if len(args) < 1 || len(args) > 2 {
			return reldb.Null, fmt.Errorf("sqlexec: ROUND expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return reldb.Null, nil
		}
		digits := 0
		if len(args) == 2 {
			digits = int(args[1].AsInt())
		}
		scale := math.Pow(10, float64(digits))
		return reldb.Float(math.Round(args[0].AsFloat()*scale) / scale), nil
	case "UPPER":
		if err := need(1); err != nil {
			return reldb.Null, err
		}
		if args[0].IsNull() {
			return reldb.Null, nil
		}
		return reldb.Str(strings.ToUpper(args[0].AsString())), nil
	case "LOWER":
		if err := need(1); err != nil {
			return reldb.Null, err
		}
		if args[0].IsNull() {
			return reldb.Null, nil
		}
		return reldb.Str(strings.ToLower(args[0].AsString())), nil
	case "LENGTH":
		if err := need(1); err != nil {
			return reldb.Null, err
		}
		if args[0].IsNull() {
			return reldb.Null, nil
		}
		return reldb.Int(int64(len(args[0].AsString()))), nil
	case "COALESCE", "IFNULL":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return reldb.Null, nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return reldb.Null, nil
			}
			b.WriteString(a.AsString())
		}
		return reldb.Str(b.String()), nil
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV":
		return reldb.Null, fmt.Errorf("sqlexec: aggregate %s not allowed here", e.Name)
	}
	return reldb.Null, fmt.Errorf("sqlexec: unknown function %s", e.Name)
}

// likeMatch implements SQL LIKE: % matches any run, _ matches one byte.
func likeMatch(pattern, s string) bool {
	// Iterative two-pointer match with backtracking on the last %.
	p, i := 0, 0
	star, mark := -1, 0
	for i < len(s) {
		switch {
		case p < len(pattern) && (pattern[p] == '_' || pattern[p] == s[i]):
			p++
			i++
		case p < len(pattern) && pattern[p] == '%':
			star = p
			mark = i
			p++
		case star >= 0:
			p = star + 1
			mark++
			i = mark
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '%' {
		p++
	}
	return p == len(pattern)
}

// truthy reports whether a WHERE/HAVING/ON result admits the row.
func truthy(v reldb.Value) bool { return !v.IsNull() && v.AsBool() }
