package sqlexec

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// Vectorized aggregation over sealed column segments (see reldb/segment.go).
//
// The path has two phases. Phase one evaluates the compiled WHERE conjuncts
// over column vectors and materializes one global selection vector — the
// post-filter row positions in row order, exactly the sequence the row path
// hands to aggregation. Phase two chunks that selection into aggChunkRows
// pieces and folds each with gather kernels into the same chunkGroup /
// aggPartial state the row path produces, then reuses mergeChunks and
// finalizeGroups. Because chunk boundaries, group discovery order, float
// accumulation order, and every comparison mirror the row path operation for
// operation, results are bitwise-identical at any worker count — the
// invariant parallel_test.go's differential corpus pins.
//
// Anything the kernels cannot express — joins, DISTINCT aggregates,
// non-column aggregate arguments or GROUP BY terms, WHERE conjuncts beyond
// {col CMP const, col IS [NOT] NULL, col [NOT] BETWEEN const AND const} —
// falls back to the row path before any work is done.

// cmpClass says how a compiled comparison evaluates a cell against its
// constant, mirroring reldb.Compare's type dispatch for the fixed pair
// (column type, constant type).
type cmpClass uint8

const (
	cmpInt   cmpClass = iota // both int-like: compare .I
	cmpFloat                 // either side float: compare as float64 (NaN -> 0)
	cmpStr                   // both string-like: lexicographic
	cmpConst                 // incomparable types: constant type-tag verdict
)

// cmpSpec is one side of a compiled comparison: the constant, pre-coerced
// for the column's storage class.
type cmpSpec struct {
	class cmpClass
	i64   int64
	f64   float64
	str   string
	tag   int // cmpConst: the constant Compare result (type-tag order)
}

// numericType mirrors reldb's unexported Value.numeric.
func numericType(t reldb.Type) bool {
	switch t {
	case reldb.TInt, reldb.TFloat, reldb.TBool, reldb.TTime:
		return true
	}
	return false
}

// makeCmpSpec compiles Compare(cell, c) for a column of type colType: the
// class picks the same branch Compare would for every non-NULL cell.
func makeCmpSpec(colType reldb.Type, c reldb.Value) cmpSpec {
	stringish := func(t reldb.Type) bool { return t == reldb.TString || t == reldb.TBytes }
	switch {
	case numericType(colType) && numericType(c.T) && (colType == reldb.TFloat || c.T == reldb.TFloat):
		return cmpSpec{class: cmpFloat, f64: c.AsFloat()}
	case numericType(colType) && numericType(c.T):
		return cmpSpec{class: cmpInt, i64: c.I}
	case stringish(colType) && stringish(c.T):
		return cmpSpec{class: cmpStr, str: c.S}
	default:
		tag := 0
		if colType < c.T {
			tag = -1
		} else if colType > c.T {
			tag = 1
		}
		return cmpSpec{class: cmpConst, tag: tag}
	}
}

// cmpIntCell is Compare(cell, const) for an int-class cell.
func (cs *cmpSpec) cmpIntCell(iv int64) int {
	switch cs.class {
	case cmpInt:
		switch {
		case iv < cs.i64:
			return -1
		case iv > cs.i64:
			return 1
		}
		return 0
	case cmpFloat:
		fv := float64(iv)
		switch {
		case fv < cs.f64:
			return -1
		case fv > cs.f64:
			return 1
		}
		return 0
	}
	return cs.tag
}

// cmpFloatCell is Compare(cell, const) for a float cell. Compare returns 0
// when either operand is NaN (neither < nor > holds), which these plain
// comparisons reproduce.
func (cs *cmpSpec) cmpFloatCell(fv float64) int {
	if cs.class == cmpFloat {
		switch {
		case fv < cs.f64:
			return -1
		case fv > cs.f64:
			return 1
		}
		return 0
	}
	return cs.tag
}

// cmpStrCell is Compare(cell, const) for a string cell.
func (cs *cmpSpec) cmpStrCell(sv string) int {
	if cs.class == cmpStr {
		switch {
		case sv < cs.str:
			return -1
		case sv > cs.str:
			return 1
		}
		return 0
	}
	return cs.tag
}

// predOp is the kind of one compiled WHERE conjunct.
type predOp uint8

const (
	predCmp     predOp = iota // col CMP const
	predBetween               // col [NOT] BETWEEN const AND const
	predIsNull                // col IS [NOT] NULL
)

// colPred is one compiled conjunct bound to a column segment. NULL cells
// never pass a value predicate (the row path's comparison yields SQL NULL,
// which is not truthy); predIsNull is the only NULL-observing form.
type colPred struct {
	op     predOp
	ci     int            // schema column index
	bop    sqlparse.BinOp // predCmp operator (const on the right)
	spec   cmpSpec        // predCmp
	lo, hi cmpSpec        // predBetween bounds
	neg    bool           // predIsNull: IS NOT NULL; predBetween: NOT BETWEEN

	// Bound at execution time.
	seg      *reldb.ColumnSegment
	dictPass []bool // dict segments: per-code verdict, computed once
}

// cmpSatisfies maps a Compare result to the operator verdict, mirroring
// evalBinary's comparison switch.
func cmpSatisfies(op sqlparse.BinOp, c int) bool {
	switch op {
	case sqlparse.OpEq:
		return c == 0
	case sqlparse.OpNe:
		return c != 0
	case sqlparse.OpLt:
		return c < 0
	case sqlparse.OpLe:
		return c <= 0
	case sqlparse.OpGt:
		return c > 0
	case sqlparse.OpGe:
		return c >= 0
	}
	return false
}

// passStr is the full verdict for one non-NULL string cell.
func (p *colPred) passStr(sv string) bool {
	switch p.op {
	case predCmp:
		return cmpSatisfies(p.bop, p.spec.cmpStrCell(sv))
	case predBetween:
		in := p.lo.cmpStrCell(sv) >= 0 && p.hi.cmpStrCell(sv) <= 0
		return in != p.neg
	}
	return false
}

// bind attaches the column segment and, for dictionary columns, evaluates
// the predicate once per dictionary entry instead of once per row.
func (p *colPred) bind(set *reldb.SegmentSet) {
	p.seg = set.Col(p.ci)
	if p.seg.IsDict() && p.op != predIsNull {
		dict := p.seg.Dict()
		pass := make([]bool, len(dict))
		for code, sv := range dict {
			pass[code] = p.passStr(sv)
		}
		p.dictPass = pass
	}
}

// apply narrows pass (true = row still selected) over block rows [lo,hi).
func (p *colPred) apply(lo, hi int, pass []bool, sc *colScratch) {
	seg := p.seg
	n := hi - lo
	if p.op == predIsNull {
		for i := 0; i < n; i++ {
			if pass[i] {
				pass[i] = !seg.Valid(lo+i) != p.neg
			}
		}
		return
	}
	if seg.IsDict() {
		codes := seg.Codes(lo, hi)
		for i, c := range codes {
			if pass[i] {
				pass[i] = c >= 0 && p.dictPass[c]
			}
		}
		return
	}
	hasNulls := seg.HasNulls()
	switch seg.Type() {
	case reldb.TInt, reldb.TBool, reldb.TTime:
		vals := sc.i64[:n]
		seg.DecodeInts(lo, hi, vals)
		for i, v := range vals {
			if !pass[i] {
				continue
			}
			if hasNulls && !seg.Valid(lo+i) {
				pass[i] = false
				continue
			}
			if p.op == predCmp {
				pass[i] = cmpSatisfies(p.bop, p.spec.cmpIntCell(v))
			} else {
				in := p.lo.cmpIntCell(v) >= 0 && p.hi.cmpIntCell(v) <= 0
				pass[i] = in != p.neg
			}
		}
	case reldb.TFloat:
		vals := sc.f64[:n]
		seg.DecodeFloats(lo, hi, vals)
		for i, v := range vals {
			if !pass[i] {
				continue
			}
			if hasNulls && !seg.Valid(lo+i) {
				pass[i] = false
				continue
			}
			if p.op == predCmp {
				pass[i] = cmpSatisfies(p.bop, p.spec.cmpFloatCell(v))
			} else {
				in := p.lo.cmpFloatCell(v) >= 0 && p.hi.cmpFloatCell(v) <= 0
				pass[i] = in != p.neg
			}
		}
	default: // raw strings
		strs := seg.Strs(lo, hi)
		for i, v := range strs {
			if !pass[i] {
				continue
			}
			if hasNulls && !seg.Valid(lo+i) {
				pass[i] = false
				continue
			}
			pass[i] = p.passStr(v)
		}
	}
}

// colProgram is the compiled conjunction of a WHERE clause's predicates.
type colProgram struct {
	preds       []colPred
	cols        []int
	alwaysFalse bool // a conjunct is constant-false: nothing selects
}

// compilePredicate compiles WHERE into column predicates, or reports that
// the clause needs the row path. schema is the base table's schema; for a
// no-join base query, colmap positions are schema column indexes.
func (q *query) compilePredicate(where sqlparse.Expr, schema *reldb.Schema) (*colProgram, bool) {
	prog := &colProgram{}
	if where == nil {
		return prog, true
	}
	colType := func(cr *sqlparse.ColRef) (int, reldb.Type, bool) {
		pos, err := q.cols.resolve(cr)
		if err != nil || pos < 0 || pos >= len(schema.Columns) {
			return 0, 0, false
		}
		return pos, schema.Columns[pos].Type, true
	}
	for _, conj := range splitAnd(where) {
		switch e := conj.(type) {
		case *sqlparse.IsNull:
			cr, ok := e.X.(*sqlparse.ColRef)
			if !ok {
				return nil, false
			}
			ci, _, ok := colType(cr)
			if !ok {
				return nil, false
			}
			prog.preds = append(prog.preds, colPred{op: predIsNull, ci: ci, neg: e.Neg})
			prog.cols = append(prog.cols, ci)
		case *sqlparse.Between:
			cr, ok := e.X.(*sqlparse.ColRef)
			if !ok {
				return nil, false
			}
			ci, typ, ok := colType(cr)
			if !ok {
				return nil, false
			}
			lo, okLo := constVal(e.Lo, q.params)
			hi, okHi := constVal(e.Hi, q.params)
			if !okLo || !okHi {
				return nil, false
			}
			if lo.IsNull() || hi.IsNull() {
				// BETWEEN with a NULL bound is SQL NULL for every row.
				prog.alwaysFalse = true
				continue
			}
			prog.preds = append(prog.preds, colPred{
				op: predBetween, ci: ci, neg: e.Neg,
				lo: makeCmpSpec(typ, lo), hi: makeCmpSpec(typ, hi),
			})
			prog.cols = append(prog.cols, ci)
		case *sqlparse.Binary:
			op := e.Op
			switch op {
			case sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
			default:
				return nil, false
			}
			cr, crOK := e.L.(*sqlparse.ColRef)
			cexpr := e.R
			if !crOK {
				// const CMP col: flip the operator around the column.
				cr, crOK = e.R.(*sqlparse.ColRef)
				cexpr = e.L
				switch op {
				case sqlparse.OpLt:
					op = sqlparse.OpGt
				case sqlparse.OpLe:
					op = sqlparse.OpGe
				case sqlparse.OpGt:
					op = sqlparse.OpLt
				case sqlparse.OpGe:
					op = sqlparse.OpLe
				}
			}
			if !crOK {
				return nil, false
			}
			ci, typ, ok := colType(cr)
			if !ok {
				return nil, false
			}
			c, okC := constVal(cexpr, q.params)
			if !okC {
				return nil, false
			}
			if c.IsNull() {
				// Comparison with NULL is SQL NULL for every row.
				prog.alwaysFalse = true
				continue
			}
			prog.preds = append(prog.preds, colPred{op: predCmp, ci: ci, bop: op, spec: makeCmpSpec(typ, c)})
			prog.cols = append(prog.cols, ci)
		default:
			return nil, false
		}
	}
	return prog, true
}

// evalBlock appends the passing row positions of block [lo,hi) to out.
func (prog *colProgram) evalBlock(lo, hi int, sc *colScratch, out []int32) []int32 {
	n := hi - lo
	pass := sc.pass[:n]
	for i := range pass {
		pass[i] = true
	}
	for pi := range prog.preds {
		prog.preds[pi].apply(lo, hi, pass, sc)
	}
	for i, ok := range pass {
		if ok {
			out = append(out, int32(lo+i))
		}
	}
	return out
}

// colScratch is one worker's reusable kernel buffers.
type colScratch struct {
	pass       []bool
	i64        []int64
	f64        []float64
	i32        []int32
	strs       []string
	kv         []reldb.Value
	rowGroups  []*chunkGroup
	codeGroups []*chunkGroup // single dict group column: code+1 -> group
}

func newColScratch(groupCols, maxDict int) *colScratch {
	return &colScratch{
		pass:       make([]bool, aggChunkRows),
		i64:        make([]int64, aggChunkRows),
		f64:        make([]float64, aggChunkRows),
		i32:        make([]int32, aggChunkRows),
		strs:       make([]string, aggChunkRows),
		kv:         make([]reldb.Value, groupCols),
		rowGroups:  make([]*chunkGroup, aggChunkRows),
		codeGroups: make([]*chunkGroup, maxDict+1),
	}
}

// colGroupBy is one GROUP BY column bound to its segment.
type colGroupBy struct {
	seg *reldb.ColumnSegment
}

// colAggSpec is one aggregate call bound to its argument segment.
type colAggSpec struct {
	node  *sqlparse.FuncCall
	star  bool
	seg   *reldb.ColumnSegment
	dictF []float64 // dict segments: AsFloat per code, computed once
}

// tryColumnarAggregate attempts the vectorized aggregation path for a
// no-join full-scan SELECT over table. It returns handled=false (and no
// error) whenever the row path must run instead — including on resolution
// errors, which the row path re-raises identically. On success the final
// result rows and sort keys are stored on q (colDone) and the scan,
// filter and aggregation are all complete.
func (q *query) tryColumnarAggregate(table string) (bool, error) {
	st := q.st
	items, colNames, err := q.expandItems()
	if err != nil {
		return false, nil
	}
	orderExprs, err := q.resolveOrderBy(items)
	if err != nil {
		return false, nil
	}
	if !q.isAggregate(items, orderExprs) {
		return false, nil
	}
	var aggNodes []*sqlparse.FuncCall
	for _, item := range items {
		aggNodes = append(aggNodes, collectAggs(item.Expr)...)
	}
	aggNodes = append(aggNodes, collectAggs(st.Having)...)
	for _, e := range orderExprs {
		aggNodes = append(aggNodes, collectAggs(e)...)
	}
	for _, node := range aggNodes {
		if node.Distinct {
			return false, nil
		}
		if node.Star {
			if node.Name != "COUNT" {
				return false, nil
			}
			continue
		}
		if len(node.Args) != 1 {
			return false, nil
		}
		if _, ok := node.Args[0].(*sqlparse.ColRef); !ok {
			return false, nil
		}
	}
	if q.liveRows(table) < parallelMinRows {
		return false, nil
	}
	tbl, err := q.tx.Table(table)
	if err != nil {
		return false, nil
	}
	schema := tbl.Schema()
	groupCIs := make([]int, len(st.GroupBy))
	for i, e := range st.GroupBy {
		cr, ok := e.(*sqlparse.ColRef)
		if !ok {
			return false, nil
		}
		pos, err := q.cols.resolve(cr)
		if err != nil || pos >= len(schema.Columns) {
			return false, nil
		}
		groupCIs[i] = pos
	}
	aggCIs := make([]int, len(aggNodes))
	for i, node := range aggNodes {
		if node.Star {
			aggCIs[i] = -1
			continue
		}
		pos, err := q.cols.resolve(node.Args[0].(*sqlparse.ColRef))
		if err != nil || pos >= len(schema.Columns) {
			return false, nil
		}
		aggCIs[i] = pos
	}
	prog, ok := q.compilePredicate(st.Where, schema)
	if !ok {
		mColumnarFallbacks.Inc()
		return false, nil
	}

	// Segments: a fresh set if one exists; otherwise count an eligible read
	// toward the lazy read-mostly build, feeding the dictionary decision
	// from ANALYZE's NDV estimates when the build fires.
	need := prog.cols
	for _, ci := range groupCIs {
		need = append(need, ci)
	}
	for _, ci := range aggCIs {
		if ci >= 0 {
			need = append(need, ci)
		}
	}
	set := tbl.Segments()
	if set == nil {
		set = tbl.SegmentsLazy(ndvHints(q.tx, table, schema))
	}
	if set == nil || !set.Covers(need...) {
		mColumnarFallbacks.Inc()
		return false, nil
	}
	for pi := range prog.preds {
		prog.preds[pi].bind(set)
	}

	workers := q.opts.effectiveWorkers()
	sel, err := q.columnarSelect(set, prog, workers)
	if err != nil {
		return false, err
	}
	q.scanned += int64(set.Rows())
	mColumnarScans.Inc()
	mColumnarRowsScanned.Add(int64(set.Rows()))
	if p := q.opts.Plan; p != nil && p.Select == st {
		p.Columnar.Add(1)
	}
	if q.colPar < 1 {
		q.colPar = 1
	}

	var out, keys [][]reldb.Value
	if len(sel) < parallelMinRows {
		// Few survivors: materialize them and run the direct aggregation
		// path — exactly what the row path does below this size, including
		// the zero-row global group.
		rows := make([]reldb.Row, len(sel))
		for i, r := range sel {
			rows[i] = tbl.RowAt(set.Slot(int(r)))
		}
		out, keys, err = q.aggregate(rows, items, orderExprs)
	} else {
		out, keys, err = q.columnarFold(tbl, set, sel, groupCIs, aggCIs, aggNodes, items, orderExprs, workers)
	}
	if err != nil {
		return false, err
	}
	q.colDone = true
	q.colItems, q.colNames = items, colNames
	q.colOut, q.colKeys = out, keys
	return true, nil
}

// columnarSelect evaluates the compiled predicate over the segment set and
// returns the global selection vector: passing row positions in row order,
// identical to the row sequence the row path's scan+filter yields. Workers
// process partitions concurrently; partition results concatenate in order.
func (q *query) columnarSelect(set *reldb.SegmentSet, prog *colProgram, workers int) ([]int32, error) {
	total := set.Rows()
	if prog.alwaysFalse || total == 0 {
		return nil, nil
	}
	if len(prog.preds) == 0 {
		sel := make([]int32, total)
		for i := range sel {
			sel[i] = int32(i)
		}
		return sel, nil
	}
	nparts := workers * partsPerWorker
	if nparts > total {
		nparts = total
	}
	if nparts < 1 {
		nparts = 1
	}
	type selPart struct {
		lo, hi int
		sel    []int32
		err    error
	}
	parts := make([]*selPart, nparts)
	for p := range parts {
		parts[p] = &selPart{lo: p * total / nparts, hi: (p + 1) * total / nparts}
	}
	if workers > nparts {
		workers = nparts
	}
	stmt := q.opts.Stmt
	runPart := func(p *selPart, sc *colScratch) {
		var out []int32
		for lo := p.lo; lo < p.hi; lo += aggChunkRows {
			hi := lo + aggChunkRows
			if hi > p.hi {
				hi = p.hi
			}
			if p.err = stmt.Err(); p.err != nil {
				return
			}
			out = prog.evalBlock(lo, hi, sc, out)
		}
		p.sel = out
	}
	if workers <= 1 {
		sc := newColScratch(0, 0)
		for _, p := range parts {
			runPart(p, sc)
			if p.err != nil {
				return nil, p.err
			}
		}
	} else {
		if q.par < workers {
			q.par = workers
		}
		if q.colPar < workers {
			q.colPar = workers
		}
		if stmt != nil {
			stmt.workers.Store(int32(workers))
		}
		var (
			next atomic.Int64
			stop atomic.Bool
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := newColScratch(0, 0)
				for !stop.Load() {
					i := int(next.Add(1)) - 1
					if i >= len(parts) {
						return
					}
					runPart(parts[i], sc)
					if parts[i].err != nil {
						stop.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
		// Partitions are claimed in increasing order, so the lowest-index
		// error is the first in row order.
		for _, p := range parts {
			if p.err != nil {
				return nil, p.err
			}
		}
	}
	n := 0
	for _, p := range parts {
		n += len(p.sel)
	}
	sel := make([]int32, 0, n)
	for _, p := range parts {
		sel = append(sel, p.sel...)
	}
	return sel, nil
}

// columnarFold chunks the selection vector and folds each chunk with gather
// kernels into the row path's chunkGroup/aggPartial state, then merges in
// chunk order and finalizes — the exact pipeline aggregateChunked runs.
func (q *query) columnarFold(tbl *reldb.Table, set *reldb.SegmentSet, sel []int32, groupCIs, aggCIs []int, aggNodes []*sqlparse.FuncCall, items []sqlparse.SelectItem, orderExprs []sqlparse.Expr, workers int) ([][]reldb.Value, [][]reldb.Value, error) {
	groups := make([]colGroupBy, len(groupCIs))
	maxDict := 0
	for i, ci := range groupCIs {
		seg := set.Col(ci)
		groups[i] = colGroupBy{seg: seg}
		if seg.IsDict() && len(seg.Dict()) > maxDict {
			maxDict = len(seg.Dict())
		}
	}
	aggs := make([]colAggSpec, len(aggNodes))
	for i, node := range aggNodes {
		if node.Star {
			aggs[i] = colAggSpec{node: node, star: true}
			continue
		}
		seg := set.Col(aggCIs[i])
		sp := colAggSpec{node: node, seg: seg}
		if seg.IsDict() {
			dict := seg.Dict()
			sp.dictF = make([]float64, len(dict))
			for c, sv := range dict {
				sp.dictF[c] = (reldb.Value{T: seg.Type(), S: sv}).AsFloat()
			}
		}
		aggs[i] = sp
	}

	nchunks := (len(sel) + aggChunkRows - 1) / aggChunkRows
	chunks := make([]*aggChunk, nchunks)
	if workers > nchunks {
		workers = nchunks
	}
	chunkBounds := func(i int) (int, int) {
		lo := i * aggChunkRows
		hi := lo + aggChunkRows
		if hi > len(sel) {
			hi = len(sel)
		}
		return lo, hi
	}
	stmt := q.opts.Stmt
	if workers <= 1 {
		sc := newColScratch(len(groups), maxDict)
		for i := range chunks {
			if err := stmt.Err(); err != nil {
				chunks[i] = &aggChunk{err: err}
				break
			}
			lo, hi := chunkBounds(i)
			chunks[i] = q.foldColumnarChunk(tbl, set, sel[lo:hi], groups, aggs, sc)
		}
	} else {
		if q.par < workers {
			q.par = workers
		}
		if q.colPar < workers {
			q.colPar = workers
		}
		if stmt != nil {
			stmt.workers.Store(int32(workers))
		}
		var (
			next atomic.Int64
			stop atomic.Bool
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := newColScratch(len(groups), maxDict)
				for !stop.Load() {
					i := int(next.Add(1)) - 1
					if i >= nchunks {
						return
					}
					if err := stmt.Err(); err != nil {
						chunks[i] = &aggChunk{err: err}
						stop.Store(true)
						return
					}
					lo, hi := chunkBounds(i)
					chunks[i] = q.foldColumnarChunk(tbl, set, sel[lo:hi], groups, aggs, sc)
				}
			}()
		}
		wg.Wait()
	}
	if err := chunkError(chunks); err != nil {
		return nil, nil, err
	}
	return q.finalizeGroups(mergeChunks(chunks), items, orderExprs, aggNodes)
}

// foldColumnarChunk folds one selection chunk into per-group partials. The
// group pass assigns each selected row a chunkGroup (with per-storage-class
// fast paths for a single GROUP BY column); the aggregate pass then updates
// partials column-at-a-time from gathered vectors. Group keys are the
// canonical keyOf over the materialized column values, and each group's
// first row is the real stored row, so merged state is indistinguishable
// from the row path's.
func (q *query) foldColumnarChunk(tbl *reldb.Table, set *reldb.SegmentSet, sel []int32, groups []colGroupBy, aggs []colAggSpec, sc *colScratch) *aggChunk {
	n := len(sel)
	ck := &aggChunk{groups: make(map[string]*chunkGroup)}
	rowG := sc.rowGroups[:n]
	kv := sc.kv[:len(groups)]
	newGroup := func(pos int32) *chunkGroup {
		g := &chunkGroup{key: keyOf(kv), first: tbl.RowAt(set.Slot(int(pos))), parts: make([]aggPartial, len(aggs))}
		for i := range g.parts {
			g.parts[i].allInt = true
		}
		ck.groups[g.key] = g
		ck.order = append(ck.order, g)
		return g
	}

	switch {
	case len(groups) == 0:
		g := newGroup(sel[0])
		for i := range rowG {
			rowG[i] = g
		}
	case len(groups) == 1 && groups[0].seg.IsDict():
		seg := groups[0].seg
		dict := seg.Dict()
		codes := sc.i32[:n]
		seg.GatherCodes(sel, codes)
		cg := sc.codeGroups
		for i := 0; i <= len(dict); i++ {
			cg[i] = nil
		}
		for i, c := range codes {
			g := cg[c+1]
			if g == nil {
				if c < 0 {
					kv[0] = reldb.Null
				} else {
					kv[0] = reldb.Value{T: seg.Type(), S: dict[c]}
				}
				g = newGroup(sel[i])
				cg[c+1] = g
			}
			rowG[i] = g
		}
	case len(groups) == 1 && intClass(groups[0].seg.Type()):
		seg := groups[0].seg
		vals := sc.i64[:n]
		seg.GatherInts(sel, vals)
		hasNulls := seg.HasNulls()
		m := make(map[int64]*chunkGroup)
		var nullG *chunkGroup
		for i, v := range vals {
			if hasNulls && !seg.Valid(int(sel[i])) {
				if nullG == nil {
					kv[0] = reldb.Null
					nullG = newGroup(sel[i])
				}
				rowG[i] = nullG
				continue
			}
			g := m[v]
			if g == nil {
				kv[0] = reldb.Value{T: seg.Type(), I: v}
				g = newGroup(sel[i])
				m[v] = g
			}
			rowG[i] = g
		}
	case len(groups) == 1 && groups[0].seg.Type() == reldb.TFloat:
		seg := groups[0].seg
		vals := sc.f64[:n]
		seg.GatherFloats(sel, vals)
		hasNulls := seg.HasNulls()
		// Keyed by bit pattern, exactly how keyOf distinguishes floats.
		m := make(map[uint64]*chunkGroup)
		var nullG *chunkGroup
		for i, v := range vals {
			if hasNulls && !seg.Valid(int(sel[i])) {
				if nullG == nil {
					kv[0] = reldb.Null
					nullG = newGroup(sel[i])
				}
				rowG[i] = nullG
				continue
			}
			bits := math.Float64bits(v)
			g := m[bits]
			if g == nil {
				kv[0] = reldb.Value{T: reldb.TFloat, F: v}
				g = newGroup(sel[i])
				m[bits] = g
			}
			rowG[i] = g
		}
	case len(groups) == 1:
		seg := groups[0].seg
		strs := sc.strs[:n]
		seg.GatherStrs(sel, strs)
		hasNulls := seg.HasNulls()
		m := make(map[string]*chunkGroup)
		var nullG *chunkGroup
		for i, v := range strs {
			if hasNulls && !seg.Valid(int(sel[i])) {
				if nullG == nil {
					kv[0] = reldb.Null
					nullG = newGroup(sel[i])
				}
				rowG[i] = nullG
				continue
			}
			g := m[v]
			if g == nil {
				kv[0] = reldb.Value{T: seg.Type(), S: v}
				g = newGroup(sel[i])
				m[v] = g
			}
			rowG[i] = g
		}
	default:
		for i, r := range sel {
			for c := range groups {
				kv[c] = groups[c].seg.ValueAt(int(r))
			}
			g := ck.groups[keyOf(kv)]
			if g == nil {
				g = newGroup(r)
			}
			rowG[i] = g
		}
	}

	for ai := range aggs {
		ag := &aggs[ai]
		if ag.star {
			for i := range rowG {
				rowG[i].parts[ai].count++
			}
			continue
		}
		seg := ag.seg
		hasNulls := seg.HasNulls()
		switch {
		case seg.IsDict():
			codes := sc.i32[:n]
			seg.GatherCodes(sel, codes)
			dict := seg.Dict()
			for i, c := range codes {
				if c < 0 {
					continue
				}
				p := &rowG[i].parts[ai]
				p.count++
				f := ag.dictF[c]
				p.sum += f
				p.sumSq += f * f
				p.allInt = false
				sv := dict[c]
				if p.min.IsNull() || sv < p.min.S {
					p.min = reldb.Value{T: seg.Type(), S: sv}
				}
				if p.mx.IsNull() || sv > p.mx.S {
					p.mx = reldb.Value{T: seg.Type(), S: sv}
				}
			}
		case intClass(seg.Type()):
			vals := sc.i64[:n]
			seg.GatherInts(sel, vals)
			nonInt := seg.Type() != reldb.TInt
			for i, v := range vals {
				if hasNulls && !seg.Valid(int(sel[i])) {
					continue
				}
				p := &rowG[i].parts[ai]
				p.count++
				f := float64(v)
				p.sum += f
				p.sumSq += f * f
				if nonInt {
					p.allInt = false
				}
				if p.min.IsNull() || v < p.min.I {
					p.min = reldb.Value{T: seg.Type(), I: v}
				}
				if p.mx.IsNull() || v > p.mx.I {
					p.mx = reldb.Value{T: seg.Type(), I: v}
				}
			}
		case seg.Type() == reldb.TFloat:
			vals := sc.f64[:n]
			seg.GatherFloats(sel, vals)
			for i, v := range vals {
				if hasNulls && !seg.Valid(int(sel[i])) {
					continue
				}
				p := &rowG[i].parts[ai]
				p.count++
				p.sum += v
				p.sumSq += v * v
				p.allInt = false
				// Plain < and > reproduce Compare's NaN rule: a NaN never
				// displaces a set min/max, and a first-seen NaN sticks.
				if p.min.IsNull() || v < p.min.F {
					p.min = reldb.Value{T: reldb.TFloat, F: v}
				}
				if p.mx.IsNull() || v > p.mx.F {
					p.mx = reldb.Value{T: reldb.TFloat, F: v}
				}
			}
		default: // raw strings
			strs := sc.strs[:n]
			seg.GatherStrs(sel, strs)
			for i, sv := range strs {
				if hasNulls && !seg.Valid(int(sel[i])) {
					continue
				}
				p := &rowG[i].parts[ai]
				p.count++
				f := (reldb.Value{T: seg.Type(), S: sv}).AsFloat()
				p.sum += f
				p.sumSq += f * f
				p.allInt = false
				if p.min.IsNull() || sv < p.min.S {
					p.min = reldb.Value{T: seg.Type(), S: sv}
				}
				if p.mx.IsNull() || sv > p.mx.S {
					p.mx = reldb.Value{T: seg.Type(), S: sv}
				}
			}
		}
	}
	return ck
}

// intClass reports the types stored as int64 segments.
func intClass(t reldb.Type) bool {
	return t == reldb.TInt || t == reldb.TBool || t == reldb.TTime
}

// ndvHints reads ANALYZE's per-column NDV estimates for table out of
// PERFDMF_TABLE_STATS, keyed by lower-cased column name, for the segment
// builder's dictionary decision. Only statistics stamped with the table's
// current schema signature count; absent or stale stats mean no hints.
func ndvHints(tx *reldb.Tx, table string, schema *reldb.Schema) map[string]int {
	if schema == nil || !tx.HasTable(StatsTable) {
		return nil
	}
	sig := schemaSig(schema)
	var hints map[string]int
	//lint:allow ctxpoll -- stats-table scan is bounded by analyzed column count, not user rows
	tx.Scan(StatsTable, func(_ int, row reldb.Row) bool { //nolint:errcheck // existence checked above
		if len(row) <= statSchemaSig {
			return true
		}
		if !strings.EqualFold(row[statTableName].AsString(), table) {
			return true
		}
		if row[statSchemaSig].AsString() != sig {
			return true
		}
		col := strings.ToLower(row[statColumnName].AsString())
		if col == "" {
			return true // table-level row
		}
		if hints == nil {
			hints = make(map[string]int)
		}
		hints[col] = int(row[statNDV].AsInt())
		return true
	})
	return hints
}

// execCompact runs COMPACT [table]: build sealed columnar segments for the
// named table (or every user table) right now, skipping the lazy
// read-mostly heuristic. RowsAffected counts the rows encoded. Dictionary
// decisions use ANALYZE's NDV estimates when fresh ones exist.
func execCompact(tx *reldb.Tx, st *sqlparse.Compact, opts Options) (Result, error) {
	var tables []string
	if st.Table != "" {
		if !tx.HasTable(st.Table) {
			return Result{}, fmt.Errorf("sqlexec: no table %s", st.Table)
		}
		tables = []string{st.Table}
	} else {
		tables = tx.TableNames()
	}
	var res Result
	for _, t := range tables {
		if err := opts.Stmt.Err(); err != nil {
			return Result{}, err
		}
		var schema *reldb.Schema
		if tbl, err := tx.Table(t); err == nil {
			schema = tbl.Schema()
		}
		n, err := tx.BuildColumnSegments(t, ndvHints(tx, t, schema))
		if err != nil {
			return Result{}, err
		}
		res.RowsAffected += int64(n)
	}
	return res, nil
}
