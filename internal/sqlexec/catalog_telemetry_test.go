package sqlexec

import (
	"testing"

	"perfdmf/internal/reldb"
)

// TestCatalogTelemetryRow: OBS_TELEMETRY always answers with exactly one
// row — active=false with NULL state when no pipeline has ever run, the
// provider's snapshot otherwise, with the off/never sentinels rendered as
// NULL.
func TestCatalogTelemetryRow(t *testing.T) {
	db := reldb.NewMemory()
	// The executor never learns about godbc in this package's tests, so
	// the source is unset (or left inactive by an earlier subrun): the
	// query must still answer.
	SetTelemetrySource(func() (TelemetryInfo, bool) { return TelemetryInfo{}, false })
	rs := run(t, db, "SELECT active, sample_rate, stored FROM OBS_TELEMETRY")
	if len(rs.Rows) != 1 {
		t.Fatalf("OBS_TELEMETRY rows = %d, want 1", len(rs.Rows))
	}
	if rs.Rows[0][0].AsBool() {
		t.Fatal("active = true with no pipeline")
	}
	if !rs.Rows[0][1].IsNull() || !rs.Rows[0][2].IsNull() {
		t.Fatalf("inactive row state = %v, want NULLs", rs.Rows[0])
	}

	SetTelemetrySource(func() (TelemetryInfo, bool) {
		return TelemetryInfo{
			Active: true, SampleRate: 0.25, BudgetPct: 5, WriteOverheadPct: 2.5,
			QueueDepth: 3, QueueCapacity: 4096, Stored: 42, PrunedSpans: 7,
			RetainRows: 100, RetainAgeSec: 0, LastFlushAgeSec: -1,
		}, true
	})
	defer SetTelemetrySource(func() (TelemetryInfo, bool) { return TelemetryInfo{}, false })

	rs = run(t, db, `SELECT active, sample_rate, stored, pruned_spans,
		retain_rows, retain_age_sec, last_flush_age_sec FROM OBS_TELEMETRY`)
	if len(rs.Rows) != 1 {
		t.Fatalf("OBS_TELEMETRY rows = %d, want 1", len(rs.Rows))
	}
	r := rs.Rows[0]
	if !r[0].AsBool() || r[1].AsFloat() != 0.25 || r[2].AsInt() != 42 || r[3].AsInt() != 7 {
		t.Fatalf("active row = %v", r)
	}
	if r[4].AsInt() != 100 {
		t.Fatalf("retain_rows = %v, want 100", r[4])
	}
	// Age pruning off and never-flushed both render as NULL, so dashboards
	// can tell "disabled" from "zero seconds ago".
	if !r[5].IsNull() || !r[6].IsNull() {
		t.Fatalf("off/never sentinels = %v, %v, want NULLs", r[5], r[6])
	}

	// The row composes like any table: usable in a WHERE clause.
	rs = run(t, db, "SELECT stored FROM OBS_TELEMETRY WHERE active = TRUE")
	if len(rs.Rows) != 1 || rs.Rows[0][0].AsInt() != 42 {
		t.Fatalf("filtered catalog row = %v", rs.Rows)
	}
}
