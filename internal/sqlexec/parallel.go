package sqlexec

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"perfdmf/internal/obs"
	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// Options tune a single SELECT execution.
type Options struct {
	// Workers caps the number of goroutines the executor may use for
	// partitioned scans and partial aggregation. 0 (the zero value) means
	// DefaultWorkers(); 1 executes serially.
	Workers int
	// Plan, when non-nil, is a reusable handle that memoizes the
	// access-path decision across executions of the same statement (see
	// Plan). It must belong to the calling goroutine.
	Plan *Plan
	// Stmt, when non-nil, is the statement's live accounting entry. The
	// executor updates its row/worker counters and polls its cancellation
	// context between row batches, so a KILL unwinds the statement within
	// one scan chunk.
	Stmt *StmtEntry
	// NoColumnar disables the vectorized aggregation path over sealed
	// column segments (columnar.go), forcing row-at-a-time execution. Both
	// paths return bitwise-identical results; this exists for comparison
	// benchmarks and the godbc ?columnar=0 DSN option.
	NoColumnar bool
}

// DefaultWorkers is the worker count used when Options does not set one:
// the scheduler's current parallelism.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

func (o Options) effectiveWorkers() int {
	if o.Workers <= 0 {
		return DefaultWorkers()
	}
	return o.Workers
}

// parallelMinRows is the serial-fallback threshold: below this many input
// rows the goroutine fan-out costs more than it saves, so point queries
// never pay it.
const parallelMinRows = 4096

// aggChunkRows is the fold-chunk size for partial aggregation. Chunk
// boundaries depend only on the input length — never on the worker count —
// so float accumulation order, group discovery order, and therefore the
// exact result bits are identical at every Workers setting. Workers only
// decide how many chunks fold concurrently.
const aggChunkRows = 4096

// partsPerWorker oversplits the scan so the atomic work queue can balance
// partitions whose free-slot density differs.
const partsPerWorker = 4

// QueryOpts is Query with explicit execution options and an optional span.
func QueryOpts(tx *reldb.Tx, st *sqlparse.Select, params []reldb.Value, sp *obs.Span, opts Options) (*ResultSet, error) {
	q := &query{tx: tx, st: st, params: params, cols: newColmap(), sp: sp, opts: opts}
	return q.run()
}

// parallelScanFilter collects the base table's live rows — applying the
// WHERE filter when present — using partitioned worker goroutines. Each
// partition fills its own buffer; buffers are concatenated in partition
// (slot) order, so the result is byte-identical to the serial scan+filter.
// Workers are claimed off an atomic queue in increasing partition order and
// always run their partition to completion, which guarantees both that
// every goroutine is reaped before return and that the lowest-partition
// error — the same error the serial path would hit first — is reported.
func (q *query) parallelScanFilter(table string, where sqlparse.Expr, workers int) ([]reldb.Row, error) {
	type part struct {
		rows    []reldb.Row
		kept    []reldb.Row
		visited int64
		err     error
	}
	var parts []*part
	q.tx.ScanPartitioned(table, workers*partsPerWorker, func(_, _ int, rows []reldb.Row) { //nolint:errcheck // table verified by bind
		parts = append(parts, &part{rows: rows})
	})
	if len(parts) == 0 {
		return nil, nil
	}
	if workers > len(parts) {
		workers = len(parts)
	}
	mParallelScans.Inc()
	mScanPartitions.Add(int64(len(parts)))
	if q.par < workers {
		q.par = workers
	}
	stmt := q.opts.Stmt
	if stmt != nil {
		stmt.workers.Store(int32(workers))
	}

	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := &env{cols: q.cols, params: q.params, tx: q.tx, serial: true}
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(parts) {
					return
				}
				p := parts[i]
				if err := stmt.Err(); err != nil {
					p.err = err
					stop.Store(true)
					return
				}
				for _, row := range p.rows {
					if row == nil {
						continue
					}
					p.visited++
					if p.visited%cancelCheckRows == 0 {
						if err := stmt.Err(); err != nil {
							p.err = err
							stop.Store(true)
							return
						}
						if stmt != nil {
							stmt.rowsScanned.Add(cancelCheckRows)
						}
					}
					if where != nil {
						ev.row = row
						v, err := eval(where, ev)
						if err != nil {
							p.err = err
							stop.Store(true)
							return
						}
						if !truthy(v) {
							continue
						}
					}
					p.kept = append(p.kept, row)
				}
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, p := range parts {
		if p.err != nil {
			return nil, p.err
		}
		total += len(p.kept)
		q.scanned += p.visited
	}
	out := make([]reldb.Row, 0, total)
	for _, p := range parts {
		out = append(out, p.kept...)
	}
	return out, nil
}

// aggPartial is the mergeable state of one aggregate over a subset of a
// group's rows: everything COUNT/SUM/AVG/MIN/MAX/STDDEV need.
type aggPartial struct {
	count   int64
	sum     float64
	sumSq   float64
	min, mx reldb.Value
	allInt  bool
}

func (p *aggPartial) observe(v reldb.Value) {
	p.count++
	f := v.AsFloat()
	p.sum += f
	p.sumSq += f * f
	if v.T != reldb.TInt {
		p.allInt = false
	}
	if p.min.IsNull() || reldb.Compare(v, p.min) < 0 {
		p.min = v
	}
	if p.mx.IsNull() || reldb.Compare(v, p.mx) > 0 {
		p.mx = v
	}
}

func (p *aggPartial) merge(o *aggPartial) {
	p.count += o.count
	p.sum += o.sum
	p.sumSq += o.sumSq
	p.allInt = p.allInt && o.allInt
	if !o.min.IsNull() && (p.min.IsNull() || reldb.Compare(o.min, p.min) < 0) {
		p.min = o.min
	}
	if !o.mx.IsNull() && (p.mx.IsNull() || reldb.Compare(o.mx, p.mx) > 0) {
		p.mx = o.mx
	}
}

// finish turns the merged state into the aggregate's value, mirroring
// computeAgg's result rules exactly.
func (p *aggPartial) finish(name string) reldb.Value {
	switch name {
	case "COUNT":
		return reldb.Int(p.count)
	case "SUM":
		if p.count == 0 {
			return reldb.Null
		}
		if p.allInt {
			return reldb.Int(int64(p.sum))
		}
		return reldb.Float(p.sum)
	case "AVG":
		if p.count == 0 {
			return reldb.Null
		}
		return reldb.Float(p.sum / float64(p.count))
	case "MIN":
		return p.min
	case "MAX":
		return p.mx
	case "STDDEV":
		if p.count == 0 {
			return reldb.Null
		}
		n := float64(p.count)
		variance := p.sumSq/n - (p.sum/n)*(p.sum/n)
		if variance < 0 {
			variance = 0
		}
		return reldb.Float(math.Sqrt(variance))
	}
	return reldb.Null
}

// chunkGroup is one group's partial state within (or merged across) chunks.
type chunkGroup struct {
	key   string
	first reldb.Row // first row of the group in input order
	parts []aggPartial
}

// aggChunk is the fold result of one fixed-size input chunk.
type aggChunk struct {
	groups map[string]*chunkGroup
	order  []*chunkGroup // discovery order within the chunk
	err    error
}

// canChunkAgg reports whether the chunked partial-aggregation path applies:
// enough rows to amortize it, and only aggregate shapes whose state merges
// (DISTINCT aggregates need the whole group's value set in one place, and
// malformed calls are left to computeAgg so error messages stay put).
func (q *query) canChunkAgg(rows []reldb.Row, aggNodes []*sqlparse.FuncCall) bool {
	if len(rows) < parallelMinRows {
		return false
	}
	for _, node := range aggNodes {
		if node.Distinct {
			return false
		}
		if node.Star {
			if node.Name != "COUNT" {
				return false
			}
			continue
		}
		if len(node.Args) != 1 {
			return false
		}
	}
	return true
}

// foldChunk folds one chunk of input rows into per-group partial states.
func (q *query) foldChunk(rows []reldb.Row, aggNodes []*sqlparse.FuncCall) *aggChunk {
	st := q.st
	stmt := q.opts.Stmt
	ck := &aggChunk{groups: make(map[string]*chunkGroup)}
	ev := &env{cols: q.cols, params: q.params, tx: q.tx, serial: true}
	kv := make([]reldb.Value, len(st.GroupBy))
	for n, row := range rows {
		// Poll cancellation inside the fold too: once every chunk has been
		// claimed, the claim-time check in aggregateChunked can no longer
		// observe a kill, so in-flight folds must notice it themselves.
		if n%cancelCheckRows == cancelCheckRows-1 {
			if ck.err = stmt.Err(); ck.err != nil {
				return ck
			}
		}
		ev.row = row
		key := ""
		if len(st.GroupBy) > 0 {
			for i, e := range st.GroupBy {
				v, err := eval(e, ev)
				if err != nil {
					ck.err = err
					return ck
				}
				kv[i] = v
			}
			key = keyOf(kv)
		}
		g := ck.groups[key]
		if g == nil {
			g = &chunkGroup{key: key, first: row, parts: make([]aggPartial, len(aggNodes))}
			for i := range g.parts {
				g.parts[i].allInt = true
			}
			ck.groups[key] = g
			ck.order = append(ck.order, g)
		}
		for i, node := range aggNodes {
			if node.Star {
				g.parts[i].count++
				continue
			}
			v, err := eval(node.Args[0], ev)
			if err != nil {
				ck.err = err
				return ck
			}
			if v.IsNull() {
				continue
			}
			g.parts[i].observe(v)
		}
	}
	return ck
}

// aggregateChunked is the parallel aggregation path: the input is split
// into fixed-size chunks, chunks are folded (concurrently when workers>1)
// into per-group partial states, and partials are merged single-threaded in
// chunk order. HAVING, output items and ORDER BY keys are then evaluated
// per merged group exactly as on the serial path.
func (q *query) aggregateChunked(rows []reldb.Row, items []sqlparse.SelectItem, orderExprs []sqlparse.Expr, aggNodes []*sqlparse.FuncCall) ([][]reldb.Value, [][]reldb.Value, error) {
	nchunks := (len(rows) + aggChunkRows - 1) / aggChunkRows
	chunks := make([]*aggChunk, nchunks)
	workers := q.opts.effectiveWorkers()
	if workers > nchunks {
		workers = nchunks
	}

	chunkBounds := func(i int) (int, int) {
		lo := i * aggChunkRows
		hi := lo + aggChunkRows
		if hi > len(rows) {
			hi = len(rows)
		}
		return lo, hi
	}

	stmt := q.opts.Stmt
	if workers <= 1 {
		for i := range chunks {
			if err := stmt.Err(); err != nil {
				chunks[i] = &aggChunk{err: err}
				break
			}
			lo, hi := chunkBounds(i)
			chunks[i] = q.foldChunk(rows[lo:hi], aggNodes)
			if chunks[i].err != nil {
				break
			}
		}
	} else {
		mParallelAggs.Inc()
		if q.par < workers {
			q.par = workers
		}
		if stmt != nil {
			stmt.workers.Store(int32(workers))
		}
		var (
			next atomic.Int64
			stop atomic.Bool
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					i := int(next.Add(1)) - 1
					if i >= nchunks {
						return
					}
					if err := stmt.Err(); err != nil {
						chunks[i] = &aggChunk{err: err}
						stop.Store(true)
						return
					}
					lo, hi := chunkBounds(i)
					chunks[i] = q.foldChunk(rows[lo:hi], aggNodes)
					if chunks[i].err != nil {
						stop.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	if err := chunkError(chunks); err != nil {
		return nil, nil, err
	}
	return q.finalizeGroups(mergeChunks(chunks), items, orderExprs, aggNodes)
}

// chunkError returns the lowest-index chunk error. Chunks are claimed in
// increasing index order and always run to completion, so this is the first
// error in input-row order — the same one chunked serial execution reports.
func chunkError(chunks []*aggChunk) error {
	for _, ck := range chunks {
		if ck == nil {
			continue // unclaimed after an earlier chunk stopped the queue
		}
		if ck.err != nil {
			return ck.err
		}
	}
	return nil
}

// mergeChunks merges per-chunk group partials in chunk order: group
// discovery order and each group's first row match the input order, and
// float partials accumulate in a fixed order regardless of worker count.
func mergeChunks(chunks []*aggChunk) []*chunkGroup {
	merged := make(map[string]*chunkGroup)
	var order []*chunkGroup
	for _, ck := range chunks {
		for _, g := range ck.order {
			m := merged[g.key]
			if m == nil {
				merged[g.key] = g
				order = append(order, g)
				continue
			}
			for i := range m.parts {
				m.parts[i].merge(&g.parts[i])
			}
		}
	}
	return order
}

// finalizeGroups evaluates HAVING, the output items and the ORDER BY keys
// per merged group, with each group's first input row as the non-aggregate
// environment — exactly as the serial path does.
func (q *query) finalizeGroups(order []*chunkGroup, items []sqlparse.SelectItem, orderExprs []sqlparse.Expr, aggNodes []*sqlparse.FuncCall) ([][]reldb.Value, [][]reldb.Value, error) {
	st := q.st
	var out [][]reldb.Value
	var keys [][]reldb.Value
	for _, g := range order {
		aggVals := make(map[*sqlparse.FuncCall]reldb.Value, len(aggNodes))
		for i, node := range aggNodes {
			aggVals[node] = g.parts[i].finish(node.Name)
		}
		gev := &env{cols: q.cols, params: q.params, agg: aggVals, tx: q.tx, row: g.first}
		if st.Having != nil {
			v, err := eval(st.Having, gev)
			if err != nil {
				return nil, nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		rec := make([]reldb.Value, len(items))
		for i, item := range items {
			v, err := eval(item.Expr, gev)
			if err != nil {
				return nil, nil, err
			}
			rec[i] = v
		}
		out = append(out, rec)
		if len(orderExprs) > 0 {
			k := make([]reldb.Value, len(orderExprs))
			for i, e := range orderExprs {
				v, err := eval(e, gev)
				if err != nil {
					return nil, nil, err
				}
				k[i] = v
			}
			keys = append(keys, k)
		}
	}
	return out, keys, nil
}
