package sqlexec

import (
	"errors"
	"runtime"
	"testing"

	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// Regression tests for the UPDATE/DELETE cancellation gap: ExecOpts used to
// drop the statement entry on the floor, so a KILL landed on SELECTs but
// writes ran to completion no matter what. The fix threads opts.Stmt through
// matchingSlots/execUpdate/execDelete with the same cancelCheckRows stride
// the query path uses.

// bigSnapshot folds the fixture table into (row count, SUM(n)) so tests can
// assert a killed write rolled back completely.
func bigSnapshot(t *testing.T, db *reldb.DB) (int64, int64) {
	t.Helper()
	sel, err := sqlparse.Parse(`SELECT COUNT(*), SUM(n) FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	var rs *ResultSet
	if err := db.Read(func(tx *reldb.Tx) error {
		var err error
		rs, err = Query(tx, sel.(*sqlparse.Select), nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return rs.Rows[0][0].AsInt(), rs.Rows[0][1].AsInt()
}

// killDuringExec mirrors killDuring for write statements: it runs src inside
// db.Write and kills the statement once ready(entry) fires. It reports
// whether the kill landed, failing the test if a landed kill surfaced
// anything but ErrStatementKilled.
func killDuringExec(t *testing.T, db *reldb.DB, src string, ready func(*StmtEntry) bool) bool {
	t.Helper()
	stmt, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	entry := Statements.Begin(src, "exec")
	done := make(chan error, 1)
	go func() {
		defer entry.Finish()
		done <- db.Write(func(tx *reldb.Tx) error {
			_, err := ExecOpts(tx, stmt, nil, Options{Stmt: entry})
			return err
		})
	}()

	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("unkilled statement failed: %v", err)
			}
			return false
		default:
		}
		if ready(entry) {
			break
		}
		runtime.Gosched()
	}
	if !Statements.Kill(entry.ID()) {
		if err := <-done; err != nil {
			t.Fatalf("unkilled statement failed: %v", err)
		}
		return false
	}
	err = <-done
	if err == nil {
		// The kill landed after the final cancellation check; the write
		// committed whole. Retry for one that lands mid-scan.
		return false
	}
	if !errors.Is(err, ErrStatementKilled) {
		t.Fatalf("killed statement returned err=%v, want ErrStatementKilled", err)
	}
	return true
}

// retryKillExec kills src mid-scan and asserts the transaction unwound
// completely. A run where the statement outraces the kill commits its writes,
// so every attempt starts from a fresh fixture rather than reusing a table
// the previous attempt may have mutated.
func retryKillExec(t *testing.T, src string, ready func(*StmtEntry) bool) {
	t.Helper()
	for attempt := 0; attempt < 10; attempt++ {
		db := cancelFixture(t, 300_000)
		wantCount, wantSum := bigSnapshot(t, db)
		if !killDuringExec(t, db, src, ready) {
			continue
		}
		if count, sum := bigSnapshot(t, db); count != wantCount || sum != wantSum {
			t.Fatalf("killed write left partial changes: count/sum %d/%d, want %d/%d",
				count, sum, wantCount, wantSum)
		}
		return
	}
	t.Fatalf("statement finished before the kill could land in 10 attempts: %s", src)
}

// TestKillPreCancelledExec: a statement killed before execution must fail at
// the first cancellation checkpoint of the write scan and leave the table
// untouched. Deterministic — this is the case ExecOpts silently ignored.
func TestKillPreCancelledExec(t *testing.T) {
	for _, src := range []string{
		`UPDATE big SET x = x + 1 WHERE n * 3 + 1 > 0`,
		`DELETE FROM big WHERE n * 3 + 1 > 0`,
	} {
		db := cancelFixture(t, 3*int(cancelCheckRows))
		wantCount, wantSum := bigSnapshot(t, db)
		stmt, err := sqlparse.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		entry := Statements.Begin(src, "exec")
		if !Statements.Kill(entry.ID()) {
			t.Fatal("Kill did not find the registered statement")
		}
		err = db.Write(func(tx *reldb.Tx) error {
			_, err := ExecOpts(tx, stmt, nil, Options{Stmt: entry})
			return err
		})
		entry.Finish()
		if !errors.Is(err, ErrStatementKilled) {
			t.Fatalf("%s: pre-cancelled exec returned %v, want ErrStatementKilled", src, err)
		}
		if count, sum := bigSnapshot(t, db); count != wantCount || sum != wantSum {
			t.Fatalf("%s: killed write mutated the table: count/sum %d/%d, want %d/%d",
				src, count, sum, wantCount, wantSum)
		}
	}
}

// TestKillMidUpdate / TestKillMidDelete: a KILL landing while the write is
// mid-scan unwinds the transaction — no partial UPDATE/DELETE survives.
func TestKillMidUpdate(t *testing.T) {
	retryKillExec(t, `UPDATE big SET n = n + 1 WHERE n * 3 + 1 > 0`, midScan)
}

func TestKillMidDelete(t *testing.T) {
	retryKillExec(t, `DELETE FROM big WHERE n * 3 + 1 > 0`, midScan)
}
