package sqlexec

import "perfdmf/internal/obs"

// Executor-level metrics, resolved once. Access-path counters move on every
// base-table access decision; the row counters track scanned (fetched and
// examined) vs. returned (surviving projection and LIMIT) rows, the ratio
// that tells whether indexes are doing their job.
var (
	mIndexAccess  = obs.Default.Counter("sqlexec_index_access_total")
	mFullScan     = obs.Default.Counter("sqlexec_full_scan_total")
	mRowsScanned  = obs.Default.Counter("sqlexec_rows_scanned_total")
	mRowsReturned = obs.Default.Counter("sqlexec_rows_returned_total")
)
