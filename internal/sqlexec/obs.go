package sqlexec

import "perfdmf/internal/obs"

// Executor-level metrics, resolved once. Access-path counters move on every
// base-table access decision; the row counters track scanned (fetched and
// examined) vs. returned (surviving projection and LIMIT) rows, the ratio
// that tells whether indexes are doing their job. The parallel counters
// report how often the partitioned scan and chunked aggregation paths
// engage, and the plan-cache counters how often statement execution skipped
// the parser (hits are recorded by godbc's per-connection statement cache;
// reuse/invalidation by the executor's access-path memo).
var (
	mIndexAccess  = obs.Default.Counter("sqlexec_index_access_total")
	mFullScan     = obs.Default.Counter("sqlexec_full_scan_total")
	mRowsScanned  = obs.Default.Counter("sqlexec_rows_scanned_total")
	mRowsReturned = obs.Default.Counter("sqlexec_rows_returned_total")

	mParallelScans  = obs.Default.Counter("sqlexec_parallel_scans_total")
	mParallelAggs   = obs.Default.Counter("sqlexec_parallel_aggs_total")
	mScanPartitions = obs.Default.Counter("sqlexec_scan_partitions_total")

	mColumnarScans       = obs.Default.Counter("sqlexec_columnar_scans_total")
	mColumnarRowsScanned = obs.Default.Counter("sqlexec_columnar_rows_scanned_total")
	mColumnarFallbacks   = obs.Default.Counter("sqlexec_columnar_fallbacks_total")

	mPlanCacheHits     = obs.Default.Counter("sqlexec_plan_cache_hits_total")
	mPlanCacheMisses   = obs.Default.Counter("sqlexec_plan_cache_misses_total")
	mPlanInvalidations = obs.Default.Counter("sqlexec_plan_cache_invalidations_total")
	mAccessPlanReuse   = obs.Default.Counter("sqlexec_access_plan_reuse_total")

	mStmtStarted = obs.Default.Counter("sqlexec_stmt_started_total")
	mStmtKilled  = obs.Default.Counter("sqlexec_stmt_killed_total")
	mStmtActive  = obs.Default.Gauge("sqlexec_stmt_active")

	mCatalogQueries = obs.Default.Counter("obs_catalog_queries_total")
	mCatalogAnalyze = obs.Default.Counter("obs_catalog_analyze_total")
)

// PlanCacheHit records a statement served from a prepared-plan cache
// without touching the parser. The counters live here rather than in godbc
// so every layer reporting on the plan cache shares one metric family.
func PlanCacheHit() { mPlanCacheHits.Inc() }

// PlanCacheMiss records a statement that had to be parsed.
func PlanCacheMiss() { mPlanCacheMisses.Inc() }
