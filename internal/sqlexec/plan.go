package sqlexec

import (
	"strings"
	"sync/atomic"

	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// accessKind classifies the base-table access decision planAccess made.
type accessKind uint8

const (
	accessFullScan accessKind = iota // scan every live row
	accessEqIndex                    // single-column equality index lookup
	accessMultiEq                    // composite-index multi-equality lookup
	accessOther                      // IN-union, range, BETWEEN: replanned each execution
)

// accessDecision records planAccess's choice in a re-executable form:
// column names plus the value expressions (Literal or Param nodes) they
// compare against. Column names rather than positions survive unrelated
// schema changes; the schema version check makes even that conservative.
type accessDecision struct {
	kind     accessKind
	cols     []string
	valExprs []sqlparse.Expr
}

// Plan is a reusable SELECT execution handle. godbc's prepared statements
// and its per-connection statement cache attach one to each SELECT so that
// repeated executions skip the access-path search whenever the base table's
// schema version is unchanged. A Plan is only safe for use by one goroutine
// at a time, matching the connection it belongs to.
type Plan struct {
	Select *sqlparse.Select

	// Columnar counts executions of this plan that took the vectorized
	// aggregation path, surfaced as OBS_PLAN_CACHE.columnar_hits. Atomic
	// because catalog snapshots read it from other goroutines while the
	// owning connection executes.
	Columnar atomic.Int64

	memoized bool // an access decision has been captured
	valid    bool // the captured decision kind is replayable
	table    string
	version  int64
	dec      accessDecision
}

// NewPlan wraps a parsed SELECT in a reusable plan handle.
func NewPlan(sel *sqlparse.Select) *Plan { return &Plan{Select: sel} }

// memoize captures planAccess's decision for the next execution. Only
// decisions that replay without re-inspecting the WHERE clause are kept:
// full scans and (multi-)equality index lookups. IN-unions and range scans
// collect slots during planning, so caching them would buy nothing.
func (p *Plan) memoize(table string, version int64, dec accessDecision) {
	p.memoized = true
	p.table = table
	p.version = version
	p.dec = dec
	switch dec.kind {
	case accessFullScan, accessEqIndex, accessMultiEq:
		p.valid = true
	default:
		p.valid = false
	}
}

// constVal resolves a memoized value expression against this execution's
// parameters.
func constVal(e sqlparse.Expr, params []reldb.Value) (reldb.Value, bool) {
	switch e := e.(type) {
	case *sqlparse.Literal:
		return e.Value, true
	case *sqlparse.Param:
		if e.Index < len(params) {
			return params[e.Index], true
		}
	}
	return reldb.Null, false
}

// resolveAccess returns the base table's candidate slots, replaying the
// attached plan's memoized decision when its schema version still matches
// and falling back to (and re-memoizing) a fresh planAccess run otherwise.
func (q *query) resolveAccess(table, alias string, requireQualified bool) ([]int, bool, error) {
	p := q.opts.Plan
	if p != nil && p.Select == q.st && p.memoized {
		if !strings.EqualFold(p.table, table) {
			p = nil // stale handle reused for a different statement shape
		} else if q.tx.TableVersion(table) != p.version {
			mPlanInvalidations.Inc()
			p.memoized = false
		} else if p.valid {
			if slots, scanned, ok := q.replayAccess(p); ok {
				mAccessPlanReuse.Inc()
				return slots, scanned, nil
			}
		}
	}
	slots, dec, err := planAccess(q.tx, table, alias, q.st.Where, q.params, requireQualified)
	if err != nil {
		return nil, false, err
	}
	if p != nil && p.Select == q.st {
		p.memoize(table, q.tx.TableVersion(table), dec)
	}
	return slots, dec.kind == accessFullScan, nil
}

// replayAccess re-executes a memoized access decision. ok=false means the
// decision could not be replayed (e.g. a parameter is missing) and the
// caller must replan. A NULL comparison value yields an empty candidate
// set, which is exactly what replanning would produce after the WHERE
// filter: col = NULL matches no row.
func (q *query) replayAccess(p *Plan) (slots []int, scanned, ok bool) {
	switch p.dec.kind {
	case accessFullScan:
		return nil, true, true
	case accessEqIndex:
		v, okV := constVal(p.dec.valExprs[0], q.params)
		if !okV {
			return nil, false, false
		}
		if v.IsNull() {
			return nil, false, true
		}
		s, used := q.tx.LookupEq(p.table, p.dec.cols[0], v)
		if !used {
			return nil, false, false
		}
		return s, false, true
	case accessMultiEq:
		vals := make([]reldb.Value, len(p.dec.valExprs))
		for i, e := range p.dec.valExprs {
			v, okV := constVal(e, q.params)
			if !okV {
				return nil, false, false
			}
			if v.IsNull() {
				return nil, false, true
			}
			vals[i] = v
		}
		s, used := q.tx.LookupEqMulti(p.table, p.dec.cols, vals)
		if !used {
			return nil, false, false
		}
		return s, false, true
	}
	return nil, false, false
}
