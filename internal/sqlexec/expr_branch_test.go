package sqlexec

import (
	"testing"
)

// These tests chase the evaluator branches the higher-level fixtures miss:
// NULL propagation through every operator family, scalar-function edge
// cases, and grouping keys over every value type.

func TestNullPropagation(t *testing.T) {
	db := fixture(t)
	// Arithmetic with NULL (version is NULL for sphot).
	rs := run(t, db, `SELECT version || 'x', LENGTH(version), ABS(id) FROM application WHERE id = 3`)
	if !rs.Rows[0][0].IsNull() || !rs.Rows[0][1].IsNull() {
		t.Fatalf("null propagation: %v", rs.Rows[0])
	}
	if rs.Rows[0][2].AsInt() != 3 {
		t.Fatalf("abs: %v", rs.Rows[0])
	}
	// NULL in arithmetic, modulo, unary minus.
	rs = run(t, db, `SELECT LENGTH(version) + 1, LENGTH(version) % 2, -LENGTH(version)
		FROM application WHERE id = 3`)
	for i, v := range rs.Rows[0] {
		if !v.IsNull() {
			t.Fatalf("col %d not null: %v", i, v.Go())
		}
	}
	// Three-valued AND/OR: UNKNOWN OR TRUE = TRUE; UNKNOWN AND TRUE = UNKNOWN.
	rs = run(t, db, `SELECT COUNT(*) FROM application WHERE version = 'zzz' OR id = 3`)
	if rs.Rows[0][0].AsInt() != 1 {
		t.Fatalf("unknown or true: %v", rs.Rows)
	}
	rs = run(t, db, `SELECT COUNT(*) FROM application WHERE version = version AND id = 3`)
	if rs.Rows[0][0].AsInt() != 0 {
		t.Fatalf("unknown and true: %v", rs.Rows)
	}
	// BETWEEN with NULL bound → UNKNOWN: ids 1 and 2 have version length 3
	// (so they match 1..3); id 3's NULL version makes its predicate UNKNOWN.
	rs = run(t, db, `SELECT COUNT(*) FROM application WHERE id BETWEEN 1 AND LENGTH(version)`)
	if rs.Rows[0][0].AsInt() != 2 {
		t.Fatalf("between null: %v", rs.Rows)
	}
	// IN list containing NULL: no match → UNKNOWN, not false-positive.
	rs = run(t, db, `SELECT COUNT(*) FROM application WHERE id IN (99, LENGTH(version))`)
	if rs.Rows[0][0].AsInt() != 0 {
		t.Fatalf("in with null: %v", rs.Rows)
	}
	// NOT IN where the list contains a NULL (id 3's version) is UNKNOWN
	// for that row; rows with concrete lists still match.
	rs = run(t, db, `SELECT COUNT(*) FROM application WHERE id NOT IN (99, LENGTH(version))`)
	if rs.Rows[0][0].AsInt() != 2 {
		t.Fatalf("not in with null: %v", rs.Rows)
	}
	rs = run(t, db, `SELECT COUNT(*) FROM application WHERE id = 3 AND id NOT IN (99, LENGTH(version))`)
	if rs.Rows[0][0].AsInt() != 0 {
		t.Fatalf("not in with null for the null row: %v", rs.Rows)
	}
	// Unary minus on floats, modulo on ints.
	rs = run(t, db, `SELECT -time, id % 2 FROM trial WHERE id = 1`)
	if rs.Rows[0][0].AsFloat() != -10.5 || rs.Rows[0][1].AsInt() != 1 {
		t.Fatalf("unary/mod: %v", rs.Rows[0])
	}
	// Integer modulo by zero is NULL.
	rs = run(t, db, `SELECT id % 0 FROM trial WHERE id = 1`)
	if !rs.Rows[0][0].IsNull() {
		t.Fatalf("mod zero: %v", rs.Rows[0][0].Go())
	}
}

func TestScalarFunctionErrors(t *testing.T) {
	db := fixture(t)
	bad := []string{
		"SELECT ABS() FROM trial",
		"SELECT ABS(1, 2) FROM trial",
		"SELECT SQRT() FROM trial",
		"SELECT ROUND() FROM trial",
		"SELECT ROUND(1, 2, 3) FROM trial",
		"SELECT UPPER() FROM trial",
		"SELECT LOWER(1, 2) FROM trial",
		"SELECT LENGTH() FROM trial",
		"SELECT AVG(time, id) FROM trial",
	}
	for _, src := range bad {
		if _, _, err := tryRun(db, src); err == nil {
			t.Errorf("%s accepted", src)
		}
	}
	// Aggregate in WHERE is rejected.
	if _, _, err := tryRun(db, "SELECT name FROM trial WHERE SUM(time) > 1"); err == nil {
		t.Error("aggregate in WHERE accepted")
	}
}

func TestScalarFunctionVariants(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, `SELECT ABS(-2.5), ROUND(2.4), SQRT(LENGTH(version)),
		COALESCE(version, 'none'), IFNULL(version, 'none')
		FROM application WHERE id = 3`)
	r := rs.Rows[0]
	if r[0].AsFloat() != 2.5 {
		t.Errorf("abs float: %v", r[0].Go())
	}
	if r[1].AsFloat() != 2.0 {
		t.Errorf("round no digits: %v", r[1].Go())
	}
	if !r[2].IsNull() {
		t.Errorf("sqrt(null): %v", r[2].Go())
	}
	if r[3].S != "none" || r[4].S != "none" {
		t.Errorf("coalesce: %v %v", r[3].Go(), r[4].Go())
	}
	// CONCAT with NULL yields NULL; without, joins.
	rs = run(t, db, `SELECT CONCAT(name, '-', version), CONCAT(name, version) FROM application WHERE id = 3`)
	if !rs.Rows[0][0].IsNull() || !rs.Rows[0][1].IsNull() {
		t.Errorf("concat null: %v", rs.Rows[0])
	}
	rs = run(t, db, `SELECT CONCAT(name, '/', version) FROM application WHERE id = 1`)
	if rs.Rows[0][0].S != "sppm/1.0" {
		t.Errorf("concat: %v", rs.Rows[0][0].Go())
	}
}

func TestGroupByMixedTypesAndBooleans(t *testing.T) {
	db := fixture(t)
	// Group by a boolean expression — exercises keyOf over TBool.
	rs := run(t, db, `SELECT node_count > 128, COUNT(*) FROM trial GROUP BY node_count > 128 ORDER BY 2`)
	if len(rs.Rows) != 2 {
		t.Fatalf("bool group: %v", rs.Rows)
	}
	// Group by a float expression and a string.
	rs = run(t, db, `SELECT time / 2, name, COUNT(*) FROM trial GROUP BY time / 2, name`)
	if len(rs.Rows) != 5 {
		t.Fatalf("multi-key group: %v", rs.Rows)
	}
	// Group by a NULL-able column: NULLs form their own group.
	run(t, db, "INSERT INTO trial (application, name, node_count, time) VALUES (1, 'nullnodes', NULL, 1.0)")
	rs = run(t, db, `SELECT node_count, COUNT(*) FROM trial GROUP BY node_count ORDER BY node_count`)
	if len(rs.Rows) != 4 { // NULL, 128, 256, 512
		t.Fatalf("null group: %v", rs.Rows)
	}
	if !rs.Rows[0][0].IsNull() {
		t.Fatalf("null group first: %v", rs.Rows[0])
	}
}

func TestAggregatesInsideNestedExpressions(t *testing.T) {
	db := fixture(t)
	// collectAggs must find aggregates under unary/in/between/isnull nodes.
	rs := run(t, db, `SELECT -(SUM(time)), SUM(time) + AVG(time),
		COUNT(*) IN (5, 6), MAX(time) BETWEEN 1 AND 100, MIN(time) IS NULL
		FROM trial`)
	r := rs.Rows[0]
	if r[0].AsFloat() >= 0 {
		t.Errorf("negated sum: %v", r[0].Go())
	}
	if !r[2].AsBool() || !r[3].AsBool() || r[4].AsBool() {
		t.Errorf("agg in predicates: %v", r)
	}
}
