package sqlexec

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// StatsTable is the stored catalog table ANALYZE maintains: one row per
// (table, column) holding the table's analyzed row count and the column's
// NDV, null accounting and min/max. OBS_TABLE_STATS is the read surface;
// the cost-based planner consumes the same rows.
const StatsTable = "PERFDMF_TABLE_STATS"

// Column positions in StatsTable, in schema order.
const (
	statTableName = iota
	statColumnName
	statRowCount
	statNDV
	statNullCount
	statNullFrac
	statMinValue
	statMaxValue
	statSchemaSig
	statAnalyzedAt
)

// statsSchema is the StatsTable layout; ensureStatsTable creates it on the
// first ANALYZE in a database.
func statsSchema() *reldb.Schema {
	return &reldb.Schema{
		Name: StatsTable,
		Columns: []reldb.Column{
			{Name: "table_name", Type: reldb.TString, NotNull: true},
			{Name: "column_name", Type: reldb.TString, NotNull: true},
			{Name: "row_count", Type: reldb.TInt},
			{Name: "ndv", Type: reldb.TInt},
			{Name: "null_count", Type: reldb.TInt},
			{Name: "null_frac", Type: reldb.TFloat},
			{Name: "min_value", Type: reldb.TString},
			{Name: "max_value", Type: reldb.TString},
			{Name: "schema_sig", Type: reldb.TString},
			{Name: "analyzed_at", Type: reldb.TTime},
		},
	}
}

func ensureStatsTable(tx *reldb.Tx) error {
	if tx.HasTable(StatsTable) {
		return nil
	}
	return tx.CreateTable(statsSchema())
}

// execAnalyze runs ANALYZE [table]: it scans the named table (or every
// user table) with the partitioned scan, folds per-column row count / NDV /
// null / min-max statistics, and replaces the table's rows in StatsTable.
// RowsAffected counts the statistics rows written.
func execAnalyze(tx *reldb.Tx, st *sqlparse.Analyze, opts Options) (Result, error) {
	mCatalogAnalyze.Inc()
	var tables []string
	if st.Table != "" {
		if strings.EqualFold(st.Table, StatsTable) {
			return Result{}, fmt.Errorf("sqlexec: cannot ANALYZE %s", StatsTable)
		}
		if !tx.HasTable(st.Table) {
			return Result{}, fmt.Errorf("sqlexec: no table %s", st.Table)
		}
		tables = []string{st.Table}
	} else {
		for _, t := range tx.TableNames() {
			if strings.EqualFold(t, StatsTable) {
				continue
			}
			tables = append(tables, t)
		}
	}
	if err := ensureStatsTable(tx); err != nil {
		return Result{}, err
	}
	var res Result
	for _, t := range tables {
		if err := opts.Stmt.Err(); err != nil {
			return Result{}, err
		}
		n, err := analyzeTable(tx, t, opts)
		if err != nil {
			return Result{}, err
		}
		res.RowsAffected += n
	}
	return res, nil
}

// colStats is one column's mergeable partial state over a row subset.
type colStats struct {
	nulls    int64
	distinct map[string]struct{}
	min, max reldb.Value
}

func (c *colStats) observe(v reldb.Value) {
	if v.IsNull() {
		c.nulls++
		return
	}
	c.distinct[keyOf([]reldb.Value{v})] = struct{}{}
	if c.min.IsNull() || reldb.Compare(v, c.min) < 0 {
		c.min = v
	}
	if c.max.IsNull() || reldb.Compare(v, c.max) > 0 {
		c.max = v
	}
}

func (c *colStats) merge(o *colStats) {
	c.nulls += o.nulls
	for k := range o.distinct {
		c.distinct[k] = struct{}{}
	}
	if !o.min.IsNull() && (c.min.IsNull() || reldb.Compare(o.min, c.min) < 0) {
		c.min = o.min
	}
	if !o.max.IsNull() && (c.max.IsNull() || reldb.Compare(o.max, c.max) > 0) {
		c.max = o.max
	}
}

func newColStats(n int) []colStats {
	out := make([]colStats, n)
	for i := range out {
		out[i].distinct = make(map[string]struct{})
	}
	return out
}

// analyzeTable computes and persists one table's statistics, returning the
// number of statistics rows written (one per column). The scan reuses the
// executor's partitioned layout: partitions are claimed off an atomic
// queue, folded into per-partition partials, and merged in partition order.
func analyzeTable(tx *reldb.Tx, table string, opts Options) (int64, error) {
	tbl, err := tx.Table(table)
	if err != nil {
		return 0, err
	}
	schema := tbl.Schema()
	ncols := len(schema.Columns)
	stmt := opts.Stmt

	type part struct {
		rows  []reldb.Row
		stats []colStats
		count int64
		err   error
	}
	var parts []*part
	workers := opts.effectiveWorkers()
	tx.ScanPartitioned(table, workers*partsPerWorker, func(_, _ int, rows []reldb.Row) { //nolint:errcheck // table verified above
		parts = append(parts, &part{rows: rows})
	})
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers > 1 {
		if stmt != nil {
			stmt.workers.Store(int32(workers))
		}
		var (
			next atomic.Int64
			stop atomic.Bool
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					i := int(next.Add(1)) - 1
					if i >= len(parts) {
						return
					}
					p := parts[i]
					if p.err = foldStatsPart(p.rows, ncols, stmt, &p.stats, &p.count); p.err != nil {
						stop.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
	} else {
		for _, p := range parts {
			if p.err = foldStatsPart(p.rows, ncols, stmt, &p.stats, &p.count); p.err != nil {
				break
			}
		}
	}

	merged := newColStats(ncols)
	var rowCount int64
	for _, p := range parts {
		if p.err != nil {
			return 0, p.err
		}
		if p.stats == nil {
			continue // unclaimed after an earlier partition stopped the queue
		}
		rowCount += p.count
		for c := range merged {
			merged[c].merge(&p.stats[c])
		}
	}

	if err := replaceStatsRows(tx, table, schema, rowCount, merged); err != nil {
		return 0, err
	}
	return int64(ncols), nil
}

// foldStatsPart folds one partition's rows into fresh per-column partials,
// checking for cancellation between row batches.
func foldStatsPart(rows []reldb.Row, ncols int, stmt *StmtEntry, stats *[]colStats, count *int64) error {
	cs := newColStats(ncols)
	var n int64
	for _, row := range rows {
		if row == nil {
			continue
		}
		n++
		if n%cancelCheckRows == 0 {
			if err := stmt.Err(); err != nil {
				return err
			}
			if stmt != nil {
				stmt.rowsScanned.Add(cancelCheckRows)
			}
		}
		for c := 0; c < ncols && c < len(row); c++ {
			cs[c].observe(row[c])
		}
	}
	*stats = cs
	*count = n
	return nil
}

// schemaSig fingerprints a table's shape so staleness survives process
// restarts — reldb schema versions are process-local counters and reset on
// reopen, while the stats table is durable. Any column rename, type change,
// nullability change, or primary-key change alters the signature.
func schemaSig(schema *reldb.Schema) string {
	var b strings.Builder
	for i, c := range schema.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strings.ToLower(c.Name))
		b.WriteByte(':')
		b.WriteString(c.Type.String())
		if c.NotNull {
			b.WriteString(":nn")
		}
	}
	if schema.PrimaryKey != "" {
		b.WriteString("|pk:")
		b.WriteString(strings.ToLower(schema.PrimaryKey))
	}
	return b.String()
}

// replaceStatsRows swaps the table's rows in StatsTable: delete the stale
// generation, insert the fresh one, all inside the caller's transaction.
func replaceStatsRows(tx *reldb.Tx, table string, schema *reldb.Schema, rowCount int64, stats []colStats) error {
	var stale []int
	//lint:allow ctxpoll -- stats-table scan is bounded by analyzed column count, not user rows
	tx.Scan(StatsTable, func(slot int, r reldb.Row) bool { //nolint:errcheck // created by ensureStatsTable
		if strings.EqualFold(r[statTableName].AsString(), table) {
			stale = append(stale, slot)
		}
		return true
	})
	for _, slot := range stale {
		if err := tx.Delete(StatsTable, slot); err != nil {
			return err
		}
	}
	sig := schemaSig(schema)
	at := reldb.Time(now())
	for i, col := range schema.Columns {
		cs := &stats[i]
		nullFrac := 0.0
		if rowCount > 0 {
			nullFrac = float64(cs.nulls) / float64(rowCount)
		}
		minV, maxV := reldb.Null, reldb.Null
		if !cs.min.IsNull() {
			minV = reldb.Str(cs.min.AsString())
		}
		if !cs.max.IsNull() {
			maxV = reldb.Str(cs.max.AsString())
		}
		row := reldb.Row{
			reldb.Str(schema.Name), reldb.Str(col.Name),
			reldb.Int(rowCount), reldb.Int(int64(len(cs.distinct))), reldb.Int(cs.nulls),
			reldb.Float(nullFrac), minV, maxV,
			reldb.Str(sig), at,
		}
		if _, err := tx.Insert(StatsTable, row); err != nil {
			return err
		}
	}
	return nil
}
