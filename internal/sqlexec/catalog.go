package sqlexec

import (
	"sort"
	"strings"
	"sync/atomic"

	"perfdmf/internal/obs"
	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// The introspection catalog: read-only virtual tables, addressable from any
// SELECT, that snapshot engine state at bind time. They are materialized
// like derived tables — never stored, never writable, invisible to DDL —
// so joins, filters, aggregates and ORDER BY all work over them unchanged.
const (
	// CatalogMetrics snapshots the process metric registry.
	CatalogMetrics = "OBS_METRICS"
	// CatalogActiveStatements lists every statement currently executing.
	CatalogActiveStatements = "OBS_ACTIVE_STATEMENTS"
	// CatalogPlanCache reports per-connection prepared-statement caches.
	CatalogPlanCache = "OBS_PLAN_CACHE"
	// CatalogTableStats joins ANALYZE's persisted statistics with live
	// table state and a staleness verdict.
	CatalogTableStats = "OBS_TABLE_STATS"
)

// catalogDef is one virtual table: its column names and a snapshot
// function producing the rows.
type catalogDef struct {
	cols []string
	rows func(tx *reldb.Tx) ([]reldb.Row, error)
}

// catalogs maps upper-cased virtual table names to their definitions.
var catalogs = map[string]*catalogDef{
	CatalogMetrics: {
		cols: []string{"name", "kind", "value", "count", "sum", "p50", "p95", "p99"},
		rows: obsMetricsRows,
	},
	CatalogActiveStatements: {
		cols: []string{"statement_id", "sql", "kind", "phase", "elapsed_us",
			"rows_scanned", "rows_returned", "workers", "killed"},
		rows: obsActiveStatementsRows,
	},
	CatalogPlanCache: {
		cols: []string{"conn_id", "entries", "capacity", "hits", "misses", "schema_version"},
		rows: obsPlanCacheRows,
	},
	CatalogTableStats: {
		cols: []string{"table_name", "column_name", "row_count", "ndv", "null_frac",
			"min_value", "max_value", "live_rows", "stale", "analyzed_at"},
		rows: obsTableStatsRows,
	},
}

// catalogTable resolves a FROM-clause name to a virtual table definition,
// nil for ordinary tables. Catalog names are reserved: they shadow any
// stored table of the same name.
func catalogTable(name string) *catalogDef {
	return catalogs[strings.ToUpper(name)]
}

// virtualRef reports whether a table reference addresses a virtual catalog
// table (and therefore binds to materialized rows, not storage).
func virtualRef(tr sqlparse.TableRef) bool {
	return tr.Sub == nil && catalogTable(tr.Table) != nil
}

// obsMetricsRows snapshots obs.Default. Counters and gauges fill the value
// column; histograms fill count/sum and the quantile columns instead.
func obsMetricsRows(*reldb.Tx) ([]reldb.Row, error) {
	s := obs.Default.Snapshot()
	type rec struct {
		name, kind string
		row        reldb.Row
	}
	recs := make([]rec, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	scalar := func(name, kind string, v int64) {
		recs = append(recs, rec{name, kind, reldb.Row{
			reldb.Str(name), reldb.Str(kind), reldb.Float(float64(v)),
			reldb.Null, reldb.Null, reldb.Null, reldb.Null, reldb.Null,
		}})
	}
	counterNames := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		counterNames = append(counterNames, name)
	}
	sort.Strings(counterNames)
	for _, name := range counterNames {
		scalar(name, "counter", s.Counters[name])
	}
	gaugeNames := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gaugeNames = append(gaugeNames, name)
	}
	sort.Strings(gaugeNames)
	for _, name := range gaugeNames {
		scalar(name, "gauge", s.Gauges[name])
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Histograms[name]
		recs = append(recs, rec{name, "histogram", reldb.Row{
			reldb.Str(name), reldb.Str("histogram"), reldb.Null,
			reldb.Int(h.Count), reldb.Int(h.Sum),
			reldb.Int(h.P50), reldb.Int(h.P95), reldb.Int(h.P99),
		}})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].name != recs[j].name {
			return recs[i].name < recs[j].name
		}
		return recs[i].kind < recs[j].kind
	})
	rows := make([]reldb.Row, len(recs))
	for i, r := range recs {
		rows[i] = r.row
	}
	return rows, nil
}

// obsActiveStatementsRows snapshots the statement registry, sorted by id.
// The querying statement itself appears in the result — it is, after all,
// active.
func obsActiveStatementsRows(*reldb.Tx) ([]reldb.Row, error) {
	infos := Statements.Snapshot()
	rows := make([]reldb.Row, len(infos))
	for i, s := range infos {
		rows[i] = reldb.Row{
			reldb.Int(s.ID), reldb.Str(s.SQL), reldb.Str(s.Kind), reldb.Str(s.Phase),
			reldb.Int(s.ElapsedUS), reldb.Int(s.RowsScanned), reldb.Int(s.RowsReturned),
			reldb.Int(int64(s.Workers)), reldb.Bool(s.Killed),
		}
	}
	return rows, nil
}

// PlanCacheInfo describes one connection's prepared-statement cache for
// OBS_PLAN_CACHE. godbc supplies these via SetPlanCacheSource; the executor
// itself has no view of connection-scoped caches.
type PlanCacheInfo struct {
	ConnID   int64
	Entries  int
	Capacity int
	Hits     int64
	Misses   int64
}

var planCacheSource atomic.Value // holds func() []PlanCacheInfo

// SetPlanCacheSource installs the provider OBS_PLAN_CACHE snapshots. The
// function must be safe to call from any goroutine.
func SetPlanCacheSource(fn func() []PlanCacheInfo) { planCacheSource.Store(fn) }

// obsPlanCacheRows reports one row per live connection cache, plus the
// process-wide schema version DDL staleness is judged against.
func obsPlanCacheRows(*reldb.Tx) ([]reldb.Row, error) {
	var infos []PlanCacheInfo
	if fn, ok := planCacheSource.Load().(func() []PlanCacheInfo); ok && fn != nil {
		infos = fn()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ConnID < infos[j].ConnID })
	sv := reldb.CurrentSchemaVersion()
	rows := make([]reldb.Row, len(infos))
	for i, c := range infos {
		rows[i] = reldb.Row{
			reldb.Int(c.ConnID), reldb.Int(int64(c.Entries)), reldb.Int(int64(c.Capacity)),
			reldb.Int(c.Hits), reldb.Int(c.Misses), reldb.Int(sv),
		}
	}
	return rows, nil
}

// obsTableStatsRows reads PERFDMF_TABLE_STATS inside the querying
// transaction and annotates each row with the table's live row count and a
// staleness verdict: stale when the table has been dropped, its schema
// fingerprint changed, or its live row count drifted from the analyzed
// count. The fingerprint (not the in-process schema version) makes the
// verdict survive process restarts against a file-backed archive.
func obsTableStatsRows(tx *reldb.Tx) ([]reldb.Row, error) {
	if !tx.HasTable(StatsTable) {
		return nil, nil
	}
	var rows []reldb.Row
	tx.Scan(StatsTable, func(_ int, r reldb.Row) bool { //nolint:errcheck // existence checked above
		name := r[statTableName].AsString()
		liveRows := reldb.Null
		stale := true
		if tbl, err := tx.Table(name); err == nil {
			live := int64(tbl.Len())
			liveRows = reldb.Int(live)
			stale = schemaSig(tbl.Schema()) != r[statSchemaSig].AsString() ||
				live != r[statRowCount].AsInt()
		}
		rows = append(rows, reldb.Row{
			r[statTableName], r[statColumnName], r[statRowCount], r[statNDV],
			r[statNullFrac], r[statMinValue], r[statMaxValue],
			liveRows, reldb.Bool(stale), r[statAnalyzedAt],
		})
		return true
	})
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a[0].S != b[0].S {
			return a[0].S < b[0].S
		}
		return a[1].S < b[1].S
	})
	return rows, nil
}
