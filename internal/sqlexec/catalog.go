package sqlexec

import (
	"sort"
	"strings"
	"sync/atomic"

	"perfdmf/internal/obs"
	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// The introspection catalog: read-only virtual tables, addressable from any
// SELECT, that snapshot engine state at bind time. They are materialized
// like derived tables — never stored, never writable, invisible to DDL —
// so joins, filters, aggregates and ORDER BY all work over them unchanged.
const (
	// CatalogMetrics snapshots the process metric registry.
	CatalogMetrics = "OBS_METRICS"
	// CatalogActiveStatements lists every statement currently executing.
	CatalogActiveStatements = "OBS_ACTIVE_STATEMENTS"
	// CatalogPlanCache reports per-connection prepared-statement caches.
	CatalogPlanCache = "OBS_PLAN_CACHE"
	// CatalogTableStats joins ANALYZE's persisted statistics with live
	// table state and a staleness verdict.
	CatalogTableStats = "OBS_TABLE_STATS"
	// CatalogTelemetry is a single-row view of the self-hosted telemetry
	// pipeline: governor state, queue pressure, throughput and retention.
	CatalogTelemetry = "OBS_TELEMETRY"
	// CatalogMetricsHistory exposes the in-memory metric history ring: one
	// row per metric that moved in each scrape, delta-encoded like the
	// persisted PERFDMF_METRICS_HISTORY table the scrape loop mirrors into.
	CatalogMetricsHistory = "OBS_METRICS_HISTORY"
	// CatalogAlerts lists alert episodes from the persisted alerts table,
	// open and resolved, sorted by episode id.
	CatalogAlerts = "OBS_ALERTS"
)

// AlertsBackingTable is the stored table OBS_ALERTS projects. It is defined
// here (not in godbc, which owns its DDL) so the catalog can read episode
// rows without a layering inversion.
const AlertsBackingTable = "PERFDMF_ALERTS"

// catalogDef is one virtual table: its column names and a snapshot
// function producing the rows.
type catalogDef struct {
	cols []string
	rows func(tx *reldb.Tx) ([]reldb.Row, error)
}

// catalogs maps upper-cased virtual table names to their definitions.
var catalogs = map[string]*catalogDef{
	CatalogMetrics: {
		cols: []string{"name", "kind", "value", "count", "sum", "p50", "p95", "p99"},
		rows: obsMetricsRows,
	},
	CatalogActiveStatements: {
		cols: []string{"statement_id", "sql", "kind", "phase", "elapsed_us",
			"rows_scanned", "rows_returned", "workers", "killed"},
		rows: obsActiveStatementsRows,
	},
	CatalogPlanCache: {
		cols: []string{"conn_id", "entries", "capacity", "hits", "misses",
			"columnar_hits", "schema_version"},
		rows: obsPlanCacheRows,
	},
	CatalogTableStats: {
		cols: []string{"table_name", "column_name", "row_count", "ndv", "null_frac",
			"min_value", "max_value", "live_rows", "stale", "analyzed_at"},
		rows: obsTableStatsRows,
	},
	CatalogTelemetry: {
		cols: telemetryCols,
		rows: obsTelemetryRows,
	},
	CatalogMetricsHistory: {
		cols: []string{"at", "elapsed_us", "name", "kind", "value",
			"delta_count", "delta_sum", "p50", "p95", "p99"},
		rows: obsMetricsHistoryRows,
	},
	CatalogAlerts: {
		cols: alertsCols,
		rows: obsAlertsRows,
	},
}

// alertsCols mirrors the PERFDMF_ALERTS schema; obsAlertsRows projects the
// stored rows through this order whatever the table's physical layout.
var alertsCols = []string{"alert_id", "rule_id", "rule_name", "metric", "severity",
	"state", "value", "threshold", "detail", "pending_at", "firing_at", "resolved_at"}

// telemetryCols is named (rather than inlined above) so obsTelemetryRows
// can pad its inactive row to the same width without referring back to the
// catalogs map, which would be an initialization cycle.
var telemetryCols = []string{"active", "sample_rate", "budget_pct", "write_overhead_pct",
	"governor_adjustments", "queue_depth", "queue_capacity",
	"offered", "sampled_out", "dropped", "stored", "store_errors",
	"group_commits", "pruned_spans", "pruned_slowlog",
	"retain_rows", "retain_age_sec", "last_flush_age_sec"}

// catalogTable resolves a FROM-clause name to a virtual table definition,
// nil for ordinary tables. Catalog names are reserved: they shadow any
// stored table of the same name.
func catalogTable(name string) *catalogDef {
	return catalogs[strings.ToUpper(name)]
}

// virtualRef reports whether a table reference addresses a virtual catalog
// table (and therefore binds to materialized rows, not storage).
func virtualRef(tr sqlparse.TableRef) bool {
	return tr.Sub == nil && catalogTable(tr.Table) != nil
}

// obsMetricsRows snapshots obs.Default. Counters and gauges fill the value
// column; histograms fill count/sum and the quantile columns instead.
func obsMetricsRows(*reldb.Tx) ([]reldb.Row, error) {
	s := obs.Default.Snapshot()
	type rec struct {
		name, kind string
		row        reldb.Row
	}
	recs := make([]rec, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	scalar := func(name, kind string, v int64) {
		recs = append(recs, rec{name, kind, reldb.Row{
			reldb.Str(name), reldb.Str(kind), reldb.Float(float64(v)),
			reldb.Null, reldb.Null, reldb.Null, reldb.Null, reldb.Null,
		}})
	}
	counterNames := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		counterNames = append(counterNames, name)
	}
	sort.Strings(counterNames)
	for _, name := range counterNames {
		scalar(name, "counter", s.Counters[name])
	}
	gaugeNames := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gaugeNames = append(gaugeNames, name)
	}
	sort.Strings(gaugeNames)
	for _, name := range gaugeNames {
		scalar(name, "gauge", s.Gauges[name])
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Histograms[name]
		recs = append(recs, rec{name, "histogram", reldb.Row{
			reldb.Str(name), reldb.Str("histogram"), reldb.Null,
			reldb.Int(h.Count), reldb.Int(h.Sum),
			reldb.Int(h.P50), reldb.Int(h.P95), reldb.Int(h.P99),
		}})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].name != recs[j].name {
			return recs[i].name < recs[j].name
		}
		return recs[i].kind < recs[j].kind
	})
	rows := make([]reldb.Row, len(recs))
	for i, r := range recs {
		rows[i] = r.row
	}
	return rows, nil
}

// obsActiveStatementsRows snapshots the statement registry, sorted by id.
// The querying statement itself appears in the result — it is, after all,
// active.
func obsActiveStatementsRows(*reldb.Tx) ([]reldb.Row, error) {
	infos := Statements.Snapshot()
	rows := make([]reldb.Row, len(infos))
	for i, s := range infos {
		rows[i] = reldb.Row{
			reldb.Int(s.ID), reldb.Str(s.SQL), reldb.Str(s.Kind), reldb.Str(s.Phase),
			reldb.Int(s.ElapsedUS), reldb.Int(s.RowsScanned), reldb.Int(s.RowsReturned),
			reldb.Int(int64(s.Workers)), reldb.Bool(s.Killed),
		}
	}
	return rows, nil
}

// PlanCacheInfo describes one connection's prepared-statement cache for
// OBS_PLAN_CACHE. godbc supplies these via SetPlanCacheSource; the executor
// itself has no view of connection-scoped caches.
type PlanCacheInfo struct {
	ConnID   int64
	Entries  int
	Capacity int
	Hits     int64
	Misses   int64
	// ColumnarHits counts executions of cached plans that took the
	// vectorized aggregation path (Plan.Columnar summed over entries).
	ColumnarHits int64
}

var planCacheSource atomic.Value // holds func() []PlanCacheInfo

// SetPlanCacheSource installs the provider OBS_PLAN_CACHE snapshots. The
// function must be safe to call from any goroutine.
func SetPlanCacheSource(fn func() []PlanCacheInfo) { planCacheSource.Store(fn) }

// obsPlanCacheRows reports one row per live connection cache, plus the
// process-wide schema version DDL staleness is judged against.
func obsPlanCacheRows(*reldb.Tx) ([]reldb.Row, error) {
	var infos []PlanCacheInfo
	if fn, ok := planCacheSource.Load().(func() []PlanCacheInfo); ok && fn != nil {
		infos = fn()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ConnID < infos[j].ConnID })
	sv := reldb.CurrentSchemaVersion()
	rows := make([]reldb.Row, len(infos))
	for i, c := range infos {
		rows[i] = reldb.Row{
			reldb.Int(c.ConnID), reldb.Int(int64(c.Entries)), reldb.Int(int64(c.Capacity)),
			reldb.Int(c.Hits), reldb.Int(c.Misses), reldb.Int(c.ColumnarHits), reldb.Int(sv),
		}
	}
	return rows, nil
}

// TelemetryInfo is the OBS_TELEMETRY row. godbc supplies it via
// SetTelemetrySource; the executor has no view of the telemetry pipeline
// (and must not compute wall-clock ages itself — the source pre-computes
// LastFlushAgeSec so catalog materialization stays deterministic).
type TelemetryInfo struct {
	Active              bool
	SampleRate          float64
	BudgetPct           float64
	WriteOverheadPct    float64
	GovernorAdjustments int64
	QueueDepth          int
	QueueCapacity       int
	Offered             int64
	SampledOut          int64
	Dropped             int64
	Stored              int64
	StoreErrors         int64
	GroupCommits        int64
	PrunedSpans         int64
	PrunedSlowLog       int64
	RetainRows          int     // <= 0: row-cap pruning off
	RetainAgeSec        float64 // <= 0: age pruning off
	LastFlushAgeSec     float64 // seconds since the last sink flush; < 0: never
}

var telemetrySource atomic.Value // holds func() (TelemetryInfo, bool)

// SetTelemetrySource installs the provider behind OBS_TELEMETRY. ok=false
// from the provider means no pipeline has ever run in this process. The
// function must be safe to call from any goroutine.
func SetTelemetrySource(fn func() (TelemetryInfo, bool)) { telemetrySource.Store(fn) }

// obsTelemetryRows emits exactly one row. When no pipeline has ever run
// (or no source is installed) the row is active=false with NULL state, so
// `SELECT * FROM OBS_TELEMETRY` is always answerable.
func obsTelemetryRows(*reldb.Tx) ([]reldb.Row, error) {
	var info TelemetryInfo
	known := false
	if fn, ok := telemetrySource.Load().(func() (TelemetryInfo, bool)); ok && fn != nil {
		info, known = fn()
	}
	if !known {
		row := reldb.Row{reldb.Bool(false)}
		for i := 1; i < len(telemetryCols); i++ {
			row = append(row, reldb.Null)
		}
		return []reldb.Row{row}, nil
	}
	optional := func(v float64, off bool) reldb.Value {
		if off {
			return reldb.Null
		}
		return reldb.Float(v)
	}
	return []reldb.Row{{
		reldb.Bool(info.Active),
		reldb.Float(info.SampleRate), reldb.Float(info.BudgetPct),
		reldb.Float(info.WriteOverheadPct), reldb.Int(info.GovernorAdjustments),
		reldb.Int(int64(info.QueueDepth)), reldb.Int(int64(info.QueueCapacity)),
		reldb.Int(info.Offered), reldb.Int(info.SampledOut), reldb.Int(info.Dropped),
		reldb.Int(info.Stored), reldb.Int(info.StoreErrors), reldb.Int(info.GroupCommits),
		reldb.Int(info.PrunedSpans), reldb.Int(info.PrunedSlowLog),
		reldb.Int(int64(info.RetainRows)),
		optional(info.RetainAgeSec, info.RetainAgeSec <= 0),
		optional(info.LastFlushAgeSec, info.LastFlushAgeSec < 0),
	}}, nil
}

// obsMetricsHistoryRows flattens the process-wide history ring: every
// sample's points, oldest sample first, in the sample's (sorted) point
// order. Counters and gauges fill value; histograms fill the delta and
// quantile columns instead — the same shape godbc persists.
func obsMetricsHistoryRows(*reldb.Tx) ([]reldb.Row, error) {
	samples := obs.DefaultHistory.Samples()
	var rows []reldb.Row
	for _, s := range samples {
		at := reldb.Time(s.At)
		elapsed := reldb.Int(s.Elapsed.Microseconds())
		for _, p := range s.Points {
			row := reldb.Row{at, elapsed, reldb.Str(p.Name), reldb.Str(p.Kind)}
			if p.Kind == "histogram" {
				row = append(row, reldb.Null,
					reldb.Int(p.DeltaCount), reldb.Int(p.DeltaSum),
					reldb.Int(p.P50), reldb.Int(p.P95), reldb.Int(p.P99))
			} else {
				row = append(row, reldb.Float(p.Value),
					reldb.Null, reldb.Null, reldb.Null, reldb.Null, reldb.Null)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// obsAlertsRows reads the persisted PERFDMF_ALERTS episodes inside the
// querying transaction, resolving columns by name so the projection
// survives schema drift, sorted by episode id. No alerts table (alerting
// never enabled on this database) means no rows, not an error.
func obsAlertsRows(tx *reldb.Tx) ([]reldb.Row, error) {
	if !tx.HasTable(AlertsBackingTable) {
		return nil, nil
	}
	tbl, err := tx.Table(AlertsBackingTable)
	if err != nil {
		return nil, nil
	}
	idx := make(map[string]int)
	for i, c := range tbl.Schema().Columns {
		idx[strings.ToLower(c.Name)] = i
	}
	pick := func(r reldb.Row, name string) reldb.Value {
		if i, ok := idx[name]; ok && i < len(r) {
			return r[i]
		}
		return reldb.Null
	}
	var rows []reldb.Row
	//lint:allow ctxpoll -- alerts scan is bounded by episode retention, not user rows
	tx.Scan(AlertsBackingTable, func(_ int, r reldb.Row) bool { //nolint:errcheck // existence checked above
		out := make(reldb.Row, 0, len(alertsCols))
		for _, col := range alertsCols {
			out = append(out, pick(r, col))
		}
		rows = append(rows, out)
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].AsInt() < rows[j][0].AsInt() })
	return rows, nil
}

// obsTableStatsRows reads PERFDMF_TABLE_STATS inside the querying
// transaction and annotates each row with the table's live row count and a
// staleness verdict: stale when the table has been dropped, its schema
// fingerprint changed, or its live row count drifted from the analyzed
// count. The fingerprint (not the in-process schema version) makes the
// verdict survive process restarts against a file-backed archive.
func obsTableStatsRows(tx *reldb.Tx) ([]reldb.Row, error) {
	if !tx.HasTable(StatsTable) {
		return nil, nil
	}
	var rows []reldb.Row
	//lint:allow ctxpoll -- stats-table scan is bounded by analyzed column count, not user rows
	tx.Scan(StatsTable, func(_ int, r reldb.Row) bool { //nolint:errcheck // existence checked above
		name := r[statTableName].AsString()
		liveRows := reldb.Null
		stale := true
		if tbl, err := tx.Table(name); err == nil {
			live := int64(tbl.Len())
			liveRows = reldb.Int(live)
			stale = schemaSig(tbl.Schema()) != r[statSchemaSig].AsString() ||
				live != r[statRowCount].AsInt()
		}
		rows = append(rows, reldb.Row{
			r[statTableName], r[statColumnName], r[statRowCount], r[statNDV],
			r[statNullFrac], r[statMinValue], r[statMaxValue],
			liveRows, reldb.Bool(stale), r[statAnalyzedAt],
		})
		return true
	})
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a[0].S != b[0].S {
			return a[0].S < b[0].S
		}
		return a[1].S < b[1].S
	})
	return rows, nil
}
