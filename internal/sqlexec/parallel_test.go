package sqlexec

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// parallelFixture builds a database large enough that the parallel scan and
// chunked-aggregation paths actually engage (above parallelMinRows), plus a
// small dimension table for joins and a two-row table whose scalar subquery
// misuse produces a runtime error mid-filter.
//
// Row values come from a tiny deterministic LCG so the fixture is identical
// on every run without storing a 6000-row literal.
func parallelFixture(t testing.TB) *reldb.DB {
	t.Helper()
	db := reldb.NewMemory()
	exec := func(src string) {
		st, err := sqlparse.Parse(src)
		if err != nil {
			t.Fatalf("parse %s: %v", src, err)
		}
		if err := db.Write(func(tx *reldb.Tx) error {
			_, err := Exec(tx, st, nil)
			return err
		}); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	exec(`CREATE TABLE ilp (
		id BIGINT PRIMARY KEY AUTO_INCREMENT,
		event VARCHAR NOT NULL,
		thread BIGINT NOT NULL,
		metric VARCHAR NOT NULL,
		excl DOUBLE,
		calls BIGINT,
		subr BIGINT)`)
	exec(`CREATE TABLE event_group (event VARCHAR NOT NULL, grp VARCHAR NOT NULL)`)
	exec(`CREATE TABLE dup2 (v BIGINT)`)

	if err := db.Write(func(tx *reldb.Tx) error {
		seed := int64(42)
		next := func(mod int64) int64 {
			seed = (seed*6364136223846793005 + 1442695040888963407) % (1 << 31)
			if seed < 0 {
				seed = -seed
			}
			return seed % mod
		}
		const nrows = 6200
		for i := 0; i < nrows; i++ {
			ev := fmt.Sprintf("ev%d", next(23))
			th := next(400)
			metric := "TIME"
			if next(4) == 0 {
				metric = "PAPI_FP_OPS"
			}
			excl := reldb.Float(float64(next(100000)) / 7.0)
			if next(50) == 0 {
				excl = reldb.Null // sprinkle NULLs through the aggregates
			}
			subr := reldb.Int(next(9))
			if next(3) == 0 {
				subr = reldb.Null
			}
			_, err := tx.Insert("ilp", reldb.Row{
				reldb.Null, reldb.Str(ev), reldb.Int(th), reldb.Str(metric),
				excl, reldb.Int(1 + next(1000)), subr,
			})
			if err != nil {
				return err
			}
		}
		for g := 0; g < 23; g++ {
			grp := "MPI"
			if g%2 == 0 {
				grp = "COMPUTE"
			}
			row := reldb.Row{reldb.Str(fmt.Sprintf("ev%d", g)), reldb.Str(grp)}
			if _, err := tx.Insert("event_group", row); err != nil {
				return err
			}
		}
		for _, v := range []int64{1, 2} {
			if _, err := tx.Insert("dup2", reldb.Row{reldb.Int(v)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("seed fixture: %v", err)
	}
	return db
}

// queryWorkers runs a SELECT with an explicit worker budget.
func queryWorkers(db *reldb.DB, src string, workers int, params ...any) (*ResultSet, error) {
	st, err := sqlparse.Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("not a SELECT: %s", src)
	}
	vals := make([]reldb.Value, len(params))
	for i, p := range params {
		vals[i] = reldb.FromGo(p)
	}
	var rs *ResultSet
	err = db.Read(func(tx *reldb.Tx) error {
		var err error
		rs, err = QueryOpts(tx, sel, vals, nil, Options{Workers: workers})
		return err
	})
	return rs, err
}

// parallelCorpus is the differential-correctness corpus: every query here is
// executed serially (workers=1) and with several fan-outs, and the result
// sets must be identical — same rows, same order, same values bit for bit.
var parallelCorpus = []string{
	// plain scans and filters
	`SELECT * FROM ilp`,
	`SELECT id, event, excl FROM ilp WHERE excl > 9000.0`,
	`SELECT * FROM ilp WHERE event = 'ev7' AND thread >= 100`,
	`SELECT id FROM ilp WHERE thread BETWEEN 17 AND 41`,
	`SELECT id, event FROM ilp WHERE event IN ('ev1', 'ev5', 'ev9') AND metric = 'TIME'`,
	`SELECT COUNT(*) FROM ilp WHERE event LIKE 'ev1%'`,
	`SELECT COUNT(*) FROM ilp WHERE subr IS NULL`,
	`SELECT COUNT(*) FROM ilp WHERE subr IS NOT NULL AND excl < 500.0`,
	`SELECT id FROM ilp WHERE thread = ?`,
	// subqueries inside the filtered scan (evaluated per worker env)
	`SELECT COUNT(*) FROM ilp WHERE excl > (SELECT AVG(excl) FROM ilp)`,
	`SELECT COUNT(*) FROM ilp WHERE subr IN (SELECT v FROM dup2)`,
	// aggregation: global and grouped, every aggregate kind
	`SELECT COUNT(*), COUNT(excl), SUM(excl), AVG(excl), MIN(excl), MAX(excl), STDDEV(excl) FROM ilp`,
	`SELECT SUM(calls), MIN(id), MAX(id) FROM ilp WHERE thread > 50`,
	`SELECT event, COUNT(*), SUM(excl), AVG(excl), MIN(excl), MAX(excl) FROM ilp GROUP BY event ORDER BY event`,
	`SELECT event, metric, COUNT(*) FROM ilp GROUP BY event, metric ORDER BY event, metric`,
	`SELECT event, STDDEV(excl) FROM ilp GROUP BY event ORDER BY event`,
	`SELECT thread, SUM(calls) FROM ilp GROUP BY thread ORDER BY SUM(calls) DESC, thread LIMIT 7`,
	`SELECT event, AVG(excl) FROM ilp WHERE thread < 300 GROUP BY event HAVING COUNT(*) > 10 ORDER BY AVG(excl) DESC, event`,
	`SELECT event, COUNT(DISTINCT thread) FROM ilp GROUP BY event ORDER BY event`,
	// ordering, limits, distinct
	`SELECT DISTINCT event FROM ilp ORDER BY event`,
	`SELECT event, thread, excl FROM ilp ORDER BY excl DESC, id LIMIT 25 OFFSET 5`,
	`SELECT id FROM ilp ORDER BY id LIMIT 100`,
	// joins on base (join disables the partitioned scan; result must agree)
	`SELECT i.event, g.grp, i.excl FROM ilp i JOIN event_group g ON i.event = g.event WHERE i.excl > 13000.0 ORDER BY i.id`,
	`SELECT g.grp, COUNT(*), SUM(i.excl) FROM ilp i JOIN event_group g ON i.event = g.event GROUP BY g.grp ORDER BY g.grp`,
	`SELECT g.grp, i.id FROM ilp i LEFT JOIN event_group g ON i.event = g.event WHERE i.thread = 3 ORDER BY i.id`,
}

func TestParallelSerialEquivalence(t *testing.T) {
	db := parallelFixture(t)
	for _, src := range parallelCorpus {
		var params []any
		if strings.Contains(src, "?") {
			params = []any{217}
		}
		serial, serr := queryWorkers(db, src, 1, params...)
		if serr != nil {
			t.Fatalf("serial %s: %v", src, serr)
		}
		for _, w := range []int{2, 3, 8} {
			par, perr := queryWorkers(db, src, w, params...)
			if perr != nil {
				t.Fatalf("workers=%d %s: %v", w, src, perr)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("workers=%d diverges from serial for %s:\nserial cols=%v rows=%d\nparallel cols=%v rows=%d",
					w, src, serial.Cols, len(serial.Rows), par.Cols, len(par.Rows))
			}
		}
	}
}

// TestParallelErrorEquivalence checks that a query failing mid-scan fails
// identically at any fan-out: same error, and the first failing partition in
// row order wins — exactly what the serial executor reports.
func TestParallelErrorEquivalence(t *testing.T) {
	db := parallelFixture(t)
	src := `SELECT COUNT(*) FROM ilp WHERE excl > (SELECT v FROM dup2)`
	_, serr := queryWorkers(db, src, 1)
	if serr == nil {
		t.Fatalf("expected serial error for %s", src)
	}
	for _, w := range []int{2, 8} {
		_, perr := queryWorkers(db, src, w)
		if perr == nil {
			t.Fatalf("workers=%d: expected error for %s", w, src)
		}
		if perr.Error() != serr.Error() {
			t.Errorf("workers=%d error diverges:\nserial:   %v\nparallel: %v", w, serr, perr)
		}
	}
}

// TestParallelGoroutineHygiene is the manual goleak check: after running the
// corpus — including the error path, which tears workers down early — the
// goroutine count must return to its baseline. Workers are reaped via
// WaitGroup even on error, so any growth here is a leak.
func TestParallelGoroutineHygiene(t *testing.T) {
	db := parallelFixture(t)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		for _, src := range parallelCorpus {
			if strings.Contains(src, "?") {
				continue
			}
			if _, err := queryWorkers(db, src, 8); err != nil {
				t.Fatalf("%s: %v", src, err)
			}
		}
		// Error path: workers observe the stop flag and drain.
		if _, err := queryWorkers(db, `SELECT id FROM ilp WHERE excl > (SELECT v FROM dup2)`, 8); err == nil {
			t.Fatal("expected scalar-subquery error")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelSmallTableStaysSerial pins the fallback: under parallelMinRows
// live rows the executor must not spin up workers (q.par stays 0, and no
// parallel(n) annotation appears in the span).
func TestParallelSmallTableStaysSerial(t *testing.T) {
	db := fixture(t) // handful of rows, far below the threshold
	st, err := sqlparse.Parse(`SELECT * FROM trial WHERE node_count > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Read(func(tx *reldb.Tx) error {
		rs, err := ExplainAnalyzeOpts(tx, st.(*sqlparse.Select), nil, Options{Workers: 8})
		if err != nil {
			return err
		}
		for _, r := range rs.Rows {
			if strings.Contains(r[0].S, "parallel(") {
				return fmt.Errorf("small table took the parallel path: %v", r[0].S)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelExplainAnalyze pins the observable plan annotation: a large
// filtered scan run with workers=4 reports parallel(4).
func TestParallelExplainAnalyze(t *testing.T) {
	db := parallelFixture(t)
	st, err := sqlparse.Parse(`SELECT id FROM ilp WHERE excl > 100.0`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Read(func(tx *reldb.Tx) error {
		rs, err := ExplainAnalyzeOpts(tx, st.(*sqlparse.Select), nil, Options{Workers: 4})
		if err != nil {
			return err
		}
		for _, r := range rs.Rows {
			if strings.Contains(r[0].S, "parallel(4)") {
				return nil
			}
		}
		return fmt.Errorf("no parallel(4) annotation in plan: %v", rs.Rows)
	}); err != nil {
		t.Fatal(err)
	}
}
