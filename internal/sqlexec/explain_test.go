package sqlexec

import (
	"strings"
	"testing"

	"perfdmf/internal/obs"
	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// explainPlan runs EXPLAIN and returns the plan lines.
func explainPlan(t *testing.T, db *reldb.DB, src string, params ...any) []string {
	t.Helper()
	st, err := sqlparse.Parse("EXPLAIN " + src)
	if err != nil {
		t.Fatal(err)
	}
	ex := st.(*sqlparse.Explain)
	vals := make([]reldb.Value, len(params))
	for i, p := range params {
		vals[i] = reldb.FromGo(p)
	}
	var lines []string
	err = db.Read(func(tx *reldb.Tx) error {
		rs, err := Explain(tx, ex.Select, vals)
		if err != nil {
			return err
		}
		for _, row := range rs.Rows {
			lines = append(lines, row[0].S)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return lines
}

func hasLine(lines []string, substr string) bool {
	for _, l := range lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func TestExplainAccessPaths(t *testing.T) {
	db := fixture(t)
	// Point lookup through the PK index.
	plan := explainPlan(t, db, "SELECT name FROM trial WHERE id = 3")
	if !hasLine(plan, "index access (1 candidate rows)") {
		t.Fatalf("pk plan: %v", plan)
	}
	// No usable predicate → full scan.
	plan = explainPlan(t, db, "SELECT name FROM trial WHERE time > 5.0")
	if !hasLine(plan, "full scan") {
		t.Fatalf("scan plan: %v", plan)
	}
	// Ordered index enables range access.
	run(t, db, "CREATE INDEX ix_nodes ON trial (node_count) USING btree")
	plan = explainPlan(t, db, "SELECT name FROM trial WHERE node_count >= 256")
	if !hasLine(plan, "index access") {
		t.Fatalf("range plan: %v", plan)
	}
	// IN over an indexed column.
	plan = explainPlan(t, db, "SELECT name FROM trial WHERE node_count IN (128, 512)")
	if !hasLine(plan, "index access (3 candidate rows)") {
		t.Fatalf("in plan: %v", plan)
	}
	// Parameters participate in planning.
	plan = explainPlan(t, db, "SELECT name FROM trial WHERE id = ?", 1)
	if !hasLine(plan, "index access (1 candidate rows)") {
		t.Fatalf("param plan: %v", plan)
	}
}

func TestExplainJoins(t *testing.T) {
	db := fixture(t)
	plan := explainPlan(t, db, `
		SELECT a.name FROM application a
		JOIN trial t ON t.application = a.id`)
	if !hasLine(plan, "inner hash join trial AS t") {
		t.Fatalf("hash join plan: %v", plan)
	}
	plan = explainPlan(t, db, `
		SELECT a.name FROM application a
		LEFT JOIN trial t ON t.application < a.id`)
	if !hasLine(plan, "left nested-loop join trial AS t") {
		t.Fatalf("nested loop plan: %v", plan)
	}
	// Pipeline steps reported.
	plan = explainPlan(t, db, `
		SELECT application, COUNT(*) FROM trial
		WHERE node_count > 0 GROUP BY application ORDER BY 2 LIMIT 1`)
	for _, want := range []string{"filter", "aggregate", "sort", "limit"} {
		if !hasLine(plan, want) {
			t.Errorf("plan missing %q: %v", want, plan)
		}
	}
}

func TestExplainAnalyze(t *testing.T) {
	db := fixture(t)
	st, err := sqlparse.Parse("EXPLAIN ANALYZE SELECT name FROM trial WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	ex := st.(*sqlparse.Explain)
	if !ex.Analyze {
		t.Fatal("ANALYZE flag not parsed")
	}
	var lines []string
	err = db.Read(func(tx *reldb.Tx) error {
		rs, err := ExplainAnalyze(tx, ex.Select, nil)
		if err != nil {
			return err
		}
		for _, row := range rs.Rows {
			lines = append(lines, row[0].S)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Static plan first, then measured rows.
	if !hasLine(lines, "index access (1 candidate rows)") {
		t.Fatalf("static plan missing: %v", lines)
	}
	for _, want := range []string{
		"actual: plan=", "execute=", "materialize=", "total=",
		"rows scanned=1, rows returned=1 (index access)",
	} {
		if !hasLine(lines, want) {
			t.Errorf("analyze output missing %q: %v", want, lines)
		}
	}

	// Full-scan query reports the scan and the scanned/returned asymmetry.
	st, err = sqlparse.Parse("EXPLAIN ANALYZE SELECT name FROM trial WHERE time > 0.0")
	if err != nil {
		t.Fatal(err)
	}
	lines = nil
	err = db.Read(func(tx *reldb.Tx) error {
		rs, err := ExplainAnalyze(tx, st.(*sqlparse.Explain).Select, nil)
		if err != nil {
			return err
		}
		for _, row := range rs.Rows {
			lines = append(lines, row[0].S)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hasLine(lines, "(full scan)") {
		t.Fatalf("full-scan analyze output: %v", lines)
	}
}

func TestQueryTracedSpan(t *testing.T) {
	db := fixture(t)
	st, err := sqlparse.Parse("SELECT name FROM trial WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	sp := &obs.Span{}
	err = db.Read(func(tx *reldb.Tx) error {
		_, err := QueryTraced(tx, st.(*sqlparse.Select), nil, sp)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sp.IndexUsed || sp.RowsScanned != 1 || sp.RowsReturned != 1 {
		t.Fatalf("span = %+v", sp)
	}
	if sp.Plan <= 0 || sp.Execute <= 0 || sp.Materialize <= 0 {
		t.Fatalf("phase timings not recorded: %+v", sp)
	}
}

func TestExplainErrors(t *testing.T) {
	db := fixture(t)
	st, err := sqlparse.Parse("EXPLAIN SELECT * FROM nosuch")
	if err != nil {
		t.Fatal(err)
	}
	err = db.Read(func(tx *reldb.Tx) error {
		_, err := Explain(tx, st.(*sqlparse.Explain).Select, nil)
		return err
	})
	if err == nil {
		t.Fatal("missing table accepted")
	}
	if _, err := sqlparse.Parse("EXPLAIN INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("EXPLAIN INSERT accepted")
	}
}

// TestExplainCatalog: EXPLAIN resolves the virtual catalog tables — as the
// base reference and as a join side — without touching storage.
func TestExplainCatalog(t *testing.T) {
	db := fixture(t)
	plan := explainPlan(t, db, "SELECT * FROM OBS_METRICS WHERE kind = 'counter'")
	if !hasLine(plan, "catalog (virtual table materialized at bind)") {
		t.Fatalf("catalog plan: %v", plan)
	}
	plan = explainPlan(t, db,
		"SELECT s.table_name, t.name FROM OBS_TABLE_STATS s JOIN trial t ON s.row_count = t.id")
	if !hasLine(plan, "base OBS_TABLE_STATS AS s: catalog") || !hasLine(plan, "hash join trial") {
		t.Fatalf("catalog join plan: %v", plan)
	}
}
