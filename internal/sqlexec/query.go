package sqlexec

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"perfdmf/internal/obs"
	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// Query executes a SELECT inside tx and materializes the result.
func Query(tx *reldb.Tx, st *sqlparse.Select, params []reldb.Value) (*ResultSet, error) {
	return QueryOpts(tx, st, params, nil, Options{})
}

// QueryTraced is Query with a span: the executor fills in the plan/execute/
// materialize phase timings, the access-path decision, and rows scanned vs.
// returned. sp may be nil, which degrades to plain Query.
func QueryTraced(tx *reldb.Tx, st *sqlparse.Select, params []reldb.Value, sp *obs.Span) (*ResultSet, error) {
	return QueryOpts(tx, st, params, sp, Options{})
}

type query struct {
	tx      *reldb.Tx
	st      *sqlparse.Select
	params  []reldb.Value
	cols    *colmap
	fields  []field // ordered bound columns, for SELECT *
	sp      *obs.Span
	opts    Options
	scanned int64 // rows fetched from storage (base + join inputs)
	polled  int64 // row-loop iterations since the last cancellation check
	par     int   // widest worker fan-out this execution used (0 = serial)

	// Columnar execution state (see columnar.go). When tryColumnarAggregate
	// handles the query, scan, filter and aggregation are already done and
	// the materialize section reuses the stashed results.
	colDone  bool
	colPar   int // workers the columnar path used (0 = row path)
	colOut   [][]reldb.Value
	colKeys  [][]reldb.Value
	colItems []sqlparse.SelectItem
	colNames []string
}

type field struct {
	alias string // binding alias (lower-cased)
	name  string // column name as declared
	pos   int
}

// bind registers a table reference's columns. For derived tables it runs
// the subquery, materializes the rows, and binds the result columns; for
// virtual catalog tables (OBS_*) it materializes a snapshot the same way.
// The materialized rows are returned (nil for base tables).
func (q *query) bind(tr sqlparse.TableRef) ([]reldb.Row, error) {
	alias := aliasOr(tr.Alias, tr.Table)
	base := q.cols.width
	if tr.Sub != nil {
		rs, err := Query(q.tx, tr.Sub, q.params)
		if err != nil {
			return nil, err
		}
		q.cols.bindNames(alias, rs.Cols)
		for i, c := range rs.Cols {
			q.fields = append(q.fields, field{alias: strings.ToLower(alias), name: c, pos: base + i})
		}
		rows := make([]reldb.Row, len(rs.Rows))
		for i, r := range rs.Rows {
			rows[i] = reldb.Row(r)
		}
		return rows, nil
	}
	if cat := catalogTable(tr.Table); cat != nil {
		mCatalogQueries.Inc()
		rows, err := cat.rows(q.tx)
		if err != nil {
			return nil, err
		}
		q.cols.bindNames(alias, cat.cols)
		for i, c := range cat.cols {
			q.fields = append(q.fields, field{alias: strings.ToLower(alias), name: c, pos: base + i})
		}
		return rows, nil
	}
	tbl, err := q.tx.Table(tr.Table)
	if err != nil {
		return nil, err
	}
	q.cols.bind(alias, tr.Table, tbl.Schema())
	for i, c := range tbl.Schema().Columns {
		q.fields = append(q.fields, field{alias: strings.ToLower(alias), name: c.Name, pos: base + i})
	}
	return nil, nil
}

// pollEvery is the executor's shared cancellation poll: every
// cancelCheckRows-th call it checks the statement's kill flag (nil-safe
// when the query runs without a registered statement). Row-at-a-time
// loops call it once per iteration so a KILL unwinds within a bounded
// number of rows on every path — including join probes and aggregate
// folds that never touch storage.
func (q *query) pollEvery() error {
	q.polled++
	if q.polled%cancelCheckRows == 0 {
		if err := q.opts.Stmt.Err(); err != nil {
			return err
		}
	}
	return nil
}

func (q *query) run() (*ResultSet, error) {
	st := q.st
	stmt := q.opts.Stmt
	if err := stmt.Err(); err != nil {
		return nil, err
	}
	stmt.SetPhase(PhasePlan)
	timed := q.sp != nil
	var mark time.Time
	if timed {
		mark = now()
	}
	derived, err := q.bind(st.From)
	if err != nil {
		return nil, err
	}
	var rows []reldb.Row
	whereDone := false // WHERE already folded into the parallel scan
	if st.From.Sub != nil || virtualRef(st.From) {
		if timed {
			if st.From.Sub != nil {
				q.sp.PlanSummary = "derived table"
			} else {
				q.sp.PlanSummary = "catalog"
			}
			q.sp.Plan += since(mark)
			mark = now()
		}
		stmt.SetPhase(PhaseExecute)
		rows = derived
		q.scanned += int64(len(rows))
	} else {
		// Base rows, using an index when the WHERE clause admits one. Index
		// selection is only safe for predicates on the base table;
		// predicates touching joined tables are re-checked by the full
		// WHERE filter below, so over-selection is impossible — planAccess
		// only narrows.
		baseAlias := aliasOr(st.From.Alias, st.From.Table)
		slots, scanned, err := q.resolveAccess(st.From.Table, baseAlias, len(st.Joins) > 0)
		if err != nil {
			return nil, err
		}
		if scanned {
			mFullScan.Inc()
		} else {
			mIndexAccess.Inc()
		}
		if timed {
			if scanned {
				q.sp.PlanSummary = "full scan"
			} else {
				q.sp.PlanSummary = "index access"
				q.sp.IndexUsed = true
			}
			q.sp.Plan += since(mark)
			mark = now()
		}
		stmt.SetPhase(PhaseExecute)
		if scanned && len(st.Joins) == 0 && !q.opts.NoColumnar {
			handled, cerr := q.tryColumnarAggregate(st.From.Table)
			if cerr != nil {
				return nil, cerr
			}
			if handled {
				whereDone = true
			}
		}
		switch {
		case q.colDone:
			// Vectorized path already scanned, filtered and aggregated.
		case scanned && len(st.Joins) == 0 && q.opts.effectiveWorkers() > 1 && q.liveRows(st.From.Table) >= parallelMinRows:
			// Partitioned parallel scan with the WHERE filter folded in.
			rows, err = q.parallelScanFilter(st.From.Table, st.Where, q.opts.effectiveWorkers())
			if err != nil {
				return nil, err
			}
			whereDone = true
		case scanned:
			var scanErr error
			q.tx.Scan(st.From.Table, func(_ int, row reldb.Row) bool { //nolint:errcheck // table verified by bind
				rows = append(rows, row)
				if len(rows)%cancelCheckRows == 0 {
					if scanErr = stmt.Err(); scanErr != nil {
						return false
					}
					if stmt != nil {
						stmt.rowsScanned.Add(cancelCheckRows)
					}
				}
				return true
			})
			if scanErr != nil {
				return nil, scanErr
			}
			q.scanned += int64(len(rows))
		default:
			for _, slot := range slots {
				if err := q.pollEvery(); err != nil {
					return nil, err
				}
				if row := q.tx.Row(st.From.Table, slot); row != nil {
					rows = append(rows, row)
				}
			}
			q.scanned += int64(len(rows))
		}
	}

	// Joins.
	for _, join := range st.Joins {
		rows, err = q.execJoin(rows, join)
		if err != nil {
			return nil, err
		}
	}

	// WHERE.
	if st.Where != nil && !whereDone {
		ev := &env{cols: q.cols, params: q.params, tx: q.tx}
		kept := rows[:0:0]
		for _, row := range rows {
			if err := q.pollEvery(); err != nil {
				return nil, err
			}
			ev.row = row
			v, err := eval(st.Where, ev)
			if err != nil {
				return nil, err
			}
			if truthy(v) {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	if timed {
		q.sp.Execute += since(mark)
		mark = now()
	}
	if stmt != nil {
		stmt.rowsScanned.Store(q.scanned)
		stmt.SetPhase(PhaseMaterialize)
	}
	if err := stmt.Err(); err != nil {
		return nil, err
	}

	var items []sqlparse.SelectItem
	var colNames []string
	var out [][]reldb.Value
	var sortKeys [][]reldb.Value
	if q.colDone {
		items, colNames = q.colItems, q.colNames
		out, sortKeys = q.colOut, q.colKeys
	} else {
		var orderExprs []sqlparse.Expr
		items, colNames, err = q.expandItems()
		if err != nil {
			return nil, err
		}
		orderExprs, err = q.resolveOrderBy(items)
		if err != nil {
			return nil, err
		}
		if q.isAggregate(items, orderExprs) {
			out, sortKeys, err = q.aggregate(rows, items, orderExprs)
		} else {
			out, sortKeys, err = q.project(rows, items, orderExprs)
		}
		if err != nil {
			return nil, err
		}
	}

	if st.Distinct {
		out, sortKeys = distinct(out, sortKeys)
	}
	if len(st.OrderBy) > 0 {
		out = orderRows(out, sortKeys, st.OrderBy)
	}
	if out, err = q.applyLimit(out); err != nil {
		return nil, err
	}
	// Final cancellation check: a kill that landed during the aggregation
	// or ordering tail must not hand back a completed result.
	if err := stmt.Err(); err != nil {
		return nil, err
	}
	mRowsScanned.Add(q.scanned)
	mRowsReturned.Add(int64(len(out)))
	if stmt != nil {
		stmt.rowsScanned.Store(q.scanned)
		stmt.rowsReturned.Store(int64(len(out)))
	}
	if timed {
		if q.colDone {
			q.sp.PlanSummary += fmt.Sprintf(" columnar(%d)", q.colPar)
		} else if q.par > 1 {
			q.sp.PlanSummary += fmt.Sprintf(" parallel(%d)", q.par)
		}
		q.sp.Materialize += since(mark)
		q.sp.RowsScanned += q.scanned
		q.sp.RowsReturned += int64(len(out))
	}
	return &ResultSet{Cols: colNames, Rows: out}, nil
}

// liveRows returns the base table's live row count (0 when missing; bind
// has already verified the table exists).
func (q *query) liveRows(table string) int {
	t, err := q.tx.Table(table)
	if err != nil {
		return 0
	}
	return t.Len()
}

// execJoin joins the accumulated rows with one more table. When the ON
// clause contains an equality between an already-bound column and a column
// of the new table, a hash join is used; the complete ON expression is
// still evaluated on each candidate pair.
func (q *query) execJoin(rows []reldb.Row, join sqlparse.Join) ([]reldb.Row, error) {
	leftWidth := q.cols.width
	derived, err := q.bind(join.TableRef)
	if err != nil {
		return nil, err
	}
	rightWidth := q.cols.width - leftWidth

	var rightRows []reldb.Row
	if join.Sub != nil || virtualRef(join.TableRef) {
		rightRows = derived
	} else {
		var scanErr error
		q.tx.Scan(join.Table, func(_ int, row reldb.Row) bool { //nolint:errcheck // table verified by bind
			if scanErr = q.pollEvery(); scanErr != nil {
				return false
			}
			rightRows = append(rightRows, row)
			return true
		})
		if scanErr != nil {
			return nil, scanErr
		}
	}
	q.scanned += int64(len(rightRows))

	// Find a hashable equality: leftPos (in accumulated row) vs rightPos
	// (in the new table's row).
	leftPos, rightPos := -1, -1
	if l, r, ok := findHashKey(q.cols, leftWidth, join.On); ok {
		leftPos, rightPos = l, r
	}

	ev := &env{cols: q.cols, params: q.params, tx: q.tx}
	onMatch := func(l, r reldb.Row) (bool, error) {
		if join.On == nil {
			return true, nil
		}
		combined := make(reldb.Row, 0, leftWidth+rightWidth)
		combined = append(combined, l...)
		combined = append(combined, r...)
		ev.row = combined
		v, err := eval(join.On, ev)
		if err != nil {
			return false, err
		}
		return truthy(v), nil
	}

	var result []reldb.Row
	emit := func(l, r reldb.Row) {
		combined := make(reldb.Row, leftWidth+rightWidth)
		copy(combined, l)
		if r != nil {
			copy(combined[leftWidth:], r)
		}
		result = append(result, combined)
	}

	if leftPos >= 0 {
		// Hash join.
		ht := make(map[reldb.Value][]reldb.Row, len(rightRows))
		for _, r := range rightRows {
			if err := q.pollEvery(); err != nil {
				return nil, err
			}
			k := r[rightPos]
			if k.IsNull() {
				continue
			}
			ht[k] = append(ht[k], r)
		}
		for _, l := range rows {
			if err := q.pollEvery(); err != nil {
				return nil, err
			}
			matched := false
			var key reldb.Value
			if leftPos < len(l) {
				key = l[leftPos]
			}
			if !key.IsNull() {
				for _, r := range ht[key] {
					if err := q.pollEvery(); err != nil {
						return nil, err
					}
					ok, err := onMatch(l, r)
					if err != nil {
						return nil, err
					}
					if ok {
						matched = true
						emit(l, r)
					}
				}
			}
			if !matched && join.Kind == sqlparse.LeftJoin {
				emit(l, nil)
			}
		}
		return result, nil
	}

	// Nested-loop join.
	for _, l := range rows {
		if err := q.pollEvery(); err != nil {
			return nil, err
		}
		matched := false
		for _, r := range rightRows {
			if err := q.pollEvery(); err != nil {
				return nil, err
			}
			ok, err := onMatch(l, r)
			if err != nil {
				return nil, err
			}
			if ok {
				matched = true
				emit(l, r)
			}
		}
		if !matched && join.Kind == sqlparse.LeftJoin {
			emit(l, nil)
		}
	}
	return result, nil
}

// expandItems replaces * items with explicit column references and derives
// output column names.
func (q *query) expandItems() ([]sqlparse.SelectItem, []string, error) {
	var items []sqlparse.SelectItem
	var names []string
	for _, item := range q.st.Items {
		if !item.Star {
			items = append(items, item)
			names = append(names, itemName(item))
			continue
		}
		want := strings.ToLower(item.Table)
		found := false
		for _, f := range q.fields {
			if want != "" && f.alias != want {
				continue
			}
			found = true
			items = append(items, sqlparse.SelectItem{
				Expr: &sqlparse.ColRef{Table: f.alias, Name: f.name},
			})
			names = append(names, f.name)
		}
		if !found {
			return nil, nil, fmt.Errorf("sqlexec: %s.* matches no table", item.Table)
		}
	}
	return items, names, nil
}

func itemName(item sqlparse.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *sqlparse.ColRef:
		return e.Name
	case *sqlparse.FuncCall:
		return strings.ToLower(e.Name)
	}
	return "expr"
}

// resolveOrderBy rewrites ORDER BY terms that reference output aliases or
// positions into the underlying item expressions.
func (q *query) resolveOrderBy(items []sqlparse.SelectItem) ([]sqlparse.Expr, error) {
	var out []sqlparse.Expr
	for _, ob := range q.st.OrderBy {
		e := ob.Expr
		switch x := e.(type) {
		case *sqlparse.Literal:
			if x.Value.T == reldb.TInt {
				n := int(x.Value.I)
				if n < 1 || n > len(items) {
					return nil, fmt.Errorf("sqlexec: ORDER BY position %d out of range", n)
				}
				e = items[n-1].Expr
			}
		case *sqlparse.ColRef:
			if x.Table == "" {
				for _, item := range items {
					if item.Alias != "" && strings.EqualFold(item.Alias, x.Name) {
						e = item.Expr
						break
					}
				}
			}
		}
		out = append(out, e)
	}
	return out, nil
}

// isAggregate reports whether the query needs the grouped path.
func (q *query) isAggregate(items []sqlparse.SelectItem, orderExprs []sqlparse.Expr) bool {
	if len(q.st.GroupBy) > 0 || q.st.Having != nil {
		return true
	}
	for _, item := range items {
		if len(collectAggs(item.Expr)) > 0 {
			return true
		}
	}
	for _, e := range orderExprs {
		if len(collectAggs(e)) > 0 {
			return true
		}
	}
	return false
}

// collectAggs returns the aggregate FuncCall nodes in an expression.
func collectAggs(e sqlparse.Expr) []*sqlparse.FuncCall {
	var out []*sqlparse.FuncCall
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		switch e := e.(type) {
		case *sqlparse.FuncCall:
			if isAggName(e.Name) {
				out = append(out, e)
				return // aggregates cannot nest
			}
			for _, a := range e.Args {
				walk(a)
			}
		case *sqlparse.Binary:
			walk(e.L)
			walk(e.R)
		case *sqlparse.Unary:
			walk(e.X)
		case *sqlparse.InList:
			walk(e.X)
			for _, x := range e.List {
				walk(x)
			}
		case *sqlparse.IsNull:
			walk(e.X)
		case *sqlparse.Between:
			walk(e.X)
			walk(e.Lo)
			walk(e.Hi)
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}

func isAggName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV":
		return true
	}
	return false
}

// keyOf builds a collision-free string key for a value tuple.
func keyOf(vals []reldb.Value) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteByte(byte(v.T) + '0')
		switch v.T {
		case reldb.TInt, reldb.TBool, reldb.TTime:
			b.WriteString(strconv.FormatInt(v.I, 36))
		case reldb.TFloat:
			b.WriteString(strconv.FormatUint(math.Float64bits(v.F), 36))
		case reldb.TString, reldb.TBytes:
			b.WriteString(strconv.Itoa(len(v.S)))
			b.WriteByte(':')
			b.WriteString(v.S)
		}
		b.WriteByte('|')
	}
	return b.String()
}

// project evaluates items per row (the non-aggregate path), also computing
// the ORDER BY sort keys.
func (q *query) project(rows []reldb.Row, items []sqlparse.SelectItem, orderExprs []sqlparse.Expr) ([][]reldb.Value, [][]reldb.Value, error) {
	ev := &env{cols: q.cols, params: q.params, tx: q.tx}
	out := make([][]reldb.Value, 0, len(rows))
	var keys [][]reldb.Value
	if len(orderExprs) > 0 {
		keys = make([][]reldb.Value, 0, len(rows))
	}
	for _, row := range rows {
		if err := q.pollEvery(); err != nil {
			return nil, nil, err
		}
		ev.row = row
		rec := make([]reldb.Value, len(items))
		for i, item := range items {
			v, err := eval(item.Expr, ev)
			if err != nil {
				return nil, nil, err
			}
			rec[i] = v
		}
		out = append(out, rec)
		if keys != nil {
			k := make([]reldb.Value, len(orderExprs))
			for i, e := range orderExprs {
				v, err := eval(e, ev)
				if err != nil {
					return nil, nil, err
				}
				k[i] = v
			}
			keys = append(keys, k)
		}
	}
	return out, keys, nil
}

// aggregate groups rows and evaluates aggregate items per group. Large
// inputs take the chunked partial-aggregation path (see aggregateChunked);
// small inputs and DISTINCT aggregates use the direct group-then-fold path.
func (q *query) aggregate(rows []reldb.Row, items []sqlparse.SelectItem, orderExprs []sqlparse.Expr) ([][]reldb.Value, [][]reldb.Value, error) {
	st := q.st

	// Aggregate nodes referenced anywhere in the output, HAVING or ORDER BY.
	var aggNodes []*sqlparse.FuncCall
	for _, item := range items {
		aggNodes = append(aggNodes, collectAggs(item.Expr)...)
	}
	aggNodes = append(aggNodes, collectAggs(st.Having)...)
	for _, e := range orderExprs {
		aggNodes = append(aggNodes, collectAggs(e)...)
	}

	if q.canChunkAgg(rows, aggNodes) {
		return q.aggregateChunked(rows, items, orderExprs, aggNodes)
	}

	ev := &env{cols: q.cols, params: q.params, tx: q.tx}

	type group struct {
		rows []reldb.Row
	}
	groups := make(map[string]*group)
	var order []string
	if len(st.GroupBy) == 0 {
		// A single global group, present even with zero input rows.
		groups[""] = &group{}
		order = append(order, "")
	}
	for _, row := range rows {
		if err := q.pollEvery(); err != nil {
			return nil, nil, err
		}
		key := ""
		if len(st.GroupBy) > 0 {
			ev.row = row
			kv := make([]reldb.Value, len(st.GroupBy))
			for i, e := range st.GroupBy {
				v, err := eval(e, ev)
				if err != nil {
					return nil, nil, err
				}
				kv[i] = v
			}
			key = keyOf(kv)
		}
		g := groups[key]
		if g == nil {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, row)
	}

	var out [][]reldb.Value
	var keys [][]reldb.Value
	for _, gk := range order {
		g := groups[gk]
		aggVals := make(map[*sqlparse.FuncCall]reldb.Value, len(aggNodes))
		for _, node := range aggNodes {
			v, err := q.computeAgg(node, g.rows)
			if err != nil {
				return nil, nil, err
			}
			aggVals[node] = v
		}
		gev := &env{cols: q.cols, params: q.params, agg: aggVals, tx: q.tx}
		if len(g.rows) > 0 {
			gev.row = g.rows[0]
		} else {
			gev.row = make(reldb.Row, q.cols.width)
		}
		if st.Having != nil {
			v, err := eval(st.Having, gev)
			if err != nil {
				return nil, nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		rec := make([]reldb.Value, len(items))
		for i, item := range items {
			v, err := eval(item.Expr, gev)
			if err != nil {
				return nil, nil, err
			}
			rec[i] = v
		}
		out = append(out, rec)
		if len(orderExprs) > 0 {
			k := make([]reldb.Value, len(orderExprs))
			for i, e := range orderExprs {
				v, err := eval(e, gev)
				if err != nil {
					return nil, nil, err
				}
				k[i] = v
			}
			keys = append(keys, k)
		}
	}
	return out, keys, nil
}

// computeAgg evaluates one aggregate over a group's rows.
func (q *query) computeAgg(node *sqlparse.FuncCall, rows []reldb.Row) (reldb.Value, error) {
	ev := &env{cols: q.cols, params: q.params, tx: q.tx}
	if node.Star {
		if node.Name != "COUNT" {
			return reldb.Null, fmt.Errorf("sqlexec: %s(*) is not valid", node.Name)
		}
		return reldb.Int(int64(len(rows))), nil
	}
	if len(node.Args) != 1 {
		return reldb.Null, fmt.Errorf("sqlexec: %s expects one argument", node.Name)
	}
	var (
		count   int64
		sum     float64
		sumSq   float64
		min, mx reldb.Value
		seen    map[string]bool
		allInt  = true
	)
	if node.Distinct {
		seen = make(map[string]bool)
	}
	for _, row := range rows {
		if err := q.pollEvery(); err != nil {
			return reldb.Null, err
		}
		ev.row = row
		v, err := eval(node.Args[0], ev)
		if err != nil {
			return reldb.Null, err
		}
		if v.IsNull() {
			continue
		}
		if node.Distinct {
			k := keyOf([]reldb.Value{v})
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		count++
		f := v.AsFloat()
		sum += f
		sumSq += f * f
		if v.T != reldb.TInt {
			allInt = false
		}
		if min.IsNull() || reldb.Compare(v, min) < 0 {
			min = v
		}
		if mx.IsNull() || reldb.Compare(v, mx) > 0 {
			mx = v
		}
	}
	switch node.Name {
	case "COUNT":
		return reldb.Int(count), nil
	case "SUM":
		if count == 0 {
			return reldb.Null, nil
		}
		if allInt {
			return reldb.Int(int64(sum)), nil
		}
		return reldb.Float(sum), nil
	case "AVG":
		if count == 0 {
			return reldb.Null, nil
		}
		return reldb.Float(sum / float64(count)), nil
	case "MIN":
		return min, nil
	case "MAX":
		return mx, nil
	case "STDDEV":
		// Population standard deviation, matching the common DBMS default.
		if count == 0 {
			return reldb.Null, nil
		}
		n := float64(count)
		variance := sumSq/n - (sum/n)*(sum/n)
		if variance < 0 {
			variance = 0 // guard against rounding
		}
		return reldb.Float(math.Sqrt(variance)), nil
	}
	return reldb.Null, fmt.Errorf("sqlexec: unknown aggregate %s", node.Name)
}

func distinct(rows, keys [][]reldb.Value) ([][]reldb.Value, [][]reldb.Value) {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	var outKeys [][]reldb.Value
	for i, r := range rows {
		k := keyOf(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
		if keys != nil {
			outKeys = append(outKeys, keys[i])
		}
	}
	return out, outKeys
}

func orderRows(rows, keys [][]reldb.Value, spec []sqlparse.OrderItem) [][]reldb.Value {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i := range spec {
			c := reldb.Compare(ka[i], kb[i])
			if c == 0 {
				continue
			}
			if spec[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := make([][]reldb.Value, len(rows))
	for i, j := range idx {
		out[i] = rows[j]
	}
	return out
}

func (q *query) applyLimit(rows [][]reldb.Value) ([][]reldb.Value, error) {
	st := q.st
	ev := &env{cols: newColmap(), params: q.params, tx: q.tx}
	if st.Offset != nil {
		v, err := eval(st.Offset, ev)
		if err != nil {
			return nil, err
		}
		off := int(v.AsInt())
		if off < 0 {
			return nil, fmt.Errorf("sqlexec: negative OFFSET")
		}
		if off >= len(rows) {
			rows = nil
		} else {
			rows = rows[off:]
		}
	}
	if st.Limit != nil {
		v, err := eval(st.Limit, ev)
		if err != nil {
			return nil, err
		}
		n := int(v.AsInt())
		if n < 0 {
			return nil, fmt.Errorf("sqlexec: negative LIMIT")
		}
		if n < len(rows) {
			rows = rows[:n]
		}
	}
	return rows, nil
}
