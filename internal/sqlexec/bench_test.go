package sqlexec

import (
	"fmt"
	"testing"

	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// benchDB builds app/trial tables with rows rows in trial.
func benchDB(b *testing.B, rows int) *reldb.DB {
	b.Helper()
	db := reldb.NewMemory()
	stmts := []string{
		`CREATE TABLE application (id BIGINT PRIMARY KEY AUTO_INCREMENT, name VARCHAR NOT NULL)`,
		`CREATE TABLE trial (
			id BIGINT PRIMARY KEY AUTO_INCREMENT,
			application BIGINT NOT NULL REFERENCES application(id),
			name VARCHAR, node_count BIGINT, time DOUBLE)`,
		`INSERT INTO application (name) VALUES ('app')`,
		`CREATE INDEX ix_nodes ON trial (node_count) USING btree`,
	}
	for _, src := range stmts {
		st, err := sqlparse.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Write(func(tx *reldb.Tx) error {
			_, err := Exec(tx, st, nil)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
	ins, err := sqlparse.Parse("INSERT INTO trial (application, name, node_count, time) VALUES (1, ?, ?, ?)")
	if err != nil {
		b.Fatal(err)
	}
	if err := db.Write(func(tx *reldb.Tx) error {
		for i := 0; i < rows; i++ {
			_, err := Exec(tx, ins, []reldb.Value{
				reldb.Str(fmt.Sprintf("run-%d", i)),
				reldb.Int(int64(1 << (i % 10))),
				reldb.Float(float64(i) * 1.5),
			})
			if err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	return db
}

func benchQuery(b *testing.B, db *reldb.DB, src string, params []reldb.Value, wantRows int) {
	b.Helper()
	st, err := sqlparse.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	sel := st.(*sqlparse.Select)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := db.Read(func(tx *reldb.Tx) error {
			rs, err := Query(tx, sel, params)
			if err != nil {
				return err
			}
			if wantRows >= 0 && len(rs.Rows) != wantRows {
				return fmt.Errorf("got %d rows, want %d", len(rs.Rows), wantRows)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseOnlySelect(b *testing.B) {
	src := `SELECT e.name, COUNT(*), AVG(t.time) FROM trial t
		JOIN application e ON t.application = e.id
		WHERE t.node_count >= 128 GROUP BY e.name ORDER BY 2 DESC LIMIT 10`
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointQueryIndexed(b *testing.B) {
	db := benchDB(b, 10000)
	benchQuery(b, db, "SELECT name FROM trial WHERE id = 5000", nil, 1)
}

func BenchmarkRangeQueryIndexed(b *testing.B) {
	db := benchDB(b, 10000)
	benchQuery(b, db, "SELECT name FROM trial WHERE node_count >= 512", nil, -1)
}

func BenchmarkFullScanFilter(b *testing.B) {
	db := benchDB(b, 10000)
	benchQuery(b, db, "SELECT name FROM trial WHERE time > 7500.0", nil, -1)
}

func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(b, 10000)
	benchQuery(b, db, `SELECT t.name FROM trial t
		JOIN application a ON t.application = a.id WHERE t.id <= 100`, nil, 100)
}

func BenchmarkGroupByAggregate(b *testing.B) {
	db := benchDB(b, 10000)
	benchQuery(b, db, `SELECT node_count, COUNT(*), AVG(time), STDDEV(time)
		FROM trial GROUP BY node_count`, nil, 10)
}

func BenchmarkOrderByLimit(b *testing.B) {
	db := benchDB(b, 10000)
	benchQuery(b, db, "SELECT name, time FROM trial ORDER BY time DESC LIMIT 20", nil, 20)
}
