package sqlexec

import "time"

// Clock supplies wall-clock readings to the executor's span timing. The
// execution hot paths never call time.Now directly — the determinism
// analyzer (perfdmf-vet) forbids it — so a test can inject a fixed clock
// and get bitwise-identical spans, and the result paths provably contain
// no time dependence at all.
type Clock func() time.Time

// clock is the package's single sanctioned wall-clock binding.
var clock Clock = time.Now //lint:allow determinism -- the injected-clock binding itself

// now reads the injected clock.
func now() time.Time { return clock() }

// since measures elapsed time on the injected clock (time.Since would
// read the wall clock behind the executor's back).
func since(t time.Time) time.Duration { return now().Sub(t) }

// SetClock swaps the executor clock and returns a restore function; tests
// use it to freeze span timing.
func SetClock(c Clock) (restore func()) {
	prev := clock
	clock = c
	return func() { clock = prev }
}
