package sqlexec

import (
	"strings"
	"testing"

	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// run executes a statement (any kind) against db, returning a result set
// for SELECTs and nil otherwise.
func run(t *testing.T, db *reldb.DB, src string, params ...any) *ResultSet {
	t.Helper()
	rs, _, err := tryRun(db, src, params...)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return rs
}

func tryRun(db *reldb.DB, src string, params ...any) (*ResultSet, Result, error) {
	st, err := sqlparse.Parse(src)
	if err != nil {
		return nil, Result{}, err
	}
	vals := make([]reldb.Value, len(params))
	for i, p := range params {
		vals[i] = reldb.FromGo(p)
	}
	if sel, ok := st.(*sqlparse.Select); ok {
		var rs *ResultSet
		err := db.Read(func(tx *reldb.Tx) error {
			var err error
			rs, err = Query(tx, sel, vals)
			return err
		})
		return rs, Result{}, err
	}
	var res Result
	err = db.Write(func(tx *reldb.Tx) error {
		var err error
		res, err = Exec(tx, st, vals)
		return err
	})
	return nil, res, err
}

// fixture builds the miniature PerfDMF-shaped database used by the tests.
func fixture(t *testing.T) *reldb.DB {
	t.Helper()
	db := reldb.NewMemory()
	stmts := []string{
		`CREATE TABLE application (
			id BIGINT PRIMARY KEY AUTO_INCREMENT,
			name VARCHAR NOT NULL,
			version VARCHAR)`,
		`CREATE TABLE trial (
			id BIGINT PRIMARY KEY AUTO_INCREMENT,
			application BIGINT NOT NULL REFERENCES application(id),
			name VARCHAR,
			node_count BIGINT,
			time DOUBLE)`,
		`INSERT INTO application (name, version) VALUES
			('sppm', '1.0'), ('smg2000', '2.1'), ('sphot', NULL)`,
		`INSERT INTO trial (application, name, node_count, time) VALUES
			(1, 'run-a', 128, 10.5),
			(1, 'run-b', 256, 6.25),
			(1, 'run-c', 512, 4.0),
			(2, 'run-d', 128, 30.0),
			(2, 'run-e', 256, 18.0)`,
	}
	for _, s := range stmts {
		run(t, db, s)
	}
	return db
}

func TestSelectAll(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, "SELECT * FROM application")
	if len(rs.Cols) != 3 || rs.Cols[0] != "id" {
		t.Fatalf("cols: %v", rs.Cols)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("rows: %d", len(rs.Rows))
	}
}

func TestSelectWhereParams(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, "SELECT name FROM trial WHERE node_count = ? ORDER BY name", 128)
	if len(rs.Rows) != 2 || rs.Rows[0][0].S != "run-a" || rs.Rows[1][0].S != "run-d" {
		t.Fatalf("rows: %v", rs.Rows)
	}
}

func TestSelectExpressionsAndAliases(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, "SELECT name, time / node_count AS per_node FROM trial WHERE id = 1")
	if rs.Cols[1] != "per_node" {
		t.Fatalf("cols: %v", rs.Cols)
	}
	if got := rs.Rows[0][1].AsFloat(); got != 10.5/128 {
		t.Fatalf("per_node = %v", got)
	}
}

func TestJoin(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, `
		SELECT a.name, t.name, t.time
		FROM application a
		JOIN trial t ON t.application = a.id
		WHERE a.name = 'sppm'
		ORDER BY t.time`)
	if len(rs.Rows) != 3 {
		t.Fatalf("rows: %v", rs.Rows)
	}
	if rs.Rows[0][2].AsFloat() != 4.0 || rs.Rows[0][0].S != "sppm" {
		t.Fatalf("row0: %v", rs.Rows[0])
	}
}

func TestLeftJoin(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, `
		SELECT a.name, t.id
		FROM application a
		LEFT JOIN trial t ON t.application = a.id
		WHERE t.id IS NULL`)
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "sphot" {
		t.Fatalf("rows: %v", rs.Rows)
	}
}

func TestJoinNestedLoopFallback(t *testing.T) {
	db := fixture(t)
	// Non-equality ON forces the nested-loop path.
	rs := run(t, db, `
		SELECT a.name, t.name
		FROM application a
		JOIN trial t ON t.application < a.id
		WHERE a.name = 'smg2000'`)
	// trials with application(=1) < 2: the three sppm trials.
	if len(rs.Rows) != 3 {
		t.Fatalf("rows: %v", rs.Rows)
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, `
		SELECT application, COUNT(*) AS n, AVG(time) avg_t, MIN(time), MAX(time),
		       SUM(node_count), STDDEV(time)
		FROM trial
		GROUP BY application
		ORDER BY application`)
	if len(rs.Rows) != 2 {
		t.Fatalf("groups: %v", rs.Rows)
	}
	g1 := rs.Rows[0]
	if g1[1].AsInt() != 3 {
		t.Errorf("count = %v", g1[1].Go())
	}
	wantAvg := (10.5 + 6.25 + 4.0) / 3
	if got := g1[2].AsFloat(); got < wantAvg-1e-9 || got > wantAvg+1e-9 {
		t.Errorf("avg = %v want %v", got, wantAvg)
	}
	if g1[3].AsFloat() != 4.0 || g1[4].AsFloat() != 10.5 {
		t.Errorf("min/max = %v/%v", g1[3].Go(), g1[4].Go())
	}
	if g1[5].AsInt() != 128+256+512 {
		t.Errorf("sum = %v", g1[5].Go())
	}
	if g1[6].AsFloat() <= 0 {
		t.Errorf("stddev = %v", g1[6].Go())
	}
}

func TestHaving(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, `
		SELECT application, COUNT(*) n FROM trial
		GROUP BY application HAVING COUNT(*) > 2`)
	if len(rs.Rows) != 1 || rs.Rows[0][0].AsInt() != 1 {
		t.Fatalf("rows: %v", rs.Rows)
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, "SELECT COUNT(*), SUM(time), MIN(time) FROM trial WHERE id > 100")
	if len(rs.Rows) != 1 {
		t.Fatalf("rows: %v", rs.Rows)
	}
	if rs.Rows[0][0].AsInt() != 0 {
		t.Errorf("count = %v", rs.Rows[0][0].Go())
	}
	if !rs.Rows[0][1].IsNull() || !rs.Rows[0][2].IsNull() {
		t.Errorf("sum/min on empty = %v/%v", rs.Rows[0][1].Go(), rs.Rows[0][2].Go())
	}
}

func TestCountDistinct(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, "SELECT COUNT(DISTINCT node_count) FROM trial")
	if rs.Rows[0][0].AsInt() != 3 {
		t.Fatalf("distinct count = %v", rs.Rows[0][0].Go())
	}
}

func TestDistinctRows(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, "SELECT DISTINCT node_count FROM trial ORDER BY node_count")
	if len(rs.Rows) != 3 || rs.Rows[0][0].AsInt() != 128 || rs.Rows[2][0].AsInt() != 512 {
		t.Fatalf("rows: %v", rs.Rows)
	}
}

func TestOrderByForms(t *testing.T) {
	db := fixture(t)
	// Desc, positional, alias.
	rs := run(t, db, "SELECT name, time t FROM trial ORDER BY 2 DESC")
	if rs.Rows[0][0].S != "run-d" {
		t.Fatalf("positional desc: %v", rs.Rows)
	}
	rs = run(t, db, "SELECT name, time t FROM trial ORDER BY t")
	if rs.Rows[0][0].S != "run-c" {
		t.Fatalf("alias asc: %v", rs.Rows)
	}
	// Multi-key with tie on the first key.
	rs = run(t, db, "SELECT name FROM trial ORDER BY node_count, name DESC")
	if rs.Rows[0][0].S != "run-d" || rs.Rows[1][0].S != "run-a" {
		t.Fatalf("multi-key: %v", rs.Rows)
	}
}

func TestLimitOffset(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, "SELECT id FROM trial ORDER BY id LIMIT 2 OFFSET 1")
	if len(rs.Rows) != 2 || rs.Rows[0][0].AsInt() != 2 || rs.Rows[1][0].AsInt() != 3 {
		t.Fatalf("rows: %v", rs.Rows)
	}
	rs = run(t, db, "SELECT id FROM trial ORDER BY id LIMIT 0")
	if len(rs.Rows) != 0 {
		t.Fatalf("limit 0: %v", rs.Rows)
	}
	rs = run(t, db, "SELECT id FROM trial OFFSET 99")
	if len(rs.Rows) != 0 {
		t.Fatalf("big offset: %v", rs.Rows)
	}
}

func TestUpdateDeleteSQL(t *testing.T) {
	db := fixture(t)
	_, res, err := tryRun(db, "UPDATE trial SET time = time * 2 WHERE application = 1")
	if err != nil || res.RowsAffected != 3 {
		t.Fatalf("update: %v %v", res, err)
	}
	rs := run(t, db, "SELECT time FROM trial WHERE name = 'run-a'")
	if rs.Rows[0][0].AsFloat() != 21.0 {
		t.Fatalf("after update: %v", rs.Rows)
	}
	_, res, err = tryRun(db, "DELETE FROM trial WHERE node_count = 128")
	if err != nil || res.RowsAffected != 2 {
		t.Fatalf("delete: %v %v", res, err)
	}
	rs = run(t, db, "SELECT COUNT(*) FROM trial")
	if rs.Rows[0][0].AsInt() != 3 {
		t.Fatalf("count after delete: %v", rs.Rows)
	}
}

func TestInsertResult(t *testing.T) {
	db := fixture(t)
	_, res, err := tryRun(db, "INSERT INTO application (name) VALUES ('new1'), ('new2')")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 || res.LastInsertID != 5 {
		t.Fatalf("result: %+v", res)
	}
}

func TestLikeAndScalarFuncs(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, "SELECT name FROM trial WHERE name LIKE 'run-_' AND name NOT LIKE '%d'")
	if len(rs.Rows) != 4 {
		t.Fatalf("like rows: %v", rs.Rows)
	}
	rs = run(t, db, "SELECT UPPER(name), LENGTH(name), ABS(-3), SQRT(16.0), ROUND(2.567, 2), COALESCE(NULL, 'x') FROM application WHERE id = 1")
	r := rs.Rows[0]
	if r[0].S != "SPPM" || r[1].AsInt() != 4 || r[2].AsInt() != 3 ||
		r[3].AsFloat() != 4.0 || r[4].AsFloat() != 2.57 || r[5].S != "x" {
		t.Fatalf("scalars: %v", r)
	}
	rs = run(t, db, "SELECT name || '-v' || version FROM application WHERE id = 1")
	if rs.Rows[0][0].S != "sppm-v1.0" {
		t.Fatalf("concat: %v", rs.Rows[0][0].Go())
	}
}

func TestThreeValuedLogic(t *testing.T) {
	db := fixture(t)
	// version IS NULL for sphot; comparisons with NULL are unknown.
	rs := run(t, db, "SELECT name FROM application WHERE version = version")
	if len(rs.Rows) != 2 {
		t.Fatalf("null equality: %v", rs.Rows)
	}
	rs = run(t, db, "SELECT name FROM application WHERE version IS NULL")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "sphot" {
		t.Fatalf("is null: %v", rs.Rows)
	}
	rs = run(t, db, "SELECT name FROM application WHERE NOT (version = '1.0')")
	// NULL version row must not appear: NOT UNKNOWN = UNKNOWN.
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "smg2000" {
		t.Fatalf("not with null: %v", rs.Rows)
	}
	// x / 0 yields NULL rather than an error.
	rs = run(t, db, "SELECT 1 / 0 FROM application WHERE id = 1")
	if !rs.Rows[0][0].IsNull() {
		t.Fatalf("div by zero: %v", rs.Rows[0][0].Go())
	}
}

func TestInBetween(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, "SELECT COUNT(*) FROM trial WHERE node_count IN (128, 512)")
	if rs.Rows[0][0].AsInt() != 3 {
		t.Fatalf("in: %v", rs.Rows)
	}
	rs = run(t, db, "SELECT COUNT(*) FROM trial WHERE time BETWEEN 5 AND 20")
	if rs.Rows[0][0].AsInt() != 3 {
		t.Fatalf("between: %v", rs.Rows)
	}
	rs = run(t, db, "SELECT COUNT(*) FROM trial WHERE node_count NOT IN (128)")
	if rs.Rows[0][0].AsInt() != 3 {
		t.Fatalf("not in: %v", rs.Rows)
	}
}

func TestIndexAssistedQuery(t *testing.T) {
	db := fixture(t)
	run(t, db, "CREATE INDEX ix_nodes ON trial (node_count) USING btree")
	// Equality via the new index.
	rs := run(t, db, "SELECT COUNT(*) FROM trial WHERE node_count = 256")
	if rs.Rows[0][0].AsInt() != 2 {
		t.Fatalf("eq: %v", rs.Rows)
	}
	// Range via the ordered index.
	rs = run(t, db, "SELECT name FROM trial WHERE node_count >= 256 ORDER BY name")
	if len(rs.Rows) != 3 {
		t.Fatalf("range: %v", rs.Rows)
	}
	// PK index used for point queries.
	rs = run(t, db, "SELECT name FROM trial WHERE id = 4")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "run-d" {
		t.Fatalf("pk point: %v", rs.Rows)
	}
	// Index plus residual predicate.
	rs = run(t, db, "SELECT name FROM trial WHERE node_count = 128 AND time > 20")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "run-d" {
		t.Fatalf("residual: %v", rs.Rows)
	}
}

func TestIndexNotMisusedAcrossJoin(t *testing.T) {
	db := fixture(t)
	// "name" is ambiguous across application and trial; with a join present
	// the planner must not use an index for the unqualified predicate.
	run(t, db, "CREATE INDEX ix_aname ON application (name)")
	rs := run(t, db, `
		SELECT t.name FROM application a
		JOIN trial t ON t.application = a.id
		WHERE a.name = 'sppm'`)
	if len(rs.Rows) != 3 {
		t.Fatalf("qualified: %v", rs.Rows)
	}
}

func TestDDLviaSQL(t *testing.T) {
	db := reldb.NewMemory()
	run(t, db, "CREATE TABLE t (id BIGINT PRIMARY KEY AUTO_INCREMENT, a VARCHAR)")
	run(t, db, "CREATE TABLE IF NOT EXISTS t (id BIGINT PRIMARY KEY)")
	run(t, db, "ALTER TABLE t ADD COLUMN b DOUBLE DEFAULT 1.5")
	run(t, db, "INSERT INTO t (a) VALUES ('x')")
	rs := run(t, db, "SELECT b FROM t")
	if rs.Rows[0][0].AsFloat() != 1.5 {
		t.Fatalf("default: %v", rs.Rows)
	}
	run(t, db, "ALTER TABLE t DROP COLUMN a")
	rs = run(t, db, "SELECT * FROM t")
	if len(rs.Cols) != 2 {
		t.Fatalf("cols after drop: %v", rs.Cols)
	}
	run(t, db, "DROP TABLE t")
	run(t, db, "DROP TABLE IF EXISTS t")
	if _, _, err := tryRun(db, "DROP TABLE t"); err == nil {
		t.Fatal("dropping a missing table should fail")
	}
}

func TestErrorCases(t *testing.T) {
	db := fixture(t)
	bad := []string{
		"SELECT nosuch FROM trial",
		"SELECT * FROM nosuch",
		"SELECT name FROM application a JOIN trial t ON t.application = a.id WHERE id = 1", // ambiguous id
		"INSERT INTO trial (nosuch) VALUES (1)",
		"INSERT INTO trial (id, name) VALUES (1)",
		"SELECT SUM(*) FROM trial",
		"SELECT NOSUCHFUNC(1) FROM trial",
		"SELECT name FROM trial ORDER BY 17",
		"SELECT name FROM trial LIMIT -1",
		"UPDATE trial SET nosuch = 1",
	}
	for _, src := range bad {
		if _, _, err := tryRun(db, src); err == nil {
			t.Errorf("%s: expected error", src)
		}
	}
	// Missing parameter.
	if _, _, err := tryRun(db, "SELECT * FROM trial WHERE id = ?"); err == nil ||
		!strings.Contains(err.Error(), "parameter") {
		t.Errorf("missing param: %v", err)
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%", "", true},
		{"%", "anything", true},
		{"MPI%", "MPI_Send", true},
		{"MPI%", "PMPI_Send", false},
		{"%Send", "MPI_Send", true},
		{"%Recv%", "MPI_Irecv", false},
		{"MPI__end", "MPI_Send", true},
		{"_", "", false},
		{"_", "a", true},
		{"a%b%c", "axxbyyc", true},
		{"a%b%c", "axxbyy", false},
		{"", "", true},
		{"", "x", false},
		{"%%x", "x", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.pattern, c.s, got)
		}
	}
}

func TestQualifiedStar(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, "SELECT t.* FROM application a JOIN trial t ON t.application = a.id WHERE a.id = 2")
	if len(rs.Cols) != 5 || len(rs.Rows) != 2 {
		t.Fatalf("t.*: cols=%v rows=%d", rs.Cols, len(rs.Rows))
	}
}
