package sqlexec

import (
	"strings"
	"testing"
	"time"

	"perfdmf/internal/obs"
	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// parseSelect is a test helper for the clock tests, which drive QueryOpts
// directly so they can inspect the span.
func parseSelect(t *testing.T, src string) *sqlparse.Select {
	t.Helper()
	st, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok {
		t.Fatalf("%s: not a SELECT", src)
	}
	return sel
}

// TestFrozenClockZeroesSpans is the regression test for the injected-clock
// refactor: with SetClock frozen, every span duration the executor measures
// must be exactly zero, proving the query hot path reads time only through
// the injected clock (a single stray time.Now/time.Since would make some
// phase nonzero).
func TestFrozenClockZeroesSpans(t *testing.T) {
	db := fixture(t)
	fixed := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	restore := SetClock(func() time.Time { return fixed })
	defer restore()

	sel := parseSelect(t, "SELECT application, COUNT(*) FROM trial WHERE node_count >= ? GROUP BY application ORDER BY application")
	sp := &obs.Span{Kind: "query", Start: now()}
	err := db.Read(func(tx *reldb.Tx) error {
		rs, err := QueryOpts(tx, sel, []reldb.Value{reldb.FromGo(128)}, sp, Options{})
		if err == nil && len(rs.Rows) != 2 {
			t.Errorf("rows: %v", rs.Rows)
		}
		return err
	})
	if err != nil {
		t.Fatalf("query: %v", err)
	}

	if !sp.Start.Equal(fixed) {
		t.Errorf("span start %v, want the frozen instant %v", sp.Start, fixed)
	}
	if sp.Plan != 0 || sp.Execute != 0 || sp.Materialize != 0 {
		t.Errorf("frozen clock but nonzero phases: plan=%v execute=%v materialize=%v",
			sp.Plan, sp.Execute, sp.Materialize)
	}
}

// TestFrozenClockDeterministicExplainAnalyze pins the user-visible effect:
// EXPLAIN ANALYZE under a frozen clock reports identical, all-zero timings
// on every run, so its output is byte-for-byte reproducible.
func TestFrozenClockDeterministicExplainAnalyze(t *testing.T) {
	db := fixture(t)
	fixed := time.Unix(1_700_000_000, 0)
	restore := SetClock(func() time.Time { return fixed })
	defer restore()

	sel := parseSelect(t, "SELECT name FROM trial ORDER BY time")
	render := func() string {
		var out []string
		err := db.Read(func(tx *reldb.Tx) error {
			rs, err := ExplainAnalyze(tx, sel, nil)
			if err != nil {
				return err
			}
			for _, row := range rs.Rows {
				out = append(out, row[0].S)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("explain analyze: %v", err)
		}
		return strings.Join(out, "\n")
	}

	first := render()
	if !strings.Contains(first, "total=0s") {
		t.Fatalf("frozen clock should report total=0s, got:\n%s", first)
	}
	if second := render(); second != first {
		t.Fatalf("explain analyze not deterministic under a frozen clock:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

// TestSteppingClockMeasuresPhases drives the other direction: a clock that
// advances a fixed step per reading must yield identical spans across runs
// (the executor reads the clock a deterministic number of times) and a
// Total that accounts for every step taken.
func TestSteppingClockMeasuresPhases(t *testing.T) {
	db := fixture(t)
	sel := parseSelect(t, "SELECT name FROM trial WHERE node_count = ?")

	measure := func() (*obs.Span, int) {
		base := time.Unix(1_700_000_000, 0)
		ticks := 0
		restore := SetClock(func() time.Time {
			ticks++
			return base.Add(time.Duration(ticks) * time.Millisecond)
		})
		defer restore()
		sp := &obs.Span{Kind: "query", Start: now()}
		err := db.Read(func(tx *reldb.Tx) error {
			_, err := QueryOpts(tx, sel, []reldb.Value{reldb.FromGo(256)}, sp, Options{})
			return err
		})
		sp.Total = since(sp.Start)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		return sp, ticks
	}

	sp1, ticks1 := measure()
	sp2, ticks2 := measure()
	if ticks1 != ticks2 {
		t.Fatalf("clock read %d times on run 1 but %d on run 2", ticks1, ticks2)
	}
	if sp1.Plan != sp2.Plan || sp1.Execute != sp2.Execute ||
		sp1.Materialize != sp2.Materialize || sp1.Total != sp2.Total {
		t.Fatalf("spans differ across identical runs: %+v vs %+v", sp1, sp2)
	}
	if sp1.Total <= 0 {
		t.Fatalf("stepping clock yielded non-positive total %v", sp1.Total)
	}
	// Start consumed tick 1 and Total consumed the last tick, so the total
	// is exactly (ticks-1) steps.
	if want := time.Duration(ticks1-1) * time.Millisecond; sp1.Total != want {
		t.Fatalf("total %v, want %v for %d clock readings", sp1.Total, want, ticks1)
	}
}
