package sqlexec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// The planner must never change results: any query answered via an index
// (point, range, IN-union, composite) must return exactly the rows a full
// scan returns. This property test builds two identical tables — one fully
// indexed, one bare — and fires randomized predicates at both.

func buildEquivDBs(t *testing.T, rng *rand.Rand, rows int) (*reldb.DB, *reldb.DB) {
	t.Helper()
	ddl := `CREATE TABLE t (
		id BIGINT PRIMARY KEY AUTO_INCREMENT,
		a BIGINT, b BIGINT, c DOUBLE, s VARCHAR)`
	mk := func(indexed bool) *reldb.DB {
		db := reldb.NewMemory()
		st, err := sqlparse.Parse(ddl)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Write(func(tx *reldb.Tx) error {
			_, err := Exec(tx, st, nil)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if indexed {
			for _, src := range []string{
				"CREATE INDEX ix_a ON t (a)",
				"CREATE INDEX ix_b ON t (b) USING btree",
				"CREATE INDEX ix_ab ON t (a, b)",
			} {
				st, err := sqlparse.Parse(src)
				if err != nil {
					t.Fatal(err)
				}
				if err := db.Write(func(tx *reldb.Tx) error {
					_, err := Exec(tx, st, nil)
					return err
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		return db
	}
	indexed, bare := mk(true), mk(false)

	ins, err := sqlparse.Parse("INSERT INTO t (a, b, c, s) VALUES (?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		params := []reldb.Value{
			reldb.Int(int64(rng.Intn(10))),
			reldb.Int(int64(rng.Intn(20))),
			reldb.Float(rng.Float64() * 100),
			reldb.Str(fmt.Sprintf("s%d", rng.Intn(6))),
		}
		// Occasional NULLs to exercise three-valued planning.
		if rng.Intn(10) == 0 {
			params[0] = reldb.Null
		}
		for _, db := range []*reldb.DB{indexed, bare} {
			if err := db.Write(func(tx *reldb.Tx) error {
				_, err := Exec(tx, ins, params)
				return err
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return indexed, bare
}

// randPredicate builds a random conjunction over t's columns.
func randPredicate(rng *rand.Rand) string {
	atoms := []func() string{
		func() string { return fmt.Sprintf("a = %d", rng.Intn(12)) },
		func() string { return fmt.Sprintf("b = %d", rng.Intn(22)) },
		func() string { return fmt.Sprintf("b >= %d", rng.Intn(22)) },
		func() string { return fmt.Sprintf("b < %d", rng.Intn(22)) },
		func() string { return fmt.Sprintf("b BETWEEN %d AND %d", rng.Intn(10), 10+rng.Intn(10)) },
		func() string { return fmt.Sprintf("a IN (%d, %d, %d)", rng.Intn(12), rng.Intn(12), rng.Intn(12)) },
		func() string { return fmt.Sprintf("id = %d", 1+rng.Intn(60)) },
		func() string { return fmt.Sprintf("c > %g", rng.Float64()*100) },
		func() string { return fmt.Sprintf("s = 's%d'", rng.Intn(7)) },
		func() string { return "a IS NULL" },
		func() string { return fmt.Sprintf("a = %d AND b = %d", rng.Intn(12), rng.Intn(22)) },
		func() string { return "a IN (SELECT a FROM t WHERE b < 5)" },
	}
	n := 1 + rng.Intn(3)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " AND "
		}
		out += atoms[rng.Intn(len(atoms))]()
	}
	return out
}

func queryIDs(t *testing.T, db *reldb.DB, src string) []int64 {
	t.Helper()
	st, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	var ids []int64
	err = db.Read(func(tx *reldb.Tx) error {
		rs, err := Query(tx, st.(*sqlparse.Select), nil)
		if err != nil {
			return err
		}
		for _, row := range rs.Rows {
			ids = append(ids, row[0].AsInt())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestPlannerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2005))
	indexed, bare := buildEquivDBs(t, rng, 60)
	for i := 0; i < 400; i++ {
		src := "SELECT id FROM t WHERE " + randPredicate(rng)
		a := queryIDs(t, indexed, src)
		b := queryIDs(t, bare, src)
		if len(a) != len(b) {
			t.Fatalf("query %q: indexed %d rows, bare %d rows", src, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %q: id sets differ at %d: %v vs %v", src, j, a, b)
			}
		}
	}
}

// The same equivalence must hold for DELETE: both databases end with the
// same surviving rows.
func TestPlannerEquivalenceDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	indexed, bare := buildEquivDBs(t, rng, 50)
	for i := 0; i < 20; i++ {
		pred := randPredicate(rng)
		del := "DELETE FROM t WHERE " + pred
		st, err := sqlparse.Parse(del)
		if err != nil {
			t.Fatal(err)
		}
		var nA, nB int64
		for _, pair := range []struct {
			db *reldb.DB
			n  *int64
		}{{indexed, &nA}, {bare, &nB}} {
			err := pair.db.Write(func(tx *reldb.Tx) error {
				res, err := Exec(tx, st, nil)
				*pair.n = res.RowsAffected
				return err
			})
			if err != nil {
				t.Fatalf("%s: %v", del, err)
			}
		}
		if nA != nB {
			t.Fatalf("%q deleted %d (indexed) vs %d (bare)", del, nA, nB)
		}
		a := queryIDs(t, indexed, "SELECT id FROM t WHERE id > 0")
		b := queryIDs(t, bare, "SELECT id FROM t WHERE id > 0")
		if len(a) != len(b) {
			t.Fatalf("survivors differ after %q: %d vs %d", del, len(a), len(b))
		}
	}
}
