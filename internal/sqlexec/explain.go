package sqlexec

import (
	"fmt"

	"perfdmf/internal/obs"
	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// Explain describes, without executing the query, the access path the
// executor would take: the base-table strategy (index point lookup, index
// range scan, IN-union, or full scan) and the algorithm for each join
// (hash join on its equality key, or nested loop). The result is a single
// "plan" column with one row per step.
func Explain(tx *reldb.Tx, st *sqlparse.Select, params []reldb.Value) (*ResultSet, error) {
	rs := &ResultSet{Cols: []string{"plan"}}
	add := func(format string, args ...any) {
		rs.Rows = append(rs.Rows, []reldb.Value{reldb.Str(fmt.Sprintf(format, args...))})
	}

	if st.From.Sub != nil {
		add("base %s: derived table (subquery materialized)", describeRef(st.From))
	} else if virtualRef(st.From) {
		add("base %s: catalog (virtual table materialized at bind)", describeRef(st.From))
	} else {
		baseAlias := aliasOr(st.From.Alias, st.From.Table)
		if _, err := tx.Table(st.From.Table); err != nil {
			return nil, err
		}
		step, err := explainAccess(tx, st.From.Table, baseAlias, st.Where, params, len(st.Joins) > 0)
		if err != nil {
			return nil, err
		}
		add("base %s: %s", describeRef(st.From), step)
	}

	// Replicate the executor's binding order to classify each join.
	cols := newColmap()
	if err := bindRef(tx, cols, st.From, params); err != nil {
		return nil, err
	}
	for _, join := range st.Joins {
		leftWidth := cols.width
		if err := bindRef(tx, cols, join.TableRef, params); err != nil {
			return nil, err
		}
		kind := "inner"
		if join.Kind == sqlparse.LeftJoin {
			kind = "left"
		}
		if l, r, ok := findHashKey(cols, leftWidth, join.On); ok {
			add("%s hash join %s (build %s, key cols %d=%d)",
				kind, describeRef(join.TableRef), join.Table, l, r)
		} else {
			add("%s nested-loop join %s", kind, describeRef(join.TableRef))
		}
	}
	if st.Where != nil {
		add("filter: WHERE re-checked per row")
	}
	if len(st.GroupBy) > 0 || st.Having != nil {
		add("aggregate: group and fold")
	}
	if len(st.OrderBy) > 0 {
		add("sort: ORDER BY over %d key(s)", len(st.OrderBy))
	}
	if st.Limit != nil || st.Offset != nil {
		add("limit/offset")
	}
	return rs, nil
}

// ExplainAnalyze renders the static plan, then actually runs the query with
// a span attached and appends the measured phase timings, row counts and
// access-path outcome (including the parallel(n) fan-out when the executor
// used worker goroutines). The query's rows are discarded; only the
// annotated plan is returned.
func ExplainAnalyze(tx *reldb.Tx, st *sqlparse.Select, params []reldb.Value) (*ResultSet, error) {
	return ExplainAnalyzeOpts(tx, st, params, Options{})
}

// ExplainAnalyzeOpts is ExplainAnalyze with explicit execution options, so
// a connection's workers setting shapes the measured run.
func ExplainAnalyzeOpts(tx *reldb.Tx, st *sqlparse.Select, params []reldb.Value, opts Options) (*ResultSet, error) {
	rs, err := Explain(tx, st, params)
	if err != nil {
		return nil, err
	}
	add := func(format string, args ...any) {
		rs.Rows = append(rs.Rows, []reldb.Value{reldb.Str(fmt.Sprintf(format, args...))})
	}

	sp := &obs.Span{Kind: "query", Start: now()}
	if _, err := QueryOpts(tx, st, params, sp, opts); err != nil {
		return nil, err
	}
	sp.Total = since(sp.Start)
	access := "full scan"
	if sp.PlanSummary != "" {
		access = sp.PlanSummary
	} else if sp.IndexUsed {
		access = "index access"
	}
	add("actual: plan=%v execute=%v materialize=%v total=%v",
		sp.Plan, sp.Execute, sp.Materialize, sp.Total)
	add("actual: rows scanned=%d, rows returned=%d (%s)",
		sp.RowsScanned, sp.RowsReturned, access)
	return rs, nil
}

func describeRef(tr sqlparse.TableRef) string {
	if tr.Alias != "" && tr.Alias != tr.Table {
		return tr.Table + " AS " + tr.Alias
	}
	return tr.Table
}

func bindRef(tx *reldb.Tx, cols *colmap, tr sqlparse.TableRef, params []reldb.Value) error {
	if tr.Sub != nil {
		// Only the column names are needed for join-key classification.
		rs, err := Query(tx, tr.Sub, params)
		if err != nil {
			return err
		}
		cols.bindNames(aliasOr(tr.Alias, tr.Table), rs.Cols)
		return nil
	}
	if def := catalogTable(tr.Table); def != nil {
		cols.bindNames(aliasOr(tr.Alias, tr.Table), def.cols)
		return nil
	}
	tbl, err := tx.Table(tr.Table)
	if err != nil {
		return err
	}
	cols.bind(aliasOr(tr.Alias, tr.Table), tr.Table, tbl.Schema())
	return nil
}

// explainAccess mirrors planAccess's preference order but reports the
// decision instead of collecting slots.
func explainAccess(tx *reldb.Tx, table, alias string, where sqlparse.Expr, params []reldb.Value, requireQualified bool) (string, error) {
	slots, dec, err := planAccess(tx, table, alias, where, params, requireQualified)
	if err != nil {
		return "", err
	}
	if dec.kind == accessFullScan {
		return "full scan", nil
	}
	return fmt.Sprintf("index access (%d candidate rows)", len(slots)), nil
}

// findHashKey returns the positions of an equality pair usable for a hash
// join: leftPos resolves inside the already-bound prefix, rightPos inside
// the newly-bound table. It mirrors the detection in execJoin.
func findHashKey(cols *colmap, leftWidth int, on sqlparse.Expr) (leftPos, rightPos int, ok bool) {
	for _, c := range splitAnd(on) {
		b, isBin := c.(*sqlparse.Binary)
		if !isBin || b.Op != sqlparse.OpEq {
			continue
		}
		lc, lok := b.L.(*sqlparse.ColRef)
		rc, rok := b.R.(*sqlparse.ColRef)
		if !lok || !rok {
			continue
		}
		lp, lerr := cols.resolve(lc)
		rp, rerr := cols.resolve(rc)
		if lerr != nil || rerr != nil {
			continue
		}
		switch {
		case lp < leftWidth && rp >= leftWidth:
			return lp, rp - leftWidth, true
		case rp < leftWidth && lp >= leftWidth:
			return rp, lp - leftWidth, true
		}
	}
	return 0, 0, false
}
