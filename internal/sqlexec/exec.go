package sqlexec

import (
	"fmt"
	"strings"

	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// Result reports the effect of a DDL/DML statement.
type Result struct {
	RowsAffected int64
	LastInsertID int64 // primary key of the last inserted row, 0 if none
}

// ResultSet is a materialized query result.
type ResultSet struct {
	Cols []string
	Rows [][]reldb.Value
}

// Exec runs a non-SELECT statement inside tx. Transaction-control
// statements (BEGIN/COMMIT/ROLLBACK) are handled by the connection layer,
// not here.
func Exec(tx *reldb.Tx, stmt sqlparse.Statement, params []reldb.Value) (Result, error) {
	return ExecOpts(tx, stmt, params, Options{})
}

// ExecOpts is Exec with execution options: ANALYZE uses the worker cap for
// its partitioned scan, and the statement entry drives accounting and
// cancellation. KILL needs no transaction; tx may be nil for it.
func ExecOpts(tx *reldb.Tx, stmt sqlparse.Statement, params []reldb.Value, opts Options) (Result, error) {
	switch st := stmt.(type) {
	case *sqlparse.Analyze:
		return execAnalyze(tx, st, opts)
	case *sqlparse.Compact:
		return execCompact(tx, st, opts)
	case *sqlparse.Kill:
		return execKill(st, params)
	case *sqlparse.CreateTable:
		return execCreateTable(tx, st)
	case *sqlparse.DropTable:
		if st.IfExists && !tx.HasTable(st.Name) {
			return Result{}, nil
		}
		return Result{}, tx.DropTable(st.Name)
	case *sqlparse.AlterTable:
		return execAlterTable(tx, st)
	case *sqlparse.CreateIndex:
		kind := reldb.HashIndex
		if st.Using == "BTREE" {
			kind = reldb.OrderedIndex
		}
		return Result{}, tx.CreateIndex(st.Name, st.Table, st.Columns, kind, st.Unique)
	case *sqlparse.DropIndex:
		return Result{}, tx.DropIndex(st.Table, st.Name)
	case *sqlparse.Insert:
		return execInsert(tx, st, params)
	case *sqlparse.Update:
		return execUpdate(tx, st, params, opts.Stmt)
	case *sqlparse.Delete:
		return execDelete(tx, st, params, opts.Stmt)
	case *sqlparse.Select:
		return Result{}, fmt.Errorf("sqlexec: use Query for SELECT")
	}
	return Result{}, fmt.Errorf("sqlexec: cannot execute %T", stmt)
}

// execKill resolves the statement id (a literal or parameter) and cancels
// the matching statement. RowsAffected is 1 when a statement was killed.
func execKill(st *sqlparse.Kill, params []reldb.Value) (Result, error) {
	v, ok := constVal(st.ID, params)
	if !ok || v.T != reldb.TInt {
		return Result{}, fmt.Errorf("sqlexec: KILL expects an integer statement id")
	}
	if !Statements.Kill(v.AsInt()) {
		return Result{}, fmt.Errorf("sqlexec: no active statement %d", v.AsInt())
	}
	return Result{RowsAffected: 1}, nil
}

func execCreateTable(tx *reldb.Tx, st *sqlparse.CreateTable) (Result, error) {
	if st.IfNotExists && tx.HasTable(st.Name) {
		return Result{}, nil
	}
	schema := &reldb.Schema{Name: st.Name}
	for _, cd := range st.Columns {
		schema.Columns = append(schema.Columns, reldb.Column{
			Name:          cd.Name,
			Type:          cd.Type,
			NotNull:       cd.NotNull || cd.PrimaryKey,
			Default:       cd.Default,
			AutoIncrement: cd.AutoIncrement,
		})
		if cd.PrimaryKey {
			if schema.PrimaryKey != "" {
				return Result{}, fmt.Errorf("sqlexec: table %s: multiple primary keys", st.Name)
			}
			schema.PrimaryKey = cd.Name
		}
		if cd.References != nil {
			refCol := cd.References.Column
			if refCol == "" {
				refCol = "id"
			}
			schema.ForeignKeys = append(schema.ForeignKeys, reldb.ForeignKey{
				Column: cd.Name, RefTable: cd.References.Table, RefColumn: refCol,
			})
		}
	}
	return Result{}, tx.CreateTable(schema)
}

func execAlterTable(tx *reldb.Tx, st *sqlparse.AlterTable) (Result, error) {
	if st.Add != nil {
		if st.Add.PrimaryKey || st.Add.AutoIncrement {
			return Result{}, fmt.Errorf("sqlexec: ALTER TABLE cannot add key columns")
		}
		return Result{}, tx.AddColumn(st.Name, reldb.Column{
			Name:    st.Add.Name,
			Type:    st.Add.Type,
			NotNull: st.Add.NotNull,
			Default: st.Add.Default,
		})
	}
	return Result{}, tx.DropColumn(st.Name, st.DropCol)
}

func execInsert(tx *reldb.Tx, st *sqlparse.Insert, params []reldb.Value) (Result, error) {
	tbl, err := tx.Table(st.Table)
	if err != nil {
		return Result{}, err
	}
	schema := tbl.Schema()
	// Map each provided column to its schema position.
	positions := make([]int, 0, len(st.Columns))
	if len(st.Columns) == 0 {
		for i := range schema.Columns {
			positions = append(positions, i)
		}
	} else {
		for _, name := range st.Columns {
			pos := schema.ColumnIndex(name)
			if pos < 0 {
				return Result{}, fmt.Errorf("sqlexec: table %s has no column %s", st.Table, name)
			}
			positions = append(positions, pos)
		}
	}
	ev := &env{cols: newColmap(), params: params, tx: tx}
	var res Result
	// tx.Insert copies during normalization, so one scratch row serves
	// every VALUES tuple — the bulk-load path is allocation-sensitive.
	row := make(reldb.Row, len(schema.Columns))
	for _, exprs := range st.Rows {
		if len(exprs) != len(positions) {
			return Result{}, fmt.Errorf("sqlexec: INSERT row has %d values, want %d",
				len(exprs), len(positions))
		}
		for i := range row {
			row[i] = reldb.Null
		}
		for i, e := range exprs {
			v, err := eval(e, ev)
			if err != nil {
				return Result{}, err
			}
			row[positions[i]] = v
		}
		id, err := tx.Insert(st.Table, row)
		if err != nil {
			return Result{}, err
		}
		res.RowsAffected++
		if !id.IsNull() {
			res.LastInsertID = id.AsInt()
		}
	}
	return res, nil
}

// matchingSlots returns the slots of base-table rows satisfying where,
// using an index when a top-level conjunct permits, otherwise scanning.
// stmt (nil-safe) is polled every cancelCheckRows rows so a KILL unwinds
// UPDATE/DELETE scans the same way it unwinds SELECT scans.
func matchingSlots(tx *reldb.Tx, table, alias string, where sqlparse.Expr, params []reldb.Value, stmt *StmtEntry) ([]int, error) {
	tbl, err := tx.Table(table)
	if err != nil {
		return nil, err
	}
	cols := newColmap()
	cols.bind(aliasOr(alias, table), table, tbl.Schema())
	ev := &env{cols: cols, params: params, tx: tx}

	candidates, dec, err := planAccess(tx, table, aliasOr(alias, table), where, params, false)
	if err != nil {
		return nil, err
	}
	scanned := dec.kind == accessFullScan
	var out []int
	checked := 0
	check := func(slot int) error {
		row := tx.Row(table, slot)
		if row == nil {
			return nil
		}
		if where != nil {
			ev.row = row
			v, err := eval(where, ev)
			if err != nil {
				return err
			}
			if !truthy(v) {
				return nil
			}
		}
		out = append(out, slot)
		return nil
	}
	if scanned {
		var inner error
		tx.Scan(table, func(slot int, _ reldb.Row) bool {
			checked++
			if checked%cancelCheckRows == 0 {
				if inner = stmt.Err(); inner != nil {
					return false
				}
				if stmt != nil {
					stmt.rowsScanned.Add(cancelCheckRows)
				}
			}
			inner = check(slot)
			return inner == nil
		})
		if inner != nil {
			return nil, inner
		}
		return out, nil
	}
	for _, slot := range candidates {
		checked++
		if checked%cancelCheckRows == 0 {
			if err := stmt.Err(); err != nil {
				return nil, err
			}
			if stmt != nil {
				stmt.rowsScanned.Add(cancelCheckRows)
			}
		}
		if err := check(slot); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func aliasOr(alias, table string) string {
	if alias != "" {
		return alias
	}
	return table
}

func execUpdate(tx *reldb.Tx, st *sqlparse.Update, params []reldb.Value, stmt *StmtEntry) (Result, error) {
	tbl, err := tx.Table(st.Table)
	if err != nil {
		return Result{}, err
	}
	schema := tbl.Schema()
	slots, err := matchingSlots(tx, st.Table, "", st.Where, params, stmt)
	if err != nil {
		return Result{}, err
	}
	cols := newColmap()
	cols.bind(st.Table, st.Table, schema)
	ev := &env{cols: cols, params: params, tx: tx}
	var res Result
	applied := 0
	for _, slot := range slots {
		applied++
		if applied%cancelCheckRows == 0 {
			if err := stmt.Err(); err != nil {
				return Result{}, err
			}
		}
		old := tx.Row(st.Table, slot)
		if old == nil {
			continue
		}
		row := make(reldb.Row, len(old))
		copy(row, old)
		ev.row = old
		for _, set := range st.Sets {
			pos := schema.ColumnIndex(set.Column)
			if pos < 0 {
				return Result{}, fmt.Errorf("sqlexec: table %s has no column %s", st.Table, set.Column)
			}
			v, err := eval(set.Expr, ev)
			if err != nil {
				return Result{}, err
			}
			row[pos] = v
		}
		if err := tx.Update(st.Table, slot, row); err != nil {
			return Result{}, err
		}
		res.RowsAffected++
	}
	return res, nil
}

func execDelete(tx *reldb.Tx, st *sqlparse.Delete, params []reldb.Value, stmt *StmtEntry) (Result, error) {
	slots, err := matchingSlots(tx, st.Table, "", st.Where, params, stmt)
	if err != nil {
		return Result{}, err
	}
	var res Result
	applied := 0
	for _, slot := range slots {
		applied++
		if applied%cancelCheckRows == 0 {
			if err := stmt.Err(); err != nil {
				return Result{}, err
			}
		}
		if err := tx.Delete(st.Table, slot); err != nil {
			return Result{}, err
		}
		res.RowsAffected++
	}
	return res, nil
}

// planAccess inspects the top-level AND conjuncts of where for a predicate
// on an indexed column of the base table. It returns a candidate slot list
// plus the decision it took; dec.kind == accessFullScan means no index
// applied and the caller must scan every live row. requireQualified
// restricts planning to conjuncts whose column reference is explicitly
// qualified with the base alias; it must be set when the query has joins,
// where an unqualified name may belong to another table.
func planAccess(tx *reldb.Tx, table, alias string, where sqlparse.Expr, params []reldb.Value, requireQualified bool) (slots []int, dec accessDecision, err error) {
	conjuncts := splitAnd(where)
	evalConst := func(e sqlparse.Expr) (reldb.Value, bool) {
		return constVal(e, params)
	}
	colOf := func(e sqlparse.Expr) (string, bool) {
		c, ok := e.(*sqlparse.ColRef)
		if !ok {
			return "", false
		}
		if c.Table == "" {
			if requireQualified {
				return "", false
			}
			return c.Name, true
		}
		if !strings.EqualFold(c.Table, alias) && !strings.EqualFold(c.Table, table) {
			return "", false
		}
		return c.Name, true
	}
	// Collect the constant-equality conjuncts once; a composite index that
	// covers several of them at once beats any single-column plan. The
	// value-side expression rides along so the decision can be memoized and
	// replayed against future parameter sets.
	type eqPred struct {
		col  string
		val  reldb.Value
		expr sqlparse.Expr
	}
	var eqs []eqPred
	for _, c := range conjuncts {
		b, ok := c.(*sqlparse.Binary)
		if !ok || b.Op != sqlparse.OpEq {
			continue
		}
		col, okL := colOf(b.L)
		v, okR := evalConst(b.R)
		vexpr := b.R
		if !okL || !okR {
			col, okL = colOf(b.R)
			v, okR = evalConst(b.L)
			vexpr = b.L
		}
		if okL && okR && !v.IsNull() {
			eqs = append(eqs, eqPred{col, v, vexpr})
		}
	}
	// Try composite coverage from the largest subset down to pairs.
	if len(eqs) >= 2 {
		for size := len(eqs); size >= 2; size-- {
			// Contiguous-subset search keeps this cheap; predicates almost
			// always appear in index order in generated SQL.
			for start := 0; start+size <= len(eqs); start++ {
				cols := make([]string, size)
				vals := make([]reldb.Value, size)
				exprs := make([]sqlparse.Expr, size)
				for i := 0; i < size; i++ {
					cols[i] = eqs[start+i].col
					vals[i] = eqs[start+i].val
					exprs[i] = eqs[start+i].expr
				}
				if s, used := tx.LookupEqMulti(table, cols, vals); used {
					return s, accessDecision{kind: accessMultiEq, cols: cols, valExprs: exprs}, nil
				}
			}
		}
	}
	// First preference: equality on an indexed column.
	for _, eq := range eqs {
		if s, used := tx.LookupEq(table, eq.col, eq.val); used {
			return s, accessDecision{kind: accessEqIndex, cols: []string{eq.col}, valExprs: []sqlparse.Expr{eq.expr}}, nil
		}
	}
	// IN-lists and IN-subqueries on an indexed column become a union of
	// point lookups (this keeps e.g. core.DeleteTrial's
	// "WHERE fk IN (SELECT id ...)" statements off the full-scan path).
	for _, c := range conjuncts {
		in, ok := c.(*sqlparse.InList)
		if !ok || in.Neg {
			continue
		}
		col, okC := colOf(in.X)
		if !okC || !tx.IndexOn(table, col, false) {
			continue
		}
		var vals []reldb.Value
		if in.Sub != nil {
			rs, err := Query(tx, in.Sub.Select, params)
			if err != nil {
				return nil, accessDecision{}, err
			}
			if len(rs.Cols) != 1 {
				return nil, accessDecision{}, fmt.Errorf("sqlexec: IN subquery must return one column, got %d", len(rs.Cols))
			}
			for _, row := range rs.Rows {
				vals = append(vals, row[0])
			}
		} else {
			allConst := true
			for _, item := range in.List {
				v, ok := evalConst(item)
				if !ok {
					allConst = false
					break
				}
				vals = append(vals, v)
			}
			if !allConst {
				continue
			}
		}
		seen := make(map[int]bool)
		union := []int{}
		for _, v := range vals {
			if v.IsNull() {
				continue
			}
			s, _ := tx.LookupEq(table, col, v)
			for _, slot := range s {
				if !seen[slot] {
					seen[slot] = true
					union = append(union, slot)
				}
			}
		}
		return union, accessDecision{kind: accessOther}, nil
	}
	// Second preference: a range predicate on an ordered-indexed column.
	for _, c := range conjuncts {
		b, ok := c.(*sqlparse.Binary)
		if !ok {
			continue
		}
		var col string
		var v reldb.Value
		var okC, okV bool
		op := b.Op
		col, okC = colOf(b.L)
		v, okV = evalConst(b.R)
		if !okC || !okV {
			// Flip: const OP col.
			col, okC = colOf(b.R)
			v, okV = evalConst(b.L)
			switch op {
			case sqlparse.OpLt:
				op = sqlparse.OpGt
			case sqlparse.OpLe:
				op = sqlparse.OpGe
			case sqlparse.OpGt:
				op = sqlparse.OpLt
			case sqlparse.OpGe:
				op = sqlparse.OpLe
			}
		}
		if !okC || !okV || v.IsNull() {
			continue
		}
		var lo, hi reldb.Value
		var loInc, hiInc bool
		switch op {
		case sqlparse.OpLt:
			hi = v
		case sqlparse.OpLe:
			hi, hiInc = v, true
		case sqlparse.OpGt:
			lo = v
		case sqlparse.OpGe:
			lo, loInc = v, true
		default:
			continue
		}
		var collected []int
		if tx.ScanRange(table, col, lo, hi, loInc, hiInc, func(slot int) bool {
			collected = append(collected, slot)
			return true
		}) {
			return collected, accessDecision{kind: accessOther}, nil
		}
	}
	// BETWEEN on an ordered-indexed column.
	for _, c := range conjuncts {
		bt, ok := c.(*sqlparse.Between)
		if !ok || bt.Neg {
			continue
		}
		col, okC := colOf(bt.X)
		lo, okL := evalConst(bt.Lo)
		hi, okH := evalConst(bt.Hi)
		if !okC || !okL || !okH || lo.IsNull() || hi.IsNull() {
			continue
		}
		var collected []int
		if tx.ScanRange(table, col, lo, hi, true, true, func(slot int) bool {
			collected = append(collected, slot)
			return true
		}) {
			return collected, accessDecision{kind: accessOther}, nil
		}
	}
	return nil, accessDecision{kind: accessFullScan}, nil
}

// splitAnd flattens the top-level AND spine of an expression.
func splitAnd(e sqlparse.Expr) []sqlparse.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlparse.Binary); ok && b.Op == sqlparse.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []sqlparse.Expr{e}
}
