package sqlexec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrStatementKilled is the base error a cancelled statement's execution
// returns. Callers can match it with errors.Is.
var ErrStatementKilled = errors.New("sqlexec: statement killed")

// cancelCheckRows is how many rows a scan or aggregation loop processes
// between cancellation checks. It is well below the 4096-row scan chunk, so
// a KILL takes effect within one chunk of work.
const cancelCheckRows = 1024

// maxStmtSQL bounds the SQL text kept per registry entry; the catalog is a
// diagnostic surface, not an archive.
const maxStmtSQL = 512

// StmtPhase identifies where in its lifecycle a statement currently is.
type StmtPhase int32

// Statement lifecycle phases, in execution order.
const (
	PhaseParse StmtPhase = iota
	PhasePlan
	PhaseExecute
	PhaseMaterialize
)

// String returns the phase name OBS_ACTIVE_STATEMENTS reports.
func (p StmtPhase) String() string {
	switch p {
	case PhaseParse:
		return "parse"
	case PhasePlan:
		return "plan"
	case PhaseExecute:
		return "execute"
	case PhaseMaterialize:
		return "materialize"
	}
	return "unknown"
}

// StmtEntry is one live statement's accounting record. The driving
// connection creates it with StmtRegistry.Begin, the executor updates the
// counters as it runs, and Finish retires it. Cancellation is context-based:
// Kill cancels the entry's context, and every scan/aggregate loop polls it
// between row batches.
type StmtEntry struct {
	id    int64
	sql   string
	kind  string
	start time.Time

	phase        atomic.Int32
	rowsScanned  atomic.Int64
	rowsReturned atomic.Int64
	workers      atomic.Int32
	killed       atomic.Bool

	ctx    context.Context
	cancel context.CancelFunc
	reg    *StmtRegistry
}

// ID returns the registry-assigned statement id — the value KILL takes.
func (e *StmtEntry) ID() int64 { return e.id }

// Context returns the statement's cancellation context. It is done once the
// statement has been killed or finished.
func (e *StmtEntry) Context() context.Context { return e.ctx }

// SetPhase records the statement's current lifecycle phase.
func (e *StmtEntry) SetPhase(p StmtPhase) {
	if e != nil {
		e.phase.Store(int32(p))
	}
}

// Err returns a wrapped ErrStatementKilled once the statement's context has
// been cancelled, nil otherwise. A nil entry never errors, so execution
// paths call it unconditionally.
func (e *StmtEntry) Err() error {
	if e == nil || e.ctx.Err() == nil {
		return nil
	}
	return fmt.Errorf("%w (statement %d)", ErrStatementKilled, e.id)
}

// Finish retires the entry: it leaves the registry and its context is
// released. Safe on a nil entry and idempotent.
func (e *StmtEntry) Finish() {
	if e == nil {
		return
	}
	e.cancel()
	r := e.reg
	r.mu.Lock()
	delete(r.entries, e.id)
	mStmtActive.Set(int64(len(r.entries)))
	r.mu.Unlock()
}

// StmtInfo is a point-in-time copy of one statement's accounting, shaped
// for both the OBS_ACTIVE_STATEMENTS catalog table and the /statements
// endpoint.
type StmtInfo struct {
	ID           int64  `json:"statement_id"`
	SQL          string `json:"sql"`
	Kind         string `json:"kind"`
	Phase        string `json:"phase"`
	ElapsedUS    int64  `json:"elapsed_us"`
	RowsScanned  int64  `json:"rows_scanned"`
	RowsReturned int64  `json:"rows_returned"`
	Workers      int    `json:"workers"`
	Killed       bool   `json:"killed"`
}

// StmtRegistry tracks every statement currently executing in the process.
// godbc registers statements as connections run them; the executor threads
// the entry through Options so scans can account rows and observe kills.
type StmtRegistry struct {
	mu      sync.Mutex
	nextID  int64
	entries map[int64]*StmtEntry
}

// Statements is the process-wide registry backing OBS_ACTIVE_STATEMENTS,
// KILL, and the /statements endpoint.
var Statements = &StmtRegistry{entries: make(map[int64]*StmtEntry)}

// Begin registers a new statement and returns its accounting entry. sql is
// truncated to a diagnostic-sized prefix; kind is "query" or "exec".
func (r *StmtRegistry) Begin(sql, kind string) *StmtEntry {
	if len(sql) > maxStmtSQL {
		sql = sql[:maxStmtSQL]
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &StmtEntry{sql: sql, kind: kind, start: now(), ctx: ctx, cancel: cancel, reg: r}
	mStmtStarted.Inc()
	r.mu.Lock()
	r.nextID++
	e.id = r.nextID
	r.entries[e.id] = e
	mStmtActive.Set(int64(len(r.entries)))
	r.mu.Unlock()
	return e
}

// Kill cancels the statement with the given id. It reports whether a live
// statement was found; the statement itself unwinds at its next
// cancellation check and returns ErrStatementKilled.
func (r *StmtRegistry) Kill(id int64) bool {
	r.mu.Lock()
	e := r.entries[id]
	r.mu.Unlock()
	if e == nil {
		return false
	}
	e.killed.Store(true)
	e.cancel()
	mStmtKilled.Inc()
	return true
}

// Snapshot returns the live statements sorted by id.
func (r *StmtRegistry) Snapshot() []StmtInfo {
	r.mu.Lock()
	ids := make([]int64, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	entries := make([]*StmtEntry, len(ids))
	for i, id := range ids {
		entries[i] = r.entries[id]
	}
	r.mu.Unlock()
	out := make([]StmtInfo, len(entries))
	for i, e := range entries {
		out[i] = StmtInfo{
			ID:           e.id,
			SQL:          e.sql,
			Kind:         e.kind,
			Phase:        StmtPhase(e.phase.Load()).String(),
			ElapsedUS:    since(e.start).Microseconds(),
			RowsScanned:  e.rowsScanned.Load(),
			RowsReturned: e.rowsReturned.Load(),
			Workers:      int(e.workers.Load()),
			Killed:       e.killed.Load(),
		}
	}
	return out
}
