package sqlexec

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// cancelFixture builds a table large enough that a scan crosses many
// cancellation checkpoints (cancelCheckRows apart) before finishing, giving
// the kill tests a wide window to land in.
func cancelFixture(t testing.TB, nrows int) *reldb.DB {
	t.Helper()
	db := reldb.NewMemory()
	st, err := sqlparse.Parse(`CREATE TABLE big (
		id BIGINT PRIMARY KEY AUTO_INCREMENT,
		grp VARCHAR NOT NULL,
		n BIGINT NOT NULL,
		x DOUBLE)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Write(func(tx *reldb.Tx) error {
		if _, err := Exec(tx, st, nil); err != nil {
			return err
		}
		for i := 0; i < nrows; i++ {
			row := reldb.Row{
				reldb.Null,
				reldb.Str(fmt.Sprintf("g%d", i%37)),
				reldb.Int(int64(i)),
				reldb.Float(float64(i) / 3.0),
			}
			if _, err := tx.Insert("big", row); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// killDuring runs src with the given worker budget and kills the statement
// once ready(entry) reports the execution reached the targeted stage. It
// reports whether the kill landed (false: the query finished first, caller
// should retry), failing the test if a landed kill produced anything other
// than ErrStatementKilled with no result set.
func killDuring(t *testing.T, db *reldb.DB, src string, workers int, ready func(*StmtEntry) bool) bool {
	t.Helper()
	sel, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	entry := Statements.Begin(src, "query")
	type outcome struct {
		rs  *ResultSet
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer entry.Finish()
		var rs *ResultSet
		qerr := db.Read(func(tx *reldb.Tx) error {
			var err error
			rs, err = QueryOpts(tx, sel.(*sqlparse.Select), nil, nil, Options{Workers: workers, Stmt: entry})
			return err
		})
		done <- outcome{rs, qerr}
	}()

	for {
		select {
		case o := <-done:
			// The query outran the poller; nothing was killed.
			if o.err != nil {
				t.Fatalf("unkilled query failed: %v", o.err)
			}
			return false
		default:
		}
		if ready(entry) {
			break
		}
		runtime.Gosched()
	}
	if !Statements.Kill(entry.ID()) {
		// Finished between the readiness check and the kill.
		o := <-done
		if o.err != nil {
			t.Fatalf("unkilled query failed: %v", o.err)
		}
		return false
	}
	o := <-done
	if o.err == nil {
		// The kill raced with the statement's completion (it landed after
		// the final cancellation check but before Finish deregistered the
		// entry). The result is complete, not partial; retry for a kill
		// that lands mid-execution.
		return false
	}
	if !errors.Is(o.err, ErrStatementKilled) {
		t.Fatalf("killed query returned err=%v, want ErrStatementKilled", o.err)
	}
	if o.rs != nil {
		t.Fatalf("killed query returned a partial result set (%d rows)", len(o.rs.Rows))
	}
	return true
}

// retryKill runs killDuring until the kill lands, tolerating runs where the
// query finishes before the poller catches it.
func retryKill(t *testing.T, db *reldb.DB, src string, workers int, ready func(*StmtEntry) bool) {
	t.Helper()
	for attempt := 0; attempt < 20; attempt++ {
		if killDuring(t, db, src, workers, ready) {
			return
		}
	}
	t.Fatalf("query finished before the kill could land in 20 attempts: %s", src)
}

// midScan waits for the first scan checkpoint: the executor only publishes
// rows_scanned every cancelCheckRows rows, so a non-zero count means the
// statement is genuinely inside a scan.
func midScan(e *StmtEntry) bool { return e.rowsScanned.Load() > 0 }

// midMaterialize waits for the materialize phase, where grouped queries run
// chunked aggregation.
func midMaterialize(e *StmtEntry) bool {
	return StmtPhase(e.phase.Load()) == PhaseMaterialize
}

func TestKillPreCancelled(t *testing.T) {
	db := cancelFixture(t, 10)
	sel, err := sqlparse.Parse(`SELECT * FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	entry := Statements.Begin("SELECT * FROM big", "query")
	defer entry.Finish()
	if !Statements.Kill(entry.ID()) {
		t.Fatal("Kill did not find the registered statement")
	}
	err = db.Read(func(tx *reldb.Tx) error {
		_, err := QueryOpts(tx, sel.(*sqlparse.Select), nil, nil, Options{Stmt: entry})
		return err
	})
	if !errors.Is(err, ErrStatementKilled) {
		t.Fatalf("pre-cancelled query returned %v, want ErrStatementKilled", err)
	}
}

func TestKillMidScanSerial(t *testing.T) {
	db := cancelFixture(t, 300_000)
	retryKill(t, db, `SELECT id, grp FROM big WHERE n * 3 + 1 > 0`, 1, midScan)
}

func TestKillMidScanParallel(t *testing.T) {
	db := cancelFixture(t, 300_000)
	retryKill(t, db, `SELECT id, grp FROM big WHERE n * 3 + 1 > 0`, 4, midScan)
}

func TestKillMidAggregation(t *testing.T) {
	db := cancelFixture(t, 300_000)
	src := `SELECT grp, COUNT(*), SUM(x), AVG(n) FROM big GROUP BY grp`
	retryKill(t, db, src, 1, midMaterialize)
	retryKill(t, db, src, 4, midMaterialize)
}

// TestKillLeavesNoGoroutines: after killing parallel statements the worker
// pool must drain back to baseline — cancellation tears workers down via
// the same stop-flag path as errors.
func TestKillLeavesNoGoroutines(t *testing.T) {
	db := cancelFixture(t, 300_000)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		retryKill(t, db, `SELECT id FROM big WHERE n > 1`, 8, midScan)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after kills: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	// The registry must be empty again: Finish removes killed entries too.
	for _, si := range Statements.Snapshot() {
		if si.SQL == `SELECT id FROM big WHERE n > 1` {
			t.Fatalf("killed statement still registered: %+v", si)
		}
	}
}

// TestKillUnknownStatement: killing an id that is not registered reports
// false and is otherwise a no-op.
func TestKillUnknownStatement(t *testing.T) {
	if Statements.Kill(1 << 60) {
		t.Fatal("Kill(unknown) = true")
	}
}

// TestStatementAccounting: a completed statement reports its scan and
// return counts through the registry snapshot while still live.
func TestStatementAccounting(t *testing.T) {
	db := cancelFixture(t, 10)
	sel, err := sqlparse.Parse(`SELECT id FROM big WHERE n >= 4`)
	if err != nil {
		t.Fatal(err)
	}
	entry := Statements.Begin("SELECT id FROM big WHERE n >= 4", "query")
	var rs *ResultSet
	if err := db.Read(func(tx *reldb.Tx) error {
		var err error
		rs, err = QueryOpts(tx, sel.(*sqlparse.Select), nil, nil, Options{Stmt: entry})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rs.Rows))
	}
	snap := Statements.Snapshot()
	var found bool
	for _, si := range snap {
		if si.ID == entry.ID() {
			found = true
			if si.RowsScanned != 10 || si.RowsReturned != 6 {
				t.Fatalf("accounting = scanned %d returned %d, want 10/6", si.RowsScanned, si.RowsReturned)
			}
			if si.Phase != "materialize" {
				t.Fatalf("phase = %q, want materialize", si.Phase)
			}
		}
	}
	if !found {
		t.Fatal("live statement missing from snapshot")
	}
	entry.Finish()
	for _, si := range Statements.Snapshot() {
		if si.ID == entry.ID() {
			t.Fatal("finished statement still in snapshot")
		}
	}
}
