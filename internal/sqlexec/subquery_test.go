package sqlexec

import (
	"strings"
	"testing"

	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

func TestInSubquery(t *testing.T) {
	db := fixture(t)
	// Trials of applications whose name starts with 's' and has version set.
	rs := run(t, db, `
		SELECT name FROM trial
		WHERE application IN (SELECT id FROM application WHERE version IS NOT NULL)
		ORDER BY name`)
	if len(rs.Rows) != 5 {
		t.Fatalf("rows: %v", rs.Rows)
	}
	rs = run(t, db, `
		SELECT name FROM trial
		WHERE application NOT IN (SELECT id FROM application WHERE name = 'sppm')`)
	if len(rs.Rows) != 2 {
		t.Fatalf("not in: %v", rs.Rows)
	}
	// Empty subquery result: IN → no rows, NOT IN → all rows.
	rs = run(t, db, `
		SELECT COUNT(*) FROM trial
		WHERE application IN (SELECT id FROM application WHERE name = 'nosuch')`)
	if rs.Rows[0][0].AsInt() != 0 {
		t.Fatalf("in empty: %v", rs.Rows)
	}
	rs = run(t, db, `
		SELECT COUNT(*) FROM trial
		WHERE application NOT IN (SELECT id FROM application WHERE name = 'nosuch')`)
	if rs.Rows[0][0].AsInt() != 5 {
		t.Fatalf("not in empty: %v", rs.Rows)
	}
}

func TestScalarSubquery(t *testing.T) {
	db := fixture(t)
	// Trials slower than the average.
	rs := run(t, db, `
		SELECT name FROM trial
		WHERE time > (SELECT AVG(time) FROM trial)
		ORDER BY time DESC`)
	if len(rs.Rows) != 2 || rs.Rows[0][0].S != "run-d" {
		t.Fatalf("above average: %v", rs.Rows)
	}
	// Scalar subquery as a projected expression.
	rs = run(t, db, `SELECT name, time - (SELECT MIN(time) FROM trial) FROM trial WHERE id = 1`)
	if rs.Rows[0][1].AsFloat() != 10.5-4.0 {
		t.Fatalf("projection: %v", rs.Rows)
	}
	// Empty scalar subquery yields NULL.
	rs = run(t, db, `SELECT (SELECT time FROM trial WHERE id = 99) FROM application WHERE id = 1`)
	if !rs.Rows[0][0].IsNull() {
		t.Fatalf("empty scalar: %v", rs.Rows[0][0].Go())
	}
}

func TestSubqueryInDML(t *testing.T) {
	db := fixture(t)
	// DELETE with IN subquery (the DeleteTrial pattern).
	_, res, err := tryRun(db, `
		DELETE FROM trial
		WHERE application IN (SELECT id FROM application WHERE name = 'sppm')`)
	if err != nil || res.RowsAffected != 3 {
		t.Fatalf("delete: %v %v", res, err)
	}
	// UPDATE with scalar subquery.
	_, res, err = tryRun(db, `
		UPDATE trial SET time = (SELECT MAX(time) FROM trial) WHERE id = 4`)
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("update: %v %v", res, err)
	}
	rs := run(t, db, "SELECT time FROM trial WHERE id = 4")
	if rs.Rows[0][0].AsFloat() != 30.0 {
		t.Fatalf("updated value: %v", rs.Rows)
	}
}

func TestSubqueryErrors(t *testing.T) {
	db := fixture(t)
	// Multi-column scalar subquery.
	if _, _, err := tryRun(db, "SELECT (SELECT id, name FROM application) FROM trial"); err == nil ||
		!strings.Contains(err.Error(), "one column") {
		t.Errorf("multi-column scalar: %v", err)
	}
	// Multi-row scalar subquery.
	if _, _, err := tryRun(db, "SELECT (SELECT id FROM application) FROM trial"); err == nil ||
		!strings.Contains(err.Error(), "rows") {
		t.Errorf("multi-row scalar: %v", err)
	}
	// Multi-column IN subquery.
	if _, _, err := tryRun(db, "SELECT name FROM trial WHERE id IN (SELECT id, name FROM application)"); err == nil {
		t.Error("multi-column IN accepted")
	}
	// Correlated subqueries are rejected (unknown column in inner scope).
	if _, _, err := tryRun(db, `
		SELECT name FROM trial t
		WHERE time > (SELECT AVG(time) FROM trial WHERE application = t.application)`); err == nil {
		t.Error("correlated subquery accepted")
	}
}

func TestInPlanningWithIndex(t *testing.T) {
	db := fixture(t)
	run(t, db, "CREATE INDEX ix_app ON trial (application)")
	// Indexed IN list.
	rs := run(t, db, "SELECT COUNT(*) FROM trial WHERE application IN (1, 99)")
	if rs.Rows[0][0].AsInt() != 3 {
		t.Fatalf("in list with index: %v", rs.Rows)
	}
	// Indexed IN subquery.
	rs = run(t, db, `
		SELECT COUNT(*) FROM trial
		WHERE application IN (SELECT id FROM application WHERE name LIKE 's%')`)
	if rs.Rows[0][0].AsInt() != 5 {
		t.Fatalf("in subquery with index: %v", rs.Rows)
	}
	// Residual predicates still apply on top of the IN plan.
	rs = run(t, db, `
		SELECT COUNT(*) FROM trial
		WHERE application IN (1, 2) AND node_count = 128`)
	if rs.Rows[0][0].AsInt() != 2 {
		t.Fatalf("in + residual: %v", rs.Rows)
	}
	// Duplicate values in the list must not duplicate rows.
	rs = run(t, db, "SELECT COUNT(*) FROM trial WHERE application IN (1, 1, 1)")
	if rs.Rows[0][0].AsInt() != 3 {
		t.Fatalf("duplicate in values: %v", rs.Rows)
	}
}

func TestCompositeIndexPlan(t *testing.T) {
	db := fixture(t)
	run(t, db, "CREATE INDEX ix_app_nodes ON trial (application, node_count)")
	rs := run(t, db, "SELECT COUNT(*) FROM trial WHERE application = 1 AND node_count = 256")
	if rs.Rows[0][0].AsInt() != 1 {
		t.Fatalf("composite eq: %v", rs.Rows)
	}
	// EXPLAIN confirms the composite index drives the plan.
	st, err := sqlparse.Parse("EXPLAIN SELECT name FROM trial WHERE application = 1 AND node_count = 256")
	if err != nil {
		t.Fatal(err)
	}
	var plan string
	db.Read(func(tx *reldb.Tx) error {
		rs, err := Explain(tx, st.(*sqlparse.Explain).Select, nil)
		if err != nil {
			return err
		}
		plan = rs.Rows[0][0].S
		return nil
	})
	if !strings.Contains(plan, "index access (1 candidate rows)") {
		t.Fatalf("plan: %q", plan)
	}
	// Residual predicates still re-checked.
	rs = run(t, db, "SELECT COUNT(*) FROM trial WHERE application = 1 AND node_count = 256 AND time > 100")
	if rs.Rows[0][0].AsInt() != 0 {
		t.Fatalf("composite + residual: %v", rs.Rows)
	}
}
