package sqlexec

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlparse"
)

// compact runs a COMPACT statement, sealing columnar segments so the
// vectorized path engages without waiting for the lazy heuristic.
func compact(t testing.TB, db *reldb.DB, src string) Result {
	t.Helper()
	st, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %s: %v", src, err)
	}
	var res Result
	if err := db.Write(func(tx *reldb.Tx) error {
		var err error
		res, err = Exec(tx, st, nil)
		return err
	}); err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return res
}

// queryPath runs a SELECT with full Options control (worker budget and
// row-path forcing).
func queryPath(db *reldb.DB, src string, o Options, params ...any) (*ResultSet, error) {
	st, err := sqlparse.Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("not a SELECT: %s", src)
	}
	vals := make([]reldb.Value, len(params))
	for i, p := range params {
		vals[i] = reldb.FromGo(p)
	}
	var rs *ResultSet
	err = db.Read(func(tx *reldb.Tx) error {
		var err error
		rs, err = QueryOpts(tx, sel, vals, nil, o)
		return err
	})
	return rs, err
}

// columnarCorpus is the vectorized-vs-row differential corpus. Every query
// is executed through the forced row path (NoColumnar) and through the
// columnar path at several worker budgets; results must be bitwise
// identical. The fixture sprinkles NULLs through excl and subr, so NULL
// group keys, NULL-skipping aggregates and NULL predicate semantics are
// all on the line. Queries the vectorized planner rejects (LIKE, DISTINCT
// aggregates, expression predicates) ride along to pin the fallback.
var columnarCorpus = []string{
	// grouped aggregation over dict, int and multi-column keys
	`SELECT event, COUNT(*), SUM(excl), AVG(excl), MIN(excl), MAX(excl) FROM ilp GROUP BY event ORDER BY event`,
	`SELECT metric, COUNT(*) FROM ilp GROUP BY metric`,
	`SELECT thread, SUM(calls), MIN(excl), MAX(excl) FROM ilp GROUP BY thread ORDER BY thread`,
	`SELECT event, metric, COUNT(*), AVG(excl) FROM ilp GROUP BY event, metric ORDER BY event, metric`,
	`SELECT subr, COUNT(*), SUM(excl) FROM ilp GROUP BY subr ORDER BY subr`,
	`SELECT excl, COUNT(*) FROM ilp GROUP BY excl ORDER BY excl LIMIT 40`,
	`SELECT event, STDDEV(excl) FROM ilp GROUP BY event ORDER BY event`,
	// global aggregation, incl. COUNT(col) NULL skipping
	`SELECT COUNT(*), COUNT(excl), COUNT(subr), SUM(excl), AVG(excl), MIN(excl), MAX(excl) FROM ilp`,
	`SELECT SUM(calls), MIN(id), MAX(id), MIN(event), MAX(event) FROM ilp`,
	// vectorized predicates: comparisons, BETWEEN, IS [NOT] NULL, params
	`SELECT event, COUNT(*), SUM(excl) FROM ilp WHERE excl > 9000.0 GROUP BY event ORDER BY event`,
	`SELECT event, COUNT(*) FROM ilp WHERE thread BETWEEN 17 AND 141 GROUP BY event ORDER BY event`,
	`SELECT event, COUNT(*) FROM ilp WHERE subr IS NULL GROUP BY event ORDER BY event`,
	`SELECT metric, AVG(excl) FROM ilp WHERE subr IS NOT NULL AND excl < 5000.0 GROUP BY metric ORDER BY metric`,
	`SELECT event, COUNT(*) FROM ilp WHERE event = 'ev7' GROUP BY event`,
	`SELECT event, COUNT(*) FROM ilp WHERE metric = 'TIME' AND thread >= 100 GROUP BY event ORDER BY event`,
	`SELECT event, SUM(calls) FROM ilp WHERE thread = ? GROUP BY event ORDER BY event`,
	`SELECT COUNT(*) FROM ilp WHERE 50 < thread`,
	// few or zero survivors: the direct-aggregation tail, incl. the
	// zero-row global group and the empty grouped result
	`SELECT COUNT(*), SUM(excl), MIN(excl) FROM ilp WHERE thread < 0`,
	`SELECT event, COUNT(*) FROM ilp WHERE thread < 0 GROUP BY event ORDER BY event`,
	`SELECT event, COUNT(*) FROM ilp WHERE thread = 3 GROUP BY event ORDER BY event`,
	// HAVING, ORDER BY aggregates, LIMIT
	`SELECT event, AVG(excl) FROM ilp WHERE thread < 300 GROUP BY event HAVING COUNT(*) > 10 ORDER BY AVG(excl) DESC, event`,
	`SELECT thread, SUM(calls) FROM ilp GROUP BY thread ORDER BY SUM(calls) DESC, thread LIMIT 7`,
	// shapes the vectorized planner must refuse, falling back cleanly
	`SELECT event, COUNT(DISTINCT thread) FROM ilp GROUP BY event ORDER BY event`,
	`SELECT event, COUNT(*) FROM ilp WHERE event LIKE 'ev1%' GROUP BY event ORDER BY event`,
	`SELECT event, COUNT(*) FROM ilp WHERE calls * 2 > 1000 GROUP BY event ORDER BY event`,
	`SELECT event, COUNT(*) FROM ilp WHERE excl > (SELECT AVG(excl) FROM ilp) GROUP BY event ORDER BY event`,
}

// TestColumnarRowEquivalence is the differential harness: forced row path
// vs columnar path at workers 1, 4 and 8, bit for bit.
func TestColumnarRowEquivalence(t *testing.T) {
	db := parallelFixture(t)
	compact(t, db, `COMPACT ilp`)
	for _, src := range columnarCorpus {
		var params []any
		if strings.Contains(src, "?") {
			params = []any{217}
		}
		row, rerr := queryPath(db, src, Options{Workers: 1, NoColumnar: true}, params...)
		if rerr != nil {
			t.Fatalf("row path %s: %v", src, rerr)
		}
		for _, w := range []int{1, 4, 8} {
			col, cerr := queryPath(db, src, Options{Workers: w}, params...)
			if cerr != nil {
				t.Fatalf("columnar workers=%d %s: %v", w, src, cerr)
			}
			if !reflect.DeepEqual(row, col) {
				t.Errorf("columnar workers=%d diverges from row path for %s:\nrow cols=%v rows=%d\ncolumnar cols=%v rows=%d",
					w, src, row.Cols, len(row.Rows), col.Cols, len(col.Rows))
			}
		}
	}
}

// explainAnalyzeText returns the concatenated EXPLAIN ANALYZE output for src.
func explainAnalyzeText(t *testing.T, db *reldb.DB, src string, workers int) string {
	t.Helper()
	st, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := db.Read(func(tx *reldb.Tx) error {
		rs, err := ExplainAnalyzeOpts(tx, st.(*sqlparse.Select), nil, Options{Workers: workers})
		if err != nil {
			return err
		}
		for _, r := range rs.Rows {
			sb.WriteString(r[0].S)
			sb.WriteString("\n")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestColumnarExplainAndDMLFallback pins the observable plan annotation and
// the freshness contract: after COMPACT the grouped query reports
// columnar(n); one DML invalidates the segments and the very next execution
// falls back to the row path; segmentBuildAfter further eligible reads
// reseal and the annotation returns.
func TestColumnarExplainAndDMLFallback(t *testing.T) {
	db := parallelFixture(t)
	compact(t, db, `COMPACT`)
	src := `SELECT event, COUNT(*), SUM(excl) FROM ilp GROUP BY event ORDER BY event`

	if plan := explainAnalyzeText(t, db, src, 4); !strings.Contains(plan, "columnar(") {
		t.Fatalf("no columnar(n) annotation after COMPACT:\n%s", plan)
	}

	if err := db.Write(func(tx *reldb.Tx) error {
		_, err := tx.Insert("ilp", reldb.Row{
			reldb.Null, reldb.Str("ev0"), reldb.Int(1), reldb.Str("TIME"),
			reldb.Float(1), reldb.Int(1), reldb.Null,
		})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// The invalidated snapshot must never serve another query; the lazy
	// heuristic takes over and reseals only after enough eligible reads.
	sawFallback := 0
	for {
		plan := explainAnalyzeText(t, db, src, 4)
		if strings.Contains(plan, "columnar(") {
			break
		}
		sawFallback++
		if sawFallback > 10 {
			t.Fatalf("segments never resealed after DML; last plan:\n%s", plan)
		}
	}
	if sawFallback == 0 {
		t.Fatal("query served from a stale segment set right after DML")
	}
}

// TestColumnarSmallTableStaysRowPath: under parallelMinRows the planner
// must not even try the vectorized path.
func TestColumnarSmallTableStaysRowPath(t *testing.T) {
	db := fixture(t)
	compact(t, db, `COMPACT trial`)
	if plan := explainAnalyzeText(t, db, `SELECT node_count, COUNT(*) FROM trial GROUP BY node_count`, 8); strings.Contains(plan, "columnar(") {
		t.Fatalf("small table took the columnar path:\n%s", plan)
	}
}

// TestColumnarPlanCacheHits: executions through an attached Plan handle
// that take the vectorized path bump Plan.Columnar — the source of the
// OBS_PLAN_CACHE columnar_hits column.
func TestColumnarPlanCacheHits(t *testing.T) {
	db := parallelFixture(t)
	compact(t, db, `COMPACT ilp`)
	st, err := sqlparse.Parse(`SELECT event, COUNT(*) FROM ilp GROUP BY event ORDER BY event`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*sqlparse.Select)
	plan := NewPlan(sel)
	for i := 0; i < 3; i++ {
		if err := db.Read(func(tx *reldb.Tx) error {
			_, err := QueryOpts(tx, sel, nil, nil, Options{Plan: plan})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := plan.Columnar.Load(); got != 3 {
		t.Fatalf("plan.Columnar = %d after 3 vectorized executions, want 3", got)
	}
}

// TestCompactStatement pins the statement surface: COMPACT <table> reports
// the rows it sealed, COMPACT with no table sweeps every user table, and a
// missing table is an error.
func TestCompactStatement(t *testing.T) {
	db := parallelFixture(t)
	if res := compact(t, db, `COMPACT ilp`); res.RowsAffected != 6200 {
		t.Fatalf("COMPACT ilp sealed %d rows, want 6200", res.RowsAffected)
	}
	if res := compact(t, db, `COMPACT`); res.RowsAffected < 6200 {
		t.Fatalf("bare COMPACT sealed %d rows, want at least the ilp table", res.RowsAffected)
	}
	st, err := sqlparse.Parse(`COMPACT no_such_table`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Write(func(tx *reldb.Tx) error {
		_, err := Exec(tx, st, nil)
		return err
	}); err == nil {
		t.Fatal("COMPACT of a missing table did not fail")
	}
}

// TestColumnarKill: a statement killed while the vectorized path is
// scanning or folding must surface ErrStatementKilled and never a partial
// result, at serial and parallel budgets. killDuring (cancel_test.go)
// asserts both.
func TestColumnarKill(t *testing.T) {
	db := cancelFixture(t, 300_000)
	compact(t, db, `COMPACT big`)
	src := `SELECT grp, COUNT(*), SUM(x), AVG(n) FROM big WHERE n >= 0 GROUP BY grp`
	inExecute := func(e *StmtEntry) bool {
		return StmtPhase(e.phase.Load()) == PhaseExecute
	}
	retryKill(t, db, src, 1, inExecute)
	retryKill(t, db, src, 4, inExecute)
}

// TestColumnarGoroutineHygiene: the columnar worker pools must drain back
// to baseline after the corpus, including the fallback and error shapes.
func TestColumnarGoroutineHygiene(t *testing.T) {
	db := parallelFixture(t)
	compact(t, db, `COMPACT ilp`)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		for _, src := range columnarCorpus {
			if strings.Contains(src, "?") {
				continue
			}
			if _, err := queryPath(db, src, Options{Workers: 8}); err != nil {
				t.Fatalf("%s: %v", src, err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
