package sqlexec

import (
	"testing"
)

func TestDerivedTableBasic(t *testing.T) {
	db := fixture(t)
	// Average time per application, computed in a derived table, filtered
	// outside it.
	rs := run(t, db, `
		SELECT app, avg_t FROM (
			SELECT application AS app, AVG(time) AS avg_t
			FROM trial GROUP BY application
		) sums
		WHERE avg_t > 10
		ORDER BY avg_t DESC`)
	if len(rs.Rows) != 1 {
		t.Fatalf("rows: %v", rs.Rows)
	}
	if rs.Rows[0][0].AsInt() != 2 || rs.Rows[0][1].AsFloat() != 24.0 {
		t.Fatalf("row: %v", rs.Rows[0])
	}
	// Qualified references into the derived table.
	rs = run(t, db, `SELECT s.app FROM (SELECT application app FROM trial) s WHERE s.app = 1`)
	if len(rs.Rows) != 3 {
		t.Fatalf("qualified: %v", rs.Rows)
	}
	// SELECT * over a derived table.
	rs = run(t, db, `SELECT * FROM (SELECT name, node_count FROM trial WHERE id <= 2) x`)
	if len(rs.Cols) != 2 || len(rs.Rows) != 2 {
		t.Fatalf("star: cols=%v rows=%d", rs.Cols, len(rs.Rows))
	}
}

func TestDerivedTableJoin(t *testing.T) {
	db := fixture(t)
	// Join a base table against a derived aggregate (per-app trial counts).
	rs := run(t, db, `
		SELECT a.name, counts.n
		FROM application a
		JOIN (SELECT application AS app, COUNT(*) AS n FROM trial GROUP BY application) counts
		  ON counts.app = a.id
		ORDER BY counts.n DESC`)
	if len(rs.Rows) != 2 {
		t.Fatalf("rows: %v", rs.Rows)
	}
	if rs.Rows[0][0].S != "sppm" || rs.Rows[0][1].AsInt() != 3 {
		t.Fatalf("row0: %v", rs.Rows[0])
	}
	// Derived table as the base with a base-table join.
	rs = run(t, db, `
		SELECT top.name, a.name
		FROM (SELECT name, application FROM trial ORDER BY time DESC LIMIT 1) top
		JOIN application a ON a.id = top.application`)
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "run-d" || rs.Rows[0][1].S != "smg2000" {
		t.Fatalf("slowest: %v", rs.Rows)
	}
}

func TestDerivedTableNested(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, `
		SELECT MAX(n) FROM (
			SELECT n FROM (
				SELECT COUNT(*) AS n FROM trial GROUP BY application
			) inner1
		) outer1`)
	if rs.Rows[0][0].AsInt() != 3 {
		t.Fatalf("nested: %v", rs.Rows)
	}
}

func TestDerivedTableParams(t *testing.T) {
	db := fixture(t)
	rs := run(t, db, `
		SELECT COUNT(*) FROM (SELECT * FROM trial WHERE node_count >= ?) big`, 256)
	if rs.Rows[0][0].AsInt() != 3 {
		t.Fatalf("params: %v", rs.Rows)
	}
}

func TestDerivedTableErrors(t *testing.T) {
	db := fixture(t)
	bad := []string{
		"SELECT * FROM (SELECT * FROM trial)",           // missing alias
		"SELECT * FROM (INSERT INTO t VALUES (1)) x",    // not a SELECT
		"SELECT nosuch FROM (SELECT name FROM trial) d", // unknown column
		"SELECT * FROM (SELECT * FROM nosuchtable) d",   // inner error
		"UPDATE (SELECT * FROM trial) d SET name = 'x'", // DML on derived
	}
	for _, src := range bad {
		if _, _, err := tryRun(db, src); err == nil {
			t.Errorf("%s: accepted", src)
		}
	}
}

func TestExplainDerivedTable(t *testing.T) {
	db := fixture(t)
	plan := explainPlan(t, db, `SELECT * FROM (SELECT name FROM trial) d`)
	if !hasLine(plan, "derived table") {
		t.Fatalf("plan: %v", plan)
	}
	plan = explainPlan(t, db, `
		SELECT a.name FROM application a
		JOIN (SELECT application app FROM trial) d ON d.app = a.id`)
	if !hasLine(plan, "hash join") {
		t.Fatalf("derived join plan: %v", plan)
	}
}
