package experiments

import (
	"fmt"
	"time"

	"perfdmf/internal/core"
	"perfdmf/internal/formats/xmlprof"
	"perfdmf/internal/mining"
	"perfdmf/internal/model"
	"perfdmf/internal/synth"
)

// writeXML is a seam for E8 (kept here so experiments.go stays focused on
// the experiment logic).
func writeXML(path string, p *model.Profile) error {
	return xmlprof.Write(path, p)
}

// --- Ablations of the design choices called out in DESIGN.md §4 ---

// AblationRow is one (variant, elapsed) measurement.
type AblationRow struct {
	Name    string
	Variant string
	Elapsed time.Duration
	Detail  string
}

// RunAblationBatchInsert compares the bulk-load path with batched
// multi-row INSERTs against row-at-a-time statements.
func RunAblationBatchInsert(threads, events int) ([]AblationRow, error) {
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: threads, Events: events, Metrics: 1, Seed: 4})
	var out []AblationRow
	for _, variant := range []struct {
		name  string
		batch int
	}{
		{"batch=1 (row at a time)", 1},
		{"batch=64", 64},
		{"batch=256", 256},
	} {
		s, err := newArchive(memDSN("ab-batch"))
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := s.UploadTrial(p, core.UploadOptions{BatchSize: variant.batch}); err != nil {
			s.Close()
			return nil, err
		}
		out = append(out, AblationRow{
			Name: "batch-insert", Variant: variant.name, Elapsed: time.Since(t0),
			Detail: fmt.Sprintf("%d data points", p.DataPoints()),
		})
		s.Close()
	}
	return out, nil
}

// RunAblationIndex compares the indexed trial download against the same
// download with the supporting index dropped (forcing full scans).
func RunAblationIndex(threads, events, trials int) ([]AblationRow, error) {
	s, err := newArchive(memDSN("ab-index"))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	// Several trials so a full scan has to wade through unrelated rows.
	var lastID int64
	for i := 0; i < trials; i++ {
		p := synth.LargeTrial(synth.LargeTrialConfig{Threads: threads, Events: events, Metrics: 1, Seed: int64(i)})
		trial, err := s.UploadTrial(p, core.UploadOptions{})
		if err != nil {
			return nil, err
		}
		lastID = trial.ID
	}

	var out []AblationRow
	t0 := time.Now()
	p1, err := s.LoadTrial(lastID)
	if err != nil {
		return nil, err
	}
	out = append(out, AblationRow{
		Name: "index", Variant: "with ix_ilp_event", Elapsed: time.Since(t0),
		Detail: fmt.Sprintf("%d data points of %d trials", p1.DataPoints(), trials),
	})

	if _, err := s.Conn().Exec("DROP INDEX ix_ilp_event ON interval_location_profile"); err != nil {
		return nil, err
	}
	t0 = time.Now()
	p2, err := s.LoadTrial(lastID)
	if err != nil {
		return nil, err
	}
	out = append(out, AblationRow{
		Name: "index", Variant: "full scan", Elapsed: time.Since(t0),
		Detail: fmt.Sprintf("%d data points of %d trials", p2.DataPoints(), trials),
	})
	// Restore for any later use of the archive.
	if _, err := s.Conn().Exec("CREATE INDEX ix_ilp_event ON interval_location_profile (interval_event)"); err != nil {
		return nil, err
	}
	return out, nil
}

// RunAblationSummary compares querying precomputed mean-summary tables
// against aggregating INTERVAL_LOCATION_PROFILE on demand.
func RunAblationSummary(threads, events int) ([]AblationRow, error) {
	s, err := newArchive(memDSN("ab-summary"))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: threads, Events: events, Metrics: 1, Seed: 6})
	trial, err := s.UploadTrial(p, core.UploadOptions{})
	if err != nil {
		return nil, err
	}
	s.SetTrial(trial)

	const rounds = 10
	var out []AblationRow
	t0 := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := s.MeanSummary("TIME"); err != nil {
			return nil, err
		}
	}
	out = append(out, AblationRow{
		Name: "summary", Variant: "precomputed table", Elapsed: time.Since(t0),
		Detail: fmt.Sprintf("%d queries", rounds),
	})

	t0 = time.Now()
	for i := 0; i < rounds; i++ {
		rows, err := s.Conn().Query(`
			SELECT e.name, AVG(p.exclusive)
			FROM interval_event e
			JOIN interval_location_profile p ON p.interval_event = e.id
			WHERE e.trial = ?
			GROUP BY e.name`, trial.ID)
		if err != nil {
			return nil, err
		}
		n := 0
		for rows.Next() {
			n++
		}
		rows.Close()
		if n != events {
			return nil, fmt.Errorf("on-demand aggregate returned %d events", n)
		}
	}
	out = append(out, AblationRow{
		Name: "summary", Variant: "aggregate on demand", Elapsed: time.Since(t0),
		Detail: fmt.Sprintf("%d queries", rounds),
	})
	return out, nil
}

// RunAblationSeeding compares k-means++ seeding against plain random
// seeding on the E4 workload, reporting final RSS (quality) per variant.
func RunAblationSeeding(threads int) ([]AblationRow, error) {
	s, err := newArchive(memDSN("ab-seed"))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	p, _ := synth.CounterTrial(synth.CounterConfig{Threads: threads, Seed: 7})
	trial, err := s.UploadTrial(p, core.UploadOptions{})
	if err != nil {
		return nil, err
	}
	fm, err := mining.ExtractFeatures(s, trial.ID, nil)
	if err != nil {
		return nil, err
	}
	fm.Normalize(mining.NormZScore)

	var out []AblationRow
	for _, variant := range []struct {
		name  string
		plain bool
	}{
		{"k-means++", false},
		{"uniform random", true},
	} {
		t0 := time.Now()
		worst := 0.0
		// Single-restart runs expose the seeding quality difference.
		for seed := int64(0); seed < 10; seed++ {
			cl, err := mining.KMeans(fm.Rows, mining.KMeansConfig{
				K: 3, Seed: seed, PlainRNG: variant.plain, Restarts: 1,
			})
			if err != nil {
				return nil, err
			}
			if cl.RSS > worst {
				worst = cl.RSS
			}
		}
		out = append(out, AblationRow{
			Name: "seeding", Variant: variant.name, Elapsed: time.Since(t0),
			Detail: fmt.Sprintf("worst RSS over 10 seeds: %.4g", worst),
		})
	}
	return out, nil
}
