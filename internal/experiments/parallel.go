package experiments

import (
	"fmt"
	"runtime"
	"time"

	"perfdmf/internal/core"
	"perfdmf/internal/godbc"
	"perfdmf/internal/synth"
)

// P1 measures the parallel query executor on a Miranda-scale trial: the
// same partitioned scan and GROUP BY aggregation executed at increasing
// worker budgets, plus the prepared-statement plan cache's effect on a
// point-query hot loop. The JSON this produces (BENCH_parallel.json via
// cmd/experiments) is the artifact the speedup acceptance check reads.
//
// Speedups are relative to workers=1 on the same data in the same process.
// On a single-core runner (GOMAXPROCS=1) the parallel rows still execute —
// the workers are real goroutines — but no speedup is expected; consumers
// should gate on the recorded GOMAXPROCS.

// P1Timing is one worker-budget measurement point.
type P1Timing struct {
	Workers        int     `json:"workers"`
	ScanNS         int64   `json:"scan_ns_per_op"`
	GroupByNS      int64   `json:"groupby_ns_per_op"`
	ScanSpeedup    float64 `json:"scan_speedup"`
	GroupBySpeedup float64 `json:"groupby_speedup"`
}

// P1Result is the full parallel-execution benchmark record.
type P1Result struct {
	Rows            int        `json:"rows"`
	Threads         int        `json:"threads"`
	Events          int        `json:"events"`
	GOMAXPROCS      int        `json:"gomaxprocs"`
	ScanQuery       string     `json:"scan_query"`
	GroupByQuery    string     `json:"groupby_query"`
	Timings         []P1Timing `json:"results"`
	PlanCacheHitNS  int64      `json:"plan_cache_hit_ns_per_op"`
	PlanCacheMissNS int64      `json:"plan_cache_miss_ns_per_op"`
	Generate        time.Duration `json:"-"`
	Upload          time.Duration `json:"-"`
}

const (
	p1ScanQuery = `SELECT COUNT(*) FROM interval_location_profile
		WHERE exclusive > ? AND call > 0`
	p1GroupByQuery = `SELECT interval_event, COUNT(*), SUM(exclusive),
			AVG(inclusive), MIN(exclusive), MAX(exclusive)
		FROM interval_location_profile GROUP BY interval_event`
)

// RunP1 uploads one synthetic trial of threads×events data points and times
// the two representative read queries at each worker budget.
func RunP1(threads, events int, workerBudgets []int) (*P1Result, error) {
	res := &P1Result{
		Threads:      threads,
		Events:       events,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		ScanQuery:    p1ScanQuery,
		GroupByQuery: p1GroupByQuery,
	}
	dsn := memDSN("p1")
	s, err := newArchive(dsn)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	t0 := time.Now()
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: threads, Events: events, Metrics: 1, Seed: 1})
	res.Generate = time.Since(t0)
	res.Rows = p.DataPoints()
	t0 = time.Now()
	if _, err := s.UploadTrial(p, core.UploadOptions{}); err != nil {
		return nil, err
	}
	res.Upload = time.Since(t0)

	for _, w := range workerBudgets {
		c, err := godbc.Open(fmt.Sprintf("%s?workers=%d", dsn, w))
		if err != nil {
			return nil, err
		}
		scanNS, err := timeQuery(c, p1ScanQuery, 3, 100.0)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("P1 scan workers=%d: %w", w, err)
		}
		gbNS, err := timeQuery(c, p1GroupByQuery, 3)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("P1 groupby workers=%d: %w", w, err)
		}
		c.Close()
		res.Timings = append(res.Timings, P1Timing{Workers: w, ScanNS: scanNS, GroupByNS: gbNS})
	}
	if len(res.Timings) > 0 {
		base := res.Timings[0]
		for i := range res.Timings {
			res.Timings[i].ScanSpeedup = float64(base.ScanNS) / float64(res.Timings[i].ScanNS)
			res.Timings[i].GroupBySpeedup = float64(base.GroupByNS) / float64(res.Timings[i].GroupByNS)
		}
	}

	hit, miss, err := timePlanCache(s.Conn())
	if err != nil {
		return nil, err
	}
	res.PlanCacheHitNS, res.PlanCacheMissNS = hit, miss
	return res, nil
}

// timeQuery runs the query reps+1 times (first is warm-up) and returns the
// fastest wall time in nanoseconds — min, not mean, since the interesting
// quantity is the query's cost without scheduler noise.
func timeQuery(c godbc.Conn, q string, reps int, args ...any) (int64, error) {
	best := int64(0)
	for i := 0; i <= reps; i++ {
		t0 := time.Now()
		rows, err := c.Query(q, args...)
		if err != nil {
			return 0, err
		}
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
		if err != nil {
			return 0, err
		}
		d := time.Since(t0).Nanoseconds()
		if i == 0 {
			continue // warm-up: populates caches, faults pages
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// timePlanCache measures a point-query hot loop twice: once re-issuing the
// same text (statement-cache hits after the first parse) and once with a
// distinct text per iteration (every execution parses and plans afresh).
// The gap is what the cache buys PerfDMF's fixed statement vocabulary.
func timePlanCache(c godbc.Conn) (hitNS, missNS int64, err error) {
	const iters = 2000
	point := func(q string, args ...any) error {
		rows, err := c.Query(q, args...)
		if err != nil {
			return err
		}
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
		return err
	}
	if err := point("SELECT id, name FROM metric WHERE id = ?", 1); err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := point("SELECT id, name FROM metric WHERE id = ?", 1); err != nil {
			return 0, 0, err
		}
	}
	hitNS = time.Since(t0).Nanoseconds() / iters
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		// A unique LIMIT makes every text distinct (guaranteed cache miss)
		// without changing the result the query produces.
		q := fmt.Sprintf("SELECT id, name FROM metric WHERE id = ? LIMIT %d", i+1)
		if err := point(q, 1); err != nil {
			return 0, 0, err
		}
	}
	missNS = time.Since(t0).Nanoseconds() / iters
	return hitNS, missNS, nil
}
