package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"time"

	"perfdmf/internal/core"
	"perfdmf/internal/godbc"
	"perfdmf/internal/synth"
)

// ParallelBench is the BENCH_parallel.json document: the P1 (row-path
// worker sweep) and P2 (columnar vs row path) sections are produced by
// separate experiment runs that read-modify-write the same file, each
// preserving the other's section.
type ParallelBench struct {
	P1 *P1Result `json:"p1,omitempty"`
	P2 *P2Result `json:"p2,omitempty"`
}

// P1 measures the parallel query executor on a Miranda-scale trial: the
// same partitioned scan and GROUP BY aggregation executed at increasing
// worker budgets, plus the prepared-statement plan cache's effect on a
// point-query hot loop. The JSON this produces (BENCH_parallel.json via
// cmd/experiments) is the artifact the speedup acceptance check reads.
//
// Speedups are relative to workers=1 on the same data in the same process.
// On a single-core runner (GOMAXPROCS=1) the parallel rows still execute —
// the workers are real goroutines — but no speedup is expected; consumers
// should gate on the recorded GOMAXPROCS.

// P1Timing is one worker-budget measurement point.
type P1Timing struct {
	Workers        int     `json:"workers"`
	ScanNS         int64   `json:"scan_ns_per_op"`
	GroupByNS      int64   `json:"groupby_ns_per_op"`
	ScanSpeedup    float64 `json:"scan_speedup"`
	GroupBySpeedup float64 `json:"groupby_speedup"`
}

// P1Result is the full parallel-execution benchmark record.
type P1Result struct {
	Rows            int           `json:"rows"`
	Threads         int           `json:"threads"`
	Events          int           `json:"events"`
	GOMAXPROCS      int           `json:"gomaxprocs"`
	ScanQuery       string        `json:"scan_query"`
	GroupByQuery    string        `json:"groupby_query"`
	Timings         []P1Timing    `json:"results"`
	PlanCacheHitNS  int64         `json:"plan_cache_hit_ns_per_op"`
	PlanCacheMissNS int64         `json:"plan_cache_miss_ns_per_op"`
	Generate        time.Duration `json:"-"`
	Upload          time.Duration `json:"-"`
}

const (
	p1ScanQuery = `SELECT COUNT(*) FROM interval_location_profile
		WHERE exclusive > ? AND call > 0`
	p1GroupByQuery = `SELECT interval_event, COUNT(*), SUM(exclusive),
			AVG(inclusive), MIN(exclusive), MAX(exclusive)
		FROM interval_location_profile GROUP BY interval_event`
)

// RunP1 uploads one synthetic trial of threads×events data points and times
// the two representative read queries at each worker budget.
func RunP1(threads, events int, workerBudgets []int) (*P1Result, error) {
	res := &P1Result{
		Threads:      threads,
		Events:       events,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		ScanQuery:    p1ScanQuery,
		GroupByQuery: p1GroupByQuery,
	}
	dsn := memDSN("p1")
	s, err := newArchive(dsn)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	t0 := time.Now()
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: threads, Events: events, Metrics: 1, Seed: 1})
	res.Generate = time.Since(t0)
	res.Rows = p.DataPoints()
	t0 = time.Now()
	if _, err := s.UploadTrial(p, core.UploadOptions{}); err != nil {
		return nil, err
	}
	res.Upload = time.Since(t0)

	for _, w := range workerBudgets {
		c, err := godbc.Open(fmt.Sprintf("%s?workers=%d", dsn, w))
		if err != nil {
			return nil, err
		}
		scanNS, err := timeQuery(c, p1ScanQuery, 3, 100.0)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("P1 scan workers=%d: %w", w, err)
		}
		gbNS, err := timeQuery(c, p1GroupByQuery, 3)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("P1 groupby workers=%d: %w", w, err)
		}
		c.Close()
		res.Timings = append(res.Timings, P1Timing{Workers: w, ScanNS: scanNS, GroupByNS: gbNS})
	}
	if len(res.Timings) > 0 {
		base := res.Timings[0]
		for i := range res.Timings {
			res.Timings[i].ScanSpeedup = float64(base.ScanNS) / float64(res.Timings[i].ScanNS)
			res.Timings[i].GroupBySpeedup = float64(base.GroupByNS) / float64(res.Timings[i].GroupByNS)
		}
	}

	hit, miss, err := timePlanCache(s.Conn())
	if err != nil {
		return nil, err
	}
	res.PlanCacheHitNS, res.PlanCacheMissNS = hit, miss
	return res, nil
}

// P2Timing is one worker-budget measurement of the same GROUP BY through
// both execution paths.
type P2Timing struct {
	Workers      int     `json:"workers"`
	RowNS        int64   `json:"row_ns_per_op"`
	ColumnarNS   int64   `json:"columnar_ns_per_op"`
	SpeedupVsRow float64 `json:"columnar_speedup_vs_row"`
	Scaling      float64 `json:"columnar_scaling_vs_1w"`
}

// P2Result is the columnar-execution benchmark record: the P1 GROUP BY
// query through the forced row path (?columnar=0) and the vectorized path
// at each worker budget, after COMPACT seals the segments. SpeedupOK (the
// ≥3× single-thread columnar-vs-row target) is meaningful on any runner;
// ScalingOK (≥2.5× at the widest budget) only when ScalingMeasured reports
// the runner actually had that many cores.
type P2Result struct {
	Rows             int        `json:"rows"`
	Threads          int        `json:"threads"`
	Events           int        `json:"events"`
	GOMAXPROCS       int        `json:"gomaxprocs"`
	GroupByQuery     string     `json:"groupby_query"`
	CompactNS        int64      `json:"compact_ns"`
	Timings          []P2Timing `json:"results"`
	SpeedupVsRow1W   float64    `json:"columnar_speedup_vs_row_1w"`
	ScalingAtMax     float64    `json:"columnar_scaling_at_max_workers"`
	Plan             string     `json:"plan"`
	IdenticalResults bool       `json:"identical_results"`
	SpeedupOK        bool       `json:"speedup_ok"`
	ScalingMeasured  bool       `json:"scaling_measured"`
	ScalingOK        bool       `json:"scaling_ok"`
}

// p2SpeedupTarget and p2ScalingTarget are the acceptance thresholds the
// cmd/experiments runner enforces: vectorized GROUP BY at least 3× the row
// path single-threaded, and at least 2.5× parallel scaling at the widest
// worker budget when the runner has the cores to show it.
const (
	p2SpeedupTarget = 3.0
	p2ScalingTarget = 2.5
)

// RunP2 uploads one synthetic trial, seals its columnar segments via
// COMPACT, and times the GROUP BY through both paths at each budget. It
// also differential-checks the two paths' full result sets — the bitwise
// identity the executor guarantees — and records the EXPLAIN ANALYZE plan
// line proving the vectorized path engaged.
func RunP2(threads, events int, workerBudgets []int) (*P2Result, error) {
	res := &P2Result{
		Threads:      threads,
		Events:       events,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		GroupByQuery: p1GroupByQuery,
	}
	dsn := memDSN("p2")
	s, err := newArchive(dsn)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: threads, Events: events, Metrics: 1, Seed: 1})
	res.Rows = p.DataPoints()
	if _, err := s.UploadTrial(p, core.UploadOptions{}); err != nil {
		return nil, err
	}

	// Seal the segments once; no DML follows, so every budget below reads
	// the same sealed snapshot.
	t0 := time.Now()
	if _, err := s.Conn().Exec("COMPACT interval_location_profile"); err != nil {
		return nil, fmt.Errorf("P2 compact: %w", err)
	}
	res.CompactNS = time.Since(t0).Nanoseconds()

	var reference [][]any
	for _, w := range workerBudgets {
		rowConn, err := godbc.Open(fmt.Sprintf("%s?workers=%d&columnar=0", dsn, w))
		if err != nil {
			return nil, err
		}
		colConn, err := godbc.Open(fmt.Sprintf("%s?workers=%d", dsn, w))
		if err != nil {
			rowConn.Close()
			return nil, err
		}
		rowNS, err := timeQuery(rowConn, p1GroupByQuery, 3)
		if err == nil {
			var colNS int64
			colNS, err = timeQuery(colConn, p1GroupByQuery, 5)
			res.Timings = append(res.Timings, P2Timing{Workers: w, RowNS: rowNS, ColumnarNS: colNS})
		}
		// Differential check: both paths must produce the identical result.
		if err == nil {
			var rowOut, colOut [][]any
			rowOut, err = fetchAll(rowConn, p1GroupByQuery)
			if err == nil {
				colOut, err = fetchAll(colConn, p1GroupByQuery)
			}
			if err == nil {
				if reference == nil {
					reference = rowOut
					res.IdenticalResults = true
				}
				if !reflect.DeepEqual(rowOut, reference) || !reflect.DeepEqual(colOut, reference) {
					res.IdenticalResults = false
				}
			}
		}
		rowConn.Close()
		colConn.Close()
		if err != nil {
			return nil, fmt.Errorf("P2 workers=%d: %w", w, err)
		}
	}

	base := res.Timings[0]
	for i := range res.Timings {
		t := &res.Timings[i]
		t.SpeedupVsRow = float64(t.RowNS) / float64(t.ColumnarNS)
		t.Scaling = float64(base.ColumnarNS) / float64(t.ColumnarNS)
	}
	last := res.Timings[len(res.Timings)-1]
	res.SpeedupVsRow1W = res.Timings[0].SpeedupVsRow
	res.ScalingAtMax = last.Scaling
	res.SpeedupOK = res.SpeedupVsRow1W >= p2SpeedupTarget
	res.ScalingMeasured = res.GOMAXPROCS >= last.Workers
	res.ScalingOK = res.ScalingAtMax >= p2ScalingTarget

	// The plan must prove the vectorized path served the query.
	c, err := godbc.Open(fmt.Sprintf("%s?workers=%d", dsn, last.Workers))
	if err != nil {
		return nil, err
	}
	defer c.Close()
	plans, err := fetchAll(c, "EXPLAIN ANALYZE "+p1GroupByQuery)
	if err != nil {
		return nil, fmt.Errorf("P2 explain: %w", err)
	}
	for _, row := range plans {
		if line, ok := row[0].(string); ok && strings.Contains(line, "columnar(") {
			res.Plan = line
		}
	}
	if res.Plan == "" {
		return nil, fmt.Errorf("P2: EXPLAIN ANALYZE shows no columnar(n) operator after COMPACT")
	}
	return res, nil
}

// fetchAll materializes a query's full result as Go values.
func fetchAll(c godbc.Conn, q string, args ...any) ([][]any, error) {
	rows, err := c.Query(q, args...)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	ncols := len(rows.Columns())
	var out [][]any
	for rows.Next() {
		vals := make([]any, ncols)
		ptrs := make([]any, ncols)
		for i := range vals {
			ptrs[i] = &vals[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			return nil, err
		}
		out = append(out, vals)
	}
	return out, rows.Err()
}

// timeQuery runs the query reps+1 times (first is warm-up) and returns the
// fastest wall time in nanoseconds — min, not mean, since the interesting
// quantity is the query's cost without scheduler noise.
func timeQuery(c godbc.Conn, q string, reps int, args ...any) (int64, error) {
	best := int64(0)
	for i := 0; i <= reps; i++ {
		t0 := time.Now()
		rows, err := c.Query(q, args...)
		if err != nil {
			return 0, err
		}
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
		if err != nil {
			return 0, err
		}
		d := time.Since(t0).Nanoseconds()
		if i == 0 {
			continue // warm-up: populates caches, faults pages
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// timePlanCache measures a point-query hot loop twice: once re-issuing the
// same text (statement-cache hits after the first parse) and once with a
// distinct text per iteration (every execution parses and plans afresh).
// The gap is what the cache buys PerfDMF's fixed statement vocabulary.
func timePlanCache(c godbc.Conn) (hitNS, missNS int64, err error) {
	const iters = 2000
	point := func(q string, args ...any) error {
		rows, err := c.Query(q, args...)
		if err != nil {
			return err
		}
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
		return err
	}
	if err := point("SELECT id, name FROM metric WHERE id = ?", 1); err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := point("SELECT id, name FROM metric WHERE id = ?", 1); err != nil {
			return 0, 0, err
		}
	}
	hitNS = time.Since(t0).Nanoseconds() / iters
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		// A unique LIMIT makes every text distinct (guaranteed cache miss)
		// without changing the result the query produces.
		q := fmt.Sprintf("SELECT id, name FROM metric WHERE id = ? LIMIT %d", i+1)
		if err := point(q, 1); err != nil {
			return 0, 0, err
		}
	}
	missNS = time.Since(t0).Nanoseconds() / iters
	return hitNS, missNS, nil
}
