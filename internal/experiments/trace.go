package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"perfdmf/internal/core"
	"perfdmf/internal/godbc"
	"perfdmf/internal/model"
	"perfdmf/internal/obs"
	"perfdmf/internal/synth"
)

// T1 guards the cost of the hierarchical tracing layer on the E1 upload
// path: the same synthetic trial uploaded with tracing off, with tracing
// on (spans into the in-memory ring), and with the full self-hosted
// telemetry pipeline persisting every span back into the archive. The
// JSON this produces (BENCH_trace.json via cmd/experiments) is the
// artifact the <5% overhead acceptance check reads.
//
// Each mode uploads into its own fresh archive. The machine-level noise
// here (CPU steal on shared runners, allocator state) is low-frequency —
// slow phases last longer than one rep — so each overhead estimate is the
// median of paired ratios from a strict two-mode alternation: off/traced
// reps first, off/persisted reps second, each ratio taken against the
// off run adjacent to it in time. Mixing all three modes in one cycle
// was measurably worse: the rep following a sink teardown ran faster by
// more than the effect being measured, and whichever mode owned that
// slot inherited the bias.

// T1Result is the tracing-overhead benchmark record.
type T1Result struct {
	Threads    int `json:"threads"`
	Events     int `json:"events"`
	Rows       int `json:"rows"`
	Reps       int `json:"reps"`
	GOMAXPROCS int `json:"gomaxprocs"`

	OffNS       int64 `json:"upload_off_ns"`
	OnNS        int64 `json:"upload_traced_ns"`
	PersistedNS int64 `json:"upload_persisted_ns"`

	// Overheads are medians of per-rep ratios against the same rep's off
	// run (see the package comment on noise). WithinBudget gates on the
	// traced mode — the acceptance claim is about tracing, not about also
	// writing every span back through the storage engine.
	OnOverheadPct        float64 `json:"traced_overhead_pct"`
	PersistedOverheadPct float64 `json:"persisted_overhead_pct"`
	BudgetPct            float64 `json:"budget_pct"`
	WithinBudget         bool    `json:"within_budget"`

	// SpansPersisted counts PERFDMF_SPANS rows left by the last persisted
	// rep — proof the third mode actually exercised the sink.
	SpansPersisted int64 `json:"spans_persisted"`
}

// RunT1 measures the E1 upload path under the three tracing modes.
func RunT1(threads, events, reps int) (*T1Result, error) {
	if reps < 1 {
		reps = 1
	}
	res := &T1Result{
		Threads:    threads,
		Events:     events,
		Reps:       reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BudgetPct:  5,
	}
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: threads, Events: events, Metrics: 1, Seed: 1})
	res.Rows = p.DataPoints()

	// The three modes toggle process-wide observability state; restore it
	// so a shared-process caller (cmd/experiments, tests) is unaffected.
	prevTrace := obs.TracingEnabled()
	defer obs.SetTracing(prevTrace)

	// One untimed warm-up upload: the first upload in a process pays
	// allocator and page-fault costs that would otherwise be billed
	// entirely to whichever mode runs first. Modes are then interleaved
	// within each rep — never-freed mem: archives grow the heap
	// monotonically across the run, and back-to-back blocks of one mode
	// would fold that drift into the comparison.
	obs.SetTracing(false)
	if _, err := t1Rep(p, t1Off, nil); err != nil {
		return nil, fmt.Errorf("T1 warm-up: %w", err)
	}

	offTraced := map[t1Mode][]int64{}
	tracedPct, err := t1Alternate(p, t1Traced, reps, res, offTraced)
	if err != nil {
		return nil, err
	}
	offPersisted := map[t1Mode][]int64{}
	persistedPct, err := t1Alternate(p, t1Persisted, reps, res, offPersisted)
	if err != nil {
		return nil, err
	}

	res.OffNS = median(append(offTraced[t1Off], offPersisted[t1Off]...))
	res.OnNS = median(offTraced[t1Traced])
	res.PersistedNS = median(offPersisted[t1Persisted])

	res.OnOverheadPct = medianFloat(tracedPct)
	res.PersistedOverheadPct = medianFloat(persistedPct)
	res.WithinBudget = res.OnOverheadPct < res.BudgetPct
	return res, nil
}

// t1Alternate runs reps pairs of (off, mode) back to back and returns the
// per-pair overhead percentages, appending raw times into samples.
func t1Alternate(p *model.Profile, mode t1Mode, reps int, res *T1Result, samples map[t1Mode][]int64) ([]float64, error) {
	var pcts []float64
	for i := 0; i < reps; i++ {
		off, err := t1Rep(p, t1Off, res)
		if err != nil {
			return nil, fmt.Errorf("T1 off: %w", err)
		}
		on, err := t1Rep(p, mode, res)
		if err != nil {
			return nil, fmt.Errorf("T1 %s: %w", mode, err)
		}
		samples[t1Off] = append(samples[t1Off], off)
		samples[mode] = append(samples[mode], on)
		pcts = append(pcts, overheadPct(on, off))
	}
	return pcts, nil
}

func overheadPct(measured, base int64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (float64(measured) - float64(base)) / float64(base)
}

func median(v []int64) int64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]int64(nil), v...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func medianFloat(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// t1Mode selects the observability configuration of one measured upload.
type t1Mode string

const (
	t1Off       t1Mode = "off"
	t1Traced    t1Mode = "traced"
	t1Persisted t1Mode = "persisted"
)

// t1Rep times one UploadTrialCtx into a fresh archive under mode. The
// persisted mode additionally runs the full telemetry pipeline (store +
// sink) on the archive and records the span count it left in res.
func t1Rep(p *model.Profile, mode t1Mode, res *T1Result) (int64, error) {
	obs.SetTracing(mode != t1Off)
	dsn := memDSN("t1")
	s, err := newArchive(dsn)
	if err != nil {
		return 0, err
	}
	var stop func() error
	if mode == t1Persisted {
		stop, err = godbc.StartTelemetry(dsn, obs.SinkOptions{})
		if err != nil {
			s.Close()
			return 0, err
		}
	}
	ctx, sp := obs.StartSpan(context.Background(), "upload", "t1:e1-upload")
	// Keep GC cycles out of the timed region entirely: the mem: archives
	// this loop leaves behind grow the live heap monotonically, so with
	// proportional GC pacing, whether a cycle lands inside an upload
	// depends on rep order — drift an order of magnitude larger than the
	// effect measured. Collect first, switch GC off, time, switch back.
	runtime.GC()
	gcPrev := debug.SetGCPercent(-1)
	t0 := time.Now()
	_, err = s.UploadTrialCtx(ctx, p, core.UploadOptions{})
	elapsed := time.Since(t0).Nanoseconds()
	debug.SetGCPercent(gcPrev)
	sp.Finish(err)
	if stop != nil {
		if serr := stop(); err == nil {
			err = serr
		}
		if err == nil {
			res.SpansPersisted, err = countSpans(dsn)
		}
	}
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	return elapsed, nil
}

// countSpans returns the PERFDMF_SPANS row count in dsn.
func countSpans(dsn string) (int64, error) {
	c, err := godbc.Open(dsn)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	rows, err := c.Query("SELECT COUNT(*) FROM PERFDMF_SPANS")
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	if !rows.Next() {
		return 0, rows.Err()
	}
	n, _ := rows.Value(0).(int64)
	return n, rows.Err()
}
