package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"perfdmf/internal/core"
	"perfdmf/internal/godbc"
	"perfdmf/internal/model"
	"perfdmf/internal/obs"
	"perfdmf/internal/synth"
)

// T1 guards the cost of the hierarchical tracing layer on the E1 upload
// path: the same synthetic trial uploaded with tracing off, with tracing
// on (spans into the in-memory ring), and with the full self-hosted
// telemetry pipeline persisting every span back into the archive. The
// JSON this produces (BENCH_trace.json via cmd/experiments) is the
// artifact the <5% overhead acceptance check reads.
//
// Each mode uploads into its own fresh archive, and the archive is
// dropped (godbc.DropMemory) as soon as the rep ends — leaked mem:
// archives grow the live heap monotonically, and a heap that is 40MB
// larger for every later rep taxes the allocator in a way that reads as
// mode overhead. The machine-level noise that remains (CPU steal on
// shared runners, scheduler interference) is strictly additive — it only
// ever makes a rep slower — so each overhead estimate compares the
// fastest rep of the mode against the fastest off rep: minimum-of-reps
// is the standard noise-robust estimator when interference can inflate
// but never deflate a measurement. All three modes interleave in one
// loop, rotating the within-cycle order every cycle, so every mode's
// minimum is drawn from the same stretch of wall clock: a phase-per-mode
// layout was observed to drift the off baseline itself by 7% between
// phases, dwarfing the effect measured, and rotation keeps any
// slot-position bias (the rep after a sink teardown, say) from pinning
// to one mode.

// T1Result is the tracing-overhead benchmark record.
type T1Result struct {
	Threads    int `json:"threads"`
	Events     int `json:"events"`
	Rows       int `json:"rows"`
	Reps       int `json:"reps"`
	GOMAXPROCS int `json:"gomaxprocs"`

	OffNS       int64 `json:"upload_off_ns"`
	OnNS        int64 `json:"upload_traced_ns"`
	PersistedNS int64 `json:"upload_persisted_ns"`

	// Overheads compare each mode's fastest rep against the fastest off
	// rep (see the package comment on noise). Both modes are judged
	// against the same budget: tracing alone must fit, and so must the
	// full pipeline that persists spans back through the storage engine —
	// the sampling governor exists precisely to make the second claim
	// hold.
	//
	// The published overheads are clamped at 0: min-of-reps still carries
	// per-rep jitter on the order of a few percent, and when a mode's
	// fastest rep happens to beat the off baseline the true overhead is
	// simply below the measurement's noise floor, not negative. The raw
	// (signed) values are kept alongside and NoiseFloor records that the
	// clamp engaged, so the artifact distinguishes "measured ~0" from
	// "measured below the floor".
	OnOverheadPct           float64 `json:"traced_overhead_pct"`
	PersistedOverheadPct    float64 `json:"persisted_overhead_pct"`
	OnOverheadRawPct        float64 `json:"traced_overhead_raw_pct"`
	PersistedOverheadRawPct float64 `json:"persisted_overhead_raw_pct"`
	NoiseFloor              bool    `json:"noise_floor"`
	BudgetPct               float64 `json:"budget_pct"`
	TracedWithinBudget      bool    `json:"traced_within_budget"`
	PersistedWithinBudget   bool    `json:"persisted_within_budget"`

	// SpansPersisted counts PERFDMF_SPANS rows left by the last persisted
	// rep — proof the third mode actually exercised the sink.
	SpansPersisted int64 `json:"spans_persisted"`
	// EffectiveSampleRate is persisted rows over spans seen by the sink
	// (offered + sampled out + dropped) in the last persisted rep: the
	// fraction of telemetry that actually reached the table.
	EffectiveSampleRate float64 `json:"effective_sample_rate"`
	// FinalSampleRate is the governor's sample rate at the end of the
	// last persisted rep.
	FinalSampleRate float64 `json:"final_sample_rate"`
}

// RunT1 measures the E1 upload path under the three tracing modes.
func RunT1(threads, events, reps int) (*T1Result, error) {
	if reps < 1 {
		reps = 1
	}
	res := &T1Result{
		Threads:    threads,
		Events:     events,
		Reps:       reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BudgetPct:  5,
	}
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: threads, Events: events, Metrics: 1, Seed: 1})
	res.Rows = p.DataPoints()

	// The three modes toggle process-wide observability state; restore it
	// so a shared-process caller (cmd/experiments, tests) is unaffected.
	prevTrace := obs.TracingEnabled()
	defer obs.SetTracing(prevTrace)

	// One untimed warm-up upload: the first upload in a process pays
	// allocator and page-fault costs that would otherwise be billed
	// entirely to whichever mode runs first.
	obs.SetTracing(false)
	if _, err := t1Rep(p, t1Off, nil); err != nil {
		return nil, fmt.Errorf("T1 warm-up: %w", err)
	}

	samples := map[t1Mode][]int64{}
	modes := []t1Mode{t1Off, t1Traced, t1Persisted}
	for i := 0; i < reps; i++ {
		for j := range modes {
			m := modes[(i+j)%len(modes)]
			ns, err := t1Rep(p, m, res)
			if err != nil {
				return nil, fmt.Errorf("T1 %s: %w", m, err)
			}
			samples[m] = append(samples[m], ns)
		}
	}

	res.OffNS = minNS(samples[t1Off])
	res.OnNS = minNS(samples[t1Traced])
	res.PersistedNS = minNS(samples[t1Persisted])

	res.OnOverheadRawPct = overheadPct(res.OnNS, res.OffNS)
	res.PersistedOverheadRawPct = overheadPct(res.PersistedNS, res.OffNS)
	res.OnOverheadPct, res.PersistedOverheadPct = res.OnOverheadRawPct, res.PersistedOverheadRawPct
	if res.OnOverheadPct < 0 {
		res.OnOverheadPct = 0
	}
	if res.PersistedOverheadPct < 0 {
		res.PersistedOverheadPct = 0
	}
	res.NoiseFloor = res.OnOverheadRawPct < 0 || res.PersistedOverheadRawPct < 0
	res.TracedWithinBudget = res.OnOverheadPct < res.BudgetPct
	res.PersistedWithinBudget = res.PersistedOverheadPct < res.BudgetPct
	return res, nil
}

func overheadPct(measured, base int64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (float64(measured) - float64(base)) / float64(base)
}

func minNS(v []int64) int64 {
	if len(v) == 0 {
		return 0
	}
	best := v[0]
	for _, n := range v[1:] {
		if n < best {
			best = n
		}
	}
	return best
}

// t1Mode selects the observability configuration of one measured upload.
type t1Mode string

const (
	t1Off       t1Mode = "off"
	t1Traced    t1Mode = "traced"
	t1Persisted t1Mode = "persisted"
)

// t1Rep times one UploadTrialCtx into a fresh archive under mode. The
// persisted mode additionally runs the full telemetry pipeline (store +
// sink) on the archive and records the span count it left in res.
func t1Rep(p *model.Profile, mode t1Mode, res *T1Result) (int64, error) {
	obs.SetTracing(mode != t1Off)
	dsn := memDSN("t1")
	s, err := newArchive(dsn)
	if err != nil {
		return 0, err
	}
	var stop func() error
	var before int64
	if mode == t1Persisted {
		// The persisted mode measures the whole continuous layer, not just
		// span persistence: one alert rule so evaluation has work to do, and
		// a fast scrape cadence so several history samples land inside the
		// timed upload.
		if _, err := godbc.AddAlertRule(s.Conn(), obs.AlertRule{
			Name: "t1-exec-rate", Metric: "godbc_exec_total",
			Op: "gt", Threshold: 1e12, // never breaches; costs a full evaluation anyway
		}); err != nil {
			s.Close()
			return 0, err
		}
		before = telemetrySeen()
		stop, err = godbc.StartTelemetry(dsn, godbc.TelemetryOptions{
			HistoryEvery: 50 * time.Millisecond,
		})
		if err != nil {
			s.Close()
			return 0, err
		}
	}
	ctx, sp := obs.StartSpan(context.Background(), "upload", "t1:e1-upload")
	// Keep GC cycles out of the timed region entirely: the mem: archives
	// this loop leaves behind grow the live heap monotonically, so with
	// proportional GC pacing, whether a cycle lands inside an upload
	// depends on rep order — drift an order of magnitude larger than the
	// effect measured. Collect first, switch GC off, time, switch back.
	runtime.GC()
	gcPrev := debug.SetGCPercent(-1)
	t0 := time.Now()
	_, err = s.UploadTrialCtx(ctx, p, core.UploadOptions{})
	elapsed := time.Since(t0).Nanoseconds()
	debug.SetGCPercent(gcPrev)
	sp.Finish(err)
	if stop != nil {
		if serr := stop(); err == nil {
			err = serr
		}
		if err == nil {
			res.SpansPersisted, err = countSpans(dsn)
		}
		if err == nil {
			if seen := telemetrySeen() - before; seen > 0 {
				res.EffectiveSampleRate = float64(res.SpansPersisted) / float64(seen)
			}
			if st, ok := godbc.TelemetryState(); ok {
				res.FinalSampleRate = st.SampleRate
			}
		}
	}
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	// The rep's archive is throwaway: detach it so the engine can be
	// collected instead of taxing every later rep's allocator.
	godbc.DropMemory(strings.TrimPrefix(dsn, "mem:"))
	if err != nil {
		return 0, err
	}
	return elapsed, nil
}

// telemetrySeen totals the spans the sink has seen process-wide: offered,
// sampled out by the governor, or dropped under backpressure. Per-rep
// deltas of this against the persisted row count yield the effective
// sample rate.
func telemetrySeen() int64 {
	return obs.Default.Counter("obs_telemetry_offered_total").Value() +
		obs.Default.Counter("obs_telemetry_sampled_out_total").Value() +
		obs.Default.Counter("obs_telemetry_dropped_total").Value()
}

// countSpans returns the PERFDMF_SPANS row count in dsn.
func countSpans(dsn string) (int64, error) {
	c, err := godbc.Open(dsn)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	rows, err := c.Query("SELECT COUNT(*) FROM PERFDMF_SPANS")
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	if !rows.Next() {
		return 0, rows.Err()
	}
	n, _ := rows.Value(0).(int64)
	return n, rows.Err()
}
