// Package experiments implements the reproduction of every evaluation
// claim in the paper, as catalogued in DESIGN.md §3 (E1–E8). Each RunEx
// function builds its workload, drives the framework end to end, and
// returns a result table; cmd/experiments prints them and bench_test.go
// wraps them in testing.B benchmarks. EXPERIMENTS.md records the outcomes.
package experiments

import (
	"fmt"
	"os"
	"time"

	"perfdmf/internal/analysis"
	"perfdmf/internal/core"
	"perfdmf/internal/formats"
	"perfdmf/internal/mining"
	"perfdmf/internal/model"
	"perfdmf/internal/synth"
)

var memCounter int

func memDSN(tag string) string {
	memCounter++
	return fmt.Sprintf("mem:experiments_%s_%d_%d", tag, os.Getpid(), memCounter)
}

// newArchive opens a fresh session with one application and experiment
// selected.
func newArchive(dsn string) (*core.DataSession, error) {
	s, err := core.Open(dsn)
	if err != nil {
		return nil, err
	}
	app := &core.Application{Name: "experiments"}
	if err := s.SaveApplication(app); err != nil {
		s.Close()
		return nil, err
	}
	s.SetApplication(app)
	exp := &core.Experiment{Name: "run"}
	if err := s.SaveExperiment(exp); err != nil {
		s.Close()
		return nil, err
	}
	s.SetExperiment(exp)
	return s, nil
}

// --- E1: large-scale profile handling ---

// E1Row is one point of the §3.1/§5.3 scale claim: a Miranda-like trial of
// Threads × Events × 1 metric uploaded, summarized, queried and reloaded.
type E1Row struct {
	Threads    int
	Events     int
	DataPoints int
	Generate   time.Duration
	Upload     time.Duration
	Query      time.Duration // mean-summary query over the trial
	Load       time.Duration // full trial download
	UploadRate float64       // data points per second
}

// RunE1 sweeps thread counts at a fixed event count (the paper's 101).
func RunE1(threadCounts []int, events int) ([]E1Row, error) {
	var out []E1Row
	for _, threads := range threadCounts {
		row, err := runE1Point(threads, events)
		if err != nil {
			return nil, fmt.Errorf("E1 %d threads: %w", threads, err)
		}
		out = append(out, row)
	}
	return out, nil
}

func runE1Point(threads, events int) (E1Row, error) {
	row := E1Row{Threads: threads, Events: events}
	s, err := newArchive(memDSN("e1"))
	if err != nil {
		return row, err
	}
	defer s.Close()

	t0 := time.Now()
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: threads, Events: events, Metrics: 1, Seed: 1})
	row.Generate = time.Since(t0)
	row.DataPoints = p.DataPoints()

	t0 = time.Now()
	trial, err := s.UploadTrial(p, core.UploadOptions{})
	if err != nil {
		return row, err
	}
	row.Upload = time.Since(t0)
	if row.Upload > 0 {
		row.UploadRate = float64(row.DataPoints) / row.Upload.Seconds()
	}

	t0 = time.Now()
	s.SetTrial(trial)
	summary, err := s.MeanSummary("TIME")
	if err != nil {
		return row, err
	}
	row.Query = time.Since(t0)
	if len(summary) != events {
		return row, fmt.Errorf("summary has %d events, want %d", len(summary), events)
	}

	t0 = time.Now()
	loaded, err := s.LoadTrial(trial.ID)
	if err != nil {
		return row, err
	}
	row.Load = time.Since(t0)
	if loaded.DataPoints() != row.DataPoints {
		return row, fmt.Errorf("reload lost data: %d vs %d", loaded.DataPoints(), row.DataPoints)
	}
	return row, nil
}

// --- E2: six-format import into one archive ---

// E2Row is one format's import measurements.
type E2Row struct {
	Format     string
	Parse      time.Duration
	Upload     time.Duration
	DataPoints int
	Threads    int
	RoundTrip  bool // parse → store → load preserved the data-point count
}

// RunE2 generates one dataset per supported format under dir, imports all
// of them into a single archive, and reloads each.
func RunE2(dir string) ([]E2Row, error) {
	paths, err := synth.WriteSampleFiles(dir, 2005)
	if err != nil {
		return nil, err
	}
	s, err := newArchive(memDSN("e2"))
	if err != nil {
		return nil, err
	}
	defer s.Close()

	var out []E2Row
	for _, format := range formats.All {
		row := E2Row{Format: format}
		t0 := time.Now()
		p, err := formats.Load(format, paths[format])
		if err != nil {
			return nil, fmt.Errorf("E2 %s: %w", format, err)
		}
		row.Parse = time.Since(t0)
		row.DataPoints = p.DataPoints()
		row.Threads = p.NumThreads()

		t0 = time.Now()
		trial, err := s.UploadTrial(p, core.UploadOptions{TrialName: format})
		if err != nil {
			return nil, fmt.Errorf("E2 %s upload: %w", format, err)
		}
		row.Upload = time.Since(t0)

		loaded, err := s.LoadTrial(trial.ID)
		if err != nil {
			return nil, fmt.Errorf("E2 %s reload: %w", format, err)
		}
		row.RoundTrip = loaded.DataPoints() == row.DataPoints
		out = append(out, row)
	}
	return out, nil
}

// --- E3: EVH1 speedup study ---

// E3Result is the speedup study plus timing.
type E3Result struct {
	Study    *analysis.SpeedupStudy
	Upload   time.Duration
	Analysis time.Duration
}

// RunE3 uploads an EVH1-like scaling series and runs the speedup analyzer.
func RunE3(procs []int) (*E3Result, error) {
	s, err := newArchive(memDSN("e3"))
	if err != nil {
		return nil, err
	}
	defer s.Close()

	t0 := time.Now()
	for _, p := range synth.ScalingSeries(synth.ScalingConfig{Procs: procs, Seed: 11}) {
		if _, err := s.UploadTrial(p, core.UploadOptions{}); err != nil {
			return nil, err
		}
	}
	upload := time.Since(t0)

	trials, err := s.TrialList()
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	study, err := analysis.Speedup(s, trials, "TIME")
	if err != nil {
		return nil, err
	}
	return &E3Result{Study: study, Upload: upload, Analysis: time.Since(t0)}, nil
}

// --- E4: PerfExplorer clustering on sPPM-like data ---

// E4Row is one clustering run.
type E4Row struct {
	Threads    int
	Dimensions int
	Extract    time.Duration
	Cluster    time.Duration
	K          int
	Agreement  float64 // with the planted classes
	RSS        float64
}

// RunE4 sweeps thread counts, clustering each sPPM-like trial and scoring
// the recovered clusters against the planted behaviour classes.
func RunE4(threadCounts []int) ([]E4Row, error) {
	var out []E4Row
	for _, threads := range threadCounts {
		row, err := runE4Point(threads)
		if err != nil {
			return nil, fmt.Errorf("E4 %d threads: %w", threads, err)
		}
		out = append(out, row)
	}
	return out, nil
}

func runE4Point(threads int) (E4Row, error) {
	row := E4Row{Threads: threads}
	s, err := newArchive(memDSN("e4"))
	if err != nil {
		return row, err
	}
	defer s.Close()
	p, truth := synth.CounterTrial(synth.CounterConfig{Threads: threads, Seed: 7})
	trial, err := s.UploadTrial(p, core.UploadOptions{})
	if err != nil {
		return row, err
	}

	t0 := time.Now()
	fm, err := mining.ExtractFeatures(s, trial.ID, nil)
	if err != nil {
		return row, err
	}
	row.Extract = time.Since(t0)
	row.Dimensions = len(fm.Columns)

	fm.Normalize(mining.NormZScore)
	t0 = time.Now()
	cl, err := mining.KMeans(fm.Rows, mining.KMeansConfig{K: 3, Seed: 17})
	if err != nil {
		return row, err
	}
	row.Cluster = time.Since(t0)
	row.K = cl.K
	row.RSS = cl.RSS

	aligned := make([]int, len(fm.Threads))
	for i, th := range fm.Threads {
		aligned[i] = truth[th.Node]
	}
	row.Agreement = clusterAgreement(cl.Assignments, aligned, cl.K)
	return row, nil
}

func clusterAgreement(assign, truth []int, k int) float64 {
	match := 0
	for c := 0; c < k; c++ {
		counts := map[int]int{}
		for i, a := range assign {
			if a == c {
				counts[truth[i]]++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		match += best
	}
	return float64(match) / float64(len(assign))
}

// --- E5: API vs raw SQL, memory vs file back end ---

// E5Row is one (backend, access-path) timing over a fixed query workload.
type E5Row struct {
	Backend string // "mem" or "file"
	Path    string // "api" or "sql"
	Elapsed time.Duration
	Queries int
}

// RunE5 uploads the same mid-size trial to a memory and a file archive and
// times the same summary workload through the DataSession API and through
// raw SQL on both.
func RunE5(fileDir string) ([]E5Row, error) {
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: 64, Events: 40, Metrics: 1, Seed: 3})
	backends := []struct{ name, dsn string }{
		{"mem", memDSN("e5")},
		{"file", "file:" + fileDir},
	}
	var out []E5Row
	for _, backend := range backends {
		s, err := newArchive(backend.dsn)
		if err != nil {
			return nil, err
		}
		trial, err := s.UploadTrial(p, core.UploadOptions{})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.SetTrial(trial)

		const rounds = 20
		t0 := time.Now()
		for i := 0; i < rounds; i++ {
			rows, err := s.MeanSummary("TIME")
			if err != nil {
				s.Close()
				return nil, err
			}
			if len(rows) == 0 {
				s.Close()
				return nil, fmt.Errorf("E5: empty API result")
			}
		}
		out = append(out, E5Row{Backend: backend.name, Path: "api", Elapsed: time.Since(t0), Queries: rounds})

		t0 = time.Now()
		for i := 0; i < rounds; i++ {
			rs, err := s.Conn().Query(`
				SELECT e.name, t.exclusive FROM interval_event e
				JOIN interval_mean_summary t ON t.interval_event = e.id
				WHERE e.trial = ? ORDER BY t.exclusive DESC`, trial.ID)
			if err != nil {
				s.Close()
				return nil, err
			}
			n := 0
			for rs.Next() {
				n++
			}
			rs.Close()
			if n == 0 {
				s.Close()
				return nil, fmt.Errorf("E5: empty SQL result")
			}
		}
		out = append(out, E5Row{Backend: backend.name, Path: "sql", Elapsed: time.Since(t0), Queries: rounds})
		if err := s.Close(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- E6: flexible schema ---

// E6Result verifies the ALTER TABLE → metadata discovery → object API flow
// and times it.
type E6Result struct {
	AddColumn    time.Duration
	SaveWithCol  time.Duration
	Reload       time.Duration
	DropColumn   time.Duration
	FieldsOK     bool
	DroppedClean bool
}

// RunE6 performs the §3.2 flexible-schema scenario end to end.
func RunE6() (*E6Result, error) {
	s, err := newArchive(memDSN("e6"))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	res := &E6Result{}

	t0 := time.Now()
	if _, err := s.Conn().Exec("ALTER TABLE trial ADD COLUMN compiler VARCHAR"); err != nil {
		return nil, err
	}
	if _, err := s.Conn().Exec("ALTER TABLE trial ADD COLUMN os_release VARCHAR DEFAULT 'AIX 5.2'"); err != nil {
		return nil, err
	}
	res.AddColumn = time.Since(t0)

	t0 = time.Now()
	trial := &core.Trial{Name: "flexible", Fields: map[string]any{
		"compiler":   "xlf 8.1.1",
		"node_count": int64(16),
	}}
	if err := s.SaveTrial(trial); err != nil {
		return nil, err
	}
	res.SaveWithCol = time.Since(t0)

	t0 = time.Now()
	trials, err := s.TrialList()
	if err != nil {
		return nil, err
	}
	res.Reload = time.Since(t0)
	if len(trials) == 1 &&
		trials[0].Fields["compiler"] == "xlf 8.1.1" &&
		trials[0].Fields["os_release"] == "AIX 5.2" &&
		trials[0].NodeCount() == 16 {
		res.FieldsOK = true
	}

	t0 = time.Now()
	if _, err := s.Conn().Exec("ALTER TABLE trial DROP COLUMN compiler"); err != nil {
		return nil, err
	}
	res.DropColumn = time.Since(t0)
	trials, err = s.TrialList()
	if err != nil {
		return nil, err
	}
	_, still := trials[0].Fields["compiler"]
	res.DroppedClean = !still && trials[0].Fields["os_release"] == "AIX 5.2"
	return res, nil
}

// --- E7: derived metrics ---

// E7Result times the derived-metric round trip.
type E7Result struct {
	Derive     time.Duration
	Save       time.Duration
	Reload     time.Duration
	ValueOK    bool
	DataPoints int
}

// RunE7 loads a counter trial, derives FLOPS = PAPI_FP_OPS / TIME, saves
// it into the existing trial, and verifies the reloaded values.
func RunE7(threads int) (*E7Result, error) {
	s, err := newArchive(memDSN("e7"))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	p, _ := synth.CounterTrial(synth.CounterConfig{Threads: threads, Seed: 5})
	trial, err := s.UploadTrial(p, core.UploadOptions{})
	if err != nil {
		return nil, err
	}
	loaded, err := s.LoadTrial(trial.ID)
	if err != nil {
		return nil, err
	}
	res := &E7Result{}

	t0 := time.Now()
	mid, err := loaded.DeriveMetric("FLOPS", model.Ratio("PAPI_FP_OPS", "TIME", 1e6))
	if err != nil {
		return nil, err
	}
	res.Derive = time.Since(t0)

	t0 = time.Now()
	if _, err := s.SaveDerivedMetric(trial.ID, loaded, mid); err != nil {
		return nil, err
	}
	res.Save = time.Since(t0)

	t0 = time.Now()
	re, err := s.LoadTrial(trial.ID)
	if err != nil {
		return nil, err
	}
	res.Reload = time.Since(t0)
	res.DataPoints = re.DataPoints()

	gm := re.MetricID("FLOPS")
	if gm >= 0 && re.Metrics()[gm].Derived {
		th := re.FindThread(0, 0, 0)
		e := re.FindIntervalEvent("hydro")
		d := th.FindIntervalData(e.ID)
		want := 1e6 * d.PerMetric[re.MetricID("PAPI_FP_OPS")].Exclusive /
			d.PerMetric[re.MetricID("TIME")].Exclusive
		got := d.PerMetric[gm].Exclusive
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		res.ValueOK = diff <= 1e-9*want
	}
	return res, nil
}

// --- E8: XML export round trip ---

// E8Result times the common-XML export/import path.
type E8Result struct {
	Export     time.Duration
	Import     time.Duration
	Bytes      int64
	DataPoints int
	Lossless   bool
}

// RunE8 exports a mid-size trial as XML and imports it back.
func RunE8(dir string, threads, events int) (*E8Result, error) {
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: threads, Events: events, Metrics: 2, Seed: 9})
	path := dir + "/e8.xml"
	res := &E8Result{DataPoints: p.DataPoints()}

	t0 := time.Now()
	if err := writeXML(path, p); err != nil {
		return nil, err
	}
	res.Export = time.Since(t0)
	if fi, err := os.Stat(path); err == nil {
		res.Bytes = fi.Size()
	}

	t0 = time.Now()
	re, err := formats.Load(formats.XML, path)
	if err != nil {
		return nil, err
	}
	res.Import = time.Since(t0)
	res.Lossless = re.DataPoints() == p.DataPoints() &&
		re.NumThreads() == p.NumThreads() &&
		len(re.Metrics()) == len(p.Metrics())
	return res, nil
}
