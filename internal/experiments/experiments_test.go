package experiments

import (
	"testing"
)

// The experiment runners are exercised at small scale; the full sweeps run
// in cmd/experiments and the benchmark harness.

func TestRunE1Small(t *testing.T) {
	rows, err := RunE1([]int{16, 64}, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].DataPoints != 16*21 || rows[1].DataPoints != 64*21 {
		t.Fatalf("datapoints: %+v", rows)
	}
	for _, r := range rows {
		if r.Upload <= 0 || r.Load <= 0 || r.UploadRate <= 0 {
			t.Fatalf("timings: %+v", r)
		}
	}
}

func TestRunE2AllFormats(t *testing.T) {
	rows, err := RunE2(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("formats: %d", len(rows))
	}
	for _, r := range rows {
		if !r.RoundTrip {
			t.Errorf("%s: round trip failed", r.Format)
		}
		if r.DataPoints == 0 {
			t.Errorf("%s: empty profile", r.Format)
		}
	}
}

func TestRunE3Shape(t *testing.T) {
	res, err := RunE3([]int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	study := res.Study
	if len(study.Procs) != 4 || study.Procs[3] != 8 {
		t.Fatalf("procs: %v", study.Procs)
	}
	// Monotone speedup, decreasing efficiency, the defining shape.
	if study.AppSpeed[3] <= study.AppSpeed[0] {
		t.Fatalf("speedup: %v", study.AppSpeed)
	}
	if study.AppEff[3] >= study.AppEff[0] {
		t.Fatalf("efficiency: %v", study.AppEff)
	}
}

func TestRunE4Recovers(t *testing.T) {
	rows, err := RunE4([]int{64})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Agreement < 0.9 {
		t.Fatalf("agreement: %+v", rows[0])
	}
	if rows[0].K != 3 || rows[0].Dimensions != 40 {
		t.Fatalf("shape: %+v", rows[0])
	}
}

func TestRunE5BothBackends(t *testing.T) {
	rows, err := RunE5(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %+v", rows)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Backend+"/"+r.Path] = true
		if r.Elapsed <= 0 {
			t.Fatalf("timing: %+v", r)
		}
	}
	for _, want := range []string{"mem/api", "mem/sql", "file/api", "file/sql"} {
		if !seen[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestRunE6E7E8(t *testing.T) {
	e6, err := RunE6()
	if err != nil || !e6.FieldsOK || !e6.DroppedClean {
		t.Fatalf("E6: %+v %v", e6, err)
	}
	e7, err := RunE7(16)
	if err != nil || !e7.ValueOK {
		t.Fatalf("E7: %+v %v", e7, err)
	}
	e8, err := RunE8(t.TempDir(), 8, 10)
	if err != nil || !e8.Lossless || e8.Bytes == 0 {
		t.Fatalf("E8: %+v %v", e8, err)
	}
}

func TestAblations(t *testing.T) {
	batch, err := RunAblationBatchInsert(16, 10)
	if err != nil || len(batch) != 3 {
		t.Fatalf("batch: %v %v", batch, err)
	}
	index, err := RunAblationIndex(16, 10, 3)
	if err != nil || len(index) != 2 {
		t.Fatalf("index: %v %v", index, err)
	}
	// The index variant must not be slower than the full scan by a large
	// factor (it should be faster; allow noise at tiny sizes).
	if index[0].Elapsed > index[1].Elapsed*3 {
		t.Fatalf("indexed load slower than scan: %v vs %v", index[0].Elapsed, index[1].Elapsed)
	}
	summary, err := RunAblationSummary(16, 10)
	if err != nil || len(summary) != 2 {
		t.Fatalf("summary: %v %v", summary, err)
	}
	seeding, err := RunAblationSeeding(32)
	if err != nil || len(seeding) != 2 {
		t.Fatalf("seeding: %v %v", seeding, err)
	}
}
